package strata

import (
	"math/rand"
	"testing"

	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

// clusteredTextCorpus builds a corpus with k planted topics: documents
// of topic c draw terms from a disjoint vocabulary band.
func clusteredTextCorpus(t *testing.T, nDocs, k int) (*pivots.TextCorpus, []int) {
	t.Helper()
	const bandWidth = 50
	const docTerms = 20
	docs := make([]pivots.Doc, nDocs)
	truth := make([]int, nDocs)
	for i := range docs {
		c := i % k
		truth[i] = c
		terms := make([]uint32, 0, docTerms)
		for j := 0; j < docTerms; j++ {
			// Deterministic but varied term choice inside the band.
			term := uint32(c*bandWidth + (i*7+j*3)%bandWidth)
			terms = append(terms, term)
		}
		// Sort + dedup to satisfy corpus invariants.
		docs[i] = pivots.Doc{Terms: dedupSorted(terms)}
	}
	corpus, err := pivots.NewTextCorpus(docs, k*bandWidth)
	if err != nil {
		t.Fatal(err)
	}
	return corpus, truth
}

func dedupSorted(terms []uint32) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, x := range terms {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func TestStratifyEmptyCorpus(t *testing.T) {
	corpus, err := pivots.NewTextCorpus(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stratify(corpus, StratifierConfig{Cluster: Config{K: 2, L: 2}}); err == nil {
		t.Error("empty corpus must fail")
	}
}

func TestStratifySeparatesTopics(t *testing.T) {
	corpus, truth := clusteredTextCorpus(t, 240, 3)
	s, err := Stratify(corpus, StratifierConfig{
		SketchWidth: 48,
		Cluster:     Config{K: 3, L: 3, Seed: 7},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c, members := range s.Members {
		if len(members) == 0 {
			continue
		}
		counts := map[int]int{}
		for _, i := range members {
			counts[truth[i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if purity := float64(best) / float64(len(members)); purity < 0.85 {
			t.Errorf("stratum %d purity %.2f", c, purity)
		}
	}
	intra, inter := s.MeanIntraSimilarity(1000)
	if intra <= inter {
		t.Errorf("intra similarity %.3f not above inter %.3f", intra, inter)
	}
}

func TestStratifyWeightTotals(t *testing.T) {
	corpus, _ := clusteredTextCorpus(t, 60, 2)
	s, err := Stratify(corpus, StratifierConfig{Cluster: Config{K: 2, L: 2, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, w := range s.WeightTotals {
		sum += w
	}
	want := 0
	for i := 0; i < corpus.Len(); i++ {
		want += corpus.Weight(i)
	}
	if sum != want {
		t.Errorf("weight totals sum %d, want %d", sum, want)
	}
}

func TestStratifyDefaultWidth(t *testing.T) {
	corpus, _ := clusteredTextCorpus(t, 30, 2)
	s, err := Stratify(corpus, StratifierConfig{Cluster: Config{K: 2, L: 2, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sketches[0]) != DefaultSketchWidth {
		t.Errorf("sketch width %d, want default %d", len(s.Sketches[0]), DefaultSketchWidth)
	}
}

func TestSketchCorpusParallelMatchesSerial(t *testing.T) {
	corpus, _ := clusteredTextCorpus(t, 100, 4)
	h, err := sketch.NewHasher(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := SketchCorpus(corpus, h, 1)
	b := SketchCorpus(corpus, h, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("sketch %d differs between 1 and 7 workers", i)
			}
		}
	}
}

func TestStratifyStats(t *testing.T) {
	corpus, _ := clusteredTextCorpus(t, 120, 3)
	s, err := Stratify(corpus, StratifierConfig{Cluster: Config{K: 3, L: 2, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats
	if st.SketchTime <= 0 || st.ClusterTime <= 0 {
		t.Errorf("stage times not recorded: %+v", st)
	}
	if st.Iterations != s.Iterations || st.Converged != s.Converged {
		t.Errorf("stats loop shape (%d, %v) disagrees with result (%d, %v)",
			st.Iterations, st.Converged, s.Iterations, s.Converged)
	}
	if len(st.Iters) != s.Iterations {
		t.Errorf("%d per-iteration stats for %d iterations", len(st.Iters), s.Iterations)
	}
	if st.MovedTotal < corpus.Len() {
		t.Errorf("MovedTotal %d below corpus size %d (round 1 moves every record)",
			st.MovedTotal, corpus.Len())
	}
}

// TestMeanIntraSimilaritySeedFromConfig checks the similarity estimate
// is driven by the stratifier seed rather than a hardcoded constant:
// same config → same estimate; the explicit-seed variant reproduces it.
func TestMeanIntraSimilaritySeedFromConfig(t *testing.T) {
	corpus, _ := clusteredTextCorpus(t, 150, 3)
	cfg := StratifierConfig{Cluster: Config{K: 3, L: 2, Seed: 5}, Seed: 11}
	s1, err := Stratify(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Stratify(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1, e1 := s1.MeanIntraSimilarity(500)
	a2, e2 := s2.MeanIntraSimilarity(500)
	if a1 != a2 || e1 != e2 {
		t.Errorf("same config gave different estimates: (%v,%v) vs (%v,%v)", a1, e1, a2, e2)
	}
	a3, e3 := s1.MeanIntraSimilaritySeeded(500, cfg.Seed)
	if a3 != a1 || e3 != e1 {
		t.Errorf("explicit seed %d disagrees with config-driven sampling: (%v,%v) vs (%v,%v)",
			cfg.Seed, a3, e3, a1, e1)
	}
	// A different sampling seed samples different pairs; the estimates
	// should (generically) differ, proving the seed is honored.
	a4, e4 := s1.MeanIntraSimilaritySeeded(500, cfg.Seed+1)
	if a4 == a1 && e4 == e1 {
		t.Errorf("changing the sampling seed changed nothing: (%v,%v)", a4, e4)
	}
}

func TestEntropy(t *testing.T) {
	s := &Stratification{Result: &Result{Members: [][]int{{0, 1}, {2, 3}}}}
	if e := s.Entropy(); e < 0.69 || e > 0.70 {
		t.Errorf("uniform 2-strata entropy %v, want ln 2", e)
	}
	s = &Stratification{Result: &Result{Members: [][]int{{0, 1, 2, 3}, {}}}}
	if e := s.Entropy(); e != 0 {
		t.Errorf("degenerate entropy %v, want 0", e)
	}
	s = &Stratification{Result: &Result{Members: [][]int{{}, {}}}}
	if e := s.Entropy(); e != 0 {
		t.Errorf("empty entropy %v, want 0", e)
	}
}

func TestChooseKRecoversPlantedCount(t *testing.T) {
	// 6 well-separated planted clusters: the elbow should land at or
	// just above 6 (powers of two from 2: 2,4,8 — expect 8, since 4→8
	// still improves markedly and 8→16 does not).
	sketches, _ := plantedSketchesForChooseK(600, 16, 6, 0.1)
	k, err := ChooseK(sketches, 2, 64, Config{L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if k < 4 || k > 16 {
		t.Errorf("ChooseK = %d, want near the planted 6", k)
	}
}

func TestChooseKValidation(t *testing.T) {
	if _, err := ChooseK(nil, 2, 8, Config{L: 1}); err == nil {
		t.Error("no sketches accepted")
	}
	sk, _ := plantedSketchesForChooseK(20, 4, 2, 0.1)
	if _, err := ChooseK(sk, 0, 8, Config{L: 1}); err == nil {
		t.Error("minK 0 accepted")
	}
	if _, err := ChooseK(sk, 8, 4, Config{L: 1}); err == nil {
		t.Error("inverted range accepted")
	}
	// maxK capped at n; minK ≥ maxK short-circuits.
	k, err := ChooseK(sk, 30, 50, Config{L: 1, Seed: 1})
	if err != nil || k != 20 {
		t.Errorf("capped ChooseK = %d, %v (want n=20)", k, err)
	}
}

// plantedSketchesForChooseK mirrors the kmodes test helper without
// sharing state across files.
func plantedSketchesForChooseK(n, width, k int, noise float64) ([]sketch.Sketch, []int) {
	rng := rand.New(rand.NewSource(77))
	protos := make([]sketch.Sketch, k)
	for c := range protos {
		p := make(sketch.Sketch, width)
		for a := range p {
			p[a] = uint64(c*1_000_000 + rng.Intn(500))
		}
		protos[c] = p
	}
	sketches := make([]sketch.Sketch, n)
	truth := make([]int, n)
	for i := range sketches {
		c := i % k
		truth[i] = c
		s := protos[c].Clone()
		for a := range s {
			if rng.Float64() < noise {
				s[a] = rng.Uint64()
			}
		}
		sketches[i] = s
	}
	return sketches, truth
}
