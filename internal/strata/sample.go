package strata

import (
	"fmt"
	"math/rand"
)

// StratifiedSample draws a sample of exactly size records (indices)
// from the strata membership lists, allocating proportionally to
// stratum sizes (largest-remainder) and sampling without replacement
// inside each stratum. Cochran's classical result — that a stratified
// sample tracks the underlying distribution far better than a simple
// random sample — is why the progressive-sampling profiler uses these
// samples: they are representative of the framework's final
// representative partitions (paper §III-E).
func StratifiedSample(members [][]int, size int, seed int64) ([]int, error) {
	n := 0
	for _, m := range members {
		n += len(m)
	}
	if size < 0 || size > n {
		return nil, fmt.Errorf("strata: sample size %d out of [0, %d]", size, n)
	}
	if size == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	// Proportional quotas.
	quota := make([]int, len(members))
	type rem struct {
		s int
		f float64
	}
	rems := make([]rem, 0, len(members))
	assigned := 0
	for s, m := range members {
		exact := float64(size) * float64(len(m)) / float64(n)
		quota[s] = int(exact)
		if quota[s] > len(m) {
			quota[s] = len(m)
		}
		assigned += quota[s]
		rems = append(rems, rem{s, exact - float64(quota[s])})
	}
	for assigned < size {
		best := -1
		for i := range rems {
			s := rems[i].s
			if quota[s] >= len(members[s]) {
				continue
			}
			if best < 0 || rems[i].f > rems[best].f {
				best = i
			}
		}
		if best < 0 {
			break
		}
		quota[rems[best].s]++
		rems[best].f = -1
		assigned++
	}
	// Sample without replacement within each stratum.
	out := make([]int, 0, size)
	for s, m := range members {
		q := quota[s]
		if q == 0 {
			continue
		}
		if q == len(m) {
			out = append(out, m...)
			continue
		}
		perm := rng.Perm(len(m))[:q]
		for _, i := range perm {
			out = append(out, m[i])
		}
	}
	return out, nil
}
