package strata

import (
	"math"
	"testing"

	"pareto/internal/sketch"
)

func TestStratifiedSampleProportions(t *testing.T) {
	// Strata of sizes 600/300/100: a 100-record sample should hold
	// roughly 60/30/10.
	members := make([][]int, 3)
	id := 0
	for s, n := range []int{600, 300, 100} {
		for i := 0; i < n; i++ {
			members[s] = append(members[s], id)
			id++
		}
	}
	sample, err := StratifiedSample(members, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 100 {
		t.Fatalf("sample size %d", len(sample))
	}
	counts := make([]int, 3)
	seen := map[int]bool{}
	for _, r := range sample {
		if seen[r] {
			t.Fatal("sampling with replacement detected")
		}
		seen[r] = true
		switch {
		case r < 600:
			counts[0]++
		case r < 900:
			counts[1]++
		default:
			counts[2]++
		}
	}
	want := []int{60, 30, 10}
	for s := range counts {
		if math.Abs(float64(counts[s]-want[s])) > 2 {
			t.Errorf("stratum %d: %d sampled, want ≈%d", s, counts[s], want[s])
		}
	}
}

func TestStratifiedSampleEdgeCases(t *testing.T) {
	members := [][]int{{0, 1, 2}, {}, {3}}
	// Zero sample.
	s, err := StratifiedSample(members, 0, 1)
	if err != nil || len(s) != 0 {
		t.Errorf("zero sample: %v, %v", s, err)
	}
	// Full sample covers everything exactly once.
	s, err = StratifiedSample(members, 4, 1)
	if err != nil || len(s) != 4 {
		t.Fatalf("full sample: %v, %v", s, err)
	}
	seen := map[int]bool{}
	for _, r := range s {
		seen[r] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Errorf("record %d missing from full sample", i)
		}
	}
	// Oversized and negative rejected.
	if _, err := StratifiedSample(members, 5, 1); err == nil {
		t.Error("oversized sample accepted")
	}
	if _, err := StratifiedSample(members, -1, 1); err == nil {
		t.Error("negative size accepted")
	}
	// Singleton stratum with size 1 sample.
	s, err = StratifiedSample([][]int{{42}}, 1, 9)
	if err != nil || len(s) != 1 || s[0] != 42 {
		t.Errorf("singleton sample %v, %v", s, err)
	}
}

func TestStratifiedSampleDeterministic(t *testing.T) {
	members := [][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11}}
	a, err := StratifiedSample(members, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StratifiedSample(members, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different samples")
		}
	}
}

func TestReseedEmptyRestoresK(t *testing.T) {
	// Adversarial data for K-modes: two records, K=2, but both records
	// identical — one cluster will empty out and must be reseeded
	// rather than silently collapsing.
	sketches := []sketch.Sketch{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}}
	res, err := Cluster(sketches, Config{K: 2, L: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Errorf("K collapsed to %d", res.K())
	}
	total := 0
	for _, m := range res.Members {
		total += len(m)
	}
	if total != 4 {
		t.Errorf("members %d", total)
	}
}
