package strata

import (
	"math"
	"testing"

	"pareto/internal/sketch"
)

// driftFixture hand-builds a frozen stratification with k strata of
// width-w sketches, where every base member of stratum s equals that
// stratum's center exactly (coverage C₀ = 1), so drift values are
// exact closed-form fractions.
func driftFixture(t *testing.T, k, width, membersPer int) (*Stratification, []sketch.Sketch) {
	t.Helper()
	centers := make([]Center, k)
	centerSketch := make([]sketch.Sketch, k)
	for s := 0; s < k; s++ {
		vals := make([][]uint64, width)
		sk := make(sketch.Sketch, width)
		for a := 0; a < width; a++ {
			v := uint64(1000*s + a + 1)
			vals[a] = []uint64{v}
			sk[a] = v
		}
		centers[s] = Center{Values: vals}
		centerSketch[s] = sk
	}
	var sketches []sketch.Sketch
	var assign []int
	members := make([][]int, k)
	for s := 0; s < k; s++ {
		for m := 0; m < membersPer; m++ {
			members[s] = append(members[s], len(sketches))
			sketches = append(sketches, centerSketch[s].Clone())
			assign = append(assign, s)
		}
	}
	st := &Stratification{
		Result:   &Result{Assign: assign, Members: members, Centers: centers},
		Sketches: sketches,
	}
	return st, centerSketch
}

// mutated returns a copy of base with the first nMiss coordinates
// replaced by novel values never used elsewhere in the fixture.
func mutated(base sketch.Sketch, nMiss int, salt uint64) sketch.Sketch {
	s := base.Clone()
	for a := 0; a < nMiss; a++ {
		s[a] = (1 << 40) + salt*64 + uint64(a)
	}
	return s
}

func TestDriftExactThreshold(t *testing.T) {
	st, centerSketch := driftFixture(t, 2, 8, 3)
	d, err := NewDriftTracker(st, DriftConfig{Threshold: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	// One ingest matching center 0 in 4 of 8 attributes: coverage
	// falls from 1 to (3·8+4)/(4·8), drift exactly 4/32 = 0.125.
	rec := mutated(centerSketch[0], 4, 7)
	stratum, miss, err := d.Ingest(rec)
	if err != nil {
		t.Fatal(err)
	}
	if stratum != 0 || miss != 4 {
		t.Fatalf("Ingest = (%d, %d), want (0, 4)", stratum, miss)
	}
	if got := d.Drift(0); got != 0.125 {
		t.Fatalf("Drift(0) = %v, want exactly 0.125", got)
	}
	// Exactly-at-threshold is dirty (inclusive comparison).
	if !d.Dirty(0) {
		t.Fatal("stratum 0 at threshold not dirty; comparison must be inclusive")
	}
	if d.Dirty(1) {
		t.Fatal("untouched stratum 1 reported dirty")
	}
	if got := d.DirtyStrata(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("DirtyStrata = %v, want [0]", got)
	}

	// A hair above threshold: same state, stricter tracker stays clean.
	d2, err := NewDriftTracker(st, DriftConfig{Threshold: math.Nextafter(0.125, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	if d2.Dirty(0) {
		t.Fatal("stratum 0 dirty strictly below threshold")
	}
}

func TestDriftAllCleanAllDirty(t *testing.T) {
	st, centerSketch := driftFixture(t, 3, 8, 2)

	// Threshold 0: every stratum is dirty before any ingest at all.
	d0, err := NewDriftTracker(st, DriftConfig{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := d0.DirtyStrata(); len(got) != 3 {
		t.Fatalf("threshold 0: DirtyStrata = %v, want all 3", got)
	}

	// Positive threshold, ingests that match their center exactly:
	// coverage stays at C₀, everything stays clean.
	d, err := NewDriftTracker(st, DriftConfig{Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		for i := 0; i < 10; i++ {
			got, miss, err := d.Ingest(centerSketch[s])
			if err != nil {
				t.Fatal(err)
			}
			if got != s || miss != 0 {
				t.Fatalf("Ingest clone of center %d = (%d, %d)", s, got, miss)
			}
		}
	}
	if got := d.DirtyStrata(); got != nil {
		t.Fatalf("matching ingests: DirtyStrata = %v, want none", got)
	}

	// Heavy novel traffic into every stratum: all dirty.
	for s := 0; s < 3; s++ {
		for i := 0; i < 20; i++ {
			if _, _, err := d.Ingest(mutated(centerSketch[s], 4, uint64(100+20*s+i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := d.DirtyStrata(); len(got) != 3 {
		t.Fatalf("novel ingests: DirtyStrata = %v, want all 3", got)
	}
}

func TestDriftResetOnRestratify(t *testing.T) {
	st, centerSketch := driftFixture(t, 2, 8, 3)
	d, err := NewDriftTracker(st, DriftConfig{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Drift both strata.
	var ingested []sketch.Sketch
	for s := 0; s < 2; s++ {
		for i := 0; i < 4; i++ {
			rec := mutated(centerSketch[s], 3, uint64(10*s+i))
			if _, _, err := d.Ingest(rec); err != nil {
				t.Fatal(err)
			}
			ingested = append(ingested, rec)
		}
	}
	drift1Before := d.Drift(1)
	if !d.Dirty(0) || !d.Dirty(1) {
		t.Fatalf("expected both strata dirty, drift = %v, %v", d.Drift(0), d.Drift(1))
	}

	// Re-stratify stratum 0 only: fold its ingested records into the
	// membership, keep the center, and reset the tracker for it.
	st2, _ := driftFixture(t, 2, 8, 3)
	for i := 0; i < 4; i++ {
		st2.Members[0] = append(st2.Members[0], len(st2.Sketches))
		st2.Sketches = append(st2.Sketches, ingested[i])
		st2.Assign = append(st2.Assign, 0)
	}
	if err := d.Reset(st2, []int{0}); err != nil {
		t.Fatal(err)
	}
	if got := d.Added(0); got != 0 {
		t.Fatalf("Added(0) after reset = %d, want 0", got)
	}
	if got := d.Drift(0); got != 0 {
		t.Fatalf("Drift(0) after reset = %v, want 0 (baseline refrozen)", got)
	}
	if d.Dirty(0) {
		t.Fatal("stratum 0 dirty immediately after reset")
	}
	// The untouched stratum keeps its accumulated drift and counters.
	if got := d.Drift(1); got != drift1Before {
		t.Fatalf("Drift(1) changed across Reset(0): %v → %v", drift1Before, got)
	}
	if got := d.Added(1); got != 4 {
		t.Fatalf("Added(1) = %d, want 4", got)
	}

	// Drift accumulates again from the fresh baseline.
	if _, _, err := d.Ingest(mutated(centerSketch[0], 8, 999)); err != nil {
		t.Fatal(err)
	}
	if d.Drift(0) <= 0 {
		t.Fatal("Drift(0) did not accumulate after reset")
	}
}

// TestDriftLongStream checks the statistic stays exact and bounded
// over a stream orders of magnitude larger than the base stratification:
// no counter overflow, no baseline staleness, and drift matches the
// closed form throughout.
func TestDriftLongStream(t *testing.T) {
	const (
		width      = 4
		membersPer = 2
		n          = 200_000
	)
	st, centerSketch := driftFixture(t, 2, width, membersPer)
	d, err := NewDriftTracker(st, DriftConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Alternate perfect matches with half-novel records, cycling the
	// novel values through a small fixed set so counter maps stay
	// bounded no matter how long the stream runs.
	miss := 0
	for i := 0; i < n; i++ {
		rec := centerSketch[0]
		if i%2 == 1 {
			rec = mutated(centerSketch[0], 2, uint64(i%16))
			miss += 2
		}
		if _, _, err := d.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Added(0); got != n {
		t.Fatalf("Added(0) = %d, want %d", got, n)
	}
	want := float64(miss) / (float64(membersPer+n) * width)
	if got := d.Drift(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Drift(0) = %v, want %v", got, want)
	}
	// Counter maps stay bounded: each attribute saw the center value
	// plus at most 16 novel values.
	for a := 0; a < width; a++ {
		if len(d.counters.row(0, a)) > 17 {
			t.Fatalf("attr %d counter has %d entries, want ≤ 17", a, len(d.counters.row(0, a)))
		}
	}
	// Refreeze drains the baseline: no staleness survives.
	st2, _ := driftFixture(t, 2, width, membersPer)
	if err := d.Reset(st2, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if d.Drift(0) != 0 || d.Added(0) != 0 {
		t.Fatalf("after reset: drift %v added %d", d.Drift(0), d.Added(0))
	}
}

func TestDriftIngestErrors(t *testing.T) {
	st, _ := driftFixture(t, 2, 8, 2)
	d, err := NewDriftTracker(st, DriftConfig{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Ingest(make(sketch.Sketch, 5)); err == nil {
		t.Fatal("width-mismatched ingest accepted")
	}
	if err := d.Reset(st, []int{7}); err == nil {
		t.Fatal("out-of-range reset accepted")
	}
}

// TestDriftAssignMatchesStratifier pins the ingest assignment to the
// stratifier's: nearest frozen center, ties toward the lowest index.
func TestDriftAssignMatchesStratifier(t *testing.T) {
	st, centerSketch := driftFixture(t, 3, 8, 2)
	d, err := NewDriftTracker(st, DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Equidistant to centers 1 and 2 (4 matches each), farther from 0:
	// the tie must break to stratum 1.
	rec := make(sketch.Sketch, 8)
	copy(rec[:4], centerSketch[1][:4])
	copy(rec[4:], centerSketch[2][4:])
	stratum, miss, err := d.Ingest(rec)
	if err != nil {
		t.Fatal(err)
	}
	if stratum != 1 || miss != 4 {
		t.Fatalf("Ingest = (%d, %d), want (1, 4) by lowest-index tie-break", stratum, miss)
	}
}
