package strata

import (
	"math/rand"
	"reflect"
	"testing"

	"pareto/internal/sketch"
)

// plantedSketches builds n sketches of the given width drawn from k
// well-separated planted clusters: cluster c uses coordinate values in
// a disjoint band, with noise coordinates resampled uniformly.
func plantedSketches(n, width, k int, noise float64, seed int64) ([]sketch.Sketch, []int) {
	rng := rand.New(rand.NewSource(seed))
	sketches := make([]sketch.Sketch, n)
	truth := make([]int, n)
	// Each cluster has a prototype sketch; members copy it and corrupt
	// a noise fraction of coordinates.
	protos := make([]sketch.Sketch, k)
	for c := range protos {
		p := make(sketch.Sketch, width)
		for a := range p {
			p[a] = uint64(c*1_000_000 + rng.Intn(1000))
		}
		protos[c] = p
	}
	for i := range sketches {
		c := i % k
		truth[i] = c
		s := protos[c].Clone()
		for a := range s {
			if rng.Float64() < noise {
				s[a] = rng.Uint64()
			}
		}
		sketches[i] = s
	}
	return sketches, truth
}

func TestClusterValidation(t *testing.T) {
	good := []sketch.Sketch{{1, 2}, {3, 4}}
	cases := []struct {
		sk  []sketch.Sketch
		cfg Config
	}{
		{nil, Config{K: 2, L: 1}},
		{good, Config{K: 0, L: 1}},
		{good, Config{K: 2, L: 0}},
		{[]sketch.Sketch{{}}, Config{K: 1, L: 1}},
		{[]sketch.Sketch{{1, 2}, {3}}, Config{K: 1, L: 1}},
	}
	for i, c := range cases {
		if _, err := Cluster(c.sk, c.cfg); err == nil {
			t.Errorf("case %d: invalid input accepted", i)
		}
	}
}

func TestClusterRecoversPlantedClusters(t *testing.T) {
	sketches, truth := plantedSketches(300, 16, 3, 0.1, 5)
	res, err := Cluster(sketches, Config{K: 3, L: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("expected convergence on well-separated clusters")
	}
	// Compute cluster purity: each found cluster should be dominated
	// by one true cluster.
	for c, members := range res.Members {
		if len(members) == 0 {
			continue
		}
		counts := map[int]int{}
		for _, i := range members {
			counts[truth[i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		purity := float64(best) / float64(len(members))
		if purity < 0.9 {
			t.Errorf("cluster %d purity %.2f < 0.9", c, purity)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	sketches, _ := plantedSketches(100, 8, 4, 0.2, 6)
	r1, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Assign, r2.Assign) {
		t.Error("same seed must give identical clustering")
	}
}

func TestClusterParallelMatchesSerial(t *testing.T) {
	sketches, _ := plantedSketches(200, 8, 4, 0.3, 6)
	serial, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Assign, parallel.Assign) {
		t.Error("worker count must not change the result")
	}
}

func TestClusterKCappedAtN(t *testing.T) {
	sketches := []sketch.Sketch{{1, 2}, {3, 4}}
	res, err := Cluster(sketches, Config{K: 10, L: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Errorf("K = %d, want capped 2", res.K())
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 2 {
			t.Errorf("assignment %d out of range", a)
		}
	}
}

func TestClusterSingleCluster(t *testing.T) {
	sketches, _ := plantedSketches(50, 8, 2, 0.2, 6)
	res, err := Cluster(sketches, Config{K: 1, L: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members[0]) != 50 {
		t.Errorf("single cluster holds %d members, want all 50", len(res.Members[0]))
	}
}

func TestClusterEveryRecordAssigned(t *testing.T) {
	sketches, _ := plantedSketches(123, 8, 5, 0.4, 8)
	res, err := Cluster(sketches, Config{K: 5, L: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.Members {
		total += len(m)
	}
	if total != 123 {
		t.Errorf("members total %d, want 123", total)
	}
	sizes := res.Sizes()
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 123 {
		t.Errorf("Sizes sum %d, want 123", sum)
	}
}

func TestCompositeLReducesZeroMatch(t *testing.T) {
	// With a huge value universe, L=1 centers leave many records with
	// zero matching attributes; larger L must reduce the final
	// mismatch cost (the motivation for compositeKModes, §III-C).
	sketches, _ := plantedSketches(400, 16, 4, 0.5, 10)
	cost := func(l int) int64 {
		res, err := Cluster(sketches, Config{K: 4, L: l, Seed: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	c1, c4 := cost(1), cost(4)
	if c4 > c1 {
		t.Errorf("L=4 cost %d exceeds L=1 cost %d; composite centers should match more", c4, c1)
	}
}

func TestTopL(t *testing.T) {
	freq := map[uint64]int{10: 5, 20: 5, 30: 1, 40: 9}
	got := topL(freq, 2)
	if !reflect.DeepEqual(got, []uint64{40, 10}) {
		t.Errorf("topL = %v, want [40 10] (count desc, value asc tiebreak)", got)
	}
	if got := topL(freq, 10); len(got) != 4 {
		t.Errorf("topL over-long = %v", got)
	}
	if got := topL(nil, 3); len(got) != 0 {
		t.Errorf("topL(nil) = %v", got)
	}
}

func TestDistance(t *testing.T) {
	c := Center{Values: [][]uint64{{1, 2}, {3}, {4}}}
	if d := distance(sketch.Sketch{2, 3, 4}, &c); d != 0 {
		t.Errorf("full match distance %d", d)
	}
	if d := distance(sketch.Sketch{9, 3, 4}, &c); d != 1 {
		t.Errorf("one mismatch distance %d", d)
	}
	if d := distance(sketch.Sketch{9, 9, 9}, &c); d != 3 {
		t.Errorf("no match distance %d", d)
	}
}

func BenchmarkCluster1000x32K8(b *testing.B) {
	sketches, _ := plantedSketches(1000, 32, 8, 0.2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(sketches, Config{K: 8, L: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
