package strata

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pareto/internal/sketch"
)

// plantedSketches builds n sketches of the given width drawn from k
// well-separated planted clusters: cluster c uses coordinate values in
// a disjoint band, with noise coordinates resampled uniformly.
func plantedSketches(n, width, k int, noise float64, seed int64) ([]sketch.Sketch, []int) {
	rng := rand.New(rand.NewSource(seed))
	sketches := make([]sketch.Sketch, n)
	truth := make([]int, n)
	// Each cluster has a prototype sketch; members copy it and corrupt
	// a noise fraction of coordinates.
	protos := make([]sketch.Sketch, k)
	for c := range protos {
		p := make(sketch.Sketch, width)
		for a := range p {
			p[a] = uint64(c*1_000_000 + rng.Intn(1000))
		}
		protos[c] = p
	}
	for i := range sketches {
		c := i % k
		truth[i] = c
		s := protos[c].Clone()
		for a := range s {
			if rng.Float64() < noise {
				s[a] = rng.Uint64()
			}
		}
		sketches[i] = s
	}
	return sketches, truth
}

func TestClusterValidation(t *testing.T) {
	good := []sketch.Sketch{{1, 2}, {3, 4}}
	cases := []struct {
		sk  []sketch.Sketch
		cfg Config
	}{
		{nil, Config{K: 2, L: 1}},
		{good, Config{K: 0, L: 1}},
		{good, Config{K: 2, L: 0}},
		{[]sketch.Sketch{{}}, Config{K: 1, L: 1}},
		{[]sketch.Sketch{{1, 2}, {3}}, Config{K: 1, L: 1}},
	}
	for i, c := range cases {
		if _, err := Cluster(c.sk, c.cfg); err == nil {
			t.Errorf("case %d: invalid input accepted", i)
		}
	}
}

func TestClusterRecoversPlantedClusters(t *testing.T) {
	sketches, truth := plantedSketches(300, 16, 3, 0.1, 5)
	res, err := Cluster(sketches, Config{K: 3, L: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("expected convergence on well-separated clusters")
	}
	// Compute cluster purity: each found cluster should be dominated
	// by one true cluster.
	for c, members := range res.Members {
		if len(members) == 0 {
			continue
		}
		counts := map[int]int{}
		for _, i := range members {
			counts[truth[i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		purity := float64(best) / float64(len(members))
		if purity < 0.9 {
			t.Errorf("cluster %d purity %.2f < 0.9", c, purity)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	sketches, _ := plantedSketches(100, 8, 4, 0.2, 6)
	r1, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Assign, r2.Assign) {
		t.Error("same seed must give identical clustering")
	}
}

func TestClusterParallelMatchesSerial(t *testing.T) {
	sketches, _ := plantedSketches(200, 8, 4, 0.3, 6)
	serial, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Assign, parallel.Assign) {
		t.Error("worker count must not change the result")
	}
}

func TestClusterKCappedAtN(t *testing.T) {
	sketches := []sketch.Sketch{{1, 2}, {3, 4}}
	res, err := Cluster(sketches, Config{K: 10, L: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Errorf("K = %d, want capped 2", res.K())
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 2 {
			t.Errorf("assignment %d out of range", a)
		}
	}
}

func TestClusterSingleCluster(t *testing.T) {
	sketches, _ := plantedSketches(50, 8, 2, 0.2, 6)
	res, err := Cluster(sketches, Config{K: 1, L: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members[0]) != 50 {
		t.Errorf("single cluster holds %d members, want all 50", len(res.Members[0]))
	}
}

func TestClusterEveryRecordAssigned(t *testing.T) {
	sketches, _ := plantedSketches(123, 8, 5, 0.4, 8)
	res, err := Cluster(sketches, Config{K: 5, L: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.Members {
		total += len(m)
	}
	if total != 123 {
		t.Errorf("members total %d, want 123", total)
	}
	sizes := res.Sizes()
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 123 {
		t.Errorf("Sizes sum %d, want 123", sum)
	}
}

func TestCompositeLReducesZeroMatch(t *testing.T) {
	// With a huge value universe, L=1 centers leave many records with
	// zero matching attributes; larger L must reduce the final
	// mismatch cost (the motivation for compositeKModes, §III-C).
	sketches, _ := plantedSketches(400, 16, 4, 0.5, 10)
	cost := func(l int) int64 {
		res, err := Cluster(sketches, Config{K: 4, L: l, Seed: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	c1, c4 := cost(1), cost(4)
	if c4 > c1 {
		t.Errorf("L=4 cost %d exceeds L=1 cost %d; composite centers should match more", c4, c1)
	}
}

func TestTopL(t *testing.T) {
	freq := map[uint64]int{10: 5, 20: 5, 30: 1, 40: 9}
	got := topL(freq, 2)
	if !reflect.DeepEqual(got, []uint64{40, 10}) {
		t.Errorf("topL = %v, want [40 10] (count desc, value asc tiebreak)", got)
	}
	if got := topL(freq, 10); len(got) != 4 {
		t.Errorf("topL over-long = %v", got)
	}
	if got := topL(nil, 3); len(got) != 0 {
		t.Errorf("topL(nil) = %v", got)
	}
}

func TestReferenceDistance(t *testing.T) {
	c := Center{Values: [][]uint64{{1, 2}, {3}, {4}}}
	if d := referenceDistance(sketch.Sketch{2, 3, 4}, &c); d != 0 {
		t.Errorf("full match distance %d", d)
	}
	if d := referenceDistance(sketch.Sketch{9, 3, 4}, &c); d != 1 {
		t.Errorf("one mismatch distance %d", d)
	}
	if d := referenceDistance(sketch.Sketch{9, 9, 9}, &c); d != 3 {
		t.Errorf("no match distance %d", d)
	}
}

// ---------------------------------------------------------------------------
// Reference implementation: the seed repo's naive compositeKModes loop,
// kept verbatim (serial assignment, full center rebuild per round) as
// the oracle the optimized hot path must match bit-exactly.
// ---------------------------------------------------------------------------

// referenceDistance counts attributes of s that match none of the
// center's candidate values — the naive composite mismatch metric.
func referenceDistance(s sketch.Sketch, c *Center) int {
	d := 0
	for a, v := range s {
		if !c.matches(a, v) {
			d++
		}
	}
	return d
}

// referenceUpdateCenters recomputes each center as the per-attribute
// top-L values among its members, rebuilding every frequency map from
// scratch.
func referenceUpdateCenters(sketches []sketch.Sketch, assign []int, k, width, l int) []Center {
	counts := make([]map[uint64]int, k*width)
	for i := range counts {
		counts[i] = make(map[uint64]int)
	}
	for i, s := range sketches {
		base := assign[i] * width
		for a, v := range s {
			counts[base+a][v]++
		}
	}
	centers := make([]Center, k)
	for c := 0; c < k; c++ {
		vals := make([][]uint64, width)
		for a := 0; a < width; a++ {
			vals[a] = topL(counts[c*width+a], l)
		}
		centers[c] = Center{Values: vals}
	}
	return centers
}

// referenceCluster is the naive serial clustering loop. It shares
// initCenters/reseedEmpty with the production path (they are not hot)
// and mirrors its exit semantics: on MaxIter exhaustion the trailing
// update is skipped so Centers stay consistent with Assign/Cost.
func referenceCluster(sketches []sketch.Sketch, cfg Config) (*Result, error) {
	n := len(sketches)
	if n == 0 {
		return nil, fmt.Errorf("strata: no sketches to cluster")
	}
	width := len(sketches[0])
	k := cfg.K
	if k > n {
		k = n
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := initCenters(sketches, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		var cost int64
		for i := range sketches {
			best, bestDist := 0, int(^uint(0)>>1)
			for c := range centers {
				// First-lowest-index wins ties: only a strictly
				// smaller distance displaces the incumbent.
				if d := referenceDistance(sketches[i], &centers[c]); d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			cost += int64(bestDist)
		}
		res.Cost = cost
		if !changed {
			res.Converged = true
			break
		}
		if iter == maxIter-1 {
			break
		}
		centers = referenceUpdateCenters(sketches, assign, k, width, cfg.L)
		reseedEmpty(sketches, centers, assign, rng)
	}
	res.Assign = assign
	res.Centers = centers
	res.Members = make([][]int, k)
	for i, a := range assign {
		res.Members[a] = append(res.Members[a], i)
	}
	return res, nil
}

// lowUniverseSketches draws sketch coordinates from a tiny value
// universe, forcing heavy ties in top-L selection and frequent
// equidistant centers — the adversarial regime for the optimized
// tie-breaking and padding.
func lowUniverseSketches(n, width, universe int, seed int64) []sketch.Sketch {
	rng := rand.New(rand.NewSource(seed))
	out := make([]sketch.Sketch, n)
	for i := range out {
		s := make(sketch.Sketch, width)
		for a := range s {
			s[a] = uint64(rng.Intn(universe))
		}
		out[i] = s
	}
	return out
}

// TestClusterMatchesReference sweeps n/K/L/width/seed combinations
// (covering the bitmask path K∈[8,64], the scan path K<8 and K>64,
// L larger than the distinct-value count, and MaxIter exhaustion) and
// asserts the optimized hot path reproduces the reference bit-exactly:
// same assignments, same centers, same cost, same iteration count.
func TestClusterMatchesReference(t *testing.T) {
	type tc struct {
		name     string
		sketches []sketch.Sketch
		cfg      Config
	}
	planted := func(n, width, k int, noise float64, seed int64) []sketch.Sketch {
		s, _ := plantedSketches(n, width, k, noise, seed)
		return s
	}
	cases := []tc{
		{"scan-small-K", planted(180, 8, 3, 0.2, 1), Config{K: 3, L: 2, Seed: 11}},
		{"scan-K2-L1", planted(90, 4, 2, 0.4, 2), Config{K: 2, L: 1, Seed: 5}},
		{"mask-K8", planted(250, 16, 8, 0.3, 3), Config{K: 8, L: 3, Seed: 7}},
		{"mask-K32", planted(400, 12, 16, 0.25, 4), Config{K: 32, L: 2, Seed: 13}},
		{"mask-K64", planted(300, 8, 10, 0.3, 5), Config{K: 64, L: 2, Seed: 17}},
		{"scan-K-above-64", planted(300, 6, 12, 0.3, 6), Config{K: 70, L: 2, Seed: 19}},
		{"ties-low-universe", lowUniverseSketches(220, 10, 3, 7), Config{K: 12, L: 4, Seed: 23}},
		{"L-exceeds-universe", lowUniverseSketches(150, 6, 2, 8), Config{K: 9, L: 8, Seed: 29}},
		{"maxiter-exhausted", lowUniverseSketches(260, 12, 4, 9), Config{K: 16, L: 2, Seed: 31, MaxIter: 3}},
		{"maxiter-1", planted(120, 8, 4, 0.5, 10), Config{K: 8, L: 2, Seed: 37, MaxIter: 1}},
		{"workers-1", planted(200, 8, 5, 0.3, 11), Config{K: 10, L: 3, Seed: 41, Workers: 1}},
		{"workers-many", planted(200, 8, 5, 0.3, 11), Config{K: 10, L: 3, Seed: 41, Workers: 13}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := referenceCluster(c.sketches, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Cluster(c.sketches, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Assign, want.Assign) {
				t.Fatal("Assign diverges from reference")
			}
			if got.Cost != want.Cost {
				t.Fatalf("Cost = %d, reference %d", got.Cost, want.Cost)
			}
			if got.Iterations != want.Iterations || got.Converged != want.Converged {
				t.Fatalf("loop shape (%d, %v), reference (%d, %v)",
					got.Iterations, got.Converged, want.Iterations, want.Converged)
			}
			if !centersEqual(got.Centers, want.Centers) {
				t.Fatal("Centers diverge from reference")
			}
			if !reflect.DeepEqual(got.Members, want.Members) {
				t.Fatal("Members diverge from reference")
			}
		})
	}
}

// centersEqual compares centers treating nil and empty candidate lists
// as equal (topL(empty) returns an empty slice either way).
func centersEqual(a, b []Center) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if len(a[c].Values) != len(b[c].Values) {
			return false
		}
		for at := range a[c].Values {
			va, vb := a[c].Values[at], b[c].Values[at]
			if len(va) != len(vb) {
				return false
			}
			for j := range va {
				if va[j] != vb[j] {
					return false
				}
			}
		}
	}
	return true
}

// TestClusterMaxIterCentersConsistent is the regression test for the
// MaxIter-exit inconsistency: the returned Centers must be the centers
// the final Assign/Cost were computed against, so re-deriving the
// nearest center of every record from Result.Centers reproduces
// Result.Assign and summing the distances reproduces Result.Cost.
func TestClusterMaxIterCentersConsistent(t *testing.T) {
	sketches := lowUniverseSketches(300, 12, 4, 3)
	res, err := Cluster(sketches, Config{K: 16, L: 2, Seed: 1, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("test needs a MaxIter-exhausted run; pick noisier data")
	}
	var cost int64
	for i, s := range sketches {
		best, bestDist := 0, int(^uint(0)>>1)
		for c := range res.Centers {
			if d := referenceDistance(s, &res.Centers[c]); d < bestDist {
				best, bestDist = c, d
			}
		}
		if res.Assign[i] != best {
			t.Fatalf("record %d assigned to %d but Centers say %d", i, res.Assign[i], best)
		}
		cost += int64(bestDist)
	}
	if cost != res.Cost {
		t.Fatalf("re-derived cost %d, Result.Cost %d", cost, res.Cost)
	}
}

// TestClusterIterStats checks the per-round profile surfaced for
// planner-overhead reporting.
func TestClusterIterStats(t *testing.T) {
	sketches, _ := plantedSketches(200, 8, 4, 0.2, 6)
	res, err := Cluster(sketches, Config{K: 4, L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterStats) != res.Iterations {
		t.Fatalf("%d IterStats for %d iterations", len(res.IterStats), res.Iterations)
	}
	if res.IterStats[0].Moved != 200 {
		t.Errorf("first round moved %d records, want all 200", res.IterStats[0].Moved)
	}
	last := res.IterStats[len(res.IterStats)-1]
	if res.Converged && last.Moved != 0 {
		t.Errorf("converged run's final round moved %d records", last.Moved)
	}
	if last.Update != 0 {
		t.Errorf("final round has update time %v, want none (no trailing update)", last.Update)
	}
}

func BenchmarkCluster1000x32K8(b *testing.B) {
	sketches, _ := plantedSketches(1000, 32, 8, 0.2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(sketches, Config{K: 8, L: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
