package strata

import "pareto/internal/sketch"

// freqCounters maintains the per-(stratum, attribute) value→frequency
// maps behind incremental center updates: counts.row(s, a)[v] is the
// number of stratum-s members whose sketch attribute a equals v.
// Entries are deleted when they reach zero, so top-L selection (and any
// other consumer) sees exactly the values present among current
// members. The type is shared between the kmodes assign/update loop,
// which applies per-round membership deltas, and the online
// DriftTracker, which folds ingested records into frozen strata.
type freqCounters struct {
	k, width int
	counts   []map[uint64]int
}

// newFreqCounters allocates empty counters for k strata of the given
// sketch width.
func newFreqCounters(k, width int) *freqCounters {
	f := &freqCounters{k: k, width: width, counts: make([]map[uint64]int, k*width)}
	for i := range f.counts {
		f.counts[i] = make(map[uint64]int)
	}
	return f
}

// row returns the value→frequency map of (stratum, attribute).
func (f *freqCounters) row(stratum, attr int) map[uint64]int {
	return f.counts[stratum*f.width+attr]
}

// count returns the frequency of value v at (stratum, attribute).
func (f *freqCounters) count(stratum, attr int, v uint64) int {
	return f.counts[stratum*f.width+attr][v]
}

// add folds one member sketch into stratum's counters.
func (f *freqCounters) add(s sketch.Sketch, stratum int) {
	base := stratum * f.width
	for a, v := range s {
		f.counts[base+a][v]++
	}
}

// remove unfolds one member sketch from stratum's counters, deleting
// entries that reach zero.
func (f *freqCounters) remove(s sketch.Sketch, stratum int) {
	base := stratum * f.width
	for a, v := range s {
		m := f.counts[base+a]
		if m[v] == 1 {
			delete(m, v)
		} else {
			m[v]--
		}
	}
}

// move applies one membership change (old → now) as a delta.
func (f *freqCounters) move(s sketch.Sketch, old, now int) {
	oldBase, newBase := old*f.width, now*f.width
	for a, v := range s {
		oc := f.counts[oldBase+a]
		if oc[v] == 1 {
			delete(oc, v)
		} else {
			oc[v]--
		}
		f.counts[newBase+a][v]++
	}
}

// clearStratum empties every attribute row of one stratum, keeping the
// maps so their capacity is reused.
func (f *freqCounters) clearStratum(stratum int) {
	base := stratum * f.width
	for a := 0; a < f.width; a++ {
		clear(f.counts[base+a])
	}
}
