package strata

import (
	"errors"
	"fmt"

	"pareto/internal/sketch"
)

// ChooseK selects a stratum count by the elbow criterion: it clusters
// at geometrically increasing K and stops when doubling K no longer
// buys a meaningful reduction of the mismatch cost. The paper fixes K
// manually ("usually the number of strata are much higher than the
// number of partitions", §III-E); this helper automates that choice
// for users who do not know their data's latent group structure.
//
// minK is typically the partition count (every partition needs strata
// to draw from); maxK caps the search. The relative-improvement
// threshold is fixed at 10%.
func ChooseK(sketches []sketch.Sketch, minK, maxK int, cfg Config) (int, error) {
	if len(sketches) == 0 {
		return 0, errors.New("strata: no sketches")
	}
	if minK < 1 || maxK < minK {
		return 0, fmt.Errorf("strata: invalid K range [%d, %d]", minK, maxK)
	}
	if maxK > len(sketches) {
		maxK = len(sketches)
	}
	if minK >= maxK {
		return maxK, nil
	}
	const improvementFloor = 0.10
	costAt := func(k int) (int64, error) {
		c := cfg
		c.K = k
		res, err := Cluster(sketches, c)
		if err != nil {
			return 0, err
		}
		return res.Cost, nil
	}
	bestK := minK
	prev, err := costAt(minK)
	if err != nil {
		return 0, err
	}
	for k := minK * 2; k <= maxK; k *= 2 {
		cur, err := costAt(k)
		if err != nil {
			return 0, err
		}
		if prev <= 0 {
			break // cost already zero: more strata cannot help
		}
		improvement := float64(prev-cur) / float64(prev)
		if improvement < improvementFloor {
			break
		}
		bestK = k
		prev = cur
	}
	return bestK, nil
}
