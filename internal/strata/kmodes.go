// Package strata implements the data stratifier (paper §III-C): it
// clusters record sketches with the compositeKModes algorithm of Wang
// et al. (ICDE 2013) so that each cluster — a *stratum* — groups
// records with similar content.
//
// Standard KModes keeps one mode (most frequent value) per attribute
// of each cluster center. Sketch coordinates are drawn from a huge
// universe, so a record matches a single mode with vanishing
// probability and most records end up equidistant from every center
// (the "zero-match" problem). compositeKModes instead keeps the L
// highest-frequency values per attribute; a record coordinate matches
// if it equals any of the L values. With L > 1 the zero-match
// probability drops geometrically while the KModes convergence
// argument (assignment and update both monotonically decrease the
// mismatch objective) is preserved.
//
// The assign/update loop is the planner's hot path (every
// core.BuildPlan stratifies before it can profile or optimize), so the
// implementation is organized around three invariant-preserving
// optimizations — all bit-exact with the naive formulation, which the
// tests keep as a reference implementation:
//
//   - Assignment reads centers from a flattened [K×width×L]uint64
//     matrix (short attribute rows padded by repeating the first
//     candidate) and abandons a center as soon as its running mismatch
//     count reaches the best distance so far. For moderate K a
//     per-attribute value→center-bitmask index replaces the scan
//     entirely.
//   - Workers persist across iterations: one goroutine per worker with
//     per-round channel barriers, reusing per-worker scratch (moved
//     lists, match counters) instead of respawning goroutines and
//     reallocating result slices every round.
//   - Center updates are incremental: per-(stratum, attribute)
//     frequency counters persist across iterations and only the
//     records that changed stratum this round are applied as deltas;
//     top-L is recomputed only for strata whose membership changed.
package strata

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"pareto/internal/sketch"
)

// Config controls compositeKModes clustering.
type Config struct {
	// K is the number of strata (clusters). Required ≥ 1.
	K int
	// L is the number of highest-frequency values retained per center
	// attribute. Required ≥ 1; the paper uses L > 1 to avoid
	// zero-match assignment failures.
	L int
	// MaxIter bounds the assign/update rounds. 0 means DefaultMaxIter.
	MaxIter int
	// Seed drives center initialization; equal seeds give equal runs.
	Seed int64
	// Workers bounds parallelism in the assignment step.
	// 0 means GOMAXPROCS.
	Workers int
}

// DefaultMaxIter is used when Config.MaxIter is zero.
const DefaultMaxIter = 50

// Center is one cluster center: per sketch attribute, up to L candidate
// values ordered by descending member frequency.
type Center struct {
	Values [][]uint64
}

// matches reports whether coordinate value v matches attribute a.
func (c *Center) matches(a int, v uint64) bool {
	for _, w := range c.Values[a] {
		if w == v {
			return true
		}
	}
	return false
}

// IterStat is the wall-clock and movement profile of one assign/update
// round, surfaced so planner overhead can be reported alongside the
// paper's figures.
type IterStat struct {
	// Assign is the time spent assigning every record to its nearest
	// center (all workers, wall clock).
	Assign time.Duration
	// Update is the time spent updating centers and reseeding empty
	// strata. Zero on the final round (converged or MaxIter-exhausted),
	// which performs no update.
	Update time.Duration
	// Moved counts records whose stratum changed this round.
	Moved int
}

// Result is a completed clustering.
type Result struct {
	// Assign maps record index → stratum index in [0, K).
	Assign []int
	// Members lists record indices per stratum, each ascending.
	Members [][]int
	// Centers holds the final composite centers. They are always the
	// centers the final Assign was computed against, so Assign, Centers
	// and Cost are mutually consistent even when MaxIter is exhausted.
	Centers []Center
	// Iterations is the number of assign/update rounds executed.
	Iterations int
	// Converged reports whether assignments reached a fixed point
	// before MaxIter.
	Converged bool
	// Cost is the final objective: total attribute mismatches between
	// each record and its center.
	Cost int64
	// IterStats profiles each executed round.
	IterStats []IterStat
}

// K returns the number of strata.
func (r *Result) K() int { return len(r.Members) }

// Sizes returns the member count of each stratum.
func (r *Result) Sizes() []int {
	s := make([]int, len(r.Members))
	for i, m := range r.Members {
		s[i] = len(m)
	}
	return s
}

// Cluster runs compositeKModes over the sketches. All sketches must
// have equal width. K is capped at the number of records.
func Cluster(sketches []sketch.Sketch, cfg Config) (*Result, error) {
	n := len(sketches)
	if n == 0 {
		return nil, errors.New("strata: no sketches to cluster")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("strata: K = %d, need ≥ 1", cfg.K)
	}
	if cfg.L < 1 {
		return nil, fmt.Errorf("strata: L = %d, need ≥ 1", cfg.L)
	}
	width := len(sketches[0])
	if width == 0 {
		return nil, errors.New("strata: zero-width sketches")
	}
	for i, s := range sketches {
		if len(s) != width {
			return nil, fmt.Errorf("strata: sketch %d has width %d, want %d", i, len(s), width)
		}
	}
	k := cfg.K
	if k > n {
		k = n
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := initCenters(sketches, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	st := newClusterState(sketches, k, width, cfg.L, workers)
	defer st.close()

	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		start := time.Now()
		changed, cost, moved := st.assignAll(centers, assign)
		stat := IterStat{Assign: time.Since(start), Moved: moved}
		res.Cost = cost
		if !changed {
			res.Converged = true
			res.IterStats = append(res.IterStats, stat)
			break
		}
		if iter == maxIter-1 {
			// MaxIter exhausted: skip the trailing update so the
			// returned Centers are the ones Assign and Cost were
			// computed against.
			res.IterStats = append(res.IterStats, stat)
			break
		}
		start = time.Now()
		st.updateCenters(centers, assign)
		reseedEmpty(sketches, centers, assign, rng)
		stat.Update = time.Since(start)
		res.IterStats = append(res.IterStats, stat)
	}

	res.Assign = assign
	res.Centers = centers
	res.Members = make([][]int, k)
	for i, a := range assign {
		res.Members[a] = append(res.Members[a], i)
	}
	return res, nil
}

// initCenters seeds k centers from distinct random records.
func initCenters(sketches []sketch.Sketch, k int, rng *rand.Rand) []Center {
	perm := rng.Perm(len(sketches))
	centers := make([]Center, k)
	for c := 0; c < k; c++ {
		s := sketches[perm[c]]
		vals := make([][]uint64, len(s))
		for a, v := range s {
			vals[a] = []uint64{v}
		}
		centers[c] = Center{Values: vals}
	}
	return centers
}

// maskPathMaxK bounds the value→center-bitmask assignment path: masks
// are single uint64 words, so it only exists for K ≤ 64 centers.
const maskPathMaxK = 64

// maskPathMinK is the K below which the flattened scan with early exit
// beats the per-attribute hash lookups of the mask path.
const maskPathMinK = 8

// clusterState carries the hot-path scratch that persists across
// assign/update rounds of one Cluster call.
type clusterState struct {
	sketches []sketch.Sketch
	k        int
	width    int
	l        int

	// flat is the flattened center matrix: attribute row (c, a) lives
	// at flat[(c*width+a)*l : +l]. Rows shorter than L are padded by
	// repeating the first candidate value, so the match loop has a
	// fixed trip count without a per-row length lookup.
	flat []uint64

	// masks[a] maps an attribute-a value to the bitmask of centers
	// listing it among their L candidates (mask path only).
	masks   []map[uint64]uint64
	useMask bool

	// counters holds the per-(stratum, attribute) value frequencies of
	// current members. Maintained incrementally across rounds.
	counters *freqCounters
	// dirty marks strata whose membership changed since their center
	// was last rebuilt.
	dirty []bool
	// fresh is true until the first updateCenters call, which builds
	// the counters from scratch.
	fresh bool
	// sel is the reusable top-L selection scratch.
	sel []valCount

	pool *assignPool
}

func newClusterState(sketches []sketch.Sketch, k, width, l, workers int) *clusterState {
	st := &clusterState{
		sketches: sketches,
		k:        k,
		width:    width,
		l:        l,
		flat:     make([]uint64, k*width*l),
		useMask:  k >= maskPathMinK && k <= maskPathMaxK,
		counters: newFreqCounters(k, width),
		dirty:    make([]bool, k),
		fresh:    true,
	}
	if st.useMask {
		st.masks = make([]map[uint64]uint64, width)
		for a := range st.masks {
			st.masks[a] = make(map[uint64]uint64, k*l)
		}
	}
	st.pool = newAssignPool(st, len(sketches), workers)
	return st
}

func (st *clusterState) close() { st.pool.close() }

// loadCenters flattens the centers into the matrix (and rebuilds the
// value→center-bitmask index on the mask path) before an assignment
// round. Every attribute row of a live center is non-empty by
// construction: initCenters and reseedEmpty store one value per
// attribute, and updateCenters rebuilds a stratum only from a non-empty
// member multiset or leaves it for reseedEmpty.
func (st *clusterState) loadCenters(centers []Center) {
	flattenCenters(st.flat, centers, st.width, st.l)
	if !st.useMask {
		return
	}
	for a := range st.masks {
		clear(st.masks[a])
	}
	for c := range centers {
		bit := uint64(1) << uint(c)
		for a, vs := range centers[c].Values {
			m := st.masks[a]
			for _, v := range vs {
				m[v] |= bit
			}
		}
	}
}

// assignAll assigns every record to its nearest center using the
// persistent worker pool, reporting whether any assignment changed, the
// total mismatch cost, and how many records moved. Ties in distance
// break toward the lowest center index (centers are scanned in
// ascending order and only a strictly smaller distance displaces the
// incumbent).
func (st *clusterState) assignAll(centers []Center, assign []int) (changed bool, cost int64, moved int) {
	st.loadCenters(centers)
	p := st.pool
	p.assign = assign
	p.run()
	for w := 0; w < p.workers; w++ {
		cost += p.cost[w]
		moved += len(p.moved[w])
	}
	return moved > 0, cost, moved
}

// flattenCenters writes the centers into the [k×width×l] matrix used
// by the scan path: attribute row (c, a) lives at flat[(c*width+a)*l :
// +l], short rows padded by repeating the first candidate value so the
// match loop has a fixed trip count without a per-row length lookup.
func flattenCenters(flat []uint64, centers []Center, width, l int) {
	for c := range centers {
		vals := centers[c].Values
		base := c * width * l
		for a := 0; a < width; a++ {
			vs := vals[a]
			if len(vs) == 0 {
				panic("strata: assigning against a center attribute with no candidate values")
			}
			row := flat[base+a*l : base+(a+1)*l]
			for j := range row {
				if j < len(vs) {
					row[j] = vs[j]
				} else {
					row[j] = vs[0]
				}
			}
		}
	}
}

// nearestScan finds the nearest center by scanning the flattened
// matrix, abandoning a center as soon as its partial mismatch count d
// can no longer beat bestDist (d only grows, and a tie keeps the
// incumbent lower index).
func (st *clusterState) nearestScan(s sketch.Sketch) (best, bestDist int) {
	return nearestFlat(st.flat, st.k, st.width, st.l, s)
}

// nearestFlat scans a flattened [k×width×l] center matrix (see
// flattenCenters) for the center nearest to s under attribute-mismatch
// distance. Ties break toward the lowest center index: centers are
// scanned ascending and only a strictly smaller distance displaces the
// incumbent. Shared by the clustering hot path and the online
// DriftTracker, which must assign ingested records exactly like the
// stratifier would.
func nearestFlat(flat []uint64, k, width, l int, s sketch.Sketch) (best, bestDist int) {
	stride := width * l
	bestDist = width + 1
	for c := 0; c < k; c++ {
		row := flat[c*stride : (c+1)*stride]
		d := 0
		for a := 0; a < width; a++ {
			v := s[a]
			match := false
			for j := a * l; j < (a+1)*l; j++ {
				if row[j] == v {
					match = true
					break
				}
			}
			if !match {
				d++
				if d >= bestDist {
					break
				}
			}
		}
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best, bestDist
}

// nearestMask finds the nearest center through the per-attribute
// value→center-bitmask index: each attribute contributes one hash
// lookup plus one counter increment per matching center, so the cost is
// O(width + matches) instead of O(K·width·L). matchCounts is the
// caller's K-sized scratch. Maximizing matches is minimizing mismatch
// distance; the strict > keeps the lowest center index on ties, exactly
// like the scan path.
func (st *clusterState) nearestMask(s sketch.Sketch, matchCounts []int) (best, bestDist int) {
	for c := range matchCounts {
		matchCounts[c] = 0
	}
	masks := st.masks
	for a, v := range s {
		m := masks[a][v]
		for m != 0 {
			matchCounts[bits.TrailingZeros64(m)]++
			m &= m - 1
		}
	}
	best, bestCount := 0, matchCounts[0]
	for c := 1; c < len(matchCounts); c++ {
		if matchCounts[c] > bestCount {
			best, bestCount = c, matchCounts[c]
		}
	}
	return best, st.width - bestCount
}

// updateCenters rebuilds the centers of strata whose membership changed
// this round, from the persistent frequency counters. The first call
// builds the counters from the full assignment; later calls apply only
// the per-record deltas collected by the assignment workers. A stratum
// whose membership did not change keeps its Center unchanged — its
// counters are identical, and top-L selection is a pure deterministic
// function of the counters (count desc, value asc), so the rebuild
// would produce the same values.
func (st *clusterState) updateCenters(centers []Center, assign []int) {
	width, l := st.width, st.l
	if st.fresh {
		st.fresh = false
		for i, s := range st.sketches {
			st.counters.add(s, assign[i])
		}
		for c := range st.dirty {
			st.dirty[c] = true
		}
	} else {
		for w := 0; w < st.pool.workers; w++ {
			for _, m := range st.pool.moved[w] {
				now := assign[m.idx]
				st.counters.move(st.sketches[m.idx], m.old, now)
				st.dirty[m.old] = true
				st.dirty[now] = true
			}
		}
	}
	for c := 0; c < st.k; c++ {
		if !st.dirty[c] {
			continue
		}
		st.dirty[c] = false
		// One arena backs all of this center's candidate rows; the
		// full slice expressions keep rows from aliasing each other.
		vals := make([][]uint64, width)
		arena := make([]uint64, 0, width*l)
		for a := 0; a < width; a++ {
			lo := len(arena)
			arena = appendTopL(arena, st.counters.row(c, a), l, &st.sel)
			vals[a] = arena[lo:len(arena):len(arena)]
		}
		centers[c] = Center{Values: vals}
	}
}

// movedRec records one reassignment for the incremental center update.
type movedRec struct {
	idx int
	old int
}

// assignPool is a persistent worker pool for the assignment step: one
// goroutine per worker, woken through a per-worker channel each round
// and joined through a WaitGroup, so iterations reuse goroutines and
// per-worker scratch instead of reallocating both every round. The
// coordinator's writes (loadCenters, p.assign) happen before the
// channel sends and the workers' result writes happen before wg.Done,
// so rounds are totally ordered without locks.
type assignPool struct {
	st      *clusterState
	workers int
	ranges  [][2]int
	start   []chan struct{}
	wg      sync.WaitGroup

	assign []int

	// Per-worker round results and reusable scratch.
	cost        []int64
	moved       [][]movedRec
	matchCounts [][]int
}

func newAssignPool(st *clusterState, n, workers int) *assignPool {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	p := &assignPool{
		st:          st,
		workers:     workers,
		ranges:      make([][2]int, workers),
		start:       make([]chan struct{}, workers),
		cost:        make([]int64, workers),
		moved:       make([][]movedRec, workers),
		matchCounts: make([][]int, workers),
	}
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		p.ranges[w] = [2]int{lo, hi}
		p.start[w] = make(chan struct{})
		if st.useMask {
			p.matchCounts[w] = make([]int, st.k)
		}
		go p.serve(w)
	}
	return p
}

// run executes one assignment round across all workers and blocks until
// every range is processed.
func (p *assignPool) run() {
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.start[w] <- struct{}{}
	}
	p.wg.Wait()
}

// close terminates the worker goroutines.
func (p *assignPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}

// serve is the long-lived loop of worker w.
func (p *assignPool) serve(w int) {
	for range p.start[w] {
		p.round(w)
		p.wg.Done()
	}
}

// round processes worker w's record range for the current round.
func (p *assignPool) round(w int) {
	st := p.st
	lo, hi := p.ranges[w][0], p.ranges[w][1]
	moved := p.moved[w][:0]
	var cost int64
	if st.useMask {
		counts := p.matchCounts[w]
		for i := lo; i < hi; i++ {
			best, bestDist := st.nearestMask(st.sketches[i], counts)
			if p.assign[i] != best {
				moved = append(moved, movedRec{idx: i, old: p.assign[i]})
				p.assign[i] = best
			}
			cost += int64(bestDist)
		}
	} else {
		for i := lo; i < hi; i++ {
			best, bestDist := st.nearestScan(st.sketches[i])
			if p.assign[i] != best {
				moved = append(moved, movedRec{idx: i, old: p.assign[i]})
				p.assign[i] = best
			}
			cost += int64(bestDist)
		}
	}
	p.moved[w] = moved
	p.cost[w] = cost
}

// valCount is one (value, frequency) entry of the top-L selection.
type valCount struct {
	v uint64
	n int
}

// ranksAbove is the strict total order of top-L selection: count desc,
// value asc. Values within one frequency map are distinct, so two
// entries never tie completely and the top-L list is unique regardless
// of map iteration order.
func (e valCount) ranksAbove(o valCount) bool {
	if e.n != o.n {
		return e.n > o.n
	}
	return e.v < o.v
}

// appendTopL appends the up-to-l highest-ranked values of freq to dst
// and returns the extended slice. *sel is caller-owned selection
// scratch, grown once to l and reused, so steady-state selection is
// allocation-free (unlike a sort, which would order all of freq to
// keep l values and allocate a comparator closure per call).
func appendTopL(dst []uint64, freq map[uint64]int, l int, sel *[]valCount) []uint64 {
	s := (*sel)[:0]
	for v, n := range freq {
		e := valCount{v: v, n: n}
		pos := len(s)
		for pos > 0 && e.ranksAbove(s[pos-1]) {
			pos--
		}
		if pos >= l {
			continue
		}
		if len(s) < l {
			s = append(s, valCount{})
		}
		copy(s[pos+1:], s[pos:])
		s[pos] = e
	}
	*sel = s
	for _, e := range s {
		dst = append(dst, e.v)
	}
	return dst
}

// topL returns up to l keys of freq with the highest counts,
// deterministically (count desc, value asc).
func topL(freq map[uint64]int, l int) []uint64 {
	var sel []valCount
	return appendTopL(make([]uint64, 0, min(l, len(freq))), freq, l, &sel)
}

// reseedEmpty replaces the center of any empty cluster with a random
// record's sketch, so K never silently collapses.
func reseedEmpty(sketches []sketch.Sketch, centers []Center, assign []int, rng *rand.Rand) {
	k := len(centers)
	size := make([]int, k)
	for _, a := range assign {
		if a >= 0 {
			size[a]++
		}
	}
	for c := 0; c < k; c++ {
		if size[c] > 0 && len(centers[c].Values[0]) > 0 {
			continue
		}
		i := rng.Intn(len(sketches))
		vals := make([][]uint64, len(sketches[i]))
		for a, v := range sketches[i] {
			vals[a] = []uint64{v}
		}
		centers[c] = Center{Values: vals}
	}
}
