// Package strata implements the data stratifier (paper §III-C): it
// clusters record sketches with the compositeKModes algorithm of Wang
// et al. (ICDE 2013) so that each cluster — a *stratum* — groups
// records with similar content.
//
// Standard KModes keeps one mode (most frequent value) per attribute
// of each cluster center. Sketch coordinates are drawn from a huge
// universe, so a record matches a single mode with vanishing
// probability and most records end up equidistant from every center
// (the "zero-match" problem). compositeKModes instead keeps the L
// highest-frequency values per attribute; a record coordinate matches
// if it equals any of the L values. With L > 1 the zero-match
// probability drops geometrically while the KModes convergence
// argument (assignment and update both monotonically decrease the
// mismatch objective) is preserved.
package strata

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"pareto/internal/sketch"
)

// Config controls compositeKModes clustering.
type Config struct {
	// K is the number of strata (clusters). Required ≥ 1.
	K int
	// L is the number of highest-frequency values retained per center
	// attribute. Required ≥ 1; the paper uses L > 1 to avoid
	// zero-match assignment failures.
	L int
	// MaxIter bounds the assign/update rounds. 0 means DefaultMaxIter.
	MaxIter int
	// Seed drives center initialization; equal seeds give equal runs.
	Seed int64
	// Workers bounds parallelism in the assignment step.
	// 0 means GOMAXPROCS.
	Workers int
}

// DefaultMaxIter is used when Config.MaxIter is zero.
const DefaultMaxIter = 50

// Center is one cluster center: per sketch attribute, up to L candidate
// values ordered by descending member frequency.
type Center struct {
	Values [][]uint64
}

// matches reports whether coordinate value v matches attribute a.
func (c *Center) matches(a int, v uint64) bool {
	for _, w := range c.Values[a] {
		if w == v {
			return true
		}
	}
	return false
}

// Result is a completed clustering.
type Result struct {
	// Assign maps record index → stratum index in [0, K).
	Assign []int
	// Members lists record indices per stratum, each ascending.
	Members [][]int
	// Centers holds the final composite centers.
	Centers []Center
	// Iterations is the number of assign/update rounds executed.
	Iterations int
	// Converged reports whether assignments reached a fixed point
	// before MaxIter.
	Converged bool
	// Cost is the final objective: total attribute mismatches between
	// each record and its center.
	Cost int64
}

// K returns the number of strata.
func (r *Result) K() int { return len(r.Members) }

// Sizes returns the member count of each stratum.
func (r *Result) Sizes() []int {
	s := make([]int, len(r.Members))
	for i, m := range r.Members {
		s[i] = len(m)
	}
	return s
}

// Cluster runs compositeKModes over the sketches. All sketches must
// have equal width. K is capped at the number of records.
func Cluster(sketches []sketch.Sketch, cfg Config) (*Result, error) {
	n := len(sketches)
	if n == 0 {
		return nil, errors.New("strata: no sketches to cluster")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("strata: K = %d, need ≥ 1", cfg.K)
	}
	if cfg.L < 1 {
		return nil, fmt.Errorf("strata: L = %d, need ≥ 1", cfg.L)
	}
	width := len(sketches[0])
	if width == 0 {
		return nil, errors.New("strata: zero-width sketches")
	}
	for i, s := range sketches {
		if len(s) != width {
			return nil, fmt.Errorf("strata: sketch %d has width %d, want %d", i, len(s), width)
		}
	}
	k := cfg.K
	if k > n {
		k = n
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := initCenters(sketches, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed, cost := assignAll(sketches, centers, assign, workers)
		res.Cost = cost
		if !changed {
			res.Converged = true
			break
		}
		centers = updateCenters(sketches, assign, k, width, cfg.L)
		reseedEmpty(sketches, centers, assign, rng)
	}

	res.Assign = assign
	res.Centers = centers
	res.Members = make([][]int, k)
	for i, a := range assign {
		res.Members[a] = append(res.Members[a], i)
	}
	return res, nil
}

// initCenters seeds k centers from distinct random records.
func initCenters(sketches []sketch.Sketch, k int, rng *rand.Rand) []Center {
	perm := rng.Perm(len(sketches))
	centers := make([]Center, k)
	for c := 0; c < k; c++ {
		s := sketches[perm[c]]
		vals := make([][]uint64, len(s))
		for a, v := range s {
			vals[a] = []uint64{v}
		}
		centers[c] = Center{Values: vals}
	}
	return centers
}

// assignAll assigns every record to its nearest center in parallel,
// reporting whether any assignment changed and the total mismatch cost.
func assignAll(sketches []sketch.Sketch, centers []Center, assign []int, workers int) (bool, int64) {
	n := len(sketches)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	changedCh := make([]bool, workers)
	costCh := make([]int64, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var localChanged bool
			var localCost int64
			for i := lo; i < hi; i++ {
				best, bestDist := 0, int(^uint(0)>>1)
				for c := range centers {
					d := distance(sketches[i], &centers[c])
					if d < bestDist || (d == bestDist && c < best) {
						best, bestDist = c, d
					}
				}
				if assign[i] != best {
					assign[i] = best
					localChanged = true
				}
				localCost += int64(bestDist)
			}
			changedCh[w] = localChanged
			costCh[w] = localCost
		}(w, lo, hi)
	}
	wg.Wait()
	changed := false
	var cost int64
	for w := 0; w < workers; w++ {
		changed = changed || changedCh[w]
		cost += costCh[w]
	}
	return changed, cost
}

// distance counts attributes of s that match none of the center's
// candidate values — the composite mismatch metric.
func distance(s sketch.Sketch, c *Center) int {
	d := 0
	for a, v := range s {
		if !c.matches(a, v) {
			d++
		}
	}
	return d
}

// updateCenters recomputes each center as the per-attribute top-L
// values among its members. Ties break toward the smaller value so the
// update is deterministic.
func updateCenters(sketches []sketch.Sketch, assign []int, k, width, l int) []Center {
	counts := make([]map[uint64]int, k*width)
	for i := range counts {
		counts[i] = make(map[uint64]int)
	}
	for i, s := range sketches {
		base := assign[i] * width
		for a, v := range s {
			counts[base+a][v]++
		}
	}
	centers := make([]Center, k)
	for c := 0; c < k; c++ {
		vals := make([][]uint64, width)
		for a := 0; a < width; a++ {
			vals[a] = topL(counts[c*width+a], l)
		}
		centers[c] = Center{Values: vals}
	}
	return centers
}

// topL returns up to l keys of freq with the highest counts,
// deterministically (count desc, value asc).
func topL(freq map[uint64]int, l int) []uint64 {
	type kv struct {
		v uint64
		n int
	}
	all := make([]kv, 0, len(freq))
	for v, n := range freq {
		all = append(all, kv{v, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].v < all[j].v
	})
	if len(all) > l {
		all = all[:l]
	}
	out := make([]uint64, len(all))
	for i, e := range all {
		out[i] = e.v
	}
	return out
}

// reseedEmpty replaces the center of any empty cluster with a random
// record's sketch, so K never silently collapses.
func reseedEmpty(sketches []sketch.Sketch, centers []Center, assign []int, rng *rand.Rand) {
	k := len(centers)
	size := make([]int, k)
	for _, a := range assign {
		if a >= 0 {
			size[a]++
		}
	}
	for c := 0; c < k; c++ {
		if size[c] > 0 && len(centers[c].Values[0]) > 0 {
			continue
		}
		i := rng.Intn(len(sketches))
		vals := make([][]uint64, len(sketches[i]))
		for a, v := range sketches[i] {
			vals[a] = []uint64{v}
		}
		centers[c] = Center{Values: vals}
	}
}
