// Online drift detection over a frozen stratification.
//
// The batch stratifier maintains per-(stratum, attribute) value
// frequency counters to rebuild centers incrementally (kmodes.go). The
// DriftTracker reuses exactly that machinery for the online replanning
// loop: ingested records are assigned to the nearest *frozen* center
// with the same tie-breaking scan as the stratifier, folded into the
// same frequency counters, and the counters are exposed as a
// per-stratum drift statistic.
//
// The statistic is center coverage decay. For stratum s, coverage is
// the fraction of counter mass lying on the frozen center's candidate
// values:
//
//	C(s) = Σ_a Σ_{v ∈ center_s[a]} count(s, a, v) / (members(s) · width)
//
// At freeze time coverage is C₀(s) — the center explains its members
// that well, by construction of top-L selection the best any center
// could. Ingested records that resemble the stratum keep coverage near
// C₀; records the frozen center does not explain dilute it. Drift is
// the decay, clamped at zero:
//
//	Drift(s) = max(0, C₀(s) − C(s))
//
// A stratum is dirty when Drift(s) ≥ Threshold, so Threshold = 0 marks
// every stratum permanently dirty (forcing full replans) and
// Threshold > 1 never fires.
package strata

import (
	"errors"
	"fmt"

	"pareto/internal/sketch"
)

// DriftConfig configures a DriftTracker.
type DriftConfig struct {
	// Threshold is the dirtiness threshold on the Drift statistic: a
	// stratum is dirty when Drift(s) ≥ Threshold (the comparison is
	// inclusive). 0 marks every stratum always dirty.
	Threshold float64
}

// DriftTracker watches a frozen stratification under a live record
// stream. It is not safe for concurrent use; the replanning loop
// serializes Ingest and Cycle.
type DriftTracker struct {
	k, width, l int
	threshold   float64

	// centers are the frozen composite centers drift is measured
	// against; flat is their flattened [k×width×l] scan matrix.
	centers []Center
	flat    []uint64

	counters *freqCounters
	// base[s] is the member count at the last freeze of s; added[s]
	// counts records ingested into s since. int64: a stream can outlive
	// any one stratification by orders of magnitude.
	base  []int
	added []int64
	// cov0[s] is the coverage C₀(s) at the last freeze of s.
	cov0 []float64
}

// NewDriftTracker freezes the given stratification and starts tracking
// drift against it. The stratification's sketches and centers are
// referenced, not copied, and must not be mutated while tracked.
func NewDriftTracker(st *Stratification, cfg DriftConfig) (*DriftTracker, error) {
	if st == nil || st.Result == nil {
		return nil, errors.New("strata: drift tracker needs a stratification")
	}
	k := st.K()
	if k == 0 || len(st.Sketches) == 0 {
		return nil, errors.New("strata: drift tracker needs a non-empty stratification")
	}
	width := len(st.Sketches[0])
	d := &DriftTracker{
		k:         k,
		width:     width,
		threshold: cfg.Threshold,
		centers:   make([]Center, k),
		counters:  newFreqCounters(k, width),
		base:      make([]int, k),
		added:     make([]int64, k),
		cov0:      make([]float64, k),
	}
	copy(d.centers, st.Centers)
	d.l = maxCenterRow(d.centers)
	d.flat = make([]uint64, k*width*d.l)
	flattenCenters(d.flat, d.centers, width, d.l)
	for i, s := range st.Sketches {
		d.counters.add(s, st.Assign[i])
	}
	for s := 0; s < k; s++ {
		d.base[s] = len(st.Members[s])
		d.cov0[s] = d.coverage(s)
	}
	return d, nil
}

// maxCenterRow returns the longest candidate row across all centers
// (≥ 1; every live center row is non-empty by construction).
func maxCenterRow(centers []Center) int {
	l := 1
	for _, c := range centers {
		for _, row := range c.Values {
			if len(row) > l {
				l = len(row)
			}
		}
	}
	return l
}

// Ingest assigns one record sketch to its nearest frozen stratum
// (same scan and lowest-index tie-break as the stratifier), folds it
// into the frequency counters, and returns the stratum together with
// the record's attribute-mismatch distance to the frozen center.
func (d *DriftTracker) Ingest(s sketch.Sketch) (stratum, mismatch int, err error) {
	if len(s) != d.width {
		return 0, 0, fmt.Errorf("strata: ingest sketch width %d, tracker width %d", len(s), d.width)
	}
	stratum, mismatch = nearestFlat(d.flat, d.k, d.width, d.l, s)
	d.counters.add(s, stratum)
	d.added[stratum]++
	return stratum, mismatch, nil
}

// coverage returns C(s): the fraction of stratum-s counter mass lying
// on the frozen center's candidate values. Candidate values within one
// attribute row are distinct by top-L construction, so the sum counts
// each member coordinate at most once.
func (d *DriftTracker) coverage(s int) float64 {
	total := float64(d.base[s]) + float64(d.added[s])
	if total == 0 {
		return 0
	}
	var covered int64
	for a, row := range d.centers[s].Values {
		for _, v := range row {
			covered += int64(d.counters.count(s, a, v))
		}
	}
	return float64(covered) / (total * float64(d.width))
}

// Drift returns the coverage decay of stratum s since its last freeze,
// in [0, 1]. Empty strata report zero drift.
func (d *DriftTracker) Drift(s int) float64 {
	if d.base[s] == 0 && d.added[s] == 0 {
		return 0
	}
	if drift := d.cov0[s] - d.coverage(s); drift > 0 {
		return drift
	}
	return 0
}

// Dirty reports whether stratum s has drifted to or past the
// threshold.
func (d *DriftTracker) Dirty(s int) bool { return d.Drift(s) >= d.threshold }

// DirtyStrata returns the dirty stratum indices, ascending.
func (d *DriftTracker) DirtyStrata() []int {
	var dirty []int
	for s := 0; s < d.k; s++ {
		if d.Dirty(s) {
			dirty = append(dirty, s)
		}
	}
	return dirty
}

// K returns the number of tracked strata.
func (d *DriftTracker) K() int { return d.k }

// Added returns how many records were ingested into stratum s since
// its last freeze.
func (d *DriftTracker) Added(s int) int64 { return d.added[s] }

// AddedTotal returns the total records ingested since the respective
// last freezes of their strata.
func (d *DriftTracker) AddedTotal() int64 {
	var t int64
	for _, a := range d.added {
		t += a
	}
	return t
}

// Reset refreezes the given strata from the current stratification
// after a partial re-stratify: their counters are rebuilt from the new
// memberships, centers refrozen, and added/coverage baselines reset.
// Strata not listed keep their counters — including ingested records —
// untouched. The stratification must have the tracker's K and sketch
// width (the replanning loop re-clusters dirty strata in place, so
// both are invariant).
func (d *DriftTracker) Reset(st *Stratification, strata []int) error {
	if st.K() != d.k {
		return fmt.Errorf("strata: reset with K = %d, tracker has %d", st.K(), d.k)
	}
	if len(st.Sketches) > 0 && len(st.Sketches[0]) != d.width {
		return fmt.Errorf("strata: reset sketch width %d, tracker width %d", len(st.Sketches[0]), d.width)
	}
	// A new center row can exceed the frozen scan matrix's L; regrow
	// once and re-flatten everything.
	if l := maxCenterRow(st.Centers); l > d.l {
		d.l = l
		d.flat = make([]uint64, d.k*d.width*d.l)
		flattenCenters(d.flat, d.centers, d.width, d.l)
	}
	for _, s := range strata {
		if s < 0 || s >= d.k {
			return fmt.Errorf("strata: reset stratum %d out of range [0, %d)", s, d.k)
		}
		d.counters.clearStratum(s)
		for _, i := range st.Members[s] {
			d.counters.add(st.Sketches[i], s)
		}
		d.centers[s] = st.Centers[s]
		flattenCenters(d.flat[s*d.width*d.l:(s+1)*d.width*d.l], st.Centers[s:s+1], d.width, d.l)
		d.base[s] = len(st.Members[s])
		d.added[s] = 0
		d.cov0[s] = d.coverage(s)
	}
	return nil
}
