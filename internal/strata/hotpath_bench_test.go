package strata

import (
	"math/rand"
	"sort"
	"testing"

	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

// hotPathN is the corpus size for the hot-path benchmarks: the Fig. 2 /
// Fig. 4 synthetic scale the ISSUE targets. Short mode (CI smoke) runs
// a reduced corpus so the benchmark stays a compile-and-race check.
func hotPathN(b *testing.B) int {
	if testing.Short() {
		return 4_000
	}
	return 50_000
}

// hotPathCorpus builds a synthetic text corpus with planted topics, the
// same shape the paper's RCV1-like generator plants (latent strata with
// disjoint vocabulary bands plus uniform noise).
func hotPathCorpus(b *testing.B, nDocs, topics int) *pivots.TextCorpus {
	b.Helper()
	const bandWidth = 400
	const docTerms = 40
	vocab := topics * bandWidth
	rng := rand.New(rand.NewSource(1))
	docs := make([]pivots.Doc, nDocs)
	for i := range docs {
		c := i % topics
		seen := make(map[uint32]bool, docTerms)
		terms := make([]uint32, 0, docTerms)
		for len(terms) < docTerms {
			t := uint32(c*bandWidth + rng.Intn(bandWidth))
			if rng.Float64() < 0.1 {
				t = uint32(rng.Intn(vocab)) // cross-topic noise
			}
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
		docs[i] = pivots.Doc{Terms: terms}
	}
	corpus, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		b.Fatal(err)
	}
	return corpus
}

// hotPathConfig is the paper-scale stratifier shape: K = 4·p strata for
// p = 8 partitions, L = 3 composite values, 32-wide sketches.
func hotPathConfig() StratifierConfig {
	return StratifierConfig{
		SketchWidth: 32,
		Cluster:     Config{K: 32, L: 3, Seed: 7},
		Seed:        3,
	}
}

// BenchmarkStratifyHotPath measures the full planner-critical path:
// corpus → sketches → compositeKModes strata (ISSUE 1 acceptance
// benchmark).
func BenchmarkStratifyHotPath(b *testing.B) {
	corpus := hotPathCorpus(b, hotPathN(b), 32)
	cfg := hotPathConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Stratify(corpus, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if s.K() == 0 {
			b.Fatal("no strata")
		}
	}
}

// BenchmarkStratifySketchStage isolates the sketching stage of the
// pipeline.
func BenchmarkStratifySketchStage(b *testing.B) {
	corpus := hotPathCorpus(b, hotPathN(b), 32)
	h, err := sketch.NewHasher(32, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := SketchCorpus(corpus, h, 0)
		if len(out) != corpus.Len() {
			b.Fatal("short sketch set")
		}
	}
}

// BenchmarkStratifyClusterStage isolates compositeKModes over
// pre-computed sketches.
func BenchmarkStratifyClusterStage(b *testing.B) {
	corpus := hotPathCorpus(b, hotPathN(b), 32)
	h, err := sketch.NewHasher(32, 3)
	if err != nil {
		b.Fatal(err)
	}
	sketches := SketchCorpus(corpus, h, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(sketches, Config{K: 32, L: 3, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}
