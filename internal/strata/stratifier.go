package strata

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

// StratifierConfig configures the end-to-end stratification pipeline:
// pivot sets → sketches → compositeKModes strata.
type StratifierConfig struct {
	// SketchWidth is the number of minhash permutations (sketch
	// coordinates). 0 means DefaultSketchWidth.
	SketchWidth int
	// Cluster configures compositeKModes. Cluster.K is required.
	Cluster Config
	// Seed drives the hash family; clustering uses Cluster.Seed.
	Seed int64
}

// DefaultSketchWidth is the sketch width used when unset. The paper
// keeps sketches orders of magnitude smaller than records; 32 minima
// estimate Jaccard to within ~0.09 standard error, enough to separate
// strata.
const DefaultSketchWidth = 32

// StratifyStats profiles one Stratify call so planner overhead can be
// reported alongside the paper's figures (the §III amortization claim
// only holds while planning stays negligible next to the job).
type StratifyStats struct {
	// SketchTime is the wall-clock time of the bulk sketching stage.
	SketchTime time.Duration
	// ClusterTime is the wall-clock time of compositeKModes.
	ClusterTime time.Duration
	// Iterations is the number of assign/update rounds executed.
	Iterations int
	// Converged echoes Result.Converged.
	Converged bool
	// Iters profiles each round (assign/update time, moved records).
	Iters []IterStat
	// MovedTotal sums moved-record counts over all rounds.
	MovedTotal int

	// FailedAttempts counts earlier stratification attempts whose work
	// preceded this one — e.g. a distributed run that failed and
	// degraded to the local fallback. Their cost is part of planning
	// overhead and must not be dropped from the audit trail.
	FailedAttempts int
	// FailedAttemptTime is the wall-clock spent in those failed
	// attempts before this stratification started.
	FailedAttemptTime time.Duration
}

// AddFailedAttempt folds one failed prior attempt (its wall-clock
// cost) into the stats of the stratification that finally succeeded.
func (s *StratifyStats) AddFailedAttempt(d time.Duration) {
	s.FailedAttempts++
	s.FailedAttemptTime += d
}

// Stratification is the output of the stratifier: the clustering plus
// the sketches it was computed from (kept so representative samples
// can be validated) and per-stratum weight totals.
type Stratification struct {
	*Result
	// Sketches holds the record sketches, indexed like the corpus.
	Sketches []sketch.Sketch
	// WeightTotals[s] is the sum of record weights in stratum s.
	WeightTotals []int
	// Stats profiles the pipeline stages of the Stratify call that
	// produced this stratification.
	Stats StratifyStats

	// simSeed seeds similarity-estimate sampling; Stratify copies it
	// from StratifierConfig.Seed so quality estimates are reproducible
	// per configuration rather than coupled to one global constant.
	simSeed int64
}

// Stratify runs the full stratification pipeline over the corpus.
// Sketching is parallelized across GOMAXPROCS workers; the sketches
// are orders of magnitude smaller than the corpus, so clustering runs
// centralized exactly as in the paper (§IV).
func Stratify(c pivots.Corpus, cfg StratifierConfig) (*Stratification, error) {
	n := c.Len()
	if n == 0 {
		return nil, fmt.Errorf("strata: empty corpus")
	}
	width := cfg.SketchWidth
	if width <= 0 {
		width = DefaultSketchWidth
	}
	hasher, err := sketch.NewHasher(width, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("strata: %w", err)
	}
	var stats StratifyStats
	start := time.Now()
	sketches := SketchCorpus(c, hasher, cfg.Cluster.Workers)
	stats.SketchTime = time.Since(start)
	start = time.Now()
	res, err := Cluster(sketches, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	stats.ClusterTime = time.Since(start)
	stats.Iterations = res.Iterations
	stats.Converged = res.Converged
	stats.Iters = res.IterStats
	for _, it := range res.IterStats {
		stats.MovedTotal += it.Moved
	}
	wt := make([]int, res.K())
	for i, a := range res.Assign {
		wt[a] += c.Weight(i)
	}
	return &Stratification{
		Result: res, Sketches: sketches, WeightTotals: wt,
		Stats: stats, simSeed: cfg.Seed,
	}, nil
}

// SketchCorpus computes the sketch of every record through the bulk
// sketch path: all sketches share one flat backing allocation and are
// filled in parallel in corpus order. workers ≤ 0 means GOMAXPROCS.
func SketchCorpus(c pivots.Corpus, h *sketch.Hasher, workers int) []sketch.Sketch {
	return h.SketchAll(c.Len(), c.ItemSet, workers)
}

// Entropy returns the Shannon entropy (nats) of the stratum size
// distribution. Higher entropy means records spread evenly over
// strata; zero means one stratum holds everything.
func (s *Stratification) Entropy() float64 {
	total := 0
	for _, m := range s.Members {
		total += len(m)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, m := range s.Members {
		if len(m) == 0 {
			continue
		}
		p := float64(len(m)) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}

// MeanIntraSimilarity estimates the average sketch agreement between
// members of the same stratum and members of different strata, using
// at most sampleBudget pair comparisons for each. It quantifies
// stratification quality: intra should exceed inter. Pair sampling is
// seeded from the stratifier configuration (StratifierConfig.Seed), so
// estimates are reproducible per configuration; use
// MeanIntraSimilaritySeeded to control the sampling seed directly.
func (s *Stratification) MeanIntraSimilarity(sampleBudget int) (intra, inter float64) {
	return s.MeanIntraSimilaritySeeded(sampleBudget, s.simSeed)
}

// MeanIntraSimilaritySeeded is MeanIntraSimilarity with an explicit
// pair-sampling seed.
func (s *Stratification) MeanIntraSimilaritySeeded(sampleBudget int, seed int64) (intra, inter float64) {
	if sampleBudget <= 0 {
		sampleBudget = 2000
	}
	var intraSum, interSum float64
	var intraN, interN int
	n := len(s.Assign)
	if n < 2 {
		return 0, 0
	}
	// Seeded random pair sampling: unbiased across strata boundaries
	// and deterministic across runs.
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < 4*sampleBudget && (intraN < sampleBudget || interN < sampleBudget); t++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		a := s.Sketches[i].Agreement(s.Sketches[j])
		if s.Assign[i] == s.Assign[j] {
			if intraN < sampleBudget {
				intraSum += a
				intraN++
			}
		} else if interN < sampleBudget {
			interSum += a
			interN++
		}
	}
	if intraN > 0 {
		intra = intraSum / float64(intraN)
	}
	if interN > 0 {
		inter = interSum / float64(interN)
	}
	return intra, inter
}
