package strata

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

// StratifierConfig configures the end-to-end stratification pipeline:
// pivot sets → sketches → compositeKModes strata.
type StratifierConfig struct {
	// SketchWidth is the number of minhash permutations (sketch
	// coordinates). 0 means DefaultSketchWidth.
	SketchWidth int
	// Cluster configures compositeKModes. Cluster.K is required.
	Cluster Config
	// Seed drives the hash family; clustering uses Cluster.Seed.
	Seed int64
}

// DefaultSketchWidth is the sketch width used when unset. The paper
// keeps sketches orders of magnitude smaller than records; 32 minima
// estimate Jaccard to within ~0.09 standard error, enough to separate
// strata.
const DefaultSketchWidth = 32

// Stratification is the output of the stratifier: the clustering plus
// the sketches it was computed from (kept so representative samples
// can be validated) and per-stratum weight totals.
type Stratification struct {
	*Result
	// Sketches holds the record sketches, indexed like the corpus.
	Sketches []sketch.Sketch
	// WeightTotals[s] is the sum of record weights in stratum s.
	WeightTotals []int
}

// Stratify runs the full stratification pipeline over the corpus.
// Sketching is parallelized across GOMAXPROCS workers; the sketches
// are orders of magnitude smaller than the corpus, so clustering runs
// centralized exactly as in the paper (§IV).
func Stratify(c pivots.Corpus, cfg StratifierConfig) (*Stratification, error) {
	n := c.Len()
	if n == 0 {
		return nil, fmt.Errorf("strata: empty corpus")
	}
	width := cfg.SketchWidth
	if width <= 0 {
		width = DefaultSketchWidth
	}
	hasher, err := sketch.NewHasher(width, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("strata: %w", err)
	}
	sketches := SketchCorpus(c, hasher, cfg.Cluster.Workers)
	res, err := Cluster(sketches, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	wt := make([]int, res.K())
	for i, a := range res.Assign {
		wt[a] += c.Weight(i)
	}
	return &Stratification{Result: res, Sketches: sketches, WeightTotals: wt}, nil
}

// SketchCorpus computes the sketch of every record in parallel.
// workers ≤ 0 means GOMAXPROCS.
func SketchCorpus(c pivots.Corpus, h *sketch.Hasher, workers int) []sketch.Sketch {
	n := c.Len()
	out := make([]sketch.Sketch, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = h.Sketch(c.ItemSet(i))
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Entropy returns the Shannon entropy (nats) of the stratum size
// distribution. Higher entropy means records spread evenly over
// strata; zero means one stratum holds everything.
func (s *Stratification) Entropy() float64 {
	total := 0
	for _, m := range s.Members {
		total += len(m)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, m := range s.Members {
		if len(m) == 0 {
			continue
		}
		p := float64(len(m)) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}

// MeanIntraSimilarity estimates the average sketch agreement between
// members of the same stratum and members of different strata, using
// at most sampleBudget pair comparisons for each. It quantifies
// stratification quality: intra should exceed inter.
func (s *Stratification) MeanIntraSimilarity(sampleBudget int) (intra, inter float64) {
	if sampleBudget <= 0 {
		sampleBudget = 2000
	}
	var intraSum, interSum float64
	var intraN, interN int
	n := len(s.Assign)
	if n < 2 {
		return 0, 0
	}
	// Seeded random pair sampling: unbiased across strata boundaries
	// and deterministic across runs.
	rng := rand.New(rand.NewSource(42))
	for t := 0; t < 4*sampleBudget && (intraN < sampleBudget || interN < sampleBudget); t++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		a := s.Sketches[i].Agreement(s.Sketches[j])
		if s.Assign[i] == s.Assign[j] {
			if intraN < sampleBudget {
				intraSum += a
				intraN++
			}
		} else if interN < sampleBudget {
			interSum += a
			interN++
		}
	}
	if intraN > 0 {
		intra = intraSum / float64(intraN)
	}
	if interN > 0 {
		inter = interSum / float64(interN)
	}
	return intra, inter
}
