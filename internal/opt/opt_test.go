package opt

import (
	"math"
	"math/rand"
	"testing"

	"pareto/internal/sampling"
)

// paperNodes models the paper's 4-type cluster: relative speeds
// 4x/3x/2x/1x (slope inversely proportional to speed) and dirty rates
// derived from the 440/345/250/155 W draws minus some green supply.
func paperNodes() []NodeModel {
	return []NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001, Intercept: 2}, DirtyRate: 340},
		{Time: sampling.LinearFit{Slope: 0.001333, Intercept: 2}, DirtyRate: 245},
		{Time: sampling.LinearFit{Slope: 0.002, Intercept: 2}, DirtyRate: 200},
		{Time: sampling.LinearFit{Slope: 0.004, Intercept: 2}, DirtyRate: 55},
	}
}

func TestOptimizeValidation(t *testing.T) {
	nodes := paperNodes()
	if _, err := Optimize(nil, 100, 1); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := Optimize(nodes, 0, 1); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := Optimize(nodes, 100, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := Optimize(nodes, 100, -0.1); err == nil {
		t.Error("alpha < 0 accepted")
	}
	bad := []NodeModel{{Time: sampling.LinearFit{Slope: -1}}}
	if _, err := Optimize(bad, 100, 1); err == nil {
		t.Error("negative slope accepted")
	}
	bad2 := []NodeModel{{Time: sampling.LinearFit{Slope: 1}, DirtyRate: -3}}
	if _, err := Optimize(bad2, 100, 1); err == nil {
		t.Error("negative dirty rate accepted")
	}
}

func TestOptimizeSizesSumToTotal(t *testing.T) {
	nodes := paperNodes()
	for _, total := range []int{1, 7, 100, 99999, 1234567} {
		for _, alpha := range []float64{1, 0.999, 0.9, 0.5, 0} {
			plan, err := Optimize(nodes, total, alpha)
			if err != nil {
				t.Fatalf("total %d alpha %v: %v", total, alpha, err)
			}
			sum := 0
			for _, s := range plan.Sizes {
				if s < 0 {
					t.Fatalf("negative size %d", s)
				}
				sum += s
			}
			if sum != total {
				t.Fatalf("total %d alpha %v: sizes sum %d", total, alpha, sum)
			}
		}
	}
}

func TestHetAwareMatchesWaterFill(t *testing.T) {
	// At α = 1 the LP must agree with the analytic water-filling
	// solution: everyone loaded finishes at the same time T.
	nodes := paperNodes()
	total := 500000
	plan, err := Optimize(nodes, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, T, err := WaterFill(nodes, total)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Makespan-T)/T > 1e-3 {
		t.Errorf("LP makespan %v vs water-fill %v", plan.Makespan, T)
	}
	for i := range x {
		if math.Abs(plan.X[i]-x[i]) > float64(total)*1e-3+1 {
			t.Errorf("node %d: LP %v vs water-fill %v", i, plan.X[i], x[i])
		}
	}
}

func TestHetAwareLoadsFasterNodesMore(t *testing.T) {
	nodes := paperNodes()
	plan, err := Optimize(nodes, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plan.Sizes); i++ {
		if plan.Sizes[i] > plan.Sizes[i-1] {
			t.Errorf("slower node %d got %d > faster node %d's %d",
				i, plan.Sizes[i], i-1, plan.Sizes[i-1])
		}
	}
	// The 4x node should get roughly 4x the 1x node's share.
	ratio := float64(plan.Sizes[0]) / float64(plan.Sizes[3])
	if ratio < 3 || ratio > 5 {
		t.Errorf("speed-4x/1x share ratio %v, want ≈4", ratio)
	}
}

func TestEnergyAwareShiftsLoadToGreenNodes(t *testing.T) {
	nodes := paperNodes()
	hetAware, err := Optimize(nodes, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	greenish, err := Optimize(nodes, 100000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 (lowest k_i) must receive more load as α drops.
	if greenish.Sizes[3] <= hetAware.Sizes[3] {
		t.Errorf("α=0.9 gave green node %d ≤ α=1's %d", greenish.Sizes[3], hetAware.Sizes[3])
	}
	if greenish.DirtyEnergy >= hetAware.DirtyEnergy {
		t.Errorf("α=0.9 energy %v not below α=1's %v", greenish.DirtyEnergy, hetAware.DirtyEnergy)
	}
	if greenish.Makespan < hetAware.Makespan {
		t.Errorf("α=0.9 makespan %v below α=1's %v — impossible", greenish.Makespan, hetAware.Makespan)
	}
}

func TestAlphaZeroPilesOnGreenestNode(t *testing.T) {
	// The paper observes that below α≈0.9 the optimizer puts nearly
	// all payload on the lowest-dirty-rate machine.
	nodes := paperNodes()
	plan, err := Optimize(nodes, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sizes[3] != 10000 {
		t.Errorf("α=0 sizes %v, want all on node 3 (cheapest energy·slope)", plan.Sizes)
	}
}

func TestFrontierMonotonicity(t *testing.T) {
	nodes := paperNodes()
	pts, err := Frontier(nodes, 200000, DefaultAlphaSweep())
	if err != nil {
		t.Fatal(err)
	}
	// Canonical output: ascending α, adjacent duplicates collapsed — so
	// at most one point per sweep value, strictly increasing α, and
	// every surviving point distinct from its neighbor.
	if len(pts) < 2 || len(pts) > len(DefaultAlphaSweep()) {
		t.Fatalf("%d points from a %d-value sweep", len(pts), len(DefaultAlphaSweep()))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Alpha <= pts[i-1].Alpha {
			t.Fatalf("α not ascending at %d: %v after %v", i, pts[i].Alpha, pts[i-1].Alpha)
		}
		if SamePoint(pts[i-1], pts[i], frontierDedupTol) {
			t.Errorf("adjacent duplicate survived dedup at α=%v", pts[i].Alpha)
		}
	}
	// As α increases: makespan non-increasing, energy non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].Makespan > pts[i-1].Makespan+1e-6 {
			t.Errorf("makespan increased with α at α=%v: %v → %v",
				pts[i].Alpha, pts[i-1].Makespan, pts[i].Makespan)
		}
		if pts[i].DirtyEnergy < pts[i-1].DirtyEnergy-1e-6 {
			t.Errorf("energy decreased with α at α=%v: %v → %v",
				pts[i].Alpha, pts[i-1].DirtyEnergy, pts[i].DirtyEnergy)
		}
	}
	// No point on the frontier may dominate another (Pareto property).
	for i := range pts {
		for j := range pts {
			if i != j && Dominates(pts[i], pts[j]) && Dominates(pts[j], pts[i]) {
				t.Errorf("mutual domination between %d and %d", i, j)
			}
		}
	}
}

func TestFrontierEmptySweep(t *testing.T) {
	if _, err := Frontier(paperNodes(), 100, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestEqualSizedBaselineIsDominated(t *testing.T) {
	// The stratified baseline (equal sizes) must sit above the
	// frontier, as in Fig 5: some frontier point dominates it.
	nodes := paperNodes()
	total := 100000
	per := total / len(nodes)
	x := make([]float64, len(nodes))
	for i := range x {
		x[i] = float64(per)
	}
	base := FrontierPoint{Makespan: makespanOf(nodes, x), DirtyEnergy: energyOf(nodes, x)}
	pts, err := Frontier(nodes, total, DefaultAlphaSweep())
	if err != nil {
		t.Fatal(err)
	}
	dominated := false
	for _, p := range pts {
		if Dominates(p, base) {
			dominated = true
			break
		}
	}
	if !dominated {
		t.Errorf("equal-size baseline (v=%v, E=%v) not dominated by any frontier point",
			base.Makespan, base.DirtyEnergy)
	}
}

func TestOptimizeNormalized(t *testing.T) {
	nodes := paperNodes()
	total := 100000
	// α=1 and α=0 must coincide with the raw solver's extremes.
	n1, err := OptimizeNormalized(nodes, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Optimize(nodes, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n1.Makespan-r1.Makespan)/r1.Makespan > 1e-6 {
		t.Errorf("normalized α=1 makespan %v vs raw %v", n1.Makespan, r1.Makespan)
	}
	// α=0.5 must land strictly between the extremes in both objectives
	// (this is the point of normalization: a mid α is a real tradeoff,
	// not saturated at one end).
	n0, err := OptimizeNormalized(nodes, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := OptimizeNormalized(nodes, total, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(mid.Makespan >= n1.Makespan-1e-9 && mid.Makespan <= n0.Makespan+1e-9) {
		t.Errorf("normalized α=0.5 makespan %v outside [%v, %v]", mid.Makespan, n1.Makespan, n0.Makespan)
	}
	if !(mid.DirtyEnergy <= n1.DirtyEnergy+1e-9 && mid.DirtyEnergy >= n0.DirtyEnergy-1e-9) {
		t.Errorf("normalized α=0.5 energy %v outside [%v, %v]", mid.DirtyEnergy, n0.DirtyEnergy, n1.DirtyEnergy)
	}
}

func TestWaterFillValidation(t *testing.T) {
	if _, _, err := WaterFill(nil, 10); err == nil {
		t.Error("no nodes accepted")
	}
	if _, _, err := WaterFill(paperNodes(), 0); err == nil {
		t.Error("zero total accepted")
	}
	zero := []NodeModel{{Time: sampling.LinearFit{Slope: 0, Intercept: 1}}}
	if _, _, err := WaterFill(zero, 10); err == nil {
		t.Error("zero slope accepted")
	}
}

func TestWaterFillConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		p := 2 + rng.Intn(8)
		nodes := make([]NodeModel, p)
		for i := range nodes {
			nodes[i] = NodeModel{
				Time:      sampling.LinearFit{Slope: 0.0001 + rng.Float64()*0.01, Intercept: rng.Float64() * 10},
				DirtyRate: rng.Float64() * 400,
			}
		}
		total := 1000 + rng.Intn(100000)
		x, T, err := WaterFill(nodes, total)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i, v := range x {
			if v < 0 {
				t.Fatalf("negative allocation %v", v)
			}
			sum += v
			// Every loaded node finishes by T (within tolerance).
			if v > 0 {
				ft := nodes[i].Time.Predict(v)
				if ft > T*(1+1e-6)+1e-6 {
					t.Fatalf("node %d finishes at %v > T=%v", i, ft, T)
				}
			}
		}
		if math.Abs(sum-float64(total)) > 1e-3 {
			t.Fatalf("allocations sum %v, want %d", sum, total)
		}
	}
}

func TestWaterFillAgainstLPRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		p := 2 + rng.Intn(6)
		nodes := make([]NodeModel, p)
		for i := range nodes {
			// Intercepts kept well below the water level: when an idle
			// node's intercept exceeds the balanced finish time, the
			// paper's LP (v ≥ c_i for every node, loaded or not)
			// legitimately diverges from pure water-filling.
			nodes[i] = NodeModel{
				Time:      sampling.LinearFit{Slope: 0.0001 + rng.Float64()*0.005, Intercept: rng.Float64() * 0.3},
				DirtyRate: rng.Float64() * 400,
			}
		}
		total := 10000 + rng.Intn(500000)
		plan, err := Optimize(nodes, total, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, T, err := WaterFill(nodes, total)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plan.Makespan-T)/T > 1e-3 {
			t.Errorf("trial %d: LP makespan %v, water-fill %v", trial, plan.Makespan, T)
		}
	}
}

func TestRoundToTotal(t *testing.T) {
	cases := []struct {
		x     []float64
		total int
	}{
		{[]float64{1.5, 2.5, 3.0}, 7},
		{[]float64{0.3, 0.3, 0.4}, 1},
		{[]float64{10, 0, 0}, 10},
		{[]float64{0, 0, 0}, 5},
		{[]float64{-0.5, 3.2, 2.3}, 5},
		{[]float64{2.9, 2.9, 2.9}, 8}, // fractional sum 8.7 → floor+remainders
		{[]float64{3.5, 3.5}, 6},      // fractional sum exceeds total after ceil
	}
	for i, c := range cases {
		sizes := RoundToTotal(c.x, c.total)
		sum := 0
		for _, s := range sizes {
			if s < 0 {
				t.Errorf("case %d: negative size", i)
			}
			sum += s
		}
		if sum != c.total {
			t.Errorf("case %d: sum %d, want %d (sizes %v)", i, sum, c.total, sizes)
		}
	}
}

func TestDominates(t *testing.T) {
	a := FrontierPoint{Makespan: 1, DirtyEnergy: 1}
	b := FrontierPoint{Makespan: 2, DirtyEnergy: 2}
	c := FrontierPoint{Makespan: 0.5, DirtyEnergy: 3}
	if !Dominates(a, b) {
		t.Error("a must dominate b")
	}
	if Dominates(b, a) {
		t.Error("b cannot dominate a")
	}
	if Dominates(a, c) || Dominates(c, a) {
		t.Error("a and c are incomparable")
	}
	if Dominates(a, a) {
		t.Error("a point cannot dominate itself")
	}
}

func TestOptimizeWithConstraintsMinSize(t *testing.T) {
	nodes := paperNodes()
	total := 100000
	plan, err := OptimizeWithConstraints(nodes, total, 1, Constraints{MinSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range plan.Sizes {
		if s < 10000 {
			t.Errorf("size %d below floor", s)
		}
		sum += s
	}
	if sum != total {
		t.Errorf("sum %d", sum)
	}
	// Negative floor rejected; oversized floor capped at total/p.
	if _, err := OptimizeWithConstraints(nodes, total, 1, Constraints{MinSize: -1}); err == nil {
		t.Error("negative MinSize accepted")
	}
	plan, err = OptimizeWithConstraints(nodes, total, 1, Constraints{MinSize: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Sizes {
		if s != total/len(nodes) {
			t.Errorf("capped floor should force equal sizes, got %v", plan.Sizes)
		}
	}
	// Floor must not change the unconstrained solution when inactive.
	free, err := Optimize(nodes, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := OptimizeWithConstraints(nodes, total, 1, Constraints{MinSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(free.Makespan-tiny.Makespan) > 1e-6 {
		t.Errorf("inactive floor changed makespan %v vs %v", free.Makespan, tiny.Makespan)
	}
}

func TestConstrainedEnergyObjectiveStillTrades(t *testing.T) {
	nodes := paperNodes()
	total := 100000
	het, err := OptimizeWithConstraints(nodes, total, 1, Constraints{MinSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	hea, err := OptimizeWithConstraints(nodes, total, 0.9, Constraints{MinSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if hea.DirtyEnergy > het.DirtyEnergy {
		t.Errorf("constrained energy-aware dirty %v above time-only %v", hea.DirtyEnergy, het.DirtyEnergy)
	}
	if hea.Sizes[3] < 5000 {
		t.Errorf("floor violated under energy objective: %v", hea.Sizes)
	}
}

func TestExactFrontier(t *testing.T) {
	nodes := paperNodes()
	total := 200000
	pts, err := ExactFrontier(nodes, total, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("frontier has %d points, want ≥ 2 (both extremes)", len(pts))
	}
	// Ordered by α: makespan non-increasing as α rises, energy
	// non-decreasing; all points mutually non-dominated.
	for i := 1; i < len(pts); i++ {
		if pts[i].Alpha <= pts[i-1].Alpha {
			t.Errorf("alphas not ascending at %d", i)
		}
		if pts[i].Makespan > pts[i-1].Makespan+1e-6 {
			t.Errorf("makespan rose with alpha at %d", i)
		}
		if pts[i].DirtyEnergy < pts[i-1].DirtyEnergy-1e-6 {
			t.Errorf("energy fell with alpha at %d", i)
		}
	}
	for i := range pts {
		for j := range pts {
			if i != j && Dominates(pts[i], pts[j]) {
				t.Errorf("frontier point %d dominates point %d", i, j)
			}
		}
	}
	// Every sampled sweep point must be weakly dominated by (or equal
	// to) some exact frontier point — the exact set is complete.
	sweep, err := Frontier(nodes, total, DefaultAlphaSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep {
		ok := false
		for _, p := range pts {
			if p.Makespan <= s.Makespan+1e-6 && p.DirtyEnergy <= s.DirtyEnergy+1e-6 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("sweep point α=%v (t=%v e=%v) not covered by exact frontier",
				s.Alpha, s.Makespan, s.DirtyEnergy)
		}
	}
}

func TestExactFrontierDegenerate(t *testing.T) {
	// All nodes identical in both objectives: the frontier is a single
	// point.
	nodes := []NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 100},
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 100},
	}
	pts, err := ExactFrontier(nodes, 1000, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Errorf("degenerate frontier has %d points: %+v", len(pts), pts)
	}
}
