package opt

import (
	"math"
	"testing"

	"pareto/internal/sampling"
)

func TestSelectNodesValidation(t *testing.T) {
	nodes := paperNodes()
	if _, _, err := SelectNodes(nodes, 100, 0, 1); err == nil {
		t.Error("p=0 accepted")
	}
	if _, _, err := SelectNodes(nodes, 100, 9, 1); err == nil {
		t.Error("p > pool accepted")
	}
	if _, _, err := SelectNodes(nodes, 0, 2, 1); err == nil {
		t.Error("zero total accepted")
	}
}

func TestSelectNodesPrefersFastAtAlphaOne(t *testing.T) {
	// Pool: two fast nodes, two slow ones. At α=1, selecting 2 must
	// pick the fast pair.
	pool := []NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 400},
		{Time: sampling.LinearFit{Slope: 0.004}, DirtyRate: 10},
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 400},
		{Time: sampling.LinearFit{Slope: 0.004}, DirtyRate: 10},
	}
	chosen, plan, err := SelectNodes(pool, 100000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chosen[0] != 0 || chosen[1] != 2 {
		t.Errorf("chose %v, want the fast pair [0 2]", chosen)
	}
	if len(plan.Sizes) != 2 {
		t.Errorf("plan over %d nodes", len(plan.Sizes))
	}
	sum := plan.Sizes[0] + plan.Sizes[1]
	if sum != 100000 {
		t.Errorf("sizes sum %d", sum)
	}
}

func TestSelectNodesPrefersGreenAtLowAlpha(t *testing.T) {
	pool := []NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 400}, // fast, dirty
		{Time: sampling.LinearFit{Slope: 0.0012}, DirtyRate: 0},  // nearly as fast, green
		{Time: sampling.LinearFit{Slope: 0.0012}, DirtyRate: 0},  // nearly as fast, green
		{Time: sampling.LinearFit{Slope: 0.01}, DirtyRate: 400},  // slow and dirty
	}
	chosen, plan, err := SelectNodes(pool, 100000, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if chosen[0] != 1 || chosen[1] != 2 {
		t.Errorf("chose %v, want the green pair [1 2]", chosen)
	}
	if plan.DirtyEnergy != 0 {
		t.Errorf("dirty energy %v on all-green subset", plan.DirtyEnergy)
	}
}

func TestSelectNodesExcludesDominatedNode(t *testing.T) {
	// Node 3 is both slower AND dirtier than everyone: never selected
	// unless forced by p.
	pool := []NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 100},
		{Time: sampling.LinearFit{Slope: 0.0015}, DirtyRate: 120},
		{Time: sampling.LinearFit{Slope: 0.002}, DirtyRate: 150},
		{Time: sampling.LinearFit{Slope: 0.02}, DirtyRate: 500},
	}
	for _, alpha := range []float64{1, 0.99, 0.5} {
		chosen, _, err := SelectNodes(pool, 50000, 3, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chosen {
			if c == 3 {
				t.Errorf("alpha %v: dominated node selected: %v", alpha, chosen)
			}
		}
	}
	// Forced at p=4 it must appear.
	chosen, _, err := SelectNodes(pool, 50000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 4 {
		t.Errorf("chose %v", chosen)
	}
}

func TestSelectNodesFullPoolMatchesOptimize(t *testing.T) {
	nodes := paperNodes()
	total := 100000
	chosen, plan, err := SelectNodes(nodes, total, len(nodes), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chosen {
		if c != i {
			t.Errorf("full-pool selection %v", chosen)
		}
	}
	direct, err := Optimize(nodes, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Makespan-direct.Makespan) > 1e-9 {
		t.Errorf("selection makespan %v vs direct %v", plan.Makespan, direct.Makespan)
	}
}

func TestSelectNodesMoreNodesNeverHurt(t *testing.T) {
	// At α=1 the p+1-subset's objective cannot exceed the p-subset's
	// (the extra node can always be left nearly idle — up to the idle
	// intercept, which is zero here).
	pool := make([]NodeModel, 6)
	for i := range pool {
		pool[i] = NodeModel{
			Time:      sampling.LinearFit{Slope: 0.001 * float64(i+1)},
			DirtyRate: float64(50 * (i + 1)),
		}
	}
	var prev float64
	for p := 1; p <= len(pool); p++ {
		_, plan, err := SelectNodes(pool, 200000, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1 && plan.Makespan > prev+1e-9 {
			t.Errorf("p=%d makespan %v above p=%d's %v", p, plan.Makespan, p-1, prev)
		}
		prev = plan.Makespan
	}
}
