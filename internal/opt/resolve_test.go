package opt

import (
	"math/rand"
	"testing"

	"pareto/internal/sampling"
)

// TestSizingUpdatesWarmMatchesCold re-solves one retained sizing basis
// across a chain of model changes (re-profiled slopes/intercepts,
// growing totals) and checks each warm result is bit-identical to a
// cold SizingLP build-and-solve of the same model — with and without
// MinSize floors.
func TestSizingUpdatesWarmMatchesCold(t *testing.T) {
	for _, cons := range []Constraints{{}, {MinSize: 50}} {
		rng := rand.New(rand.NewSource(23))
		const p = 8
		nodes := make([]NodeModel, p)
		for i := range nodes {
			nodes[i] = NodeModel{
				Time:      sampling.LinearFit{Slope: 0.5 + rng.Float64()*3, Intercept: rng.Float64() * 5},
				DirtyRate: 0.2 + rng.Float64(),
			}
		}
		total := 10_000
		alpha := 0.7

		prob, err := SizingLP(nodes, total, alpha, cons)
		if err != nil {
			t.Fatal(err)
		}
		sv := prob.NewSolver()
		if _, err := sv.Solve(); err != nil {
			t.Fatal(err)
		}

		warm := 0
		for step := 0; step < 20; step++ {
			// Drift: some nodes get new fits, the corpus grows.
			for i := range nodes {
				if rng.Intn(3) == 0 {
					nodes[i].Time = sampling.LinearFit{Slope: 0.5 + rng.Float64()*3, Intercept: rng.Float64() * 5}
				}
			}
			total += rng.Intn(500)

			sol, err := sv.ReSolveModel(SizingObjective(nodes, total, alpha), SizingUpdates(nodes, total, cons))
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if sol.Warm {
				warm++
			}

			coldProb, err := SizingLP(nodes, total, alpha, cons)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := coldProb.Solve()
			if err != nil {
				t.Fatalf("step %d cold: %v", step, err)
			}
			for i := range cold.X {
				if sol.X[i] != cold.X[i] {
					t.Fatalf("cons=%+v step %d (warm=%v): X[%d] = %v, cold %v",
						cons, step, sol.Warm, i, sol.X[i], cold.X[i])
				}
			}
		}
		if warm == 0 {
			t.Fatalf("cons=%+v: no warm re-solve in the whole chain", cons)
		}
	}
}

// TestSizingUpdatesRowLayout pins the update row indices to SizingLP's
// constraint order, so a layout change in one cannot silently corrupt
// the other.
func TestSizingUpdatesRowLayout(t *testing.T) {
	nodes := []NodeModel{
		{Time: sampling.LinearFit{Slope: 1, Intercept: 2}, DirtyRate: 1},
		{Time: sampling.LinearFit{Slope: 3, Intercept: 4}, DirtyRate: 1},
	}
	ups := SizingUpdates(nodes, 100, Constraints{})
	if len(ups) != 2 || ups[0].Row != 0 || ups[1].Row != 1 {
		t.Fatalf("floorless rows = %+v, want time rows at 0,1", ups)
	}
	if ups[1].Coeffs[1] != 300 || ups[1].RHS != -4 {
		t.Fatalf("time row 1 = %+v, want slope·total at own column, −intercept RHS", ups[1])
	}
	ups = SizingUpdates(nodes, 100, Constraints{MinSize: 10})
	if len(ups) != 4 || ups[0].Row != 0 || ups[1].Row != 1 || ups[2].Row != 2 || ups[3].Row != 3 {
		t.Fatalf("floored rows = %+v, want interleaved time/floor rows", ups)
	}
	if ups[1].Coeffs[0] != 1 || ups[1].RHS != 0.1 {
		t.Fatalf("floor row 0 = %+v, want unit coeff and MinSize/total", ups[1])
	}
	// MinSize above total/p is capped, matching OptimizeWithConstraints.
	ups = SizingUpdates(nodes, 100, Constraints{MinSize: 90})
	if got := ups[1].RHS; got != 0.5 {
		t.Fatalf("capped floor RHS = %v, want 50/100", got)
	}
}
