// Package opt implements the Pareto-optimal modeler (paper §III-D):
// given per-node execution-time utility functions f_i(x) = m_i·x + c_i
// and dirty-power constants k_i, it sizes the p data partitions by
// solving the scalarized multi-objective linear program
//
//	minimize    α·v + (1−α)·Σ_i k_i·(m_i·x_i + c_i)
//	subject to  v ≥ m_i·x_i + c_i       (v is the makespan)
//	            Σ_i x_i = N,  x_i ≥ 0
//
// Scalarization guarantees every solution is Pareto-optimal; sweeping
// α from 1 to 0 traces the time/dirty-energy Pareto frontier. α = 1 is
// the paper's Het-Aware scheme (pure makespan minimization); α slightly
// below 1 is Het-Energy-Aware.
//
// Because the two objectives have very different scales, raw α must sit
// extremely close to 1 to trade time against energy (the paper uses
// 0.999 and 0.995 and flags normalization as future work). This package
// implements that future work too: OptimizeNormalized rescales both
// objectives to [0, 1] using their extreme values before scalarizing,
// making α behave uniformly.
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pareto/internal/lp"
	"pareto/internal/sampling"
)

// NodeModel aggregates what the modeler knows about one node: its
// learned time utility function and its dirty-power constant
// k_i = E_i − mean GE_i (W), per §III-B's linearization.
type NodeModel struct {
	// Time predicts execution seconds from data-unit count.
	Time sampling.LinearFit
	// DirtyRate is k_i in watts; ≥ 0.
	DirtyRate float64
}

// Plan is the modeler's output partition sizing.
type Plan struct {
	// Sizes holds integral per-node data-unit counts summing to the
	// requested total.
	Sizes []int
	// X is the raw (fractional) LP solution.
	X []float64
	// Makespan is the predicted maximum per-node execution time, v.
	Makespan float64
	// DirtyEnergy is the predicted total dirty energy in joules:
	// Σ k_i · f_i(x_i) over nodes with x_i > 0.
	DirtyEnergy float64
	// Alpha is the scalarization weight used.
	Alpha float64
}

func validate(nodes []NodeModel, total int, alpha float64) error {
	if len(nodes) == 0 {
		return errors.New("opt: no nodes")
	}
	if total <= 0 {
		return fmt.Errorf("opt: total data units %d, need ≥ 1", total)
	}
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("opt: alpha %v out of [0,1]", alpha)
	}
	for i, n := range nodes {
		if n.Time.Slope < 0 || n.Time.Intercept < 0 {
			return fmt.Errorf("opt: node %d has negative time model (%v, %v); clamp fits first",
				i, n.Time.Slope, n.Time.Intercept)
		}
		if n.DirtyRate < 0 {
			return fmt.Errorf("opt: node %d has negative dirty rate %v", i, n.DirtyRate)
		}
	}
	return nil
}

// Constraints are optional side conditions on the partition sizing.
type Constraints struct {
	// MinSize forces x_i ≥ MinSize for every node. Scaled-support
	// mining algorithms degenerate on very small partitions (a local
	// threshold of a couple of records makes everything locally
	// frequent), so production deployments floor the share a node may
	// receive. Values above total/p are capped there. 0 disables.
	MinSize float64
}

// Optimize solves the scalarized LP at the given α and returns the
// partition sizing. α = 1 reproduces Het-Aware; the paper's
// Het-Energy-Aware runs use α = 0.999 (mining) and 0.995 (compression).
func Optimize(nodes []NodeModel, total int, alpha float64) (*Plan, error) {
	return OptimizeWithConstraints(nodes, total, alpha, Constraints{})
}

// OptimizeWithConstraints is Optimize with side conditions.
func OptimizeWithConstraints(nodes []NodeModel, total int, alpha float64, cons Constraints) (*Plan, error) {
	if err := validate(nodes, total, alpha); err != nil {
		return nil, err
	}
	if cons.MinSize < 0 {
		return nil, fmt.Errorf("opt: negative MinSize %v", cons.MinSize)
	}
	if cap := float64(total) / float64(len(nodes)); cons.MinSize > cap {
		cons.MinSize = cap
	}
	x, v, err := solveScalarized(nodes, total, alpha, 1, 1, cons)
	if err != nil {
		return nil, err
	}
	return buildPlan(nodes, total, alpha, x, v), nil
}

// OptimizeNormalized solves the scalarized LP after rescaling both
// objectives to [0, 1] over their attainable ranges, so α = 0.5 weighs
// time and energy equally (the normalization the paper proposes as
// future work). It costs two extra extreme-point LP solves.
func OptimizeNormalized(nodes []NodeModel, total int, alpha float64) (*Plan, error) {
	if err := validate(nodes, total, alpha); err != nil {
		return nil, err
	}
	// Extreme 1: pure time (α=1) gives the smallest possible makespan.
	xT, vMin, err := solveScalarized(nodes, total, 1, 1, 1, Constraints{})
	if err != nil {
		return nil, err
	}
	// Extreme 2: pure energy (α=0) gives the smallest possible energy.
	xE, _, err := solveScalarized(nodes, total, 0, 1, 1, Constraints{})
	if err != nil {
		return nil, err
	}
	eMin := energyOf(nodes, xE)
	eMax := energyOf(nodes, xT)
	vMax := makespanOf(nodes, xE)
	vScale := vMax - vMin
	if vScale <= 0 {
		vScale = math.Max(vMin, 1)
	}
	eScale := eMax - eMin
	if eScale <= 0 {
		eScale = math.Max(eMax, 1)
	}
	x, v, err := solveScalarized(nodes, total, alpha, vScale, eScale, Constraints{})
	if err != nil {
		return nil, err
	}
	return buildPlan(nodes, total, alpha, x, v), nil
}

// tieBreakWeight is the floor on each scalarization weight. At the
// endpoints the raw weights vanish (α=1 zeroes the energy term, α=0
// the makespan term) and the LP develops a whole optimal face — every
// distribution achieving the extreme value ties, and which vertex
// simplex reports becomes pivot-path dependent. Flooring the weights
// turns the endpoints into lexicographic objectives (min makespan,
// then min dirty energy among the tied plans, and vice versa), which
// generically has a unique optimum. The floor is far above the
// solver's eps so the tie-break is decided by real reduced costs, and
// small enough to be invisible away from the endpoints.
const tieBreakWeight = 1e-6

// scaledObjective is the scalarized objective vector over the LP's
// p+1 variables (s_0..s_{p−1}, v), where s_i = x_i/total is node i's
// share of the data:
//
//	min (w_v/vScale)·v + (w_e/eScale)·Σ k_i m_i total s_i
//
// with w_v = max(α, tieBreakWeight), w_e = max(1−α, tieBreakWeight).
// Both SizingObjective and the normalized path funnel through this one
// expression so warm re-solves see bit-identical coefficients to a
// cold build.
func scaledObjective(nodes []NodeModel, total int, alpha, vScale, eScale float64) []float64 {
	p := len(nodes)
	we := math.Max(1-alpha, tieBreakWeight)
	wv := math.Max(alpha, tieBreakWeight)
	obj := make([]float64, p+1)
	for i, n := range nodes {
		obj[i] = we / eScale * n.DirtyRate * n.Time.Slope * float64(total)
	}
	obj[p] = wv / vScale
	return obj
}

// SizingObjective returns the scalarized objective at the given α in
// the variable layout SizingLP uses (shares s_0..s_{p−1}, then v).
// Frontier sweeps pass it to lp.Solver.ReSolve to move between α
// values without rebuilding the LP.
func SizingObjective(nodes []NodeModel, total int, alpha float64) []float64 {
	return scaledObjective(nodes, total, alpha, 1, 1)
}

// SizingLP builds the partition-sizing LP (§III-D) at the given α over
// *share* variables s_i = x_i/total: per-node constraints
// m_i·total·s_i − v ≤ −c_i, optional MinSize/total floors, and
// Σ s_i = 1. Solving in shares keeps every variable O(1) regardless of
// the dataset size, which keeps simplex reduced costs on the same
// scale as the solver's optimality tolerance — the property that makes
// warm and cold solves terminate at the same vertex instead of
// straddling a tolerance knife-edge (see internal/frontier). Use
// UnitsFromShares to map a solution back to data units.
//
// The constraint set is α-independent — only the objective changes
// between frontier samples — which is what makes the warm-start sweep
// in internal/frontier valid.
func SizingLP(nodes []NodeModel, total int, alpha float64, cons Constraints) (*lp.Problem, error) {
	return buildSizingLP(nodes, total, alpha, 1, 1, cons)
}

func buildSizingLP(nodes []NodeModel, total int, alpha, vScale, eScale float64, cons Constraints) (*lp.Problem, error) {
	p := len(nodes)
	prob, err := lp.NewProblem(scaledObjective(nodes, total, alpha, vScale, eScale))
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	for i, n := range nodes {
		// m_i·total·s_i − v ≤ −c_i
		row := make([]float64, p+1)
		row[i] = n.Time.Slope * float64(total)
		row[p] = -1
		if err := prob.AddConstraint(row, lp.LE, -n.Time.Intercept); err != nil {
			return nil, fmt.Errorf("opt: %w", err)
		}
		if cons.MinSize > 0 {
			floor := make([]float64, p+1)
			floor[i] = 1
			if err := prob.AddConstraint(floor, lp.GE, cons.MinSize/float64(total)); err != nil {
				return nil, fmt.Errorf("opt: %w", err)
			}
		}
	}
	sum := make([]float64, p+1)
	for i := 0; i < p; i++ {
		sum[i] = 1
	}
	if err := prob.AddConstraint(sum, lp.EQ, 1); err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	return prob, nil
}

// SizingUpdates returns the lp.ConstraintUpdates that retarget an
// existing SizingLP at new node models and total, mirroring the exact
// row layout SizingLP built: per node i the time row
// m_i·total·s_i − v ≤ −c_i and, when the LP was built with a MinSize
// floor, the floor row after it; the final Σs = 1 row never changes
// and is not updated. cons must enable floors iff the original LP did
// (cons.MinSize > 0 on both or neither — the row layout is fixed at
// build time); MinSize is capped at total/p exactly as
// OptimizeWithConstraints caps it. Pair with SizingObjective and
// lp.Solver.ReSolveModel to move a retained sizing basis onto
// re-profiled models without a two-phase rebuild.
func SizingUpdates(nodes []NodeModel, total int, cons Constraints) []lp.ConstraintUpdate {
	p := len(nodes)
	if cap := float64(total) / float64(p); cons.MinSize > cap {
		cons.MinSize = cap
	}
	perNode := 1
	if cons.MinSize > 0 {
		perNode = 2
	}
	ups := make([]lp.ConstraintUpdate, 0, p*perNode)
	row := 0
	for i, n := range nodes {
		coeffs := make([]float64, p+1)
		coeffs[i] = n.Time.Slope * float64(total)
		coeffs[p] = -1
		ups = append(ups, lp.ConstraintUpdate{Row: row, Coeffs: coeffs, RHS: -n.Time.Intercept})
		row++
		if cons.MinSize > 0 {
			floor := make([]float64, p+1)
			floor[i] = 1
			ups = append(ups, lp.ConstraintUpdate{Row: row, Coeffs: floor, RHS: cons.MinSize / float64(total)})
			row++
		}
	}
	return ups
}

// UnitsFromShares maps a share-space LP solution (SizingLP's native
// variables) back to data units: x_i = s_i·total. Cold solves and warm
// frontier re-solves both go through this one expression, so
// bit-identical share vectors always yield bit-identical unit vectors.
func UnitsFromShares(shares []float64, total int) []float64 {
	x := make([]float64, len(shares))
	for i, s := range shares {
		x[i] = s * float64(total)
	}
	return x
}

// solveScalarized builds and solves the scalarized LP, returning the
// fractional x (in data units) and the achieved makespan v.
func solveScalarized(nodes []NodeModel, total int, alpha, vScale, eScale float64, cons Constraints) ([]float64, float64, error) {
	prob, err := buildSizingLP(nodes, total, alpha, vScale, eScale, cons)
	if err != nil {
		return nil, 0, err
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, 0, fmt.Errorf("opt: scalarized LP: %w", err)
	}
	x := UnitsFromShares(sol.X[:len(nodes)], total)
	// With α = 0 the LP leaves v at its minimal feasible value anyway
	// (it only appears in constraints); recompute the true makespan
	// from x for reporting.
	return x, makespanOf(nodes, x), nil
}

// makespanOf returns max_i f_i(x_i) over nodes with x_i > 0 (an idle
// node does not run and cannot bottleneck the job).
func makespanOf(nodes []NodeModel, x []float64) float64 {
	v := 0.0
	for i, n := range nodes {
		if x[i] <= 0 {
			continue
		}
		if t := n.Time.Predict(x[i]); t > v {
			v = t
		}
	}
	return v
}

// energyOf returns Σ k_i f_i(x_i) over nodes with x_i > 0.
func energyOf(nodes []NodeModel, x []float64) float64 {
	e := 0.0
	for i, n := range nodes {
		if x[i] <= 0 {
			continue
		}
		e += n.DirtyRate * n.Time.Predict(x[i])
	}
	return e
}

// buildPlan rounds the fractional solution to integers summing to
// total (largest-remainder apportionment) and fills in predictions.
// The v argument is accepted for call-site symmetry but predictions
// are recomputed from the rounded integer sizes (see PlanFromX).
func buildPlan(nodes []NodeModel, total int, alpha float64, x []float64, v float64) *Plan {
	_ = v
	return PlanFromX(nodes, total, alpha, x)
}

// PlanFromX materializes a Plan from a fractional LP solution: sizes
// are rounded to integers summing to total (largest-remainder), and
// Makespan/DirtyEnergy are recomputed from the integer sizes — so two
// bit-identical x vectors always produce bit-identical Plans, the
// property the warm-started sweep's equivalence guarantee extends
// through.
func PlanFromX(nodes []NodeModel, total int, alpha float64, x []float64) *Plan {
	sizes := RoundToTotal(x, total)
	xi := make([]float64, len(sizes))
	for i, s := range sizes {
		xi[i] = float64(s)
	}
	return &Plan{
		Sizes:       sizes,
		X:           x,
		Makespan:    makespanOf(nodes, xi),
		DirtyEnergy: energyOf(nodes, xi),
		Alpha:       alpha,
	}
}

// RoundToTotal rounds nonnegative fractional shares to integers that
// sum exactly to total, using largest-remainder apportionment.
// Negative inputs (LP jitter) are treated as zero.
func RoundToTotal(x []float64, total int) []int {
	n := len(x)
	sizes := make([]int, n)
	type rem struct {
		i int
		f float64
	}
	rems := make([]rem, 0, n)
	assigned := 0
	for i, v := range x {
		if v < 0 {
			v = 0
		}
		fl := math.Floor(v)
		sizes[i] = int(fl)
		assigned += sizes[i]
		rems = append(rems, rem{i, v - fl})
	}
	left := total - assigned
	if left < 0 {
		// Fractional sum exceeded total (rounding noise): trim from the
		// largest allocations.
		for left < 0 {
			big := 0
			for i := range sizes {
				if sizes[i] > sizes[big] {
					big = i
				}
			}
			sizes[big]--
			left++
		}
		return sizes
	}
	// Distribute the remainder to the largest fractional parts,
	// deterministically (fraction desc, index asc).
	for k := 0; k < left; k++ {
		best := -1
		for j := range rems {
			if rems[j].f < 0 {
				continue
			}
			if best < 0 || rems[j].f > rems[best].f {
				best = j
			}
		}
		if best < 0 {
			// All remainders consumed; spread round-robin.
			sizes[k%n]++
			continue
		}
		sizes[rems[best].i]++
		rems[best].f = -1
	}
	return sizes
}

// WaterFill solves the α = 1 special case analytically: choose T so
// that Σ_i max(0, (T − c_i)/m_i) = N, the classical water-filling
// balance where every loaded node finishes at exactly T. It requires
// every slope positive and is used to cross-validate the simplex
// solution. Returns the fractional allocation and T.
func WaterFill(nodes []NodeModel, total int) ([]float64, float64, error) {
	if len(nodes) == 0 {
		return nil, 0, errors.New("opt: no nodes")
	}
	if total <= 0 {
		return nil, 0, errors.New("opt: total must be positive")
	}
	for i, n := range nodes {
		if n.Time.Slope <= 0 {
			return nil, 0, fmt.Errorf("opt: WaterFill needs positive slopes; node %d has %v", i, n.Time.Slope)
		}
	}
	capacity := func(T float64) float64 {
		var s float64
		for _, n := range nodes {
			if T > n.Time.Intercept {
				s += (T - n.Time.Intercept) / n.Time.Slope
			}
		}
		return s
	}
	lo, hi := 0.0, 0.0
	for _, n := range nodes {
		if n.Time.Intercept > lo {
			lo = n.Time.Intercept
		}
	}
	hi = lo + 1
	for capacity(hi) < float64(total) {
		hi *= 2
	}
	lo = 0
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if capacity(mid) < float64(total) {
			lo = mid
		} else {
			hi = mid
		}
	}
	T := (lo + hi) / 2
	x := make([]float64, len(nodes))
	for i, n := range nodes {
		if T > n.Time.Intercept {
			x[i] = (T - n.Time.Intercept) / n.Time.Slope
		}
	}
	// Normalize tiny binary-search residue onto the most-loaded node,
	// so an idle node (intercept above the water level) never receives
	// a sliver of load that would make its intercept the bottleneck.
	var sum float64
	best := 0
	for i, v := range x {
		sum += v
		if v > x[best] {
			best = i
		}
	}
	if diff := float64(total) - sum; diff != 0 {
		x[best] += diff
		if x[best] < 0 {
			x[best] = 0
		}
	}
	return x, T, nil
}

// FrontierPoint is one α sample of the Pareto frontier.
type FrontierPoint struct {
	Alpha       float64
	Makespan    float64
	DirtyEnergy float64
	Plan        *Plan
}

// SamePoint reports whether two frontier points coincide in objective
// space up to the relative tolerance tol (scales taken from a). It is
// the dedup predicate both Frontier and ExactFrontier use.
func SamePoint(a, b FrontierPoint, tol float64) bool {
	scaleT := math.Max(math.Abs(a.Makespan), 1)
	scaleE := math.Max(math.Abs(a.DirtyEnergy), 1)
	return math.Abs(a.Makespan-b.Makespan)/scaleT < tol &&
		math.Abs(a.DirtyEnergy-b.DirtyEnergy)/scaleE < tol
}

// CanonicalizeFrontier sorts points by ascending α (energy-lean →
// time-lean) and drops adjacent points that coincide in objective
// space up to tol (SamePoint), keeping the lowest-α representative.
// Both Frontier and ExactFrontier return canonicalized output; apply
// it to hand-assembled point lists before comparing against them.
func CanonicalizeFrontier(pts []FrontierPoint, tol float64) []FrontierPoint {
	out := make([]FrontierPoint, len(pts))
	copy(out, pts)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Alpha < out[j].Alpha })
	dedup := out[:0]
	for _, p := range out {
		if len(dedup) == 0 || !SamePoint(dedup[len(dedup)-1], p, tol) {
			dedup = append(dedup, p)
		}
	}
	return dedup
}

// frontierDedupTol is the relative tolerance Frontier uses when
// deduplicating adjacent sample points. Plan metrics are recomputed
// from integer sizes, so identical plans compare bitwise equal and the
// tolerance only needs to absorb nothing — it exists for symmetry with
// ExactFrontier's tol parameter.
const frontierDedupTol = 1e-9

// Frontier sweeps the scalarization weight over the given α values and
// returns the sampled Pareto points, as in the paper's Figures 5 and 6.
//
// Regardless of the order alphas are given in (DefaultAlphaSweep is
// descending), the result is canonical: ascending α with adjacent
// duplicates (same makespan and dirty energy within 1e-9 relative)
// collapsed to their lowest-α representative — the same ordering
// contract ExactFrontier has. Callers that need one point per input α
// should call Optimize per value instead.
func Frontier(nodes []NodeModel, total int, alphas []float64) ([]FrontierPoint, error) {
	if len(alphas) == 0 {
		return nil, errors.New("opt: empty alpha sweep")
	}
	pts := make([]FrontierPoint, 0, len(alphas))
	for _, a := range alphas {
		plan, err := Optimize(nodes, total, a)
		if err != nil {
			return nil, fmt.Errorf("opt: frontier at alpha %v: %w", a, err)
		}
		pts = append(pts, FrontierPoint{Alpha: a, Makespan: plan.Makespan, DirtyEnergy: plan.DirtyEnergy, Plan: plan})
	}
	return CanonicalizeFrontier(pts, frontierDedupTol), nil
}

// ErrTruncated reports that ExactFrontier's recursive bisection hit
// its depth limit between two α values whose vertices still differ:
// the returned frontier may be missing breakpoints inside that
// interval. The points found so far are still returned alongside the
// error; callers that can tolerate a partial frontier may use them.
var ErrTruncated = errors.New("opt: frontier bisection truncated at depth limit")

// bisectMaxDepth bounds ExactFrontier's recursion. With the 1e-9
// α-width convergence floor a bisection from [0,1] bottoms out near
// depth 30, so 40 is a pure safety net — but if it ever fires with
// differing endpoints the frontier is incomplete, and that is now
// surfaced as ErrTruncated instead of silently swallowed. A variable
// (not a const) so tests can lower it to exercise the truncation path.
var bisectMaxDepth = 40

// ExactFrontier enumerates the Pareto frontier's vertex points exactly
// (up to tol in objective space, default 1e-6) by recursive α
// bisection: the scalarized LP is piecewise constant in its optimal
// vertex as α varies, so whenever the solutions at two α values
// differ, some breakpoint lies between them. Unlike Frontier, which
// samples a fixed α ladder and can miss segments, this finds every
// distinct vertex.
//
// The result is canonical: ascending α, adjacent duplicates collapsed
// (the ordering contract shared with Frontier). An interval narrower
// than 1e-9 in α whose endpoints still differ is converged, not
// truncated — both endpoint vertices are already in the output and
// bisection always drives adjacent-vertex intervals to that floor. If
// the recursion instead exhausts its depth budget with differing
// endpoints, the points found so far are returned together with an
// error wrapping ErrTruncated.
func ExactFrontier(nodes []NodeModel, total int, tol float64) ([]FrontierPoint, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	solve := func(alpha float64) (FrontierPoint, error) {
		plan, err := Optimize(nodes, total, alpha)
		if err != nil {
			return FrontierPoint{}, err
		}
		return FrontierPoint{Alpha: alpha, Makespan: plan.Makespan, DirtyEnergy: plan.DirtyEnergy, Plan: plan}, nil
	}
	lo, err := solve(0)
	if err != nil {
		return nil, err
	}
	hi, err := solve(1)
	if err != nil {
		return nil, err
	}
	var out []FrontierPoint
	truncated := false
	var rec func(a, b FrontierPoint, depth int) error
	rec = func(a, b FrontierPoint, depth int) error {
		if SamePoint(a, b, tol) || b.Alpha-a.Alpha < 1e-9 {
			return nil
		}
		if depth > bisectMaxDepth {
			truncated = true
			return nil
		}
		mid, err := solve((a.Alpha + b.Alpha) / 2)
		if err != nil {
			return err
		}
		if err := rec(a, mid, depth+1); err != nil {
			return err
		}
		if !SamePoint(mid, a, tol) && !SamePoint(mid, b, tol) {
			out = append(out, mid)
		}
		return rec(mid, b, depth+1)
	}
	out = append(out, lo)
	if err := rec(lo, hi, 0); err != nil {
		return nil, err
	}
	if !SamePoint(lo, hi, tol) {
		out = append(out, hi)
	}
	pts := CanonicalizeFrontier(out, tol)
	if truncated {
		return pts, fmt.Errorf("opt: exact frontier incomplete beyond depth %d: %w", bisectMaxDepth, ErrTruncated)
	}
	return pts, nil
}

// DefaultAlphaSweep returns the α ladder used by the frontier figures:
// dense near 1 (where the interesting tradeoffs live, given the raw
// objective scales) and sparse toward 0.
func DefaultAlphaSweep() []float64 {
	return []float64{1.0, 0.9999, 0.9995, 0.999, 0.995, 0.99, 0.95, 0.9, 0.5, 0.1, 0.0}
}

// Dominates reports whether point a Pareto-dominates point b (no worse
// in both objectives, strictly better in at least one).
func Dominates(a, b FrontierPoint) bool {
	const tol = 1e-9
	noWorse := a.Makespan <= b.Makespan+tol && a.DirtyEnergy <= b.DirtyEnergy+tol
	better := a.Makespan < b.Makespan-tol || a.DirtyEnergy < b.DirtyEnergy-tol
	return noWorse && better
}
