// Package opt implements the Pareto-optimal modeler (paper §III-D):
// given per-node execution-time utility functions f_i(x) = m_i·x + c_i
// and dirty-power constants k_i, it sizes the p data partitions by
// solving the scalarized multi-objective linear program
//
//	minimize    α·v + (1−α)·Σ_i k_i·(m_i·x_i + c_i)
//	subject to  v ≥ m_i·x_i + c_i       (v is the makespan)
//	            Σ_i x_i = N,  x_i ≥ 0
//
// Scalarization guarantees every solution is Pareto-optimal; sweeping
// α from 1 to 0 traces the time/dirty-energy Pareto frontier. α = 1 is
// the paper's Het-Aware scheme (pure makespan minimization); α slightly
// below 1 is Het-Energy-Aware.
//
// Because the two objectives have very different scales, raw α must sit
// extremely close to 1 to trade time against energy (the paper uses
// 0.999 and 0.995 and flags normalization as future work). This package
// implements that future work too: OptimizeNormalized rescales both
// objectives to [0, 1] using their extreme values before scalarizing,
// making α behave uniformly.
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pareto/internal/lp"
	"pareto/internal/sampling"
)

// NodeModel aggregates what the modeler knows about one node: its
// learned time utility function and its dirty-power constant
// k_i = E_i − mean GE_i (W), per §III-B's linearization.
type NodeModel struct {
	// Time predicts execution seconds from data-unit count.
	Time sampling.LinearFit
	// DirtyRate is k_i in watts; ≥ 0.
	DirtyRate float64
}

// Plan is the modeler's output partition sizing.
type Plan struct {
	// Sizes holds integral per-node data-unit counts summing to the
	// requested total.
	Sizes []int
	// X is the raw (fractional) LP solution.
	X []float64
	// Makespan is the predicted maximum per-node execution time, v.
	Makespan float64
	// DirtyEnergy is the predicted total dirty energy in joules:
	// Σ k_i · f_i(x_i) over nodes with x_i > 0.
	DirtyEnergy float64
	// Alpha is the scalarization weight used.
	Alpha float64
}

func validate(nodes []NodeModel, total int, alpha float64) error {
	if len(nodes) == 0 {
		return errors.New("opt: no nodes")
	}
	if total <= 0 {
		return fmt.Errorf("opt: total data units %d, need ≥ 1", total)
	}
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("opt: alpha %v out of [0,1]", alpha)
	}
	for i, n := range nodes {
		if n.Time.Slope < 0 || n.Time.Intercept < 0 {
			return fmt.Errorf("opt: node %d has negative time model (%v, %v); clamp fits first",
				i, n.Time.Slope, n.Time.Intercept)
		}
		if n.DirtyRate < 0 {
			return fmt.Errorf("opt: node %d has negative dirty rate %v", i, n.DirtyRate)
		}
	}
	return nil
}

// Constraints are optional side conditions on the partition sizing.
type Constraints struct {
	// MinSize forces x_i ≥ MinSize for every node. Scaled-support
	// mining algorithms degenerate on very small partitions (a local
	// threshold of a couple of records makes everything locally
	// frequent), so production deployments floor the share a node may
	// receive. Values above total/p are capped there. 0 disables.
	MinSize float64
}

// Optimize solves the scalarized LP at the given α and returns the
// partition sizing. α = 1 reproduces Het-Aware; the paper's
// Het-Energy-Aware runs use α = 0.999 (mining) and 0.995 (compression).
func Optimize(nodes []NodeModel, total int, alpha float64) (*Plan, error) {
	return OptimizeWithConstraints(nodes, total, alpha, Constraints{})
}

// OptimizeWithConstraints is Optimize with side conditions.
func OptimizeWithConstraints(nodes []NodeModel, total int, alpha float64, cons Constraints) (*Plan, error) {
	if err := validate(nodes, total, alpha); err != nil {
		return nil, err
	}
	if cons.MinSize < 0 {
		return nil, fmt.Errorf("opt: negative MinSize %v", cons.MinSize)
	}
	if cap := float64(total) / float64(len(nodes)); cons.MinSize > cap {
		cons.MinSize = cap
	}
	x, v, err := solveScalarized(nodes, total, alpha, 1, 1, cons)
	if err != nil {
		return nil, err
	}
	return buildPlan(nodes, total, alpha, x, v), nil
}

// OptimizeNormalized solves the scalarized LP after rescaling both
// objectives to [0, 1] over their attainable ranges, so α = 0.5 weighs
// time and energy equally (the normalization the paper proposes as
// future work). It costs two extra extreme-point LP solves.
func OptimizeNormalized(nodes []NodeModel, total int, alpha float64) (*Plan, error) {
	if err := validate(nodes, total, alpha); err != nil {
		return nil, err
	}
	// Extreme 1: pure time (α=1) gives the smallest possible makespan.
	xT, vMin, err := solveScalarized(nodes, total, 1, 1, 1, Constraints{})
	if err != nil {
		return nil, err
	}
	// Extreme 2: pure energy (α=0) gives the smallest possible energy.
	xE, _, err := solveScalarized(nodes, total, 0, 1, 1, Constraints{})
	if err != nil {
		return nil, err
	}
	eMin := energyOf(nodes, xE)
	eMax := energyOf(nodes, xT)
	vMax := makespanOf(nodes, xE)
	vScale := vMax - vMin
	if vScale <= 0 {
		vScale = math.Max(vMin, 1)
	}
	eScale := eMax - eMin
	if eScale <= 0 {
		eScale = math.Max(eMax, 1)
	}
	x, v, err := solveScalarized(nodes, total, alpha, vScale, eScale, Constraints{})
	if err != nil {
		return nil, err
	}
	return buildPlan(nodes, total, alpha, x, v), nil
}

// solveScalarized builds and solves the LP
//
//	min (α/vScale)·v + ((1−α)/eScale)·Σ k_i m_i x_i
//
// returning the fractional x and the achieved makespan v.
func solveScalarized(nodes []NodeModel, total int, alpha, vScale, eScale float64, cons Constraints) ([]float64, float64, error) {
	p := len(nodes)
	obj := make([]float64, p+1)
	for i, n := range nodes {
		obj[i] = (1 - alpha) / eScale * n.DirtyRate * n.Time.Slope
	}
	obj[p] = alpha / vScale
	prob, err := lp.NewProblem(obj)
	if err != nil {
		return nil, 0, fmt.Errorf("opt: %w", err)
	}
	for i, n := range nodes {
		// m_i·x_i − v ≤ −c_i
		row := make([]float64, p+1)
		row[i] = n.Time.Slope
		row[p] = -1
		if err := prob.AddConstraint(row, lp.LE, -n.Time.Intercept); err != nil {
			return nil, 0, fmt.Errorf("opt: %w", err)
		}
		if cons.MinSize > 0 {
			floor := make([]float64, p+1)
			floor[i] = 1
			if err := prob.AddConstraint(floor, lp.GE, cons.MinSize); err != nil {
				return nil, 0, fmt.Errorf("opt: %w", err)
			}
		}
	}
	sum := make([]float64, p+1)
	for i := 0; i < p; i++ {
		sum[i] = 1
	}
	if err := prob.AddConstraint(sum, lp.EQ, float64(total)); err != nil {
		return nil, 0, fmt.Errorf("opt: %w", err)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, 0, fmt.Errorf("opt: scalarized LP: %w", err)
	}
	x := sol.X[:p]
	// With α = 0 the LP leaves v at its minimal feasible value anyway
	// (it only appears in constraints); recompute the true makespan
	// from x for reporting.
	return x, makespanOf(nodes, x), nil
}

// makespanOf returns max_i f_i(x_i) over nodes with x_i > 0 (an idle
// node does not run and cannot bottleneck the job).
func makespanOf(nodes []NodeModel, x []float64) float64 {
	v := 0.0
	for i, n := range nodes {
		if x[i] <= 0 {
			continue
		}
		if t := n.Time.Predict(x[i]); t > v {
			v = t
		}
	}
	return v
}

// energyOf returns Σ k_i f_i(x_i) over nodes with x_i > 0.
func energyOf(nodes []NodeModel, x []float64) float64 {
	e := 0.0
	for i, n := range nodes {
		if x[i] <= 0 {
			continue
		}
		e += n.DirtyRate * n.Time.Predict(x[i])
	}
	return e
}

// buildPlan rounds the fractional solution to integers summing to
// total (largest-remainder apportionment) and fills in predictions.
func buildPlan(nodes []NodeModel, total int, alpha float64, x []float64, v float64) *Plan {
	sizes := RoundToTotal(x, total)
	xi := make([]float64, len(sizes))
	for i, s := range sizes {
		xi[i] = float64(s)
	}
	return &Plan{
		Sizes:       sizes,
		X:           x,
		Makespan:    makespanOf(nodes, xi),
		DirtyEnergy: energyOf(nodes, xi),
		Alpha:       alpha,
	}
}

// RoundToTotal rounds nonnegative fractional shares to integers that
// sum exactly to total, using largest-remainder apportionment.
// Negative inputs (LP jitter) are treated as zero.
func RoundToTotal(x []float64, total int) []int {
	n := len(x)
	sizes := make([]int, n)
	type rem struct {
		i int
		f float64
	}
	rems := make([]rem, 0, n)
	assigned := 0
	for i, v := range x {
		if v < 0 {
			v = 0
		}
		fl := math.Floor(v)
		sizes[i] = int(fl)
		assigned += sizes[i]
		rems = append(rems, rem{i, v - fl})
	}
	left := total - assigned
	if left < 0 {
		// Fractional sum exceeded total (rounding noise): trim from the
		// largest allocations.
		for left < 0 {
			big := 0
			for i := range sizes {
				if sizes[i] > sizes[big] {
					big = i
				}
			}
			sizes[big]--
			left++
		}
		return sizes
	}
	// Distribute the remainder to the largest fractional parts,
	// deterministically (fraction desc, index asc).
	for k := 0; k < left; k++ {
		best := -1
		for j := range rems {
			if rems[j].f < 0 {
				continue
			}
			if best < 0 || rems[j].f > rems[best].f {
				best = j
			}
		}
		if best < 0 {
			// All remainders consumed; spread round-robin.
			sizes[k%n]++
			continue
		}
		sizes[rems[best].i]++
		rems[best].f = -1
	}
	return sizes
}

// WaterFill solves the α = 1 special case analytically: choose T so
// that Σ_i max(0, (T − c_i)/m_i) = N, the classical water-filling
// balance where every loaded node finishes at exactly T. It requires
// every slope positive and is used to cross-validate the simplex
// solution. Returns the fractional allocation and T.
func WaterFill(nodes []NodeModel, total int) ([]float64, float64, error) {
	if len(nodes) == 0 {
		return nil, 0, errors.New("opt: no nodes")
	}
	if total <= 0 {
		return nil, 0, errors.New("opt: total must be positive")
	}
	for i, n := range nodes {
		if n.Time.Slope <= 0 {
			return nil, 0, fmt.Errorf("opt: WaterFill needs positive slopes; node %d has %v", i, n.Time.Slope)
		}
	}
	capacity := func(T float64) float64 {
		var s float64
		for _, n := range nodes {
			if T > n.Time.Intercept {
				s += (T - n.Time.Intercept) / n.Time.Slope
			}
		}
		return s
	}
	lo, hi := 0.0, 0.0
	for _, n := range nodes {
		if n.Time.Intercept > lo {
			lo = n.Time.Intercept
		}
	}
	hi = lo + 1
	for capacity(hi) < float64(total) {
		hi *= 2
	}
	lo = 0
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if capacity(mid) < float64(total) {
			lo = mid
		} else {
			hi = mid
		}
	}
	T := (lo + hi) / 2
	x := make([]float64, len(nodes))
	for i, n := range nodes {
		if T > n.Time.Intercept {
			x[i] = (T - n.Time.Intercept) / n.Time.Slope
		}
	}
	// Normalize tiny binary-search residue onto the most-loaded node,
	// so an idle node (intercept above the water level) never receives
	// a sliver of load that would make its intercept the bottleneck.
	var sum float64
	best := 0
	for i, v := range x {
		sum += v
		if v > x[best] {
			best = i
		}
	}
	if diff := float64(total) - sum; diff != 0 {
		x[best] += diff
		if x[best] < 0 {
			x[best] = 0
		}
	}
	return x, T, nil
}

// FrontierPoint is one α sample of the Pareto frontier.
type FrontierPoint struct {
	Alpha       float64
	Makespan    float64
	DirtyEnergy float64
	Plan        *Plan
}

// Frontier sweeps the scalarization weight over the given α values
// (typically 1 → 0) and returns one Pareto point per value, as in the
// paper's Figures 5 and 6.
func Frontier(nodes []NodeModel, total int, alphas []float64) ([]FrontierPoint, error) {
	if len(alphas) == 0 {
		return nil, errors.New("opt: empty alpha sweep")
	}
	pts := make([]FrontierPoint, 0, len(alphas))
	for _, a := range alphas {
		plan, err := Optimize(nodes, total, a)
		if err != nil {
			return nil, fmt.Errorf("opt: frontier at alpha %v: %w", a, err)
		}
		pts = append(pts, FrontierPoint{Alpha: a, Makespan: plan.Makespan, DirtyEnergy: plan.DirtyEnergy, Plan: plan})
	}
	return pts, nil
}

// ExactFrontier enumerates the Pareto frontier's vertex points exactly
// (up to tol in objective space) by recursive α bisection: the
// scalarized LP is piecewise constant in its optimal vertex as α
// varies, so whenever the solutions at two α values differ, some
// breakpoint lies between them. Unlike Frontier, which samples a fixed
// α ladder and can miss segments, this finds every distinct vertex.
func ExactFrontier(nodes []NodeModel, total int, tol float64) ([]FrontierPoint, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	solve := func(alpha float64) (FrontierPoint, error) {
		plan, err := Optimize(nodes, total, alpha)
		if err != nil {
			return FrontierPoint{}, err
		}
		return FrontierPoint{Alpha: alpha, Makespan: plan.Makespan, DirtyEnergy: plan.DirtyEnergy, Plan: plan}, nil
	}
	lo, err := solve(0)
	if err != nil {
		return nil, err
	}
	hi, err := solve(1)
	if err != nil {
		return nil, err
	}
	samePoint := func(a, b FrontierPoint) bool {
		scaleT := math.Max(math.Abs(a.Makespan), 1)
		scaleE := math.Max(math.Abs(a.DirtyEnergy), 1)
		return math.Abs(a.Makespan-b.Makespan)/scaleT < tol &&
			math.Abs(a.DirtyEnergy-b.DirtyEnergy)/scaleE < tol
	}
	var out []FrontierPoint
	var rec func(a, b FrontierPoint, depth int) error
	rec = func(a, b FrontierPoint, depth int) error {
		if samePoint(a, b) || depth > 40 || b.Alpha-a.Alpha < 1e-9 {
			return nil
		}
		mid, err := solve((a.Alpha + b.Alpha) / 2)
		if err != nil {
			return err
		}
		if err := rec(a, mid, depth+1); err != nil {
			return err
		}
		if !samePoint(mid, a) && !samePoint(mid, b) {
			out = append(out, mid)
		}
		return rec(mid, b, depth+1)
	}
	out = append(out, lo)
	if err := rec(lo, hi, 0); err != nil {
		return nil, err
	}
	if !samePoint(lo, hi) {
		out = append(out, hi)
	}
	// Order by α ascending (energy-lean → time-lean) and deduplicate.
	sort.Slice(out, func(i, j int) bool { return out[i].Alpha < out[j].Alpha })
	dedup := out[:0]
	for _, p := range out {
		if len(dedup) == 0 || !samePoint(dedup[len(dedup)-1], p) {
			dedup = append(dedup, p)
		}
	}
	return dedup, nil
}

// DefaultAlphaSweep returns the α ladder used by the frontier figures:
// dense near 1 (where the interesting tradeoffs live, given the raw
// objective scales) and sparse toward 0.
func DefaultAlphaSweep() []float64 {
	return []float64{1.0, 0.9999, 0.9995, 0.999, 0.995, 0.99, 0.95, 0.9, 0.5, 0.1, 0.0}
}

// Dominates reports whether point a Pareto-dominates point b (no worse
// in both objectives, strictly better in at least one).
func Dominates(a, b FrontierPoint) bool {
	const tol = 1e-9
	noWorse := a.Makespan <= b.Makespan+tol && a.DirtyEnergy <= b.DirtyEnergy+tol
	better := a.Makespan < b.Makespan-tol || a.DirtyEnergy < b.DirtyEnergy-tol
	return noWorse && better
}
