package opt

import (
	"errors"
	"fmt"
	"sort"
)

// SelectNodes picks which p nodes of a larger candidate pool should
// host partitions — the geo-distributed deployment of paper §II, where
// a job may run on any p servers across regions and the scheduler
// prefers fast and green ones. It greedily grows the subset by
// marginal scalarized-objective improvement and then polishes with
// single-node swaps, solving the partition-sizing LP for every
// candidate subset evaluation.
//
// It returns the chosen node indices (ascending) and the sizing plan
// over exactly those nodes (Plan.Sizes aligns with the returned
// indices).
func SelectNodes(nodes []NodeModel, total, p int, alpha float64) ([]int, *Plan, error) {
	if p < 1 {
		return nil, nil, fmt.Errorf("opt: select %d nodes", p)
	}
	if p > len(nodes) {
		return nil, nil, fmt.Errorf("opt: select %d of %d nodes", p, len(nodes))
	}
	if err := validate(nodes, total, alpha); err != nil {
		return nil, nil, err
	}
	objective := func(subset []int) (*Plan, float64, error) {
		sub := make([]NodeModel, len(subset))
		for i, idx := range subset {
			sub[i] = nodes[idx]
		}
		plan, err := Optimize(sub, total, alpha)
		if err != nil {
			return nil, 0, err
		}
		return plan, alpha*plan.Makespan + (1-alpha)*plan.DirtyEnergy, nil
	}

	// Greedy growth from the best singleton.
	chosen := make([]int, 0, p)
	inSet := make([]bool, len(nodes))
	var bestPlan *Plan
	for len(chosen) < p {
		bestIdx := -1
		bestVal := 0.0
		var bestTrialPlan *Plan
		for i := range nodes {
			if inSet[i] {
				continue
			}
			trial := append(append([]int(nil), chosen...), i)
			plan, val, err := objective(trial)
			if err != nil {
				return nil, nil, err
			}
			if bestIdx < 0 || val < bestVal {
				bestIdx, bestVal, bestTrialPlan = i, val, plan
			}
		}
		if bestIdx < 0 {
			return nil, nil, errors.New("opt: node selection stalled")
		}
		chosen = append(chosen, bestIdx)
		inSet[bestIdx] = true
		bestPlan = bestTrialPlan
	}

	// Local search: try swapping each chosen node for each unchosen one.
	_, curVal, err := objective(chosen)
	if err != nil {
		return nil, nil, err
	}
	improved := true
	for rounds := 0; improved && rounds < 10; rounds++ {
		improved = false
		for ci := 0; ci < len(chosen); ci++ {
			for i := range nodes {
				if inSet[i] {
					continue
				}
				old := chosen[ci]
				chosen[ci] = i
				plan, val, err := objective(chosen)
				if err != nil {
					return nil, nil, err
				}
				if val < curVal-1e-12 {
					inSet[old] = false
					inSet[i] = true
					curVal = val
					bestPlan = plan
					improved = true
				} else {
					chosen[ci] = old
				}
			}
		}
	}
	// Canonical ascending order; re-solve so Plan aligns with it.
	sort.Ints(chosen)
	plan, _, err := objective(chosen)
	if err != nil {
		return nil, nil, err
	}
	bestPlan = plan
	return chosen, bestPlan, nil
}
