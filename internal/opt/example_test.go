package opt_test

import (
	"fmt"

	"pareto/internal/opt"
	"pareto/internal/sampling"
)

// Size partitions for a two-node cluster where node 0 is twice as fast
// but fully grid-powered, and node 1 is slower but fully solar-covered.
func ExampleOptimize() {
	nodes := []opt.NodeModel{
		{Time: sampling.LinearFit{Slope: 0.001}, DirtyRate: 400}, // fast, dirty
		{Time: sampling.LinearFit{Slope: 0.002}, DirtyRate: 0},   // slow, green
	}
	hetAware, err := opt.Optimize(nodes, 30000, 1.0)
	if err != nil {
		panic(err)
	}
	greenLeaning, err := opt.Optimize(nodes, 30000, 0.99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha=1.00: sizes=%v dirty=%.0f J\n", hetAware.Sizes, hetAware.DirtyEnergy)
	fmt.Printf("alpha=0.99: sizes=%v dirty=%.0f J\n", greenLeaning.Sizes, greenLeaning.DirtyEnergy)
	// Output:
	// alpha=1.00: sizes=[20000 10000] dirty=8000 J
	// alpha=0.99: sizes=[0 30000] dirty=0 J
}
