package opt

import (
	"errors"
	"reflect"
	"testing"
)

// Satellite coverage for the frontier ordering/truncation contract and
// Dominates edge cases.

func TestDominatesTies(t *testing.T) {
	// Within-tolerance differences are ties: equal in one objective and
	// strictly better in the other still dominates, but sub-tolerance
	// "improvements" in both never do.
	base := FrontierPoint{Makespan: 10, DirtyEnergy: 100}
	tieBetter := FrontierPoint{Makespan: 10, DirtyEnergy: 90}
	if !Dominates(tieBetter, base) {
		t.Error("equal makespan + strictly lower energy must dominate")
	}
	if Dominates(base, tieBetter) {
		t.Error("domination is antisymmetric")
	}
	// Differences below the 1e-9 tolerance in both objectives: the
	// points are indistinguishable, neither dominates.
	jitter := FrontierPoint{Makespan: 10 + 1e-12, DirtyEnergy: 100 - 1e-12}
	if Dominates(jitter, base) || Dominates(base, jitter) {
		t.Error("sub-tolerance jitter must not create domination")
	}
	// A tie in one objective plus a sub-tolerance edge in the other is
	// still a full tie.
	almostTie := FrontierPoint{Makespan: 10, DirtyEnergy: 100 - 1e-12}
	if Dominates(almostTie, base) {
		t.Error("sub-tolerance energy edge must not dominate")
	}
	// Just past the tolerance flips it.
	clearlyBetter := FrontierPoint{Makespan: 10, DirtyEnergy: 100 - 1e-6}
	if !Dominates(clearlyBetter, base) {
		t.Error("supra-tolerance improvement must dominate")
	}
}

func TestDominatesNonConvexProfile(t *testing.T) {
	// A synthetic non-convex profile (cf. the bi-objective
	// workload-distribution results in PAPERS.md): point m sits above
	// the segment joining its neighbors but is NOT dominated by either —
	// non-convexity alone is not domination, so a correct filter must
	// keep it. Point d, worse than m in both objectives, must go.
	a := FrontierPoint{Alpha: 0.0, Makespan: 30, DirtyEnergy: 10}
	m := FrontierPoint{Alpha: 0.5, Makespan: 22, DirtyEnergy: 28} // above segment a–b, still undominated
	b := FrontierPoint{Alpha: 1.0, Makespan: 10, DirtyEnergy: 40}
	d := FrontierPoint{Alpha: 0.6, Makespan: 23, DirtyEnergy: 29} // dominated by m
	for _, p := range []FrontierPoint{a, b} {
		if Dominates(p, m) {
			t.Errorf("non-convex knee wrongly dominated by %+v", p)
		}
	}
	if !Dominates(m, d) {
		t.Error("m must dominate d (better in both objectives)")
	}
	if Dominates(d, a) || Dominates(d, b) {
		t.Error("dominated point cannot dominate the extremes")
	}
}

func TestCanonicalizeFrontier(t *testing.T) {
	p1 := FrontierPoint{Alpha: 0.9, Makespan: 5, DirtyEnergy: 50}
	p2 := FrontierPoint{Alpha: 0.1, Makespan: 20, DirtyEnergy: 10}
	dup := FrontierPoint{Alpha: 0.5, Makespan: 20, DirtyEnergy: 10} // same objectives as p2
	got := CanonicalizeFrontier([]FrontierPoint{p1, dup, p2}, 1e-9)
	if len(got) != 2 {
		t.Fatalf("got %d points, want 2 (adjacent duplicate dropped): %+v", len(got), got)
	}
	if got[0].Alpha != 0.1 || got[1].Alpha != 0.9 {
		t.Errorf("not ascending with lowest-α representative kept: %+v", got)
	}
	// Input must not be mutated (callers hand over shared slices).
	in := []FrontierPoint{p1, p2}
	_ = CanonicalizeFrontier(in, 1e-9)
	if in[0].Alpha != 0.9 {
		t.Error("CanonicalizeFrontier mutated its input")
	}
}

func TestFrontierOrderIndependent(t *testing.T) {
	// The canonical ordering contract: the same α set in any input
	// order yields deep-equal output.
	nodes := paperNodes()
	desc := DefaultAlphaSweep()
	asc := make([]float64, len(desc))
	for i, a := range desc {
		asc[len(desc)-1-i] = a
	}
	fromDesc, err := Frontier(nodes, 150000, desc)
	if err != nil {
		t.Fatal(err)
	}
	fromAsc, err := Frontier(nodes, 150000, asc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromDesc, fromAsc) {
		t.Error("Frontier output depends on input α order")
	}
	for i := 1; i < len(fromDesc); i++ {
		if fromDesc[i].Alpha <= fromDesc[i-1].Alpha {
			t.Fatalf("not ascending at %d", i)
		}
	}
}

func TestExactFrontierSurfacesTruncation(t *testing.T) {
	// With the production depth budget the 1e-9 α-width floor converges
	// first and truncation is unreachable; shrink the budget to prove
	// exhaustion is reported rather than swallowed.
	saved := bisectMaxDepth
	bisectMaxDepth = 0
	defer func() { bisectMaxDepth = saved }()
	nodes := paperNodes()
	pts, err := ExactFrontier(nodes, 200000, 1e-6)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(pts) < 2 {
		t.Errorf("truncated frontier must still return the points found, got %d", len(pts))
	}
}

func TestExactFrontierNotTruncatedAtDefaultDepth(t *testing.T) {
	nodes := paperNodes()
	if _, err := ExactFrontier(nodes, 200000, 1e-6); err != nil {
		t.Fatalf("default-depth bisection must converge without truncation: %v", err)
	}
}

func TestSizingLPMatchesOptimize(t *testing.T) {
	// The exported LP builder + objective must reproduce Optimize
	// bit-for-bit — the contract internal/frontier's warm sweep is
	// built on.
	nodes := paperNodes()
	total := 100000
	for _, alpha := range DefaultAlphaSweep() {
		prob, err := SizingLP(nodes, total, alpha, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := prob.Solve()
		if err != nil {
			t.Fatalf("α=%v: %v", alpha, err)
		}
		plan := PlanFromX(nodes, total, alpha, UnitsFromShares(sol.X[:len(nodes)], total))
		want, err := Optimize(nodes, total, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plan, want) {
			t.Errorf("α=%v: SizingLP path diverges from Optimize:\n%+v\n%+v", alpha, plan, want)
		}
	}
}
