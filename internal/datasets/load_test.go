package datasets

import (
	"strings"
	"testing"

	"pareto/internal/pivots"
)

func TestLoadEdgeList(t *testing.T) {
	in := `# SNAP-style comment
% LAW-style comment
0 1
0 2
1 2
2 0
0 1
3	1
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("%d vertices", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("%d edges (duplicate must collapse)", g.NumEdges())
	}
	if len(g.Adj[0]) != 2 || g.Adj[0][0] != 1 || g.Adj[0][1] != 2 {
		t.Errorf("adj[0] = %v", g.Adj[0])
	}
	if _, err := pivots.NewGraphCorpus(g); err != nil {
		t.Errorf("loaded graph unusable: %v", err)
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",             // missing target
		"a b\n",           // non-numeric
		"0 -1\n",          // negative
		"0 99999999999\n", // overflow guard
	}
	for i, c := range cases {
		if _, err := LoadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("case %d (%q) accepted", i, c)
		}
	}
	g, err := LoadEdgeList(strings.NewReader("# only comments\n"))
	if err != nil || g.NumVertices() != 0 {
		t.Errorf("empty input: %v, %v", g, err)
	}
}

func TestLoadTransactions(t *testing.T) {
	in := `1 5 3
# comment
7 7 2

5
`
	docs, vocab, err := LoadTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("%d docs", len(docs))
	}
	if vocab != 8 {
		t.Errorf("vocab %d, want 8", vocab)
	}
	// Sorted and deduplicated.
	if len(docs[0].Terms) != 3 || docs[0].Terms[0] != 1 || docs[0].Terms[2] != 5 {
		t.Errorf("doc0 %v", docs[0].Terms)
	}
	if len(docs[1].Terms) != 2 {
		t.Errorf("doc1 %v (7 7 2 must dedup)", docs[1].Terms)
	}
	if _, err := pivots.NewTextCorpus(docs, vocab); err != nil {
		t.Errorf("loaded corpus unusable: %v", err)
	}
}

func TestLoadTransactionsErrors(t *testing.T) {
	if _, _, err := LoadTransactions(strings.NewReader("1 x\n")); err == nil {
		t.Error("non-numeric item accepted")
	}
	if _, _, err := LoadTransactions(strings.NewReader("-3\n")); err == nil {
		t.Error("negative item accepted")
	}
	docs, vocab, err := LoadTransactions(strings.NewReader(""))
	if err != nil || len(docs) != 0 || vocab != 1 {
		t.Errorf("empty input: %d docs vocab %d, %v", len(docs), vocab, err)
	}
}
