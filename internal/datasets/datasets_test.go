package datasets

import (
	"math"
	"reflect"
	"testing"

	"pareto/internal/pivots"
	"pareto/internal/sketch"
	"pareto/internal/strata"
)

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(5, 1.0)
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Error("weights must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum %v", sum)
	}
	u := zipfWeights(4, 0)
	for _, v := range u {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("skew 0 not uniform: %v", u)
		}
	}
}

func TestGenerateTreesShape(t *testing.T) {
	cfg := SwissProtLike(0.01) // ~595 trees
	trees, truth, err := GenerateTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != cfg.NumTrees || len(truth) != cfg.NumTrees {
		t.Fatalf("%d trees, want %d", len(trees), cfg.NumTrees)
	}
	totalNodes := 0
	for i := range trees {
		if err := trees[i].Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", i, err)
		}
		totalNodes += trees[i].NumNodes()
		if truth[i] < 0 || truth[i] >= cfg.NumGroups {
			t.Fatalf("tree %d group %d out of range", i, truth[i])
		}
	}
	meanNodes := float64(totalNodes) / float64(len(trees))
	if meanNodes < float64(cfg.MeanNodes)*0.7 || meanNodes > float64(cfg.MeanNodes)*1.3 {
		t.Errorf("mean nodes %.1f, want ≈%d", meanNodes, cfg.MeanNodes)
	}
}

func TestGenerateTreesDeterministic(t *testing.T) {
	cfg := TreebankLike(0.005)
	a, ta, err := GenerateTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, tb, err := GenerateTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ta, tb) || !reflect.DeepEqual(a[0], b[0]) || !reflect.DeepEqual(a[len(a)-1], b[len(b)-1]) {
		t.Error("generator not deterministic")
	}
}

func TestTreeGroupsAreSeparable(t *testing.T) {
	// Same-group trees must share far more pivots than cross-group
	// trees — otherwise stratification has nothing to find.
	cfg := SwissProtLike(0.005)
	trees, truth, err := GenerateTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTreeCorpus(trees)
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var ni, nx int
	for i := 0; i < corpus.Len() && ni+nx < 4000; i++ {
		for j := i + 1; j < corpus.Len() && j < i+20; j++ {
			sim := sketch.ExactJaccard(corpus.ItemSet(i), corpus.ItemSet(j))
			if truth[i] == truth[j] {
				intra += sim
				ni++
			} else {
				inter += sim
				nx++
			}
		}
	}
	if ni == 0 || nx == 0 {
		t.Fatal("sampling found no pairs")
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if intra < 2*inter {
		t.Errorf("intra-group Jaccard %.4f not well above inter %.4f", intra, inter)
	}
}

func TestGenerateTreesValidation(t *testing.T) {
	bad := TreeConfig{}
	if _, _, err := GenerateTrees(bad); err == nil {
		t.Error("zero config accepted")
	}
	c := SwissProtLike(0.001)
	c.Branchiness = 2
	if _, _, err := GenerateTrees(c); err == nil {
		t.Error("branchiness > 1 accepted")
	}
}

func TestGenerateGraphShape(t *testing.T) {
	cfg := UKLike(0.0005) // ~5.5k vertices
	g, hosts, err := GenerateGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != cfg.NumVertices {
		t.Fatalf("%d vertices, want %d", g.NumVertices(), cfg.NumVertices)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	meanDeg := float64(g.NumEdges()) / float64(g.NumVertices())
	if meanDeg < float64(cfg.MeanDegree)*0.6 || meanDeg > float64(cfg.MeanDegree)*1.4 {
		t.Errorf("mean degree %.1f, want ≈%d", meanDeg, cfg.MeanDegree)
	}
	// Hosts are contiguous ID ranges.
	for v := 1; v < len(hosts); v++ {
		if hosts[v] < hosts[v-1] {
			t.Fatal("host IDs not monotone over vertex IDs")
		}
	}
}

func TestGraphLocality(t *testing.T) {
	cfg := UKLike(0.0005)
	g, hosts, err := GenerateGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameHost, total := 0, 0
	for v, nbrs := range g.Adj {
		for _, u := range nbrs {
			total++
			if hosts[v] == hosts[u] {
				sameHost++
			}
		}
	}
	frac := float64(sameHost) / float64(total)
	if frac < 0.6 {
		t.Errorf("same-host edge fraction %.2f, want ≥ 0.6 (web locality)", frac)
	}
}

func TestGenerateGraphValidation(t *testing.T) {
	if _, _, err := GenerateGraph(GraphConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	c := UKLike(0.001)
	c.CopyProb = 1
	if _, _, err := GenerateGraph(c); err == nil {
		t.Error("copy prob 1 accepted")
	}
}

func TestGenerateTextShape(t *testing.T) {
	cfg := RCV1Like(0.0005) // ~400 docs
	docs, truth, err := GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != cfg.NumDocs {
		t.Fatalf("%d docs", len(docs))
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatalf("generated corpus invalid: %v", err)
	}
	_ = corpus
	for i, tr := range truth {
		if tr < 0 || tr >= cfg.NumTopics {
			t.Fatalf("doc %d topic %d", i, tr)
		}
	}
}

func TestTextTopicsStratify(t *testing.T) {
	// End-to-end: the stratifier must recover the planted topics with
	// decent purity — this is the property the whole pipeline needs.
	cfg := RCV1Like(0.0008)
	cfg.NumTopics = 4
	docs, truth, err := GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	s, err := strata.Stratify(corpus, strata.StratifierConfig{
		SketchWidth: 48,
		Cluster:     strata.Config{K: 4, L: 3, Seed: 11},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, members := range s.Members {
		if len(members) == 0 {
			continue
		}
		counts := map[int]int{}
		for _, i := range members {
			counts[truth[i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		correct += best
		total += len(members)
	}
	purity := float64(correct) / float64(total)
	if purity < 0.7 {
		t.Errorf("stratification purity %.2f on planted topics", purity)
	}
}

func TestGenerateTextValidation(t *testing.T) {
	if _, _, err := GenerateText(TextConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	c := RCV1Like(0.001)
	c.TopicPurity = 1.5
	if _, _, err := GenerateText(c); err == nil {
		t.Error("purity > 1 accepted")
	}
}

func TestStatsSummaries(t *testing.T) {
	trees, _, err := GenerateTrees(SwissProtLike(0.001))
	if err != nil {
		t.Fatal(err)
	}
	ts := TreeStats("swissprot", trees)
	if ts.Records != len(trees) || ts.Units <= 0 || ts.Kind != pivots.TreeData {
		t.Errorf("tree stats %+v", ts)
	}
	g, _, err := GenerateGraph(UKLike(0.0002))
	if err != nil {
		t.Fatal(err)
	}
	gs := GraphStats("uk", g)
	if gs.Records != g.NumVertices() || gs.Units != g.NumEdges() {
		t.Errorf("graph stats %+v", gs)
	}
	docs, _, err := GenerateText(RCV1Like(0.0003))
	if err != nil {
		t.Fatal(err)
	}
	xs := TextStats("rcv1", docs, 1000)
	if xs.Records != len(docs) || xs.VocabOrN != 1000 {
		t.Errorf("text stats %+v", xs)
	}
}

func TestScaleFloors(t *testing.T) {
	// Tiny scales must still produce usable datasets.
	if cfg := SwissProtLike(1e-9); cfg.NumTrees < 10 {
		t.Error("tree floor broken")
	}
	if cfg := UKLike(1e-9); cfg.NumVertices < 100 {
		t.Error("graph floor broken")
	}
	if cfg := RCV1Like(1e-9); cfg.NumDocs < 20 || cfg.VocabSize < 500 {
		t.Error("text floor broken")
	}
}
