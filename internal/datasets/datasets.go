// Package datasets generates the synthetic stand-ins for the paper's
// five evaluation datasets (Table I): SwissProt and Treebank (trees),
// UK and Arabic (webgraphs), and RCV1 (text).
//
// The real datasets are not redistributable at the scale the paper
// used, and the partitioning framework is sensitive to exactly one of
// their properties: *latent content groups of skewed sizes* (protein
// families, grammar productions, web hosts, news topics). Every
// generator here plants controllable groups — records in a group share
// vocabulary/structure and records across groups do not — with
// Zipf-skewed group sizes, at any scale, deterministically per seed.
// Each *Like constructor reproduces the corresponding Table I row's
// shape at a configurable scale factor.
package datasets

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pareto/internal/pivots"
)

// zipfWeights returns k weights ∝ 1/(i+1)^s, normalized.
func zipfWeights(k int, s float64) []float64 {
	w := make([]float64, k)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleIndex draws an index from the weight distribution.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// ---------------------------------------------------------------------------
// Trees
// ---------------------------------------------------------------------------

// TreeConfig parameterizes the clustered labeled-tree generator.
type TreeConfig struct {
	// NumTrees is the record count.
	NumTrees int
	// MeanNodes is the expected nodes per tree (min 1).
	MeanNodes int
	// NumGroups is the number of latent strata.
	NumGroups int
	// GroupVocab is the number of labels private to each group.
	GroupVocab int
	// SharedVocab is the number of labels common to all groups.
	SharedVocab int
	// GroupSkew is the Zipf exponent of group sizes (0 = uniform).
	GroupSkew float64
	// Branchiness in (0,1]: probability a new node attaches to a
	// random earlier node rather than the previous one. Low values
	// give chains; high values give bushy trees.
	Branchiness float64
	// Seed drives the generator.
	Seed int64
}

// Validate checks generator parameters.
func (c TreeConfig) Validate() error {
	if c.NumTrees < 1 || c.MeanNodes < 1 || c.NumGroups < 1 || c.GroupVocab < 1 {
		return fmt.Errorf("datasets: invalid tree config %+v", c)
	}
	if c.Branchiness < 0 || c.Branchiness > 1 {
		return fmt.Errorf("datasets: branchiness %v out of [0,1]", c.Branchiness)
	}
	return nil
}

// SwissProtLike mirrors Table I's SwissProt row (59,545 trees,
// ~50 nodes each) at the given scale ∈ (0, 1]: protein-family-like
// groups with moderately bushy trees.
func SwissProtLike(scale float64) TreeConfig {
	n := int(59545 * scale)
	if n < 10 {
		n = 10
	}
	return TreeConfig{
		NumTrees: n, MeanNodes: 50, NumGroups: 12,
		GroupVocab: 40, SharedVocab: 20, GroupSkew: 0.8,
		Branchiness: 0.6, Seed: 59545,
	}
}

// TreebankLike mirrors Table I's Treebank row (56,479 trees, ~43
// nodes): deeper, chain-ier parse-tree shapes and more groups.
func TreebankLike(scale float64) TreeConfig {
	n := int(56479 * scale)
	if n < 10 {
		n = 10
	}
	return TreeConfig{
		NumTrees: n, MeanNodes: 43, NumGroups: 18,
		GroupVocab: 30, SharedVocab: 15, GroupSkew: 1.1,
		Branchiness: 0.35, Seed: 56479,
	}
}

// GenerateTrees builds the tree corpus and returns the trees plus each
// tree's latent group (ground truth for stratification quality tests).
func GenerateTrees(cfg TreeConfig) ([]pivots.Tree, []int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	groupW := zipfWeights(cfg.NumGroups, cfg.GroupSkew)
	labelW := zipfWeights(cfg.GroupVocab+cfg.SharedVocab, 1.0)
	trees := make([]pivots.Tree, cfg.NumTrees)
	truth := make([]int, cfg.NumTrees)
	for i := range trees {
		g := sampleIndex(rng, groupW)
		truth[i] = g
		n := 1 + rng.Intn(2*cfg.MeanNodes-1) // uniform 1..2·mean−1, mean ≈ MeanNodes
		parent := make([]int32, n)
		label := make([]uint32, n)
		parent[0] = -1
		label[0] = groupLabel(rng, g, cfg, labelW)
		for v := 1; v < n; v++ {
			if rng.Float64() < cfg.Branchiness {
				parent[v] = int32(rng.Intn(v))
			} else {
				parent[v] = int32(v - 1)
			}
			label[v] = groupLabel(rng, g, cfg, labelW)
		}
		trees[i] = pivots.Tree{Parent: parent, Label: label}
	}
	return trees, truth, nil
}

// groupLabel draws a label: group-private band with high probability,
// shared band otherwise. Label IDs: group g owns
// [g·GroupVocab, (g+1)·GroupVocab); shared band sits after all groups.
func groupLabel(rng *rand.Rand, g int, cfg TreeConfig, labelW []float64) uint32 {
	li := sampleIndex(rng, labelW)
	if li < cfg.GroupVocab {
		return uint32(g*cfg.GroupVocab + li)
	}
	return uint32(cfg.NumGroups*cfg.GroupVocab + (li - cfg.GroupVocab))
}

// ---------------------------------------------------------------------------
// Graphs
// ---------------------------------------------------------------------------

// GraphConfig parameterizes the webgraph generator.
type GraphConfig struct {
	// NumVertices is the vertex count.
	NumVertices int
	// MeanDegree is the expected out-degree.
	MeanDegree int
	// NumHosts is the number of host groups (latent strata). Vertex
	// IDs are contiguous within a host, as in real URL-ordered
	// webgraphs — the property reference compression exploits.
	NumHosts int
	// Locality in [0,1] is the fraction of edges pointing within the
	// host neighborhood.
	Locality float64
	// CopyProb in [0,1) is the probability a vertex copies part of an
	// earlier same-host vertex's adjacency list (webgraph similarity).
	CopyProb float64
	// Seed drives the generator.
	Seed int64
}

// Validate checks generator parameters.
func (c GraphConfig) Validate() error {
	if c.NumVertices < 2 || c.MeanDegree < 1 || c.NumHosts < 1 {
		return fmt.Errorf("datasets: invalid graph config %+v", c)
	}
	if c.Locality < 0 || c.Locality > 1 || c.CopyProb < 0 || c.CopyProb >= 1 {
		return fmt.Errorf("datasets: invalid locality/copy in %+v", c)
	}
	return nil
}

// UKLike mirrors Table I's UK webgraph row (11.1M vertices, mean
// degree ≈ 26) at the given scale.
func UKLike(scale float64) GraphConfig {
	n := int(11081977 * scale)
	if n < 100 {
		n = 100
	}
	return GraphConfig{
		NumVertices: n, MeanDegree: 26, NumHosts: 40,
		Locality: 0.85, CopyProb: 0.5, Seed: 287005814,
	}
}

// ArabicLike mirrors Table I's Arabic row (16.0M vertices, mean degree
// ≈ 40): denser and slightly less local.
func ArabicLike(scale float64) GraphConfig {
	n := int(15957985 * scale)
	if n < 100 {
		n = 100
	}
	return GraphConfig{
		NumVertices: n, MeanDegree: 40, NumHosts: 48,
		Locality: 0.8, CopyProb: 0.45, Seed: 633195804,
	}
}

// GenerateGraph builds the webgraph and returns it plus each vertex's
// host (latent stratum).
func GenerateGraph(cfg GraphConfig) (*pivots.Graph, []int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumVertices
	hostOf := make([]int, n)
	hostStart := make([]int, cfg.NumHosts+1)
	// Zipf-skewed host sizes over contiguous ID ranges.
	hw := zipfWeights(cfg.NumHosts, 0.7)
	acc := 0
	for h := 0; h < cfg.NumHosts; h++ {
		hostStart[h] = acc
		size := int(hw[h] * float64(n))
		if size < 1 {
			size = 1
		}
		acc += size
		if acc > n {
			acc = n
		}
	}
	hostStart[cfg.NumHosts] = n
	for h := 0; h < cfg.NumHosts; h++ {
		end := hostStart[h+1]
		if h == cfg.NumHosts-1 {
			end = n
		}
		for v := hostStart[h]; v < end && v < n; v++ {
			hostOf[v] = h
		}
	}
	adj := make([][]uint32, n)
	for v := 0; v < n; v++ {
		h := hostOf[v]
		lo, hi := hostStart[h], hostStart[h+1]
		if hi <= lo {
			hi = lo + 1
		}
		deg := 1 + rng.Intn(2*cfg.MeanDegree-1)
		set := make(map[uint32]struct{}, deg)
		// Copy a prefix of an earlier same-host vertex's list.
		if v > lo && rng.Float64() < cfg.CopyProb {
			src := lo + rng.Intn(v-lo)
			for _, u := range adj[src] {
				if len(set) >= deg/2 {
					break
				}
				if int(u) != v {
					set[u] = struct{}{}
				}
			}
		}
		for len(set) < deg {
			var u int
			if rng.Float64() < cfg.Locality {
				// Near-window link within the host (web locality).
				span := hi - lo
				width := span/8 + 1
				u = v - width/2 + rng.Intn(width+1)
				if u < lo {
					u = lo + rng.Intn(span)
				}
				if u >= hi {
					u = lo + rng.Intn(span)
				}
			} else {
				u = rng.Intn(n)
			}
			if u != v && u >= 0 && u < n {
				set[uint32(u)] = struct{}{}
			}
		}
		list := make([]uint32, 0, len(set))
		for u := range set {
			list = append(list, u)
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		adj[v] = list
	}
	g := &pivots.Graph{Adj: adj}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("datasets: generated invalid graph: %w", err)
	}
	return g, hostOf, nil
}

// ---------------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------------

// TextConfig parameterizes the topic-mixture corpus generator.
type TextConfig struct {
	// NumDocs is the document count.
	NumDocs int
	// VocabSize is the total vocabulary.
	VocabSize int
	// NumTopics is the number of latent strata.
	NumTopics int
	// MeanDocTerms is the expected distinct terms per document.
	MeanDocTerms int
	// TopicPurity in [0,1] is the fraction of a document's terms drawn
	// from its own topic band (the rest are corpus-wide).
	TopicPurity float64
	// TopicSkew is the Zipf exponent of topic sizes.
	TopicSkew float64
	// Seed drives the generator.
	Seed int64
}

// Validate checks generator parameters.
func (c TextConfig) Validate() error {
	if c.NumDocs < 1 || c.VocabSize < c.NumTopics || c.NumTopics < 1 || c.MeanDocTerms < 1 {
		return fmt.Errorf("datasets: invalid text config %+v", c)
	}
	if c.TopicPurity < 0 || c.TopicPurity > 1 {
		return fmt.Errorf("datasets: topic purity %v", c.TopicPurity)
	}
	return nil
}

// RCV1Like mirrors Table I's RCV1 row (804,414 docs, 47,236-term
// vocabulary) at the given scale.
func RCV1Like(scale float64) TextConfig {
	n := int(804414 * scale)
	if n < 20 {
		n = 20
	}
	vocab := int(47236 * math.Sqrt(scale))
	if vocab < 500 {
		vocab = 500
	}
	return TextConfig{
		NumDocs: n, VocabSize: vocab, NumTopics: 10,
		MeanDocTerms: 60, TopicPurity: 0.75, TopicSkew: 0.9,
		Seed: 804414,
	}
}

// GenerateText builds the corpus documents plus each document's topic.
func GenerateText(cfg TextConfig) ([]pivots.Doc, []int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topicW := zipfWeights(cfg.NumTopics, cfg.TopicSkew)
	band := cfg.VocabSize / cfg.NumTopics
	// Zipf within a band: popular topical words dominate, mirroring
	// natural term frequencies.
	bandW := zipfWeights(band, 1.05)
	docs := make([]pivots.Doc, cfg.NumDocs)
	truth := make([]int, cfg.NumDocs)
	for i := range docs {
		topic := sampleIndex(rng, topicW)
		truth[i] = topic
		nTerms := 1 + rng.Intn(2*cfg.MeanDocTerms-1)
		set := make(map[uint32]struct{}, nTerms)
		for len(set) < nTerms {
			var term int
			if rng.Float64() < cfg.TopicPurity {
				term = topic*band + sampleIndex(rng, bandW)
			} else {
				term = rng.Intn(cfg.VocabSize)
			}
			set[uint32(term)] = struct{}{}
		}
		terms := make([]uint32, 0, len(set))
		for t := range set {
			terms = append(terms, t)
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
		docs[i] = pivots.Doc{Terms: terms}
	}
	return docs, truth, nil
}

// ---------------------------------------------------------------------------
// Table I summary
// ---------------------------------------------------------------------------

// Stats describes a generated dataset in Table I's terms.
type Stats struct {
	Name     string
	Kind     pivots.Kind
	Records  int
	Units    int // nodes (trees), edges (graphs), distinct terms (text)
	VocabOrN int // vocab size (text), vertices (graph), 0 (trees)
}

// TreeStats summarizes a tree corpus.
func TreeStats(name string, trees []pivots.Tree) Stats {
	nodes := 0
	for i := range trees {
		nodes += len(trees[i].Parent)
	}
	return Stats{Name: name, Kind: pivots.TreeData, Records: len(trees), Units: nodes}
}

// GraphStats summarizes a webgraph.
func GraphStats(name string, g *pivots.Graph) Stats {
	return Stats{Name: name, Kind: pivots.GraphData, Records: g.NumVertices(),
		Units: g.NumEdges(), VocabOrN: g.NumVertices()}
}

// TextStats summarizes a text corpus.
func TextStats(name string, docs []pivots.Doc, vocab int) Stats {
	terms := 0
	for i := range docs {
		terms += len(docs[i].Terms)
	}
	return Stats{Name: name, Kind: pivots.TextData, Records: len(docs), Units: terms, VocabOrN: vocab}
}

// ErrScale guards against nonsensical scale factors in helpers that
// accept one.
var ErrScale = errors.New("datasets: scale must be in (0, 1]")
