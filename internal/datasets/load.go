package datasets

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pareto/internal/pivots"
)

// Loaders for common public-dataset formats, so the framework can run
// on the paper's real datasets when the user has them: SNAP/LAW-style
// edge lists for webgraphs and the usual one-transaction-per-line
// format for market-basket / bag-of-words corpora.

// LoadEdgeList parses a whitespace-separated directed edge list
// ("src dst" per line; '#' and '%' lines are comments — SNAP and LAW
// conventions). Vertex IDs must be nonnegative; the graph is sized to
// the largest ID. Duplicate edges collapse; adjacency lists come out
// strictly increasing as the corpus requires.
func LoadEdgeList(r io.Reader) (*pivots.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type edge struct{ s, d uint32 }
	var edges []edge
	maxV := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("datasets: edge list line %d: %q", lineNo, line)
		}
		s, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || s < 0 {
			return nil, fmt.Errorf("datasets: edge list line %d: bad source %q", lineNo, fields[0])
		}
		d, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("datasets: edge list line %d: bad target %q", lineNo, fields[1])
		}
		if s > 1<<31 || d > 1<<31 {
			return nil, fmt.Errorf("datasets: edge list line %d: vertex id too large", lineNo)
		}
		if s > maxV {
			maxV = s
		}
		if d > maxV {
			maxV = d
		}
		edges = append(edges, edge{uint32(s), uint32(d)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datasets: reading edge list: %w", err)
	}
	if maxV < 0 {
		return &pivots.Graph{}, nil
	}
	adj := make([][]uint32, maxV+1)
	for _, e := range edges {
		adj[e.s] = append(adj[e.s], e.d)
	}
	for v := range adj {
		sort.Slice(adj[v], func(a, b int) bool { return adj[v][a] < adj[v][b] })
		// Dedup in place.
		out := adj[v][:0]
		for i, u := range adj[v] {
			if i == 0 || adj[v][i-1] != u {
				out = append(out, u)
			}
		}
		adj[v] = out
	}
	g := &pivots.Graph{Adj: adj}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadTransactions parses a transaction-per-line corpus: each line is
// a whitespace-separated list of nonnegative item IDs (the standard
// FIMI / market-basket layout, also usable for bag-of-words corpora).
// Items are deduplicated and sorted per line; the vocabulary size is
// the largest item + 1.
func LoadTransactions(r io.Reader) ([]pivots.Doc, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var docs []pivots.Doc
	maxItem := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		seen := make(map[uint32]struct{}, len(fields))
		terms := make([]uint32, 0, len(fields))
		for _, f := range fields {
			it, err := strconv.ParseInt(f, 10, 64)
			if err != nil || it < 0 {
				return nil, 0, fmt.Errorf("datasets: transactions line %d: bad item %q", lineNo, f)
			}
			if it > 1<<31 {
				return nil, 0, fmt.Errorf("datasets: transactions line %d: item too large", lineNo)
			}
			if it > maxItem {
				maxItem = it
			}
			u := uint32(it)
			if _, dup := seen[u]; !dup {
				seen[u] = struct{}{}
				terms = append(terms, u)
			}
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
		docs = append(docs, pivots.Doc{Terms: terms})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("datasets: reading transactions: %w", err)
	}
	if maxItem < 0 {
		maxItem = 0
	}
	return docs, int(maxItem) + 1, nil
}
