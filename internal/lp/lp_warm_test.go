package lp

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// paperObj is paperLP's α-scalarized objective, reproduced exactly so
// warm re-solves see bit-identical coefficients to a cold build.
func paperObj(p int, alpha float64) []float64 {
	obj := make([]float64, p+1)
	obj[p] = alpha
	for j := 0; j < p; j++ {
		obj[j] = (1 - alpha) * 0.002 * float64(j%4+1)
	}
	return obj
}

// alphaLadder mirrors the frontier sweep's sampling density.
var alphaLadder = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9995, 0.9999, 1}

func TestReSolveBitIdenticalToCold(t *testing.T) {
	// The warm-start contract the frontier package is built on: a chain
	// of ReSolve calls under changing α must produce bit-identical X to
	// independent cold solves. Solution extraction re-solves the basis
	// system from the original constraint rows in a deterministic order,
	// so this holds whenever warm and cold reach the same optimal basis.
	for _, p := range []int{4, 16, 64} {
		t.Run("P"+strconv.Itoa(p), func(t *testing.T) {
			warm := paperLP(p, alphaLadder[0], 1e6).NewSolver()
			if _, err := warm.Solve(); err != nil {
				t.Fatal(err)
			}
			for _, alpha := range alphaLadder {
				ws, err := warm.ReSolve(paperObj(p, alpha))
				if err != nil {
					t.Fatalf("α=%v: ReSolve: %v", alpha, err)
				}
				cs, err := paperLP(p, alpha, 1e6).Solve()
				if err != nil {
					t.Fatalf("α=%v: cold Solve: %v", alpha, err)
				}
				for i := range cs.X {
					if ws.X[i] != cs.X[i] {
						t.Fatalf("α=%v: X[%d] warm %v != cold %v (not bit-identical)",
							alpha, i, ws.X[i], cs.X[i])
					}
				}
				if ws.Objective != cs.Objective {
					t.Fatalf("α=%v: objective warm %v != cold %v", alpha, ws.Objective, cs.Objective)
				}
			}
		})
	}
}

func TestReSolveIsWarmAndCheap(t *testing.T) {
	// Between adjacent α values a re-solve should cost far fewer pivots
	// than a cold two-phase run — that is the entire point of keeping
	// the basis.
	p := 64
	s := paperLP(p, 0.999, 1e6).NewSolver()
	cold, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warm {
		t.Error("cold Solve reported Warm=true")
	}
	if cold.Iterations <= 0 {
		t.Error("cold Solve reported zero pivots on a nontrivial LP")
	}
	totalWarm := 0
	for _, alpha := range []float64{0.995, 0.99, 0.95, 0.9} {
		ws, err := s.ReSolve(paperObj(p, alpha))
		if err != nil {
			t.Fatal(err)
		}
		if !ws.Warm {
			t.Errorf("α=%v: ReSolve reported Warm=false", alpha)
		}
		totalWarm += ws.Iterations
	}
	if totalWarm >= cold.Iterations {
		t.Errorf("4 warm re-solves took %d pivots, cold solve alone took %d — warm start is not paying off",
			totalWarm, cold.Iterations)
	}
}

func TestReSolveWithoutSolveFallsBackCold(t *testing.T) {
	p := paperLP(8, 0.5, 1e5)
	s := p.NewSolver()
	sol, err := s.ReSolve(paperObj(8, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Warm {
		t.Error("ReSolve before any Solve must report Warm=false (cold fallback)")
	}
	want, err := paperLP(8, 0.9, 1e5).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != want.Objective {
		t.Errorf("fallback objective %v, want %v", sol.Objective, want.Objective)
	}
	// The fallback must not clobber the problem's own objective.
	again, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := paperLP(8, 0.5, 1e5).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if again.Objective != ref.Objective {
		t.Errorf("Problem objective mutated by ReSolve fallback: %v != %v", again.Objective, ref.Objective)
	}
}

func TestReSolveWrongWidth(t *testing.T) {
	s := paperLP(8, 0.5, 1e5).NewSolver()
	if _, err := s.ReSolve(make([]float64, 3)); err == nil {
		t.Error("wrong-width objective accepted")
	}
}

func TestReSolveSurvivesUnboundedObjective(t *testing.T) {
	// An unbounded re-objective must fail cleanly and leave the basis
	// usable for subsequent bounded re-solves.
	p := mustProblem(t, []float64{1, 1})
	addCon(t, p, []float64{1, 0}, LE, 4)
	addCon(t, p, []float64{1, 1}, GE, 1)
	s := p.NewSolver()
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReSolve([]float64{0, -1}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	sol, err := s.ReSolve([]float64{-1, 1})
	if err != nil {
		t.Fatalf("ReSolve after unbounded: %v", err)
	}
	if !sol.Warm {
		t.Error("basis lost after unbounded re-solve")
	}
	if !approx(sol.X[0], 4, 1e-9) || !approx(sol.X[1], 0, 1e-9) {
		t.Errorf("got %v, want [4 0]", sol.X)
	}
}

func TestReSolveRandomObjectives(t *testing.T) {
	// Random bounded LPs, random objective sequence: every warm re-solve
	// must match a cold solve's optimal value exactly on value and
	// bit-identically on X when the bases coincide.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		base := make([]float64, n)
		for i := range base {
			base[i] = math.Round(rng.Float64()*10-5) / 2
		}
		p := mustProblem(t, base)
		nc := 2 + rng.Intn(3)
		for c := 0; c < nc; c++ {
			coeffs := make([]float64, n)
			for i := range coeffs {
				coeffs[i] = math.Round(rng.Float64()*8) / 2
			}
			addCon(t, p, coeffs, LE, math.Round(rng.Float64()*30)+1)
		}
		for i := 0; i < n; i++ {
			coeffs := make([]float64, n)
			coeffs[i] = 1
			addCon(t, p, coeffs, LE, 40)
		}
		s := p.NewSolver()
		if _, err := s.Solve(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := 0; k < 5; k++ {
			obj := make([]float64, n)
			for i := range obj {
				obj[i] = math.Round(rng.Float64()*10-4) / 2
			}
			ws, err := s.ReSolve(obj)
			if err != nil {
				t.Fatalf("trial %d obj %d: ReSolve: %v", trial, k, err)
			}
			cp := mustProblem(t, obj)
			for _, c := range p.cons {
				addCon(t, cp, c.coeffs, c.op, c.rhs)
			}
			cs, err := cp.Solve()
			if err != nil {
				t.Fatalf("trial %d obj %d: cold: %v", trial, k, err)
			}
			if !approx(ws.Objective, cs.Objective, 1e-7) {
				t.Errorf("trial %d obj %d: warm %v cold %v", trial, k, ws.Objective, cs.Objective)
			}
		}
	}
}

func TestSolverReuseAfterNewConstraint(t *testing.T) {
	// A cold Solve on the same Solver rebuilds from the Problem's
	// current constraint set.
	p := mustProblem(t, []float64{-1})
	addCon(t, p, []float64{1}, LE, 10)
	s := p.NewSolver()
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 10, 1e-9) {
		t.Fatalf("x = %v, want 10", sol.X[0])
	}
	addCon(t, p, []float64{1}, LE, 4)
	// NOTE: constraint-set changes require a cold Solve; a fresh solver
	// picks them up.
	sol2, err := p.NewSolver().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol2.X[0], 4, 1e-9) {
		t.Fatalf("x after new constraint = %v, want 4", sol2.X[0])
	}
}

func TestSolverBasisAccessor(t *testing.T) {
	s := paperLP(4, 0.9, 1e4).NewSolver()
	if s.Basis() != nil {
		t.Error("Basis before Solve must be nil")
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	b := s.Basis()
	if len(b) != 5 { // 4 node rows + 1 sum row
		t.Fatalf("basis len %d, want 5", len(b))
	}
}

func TestReSolveAllocsBounded(t *testing.T) {
	// Warm re-solves reuse every slab; only the Solution and its X
	// escape.
	s := paperLP(16, 0.999, 1e6).NewSolver()
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	objA, objB := paperObj(16, 0.999), paperObj(16, 0.5)
	flip := false
	allocs := testing.AllocsPerRun(20, func() {
		flip = !flip
		obj := objA
		if flip {
			obj = objB
		}
		if _, err := s.ReSolve(obj); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("ReSolve allocated %.0f times, want ≤ 4 (solution only)", allocs)
	}
}

func BenchmarkLPReSolve(b *testing.B) {
	// Warm re-solve cost between adjacent frontier α values — the inner
	// loop of the frontier sweep. Compare with BenchmarkLPSolve.
	for _, p := range []int{16, 64} {
		s := paperLP(p, 0.999, 1e6).NewSolver()
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		objA, objB := paperObj(p, 0.999), paperObj(p, 0.995)
		b.Run("P"+strconv.Itoa(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				obj := objA
				if i&1 == 0 {
					obj = objB
				}
				if _, err := s.ReSolve(obj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
