package lp

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func mustProblem(t *testing.T, obj []float64) *Problem {
	t.Helper()
	p, err := NewProblem(obj)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func addCon(t *testing.T, p *Problem, coeffs []float64, op Op, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(coeffs, op, rhs); err != nil {
		t.Fatal(err)
	}
}

func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil); err == nil {
		t.Error("empty objective accepted")
	}
	p := mustProblem(t, []float64{1})
	if err := p.AddConstraint([]float64{1, 2}, LE, 1); err == nil {
		t.Error("wrong-width constraint accepted")
	}
	if err := p.AddConstraint([]float64{1}, Op(9), 1); err == nil {
		t.Error("bad op accepted")
	}
	if err := p.SetFree(5); err == nil {
		t.Error("SetFree out of range accepted")
	}
}

func TestTextbookMaximization(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (Dantzig's classic)
	// optimum x=2, y=6, value 36. As minimization of the negation.
	p := mustProblem(t, []float64{-3, -5})
	addCon(t, p, []float64{1, 0}, LE, 4)
	addCon(t, p, []float64{0, 2}, LE, 12)
	addCon(t, p, []float64{3, 2}, LE, 18)
	s := solve(t, p)
	if !approx(s.X[0], 2, 1e-6) || !approx(s.X[1], 6, 1e-6) || !approx(s.Objective, -36, 1e-6) {
		t.Errorf("got x=%v obj=%v, want [2 6] -36", s.X, s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x ≤ 4 → x=4, y=6, obj=16.
	p := mustProblem(t, []float64{1, 2})
	addCon(t, p, []float64{1, 1}, EQ, 10)
	addCon(t, p, []float64{1, 0}, LE, 4)
	s := solve(t, p)
	if !approx(s.X[0], 4, 1e-6) || !approx(s.X[1], 6, 1e-6) || !approx(s.Objective, 16, 1e-6) {
		t.Errorf("got x=%v obj=%v, want [4 6] 16", s.X, s.Objective)
	}
}

func TestGEConstraints(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 5, x ≥ 1, y ≥ 1 → x=4, y=1, obj=11.
	p := mustProblem(t, []float64{2, 3})
	addCon(t, p, []float64{1, 1}, GE, 5)
	addCon(t, p, []float64{1, 0}, GE, 1)
	addCon(t, p, []float64{0, 1}, GE, 1)
	s := solve(t, p)
	if !approx(s.Objective, 11, 1e-6) {
		t.Errorf("obj = %v, want 11 (x=%v)", s.Objective, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := mustProblem(t, []float64{1})
	addCon(t, p, []float64{1}, GE, 5)
	addCon(t, p, []float64{1}, LE, 3)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := mustProblem(t, []float64{1, 1})
	addCon(t, p, []float64{1, 1}, EQ, 4)
	addCon(t, p, []float64{1, 1}, EQ, 7)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min −x with only x ≥ 0: unbounded below.
	p := mustProblem(t, []float64{-1})
	addCon(t, p, []float64{1}, GE, 0)
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. −x ≤ −5  ⇔  x ≥ 5.
	p := mustProblem(t, []float64{1})
	addCon(t, p, []float64{-1}, LE, -5)
	s := solve(t, p)
	if !approx(s.X[0], 5, 1e-6) {
		t.Errorf("x = %v, want 5", s.X[0])
	}
}

func TestFreeVariable(t *testing.T) {
	// min y s.t. y ≥ x − 4, y ≥ −x, x ≤ 10.  With x,y free this is the
	// classic V: optimum at x=2, y=−2.
	p := mustProblem(t, []float64{0, 1})
	if err := p.SetFree(0); err != nil {
		t.Fatal(err)
	}
	if err := p.SetFree(1); err != nil {
		t.Fatal(err)
	}
	addCon(t, p, []float64{-1, 1}, GE, -4) // y − x ≥ −4
	addCon(t, p, []float64{1, 1}, GE, 0)   // y + x ≥ 0
	addCon(t, p, []float64{1, 0}, LE, 10)
	s := solve(t, p)
	if !approx(s.X[1], -2, 1e-6) {
		t.Errorf("y = %v, want −2 (x=%v)", s.X[1], s.X[0])
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	// min −0.75x4 + 150x5 − 0.02x6 + 6x7
	// s.t. 0.25x4 − 60x5 − 0.04x6 + 9x7 ≤ 0
	//      0.5x4 − 90x5 − 0.02x6 + 3x7 ≤ 0
	//      x6 ≤ 1
	// optimum −0.05.
	p := mustProblem(t, []float64{-0.75, 150, -0.02, 6})
	addCon(t, p, []float64{0.25, -60, -0.04, 9}, LE, 0)
	addCon(t, p, []float64{0.5, -90, -0.02, 3}, LE, 0)
	addCon(t, p, []float64{0, 0, 1, 0}, LE, 1)
	s := solve(t, p)
	if !approx(s.Objective, -0.05, 1e-6) {
		t.Errorf("obj = %v, want −0.05", s.Objective)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality rows must not break phase 1.
	p := mustProblem(t, []float64{1, 1})
	addCon(t, p, []float64{1, 1}, EQ, 6)
	addCon(t, p, []float64{2, 2}, EQ, 12)
	addCon(t, p, []float64{1, 0}, GE, 2)
	s := solve(t, p)
	if !approx(s.Objective, 6, 1e-6) {
		t.Errorf("obj = %v, want 6", s.Objective)
	}
}

func TestMinimaxScheduling(t *testing.T) {
	// The exact structure the Pareto modeler emits: minimize v subject
	// to v ≥ m_i x_i + c_i, Σx_i = N. With m = (1,2), c = (0,0), N = 30
	// the balance point is x1 = 20, x2 = 10, v = 20.
	p := mustProblem(t, []float64{0, 0, 1}) // vars: x1, x2, v
	addCon(t, p, []float64{1, 0, -1}, LE, 0)
	addCon(t, p, []float64{0, 2, -1}, LE, 0)
	addCon(t, p, []float64{1, 1, 0}, EQ, 30)
	s := solve(t, p)
	if !approx(s.X[0], 20, 1e-6) || !approx(s.X[1], 10, 1e-6) || !approx(s.X[2], 20, 1e-6) {
		t.Errorf("got %v, want [20 10 20]", s.X)
	}
}

// bruteForce finds the optimal vertex of a small LP (all vars ≥ 0) by
// enumerating basis subsets of the constraint set (including the
// nonnegativity bounds) and checking feasibility — exponential, but
// exact for cross-validation.
func bruteForce(obj []float64, cons []constraint) (float64, bool) {
	n := len(obj)
	// All hyperplanes: each constraint as equality + each axis x_i = 0.
	type plane struct {
		a []float64
		b float64
	}
	var planes []plane
	for _, c := range cons {
		planes = append(planes, plane{c.coeffs, c.rhs})
	}
	for i := 0; i < n; i++ {
		a := make([]float64, n)
		a[i] = 1
		planes = append(planes, plane{a, 0})
	}
	best := math.Inf(1)
	found := false
	idx := make([]int, n)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n {
			// Solve the n×n system.
			A := make([][]float64, n)
			b := make([]float64, n)
			for r := 0; r < n; r++ {
				A[r] = append([]float64(nil), planes[idx[r]].a...)
				b[r] = planes[idx[r]].b
			}
			x, ok := gauss(A, b)
			if !ok {
				return
			}
			// Feasibility.
			for _, v := range x {
				if v < -1e-7 {
					return
				}
			}
			for _, c := range cons {
				lhs := 0.0
				for i := range x {
					lhs += c.coeffs[i] * x[i]
				}
				switch c.op {
				case LE:
					if lhs > c.rhs+1e-7 {
						return
					}
				case GE:
					if lhs < c.rhs-1e-7 {
						return
					}
				case EQ:
					if math.Abs(lhs-c.rhs) > 1e-7 {
						return
					}
				}
			}
			val := 0.0
			for i := range x {
				val += obj[i] * x[i]
			}
			if val < best {
				best = val
				found = true
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best, found
}

func gauss(A [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := -1
		bestAbs := 1e-9
		for r := col; r < n; r++ {
			if math.Abs(A[r][col]) > bestAbs {
				bestAbs = math.Abs(A[r][col])
				piv = r
			}
		}
		if piv < 0 {
			return nil, false
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / A[col][col]
		for j := col; j < n; j++ {
			A[col][j] *= inv
		}
		b[col] *= inv
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := A[r][col]
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				A[r][j] -= f * A[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	return b, true
}

func TestRandomLPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(2) // 2–3 variables keeps brute force fast
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = math.Round(rng.Float64()*20-10) / 2
		}
		p := mustProblem(t, obj)
		var cons []constraint
		nc := 2 + rng.Intn(3)
		for c := 0; c < nc; c++ {
			coeffs := make([]float64, n)
			for i := range coeffs {
				coeffs[i] = math.Round(rng.Float64()*10-2) / 2
			}
			rhs := math.Round(rng.Float64() * 20)
			addCon(t, p, coeffs, LE, rhs)
			cons = append(cons, constraint{coeffs, LE, rhs})
		}
		// Add a bounding box so the LP is never unbounded.
		for i := 0; i < n; i++ {
			coeffs := make([]float64, n)
			coeffs[i] = 1
			addCon(t, p, coeffs, LE, 50)
			cons = append(cons, constraint{coeffs, LE, 50})
		}
		s, err := p.Solve()
		want, feasible := bruteForce(obj, cons)
		if !feasible {
			if !errors.Is(err, ErrInfeasible) {
				t.Errorf("trial %d: brute force infeasible, solver said %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("trial %d: solver failed (%v), brute force found %v", trial, err, want)
			continue
		}
		if !approx(s.Objective, want, 1e-5) {
			t.Errorf("trial %d: solver %v, brute force %v", trial, s.Objective, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	p := mustProblem(t, []float64{1, 2})
	addCon(t, p, []float64{1, 1}, LE, 5)
	if p.NumVars() != 2 || p.NumConstraints() != 1 {
		t.Error("accessors wrong")
	}
	if LE.String() != "<=" || EQ.String() != "=" || GE.String() != ">=" {
		t.Error("op strings wrong")
	}
	if Op(7).String() == "" {
		t.Error("unknown op must print")
	}
}

func TestZeroConstraintProblem(t *testing.T) {
	// min x with no constraints: optimum x = 0.
	p := mustProblem(t, []float64{1})
	s := solve(t, p)
	if !approx(s.X[0], 0, 1e-9) {
		t.Errorf("x = %v, want 0", s.X[0])
	}
}

func TestDegenerateCyclingReportsIterations(t *testing.T) {
	// Beale's cycling LP again, this time auditing the new pivot
	// counter: Bland's rule must terminate well inside the iteration
	// limit with the count visible on the solution. Textbook simplex
	// with Dantzig's rule cycles forever on this problem.
	p := mustProblem(t, []float64{-0.75, 150, -0.02, 6})
	addCon(t, p, []float64{0.25, -60, -0.04, 9}, LE, 0)
	addCon(t, p, []float64{0.5, -90, -0.02, 3}, LE, 0)
	addCon(t, p, []float64{0, 0, 1, 0}, LE, 1)
	s := solve(t, p)
	if !approx(s.Objective, -0.05, 1e-6) {
		t.Errorf("obj = %v, want −0.05", s.Objective)
	}
	if s.Iterations <= 0 {
		t.Errorf("Iterations = %d, want > 0 (pivots must be counted)", s.Iterations)
	}
	if s.Iterations > 100 {
		t.Errorf("Iterations = %d: Bland's rule should finish this 3×4 LP in a handful of pivots", s.Iterations)
	}
}

func TestIterationsZeroWhenAlreadyOptimal(t *testing.T) {
	// min x s.t. x ≤ 5: the initial slack basis is already optimal.
	p := mustProblem(t, []float64{1})
	addCon(t, p, []float64{1}, LE, 5)
	s := solve(t, p)
	if s.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0 for an immediately optimal basis", s.Iterations)
	}
}

// paperLP builds the modeler's α-scalarized LP at p partitions:
// variables x_0..x_{p−1}, v; per-node constraints m_i x_i + c_i ≤ v
// folded with the dirty-rate term, and Σ x_i = n (§III-D shape).
func paperLP(p int, alpha float64, n float64) *Problem {
	obj := make([]float64, p+1)
	obj[p] = alpha
	for j := 0; j < p; j++ {
		obj[j] = (1 - alpha) * 0.002 * float64(j%4+1)
	}
	prob, err := NewProblem(obj)
	if err != nil {
		panic(err)
	}
	for j := 0; j < p; j++ {
		coeffs := make([]float64, p+1)
		coeffs[j] = 1 / float64(5-j%4)
		coeffs[p] = -1
		if err := prob.AddConstraint(coeffs, LE, 0); err != nil {
			panic(err)
		}
	}
	sum := make([]float64, p+1)
	for j := 0; j < p; j++ {
		sum[j] = 1
	}
	if err := prob.AddConstraint(sum, EQ, n); err != nil {
		panic(err)
	}
	return prob
}

func TestSolveAllocsBounded(t *testing.T) {
	// The flat-tableau rewrite carves all solver state out of two slabs;
	// allocations must not scale with the pivot count. The old
	// implementation allocated a fresh c_B vector every iteration plus a
	// slice header per row (~80+ allocs on this problem).
	prob := paperLP(16, 0.999, 1e6)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := prob.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("Solve allocated %.0f times, want ≤ 8 (slab-allocated tableau)", allocs)
	}
}

func BenchmarkLPSolve(b *testing.B) {
	// The paper-shaped LP: P nodes, α-scalarized time/energy objective.
	for _, p := range []int{16, 64} {
		prob := paperLP(p, 0.999, 1e6)
		b.Run("P"+strconv.Itoa(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := prob.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolve16Nodes(b *testing.B) {
	// The modeler's LP at 16 partitions: 17 vars, 17 constraints.
	for i := 0; i < b.N; i++ {
		obj := make([]float64, 17)
		obj[16] = 1
		for j := 0; j < 16; j++ {
			obj[j] = 0.001 * float64(j+1)
		}
		p, _ := NewProblem(obj)
		for j := 0; j < 16; j++ {
			coeffs := make([]float64, 17)
			coeffs[j] = float64(j%4 + 1)
			coeffs[16] = -1
			_ = p.AddConstraint(coeffs, LE, 0)
		}
		sum := make([]float64, 17)
		for j := 0; j < 16; j++ {
			sum[j] = 1
		}
		_ = p.AddConstraint(sum, EQ, 1e6)
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
