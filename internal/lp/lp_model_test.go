package lp

import (
	"math"
	"math/rand"
	"testing"
)

// sizingProblem builds the partition-sizing LP shape over p nodes:
// variables s_0..s_{p-1}, v (free); rows m_i·s_i − v ≤ −c_i, then
// Σs = 1. Returns the problem and the scalarized objective.
func sizingProblem(t *testing.T, slopes, intercepts []float64, alpha float64) (*Problem, []float64) {
	t.Helper()
	p := len(slopes)
	obj := make([]float64, p+1)
	for i := range slopes {
		obj[i] = (1 - alpha) * slopes[i]
	}
	obj[p] = alpha
	prob, err := NewProblem(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.SetFree(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		row := make([]float64, p+1)
		row[i] = slopes[i]
		row[p] = -1
		if err := prob.AddConstraint(row, LE, -intercepts[i]); err != nil {
			t.Fatal(err)
		}
	}
	sum := make([]float64, p+1)
	for i := 0; i < p; i++ {
		sum[i] = 1
	}
	if err := prob.AddConstraint(sum, EQ, 1); err != nil {
		t.Fatal(err)
	}
	return prob, obj
}

// sizingUpdates returns the ConstraintUpdates that retarget a sizing
// problem at new slopes/intercepts.
func sizingUpdates(p int, slopes, intercepts []float64) []ConstraintUpdate {
	ups := make([]ConstraintUpdate, p)
	for i := 0; i < p; i++ {
		row := make([]float64, p+1)
		row[i] = slopes[i]
		row[p] = -1
		ups[i] = ConstraintUpdate{Row: i, Coeffs: row, RHS: -intercepts[i]}
	}
	return ups
}

// TestReSolveModelMatchesColdSizing drives the sizing LP through a
// chain of model perturbations and checks every warm re-solve is
// bit-identical to a cold solve of the same model.
func TestReSolveModelMatchesColdSizing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const p = 8
	slopes := make([]float64, p)
	intercepts := make([]float64, p)
	for i := range slopes {
		slopes[i] = 0.5 + rng.Float64()*4
		intercepts[i] = rng.Float64() * 10
	}
	alpha := 0.5
	prob, obj := sizingProblem(t, slopes, intercepts, alpha)
	sv := prob.NewSolver()
	if _, err := sv.Solve(); err != nil {
		t.Fatal(err)
	}

	warmCount := 0
	for step := 0; step < 25; step++ {
		// Perturb a random subset of node models, as drift-driven
		// re-profiling would.
		for i := range slopes {
			if rng.Intn(3) == 0 {
				slopes[i] = 0.5 + rng.Float64()*4
				intercepts[i] = rng.Float64() * 10
			}
		}
		newObj := make([]float64, p+1)
		for i := 0; i < p; i++ {
			newObj[i] = (1 - alpha) * slopes[i]
		}
		newObj[p] = alpha
		sol, err := sv.ReSolveModel(newObj, sizingUpdates(p, slopes, intercepts))
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if sol.Warm {
			warmCount++
		}

		coldProb, _ := sizingProblem(t, slopes, intercepts, alpha)
		coldProb.obj = newObj
		cold, err := coldProb.Solve()
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		for i := range cold.X {
			if sol.X[i] != cold.X[i] {
				t.Fatalf("step %d (warm=%v): X[%d] = %v, cold %v", step, sol.Warm, i, sol.X[i], cold.X[i])
			}
		}
		if sol.Objective != cold.Objective {
			t.Fatalf("step %d: objective %v, cold %v", step, sol.Objective, cold.Objective)
		}
	}
	if warmCount == 0 {
		t.Fatal("no step re-solved warm; the warm path never ran")
	}
	_ = obj
}

// TestReSolveModelInfeasibleBasisFallsBack shrinks a binding bound so
// the retained vertex goes primal-infeasible: the solve must fall back
// to a cold run and still return the new optimum.
func TestReSolveModelInfeasibleBasisFallsBack(t *testing.T) {
	prob, err := NewProblem([]float64{-1})
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.AddConstraint([]float64{1}, LE, 10); err != nil {
		t.Fatal(err)
	}
	if err := prob.AddConstraint([]float64{1}, LE, 20); err != nil {
		t.Fatal(err)
	}
	sv := prob.NewSolver()
	sol, err := sv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] != 10 {
		t.Fatalf("x = %v, want 10", sol.X[0])
	}
	// Tighten the slack row below the retained vertex: x ≤ 5 while the
	// basis still pins x = 10 ⇒ refactorized RHS goes negative.
	sol, err = sv.ReSolveModel([]float64{-1}, []ConstraintUpdate{{Row: 1, Coeffs: []float64{1}, RHS: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Warm {
		t.Fatal("infeasible retained basis must force a cold solve")
	}
	if sol.X[0] != 5 {
		t.Fatalf("x = %v, want 5", sol.X[0])
	}
	// The solver recovers warm behavior after the cold rebuild.
	sol, err = sv.ReSolveModel([]float64{-1}, []ConstraintUpdate{{Row: 1, Coeffs: []float64{1}, RHS: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] != 7 {
		t.Fatalf("x = %v, want 7", sol.X[0])
	}
}

// TestReSolveModelSignFlipFallsBack flips an inequality's RHS sign,
// which would relayout the slack/artificial columns: structural, so
// cold.
func TestReSolveModelSignFlipFallsBack(t *testing.T) {
	prob, err := NewProblem([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.AddConstraint([]float64{-1}, LE, -2); err != nil { // x ≥ 2
		t.Fatal(err)
	}
	sv := prob.NewSolver()
	if _, err := sv.Solve(); err != nil {
		t.Fatal(err)
	}
	sol, err := sv.ReSolveModel([]float64{1}, []ConstraintUpdate{{Row: 0, Coeffs: []float64{1}, RHS: 3}}) // x ≤ 3
	if err != nil {
		t.Fatal(err)
	}
	if sol.Warm {
		t.Fatal("RHS sign flip on an inequality must force a cold solve")
	}
	if sol.X[0] != 0 {
		t.Fatalf("x = %v, want 0 (minimize x s.t. x ≤ 3)", sol.X[0])
	}
}

// TestReSolveModelGeneralChain exercises warm model re-solves on a
// general LP with ≤/≥/= rows and a free variable, against cold
// reference solves.
func TestReSolveModelGeneralChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func(a, b, c float64) (*Problem, []float64) {
		obj := []float64{1, 2, 0.5}
		prob, err := NewProblem(obj)
		if err != nil {
			t.Fatal(err)
		}
		if err := prob.SetFree(2); err != nil {
			t.Fatal(err)
		}
		if err := prob.AddConstraint([]float64{1, 1, 1}, GE, a); err != nil {
			t.Fatal(err)
		}
		if err := prob.AddConstraint([]float64{2, 1, 0}, LE, b); err != nil {
			t.Fatal(err)
		}
		if err := prob.AddConstraint([]float64{1, -1, 2}, EQ, c); err != nil {
			t.Fatal(err)
		}
		return prob, obj
	}
	a, b, c := 4.0, 10.0, 1.0
	prob, obj := build(a, b, c)
	sv := prob.NewSolver()
	if _, err := sv.Solve(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		a = 2 + rng.Float64()*6
		b = 8 + rng.Float64()*8
		c = rng.Float64()*4 - 1 // EQ rows tolerate sign changes
		ups := []ConstraintUpdate{
			{Row: 0, Coeffs: []float64{1, 1, 1}, RHS: a},
			{Row: 1, Coeffs: []float64{2, 1 + rng.Float64(), 0}, RHS: b},
			{Row: 2, Coeffs: []float64{1, -1, 2}, RHS: c},
		}
		sol, err := sv.ReSolveModel(obj, ups)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		coldProb, _ := build(a, b, c)
		coldProb.cons[1].coeffs[1] = ups[1].Coeffs[1]
		cold, err := coldProb.Solve()
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if math.Abs(sol.Objective-cold.Objective) > 1e-7 {
			t.Fatalf("step %d (warm=%v): objective %v, cold %v", step, sol.Warm, sol.Objective, cold.Objective)
		}
	}
}

// TestReSolveModelUnboundedRecovery: an unbounded warm re-solve
// reports ErrUnbounded and leaves the solver usable.
func TestReSolveModelUnboundedRecovery(t *testing.T) {
	prob, err := NewProblem([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.AddConstraint([]float64{1, 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sv := prob.NewSolver()
	if _, err := sv.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.ReSolveModel([]float64{-1, 0}, nil); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	sol, err := sv.ReSolveModel([]float64{1, 1}, []ConstraintUpdate{{Row: 0, Coeffs: []float64{1, 1}, RHS: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
}

func TestReSolveModelValidation(t *testing.T) {
	prob, err := NewProblem([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.AddConstraint([]float64{1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sv := prob.NewSolver()
	if _, err := sv.ReSolveModel([]float64{1, 2}, nil); err == nil {
		t.Fatal("wrong objective length accepted")
	}
	if _, err := sv.ReSolveModel([]float64{1}, []ConstraintUpdate{{Row: 5, Coeffs: []float64{1}, RHS: 1}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := sv.ReSolveModel([]float64{1}, []ConstraintUpdate{{Row: 0, Coeffs: []float64{1, 2}, RHS: 1}}); err == nil {
		t.Fatal("wrong coefficient length accepted")
	}
	// Without a prior solve the fallback runs cold and still applies
	// the updates.
	sol, err := sv.ReSolveModel([]float64{1}, []ConstraintUpdate{{Row: 0, Coeffs: []float64{1}, RHS: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Warm || math.Abs(sol.X[0]-4) > 1e-9 {
		t.Fatalf("cold fallback: warm=%v x=%v, want cold x=4", sol.Warm, sol.X[0])
	}
}
