// Package lp provides a dense two-phase primal simplex solver for
// small linear programs, built from scratch on the standard library.
//
// The Pareto modeler (paper §III-D) reduces partition sizing to the LP
//
//	minimize    α·v + (1−α)·Σ k_i (m_i x_i + c_i)
//	subject to  v ≥ m_i x_i + c_i   for every node i
//	            Σ x_i = N,  x_i ≥ 0
//
// whose dimensions are tiny (one variable per node plus v), so a dense
// tableau with Bland's anti-cycling rule is both simple and exact
// enough. The solver is nevertheless a complete general-purpose LP
// implementation: ≤ / = / ≥ constraints, free variables (internally
// split into positive and negative parts), infeasibility and
// unboundedness detection.
//
// # Warm starts
//
// Frontier enumeration solves the same constraint set under many
// objectives (one per α). A Solver retains the slab tableau and the
// factorized basis across solves: ReSolve swaps in a new objective and
// re-optimizes with primal simplex from the previous optimal vertex.
// An objective-only change preserves primal feasibility (the basic
// solution still satisfies every constraint), so a re-solve is
// typically a handful of pivots instead of a full two-phase run.
// Solution reports Iterations and whether the solve was warm.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // ≤
	EQ           // =
	GE           // ≥
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Sentinel errors returned by Solve.
var (
	// ErrInfeasible reports that no point satisfies all constraints.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports that the objective decreases without bound.
	ErrUnbounded = errors.New("lp: unbounded")
)

type constraint struct {
	coeffs []float64
	op     Op
	rhs    float64
}

// Problem is a linear program: minimize Objective·x subject to the
// added constraints, with every variable nonnegative unless marked
// free. The zero Problem is unusable; create with NewProblem.
type Problem struct {
	numVars int
	obj     []float64
	cons    []constraint
	free    []bool
}

// NewProblem creates a minimization problem over numVars variables
// with the given objective coefficients (length must equal numVars).
func NewProblem(objective []float64) (*Problem, error) {
	if len(objective) == 0 {
		return nil, errors.New("lp: problem needs at least one variable")
	}
	obj := make([]float64, len(objective))
	copy(obj, objective)
	return &Problem{
		numVars: len(objective),
		obj:     obj,
		free:    make([]bool, len(objective)),
	}, nil
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetFree marks variable i as unrestricted in sign. Internally it is
// split into x⁺ − x⁻ during solving.
func (p *Problem) SetFree(i int) error {
	if i < 0 || i >= p.numVars {
		return fmt.Errorf("lp: SetFree(%d) out of range [0,%d)", i, p.numVars)
	}
	p.free[i] = true
	return nil
}

// AddConstraint appends the constraint coeffs·x op rhs. The coefficient
// slice is copied; its length must equal NumVars.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	if op != LE && op != EQ && op != GE {
		return fmt.Errorf("lp: unknown operator %v", op)
	}
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.cons = append(p.cons, constraint{coeffs: c, op: op, rhs: rhs})
	return nil
}

// Solution is an optimal LP solution.
type Solution struct {
	// X holds the optimal variable values, in problem coordinates.
	X []float64
	// Objective is the optimal objective value.
	Objective float64
	// Iterations is the number of simplex pivots performed: across both
	// phases for a cold solve, and for the re-optimization alone on a
	// warm ReSolve — the planner's audit of how hard the sizing LP
	// worked.
	Iterations int
	// Warm is true when the solve re-optimized from a retained basis
	// (Solver.ReSolve) instead of running two-phase simplex from
	// scratch.
	Warm bool
}

// eps is the pivoting and feasibility tolerance.
const eps = 1e-9

// refreshEvery bounds how many incremental reduced-cost updates may
// run between full recomputations. Incremental maintenance turns each
// iteration's O(m·n) reduced-cost rebuild (which also allocated) into
// an O(n) row update; the periodic rebuild keeps float drift from
// accumulating across many pivots, and optimality is never declared on
// drifted data (see optimize).
const refreshEvery = 64

// Solve runs two-phase primal simplex and returns an optimal basic
// solution, ErrInfeasible, or ErrUnbounded.
//
// The tableau is a flat row-major []float64 carved, together with every
// other piece of solver state, out of two slab allocations sized in a
// pre-pass — Solve's allocation count is constant in the iteration
// count and near-constant in problem size.
func (p *Problem) Solve() (*Solution, error) {
	return p.NewSolver().Solve()
}

// Solver retains the slab tableau, the column mapping, and the current
// basis of one Problem across solves, enabling warm-started
// re-optimization under changing objectives (ReSolve). A Solver is not
// safe for concurrent use; frontier sweeps run one Solver per worker.
type Solver struct {
	p *Problem

	built bool
	// ready marks the basis as a valid primal-feasible starting point
	// for a warm re-solve (set after any successful solve).
	ready bool

	m, ncols, total int
	nArt            int

	// Column mapping from problem variables to solver columns.
	posCol, negCol []int
	slackCol       []int
	artCol         []int
	bcols          []int // extraction scratch: sorted basis columns

	t tableau

	// a0/b0 snapshot the normalized constraint rows (nonnegative RHS,
	// slack/surplus/artificial columns in place) before any pivoting.
	// They serve two drift-free roles: solution extraction solves
	// A0_B·x_B = b0 with a deterministic elimination order, so two
	// solves ending at the same optimal basis produce bit-identical
	// solutions regardless of pivot path; and optimality certification
	// recomputes reduced costs from the same original data
	// (exactEntering), so the maintained tableau's accumulated float
	// drift can cost extra pivots but never certify a suboptimal basis.
	// Together these are the warm-started frontier sweep's
	// cold-equivalence guarantee.
	a0, b0 []float64
	// sobj is the current objective mapped onto solver columns.
	sobj []float64
	// xcols holds per-solver-column values during extraction.
	xcols []float64
	// gaussA/gaussY are the m×m basis system and its RHS.
	gaussA, gaussY []float64
}

// NewSolver creates a reusable solver for the problem's current
// constraint set. Constraints added to the Problem after NewSolver are
// picked up by the next cold Solve but invalidate any warm state only
// implicitly — add all constraints before solving.
func (p *Problem) NewSolver() *Solver {
	return &Solver{p: p}
}

// build sizes and carves the slabs, then fills the normalized tableau
// rows and the initial slack/artificial basis. Safe to call repeatedly:
// slabs are allocated once and rewritten in place.
func (s *Solver) build() {
	p := s.p
	m := len(p.cons)

	// Pre-pass: count solver columns without allocating. Column layout:
	// for each var i, posCol[i]; for free vars also negCol[i]
	// (coefficient −1×); then slack/surplus columns; then artificials.
	nFree := 0
	for _, f := range p.free {
		if f {
			nFree++
		}
	}
	nSlack, nArt := 0, 0
	for _, c := range p.cons {
		op := c.op
		if c.rhs < 0 { // the row will be sign-flipped; ≤ ↔ ≥
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		if op == LE || op == GE {
			nSlack++
		}
		if op == GE || op == EQ {
			nArt++
		}
	}
	ncols := p.numVars + nFree + nSlack
	total := ncols + nArt

	if !s.built {
		// Slab 1: all integer state. Slab 2: all float state.
		ints := make([]int, 2*p.numVars+2*m+m+m)
		s.posCol, ints = ints[:p.numVars], ints[p.numVars:]
		s.negCol, ints = ints[:p.numVars], ints[p.numVars:]
		s.slackCol, ints = ints[:m], ints[m:]
		s.artCol, ints = ints[:m], ints[m:]
		basis := ints[:m]
		s.bcols = ints[m : m+m]

		floats := make([]float64, 2*(m*total)+2*m+4*total+m*m+m)
		a := floats[:m*total]
		floats = floats[m*total:]
		s.a0, floats = floats[:m*total], floats[m*total:]
		bvec, floats := floats[:m], floats[m:]
		s.b0, floats = floats[:m], floats[m:]
		red, floats := floats[:total], floats[total:]
		s.sobj, floats = floats[:total], floats[total:]
		s.xcols, floats = floats[:total], floats[total:]
		s.gaussA, floats = floats[:m*m], floats[m*m:]
		s.gaussY = floats[:m]

		s.t = tableau{m: m, stride: total, a: a, b: bvec, basis: basis, red: red}
		s.built = true
	} else {
		// Rewind a previous solve: clear the matrix slab; every other
		// slab is fully rewritten below.
		clear(s.t.a)
	}
	s.m, s.ncols, s.total, s.nArt = m, ncols, total, nArt
	s.t.n = total
	s.t.pivots = 0
	s.ready = false

	col := 0
	for i := 0; i < p.numVars; i++ {
		s.posCol[i] = col
		col++
		if p.free[i] {
			s.negCol[i] = col
			col++
		} else {
			s.negCol[i] = -1
		}
	}

	t := &s.t
	// Build rows directly into the flat tableau with nonnegative RHS.
	slack, art := p.numVars+nFree, ncols
	for r, c := range p.cons {
		row := t.row(r)
		for i, v := range c.coeffs {
			row[s.posCol[i]] = v
			if s.negCol[i] >= 0 {
				row[s.negCol[i]] = -v
			}
		}
		op, b := c.op, c.rhs
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		t.b[r] = b
		if op == LE || op == GE {
			s.slackCol[r] = slack
			slack++
			if op == LE {
				row[s.slackCol[r]] = 1
			} else {
				row[s.slackCol[r]] = -1
			}
		} else {
			s.slackCol[r] = -1
		}
		if op == GE || op == EQ {
			s.artCol[r] = art
			art++
			row[s.artCol[r]] = 1
			t.basis[r] = s.artCol[r]
		} else {
			s.artCol[r] = -1
			t.basis[r] = s.slackCol[r] // LE slack with +1 coefficient
		}
	}
	// Snapshot the normalized pre-pivot system for deterministic
	// solution extraction.
	copy(s.a0, t.a)
	copy(s.b0, t.b)
}

// Solve runs a cold two-phase simplex solve with the problem's own
// objective, (re)building the tableau from the constraint set. On
// success the Solver's basis is primed for warm ReSolve calls.
func (s *Solver) Solve() (*Solution, error) {
	s.build()
	t := &s.t
	m, ncols := s.m, s.ncols

	// Phase 1: minimize the sum of artificials.
	if s.nArt > 0 {
		phaseObj := s.sobj
		clear(phaseObj)
		for r := 0; r < m; r++ {
			if s.artCol[r] >= 0 {
				phaseObj[s.artCol[r]] = 1
			}
		}
		val, err := t.optimize(phaseObj, nil)
		if err != nil {
			// Phase 1 is bounded below by 0; unboundedness means a bug,
			// surface it as-is.
			return nil, err
		}
		if val > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive remaining artificials out of the basis.
		for r := 0; r < m; r++ {
			if t.basis[r] < ncols {
				continue
			}
			row := t.row(r)
			for j := 0; j < ncols; j++ {
				if math.Abs(row[j]) > eps {
					t.pivot(r, j)
					break
				}
			}
			// If no pivot column exists the row is redundant: the basis
			// keeps the artificial at value 0, which can never re-enter
			// (the column count shrinks below it next).
		}
		// Forbid artificial columns from re-entering: shrink the active
		// column count; the flat rows keep their stride, so no copying.
		t.n = ncols
	}

	// Phase 2: the real objective over solver columns.
	s.setObjective(s.p.obj)
	if _, err := t.optimize(s.sobj[:t.n], s); err != nil {
		return nil, err
	}
	s.ready = true
	return s.extract(s.p.obj, t.pivots, false), nil
}

// ReSolve re-optimizes with a new objective (length NumVars, problem
// coordinates) starting from the current basis. Because only the
// objective changes, the retained vertex stays primal-feasible and the
// re-solve is pure phase-2 primal simplex — typically a handful of
// pivots. Without a prior successful solve it falls back to a cold
// solve under the given objective (Solution.Warm reports which path
// ran). A ReSolve that returns ErrUnbounded leaves the basis feasible,
// so later ReSolve calls with bounded objectives remain valid.
func (s *Solver) ReSolve(objective []float64) (*Solution, error) {
	if len(objective) != s.p.numVars {
		return nil, fmt.Errorf("lp: ReSolve objective has %d coefficients, want %d", len(objective), s.p.numVars)
	}
	if !s.ready {
		return s.coldSolve(objective)
	}
	t := &s.t
	s.setObjective(objective)
	before := t.pivots
	if _, err := t.optimize(s.sobj[:t.n], s); err != nil {
		return nil, err
	}
	return s.extract(objective, t.pivots-before, true), nil
}

// coldSolve runs a full two-phase solve under the given objective
// without permanently replacing the problem's own objective.
func (s *Solver) coldSolve(objective []float64) (*Solution, error) {
	saved := s.p.obj
	s.p.obj = objective
	sol, err := s.Solve()
	s.p.obj = saved
	return sol, err
}

// ConstraintUpdate replaces the coefficients and right-hand side of one
// existing constraint, in problem coordinates. The comparison operator
// is fixed at AddConstraint time and cannot change.
type ConstraintUpdate struct {
	// Row indexes the constraint in AddConstraint order.
	Row int
	// Coeffs is the new coefficient vector (length NumVars).
	Coeffs []float64
	// RHS is the new right-hand side.
	RHS float64
}

// ReSolveModel re-optimizes after the *model* changed: the given
// constraint rows take new coefficients and right-hand sides, and the
// solve runs under the given objective (length NumVars, problem
// coordinates). Unlike ReSolve, a model change can invalidate the
// retained vertex, so the warm path re-prices the retained basis
// against the updated rows: the normalized pre-pivot snapshot (a0/b0)
// is rewritten for the changed rows, the tableau is refactorized from
// the snapshot under the retained basis set, and plain phase-2 primal
// simplex resumes from there. Because extraction and optimality
// certification read the same updated snapshot, the warm result keeps
// the cold-equivalence guarantee: it is a pure function of the final
// basis set, bit-identical to a cold solve landing on the same basis.
//
// The warm path falls back to a cold two-phase solve (Solution.Warm
// reports which path ran) when the retained basis cannot be reused:
// no prior successful solve, a right-hand-side sign change that would
// relayout the row's slack/artificial columns, an artificial column
// still basic, a numerically singular refactorization, or a basis that
// has gone primal-infeasible under the new model. In every case the
// updated constraints stick to the Problem, so later cold solves see
// the same model.
func (s *Solver) ReSolveModel(objective []float64, updates []ConstraintUpdate) (*Solution, error) {
	p := s.p
	if len(objective) != p.numVars {
		return nil, fmt.Errorf("lp: ReSolveModel objective has %d coefficients, want %d", len(objective), p.numVars)
	}
	for _, u := range updates {
		if u.Row < 0 || u.Row >= len(p.cons) {
			return nil, fmt.Errorf("lp: ReSolveModel row %d out of range [0,%d)", u.Row, len(p.cons))
		}
		if len(u.Coeffs) != p.numVars {
			return nil, fmt.Errorf("lp: ReSolveModel row %d has %d coefficients, want %d", u.Row, len(u.Coeffs), p.numVars)
		}
	}
	warm := s.ready
	for _, u := range updates {
		c := &p.cons[u.Row]
		// A sign change on the RHS of an inequality flips the
		// normalized operator (≤ ↔ ≥), which would need a different
		// slack sign and artificial-column layout than the tableau was
		// built with — a structural change, not a re-pricing.
		if c.op != EQ && (c.rhs < 0) != (u.RHS < 0) {
			warm = false
		}
		copy(c.coeffs, u.Coeffs)
		c.rhs = u.RHS
	}
	if !warm {
		return s.coldSolve(objective)
	}
	t := &s.t
	// An artificial still basic (at zero, from a redundant row) has no
	// column in the active tableau to re-price against.
	for r := 0; r < s.m; r++ {
		if t.basis[r] >= s.ncols {
			return s.coldSolve(objective)
		}
	}
	// Rewrite the normalized snapshot rows for the updated constraints,
	// exactly as build() lays them out.
	for _, u := range updates {
		r := u.Row
		c := p.cons[r]
		row := s.a0[r*s.total : r*s.total+s.total]
		clear(row)
		for i, v := range c.coeffs {
			row[s.posCol[i]] = v
			if s.negCol[i] >= 0 {
				row[s.negCol[i]] = -v
			}
		}
		op, b := c.op, c.rhs
		if b < 0 {
			for j := 0; j < s.ncols; j++ {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		s.b0[r] = b
		if s.slackCol[r] >= 0 {
			if op == LE {
				row[s.slackCol[r]] = 1
			} else {
				row[s.slackCol[r]] = -1
			}
		}
		if s.artCol[r] >= 0 {
			row[s.artCol[r]] = 1
		}
	}
	if !s.refactorize() {
		return s.coldSolve(objective)
	}
	// Primal feasibility of the retained basis under the new model.
	for r := 0; r < s.m; r++ {
		if t.b[r] < -eps {
			return s.coldSolve(objective)
		}
		if t.b[r] < 0 {
			t.b[r] = 0
		}
	}
	s.setObjective(objective)
	before := t.pivots
	if _, err := t.optimize(s.sobj[:t.n], s); err != nil {
		return nil, err
	}
	return s.extract(objective, t.pivots-before, true), nil
}

// refactorize rebuilds the pivoted tableau from the normalized
// snapshot under the retained basis *set*: it copies a0/b0 back into
// the tableau and runs Gauss–Jordan elimination, choosing for each
// basis column (ascending — deterministic) the not-yet-assigned row
// with the largest magnitude entry (lowest row on ties). Rows are
// thereby re-associated with basis columns; the basis set is
// unchanged. Returns false when the basis matrix is numerically
// singular under the new model. Elimination pivots are excluded from
// the warm iteration count by the caller (they re-derive the old
// vertex, they don't move it).
func (s *Solver) refactorize() bool {
	t := &s.t
	m := s.m
	copy(t.a, s.a0)
	copy(t.b, s.b0)
	bcols := s.bcols
	copy(bcols, t.basis)
	for i := 1; i < m; i++ {
		v := bcols[i]
		j := i - 1
		for j >= 0 && bcols[j] > v {
			bcols[j+1] = bcols[j]
			j--
		}
		bcols[j+1] = v
	}
	pivots := t.pivots
	assigned := make([]bool, m)
	for k := 0; k < m; k++ {
		col := bcols[k]
		piv := -1
		best := 1e-12
		for r := 0; r < m; r++ {
			if assigned[r] {
				continue
			}
			if v := math.Abs(t.a[r*t.stride+col]); v > best {
				best = v
				piv = r
			}
		}
		if piv < 0 {
			return false
		}
		t.pivot(piv, col)
		assigned[piv] = true
	}
	t.pivots = pivots
	return true
}

// Basis returns a copy of the current basis assignment (solver column
// basic in each row), for introspection and tests.
func (s *Solver) Basis() []int {
	if !s.built {
		return nil
	}
	out := make([]int, s.m)
	copy(out, s.t.basis)
	return out
}

// setObjective maps a problem-coordinate objective onto solver columns.
func (s *Solver) setObjective(obj []float64) {
	clear(s.sobj)
	for i := 0; i < s.p.numVars; i++ {
		s.sobj[s.posCol[i]] += obj[i]
		if s.negCol[i] >= 0 {
			s.sobj[s.negCol[i]] -= obj[i]
		}
	}
}

// extract materializes the optimal solution from the current basis.
//
// Rather than reading the pivoted tableau's RHS — whose low-order bits
// depend on the entire pivot history — it re-solves the m×m basis
// system A0_B·x_B = b0 against the original normalized rows with a
// deterministic elimination order (columns sorted ascending, partial
// pivoting with lowest-row tie-break). The extracted solution is
// therefore a pure function of the basis *set*: a warm re-solve and a
// cold solve that end at the same basis yield bit-identical X. Falls
// back to the tableau RHS if the basis system is numerically singular.
func (s *Solver) extract(obj []float64, iters int, warm bool) *Solution {
	t := &s.t
	m := s.m
	clear(s.xcols)
	bcols := s.bcols
	copy(bcols, t.basis)
	// Insertion sort: deterministic, allocation-free, m is tiny.
	for i := 1; i < m; i++ {
		v := bcols[i]
		j := i - 1
		for j >= 0 && bcols[j] > v {
			bcols[j+1] = bcols[j]
			j--
		}
		bcols[j+1] = v
	}
	if s.solveBasisSystem() {
		for k := 0; k < m; k++ {
			s.xcols[bcols[k]] = s.gaussY[k]
		}
	} else {
		// Singular basis matrix (degenerate float corner): fall back to
		// the maintained tableau values.
		for r, bi := range t.basis {
			if bi >= 0 && bi < s.total {
				s.xcols[bi] = t.b[r]
			}
		}
	}
	x := make([]float64, s.p.numVars)
	for i := 0; i < s.p.numVars; i++ {
		x[i] = s.xcols[s.posCol[i]]
		if s.negCol[i] >= 0 {
			x[i] -= s.xcols[s.negCol[i]]
		}
	}
	objVal := 0.0
	for i, v := range x {
		objVal += obj[i] * v
	}
	return &Solution{X: x, Objective: objVal, Iterations: iters, Warm: warm}
}

// solveBasisSystem solves gaussA·y = gaussY in place, where gaussA is
// the basis matrix gathered from the original rows (columns s.bcols,
// sorted). Gaussian elimination with partial pivoting, ties broken by
// lowest row index — fully deterministic. Returns false on a
// numerically singular matrix.
func (s *Solver) solveBasisSystem() bool {
	m := s.m
	if m == 0 {
		return true
	}
	A, y := s.gaussA, s.gaussY
	for r := 0; r < m; r++ {
		row := s.a0[r*s.total : r*s.total+s.total]
		for k := 0; k < m; k++ {
			A[r*m+k] = row[s.bcols[k]]
		}
		y[r] = s.b0[r]
	}
	for col := 0; col < m; col++ {
		piv := -1
		best := 1e-12
		for r := col; r < m; r++ {
			if v := math.Abs(A[r*m+col]); v > best {
				best = v
				piv = r
			}
		}
		if piv < 0 {
			return false
		}
		if piv != col {
			for j := col; j < m; j++ {
				A[col*m+j], A[piv*m+j] = A[piv*m+j], A[col*m+j]
			}
			y[col], y[piv] = y[piv], y[col]
		}
		inv := 1 / A[col*m+col]
		for j := col; j < m; j++ {
			A[col*m+j] *= inv
		}
		y[col] *= inv
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := A[r*m+col]
			if f == 0 {
				continue
			}
			for j := col; j < m; j++ {
				A[r*m+j] -= f * A[col*m+j]
			}
			y[r] -= f * y[col]
		}
	}
	// y[k] is now the value of basis column bcols[k]. Reject wildly
	// non-finite results (overflowed elimination) as singular.
	for k := 0; k < m; k++ {
		if math.IsNaN(y[k]) || math.IsInf(y[k], 0) {
			return false
		}
	}
	return true
}

// exactEntering certifies optimality against the original constraint
// data: it factorizes the current basis matrix from a0 (LU with
// partial pivoting, lowest-row tie-break — deterministic), solves
// Bᵀ·y = c_B for the duals, recomputes every active column's reduced
// cost c_j − yᵀ·a0_j, and returns the Bland-smallest column that still
// improves, or −1 when the basis is genuinely optimal (or the basis
// matrix is numerically singular, in which case the maintained
// tableau's verdict stands).
//
// The maintained tableau is B⁻¹A as accumulated over the whole pivot
// history — including pivots from earlier warm re-solves — and its
// low-order drift can reach the eps threshold on ill-scaled problems.
// Certifying against a0 makes the accepted basis independent of the
// pivot path, which is what lets a warm re-solve land on exactly the
// basis a cold solve finds.
func (s *Solver) exactEntering(obj []float64) int {
	t := &s.t
	m := s.m
	if m == 0 {
		return -1
	}
	A, perm := s.gaussA, s.bcols
	for r := 0; r < m; r++ {
		row := s.a0[r*s.total : r*s.total+s.total]
		for k := 0; k < m; k++ {
			A[r*m+k] = row[t.basis[k]]
		}
		perm[r] = r
	}
	// LU factorization P·B = L·U in place (L unit-diagonal below, U on
	// and above the diagonal).
	for col := 0; col < m; col++ {
		piv := -1
		best := 1e-12
		for r := col; r < m; r++ {
			if v := math.Abs(A[r*m+col]); v > best {
				best = v
				piv = r
			}
		}
		if piv < 0 {
			return -1
		}
		if piv != col {
			for j := 0; j < m; j++ {
				A[col*m+j], A[piv*m+j] = A[piv*m+j], A[col*m+j]
			}
			perm[col], perm[piv] = perm[piv], perm[col]
		}
		inv := 1 / A[col*m+col]
		for r := col + 1; r < m; r++ {
			f := A[r*m+col] * inv
			if f == 0 {
				continue
			}
			A[r*m+col] = f
			for j := col + 1; j < m; j++ {
				A[r*m+j] -= f * A[col*m+j]
			}
		}
	}
	// Solve Bᵀy = c_B, where c_B[k] = obj[basis[k]]. With P·B = L·U:
	// Bᵀ = Uᵀ·Lᵀ·P, so solve Uᵀ·a = c_B (forward), Lᵀ·w = a
	// (backward), then y[perm[r]] = w[r].
	v := s.gaussY
	for k := 0; k < m; k++ {
		if bi := t.basis[k]; bi >= 0 && bi < len(obj) {
			v[k] = obj[bi]
		} else {
			v[k] = 0
		}
	}
	for r := 0; r < m; r++ {
		sum := v[r]
		for c := 0; c < r; c++ {
			sum -= A[c*m+r] * v[c]
		}
		v[r] = sum / A[r*m+r]
	}
	for r := m - 1; r >= 0; r-- {
		sum := v[r]
		for c := r + 1; c < m; c++ {
			sum -= A[c*m+r] * v[c]
		}
		v[r] = sum
	}
	y := s.xcols[:m] // xcols is free outside extract
	for r := 0; r < m; r++ {
		y[perm[r]] = v[r]
	}
	// Bland scan over active columns with drift-free reduced costs.
	for j := 0; j < t.n; j++ {
		var c float64
		if j < len(obj) {
			c = obj[j]
		}
		red := c
		for r := 0; r < m; r++ {
			red -= y[r] * s.a0[r*s.total+j]
		}
		if red < -eps {
			return j
		}
	}
	return -1
}

// tableau is the dense simplex state: a·x = b with a current basis.
// The matrix is one flat row-major slab; row r occupies
// a[r*stride : r*stride+stride], of which only the first n columns are
// active (the phase-1 → phase-2 transition shrinks n below stride).
type tableau struct {
	m, n   int
	stride int
	a      []float64
	b      []float64
	basis  []int
	// red is the maintained reduced-cost row r_j = c_j − c_B·B⁻¹A_j
	// over the active columns.
	red []float64
	// pivots counts Gauss–Jordan pivots across all optimize calls.
	pivots int
}

// row returns the full backing row r (stride wide).
func (t *tableau) row(r int) []float64 {
	return t.a[r*t.stride : r*t.stride+t.stride]
}

// arow returns the active columns of row r.
func (t *tableau) arow(r int) []float64 {
	return t.a[r*t.stride : r*t.stride+t.n]
}

// pivot performs a Gauss–Jordan pivot on (row, col) and updates basis.
// Only active columns are touched.
func (t *tableau) pivot(row, col int) {
	pr := t.arow(row)
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.b[row] *= inv
	pr[col] = 1 // kill residual rounding
	for r := 0; r < t.m; r++ {
		if r == row {
			continue
		}
		ar := t.arow(r)
		f := ar[col]
		if f == 0 {
			continue
		}
		for j := range ar {
			ar[j] -= f * pr[j]
		}
		ar[col] = 0
		t.b[r] -= f * t.b[row]
	}
	t.basis[row] = col
	t.pivots++
}

// recomputeReduced rebuilds the reduced-cost row and the objective
// value c_B·b from scratch — the numerically self-correcting path,
// run at entry, every refreshEvery pivots, and before any optimality
// claim. Allocation-free: it scans the basis directly instead of
// materializing a c_B vector.
func (t *tableau) recomputeReduced(obj []float64) float64 {
	red := t.red[:t.n]
	for j := range red {
		if j < len(obj) {
			red[j] = obj[j]
		} else {
			red[j] = 0
		}
	}
	z := 0.0
	for r := 0; r < t.m; r++ {
		bi := t.basis[r]
		var c float64
		if bi >= 0 && bi < len(obj) {
			c = obj[bi]
		}
		if c == 0 {
			continue
		}
		z += c * t.b[r]
		row := t.arow(r)
		for j := range row {
			red[j] -= c * row[j]
		}
	}
	return z
}

// optimize runs primal simplex with Bland's rule on the given
// objective, assuming the current basis is feasible. Returns the
// optimal objective value.
//
// Reduced costs are maintained incrementally across pivots (an O(n)
// row update using the normalized pivot row) and rebuilt from the
// basis every refreshEvery pivots for numerical hygiene. Optimality is
// only ever declared after a fresh rebuild confirms no entering column
// exists — and, when cert is non-nil, after cert.exactEntering
// re-certifies against the original (never-pivoted) constraint data —
// so drift can cost extra iterations but never a wrong answer. Bland's
// rule (smallest entering index, smallest basis index on ratio ties)
// is preserved exactly, keeping the anti-cycling guarantee.
func (t *tableau) optimize(obj []float64, cert *Solver) (float64, error) {
	red := t.red[:t.n]
	z := t.recomputeReduced(obj)
	sinceRefresh := 0
	const maxIter = 100000
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: smallest index with reduced cost < −eps.
		enter := -1
		for j := range red {
			if red[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			// No candidate under the maintained costs: confirm against a
			// fresh rebuild before declaring optimality.
			z = t.recomputeReduced(obj)
			sinceRefresh = 0
			for j := range red {
				if red[j] < -eps {
					enter = j
					break
				}
			}
			if enter < 0 && cert != nil {
				// The maintained tableau says optimal; make the verdict
				// drift-free before accepting it.
				enter = cert.exactEntering(obj)
			}
			if enter < 0 {
				return z, nil
			}
		}
		// Leaving row: min ratio b_r / a_r,enter over positive entries;
		// ties broken by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.m; r++ {
			arj := t.a[r*t.stride+enter]
			if arj > eps {
				ratio := t.b[r] / arj
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		f := red[enter]
		t.pivot(leave, enter)
		sinceRefresh++
		if sinceRefresh >= refreshEvery {
			z = t.recomputeReduced(obj)
			sinceRefresh = 0
		} else {
			// Objective-row pivot update: r′ = r − r_enter·(pivot row),
			// z′ = z + r_enter·b̄_leave, using the post-normalization row.
			pr := t.arow(leave)
			for j := range red {
				red[j] -= f * pr[j]
			}
			red[enter] = 0
			z += f * t.b[leave]
		}
	}
	return 0, errors.New("lp: iteration limit exceeded")
}
