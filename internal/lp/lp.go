// Package lp provides a dense two-phase primal simplex solver for
// small linear programs, built from scratch on the standard library.
//
// The Pareto modeler (paper §III-D) reduces partition sizing to the LP
//
//	minimize    α·v + (1−α)·Σ k_i (m_i x_i + c_i)
//	subject to  v ≥ m_i x_i + c_i   for every node i
//	            Σ x_i = N,  x_i ≥ 0
//
// whose dimensions are tiny (one variable per node plus v), so a dense
// tableau with Bland's anti-cycling rule is both simple and exact
// enough. The solver is nevertheless a complete general-purpose LP
// implementation: ≤ / = / ≥ constraints, free variables (internally
// split into positive and negative parts), infeasibility and
// unboundedness detection.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // ≤
	EQ           // =
	GE           // ≥
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Sentinel errors returned by Solve.
var (
	// ErrInfeasible reports that no point satisfies all constraints.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports that the objective decreases without bound.
	ErrUnbounded = errors.New("lp: unbounded")
)

type constraint struct {
	coeffs []float64
	op     Op
	rhs    float64
}

// Problem is a linear program: minimize Objective·x subject to the
// added constraints, with every variable nonnegative unless marked
// free. The zero Problem is unusable; create with NewProblem.
type Problem struct {
	numVars int
	obj     []float64
	cons    []constraint
	free    []bool
}

// NewProblem creates a minimization problem over numVars variables
// with the given objective coefficients (length must equal numVars).
func NewProblem(objective []float64) (*Problem, error) {
	if len(objective) == 0 {
		return nil, errors.New("lp: problem needs at least one variable")
	}
	obj := make([]float64, len(objective))
	copy(obj, objective)
	return &Problem{
		numVars: len(objective),
		obj:     obj,
		free:    make([]bool, len(objective)),
	}, nil
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetFree marks variable i as unrestricted in sign. Internally it is
// split into x⁺ − x⁻ during solving.
func (p *Problem) SetFree(i int) error {
	if i < 0 || i >= p.numVars {
		return fmt.Errorf("lp: SetFree(%d) out of range [0,%d)", i, p.numVars)
	}
	p.free[i] = true
	return nil
}

// AddConstraint appends the constraint coeffs·x op rhs. The coefficient
// slice is copied; its length must equal NumVars.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	if op != LE && op != EQ && op != GE {
		return fmt.Errorf("lp: unknown operator %v", op)
	}
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.cons = append(p.cons, constraint{coeffs: c, op: op, rhs: rhs})
	return nil
}

// Solution is an optimal LP solution.
type Solution struct {
	// X holds the optimal variable values, in problem coordinates.
	X []float64
	// Objective is the optimal objective value.
	Objective float64
	// Iterations is the number of simplex pivots performed across both
	// phases — the planner's audit of how hard the sizing LP worked.
	Iterations int
}

// eps is the pivoting and feasibility tolerance.
const eps = 1e-9

// refreshEvery bounds how many incremental reduced-cost updates may
// run between full recomputations. Incremental maintenance turns each
// iteration's O(m·n) reduced-cost rebuild (which also allocated) into
// an O(n) row update; the periodic rebuild keeps float drift from
// accumulating across many pivots, and optimality is never declared on
// drifted data (see optimize).
const refreshEvery = 64

// Solve runs two-phase primal simplex and returns an optimal basic
// solution, ErrInfeasible, or ErrUnbounded.
//
// The tableau is a flat row-major []float64 carved, together with every
// other piece of solver state, out of two slab allocations sized in a
// pre-pass — Solve's allocation count is constant in the iteration
// count and near-constant in problem size.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.cons)

	// Pre-pass: count solver columns without allocating. Column layout:
	// for each var i, posCol[i]; for free vars also negCol[i]
	// (coefficient −1×); then slack/surplus columns; then artificials.
	nFree := 0
	for _, f := range p.free {
		if f {
			nFree++
		}
	}
	nSlack, nArt := 0, 0
	for _, c := range p.cons {
		op := c.op
		if c.rhs < 0 { // the row will be sign-flipped; ≤ ↔ ≥
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		if op == LE || op == GE {
			nSlack++
		}
		if op == GE || op == EQ {
			nArt++
		}
	}
	ncols := p.numVars + nFree + nSlack
	total := ncols + nArt

	// Slab 1: all integer state. Slab 2: all float state.
	ints := make([]int, 2*p.numVars+2*m+m)
	posCol, ints := ints[:p.numVars], ints[p.numVars:]
	negCol, ints := ints[:p.numVars], ints[p.numVars:]
	slackCol, ints := ints[:m], ints[m:]
	artCol, ints := ints[:m], ints[m:]
	basis := ints[:m]

	floats := make([]float64, m*total+m+total+total+total)
	a, floats := floats[:m*total], floats[m*total:]
	bvec, floats := floats[:m], floats[m:]
	red, floats := floats[:total], floats[total:]
	phaseObj, floats := floats[:total], floats[total:]
	xcols := floats[:total]

	col := 0
	for i := 0; i < p.numVars; i++ {
		posCol[i] = col
		col++
		if p.free[i] {
			negCol[i] = col
			col++
		} else {
			negCol[i] = -1
		}
	}

	t := &tableau{m: m, n: total, stride: total, a: a, b: bvec, basis: basis, red: red}

	// Build rows directly into the flat tableau with nonnegative RHS.
	slack, art := p.numVars + nFree, ncols
	for r, c := range p.cons {
		row := t.row(r)
		for i, v := range c.coeffs {
			row[posCol[i]] = v
			if negCol[i] >= 0 {
				row[negCol[i]] = -v
			}
		}
		op, b := c.op, c.rhs
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		t.b[r] = b
		if op == LE || op == GE {
			slackCol[r] = slack
			slack++
			if op == LE {
				row[slackCol[r]] = 1
			} else {
				row[slackCol[r]] = -1
			}
		} else {
			slackCol[r] = -1
		}
		if op == GE || op == EQ {
			artCol[r] = art
			art++
			row[artCol[r]] = 1
			t.basis[r] = artCol[r]
		} else {
			artCol[r] = -1
			t.basis[r] = slackCol[r] // LE slack with +1 coefficient
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		for r := 0; r < m; r++ {
			if artCol[r] >= 0 {
				phaseObj[artCol[r]] = 1
			}
		}
		val, err := t.optimize(phaseObj)
		if err != nil {
			// Phase 1 is bounded below by 0; unboundedness means a bug,
			// surface it as-is.
			return nil, err
		}
		if val > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive remaining artificials out of the basis.
		for r := 0; r < m; r++ {
			if t.basis[r] < ncols {
				continue
			}
			row := t.row(r)
			for j := 0; j < ncols; j++ {
				if math.Abs(row[j]) > eps {
					t.pivot(r, j)
					break
				}
			}
			// If no pivot column exists the row is redundant: the basis
			// keeps the artificial at value 0, which can never re-enter
			// (the column count shrinks below it next).
		}
		// Forbid artificial columns from re-entering: shrink the active
		// column count; the flat rows keep their stride, so no copying.
		t.n = ncols
	}

	// Phase 2: the real objective over solver columns.
	obj := phaseObj[:t.n]
	for j := range obj {
		obj[j] = 0
	}
	for i := 0; i < p.numVars; i++ {
		obj[posCol[i]] += p.obj[i]
		if negCol[i] >= 0 {
			obj[negCol[i]] -= p.obj[i]
		}
	}
	if _, err := t.optimize(obj); err != nil {
		return nil, err
	}

	// Extract solution.
	for r, bi := range t.basis {
		if bi >= 0 && bi < t.n {
			xcols[bi] = t.b[r]
		}
	}
	x := make([]float64, p.numVars)
	for i := 0; i < p.numVars; i++ {
		x[i] = xcols[posCol[i]]
		if negCol[i] >= 0 {
			x[i] -= xcols[negCol[i]]
		}
	}
	objVal := 0.0
	for i, v := range x {
		objVal += p.obj[i] * v
	}
	return &Solution{X: x, Objective: objVal, Iterations: t.pivots}, nil
}

// tableau is the dense simplex state: a·x = b with a current basis.
// The matrix is one flat row-major slab; row r occupies
// a[r*stride : r*stride+stride], of which only the first n columns are
// active (the phase-1 → phase-2 transition shrinks n below stride).
type tableau struct {
	m, n   int
	stride int
	a      []float64
	b      []float64
	basis  []int
	// red is the maintained reduced-cost row r_j = c_j − c_B·B⁻¹A_j
	// over the active columns.
	red []float64
	// pivots counts Gauss–Jordan pivots across all optimize calls.
	pivots int
}

// row returns the full backing row r (stride wide).
func (t *tableau) row(r int) []float64 {
	return t.a[r*t.stride : r*t.stride+t.stride]
}

// arow returns the active columns of row r.
func (t *tableau) arow(r int) []float64 {
	return t.a[r*t.stride : r*t.stride+t.n]
}

// pivot performs a Gauss–Jordan pivot on (row, col) and updates basis.
// Only active columns are touched.
func (t *tableau) pivot(row, col int) {
	pr := t.arow(row)
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.b[row] *= inv
	pr[col] = 1 // kill residual rounding
	for r := 0; r < t.m; r++ {
		if r == row {
			continue
		}
		ar := t.arow(r)
		f := ar[col]
		if f == 0 {
			continue
		}
		for j := range ar {
			ar[j] -= f * pr[j]
		}
		ar[col] = 0
		t.b[r] -= f * t.b[row]
	}
	t.basis[row] = col
	t.pivots++
}

// recomputeReduced rebuilds the reduced-cost row and the objective
// value c_B·b from scratch — the numerically self-correcting path,
// run at entry, every refreshEvery pivots, and before any optimality
// claim. Allocation-free: it scans the basis directly instead of
// materializing a c_B vector.
func (t *tableau) recomputeReduced(obj []float64) float64 {
	red := t.red[:t.n]
	for j := range red {
		if j < len(obj) {
			red[j] = obj[j]
		} else {
			red[j] = 0
		}
	}
	z := 0.0
	for r := 0; r < t.m; r++ {
		bi := t.basis[r]
		var c float64
		if bi >= 0 && bi < len(obj) {
			c = obj[bi]
		}
		if c == 0 {
			continue
		}
		z += c * t.b[r]
		row := t.arow(r)
		for j := range row {
			red[j] -= c * row[j]
		}
	}
	return z
}

// optimize runs primal simplex with Bland's rule on the given
// objective, assuming the current basis is feasible. Returns the
// optimal objective value.
//
// Reduced costs are maintained incrementally across pivots (an O(n)
// row update using the normalized pivot row) and rebuilt from the
// basis every refreshEvery pivots for numerical hygiene. Optimality is
// only ever declared after a fresh rebuild confirms no entering column
// exists, so drift can cost extra iterations but never a wrong answer.
// Bland's rule (smallest entering index, smallest basis index on ratio
// ties) is preserved exactly, keeping the anti-cycling guarantee.
func (t *tableau) optimize(obj []float64) (float64, error) {
	red := t.red[:t.n]
	z := t.recomputeReduced(obj)
	sinceRefresh := 0
	const maxIter = 100000
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: smallest index with reduced cost < −eps.
		enter := -1
		for j := range red {
			if red[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			// No candidate under the maintained costs: confirm against a
			// fresh rebuild before declaring optimality.
			z = t.recomputeReduced(obj)
			sinceRefresh = 0
			for j := range red {
				if red[j] < -eps {
					enter = j
					break
				}
			}
			if enter < 0 {
				return z, nil
			}
		}
		// Leaving row: min ratio b_r / a_r,enter over positive entries;
		// ties broken by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.m; r++ {
			arj := t.a[r*t.stride+enter]
			if arj > eps {
				ratio := t.b[r] / arj
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		f := red[enter]
		t.pivot(leave, enter)
		sinceRefresh++
		if sinceRefresh >= refreshEvery {
			z = t.recomputeReduced(obj)
			sinceRefresh = 0
		} else {
			// Objective-row pivot update: r′ = r − r_enter·(pivot row),
			// z′ = z + r_enter·b̄_leave, using the post-normalization row.
			pr := t.arow(leave)
			for j := range red {
				red[j] -= f * pr[j]
			}
			red[enter] = 0
			z += f * t.b[leave]
		}
	}
	return 0, errors.New("lp: iteration limit exceeded")
}
