// Package lp provides a dense two-phase primal simplex solver for
// small linear programs, built from scratch on the standard library.
//
// The Pareto modeler (paper §III-D) reduces partition sizing to the LP
//
//	minimize    α·v + (1−α)·Σ k_i (m_i x_i + c_i)
//	subject to  v ≥ m_i x_i + c_i   for every node i
//	            Σ x_i = N,  x_i ≥ 0
//
// whose dimensions are tiny (one variable per node plus v), so a dense
// tableau with Bland's anti-cycling rule is both simple and exact
// enough. The solver is nevertheless a complete general-purpose LP
// implementation: ≤ / = / ≥ constraints, free variables (internally
// split into positive and negative parts), infeasibility and
// unboundedness detection.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // ≤
	EQ           // =
	GE           // ≥
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Sentinel errors returned by Solve.
var (
	// ErrInfeasible reports that no point satisfies all constraints.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports that the objective decreases without bound.
	ErrUnbounded = errors.New("lp: unbounded")
)

type constraint struct {
	coeffs []float64
	op     Op
	rhs    float64
}

// Problem is a linear program: minimize Objective·x subject to the
// added constraints, with every variable nonnegative unless marked
// free. The zero Problem is unusable; create with NewProblem.
type Problem struct {
	numVars int
	obj     []float64
	cons    []constraint
	free    []bool
}

// NewProblem creates a minimization problem over numVars variables
// with the given objective coefficients (length must equal numVars).
func NewProblem(objective []float64) (*Problem, error) {
	if len(objective) == 0 {
		return nil, errors.New("lp: problem needs at least one variable")
	}
	obj := make([]float64, len(objective))
	copy(obj, objective)
	return &Problem{
		numVars: len(objective),
		obj:     obj,
		free:    make([]bool, len(objective)),
	}, nil
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetFree marks variable i as unrestricted in sign. Internally it is
// split into x⁺ − x⁻ during solving.
func (p *Problem) SetFree(i int) error {
	if i < 0 || i >= p.numVars {
		return fmt.Errorf("lp: SetFree(%d) out of range [0,%d)", i, p.numVars)
	}
	p.free[i] = true
	return nil
}

// AddConstraint appends the constraint coeffs·x op rhs. The coefficient
// slice is copied; its length must equal NumVars.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coeffs), p.numVars)
	}
	if op != LE && op != EQ && op != GE {
		return fmt.Errorf("lp: unknown operator %v", op)
	}
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.cons = append(p.cons, constraint{coeffs: c, op: op, rhs: rhs})
	return nil
}

// Solution is an optimal LP solution.
type Solution struct {
	// X holds the optimal variable values, in problem coordinates.
	X []float64
	// Objective is the optimal objective value.
	Objective float64
}

// eps is the pivoting and feasibility tolerance.
const eps = 1e-9

// Solve runs two-phase primal simplex and returns an optimal basic
// solution, ErrInfeasible, or ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) {
	// Map problem variables to solver columns, splitting free vars.
	// Column layout: for each var i, posCol[i]; for free vars also
	// negCol[i] (coefficient −1×).
	posCol := make([]int, p.numVars)
	negCol := make([]int, p.numVars)
	ncols := 0
	for i := 0; i < p.numVars; i++ {
		posCol[i] = ncols
		ncols++
		if p.free[i] {
			negCol[i] = ncols
			ncols++
		} else {
			negCol[i] = -1
		}
	}

	m := len(p.cons)
	// Build rows with nonnegative RHS; track per-row op after possible
	// sign flip (≤ flips to ≥ and vice versa).
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	ops := make([]Op, m)
	for r, c := range p.cons {
		row := make([]float64, ncols)
		for i, v := range c.coeffs {
			row[posCol[i]] = v
			if negCol[i] >= 0 {
				row[negCol[i]] = -v
			}
		}
		op, b := c.op, c.rhs
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[r], rhs[r], ops[r] = row, b, op
	}

	// Add slack/surplus columns, then artificials.
	slackCol := make([]int, m)
	for r := range rows {
		switch ops[r] {
		case LE, GE:
			slackCol[r] = ncols
			ncols++
		default:
			slackCol[r] = -1
		}
	}
	artCol := make([]int, m)
	nArt := 0
	for r := range rows {
		if ops[r] == GE || ops[r] == EQ {
			artCol[r] = ncols + nArt
			nArt++
		} else {
			artCol[r] = -1
		}
	}
	total := ncols + nArt

	t := &tableau{
		m:     m,
		n:     total,
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: make([]int, m),
	}
	for r := range rows {
		row := make([]float64, total)
		copy(row, rows[r])
		if slackCol[r] >= 0 {
			if ops[r] == LE {
				row[slackCol[r]] = 1
			} else {
				row[slackCol[r]] = -1
			}
		}
		if artCol[r] >= 0 {
			row[artCol[r]] = 1
		}
		t.a[r] = row
		t.b[r] = rhs[r]
		if artCol[r] >= 0 {
			t.basis[r] = artCol[r]
		} else {
			t.basis[r] = slackCol[r] // LE slack with +1 coefficient
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := make([]float64, total)
		for r := range rows {
			if artCol[r] >= 0 {
				phase1[artCol[r]] = 1
			}
		}
		val, err := t.optimize(phase1)
		if err != nil {
			// Phase 1 is bounded below by 0; unboundedness means a bug,
			// surface it as-is.
			return nil, err
		}
		if val > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive remaining artificials out of the basis.
		for r := 0; r < m; r++ {
			if t.basis[r] < ncols {
				continue
			}
			pivoted := false
			for j := 0; j < ncols; j++ {
				if math.Abs(t.a[r][j]) > eps {
					t.pivot(r, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it; basis keeps the artificial
				// at value 0 which can never re-enter (column removed
				// from the phase-2 objective and never chosen).
				continue
			}
		}
		// Forbid artificial columns from re-entering.
		t.n = ncols
		for r := range t.a {
			t.a[r] = t.a[r][:ncols]
		}
	}

	// Phase 2: the real objective over solver columns.
	obj := make([]float64, t.n)
	for i := 0; i < p.numVars; i++ {
		obj[posCol[i]] += p.obj[i]
		if negCol[i] >= 0 {
			obj[negCol[i]] -= p.obj[i]
		}
	}
	if _, err := t.optimize(obj); err != nil {
		return nil, err
	}

	// Extract solution.
	xcols := make([]float64, t.n)
	for r, bi := range t.basis {
		if bi >= 0 && bi < t.n {
			xcols[bi] = t.b[r]
		}
	}
	x := make([]float64, p.numVars)
	for i := 0; i < p.numVars; i++ {
		x[i] = xcols[posCol[i]]
		if negCol[i] >= 0 {
			x[i] -= xcols[negCol[i]]
		}
	}
	objVal := 0.0
	for i, v := range x {
		objVal += p.obj[i] * v
	}
	return &Solution{X: x, Objective: objVal}, nil
}

// tableau is the dense simplex state: a·x = b with a current basis.
type tableau struct {
	m, n  int
	a     [][]float64
	b     []float64
	basis []int
}

// pivot performs a Gauss–Jordan pivot on (row, col) and updates basis.
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.b[row] *= inv
	pr[col] = 1 // kill residual rounding
	for r := 0; r < t.m; r++ {
		if r == row {
			continue
		}
		f := t.a[r][col]
		if f == 0 {
			continue
		}
		ar := t.a[r]
		for j := range ar {
			ar[j] -= f * pr[j]
		}
		ar[col] = 0
		t.b[r] -= f * t.b[row]
	}
	t.basis[row] = col
}

// optimize runs primal simplex with Bland's rule on the given
// objective, assuming the current basis is feasible. Returns the
// optimal objective value.
func (t *tableau) optimize(obj []float64) (float64, error) {
	// Reduced costs maintained implicitly: z_j - c_j computed from the
	// basis each iteration. Small problems make this affordable and
	// numerically self-correcting.
	cb := func() []float64 {
		c := make([]float64, t.m)
		for r, bi := range t.basis {
			if bi >= 0 && bi < len(obj) {
				c[r] = obj[bi]
			}
		}
		return c
	}
	const maxIter = 100000
	for iter := 0; iter < maxIter; iter++ {
		cbv := cb()
		// entering column: smallest index with reduced cost < -eps.
		enter := -1
		for j := 0; j < t.n; j++ {
			// reduced cost r_j = c_j − cb·a_j
			rj := 0.0
			if j < len(obj) {
				rj = obj[j]
			}
			for r := 0; r < t.m; r++ {
				rj -= cbv[r] * t.a[r][j]
			}
			if rj < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			// Optimal: objective = cb·b.
			val := 0.0
			for r := 0; r < t.m; r++ {
				val += cbv[r] * t.b[r]
			}
			return val, nil
		}
		// leaving row: min ratio b_r / a_r,enter over positive entries;
		// ties broken by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.m; r++ {
			arj := t.a[r][enter]
			if arj > eps {
				ratio := t.b[r] / arj
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return 0, errors.New("lp: iteration limit exceeded")
}
