package lp_test

import (
	"fmt"

	"pareto/internal/lp"
)

// Solve the makespan-balancing LP the Pareto modeler emits: two nodes
// with speeds 1 and 2 (slopes 1 and 2), 30 units of data.
func ExampleProblem_Solve() {
	// Variables: x1, x2, v. Minimize v.
	p, err := lp.NewProblem([]float64{0, 0, 1})
	if err != nil {
		panic(err)
	}
	// v ≥ 1·x1  and  v ≥ 2·x2.
	if err := p.AddConstraint([]float64{1, 0, -1}, lp.LE, 0); err != nil {
		panic(err)
	}
	if err := p.AddConstraint([]float64{0, 2, -1}, lp.LE, 0); err != nil {
		panic(err)
	}
	// x1 + x2 = 30.
	if err := p.AddConstraint([]float64{1, 1, 0}, lp.EQ, 30); err != nil {
		panic(err)
	}
	sol, err := p.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("x1=%.0f x2=%.0f makespan=%.0f\n", sol.X[0], sol.X[1], sol.X[2])
	// Output:
	// x1=20 x2=10 makespan=20
}
