package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// PlanSummary is the serializable description of a Plan: everything an
// operator needs to audit or replay a placement decision, without the
// full record-level assignment (whose size is the dataset's).
type PlanSummary struct {
	Strategy  string  `json:"strategy"`
	Alpha     float64 `json:"alpha"`
	Scheme    string  `json:"scheme"`
	Records   int     `json:"records"`
	Strata    int     `json:"strata"`
	Converged bool    `json:"strata_converged"`
	// DegradedStratify records that the distributed stratification
	// path failed and the plan fell back to the in-process stratifier
	// (the run is still correct, but did not exercise the cluster).
	DegradedStratify bool   `json:"degraded_stratify,omitempty"`
	DegradedReason   string `json:"degraded_reason,omitempty"`
	// Stratifier overhead audit (component III): planning must stay
	// negligible next to the job for the amortization claim to hold.
	StratifyIterations int     `json:"stratify_iterations,omitempty"`
	StratifySketchMs   float64 `json:"stratify_sketch_ms,omitempty"`
	StratifyClusterMs  float64 `json:"stratify_cluster_ms,omitempty"`
	StratifyMoved      int     `json:"stratify_moved_records,omitempty"`
	// StratifyFailedAttempts/StratifyFailedMs account for earlier
	// stratification attempts that failed before the recorded one (the
	// degraded distributed→local fallback): their cost is planning
	// overhead too.
	StratifyFailedAttempts int     `json:"stratify_failed_attempts,omitempty"`
	StratifyFailedMs       float64 `json:"stratify_failed_attempt_ms,omitempty"`
	// CorpusWeight is the scan stage's summed record weight.
	CorpusWeight int `json:"corpus_weight,omitempty"`
	// Stages is the per-stage wall-clock breakdown of BuildPlan.
	Stages []StageTiming `json:"stages,omitempty"`
	// Sizes is the per-partition record count.
	Sizes []int `json:"sizes"`
	// Nodes carries the learned per-node models (empty for the
	// baseline, which does not profile).
	Nodes []NodeSummary `json:"nodes,omitempty"`
	// PredictedMakespanSec / PredictedDirtyJ are the modeler's
	// predictions (zero for the baseline).
	PredictedMakespanSec float64 `json:"predicted_makespan_sec,omitempty"`
	PredictedDirtyJ      float64 `json:"predicted_dirty_joules,omitempty"`
}

// NodeSummary is one node's learned model in a PlanSummary.
type NodeSummary struct {
	Slope      float64 `json:"slope_sec_per_record"`
	Intercept  float64 `json:"intercept_sec"`
	R2         float64 `json:"r2"`
	DirtyRateW float64 `json:"dirty_rate_watts"`
}

// Summary extracts the serializable view of the plan.
func (p *Plan) Summary() (*PlanSummary, error) {
	if p == nil || p.Assign == nil {
		return nil, errors.New("core: nil plan")
	}
	records := 0
	for _, s := range p.Sizes {
		records += s
	}
	s := &PlanSummary{
		Strategy: p.Strategy.String(),
		Alpha:    p.Alpha,
		Scheme:   p.Scheme.String(),
		Records:  records,
		Sizes:    append([]int(nil), p.Sizes...),

		DegradedStratify: p.DegradedStratify,
		DegradedReason:   p.DegradedReason,
		CorpusWeight:     p.CorpusWeight,
		Stages:           append([]StageTiming(nil), p.Stages...),
	}
	if p.Strat != nil {
		s.Strata = p.Strat.K()
		s.Converged = p.Strat.Converged
		s.StratifyIterations = p.Strat.Stats.Iterations
		s.StratifySketchMs = float64(p.Strat.Stats.SketchTime.Microseconds()) / 1000
		s.StratifyClusterMs = float64(p.Strat.Stats.ClusterTime.Microseconds()) / 1000
		s.StratifyMoved = p.Strat.Stats.MovedTotal
		s.StratifyFailedAttempts = p.Strat.Stats.FailedAttempts
		s.StratifyFailedMs = float64(p.Strat.Stats.FailedAttemptTime.Microseconds()) / 1000
	}
	for _, m := range p.Models {
		s.Nodes = append(s.Nodes, NodeSummary{
			Slope:      m.Time.Slope,
			Intercept:  m.Time.Intercept,
			R2:         m.Time.R2,
			DirtyRateW: m.DirtyRate,
		})
	}
	if p.Optimized != nil {
		s.PredictedMakespanSec = p.Optimized.Makespan
		s.PredictedDirtyJ = p.Optimized.DirtyEnergy
	}
	return s, nil
}

// WriteJSON writes the summary as indented JSON.
func (s *PlanSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("core: encoding plan summary: %w", err)
	}
	return nil
}

// ReadPlanSummary parses an indented-JSON summary.
func ReadPlanSummary(r io.Reader) (*PlanSummary, error) {
	var s PlanSummary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding plan summary: %w", err)
	}
	return &s, nil
}
