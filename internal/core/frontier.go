package core

import (
	"errors"

	"pareto/internal/frontier"
	"pareto/internal/opt"
)

// FrontierModels makes *Plan a frontier.ModelSource: a built plan's
// profiled node models and its total record count (the sum of its
// partition sizes) are exactly the inputs a frontier enumeration
// needs. Mount a frontier.Service over the plan to let operators pick
// a different time/energy operating point after planning:
//
//	svc := frontier.NewService(plan, frontier.Config{Telemetry: reg})
//	frontier.Mount(mux, svc)
func (p *Plan) FrontierModels() ([]opt.NodeModel, int, error) {
	if p == nil || len(p.Models) == 0 {
		return nil, 0, errors.New("core: plan has no profiled models (baseline strategy?)")
	}
	total := 0
	for _, s := range p.Sizes {
		total += s
	}
	if total <= 0 {
		return nil, 0, errors.New("core: plan has no placed records")
	}
	return p.Models, total, nil
}

// FrontierFromPlan enumerates the Pareto frontier over the plan's
// profiled models with warm-started α sweeps (or exact breakpoint
// bisection when cfg requests it via Exact on the returned call —
// callers wanting bisection should use frontier.Exact directly). The
// plan itself is one point on this frontier, at the α it was built
// with.
func FrontierFromPlan(plan *Plan, cfg frontier.Config) (*frontier.Result, error) {
	nodes, total, err := plan.FrontierModels()
	if err != nil {
		return nil, err
	}
	return frontier.Sweep(nodes, total, cfg)
}
