package core

import (
	"errors"
	"testing"
	"time"

	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// TestPipelineSpans: a full BuildPlan + Execute with telemetry attached
// must produce one span per pipeline stage — scan, stratify, profile,
// optimize, place under the "plan" root, and a "run" root from the
// cluster — each with a recorded (non-negative, and for the real work
// non-zero) duration, plus per-stage timings on the plan itself.
func TestPipelineSpans(t *testing.T) {
	corpus, cl := testSetup(t)
	reg := telemetry.NewRegistry()
	cl.Telemetry = reg
	plan, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{
		Strategy:  HetAware,
		Scheme:    partitioner.Representative,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(cl, plan, runWeighted(corpus), 0); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	wantStages := []string{"scan", "stratify", "profile", "optimize", "place"}
	planSpan := snap.FindSpan("plan")
	if planSpan == nil {
		t.Fatal("no plan span recorded")
	}
	if len(planSpan.Children) != len(wantStages) {
		t.Fatalf("plan span children: %+v", planSpan.Children)
	}
	for i, name := range wantStages {
		c := planSpan.Children[i]
		if c.Name != name {
			t.Errorf("stage %d = %q, want %q", i, c.Name, name)
		}
		if c.DurationMs < 0 {
			t.Errorf("stage %q duration %v < 0", name, c.DurationMs)
		}
	}
	// The heavyweight stages cannot legitimately take zero time.
	for _, name := range []string{"stratify", "profile"} {
		if sp := planSpan.Find(name); sp == nil || sp.DurationMs <= 0 {
			t.Errorf("stage %q duration not positive: %+v", name, sp)
		}
	}
	run := snap.FindSpan("run")
	if run == nil {
		t.Fatal("no run span recorded")
	}
	if run.DurationMs <= 0 || len(run.Children) == 0 {
		t.Errorf("run span: %+v", run)
	}
	if snap.Gauges["corpus_records"] != int64ToFloat(corpus.Len()) {
		t.Errorf("corpus_records = %v, want %d", snap.Gauges["corpus_records"], corpus.Len())
	}

	// The same timings ride on the plan and survive into the summary.
	if len(plan.Stages) != len(wantStages) {
		t.Fatalf("plan stages: %+v", plan.Stages)
	}
	if plan.CorpusWeight <= 0 {
		t.Errorf("corpus weight = %d, want > 0", plan.CorpusWeight)
	}
	sum, err := plan.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Stages) != len(wantStages) || sum.CorpusWeight != plan.CorpusWeight {
		t.Errorf("summary stages/weight: %+v %d", sum.Stages, sum.CorpusWeight)
	}
}

func int64ToFloat(n int) float64 { return float64(int64(n)) }

// TestBuildPlanWithoutTelemetry: stage timings populate even with no
// registry attached (nil fast path end to end).
func TestBuildPlanWithoutTelemetry(t *testing.T) {
	corpus, cl := testSetup(t)
	plan, err := BuildPlan(corpus, cl, nil, Config{
		Strategy: Stratified,
		Scheme:   partitioner.Representative,
		Stratifier: strata.StratifierConfig{
			Cluster: strata.Config{K: 8, L: 3, Seed: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"scan", "stratify", "place"}
	if len(plan.Stages) != len(wantStages) {
		t.Fatalf("stages: %+v", plan.Stages)
	}
	for i, name := range wantStages {
		if plan.Stages[i].Name != name {
			t.Errorf("stage %d = %q, want %q", i, plan.Stages[i].Name, name)
		}
	}
}

// TestDegradedStratifyStatsMerged: when the distributed attempt fails,
// its wall-clock cost must be folded into the fallback stratification's
// stats — and surfaced by the summary — not dropped.
func TestDegradedStratifyStatsMerged(t *testing.T) {
	corpus, cl := testSetup(t)
	const attemptCost = 20 * time.Millisecond
	plan, err := BuildPlan(corpus, cl, nil, Config{
		Strategy: Stratified,
		Scheme:   partitioner.Representative,
		DistStratify: func(pivots.Corpus, strata.StratifierConfig) (*strata.Stratification, error) {
			time.Sleep(attemptCost)
			return nil, errors.New("store unreachable")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.DegradedStratify || plan.DegradedReason == "" {
		t.Fatalf("degradation not recorded: %+v", plan)
	}
	st := plan.Strat.Stats
	if st.FailedAttempts != 1 {
		t.Errorf("failed attempts = %d, want 1", st.FailedAttempts)
	}
	if st.FailedAttemptTime < attemptCost {
		t.Errorf("failed attempt time = %v, want ≥ %v", st.FailedAttemptTime, attemptCost)
	}
	// The fallback's own profile must still be present (sketch time
	// non-zero, consistent audit fields).
	if st.SketchTime <= 0 || st.Iterations == 0 {
		t.Errorf("fallback stats incomplete: %+v", st)
	}
	sum, err := plan.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.StratifyFailedAttempts != 1 || sum.StratifyFailedMs < 19 {
		t.Errorf("summary failed-attempt fields: %d %v", sum.StratifyFailedAttempts, sum.StratifyFailedMs)
	}
	if sum.StratifySketchMs <= 0 || sum.StratifyIterations == 0 {
		t.Errorf("summary audit fields empty on degraded path: %+v", sum)
	}
}
