// Package core orchestrates the complete Pareto partitioning pipeline
// of the paper (Figure 1): data stratifier (III) → task-specific
// heterogeneity estimator (I) with representative progressive samples →
// green-energy estimator (II) → Pareto-optimal modeler (IV) → data
// partitioner (V).
//
// The three strategies evaluated in §V map onto one pipeline:
//
//   - Stratified (baseline): stratification-driven placement with
//     equal-sized partitions — payload-aware but hardware-oblivious.
//   - Het-Aware: α = 1, partition sizes from the time-only LP.
//   - Het-Energy-Aware: α slightly below 1, trading makespan for a
//     lower dirty-energy footprint.
package core

import (
	"errors"
	"fmt"
	"time"

	"pareto/internal/cluster"
	"pareto/internal/opt"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/sampling"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// Strategy identifies one of the paper's three partitioning strategies.
type Strategy int

// The evaluated strategies.
const (
	// Stratified is the baseline: stratified placement, equal sizes.
	Stratified Strategy = iota
	// HetAware optimizes execution time only (α = 1).
	HetAware
	// HetEnergyAware trades time for dirty energy (α < 1).
	HetEnergyAware
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Stratified:
		return "Stratified"
	case HetAware:
		return "Het-Aware"
	case HetEnergyAware:
		return "Het-Energy-Aware"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config assembles the pipeline's knobs.
type Config struct {
	// Strategy selects the partition-sizing policy.
	Strategy Strategy
	// Alpha is the scalarization weight for HetEnergyAware (ignored
	// otherwise; HetAware pins α = 1). The paper uses 0.999 for
	// mining and 0.995 for compression.
	Alpha float64
	// Normalized switches the modeler to 0–1 normalized objectives
	// (the paper's proposed future work), making mid-range α
	// meaningful.
	Normalized bool
	// Scheme is the placement scheme (Representative for mining,
	// SimilarTogether for compression).
	Scheme partitioner.Scheme
	// Stratifier configures sketching and compositeKModes.
	Stratifier strata.StratifierConfig
	// ProfileMinFrac/ProfileMaxFrac/ProfileSteps define the
	// progressive-sampling ladder (defaults: 0.05%–2% in 6 steps).
	ProfileMinFrac float64
	ProfileMaxFrac float64
	ProfileSteps   int
	// ProfileMinRecords floors the sample sizes so support-scaled
	// mining never profiles in its degenerate tiny-sample regime.
	// 0 means sampling.DefaultMinRecords.
	ProfileMinRecords int
	// MinPartitionFrac, if positive, floors every optimized partition
	// at this fraction of the equal share N/p. Scaled-support mining
	// degenerates on starved partitions (local threshold of a couple
	// of records), so mining deployments typically set ~0.25. The
	// baseline strategy ignores it (its partitions are equal anyway).
	MinPartitionFrac float64
	// MinPartitionRecords, if positive, floors every optimized
	// partition at an absolute record count (the workload's own
	// statement of how many records a partition needs before its
	// scaled local threshold is meaningful — e.g. several records
	// above support·size ≥ a handful for frequent pattern mining).
	// The effective floor is the larger of the two, capped at N/p.
	MinPartitionRecords float64
	// SampleSeed drives representative-sample selection.
	SampleSeed int64
	// TraceOffset is the job's planned start within the energy traces
	// (seconds); Window is the averaging window for the dirty-rate
	// constants k_i (seconds). Window 0 defaults to one hour.
	TraceOffset float64
	Window      float64
	// DistStratify, when set, is tried first for component III — e.g.
	// a closure over distrib.Stratify running across real workers. If
	// it fails (dead store, partitioned network, unrecoverable worker
	// loss), BuildPlan degrades gracefully to the in-process
	// stratifier and records the degradation on the Plan and in its
	// Summary, so an operator can see the run did not exercise the
	// distributed path.
	DistStratify func(c pivots.Corpus, cfg strata.StratifierConfig) (*strata.Stratification, error)
	// Telemetry, when non-nil, records a "plan" span with one child per
	// pipeline stage (scan, stratify, profile, optimize, place) plus
	// corpus gauges into the registry. Stage timings are collected on
	// the Plan regardless (they are one clock pair per stage).
	Telemetry *telemetry.Registry
}

// StageTiming is one pipeline stage's wall-clock duration, collected
// by BuildPlan and surfaced through the PlanSummary.
type StageTiming struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// ProfileFunc runs the actual analytics algorithm on a representative
// sample (record indices into the corpus) and returns its abstract
// cost. The cluster's per-node speeds convert cost into per-node
// simulated time during profiling.
type ProfileFunc func(indices []int) (cost float64, err error)

// Plan is the pipeline's output: everything needed to place data and
// predict the run.
type Plan struct {
	// Strategy and Alpha echo the configuration.
	Strategy Strategy
	Alpha    float64
	// Strat is the stratification (component III's output).
	Strat *strata.Stratification
	// Models are the per-node learned time models and dirty rates
	// (components I and II) — nil for the Stratified baseline, which
	// does not profile.
	Models []opt.NodeModel
	// Sizes are the partition sizes in records.
	Sizes []int
	// Optimized is the modeler's raw output (nil for the baseline).
	Optimized *opt.Plan
	// Assign is the final placement.
	Assign *partitioner.Assignment
	// Scheme echoes the placement scheme used.
	Scheme partitioner.Scheme
	// DegradedStratify is true when Config.DistStratify failed and the
	// pipeline fell back to the in-process stratifier; DegradedReason
	// carries the failure.
	DegradedStratify bool
	DegradedReason   string
	// Stages holds the wall-clock timing of every pipeline stage that
	// ran, in execution order.
	Stages []StageTiming
	// CorpusWeight is the summed record weight found by the scan stage.
	CorpusWeight int
}

// BuildPlan runs the full pipeline for the corpus on the cluster.
// profile may be nil for the Stratified baseline (which skips
// components I/II); it is required for the heterogeneity-aware
// strategies.
func BuildPlan(corpus pivots.Corpus, cl *cluster.Cluster, profile ProfileFunc, cfg Config) (*Plan, error) {
	if corpus == nil || corpus.Len() == 0 {
		return nil, errors.New("core: empty corpus")
	}
	if cl == nil || cl.P() == 0 {
		return nil, errors.New("core: empty cluster")
	}
	n := corpus.Len()
	p := cl.P()
	if cfg.Stratifier.Cluster.K == 0 {
		// A sensible default: several strata per partition.
		cfg.Stratifier.Cluster.K = 4 * p
		if cfg.Stratifier.Cluster.K > n {
			cfg.Stratifier.Cluster.K = n
		}
	}
	if cfg.Stratifier.Cluster.L == 0 {
		cfg.Stratifier.Cluster.L = 3
	}

	plan := &Plan{Strategy: cfg.Strategy, Scheme: cfg.Scheme}
	root := cfg.Telemetry.StartSpan("plan")
	defer root.End()
	// stage wraps one pipeline stage: a child span (nil-safe when
	// telemetry is off) plus a wall-clock timing recorded on the plan.
	stage := func(name string, fn func() error) error {
		sp := root.Child(name)
		t0 := time.Now()
		err := fn()
		plan.Stages = append(plan.Stages, StageTiming{
			Name: name, Ms: float64(time.Since(t0).Nanoseconds()) / 1e6,
		})
		sp.End()
		return err
	}

	// Scan: one pass over the corpus for its total weight — the
	// denominator for stratified weighting and the first thing an
	// operator checks when a snapshot looks wrong.
	_ = stage("scan", func() error {
		w := 0
		for i := 0; i < n; i++ {
			w += corpus.Weight(i)
		}
		plan.CorpusWeight = w
		if reg := cfg.Telemetry; reg != nil {
			reg.Gauge("corpus_records").Set(int64(n))
			reg.Gauge("corpus_weight").Set(int64(w))
		}
		return nil
	})

	// Component III: stratify — distributed first when configured,
	// degrading to in-process if the distributed path fails terminally.
	// A failed distributed attempt's cost is folded into the fallback's
	// stats (FailedAttempts/FailedAttemptTime) instead of being dropped,
	// so the planning-overhead audit stays honest on the degraded path.
	var st *strata.Stratification
	if err := stage("stratify", func() error {
		var err error
		var failedDur time.Duration
		degradedReason := ""
		if cfg.DistStratify != nil {
			t0 := time.Now()
			st, err = cfg.DistStratify(corpus, cfg.Stratifier)
			if err != nil {
				failedDur = time.Since(t0)
				degradedReason = err.Error()
				st = nil
			}
		}
		if st == nil {
			st, err = strata.Stratify(corpus, cfg.Stratifier)
			if err != nil {
				return fmt.Errorf("core: stratifying: %w", err)
			}
			if degradedReason != "" {
				plan.DegradedStratify = true
				plan.DegradedReason = degradedReason
				st.Stats.AddFailedAttempt(failedDur)
			}
		}
		plan.Strat = st
		return nil
	}); err != nil {
		return nil, err
	}

	switch cfg.Strategy {
	case Stratified:
		plan.Alpha = 1
		plan.Sizes = partitioner.EqualSizes(n, p)
	case HetAware, HetEnergyAware:
		alpha := 1.0
		if cfg.Strategy == HetEnergyAware {
			alpha = cfg.Alpha
			if alpha <= 0 || alpha >= 1 {
				return nil, fmt.Errorf("core: Het-Energy-Aware needs alpha in (0,1), got %v", alpha)
			}
		}
		plan.Alpha = alpha
		if profile == nil {
			return nil, fmt.Errorf("core: strategy %v requires a profile function", cfg.Strategy)
		}
		if err := stage("profile", func() error {
			models, err := profileCluster(corpus, cl, st, profile, cfg)
			if err != nil {
				return err
			}
			plan.Models = models
			return nil
		}); err != nil {
			return nil, err
		}
		if err := stage("optimize", func() error {
			var oplan *opt.Plan
			var err error
			if cfg.Normalized {
				oplan, err = opt.OptimizeNormalized(plan.Models, n, alpha)
			} else {
				cons := opt.Constraints{}
				if cfg.MinPartitionFrac > 0 {
					cons.MinSize = cfg.MinPartitionFrac * float64(n) / float64(p)
				}
				if cfg.MinPartitionRecords > cons.MinSize {
					cons.MinSize = cfg.MinPartitionRecords
				}
				oplan, err = opt.OptimizeWithConstraints(plan.Models, n, alpha, cons)
			}
			if err != nil {
				return fmt.Errorf("core: optimizing: %w", err)
			}
			plan.Optimized = oplan
			plan.Sizes = oplan.Sizes
			return nil
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}

	// Component V: place.
	if err := stage("place", func() error {
		assign, err := partitioner.Partition(cfg.Scheme, st.Members, plan.Sizes)
		if err != nil {
			return fmt.Errorf("core: partitioning: %w", err)
		}
		plan.Assign = assign
		return nil
	}); err != nil {
		return nil, err
	}
	return plan, nil
}

// profileCluster runs components I and II: representative progressive
// samples through the real workload on every node, least-squares time
// fits, and trace-derived dirty rates.
func profileCluster(corpus pivots.Corpus, cl *cluster.Cluster, st *strata.Stratification, profile ProfileFunc, cfg Config) ([]opt.NodeModel, error) {
	minFrac, maxFrac, steps := cfg.ProfileMinFrac, cfg.ProfileMaxFrac, cfg.ProfileSteps
	if minFrac == 0 {
		minFrac = sampling.DefaultMinFrac
	}
	if maxFrac == 0 {
		maxFrac = sampling.DefaultMaxFrac
	}
	if steps == 0 {
		steps = sampling.DefaultSteps
	}
	sizes, err := sampling.ScheduleWithFloor(corpus.Len(), minFrac, maxFrac, steps, cfg.ProfileMinRecords)
	if err != nil {
		return nil, fmt.Errorf("core: profiling schedule: %w", err)
	}
	// Draw one representative sample per scheduled size; every node
	// profiles on the same sample, so differences are pure hardware.
	samples := make(map[int][]int, len(sizes))
	costs := make(map[int]float64, len(sizes))
	for _, s := range sizes {
		idx, err := strata.StratifiedSample(st.Members, s, cfg.SampleSeed+int64(s))
		if err != nil {
			return nil, fmt.Errorf("core: sampling %d records: %w", s, err)
		}
		cost, err := profile(idx)
		if err != nil {
			return nil, fmt.Errorf("core: profiling sample of %d: %w", s, err)
		}
		samples[s] = idx
		costs[s] = cost
	}
	window := cfg.Window
	if window <= 0 {
		window = 3600
	}
	models, err := cl.ProfileAll(sizes, func(sz int) (float64, error) {
		c, ok := costs[sz]
		if !ok {
			return 0, fmt.Errorf("core: no cached cost for sample size %d", sz)
		}
		return c, nil
	}, cfg.TraceOffset, window)
	if err != nil {
		return nil, fmt.Errorf("core: fitting node models: %w", err)
	}
	return models, nil
}

// RunPartition is the executable form of one node's share: the record
// indices it owns.
type RunPartition func(node int, indices []int) (cost float64, err error)

// Execute runs the planned job on the cluster: node j processes
// partition j via run, concurrently, and the result carries simulated
// times and energies.
func Execute(cl *cluster.Cluster, plan *Plan, run RunPartition, traceOffset float64) (*cluster.Result, error) {
	if plan == nil || plan.Assign == nil {
		return nil, errors.New("core: nil plan")
	}
	if plan.Assign.P() != cl.P() {
		return nil, fmt.Errorf("core: plan has %d partitions for %d nodes", plan.Assign.P(), cl.P())
	}
	tasks := make([]cluster.Task, cl.P())
	for j := range tasks {
		j := j
		indices := plan.Assign.Parts[j]
		if len(indices) == 0 {
			continue
		}
		tasks[j] = func() (float64, error) {
			return run(j, indices)
		}
	}
	return cl.Run(traceOffset, tasks)
}
