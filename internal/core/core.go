// Package core orchestrates the complete Pareto partitioning pipeline
// of the paper (Figure 1): data stratifier (III) → task-specific
// heterogeneity estimator (I) with representative progressive samples →
// green-energy estimator (II) → Pareto-optimal modeler (IV) → data
// partitioner (V).
//
// The three strategies evaluated in §V map onto one pipeline:
//
//   - Stratified (baseline): stratification-driven placement with
//     equal-sized partitions — payload-aware but hardware-oblivious.
//   - Het-Aware: α = 1, partition sizes from the time-only LP.
//   - Het-Energy-Aware: α slightly below 1, trading makespan for a
//     lower dirty-energy footprint.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pareto/internal/cluster"
	"pareto/internal/opt"
	"pareto/internal/parallel"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/sampling"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// Strategy identifies one of the paper's three partitioning strategies.
type Strategy int

// The evaluated strategies.
const (
	// Stratified is the baseline: stratified placement, equal sizes.
	Stratified Strategy = iota
	// HetAware optimizes execution time only (α = 1).
	HetAware
	// HetEnergyAware trades time for dirty energy (α < 1).
	HetEnergyAware
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Stratified:
		return "Stratified"
	case HetAware:
		return "Het-Aware"
	case HetEnergyAware:
		return "Het-Energy-Aware"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config assembles the pipeline's knobs.
type Config struct {
	// Strategy selects the partition-sizing policy.
	Strategy Strategy
	// Alpha is the scalarization weight for HetEnergyAware (ignored
	// otherwise; HetAware pins α = 1). The paper uses 0.999 for
	// mining and 0.995 for compression.
	Alpha float64
	// Normalized switches the modeler to 0–1 normalized objectives
	// (the paper's proposed future work), making mid-range α
	// meaningful.
	Normalized bool
	// Scheme is the placement scheme (Representative for mining,
	// SimilarTogether for compression).
	Scheme partitioner.Scheme
	// Stratifier configures sketching and compositeKModes.
	Stratifier strata.StratifierConfig
	// ProfileMinFrac/ProfileMaxFrac/ProfileSteps define the
	// progressive-sampling ladder (defaults: 0.05%–2% in 6 steps).
	ProfileMinFrac float64
	ProfileMaxFrac float64
	ProfileSteps   int
	// ProfileMinRecords floors the sample sizes so support-scaled
	// mining never profiles in its degenerate tiny-sample regime.
	// 0 means sampling.DefaultMinRecords.
	ProfileMinRecords int
	// MinPartitionFrac, if positive, floors every optimized partition
	// at this fraction of the equal share N/p. Scaled-support mining
	// degenerates on starved partitions (local threshold of a couple
	// of records), so mining deployments typically set ~0.25. The
	// baseline strategy ignores it (its partitions are equal anyway).
	MinPartitionFrac float64
	// MinPartitionRecords, if positive, floors every optimized
	// partition at an absolute record count (the workload's own
	// statement of how many records a partition needs before its
	// scaled local threshold is meaningful — e.g. several records
	// above support·size ≥ a handful for frequent pattern mining).
	// The effective floor is the larger of the two, capped at N/p.
	MinPartitionRecords float64
	// SampleSeed drives representative-sample selection.
	SampleSeed int64
	// TraceOffset is the job's planned start within the energy traces
	// (seconds); Window is the averaging window for the dirty-rate
	// constants k_i (seconds). Window 0 defaults to one hour.
	TraceOffset float64
	Window      float64
	// DistStratify, when set, is tried first for component III — e.g.
	// a closure over distrib.Stratify running across real workers. If
	// it fails (dead store, partitioned network, unrecoverable worker
	// loss), BuildPlan degrades gracefully to the in-process
	// stratifier and records the degradation on the Plan and in its
	// Summary, so an operator can see the run did not exercise the
	// distributed path.
	DistStratify func(c pivots.Corpus, cfg strata.StratifierConfig) (*strata.Stratification, error)
	// Telemetry, when non-nil, records a "plan" span with one child per
	// pipeline stage (scan, stratify, profile, optimize, place) plus
	// corpus gauges into the registry. Stage timings are collected on
	// the Plan regardless (they are one clock pair per stage).
	Telemetry *telemetry.Registry
	// Workers bounds the goroutines the planner's parallel stages use
	// (corpus scan, sample drawing, and — when ProfileParallel is set —
	// profile evaluation). ≤ 0 means GOMAXPROCS. Plans are bit-identical
	// at every value: parallel stages are chunked and index-addressed,
	// never order-sensitive.
	Workers int
	// ProfileParallel opts the user's ProfileFunc into concurrent
	// evaluation across sample sizes. Off by default because BuildPlan
	// cannot know whether an arbitrary ProfileFunc is thread-safe; set
	// it only when the function may be called from multiple goroutines
	// at once. Sample *drawing* is always parallel — it touches only
	// planner-owned state.
	ProfileParallel bool
}

// StageTiming is one pipeline stage's wall-clock duration, collected
// by BuildPlan and surfaced through the PlanSummary. ParallelMs, when
// nonzero, is the summed worker busy time inside the stage's parallel
// sections; ParallelMs ÷ Ms approximates the stage's achieved speedup.
type StageTiming struct {
	Name       string  `json:"name"`
	Ms         float64 `json:"ms"`
	ParallelMs float64 `json:"parallel_ms,omitempty"`
}

// ProfileFunc runs the actual analytics algorithm on a representative
// sample (record indices into the corpus) and returns its abstract
// cost. The cluster's per-node speeds convert cost into per-node
// simulated time during profiling.
type ProfileFunc func(indices []int) (cost float64, err error)

// Plan is the pipeline's output: everything needed to place data and
// predict the run.
type Plan struct {
	// Strategy and Alpha echo the configuration.
	Strategy Strategy
	Alpha    float64
	// Strat is the stratification (component III's output).
	Strat *strata.Stratification
	// Models are the per-node learned time models and dirty rates
	// (components I and II) — nil for the Stratified baseline, which
	// does not profile.
	Models []opt.NodeModel
	// Sizes are the partition sizes in records.
	Sizes []int
	// Optimized is the modeler's raw output (nil for the baseline).
	Optimized *opt.Plan
	// Assign is the final placement.
	Assign *partitioner.Assignment
	// Scheme echoes the placement scheme used.
	Scheme partitioner.Scheme
	// DegradedStratify is true when Config.DistStratify failed and the
	// pipeline fell back to the in-process stratifier; DegradedReason
	// carries the failure.
	DegradedStratify bool
	DegradedReason   string
	// Stages holds the wall-clock timing of every pipeline stage that
	// ran, in execution order.
	Stages []StageTiming
	// CorpusWeight is the summed record weight found by the scan stage.
	CorpusWeight int
}

// BuildPlan runs the full pipeline for the corpus on the cluster.
// profile may be nil for the Stratified baseline (which skips
// components I/II); it is required for the heterogeneity-aware
// strategies.
func BuildPlan(corpus pivots.Corpus, cl *cluster.Cluster, profile ProfileFunc, cfg Config) (*Plan, error) {
	if corpus == nil || corpus.Len() == 0 {
		return nil, errors.New("core: empty corpus")
	}
	if cl == nil || cl.P() == 0 {
		return nil, errors.New("core: empty cluster")
	}
	n := corpus.Len()
	p := cl.P()
	if cfg.Stratifier.Cluster.K == 0 {
		// A sensible default: several strata per partition.
		cfg.Stratifier.Cluster.K = 4 * p
		if cfg.Stratifier.Cluster.K > n {
			cfg.Stratifier.Cluster.K = n
		}
	}
	if cfg.Stratifier.Cluster.L == 0 {
		cfg.Stratifier.Cluster.L = 3
	}
	// One knob bounds the whole planner: unless the stratifier was given
	// its own worker count, it inherits Config.Workers (both treat 0 as
	// GOMAXPROCS, and stratification is worker-count independent anyway).
	if cfg.Stratifier.Cluster.Workers == 0 {
		cfg.Stratifier.Cluster.Workers = cfg.Workers
	}

	plan := &Plan{Strategy: cfg.Strategy, Scheme: cfg.Scheme}
	root := cfg.Telemetry.StartSpan("plan")
	defer root.End()
	if reg := cfg.Telemetry; reg != nil {
		reg.Gauge("plan_workers").Set(int64(parallel.Workers(n, cfg.Workers)))
	}
	// stage wraps one pipeline stage: a child span (nil-safe when
	// telemetry is off) plus a wall-clock timing recorded on the plan.
	// Stages report the summed busy time of their parallel sections (0
	// for sequential stages), surfaced as StageTiming.ParallelMs and the
	// plan_stage_parallel_ms gauge so an operator can compare busy time
	// against span wall time for achieved speedup.
	stage := func(name string, fn func() (time.Duration, error)) error {
		sp := root.Child(name)
		t0 := time.Now()
		busy, err := fn()
		st := StageTiming{Name: name, Ms: float64(time.Since(t0).Nanoseconds()) / 1e6}
		if busy > 0 {
			st.ParallelMs = float64(busy.Nanoseconds()) / 1e6
			if reg := cfg.Telemetry; reg != nil {
				reg.FloatGauge(`plan_stage_parallel_ms{stage="` + name + `"}`).Add(st.ParallelMs)
			}
		}
		plan.Stages = append(plan.Stages, st)
		sp.End()
		return err
	}

	// Scan: one pass over the corpus for its total weight — the
	// denominator for stratified weighting and the first thing an
	// operator checks when a snapshot looks wrong. Chunked in parallel;
	// the integer sum is commutative, so the result is exact at any
	// worker count.
	_ = stage("scan", func() (time.Duration, error) {
		var w atomic.Int64
		busy := parallel.For(n, cfg.Workers, func(lo, hi int) {
			sum := 0
			for i := lo; i < hi; i++ {
				sum += corpus.Weight(i)
			}
			w.Add(int64(sum))
		})
		plan.CorpusWeight = int(w.Load())
		if reg := cfg.Telemetry; reg != nil {
			reg.Gauge("corpus_records").Set(int64(n))
			reg.Gauge("corpus_weight").Set(w.Load())
		}
		return busy, nil
	})

	// Component III: stratify — distributed first when configured,
	// degrading to in-process if the distributed path fails terminally.
	// A failed distributed attempt's cost is folded into the fallback's
	// stats (FailedAttempts/FailedAttemptTime) instead of being dropped,
	// so the planning-overhead audit stays honest on the degraded path.
	var st *strata.Stratification
	if err := stage("stratify", func() (time.Duration, error) {
		var err error
		var failedDur time.Duration
		degradedReason := ""
		if cfg.DistStratify != nil {
			t0 := time.Now()
			st, err = cfg.DistStratify(corpus, cfg.Stratifier)
			if err != nil {
				failedDur = time.Since(t0)
				degradedReason = err.Error()
				st = nil
			}
		}
		if st == nil {
			st, err = strata.Stratify(corpus, cfg.Stratifier)
			if err != nil {
				return 0, fmt.Errorf("core: stratifying: %w", err)
			}
			if degradedReason != "" {
				plan.DegradedStratify = true
				plan.DegradedReason = degradedReason
				st.Stats.AddFailedAttempt(failedDur)
			}
		}
		plan.Strat = st
		return 0, nil
	}); err != nil {
		return nil, err
	}

	switch cfg.Strategy {
	case Stratified:
		plan.Alpha = 1
		plan.Sizes = partitioner.EqualSizes(n, p)
	case HetAware, HetEnergyAware:
		alpha := 1.0
		if cfg.Strategy == HetEnergyAware {
			alpha = cfg.Alpha
			if alpha <= 0 || alpha >= 1 {
				return nil, fmt.Errorf("core: Het-Energy-Aware needs alpha in (0,1), got %v", alpha)
			}
		}
		plan.Alpha = alpha
		if profile == nil {
			return nil, fmt.Errorf("core: strategy %v requires a profile function", cfg.Strategy)
		}
		if err := stage("profile", func() (time.Duration, error) {
			models, busy, err := profileCluster(corpus, cl, st, profile, cfg)
			if err != nil {
				return busy, err
			}
			plan.Models = models
			return busy, nil
		}); err != nil {
			return nil, err
		}
		if err := stage("optimize", func() (time.Duration, error) {
			var oplan *opt.Plan
			var err error
			if cfg.Normalized {
				oplan, err = opt.OptimizeNormalized(plan.Models, n, alpha)
			} else {
				cons := opt.Constraints{}
				if cfg.MinPartitionFrac > 0 {
					cons.MinSize = cfg.MinPartitionFrac * float64(n) / float64(p)
				}
				if cfg.MinPartitionRecords > cons.MinSize {
					cons.MinSize = cfg.MinPartitionRecords
				}
				oplan, err = opt.OptimizeWithConstraints(plan.Models, n, alpha, cons)
			}
			if err != nil {
				return 0, fmt.Errorf("core: optimizing: %w", err)
			}
			plan.Optimized = oplan
			plan.Sizes = oplan.Sizes
			return 0, nil
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}

	// Component V: place.
	if err := stage("place", func() (time.Duration, error) {
		assign, err := partitioner.Partition(cfg.Scheme, st.Members, plan.Sizes)
		if err != nil {
			return 0, fmt.Errorf("core: partitioning: %w", err)
		}
		plan.Assign = assign
		return 0, nil
	}); err != nil {
		return nil, err
	}
	return plan, nil
}

// profileCluster runs components I and II: representative progressive
// samples through the real workload on every node, least-squares time
// fits, and trace-derived dirty rates. It also returns the summed busy
// time of its parallel sections for the stage's ParallelMs audit.
//
// Concurrency layout: the energy-trace integration (dirty rates, which
// touches only the cluster's traces) overlaps with the sample work on
// its own goroutine; sample drawing fans out across sizes (each size's
// RNG is seeded independently as SampleSeed+size, so draws are
// index-addressed and bit-identical at any worker count); profile
// evaluation fans out only when Config.ProfileParallel declares the
// user's ProfileFunc thread-safe.
func profileCluster(corpus pivots.Corpus, cl *cluster.Cluster, st *strata.Stratification, profile ProfileFunc, cfg Config) ([]opt.NodeModel, time.Duration, error) {
	minFrac, maxFrac, steps := cfg.ProfileMinFrac, cfg.ProfileMaxFrac, cfg.ProfileSteps
	if minFrac == 0 {
		minFrac = sampling.DefaultMinFrac
	}
	if maxFrac == 0 {
		maxFrac = sampling.DefaultMaxFrac
	}
	if steps == 0 {
		steps = sampling.DefaultSteps
	}
	sizes, err := sampling.ScheduleWithFloor(corpus.Len(), minFrac, maxFrac, steps, cfg.ProfileMinRecords)
	if err != nil {
		return nil, 0, fmt.Errorf("core: profiling schedule: %w", err)
	}
	window := cfg.Window
	if window <= 0 {
		window = 3600
	}
	// Kick off the trace integration now; it is joined right before the
	// model fit needs the rates. The channel is buffered so the sender
	// never leaks even if an error path returns early.
	ratesCh := make(chan []float64, 1)
	go func() { ratesCh <- cl.DirtyRates(cfg.TraceOffset, window) }()

	// Draw one representative sample per scheduled size; every node
	// profiles on the same sample, so differences are pure hardware.
	idxs := make([][]int, len(sizes))
	costs := make([]float64, len(sizes))
	busy, err := parallel.ForErr(len(sizes), cfg.Workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			s := sizes[i]
			idx, err := strata.StratifiedSample(st.Members, s, cfg.SampleSeed+int64(s))
			if err != nil {
				return fmt.Errorf("core: sampling %d records: %w", s, err)
			}
			idxs[i] = idx
		}
		return nil
	})
	if err != nil {
		return nil, busy, err
	}
	profWorkers := 1
	if cfg.ProfileParallel {
		profWorkers = cfg.Workers
	}
	profBusy, err := parallel.ForErr(len(sizes), profWorkers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			cost, err := profile(idxs[i])
			if err != nil {
				return fmt.Errorf("core: profiling sample of %d: %w", sizes[i], err)
			}
			costs[i] = cost
		}
		return nil
	})
	busy += profBusy
	if err != nil {
		return nil, busy, err
	}
	costBySize := make(map[int]float64, len(sizes))
	for i, s := range sizes {
		costBySize[s] = costs[i]
	}
	models, err := cl.ProfileAllWithRates(sizes, func(sz int) (float64, error) {
		c, ok := costBySize[sz]
		if !ok {
			return 0, fmt.Errorf("core: no cached cost for sample size %d", sz)
		}
		return c, nil
	}, <-ratesCh)
	if err != nil {
		return nil, busy, fmt.Errorf("core: fitting node models: %w", err)
	}
	return models, busy, nil
}

// RunPartition is the executable form of one node's share: the record
// indices it owns.
type RunPartition func(node int, indices []int) (cost float64, err error)

// Execute runs the planned job on the cluster: node j processes
// partition j via run, concurrently, and the result carries simulated
// times and energies.
func Execute(cl *cluster.Cluster, plan *Plan, run RunPartition, traceOffset float64) (*cluster.Result, error) {
	if plan == nil || plan.Assign == nil {
		return nil, errors.New("core: nil plan")
	}
	if plan.Assign.P() != cl.P() {
		return nil, fmt.Errorf("core: plan has %d partitions for %d nodes", plan.Assign.P(), cl.P())
	}
	tasks := make([]cluster.Task, cl.P())
	for j := range tasks {
		j := j
		indices := plan.Assign.Parts[j]
		if len(indices) == 0 {
			continue
		}
		tasks[j] = func() (float64, error) {
			return run(j, indices)
		}
	}
	return cl.Run(traceOffset, tasks)
}
