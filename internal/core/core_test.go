package core

import (
	"bytes"
	"errors"
	"testing"

	"pareto/internal/cluster"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/strata"
)

// testSetup builds a small text corpus with planted topics and a
// 4-node paper cluster.
func testSetup(t *testing.T) (*pivots.TextCorpus, *cluster.Cluster) {
	t.Helper()
	cfg := datasets.RCV1Like(0.001) // ~800 docs
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.PaperCluster(4, energy.DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	return corpus, cl
}

// linearProfile is a workload whose cost is proportional to the
// record-weight sum — the regime where the LP is provably optimal.
func linearProfile(corpus pivots.Corpus) ProfileFunc {
	return func(indices []int) (float64, error) {
		var cost float64
		for _, i := range indices {
			cost += 2000 * float64(corpus.Weight(i))
		}
		return cost, nil
	}
}

func runWeighted(corpus pivots.Corpus) RunPartition {
	return func(node int, indices []int) (float64, error) {
		var cost float64
		for _, i := range indices {
			cost += 2000 * float64(corpus.Weight(i))
		}
		return cost, nil
	}
}

func TestBuildPlanValidation(t *testing.T) {
	corpus, cl := testSetup(t)
	if _, err := BuildPlan(nil, cl, nil, Config{}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := BuildPlan(corpus, nil, nil, Config{}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := BuildPlan(corpus, cl, nil, Config{Strategy: HetAware}); err == nil {
		t.Error("HetAware without profile accepted")
	}
	if _, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{Strategy: HetEnergyAware, Alpha: 0}); err == nil {
		t.Error("HetEnergyAware with alpha 0 accepted")
	}
	if _, err := BuildPlan(corpus, cl, nil, Config{Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStratifiedBaselinePlan(t *testing.T) {
	corpus, cl := testSetup(t)
	plan, err := BuildPlan(corpus, cl, nil, Config{
		Strategy: Stratified,
		Scheme:   partitioner.Representative,
		Stratifier: strata.StratifierConfig{
			Cluster: strata.Config{K: 8, L: 3, Seed: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Models != nil || plan.Optimized != nil {
		t.Error("baseline must not profile or optimize")
	}
	sizes := plan.Assign.Sizes()
	for j := 1; j < len(sizes); j++ {
		if sizes[j] > sizes[0] || sizes[0]-sizes[j] > 1 {
			t.Errorf("baseline sizes not equal: %v", sizes)
		}
	}
	if err := plan.Assign.Validate(corpus.Len()); err != nil {
		t.Fatal(err)
	}
}

func TestHetAwarePlanLoadsBySpeed(t *testing.T) {
	corpus, cl := testSetup(t)
	plan, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{
		Strategy: HetAware,
		Scheme:   partitioner.Representative,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Assign.Validate(corpus.Len()); err != nil {
		t.Fatal(err)
	}
	sizes := plan.Assign.Sizes()
	// Node 0 (4x) must get more than node 3 (1x); roughly 4x.
	ratio := float64(sizes[0]) / float64(sizes[3])
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("4x/1x size ratio %.2f (sizes %v)", ratio, sizes)
	}
	if len(plan.Models) != 4 {
		t.Fatalf("%d models", len(plan.Models))
	}
	// Learned slopes must order inversely with speed.
	if !(plan.Models[3].Time.Slope > plan.Models[0].Time.Slope) {
		t.Error("slow node did not learn a steeper time slope")
	}
}

func TestHetAwareBeatsBaselineMakespan(t *testing.T) {
	corpus, cl := testSetup(t)
	base, err := BuildPlan(corpus, cl, nil, Config{Strategy: Stratified, Scheme: partitioner.Representative})
	if err != nil {
		t.Fatal(err)
	}
	het, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{Strategy: HetAware, Scheme: partitioner.Representative})
	if err != nil {
		t.Fatal(err)
	}
	run := runWeighted(corpus)
	baseRes, err := Execute(cl, base, run, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	hetRes, err := Execute(cl, het, run, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	if hetRes.Makespan >= baseRes.Makespan {
		t.Errorf("Het-Aware makespan %.3f not below baseline %.3f",
			hetRes.Makespan, baseRes.Makespan)
	}
	// On a 4/3/2/1 cluster with linear work, equal sizes bottleneck on
	// the 1x node: improvement should approach 1 − (4/10)/1 = 60%,
	// certainly above 30%.
	improvement := 1 - hetRes.Makespan/baseRes.Makespan
	if improvement < 0.3 {
		t.Errorf("improvement %.1f%%, expected ≥ 30%%", 100*improvement)
	}
}

func TestHetEnergyAwareTradesTimeForEnergy(t *testing.T) {
	corpus, cl := testSetup(t)
	profile := linearProfile(corpus)
	run := runWeighted(corpus)
	const offset = 12 * 3600 // noon: green energy differentiates nodes
	het, err := BuildPlan(corpus, cl, profile, Config{
		Strategy: HetAware, Scheme: partitioner.Representative, TraceOffset: offset,
	})
	if err != nil {
		t.Fatal(err)
	}
	hea, err := BuildPlan(corpus, cl, profile, Config{
		Strategy: HetEnergyAware, Alpha: 0.9, Normalized: true,
		Scheme: partitioner.Representative, TraceOffset: offset,
	})
	if err != nil {
		t.Fatal(err)
	}
	hetRes, err := Execute(cl, het, run, offset)
	if err != nil {
		t.Fatal(err)
	}
	heaRes, err := Execute(cl, hea, run, offset)
	if err != nil {
		t.Fatal(err)
	}
	if heaRes.DirtyEnergy > hetRes.DirtyEnergy {
		t.Errorf("Het-Energy-Aware dirty %.0f J above Het-Aware %.0f J",
			heaRes.DirtyEnergy, hetRes.DirtyEnergy)
	}
	if heaRes.Makespan < hetRes.Makespan {
		t.Errorf("Het-Energy-Aware makespan %.3f below Het-Aware %.3f — impossible",
			heaRes.Makespan, hetRes.Makespan)
	}
}

func TestExecuteValidation(t *testing.T) {
	corpus, cl := testSetup(t)
	if _, err := Execute(cl, nil, nil, 0); err == nil {
		t.Error("nil plan accepted")
	}
	plan, err := BuildPlan(corpus, cl, nil, Config{Strategy: Stratified, Scheme: partitioner.Representative})
	if err != nil {
		t.Fatal(err)
	}
	small, err := cluster.PaperCluster(2, energy.DefaultPanel(), 172, 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(small, plan, runWeighted(corpus), 0); err == nil {
		t.Error("partition/node mismatch accepted")
	}
	boom := errors.New("boom")
	if _, err := Execute(cl, plan, func(int, []int) (float64, error) { return 0, boom }, 0); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	if Stratified.String() != "Stratified" || HetAware.String() != "Het-Aware" ||
		HetEnergyAware.String() != "Het-Energy-Aware" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy must print")
	}
}

func TestStratifiedSampleHelper(t *testing.T) {
	members := [][]int{{0, 1, 2, 3, 4, 5}, {6, 7, 8}, {9}}
	s, err := strata.StratifiedSample(members, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 5 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[int]bool{}
	for _, i := range s {
		if seen[i] {
			t.Error("duplicate in sample")
		}
		seen[i] = true
	}
	if _, err := strata.StratifiedSample(members, 11, 1); err == nil {
		t.Error("oversized sample accepted")
	}
	if s, err := strata.StratifiedSample(members, 0, 1); err != nil || len(s) != 0 {
		t.Error("zero sample must be empty")
	}
	if s, err := strata.StratifiedSample(members, 10, 1); err != nil || len(s) != 10 {
		t.Error("full sample must cover everything")
	}
}

func TestPlanSummaryRoundtrip(t *testing.T) {
	corpus, cl := testSetup(t)
	plan, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{
		Strategy: HetAware, Scheme: partitioner.Representative,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := plan.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Strategy != "Het-Aware" || sum.Records != corpus.Len() || len(sum.Nodes) != 4 {
		t.Errorf("summary %+v", sum)
	}
	if sum.PredictedMakespanSec <= 0 {
		t.Error("missing prediction")
	}
	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlanSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Strategy != sum.Strategy || back.Sizes[0] != sum.Sizes[0] ||
		back.Nodes[2].Slope != sum.Nodes[2].Slope {
		t.Errorf("roundtrip mismatch: %+v vs %+v", back, sum)
	}
	// Baseline plans summarize without models.
	base, err := BuildPlan(corpus, cl, nil, Config{Strategy: Stratified, Scheme: partitioner.Representative})
	if err != nil {
		t.Fatal(err)
	}
	bsum, err := base.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(bsum.Nodes) != 0 || bsum.PredictedMakespanSec != 0 {
		t.Errorf("baseline summary %+v", bsum)
	}
	// Nil plan rejected.
	var nilPlan *Plan
	if _, err := nilPlan.Summary(); err == nil {
		t.Error("nil plan summarized")
	}
	if _, err := ReadPlanSummary(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("bad JSON accepted")
	}
}

// TestDistStratifyDegradation: a failing distributed stratifier must
// not kill the plan — the pipeline falls back to the in-process
// stratifier and records the degradation for the operator.
func TestDistStratifyDegradation(t *testing.T) {
	corpus, cl := testSetup(t)
	cfg := Config{
		Strategy: Stratified,
		Scheme:   partitioner.Representative,
		Stratifier: strata.StratifierConfig{
			Cluster: strata.Config{K: 8, L: 3, Seed: 1},
		},
		DistStratify: func(pivots.Corpus, strata.StratifierConfig) (*strata.Stratification, error) {
			return nil, errors.New("store unreachable: all workers dead")
		},
	}
	plan, err := BuildPlan(corpus, cl, nil, cfg)
	if err != nil {
		t.Fatalf("BuildPlan with failing DistStratify: %v", err)
	}
	if !plan.DegradedStratify {
		t.Error("degradation not recorded on plan")
	}
	if plan.DegradedReason == "" {
		t.Error("degradation reason missing")
	}
	sum, err := plan.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.DegradedStratify || sum.DegradedReason == "" {
		t.Errorf("summary does not carry degradation: %+v", sum)
	}
	// The fallback result is the plain in-process stratification.
	want, err := strata.Stratify(corpus, cfg.Stratifier)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strat.K() != want.K() {
		t.Errorf("fallback stratification differs: K=%d want %d", plan.Strat.K(), want.K())
	}

	// A succeeding DistStratify is used as-is, with no degradation.
	calls := 0
	cfg.DistStratify = func(c pivots.Corpus, sc strata.StratifierConfig) (*strata.Stratification, error) {
		calls++
		return strata.Stratify(c, sc)
	}
	plan, err = BuildPlan(corpus, cl, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("DistStratify called %d times, want 1", calls)
	}
	if plan.DegradedStratify || plan.DegradedReason != "" {
		t.Error("healthy distributed path marked degraded")
	}
}
