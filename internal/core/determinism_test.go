package core

import (
	"reflect"
	"runtime"
	"testing"

	"pareto/internal/cluster"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/pivots"
)

// TestBuildPlanDeterministicAcrossWorkers is the tentpole's contract:
// the same corpus must yield byte-for-byte the same plan at every
// worker count — partition sizes, placements, and stratum membership
// all deep-equal. Run under -race in CI, this also shakes out data
// races in the parallel stages.
func TestBuildPlanDeterministicAcrossWorkers(t *testing.T) {
	cfg := datasets.TreebankLike(0.02) // ~1100 trees
	trees, _, err := datasets.GenerateTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.PaperCluster(4, energy.DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers int, parallelProfile bool) *Plan {
		t.Helper()
		corpus, err := pivots.NewTreeCorpusParallel(trees, workers)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{
			Strategy:        HetEnergyAware,
			Alpha:           0.999,
			SampleSeed:      7,
			Workers:         workers,
			ProfileParallel: parallelProfile,
		})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	ref := build(1, false)
	for _, w := range []int{4, runtime.NumCPU()} {
		got := build(w, true)
		if !reflect.DeepEqual(got.Sizes, ref.Sizes) {
			t.Errorf("workers=%d: Sizes = %v, want %v", w, got.Sizes, ref.Sizes)
		}
		if !reflect.DeepEqual(got.Assign.Parts, ref.Assign.Parts) {
			t.Errorf("workers=%d: Assign.Parts differ from workers=1", w)
		}
		if !reflect.DeepEqual(got.Strat.Members, ref.Strat.Members) {
			t.Errorf("workers=%d: stratum members differ from workers=1", w)
		}
		if got.CorpusWeight != ref.CorpusWeight {
			t.Errorf("workers=%d: CorpusWeight = %d, want %d", w, got.CorpusWeight, ref.CorpusWeight)
		}
	}
}

// BenchmarkBuildPlan runs the whole planning front-end — corpus
// construction through placement computation — on a 50k-record
// Treebank-shaped tree corpus, sequential (all parallel stages pinned
// to one worker) vs parallel (GOMAXPROCS workers).
func BenchmarkBuildPlan(b *testing.B) {
	cfg := datasets.TreebankLike(1)
	cfg.NumTrees = 50000
	trees, _, err := datasets.GenerateTrees(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.PaperCluster(8, energy.DefaultPanel(), 172, 48)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, workers int, parallelProfile bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			corpus, err := pivots.NewTreeCorpusParallel(trees, workers)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{
				Strategy:        HetEnergyAware,
				Alpha:           0.999,
				SampleSeed:      7,
				Workers:         workers,
				ProfileParallel: parallelProfile,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 1, false) })
	b.Run("par", func(b *testing.B) { run(b, 0, true) })
}
