package core

import (
	"testing"

	"pareto/internal/frontier"
)

func TestFrontierFromPlan(t *testing.T) {
	corpus, cl := testSetup(t)
	plan, err := BuildPlan(corpus, cl, linearProfile(corpus), Config{
		Strategy: HetEnergyAware,
		Alpha:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes, total, err := plan.FrontierModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != cl.P() {
		t.Fatalf("%d models for %d nodes", len(nodes), cl.P())
	}
	wantTotal := 0
	for _, s := range plan.Sizes {
		wantTotal += s
	}
	if total != wantTotal {
		t.Fatalf("total %d, want Σsizes %d", total, wantTotal)
	}

	res, err := FrontierFromPlan(plan, frontier.Config{Alphas: frontier.UniformAlphas(9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("frontier has %d points", len(res.Points))
	}
	// The built plan's α must land on (or between) frontier samples: its
	// makespan can't beat the pure-time end, nor its dirty energy the
	// pure-energy end.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if plan.Optimized.DirtyEnergy < first.DirtyEnergy-1e-6 {
		t.Errorf("plan dirty energy %v beats the α=0 frontier end %v",
			plan.Optimized.DirtyEnergy, first.DirtyEnergy)
	}
	if plan.Optimized.Makespan < last.Makespan-1e-9 {
		t.Errorf("plan makespan %v beats the α=1 frontier end %v",
			plan.Optimized.Makespan, last.Makespan)
	}
}

func TestFrontierFromPlanBaseline(t *testing.T) {
	corpus, cl := testSetup(t)
	plan, err := BuildPlan(corpus, cl, nil, Config{Strategy: Stratified})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FrontierFromPlan(plan, frontier.Config{}); err == nil {
		t.Fatal("baseline plan has no models; FrontierFromPlan must refuse")
	}
	var nilPlan *Plan
	if _, _, err := nilPlan.FrontierModels(); err == nil {
		t.Fatal("nil plan accepted")
	}
}
