package replan

import (
	"bytes"
	"testing"

	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

func smallTextCorpus(t *testing.T, n int) *pivots.TextCorpus {
	t.Helper()
	docs := make([]pivots.Doc, n)
	for i := range docs {
		docs[i] = pivots.Doc{Terms: []uint32{uint32(i), uint32(i + n), uint32(i + 2*n)}}
	}
	c, err := pivots.NewTextCorpus(docs, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDynamicCorpusIndexing(t *testing.T) {
	base := smallTextCorpus(t, 10)
	dyn, err := NewDynamicCorpus(base)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Kind() != pivots.TextData || dyn.Len() != 10 {
		t.Fatalf("fresh dynamic corpus: kind %v len %d", dyn.Kind(), dyn.Len())
	}
	raw := base.AppendRecord(nil, 3)
	idx, err := dyn.Append([]sketch.Item{7, 8, 9}, 3, raw)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 10 {
		t.Errorf("first append got index %d, want 10", idx)
	}
	if dyn.Len() != 11 || dyn.Appended() != 1 {
		t.Errorf("len %d appended %d", dyn.Len(), dyn.Appended())
	}
	// Base indices are untouched; the appended index serves its own data.
	if got := dyn.ItemSet(3); len(got) != 3 || got[0] != base.ItemSet(3)[0] {
		t.Error("base item set changed")
	}
	if got := dyn.ItemSet(10); len(got) != 3 || got[0] != 7 {
		t.Errorf("appended item set %v", got)
	}
	if dyn.Weight(10) != 3 || dyn.Weight(2) != base.Weight(2) {
		t.Error("weight dispatch wrong")
	}
	// Raw wire bytes pass through verbatim.
	if !bytes.Equal(dyn.AppendRecord(nil, 10), raw) {
		t.Error("raw record not passed through verbatim")
	}
	if !bytes.Equal(dyn.AppendRecord(nil, 3), base.AppendRecord(nil, 3)) {
		t.Error("base record changed")
	}
}

func TestDynamicCorpusOpaqueFallback(t *testing.T) {
	base := smallTextCorpus(t, 4)
	dyn, err := NewDynamicCorpus(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.Append([]sketch.Item{1, 2}, 5, nil); err != nil {
		t.Fatal(err)
	}
	// The opaque record must stay self-delimiting: a store splitting a
	// concatenation of records must recover exactly this record.
	rec := dyn.AppendRecord(nil, 4)
	if len(rec) != 4+16 {
		t.Fatalf("opaque record is %d bytes, want 20", len(rec))
	}
	if got := uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24; got != 16 {
		t.Errorf("opaque payload header %d, want 16", got)
	}
}

func TestDynamicCorpusValidation(t *testing.T) {
	if _, err := NewDynamicCorpus(nil); err == nil {
		t.Error("nil base accepted")
	}
	base := smallTextCorpus(t, 3)
	dyn, _ := NewDynamicCorpus(base)
	if _, err := dyn.Append(nil, 1, nil); err == nil {
		t.Error("empty pivot set accepted")
	}
	if _, err := dyn.Append([]sketch.Item{1}, -1, nil); err == nil {
		t.Error("negative weight accepted")
	}
}
