package replan

import (
	"sort"
	"testing"

	"pareto/internal/core"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/strata"
)

const (
	benchRecords = 50_000
	benchTopics  = 32
	benchWindow  = 64 // per-topic vocabulary window
	benchTerms   = 12 // terms per document
	benchBatch   = 100 // records ingested between cycles
)

// benchCorpus builds a deterministic topic-blocked text corpus: doc i
// belongs to topic i%benchTopics and draws benchTerms terms from a
// sliding window inside that topic's vocabulary block, so k-modes
// recovers the topics as strata and a batch of identical alien records
// dirties exactly one of them.
func benchCorpus(b testing.TB, n int) *pivots.TextCorpus {
	b.Helper()
	docs := make([]pivots.Doc, n)
	for i := range docs {
		topic := i % benchTopics
		terms := make([]uint32, benchTerms)
		for k := range terms {
			terms[k] = uint32(topic*benchWindow + (i/benchTopics+k)%benchWindow)
		}
		sort.Slice(terms, func(a, c int) bool { return terms[a] < terms[c] })
		docs[i] = pivots.Doc{Terms: terms}
	}
	c, err := pivots.NewTextCorpus(docs, benchTopics*benchWindow)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchCoreConfig() core.Config {
	return core.Config{
		Strategy: core.HetEnergyAware,
		Alpha:    0.999,
		Scheme:   partitioner.Representative,
		Stratifier: strata.StratifierConfig{
			SketchWidth: 24,
			Cluster:     strata.Config{K: benchTopics, L: 3, Seed: 7},
			Seed:        5,
		},
		SampleSeed: 3,
	}
}

func benchLoop(b *testing.B, threshold float64) *Loop {
	b.Helper()
	base := benchCorpus(b, benchRecords)
	l, err := New(base, paperCluster(b, 4), affineProfile(), Config{
		Core:  benchCoreConfig(),
		Drift: strata.DriftConfig{Threshold: threshold},
	})
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// benchIngest appends one batch of identical alien records — all land
// in the same stratum, so well under 10% of the strata drift.
func benchIngest(b *testing.B, l *Loop, gen int) {
	b.Helper()
	items := alienItems(gen, 6)
	for i := 0; i < benchBatch; i++ {
		if _, err := l.Ingest(items, len(items), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplanIncremental measures one drift-driven incremental
// cycle at 50k records with <10% of strata dirty: only the drifted
// stratum re-clusters, profiling reuses the memo, and the LP re-solves
// from the previous basis. Ingest happens outside the timer.
func BenchmarkReplanIncremental(b *testing.B) {
	// A 100-record batch against a ~19k-weight stratum dilutes coverage
	// by ~1.6e-4, so this threshold trips on the drifted stratum only.
	l := benchLoop(b, 5e-5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchIngest(b, l, i+1)
		b.StartTimer()
		rep, err := l.Cycle()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Kind != CycleIncremental {
			b.Fatalf("cycle %d: kind %v, want incremental", i, rep.Kind)
		}
		if 10*len(rep.Dirty) >= l.Tracker().K() {
			b.Fatalf("cycle %d: %d/%d strata dirty, want <10%%", i, len(rep.Dirty), l.Tracker().K())
		}
	}
}

// BenchmarkReplanFull is the baseline the incremental path is measured
// against: the same drift pattern, but with Threshold 0 every stratum
// is always dirty, so each cycle is a cold full core.BuildPlan over
// the whole corpus.
func BenchmarkReplanFull(b *testing.B) {
	l := benchLoop(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchIngest(b, l, i+1)
		b.StartTimer()
		rep, err := l.Cycle()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Kind != CycleFull {
			b.Fatalf("cycle %d: kind %v, want full", i, rep.Kind)
		}
	}
}
