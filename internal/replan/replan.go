package replan

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/frontier"
	"pareto/internal/lp"
	"pareto/internal/opt"
	"pareto/internal/parallel"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/sampling"
	"pareto/internal/sketch"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// Config assembles the control loop's knobs around a core pipeline
// configuration.
type Config struct {
	// Core configures the underlying planning pipeline. Normalized and
	// DistStratify are rejected: the incremental re-solve models the
	// plain scalarized LP, and the loop owns stratification.
	Core core.Config
	// Drift configures the per-stratum drift statistic; its Threshold
	// decides when a stratum is dirty. Threshold 0 marks every stratum
	// dirty on any traffic — every cycle is a full replan.
	Drift strata.DriftConfig
	// MaxMovesPerCycle bounds how many already-placed records one cycle
	// may migrate; leftover moves carry into the next cycle. Placements
	// of newly ingested records are not migrations and are never
	// deferred. 0 means unlimited.
	MaxMovesPerCycle int
	// Store, when non-nil, is the base partition store the loop
	// migrates data through. It is wrapped in an EpochStore so a failed
	// migration never tears the readable state.
	Store partitioner.Store
	// FrontierCache, when non-nil, is invalidated whenever a cycle
	// installs new models, so cached enumerations never outlive the
	// plan they came from.
	FrontierCache *frontier.Cache
	// Telemetry receives the replan_* counters, gauges and the cycle
	// latency histogram.
	Telemetry *telemetry.Registry
}

// CycleKind classifies what one control cycle did.
type CycleKind int

// Cycle kinds.
const (
	// CycleClean re-planned nothing: no stratum was dirty. The cycle
	// still places pending ingests and drains deferred moves.
	CycleClean CycleKind = iota
	// CycleIncremental re-stratified only the dirty strata, re-profiled
	// stale samples and re-solved the LP warm.
	CycleIncremental
	// CycleFull re-ran the whole pipeline: every stratum was dirty, so
	// the cycle is by definition a cold full replan.
	CycleFull
)

// String names the kind.
func (k CycleKind) String() string {
	switch k {
	case CycleClean:
		return "clean"
	case CycleIncremental:
		return "incremental"
	case CycleFull:
		return "full"
	default:
		return fmt.Sprintf("CycleKind(%d)", int(k))
	}
}

// CycleReport describes one executed cycle.
type CycleReport struct {
	// Kind is the replanning path taken.
	Kind CycleKind
	// Dirty lists the strata whose drift crossed the threshold at the
	// start of the cycle, ascending.
	Dirty []int
	// LPSolved is true when the cycle ran the sizing LP; LPWarm is true
	// when that solve re-priced the retained basis instead of running
	// two-phase simplex from scratch.
	LPSolved bool
	LPWarm   bool
	// ProfileRuns counts profile-function evaluations this cycle;
	// ProfileCacheHits counts sample sizes whose cost was reused from a
	// previous cycle because the drawn sample was identical.
	ProfileRuns      int
	ProfileCacheHits int
	// Placements counts newly ingested records placed this cycle.
	Placements int
	// MovesApplied/MovesDeferred split the migration of already-placed
	// records against MaxMovesPerCycle.
	MovesApplied  int
	MovesDeferred int
	// Converged is true when the live placement reached the installed
	// target this cycle (no deferred moves remain).
	Converged bool
	// Elapsed is the cycle's wall-clock time.
	Elapsed time.Duration
}

type costKey struct {
	size int
	hash uint64
}

// maxCostCache bounds the profile-cost memo; past it the memo resets
// wholesale (entries are only ever reused across adjacent cycles, so a
// reset costs at most one ladder of re-profiles).
const maxCostCache = 1024

// Loop is the online replanning control loop. It is not safe for
// concurrent use: one goroutine owns ingest and cycles, which is the
// deployment shape (a single controller per cluster).
type Loop struct {
	cfg     Config
	cl      *cluster.Cluster
	profile core.ProfileFunc
	corpus  *DynamicCorpus
	hasher  *sketch.Hasher
	reg     *telemetry.Registry
	alpha   float64
	k       int
	p       int

	plan    *core.Plan
	st      *strata.Stratification
	tracker *strata.DriftTracker

	solver *lp.Solver
	shares []float64

	actual  *partitioner.Assignment
	target  *partitioner.Assignment
	targetN int
	pending []int
	store   *EpochStore

	lastSizes []int
	lastN     int

	rates        []float64
	costCache    map[costKey]float64
	corpusWeight int
}

// New builds the initial plan cold (a full core.BuildPlan over the base
// corpus), places it into cfg.Store when one is given, and returns a
// loop ready to ingest drifting traffic.
func New(base pivots.Corpus, cl *cluster.Cluster, profile core.ProfileFunc, cfg Config) (*Loop, error) {
	if cfg.Core.Normalized {
		return nil, errors.New("replan: Normalized objectives are not supported (the warm re-solve models the plain scalarized LP)")
	}
	if cfg.Core.DistStratify != nil {
		return nil, errors.New("replan: DistStratify is not supported; the loop owns stratification")
	}
	if cfg.MaxMovesPerCycle < 0 {
		return nil, fmt.Errorf("replan: negative MaxMovesPerCycle %d", cfg.MaxMovesPerCycle)
	}
	if cfg.Drift.Threshold < 0 {
		return nil, fmt.Errorf("replan: negative drift threshold %v", cfg.Drift.Threshold)
	}
	if cl == nil || cl.P() == 0 {
		return nil, errors.New("replan: empty cluster")
	}
	corpus, err := NewDynamicCorpus(base)
	if err != nil {
		return nil, err
	}
	// Freeze the stratifier geometry BuildPlan would otherwise default
	// per call: the loop's K must not drift as the corpus grows.
	p := cl.P()
	if cfg.Core.Stratifier.Cluster.K == 0 {
		cfg.Core.Stratifier.Cluster.K = min(4*p, base.Len())
	}
	if cfg.Core.Stratifier.Cluster.L == 0 {
		cfg.Core.Stratifier.Cluster.L = 3
	}
	if cfg.Core.Stratifier.Cluster.Workers == 0 {
		cfg.Core.Stratifier.Cluster.Workers = cfg.Core.Workers
	}
	width := cfg.Core.Stratifier.SketchWidth
	if width <= 0 {
		width = strata.DefaultSketchWidth
	}
	hasher, err := sketch.NewHasher(width, cfg.Core.Stratifier.Seed)
	if err != nil {
		return nil, fmt.Errorf("replan: %w", err)
	}
	alpha := 1.0
	if cfg.Core.Strategy == core.HetEnergyAware {
		alpha = cfg.Core.Alpha
		if alpha <= 0 || alpha >= 1 {
			return nil, fmt.Errorf("replan: Het-Energy-Aware needs alpha in (0,1), got %v", alpha)
		}
	}
	window := cfg.Core.Window
	if window <= 0 {
		window = 3600
	}

	l := &Loop{
		cfg: cfg, cl: cl, profile: profile, corpus: corpus,
		hasher: hasher, reg: cfg.Telemetry, alpha: alpha, p: p,
		rates:     cl.DirtyRates(cfg.Core.TraceOffset, window),
		costCache: make(map[costKey]float64),
	}
	plan, err := core.BuildPlan(corpus, cl, profile, cfg.Core)
	if err != nil {
		return nil, err
	}
	if err := l.installFull(plan); err != nil {
		return nil, err
	}
	l.k = l.tracker.K()
	l.actual = &partitioner.Assignment{Parts: make([][]int, p)}
	if cfg.Store != nil {
		if l.store, err = NewEpochStore(cfg.Store, p); err != nil {
			return nil, err
		}
	}
	// Initial placement: every record is a placement, no migrations.
	if _, err := l.migrate(nil); err != nil {
		return nil, err
	}
	return l, nil
}

// installFull adopts a freshly built full plan: new stratification, new
// drift tracker, no retained LP basis (the next incremental cycle
// rebuilds one cold).
func (l *Loop) installFull(plan *core.Plan) error {
	tracker, err := strata.NewDriftTracker(plan.Strat, l.cfg.Drift)
	if err != nil {
		return err
	}
	l.plan = plan
	l.st = plan.Strat
	l.tracker = tracker
	l.solver = nil
	l.shares = nil
	if plan.Optimized != nil {
		n := float64(l.corpus.Len())
		l.shares = make([]float64, l.p)
		for i, x := range plan.Optimized.X[:l.p] {
			l.shares[i] = x / n
		}
	}
	l.target = plan.Assign
	l.targetN = l.corpus.Len()
	l.lastSizes = append([]int(nil), plan.Sizes...)
	l.lastN = l.corpus.Len()
	l.corpusWeight = plan.CorpusWeight
	l.cfg.FrontierCache.Invalidate()
	return nil
}

// Ingest admits one record into the live corpus: it is sketched with
// the stratifier's hash family, assigned to its nearest frozen stratum
// (feeding the drift statistic), and queued for placement on the next
// cycle. raw, when non-nil, is the record's length-prefixed wire form
// (see DynamicCorpus.Append). Returns the stratum the record joined.
func (l *Loop) Ingest(items []sketch.Item, weight int, raw []byte) (int, error) {
	sk := l.hasher.Sketch(items)
	stratum, _, err := l.tracker.Ingest(sk)
	if err != nil {
		return 0, err
	}
	idx, err := l.corpus.Append(items, weight, raw)
	if err != nil {
		return 0, err
	}
	l.st.Assign = append(l.st.Assign, stratum)
	l.st.Members[stratum] = append(l.st.Members[stratum], idx)
	l.st.Sketches = append(l.st.Sketches, sk)
	l.st.WeightTotals[stratum] += weight
	l.corpusWeight += weight
	l.pending = append(l.pending, idx)
	l.reg.Counter("replan_ingested_total").Inc()
	return stratum, nil
}

// Cycle runs one control iteration: classify drift, re-plan along the
// cheapest valid path, and migrate toward the installed target under
// the move budget. On a migration write failure the previous placement
// stays fully readable (commit-or-abort cutover) and the next cycle
// resumes the same moves.
func (l *Loop) Cycle() (*CycleReport, error) {
	t0 := time.Now()
	n := l.corpus.Len()
	dirty := l.tracker.DirtyStrata()
	rep := &CycleReport{Dirty: dirty}

	switch {
	case len(dirty) == l.k:
		// Every stratum drifted: an incremental pass would redo all the
		// work anyway, so this IS a cold full replan — bit-identical to
		// core.BuildPlan by construction.
		rep.Kind = CycleFull
		plan, err := core.BuildPlan(l.corpus, l.cl, l.profile, l.cfg.Core)
		if err != nil {
			return nil, err
		}
		if err := l.installFull(plan); err != nil {
			return nil, err
		}
	case len(dirty) > 0:
		rep.Kind = CycleIncremental
		if err := l.replanIncremental(n, dirty, rep); err != nil {
			return nil, err
		}
	default:
		rep.Kind = CycleClean
		if l.targetN != n {
			// Ingests arrived since the target was installed: extend it
			// at the current sizing without re-planning.
			if err := l.retarget(l.sizesFor(n), n); err != nil {
				return nil, err
			}
		}
	}

	applied, err := l.migrate(rep)
	if err != nil {
		l.reg.Counter("replan_migration_aborts_total").Inc()
		return nil, err
	}
	_ = applied
	rep.Converged = rep.MovesDeferred == 0
	rep.Elapsed = time.Since(t0)

	reg := l.reg
	reg.Counter("replan_cycles_total").Inc()
	reg.Counter("replan_cycles_" + rep.Kind.String() + "_total").Inc()
	reg.Gauge("replan_dirty_strata").Set(int64(len(dirty)))
	reg.Counter("replan_dirty_strata_total").Add(int64(len(dirty)))
	reg.Counter("replan_placements_total").Add(int64(rep.Placements))
	reg.Counter("replan_moves_applied_total").Add(int64(rep.MovesApplied))
	reg.Counter("replan_moves_deferred_total").Add(int64(rep.MovesDeferred))
	if reg != nil {
		reg.Histogram("replan_cycle_ns", telemetry.WideLatencyBuckets()).Observe(rep.Elapsed.Nanoseconds())
	}
	return rep, nil
}

// replanIncremental runs the dirty-strata path: sub-cluster only the
// drifted strata, re-profile only stale samples, re-solve the LP warm,
// and install a minimal-movement target.
func (l *Loop) replanIncremental(n int, dirty []int, rep *CycleReport) error {
	if err := l.restratify(dirty); err != nil {
		return err
	}
	var sizes []int
	if l.cfg.Core.Strategy == core.Stratified {
		sizes = partitioner.EqualSizes(n, l.p)
		l.plan.Strat = l.st
		l.plan.Sizes = sizes
	} else {
		models, err := l.reprofile(n, rep)
		if err != nil {
			return err
		}
		sol, err := l.resolveLP(models, n)
		if err != nil {
			return err
		}
		rep.LPSolved = true
		rep.LPWarm = sol.Warm
		if sol.Warm {
			l.reg.Counter("replan_lp_warm_total").Inc()
		} else {
			l.reg.Counter("replan_lp_cold_total").Inc()
		}
		x := opt.UnitsFromShares(sol.X[:l.p], n)
		oplan := opt.PlanFromX(models, n, l.alpha, x)
		l.shares = append([]float64(nil), sol.X[:l.p]...)
		sizes = oplan.Sizes
		l.plan = &core.Plan{
			Strategy: l.cfg.Core.Strategy, Alpha: l.alpha,
			Strat: l.st, Models: models, Sizes: sizes, Optimized: oplan,
			Scheme: l.cfg.Core.Scheme, CorpusWeight: l.corpusWeight,
		}
	}
	if err := l.retarget(sizes, n); err != nil {
		return err
	}
	l.plan.Assign = l.target
	l.lastSizes = append(l.lastSizes[:0], sizes...)
	l.lastN = n
	if err := l.tracker.Reset(l.st, dirty); err != nil {
		return err
	}
	l.cfg.FrontierCache.Invalidate()
	return nil
}

// restratify re-clusters only the dirty strata: their members (old and
// newly ingested) are sub-clustered into |dirty| fresh strata with the
// stratifier's own configuration; clean strata keep sketches, centers
// and members verbatim.
func (l *Loop) restratify(dirty []int) error {
	var recs []int
	for _, s := range dirty {
		recs = append(recs, l.st.Members[s]...)
	}
	if len(recs) == 0 {
		return nil
	}
	sort.Ints(recs)
	sub := l.cfg.Core.Stratifier.Cluster
	sub.K = min(len(dirty), len(recs))
	sketches := make([]sketch.Sketch, len(recs))
	for i, r := range recs {
		sketches[i] = l.st.Sketches[r]
	}
	res, err := strata.Cluster(sketches, sub)
	if err != nil {
		return fmt.Errorf("replan: re-stratifying %d dirty strata: %w", len(dirty), err)
	}
	for ci, s := range dirty {
		if ci < res.K() {
			mem := make([]int, len(res.Members[ci]))
			for i, li := range res.Members[ci] {
				mem[i] = recs[li]
			}
			l.st.Members[s] = mem
			l.st.Centers[s] = res.Centers[ci]
		} else {
			// More dirty strata than distinct members: the leftovers
			// empty out (their old centers stay as reseed points).
			l.st.Members[s] = nil
		}
		wt := 0
		for _, r := range l.st.Members[s] {
			l.st.Assign[r] = s
			wt += l.corpus.Weight(r)
		}
		l.st.WeightTotals[s] = wt
	}
	return nil
}

// reprofile rebuilds the node models for the current membership,
// re-running the profile function only for sample sizes whose drawn
// sample actually changed; unchanged samples reuse the memoized cost,
// and the trace-derived dirty rates (fixed offset and window) are
// computed once at construction. This is the "only affected
// (workload, node) pairs" economy: the workload axis is pruned by the
// sample memo, the node axis by the rate cache — the per-node
// least-squares fit itself is trivial.
func (l *Loop) reprofile(n int, rep *CycleReport) ([]opt.NodeModel, error) {
	cfg := l.cfg.Core
	minFrac, maxFrac, steps := cfg.ProfileMinFrac, cfg.ProfileMaxFrac, cfg.ProfileSteps
	if minFrac == 0 {
		minFrac = sampling.DefaultMinFrac
	}
	if maxFrac == 0 {
		maxFrac = sampling.DefaultMaxFrac
	}
	if steps == 0 {
		steps = sampling.DefaultSteps
	}
	sizes, err := sampling.ScheduleWithFloor(n, minFrac, maxFrac, steps, cfg.ProfileMinRecords)
	if err != nil {
		return nil, fmt.Errorf("replan: profiling schedule: %w", err)
	}
	if len(l.costCache) > maxCostCache {
		clear(l.costCache)
	}
	costBySize := make(map[int]float64, len(sizes))
	for _, s := range sizes {
		if _, ok := costBySize[s]; ok {
			continue
		}
		idx, err := strata.StratifiedSample(l.st.Members, s, cfg.SampleSeed+int64(s))
		if err != nil {
			return nil, fmt.Errorf("replan: sampling %d records: %w", s, err)
		}
		key := costKey{size: s, hash: hashSample(idx)}
		if c, ok := l.costCache[key]; ok {
			rep.ProfileCacheHits++
			l.reg.Counter("replan_profile_cache_hits_total").Inc()
			costBySize[s] = c
			continue
		}
		c, err := l.profile(idx)
		if err != nil {
			return nil, fmt.Errorf("replan: profiling sample of %d: %w", s, err)
		}
		rep.ProfileRuns++
		l.reg.Counter("replan_profile_cache_misses_total").Inc()
		l.costCache[key] = c
		costBySize[s] = c
	}
	models, err := l.cl.ProfileAllWithRates(sizes, func(sz int) (float64, error) {
		c, ok := costBySize[sz]
		if !ok {
			return 0, fmt.Errorf("replan: no cached cost for sample size %d", sz)
		}
		return c, nil
	}, l.rates)
	if err != nil {
		return nil, fmt.Errorf("replan: fitting node models: %w", err)
	}
	return models, nil
}

// hashSample fingerprints a drawn sample (FNV-1a over the indices); the
// cost memo keys on (size, fingerprint) so a hash collision would also
// need an exact size match to alias.
func hashSample(idx []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, i := range idx {
		v := uint64(i)
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// consFor mirrors BuildPlan's optimize-stage constraint derivation at
// the current corpus size. Whether floors exist is size-independent
// (either MinPartitionFrac or MinPartitionRecords is set, or neither),
// so the LP's row layout is stable across cycles — the property
// SizingUpdates requires.
func (l *Loop) consFor(n int) opt.Constraints {
	cons := opt.Constraints{}
	if f := l.cfg.Core.MinPartitionFrac; f > 0 {
		cons.MinSize = f * float64(n) / float64(l.p)
	}
	if r := l.cfg.Core.MinPartitionRecords; r > cons.MinSize {
		cons.MinSize = r
	}
	return cons
}

// resolveLP solves the sizing LP at the freshly fitted models: warm
// from the retained basis when one exists (re-pricing it against the
// new coefficients via ReSolveModel, which itself falls back cold if
// the basis went infeasible), cold otherwise.
func (l *Loop) resolveLP(models []opt.NodeModel, n int) (*lp.Solution, error) {
	cons := l.consFor(n)
	if cap := float64(n) / float64(l.p); cons.MinSize > cap {
		cons.MinSize = cap
	}
	if l.solver == nil {
		prob, err := opt.SizingLP(models, n, l.alpha, cons)
		if err != nil {
			return nil, fmt.Errorf("replan: %w", err)
		}
		l.solver = prob.NewSolver()
		sol, err := l.solver.Solve()
		if err != nil {
			l.solver = nil
			return nil, fmt.Errorf("replan: sizing LP: %w", err)
		}
		return sol, nil
	}
	obj := opt.SizingObjective(models, n, l.alpha)
	ups := opt.SizingUpdates(models, n, cons)
	sol, err := l.solver.ReSolveModel(obj, ups)
	if err != nil {
		l.solver = nil
		return nil, fmt.Errorf("replan: sizing LP re-solve: %w", err)
	}
	return sol, nil
}

// sizesFor returns target partition sizes for a corpus of n records
// without re-planning: the installed sizes when n is unchanged,
// otherwise the installed shares scaled to n (equal sizes for the
// Stratified baseline).
func (l *Loop) sizesFor(n int) []int {
	if n == l.lastN {
		return append([]int(nil), l.lastSizes...)
	}
	if l.shares == nil {
		return partitioner.EqualSizes(n, l.p)
	}
	units := make([]float64, l.p)
	for i, s := range l.shares {
		units[i] = s * float64(n)
	}
	return opt.RoundToTotal(units, n)
}

// retarget installs a minimal-movement target for the given sizes: the
// live assignment extended with pending ingests (placed into deficit
// partitions), rebalanced to the new sizes.
func (l *Loop) retarget(sizes []int, n int) error {
	extended := &partitioner.Assignment{Parts: make([][]int, l.p)}
	for j, part := range l.actual.Parts {
		extended.Parts[j] = append([]int(nil), part...)
	}
	j := 0
	for _, r := range l.pending {
		for j < l.p && len(extended.Parts[j]) >= sizes[j] {
			j++
		}
		if j == l.p {
			return fmt.Errorf("replan: no deficit partition for pending record %d", r)
		}
		extended.Parts[j] = append(extended.Parts[j], r)
	}
	out, _, err := partitioner.Rebalance(extended, sizes)
	if err != nil {
		return fmt.Errorf("replan: %w", err)
	}
	l.target = out
	l.targetN = n
	return nil
}

// diffMoves computes the migration from the live placement to the
// target: placements for records not placed anywhere yet (From = -1)
// and moves for records whose partition changes. Emission order is
// deterministic — target partitions ascending, records in target
// order — which is the order the move budget truncates in.
func diffMoves(actual, target *partitioner.Assignment, n int) (placements, moves []partitioner.Move) {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = -1
	}
	for j, part := range actual.Parts {
		for _, r := range part {
			cur[r] = j
		}
	}
	for j, part := range target.Parts {
		for _, r := range part {
			switch c := cur[r]; {
			case c == j:
			case c < 0:
				placements = append(placements, partitioner.Move{Record: r, From: -1, To: j})
			default:
				moves = append(moves, partitioner.Move{Record: r, From: c, To: j})
			}
		}
	}
	return placements, moves
}

// applyOps materializes the post-migration assignment: moved records
// are filtered out of their sources and appended (with placements) to
// their destinations; untouched partitions share their backing slices
// with the previous assignment. Returns the affected partition set.
func applyOps(actual *partitioner.Assignment, ops []partitioner.Move) (*partitioner.Assignment, map[int]struct{}) {
	affected := make(map[int]struct{})
	leaving := make(map[int]map[int]struct{})
	arriving := make(map[int][]int)
	for _, mv := range ops {
		affected[mv.To] = struct{}{}
		arriving[mv.To] = append(arriving[mv.To], mv.Record)
		if mv.From >= 0 {
			affected[mv.From] = struct{}{}
			if leaving[mv.From] == nil {
				leaving[mv.From] = make(map[int]struct{})
			}
			leaving[mv.From][mv.Record] = struct{}{}
		}
	}
	next := &partitioner.Assignment{Parts: make([][]int, actual.P())}
	for j, part := range actual.Parts {
		if _, ok := affected[j]; !ok {
			next.Parts[j] = part
			continue
		}
		out := make([]int, 0, len(part)+len(arriving[j]))
		gone := leaving[j]
		for _, r := range part {
			if _, g := gone[r]; !g {
				out = append(out, r)
			}
		}
		next.Parts[j] = append(out, arriving[j]...)
	}
	return next, affected
}

// migrate moves the live placement toward the installed target under
// the move budget and, when a store is configured, rewrites every
// affected partition through an epoch transaction: all staged writes
// must succeed before any becomes visible. rep may be nil (initial
// placement at construction).
func (l *Loop) migrate(rep *CycleReport) (int, error) {
	n := l.corpus.Len()
	placements, moves := diffMoves(l.actual, l.target, n)
	applied := moves
	if b := l.cfg.MaxMovesPerCycle; b > 0 && len(moves) > b {
		applied = moves[:b]
	}
	if rep != nil {
		rep.Placements = len(placements)
		rep.MovesApplied = len(applied)
		rep.MovesDeferred = len(moves) - len(applied)
	}
	ops := append(append([]partitioner.Move(nil), placements...), applied...)
	if len(ops) == 0 {
		return 0, nil
	}
	next, affected := applyOps(l.actual, ops)
	if l.store != nil {
		if err := l.writeAffected(next, affected); err != nil {
			return 0, err
		}
	}
	l.actual = next
	l.pending = nil
	return len(applied), nil
}

// writeAffected stages every affected partition's new contents at the
// next epoch — grouped by the store's write groups, groups in parallel,
// each group's writes sequential — and commits only if all writes
// succeeded. On error nothing is committed: reads keep serving the
// previous epoch and the caller's assignment stays unchanged.
func (l *Loop) writeAffected(next *partitioner.Assignment, affected map[int]struct{}) error {
	parts := make([]int, 0, len(affected))
	for j := range affected {
		parts = append(parts, j)
	}
	sort.Ints(parts)
	groupIdx := make(map[int]int)
	var groups [][]int
	for _, j := range parts {
		g := l.store.WriteGroup(j)
		gi, ok := groupIdx[g]
		if !ok {
			gi = len(groups)
			groupIdx[g] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], j)
	}
	txn := l.store.Begin()
	_, err := parallel.ForErr(len(groups), l.cfg.Core.Workers, func(lo, hi int) error {
		for gi := lo; gi < hi; gi++ {
			for _, j := range groups[gi] {
				records := make([][]byte, len(next.Parts[j]))
				for i, r := range next.Parts[j] {
					records[i] = l.corpus.AppendRecord(nil, r)
				}
				if err := txn.Write(j, records); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	txn.Commit()
	return nil
}

// Plan returns the currently installed plan. The stratification it
// references is live — Ingest extends it in place.
func (l *Loop) Plan() *core.Plan { return l.plan }

// Actual returns the live (committed) placement. Read-only.
func (l *Loop) Actual() *partitioner.Assignment { return l.actual }

// Target returns the installed target placement. Read-only.
func (l *Loop) Target() *partitioner.Assignment { return l.target }

// Store returns the epoch store the loop migrates through (nil when no
// base store was configured).
func (l *Loop) Store() *EpochStore { return l.store }

// Tracker exposes the drift tracker (for inspection; mutating it
// corrupts the loop).
func (l *Loop) Tracker() *strata.DriftTracker { return l.tracker }

// Pending returns how many ingested records await placement.
func (l *Loop) Pending() int { return len(l.pending) }

// Len returns the live corpus size.
func (l *Loop) Len() int { return l.corpus.Len() }

// Corpus returns the live corpus (frozen base plus ingested records),
// e.g. for anchoring a cold core.BuildPlan against the loop's state.
func (l *Loop) Corpus() pivots.Corpus { return l.corpus }
