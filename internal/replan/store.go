package replan

import (
	"errors"
	"fmt"
	"sync"

	"pareto/internal/partitioner"
)

// EpochStore layers commit-or-abort cutover on any partitioner.Store.
// Each logical partition j is stored under epoch-addressed ids
// (epoch·p + j in the base store); reads always serve the last
// committed epoch. A migration stages every affected partition at its
// next epoch and flips the committed pointers only after all staged
// writes succeeded — a write failure (dead worker, partitioned network)
// leaves every partition readable at its previous epoch, with no
// partial cutover.
//
// The epoch pointers live in memory: the store's crash-consistency is
// that of its base (a restarted process re-places from the plan), but a
// failed migration within a live process can never tear the data plane.
type EpochStore struct {
	base partitioner.Store
	p    int

	mu    sync.Mutex
	epoch []int // committed epoch per partition, -1 = never placed
}

// NewEpochStore wraps base with epoch-addressed cutover over p logical
// partitions.
func NewEpochStore(base partitioner.Store, p int) (*EpochStore, error) {
	if base == nil {
		return nil, errors.New("replan: nil base store")
	}
	if p <= 0 {
		return nil, fmt.Errorf("replan: epoch store needs p ≥ 1, got %d", p)
	}
	epoch := make([]int, p)
	for j := range epoch {
		epoch[j] = -1
	}
	return &EpochStore{base: base, p: p, epoch: epoch}, nil
}

// P returns the logical partition count.
func (s *EpochStore) P() int { return s.p }

// Epoch returns partition j's committed epoch (-1 before first commit).
func (s *EpochStore) Epoch(j int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch[j]
}

func (s *EpochStore) checkPart(j int) error {
	if j < 0 || j >= s.p {
		return fmt.Errorf("replan: partition %d out of [0,%d)", j, s.p)
	}
	return nil
}

// ReadPartition serves partition j at its committed epoch.
func (s *EpochStore) ReadPartition(j int) ([][]byte, error) {
	if err := s.checkPart(j); err != nil {
		return nil, err
	}
	s.mu.Lock()
	e := s.epoch[j]
	s.mu.Unlock()
	if e < 0 {
		return nil, fmt.Errorf("replan: partition %d not placed yet", j)
	}
	return s.base.ReadPartition(e*s.p + j)
}

// WritePartition stages and commits one partition in a single step —
// the degenerate one-partition transaction, making EpochStore itself a
// partitioner.Store.
func (s *EpochStore) WritePartition(j int, records [][]byte) error {
	txn := s.Begin()
	if err := txn.Write(j, records); err != nil {
		return err
	}
	txn.Commit()
	return nil
}

// WriteGroup implements partitioner.WriteGrouper by delegating to the
// base store's grouping of the id the next stage would write, so
// concurrent migrations respect the base's pipelining constraints
// (e.g. KVStore partitions sharing a client). A base without write
// groups isolates every partition.
func (s *EpochStore) WriteGroup(j int) int {
	s.mu.Lock()
	id := (s.epoch[j] + 1) * s.p + j
	s.mu.Unlock()
	if g, ok := s.base.(partitioner.WriteGrouper); ok {
		return g.WriteGroup(id)
	}
	return j
}

// Begin opens a migration transaction. Transactions are not concurrent
// with each other (one control loop drives the store), but a single
// transaction's Writes may run in parallel.
func (s *EpochStore) Begin() *EpochTxn {
	return &EpochTxn{s: s, staged: make(map[int]struct{})}
}

// EpochTxn stages partition writes at the next epoch. Write may be
// called concurrently; Commit must be called from one goroutine after
// every Write returned. Abandoning a transaction without Commit aborts
// it — staged data is simply never pointed at, and the next
// transaction's stages overwrite it.
type EpochTxn struct {
	s *EpochStore

	mu     sync.Mutex
	staged map[int]struct{}
}

// Write stages partition j's new contents at epoch[j]+1 in the base
// store. The committed epoch keeps serving reads until Commit.
func (t *EpochTxn) Write(j int, records [][]byte) error {
	if err := t.s.checkPart(j); err != nil {
		return err
	}
	t.s.mu.Lock()
	id := (t.s.epoch[j] + 1) * t.s.p + j
	t.s.mu.Unlock()
	if err := t.s.base.WritePartition(id, records); err != nil {
		return fmt.Errorf("replan: staging partition %d: %w", j, err)
	}
	t.mu.Lock()
	t.staged[j] = struct{}{}
	t.mu.Unlock()
	return nil
}

// Commit flips every staged partition to its new epoch. It never fails:
// the pointer flip is in-memory and atomic under the store lock.
func (t *EpochTxn) Commit() {
	t.s.mu.Lock()
	for j := range t.staged {
		t.s.epoch[j]++
	}
	t.s.mu.Unlock()
}
