package replan

import (
	"fmt"

	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

// DefaultTailWindow is the per-RPC batch size a Tailer reads with when
// Window is unset.
const DefaultTailWindow = 512

// Tailer feeds a Loop from a kvstore list that producers RPUSH wire
// records onto — the live half of the ingest path. Each list element is
// one length-prefixed record in the corpus kind's wire format; the
// Tailer decodes it to the same pivot set and weight the corresponding
// corpus type would derive, and hands the raw bytes through so
// migrated partitions carry the exact wire form.
type Tailer struct {
	// Client is the kvstore connection to poll.
	Client *kvstore.Client
	// Key is the list holding the record stream.
	Key string
	// Kind selects the wire codec (must match the loop's corpus kind).
	Kind pivots.Kind
	// Window is the per-RPC batch size (0 means DefaultTailWindow).
	Window int64

	cursor int64
}

// Cursor returns the index one past the last list element consumed.
func (t *Tailer) Cursor() int64 { return t.cursor }

// Poll reads every record appended to the list since the last poll and
// ingests each into the loop. Returns how many records were ingested.
// On a decode or ingest error the cursor stops before the bad element,
// so a retry re-reads it; on a transport error already-ingested records
// keep their cursor advance.
func (t *Tailer) Poll(l *Loop) (int, error) {
	if t.Client == nil {
		return 0, fmt.Errorf("replan: tailer has no client")
	}
	if l.corpus.Kind() != t.Kind {
		return 0, fmt.Errorf("replan: tailer decodes %v records but the loop's corpus is %v", t.Kind, l.corpus.Kind())
	}
	window := t.Window
	if window <= 0 {
		window = DefaultTailWindow
	}
	ingested := 0
	cur, err := t.Client.LRangeFrom(t.Key, t.cursor, window, func(batch [][]byte) error {
		for _, raw := range batch {
			items, weight, err := decodeRecord(t.Kind, raw)
			if err != nil {
				return err
			}
			if _, err := l.Ingest(items, weight, raw); err != nil {
				return err
			}
			ingested++
			t.cursor++
		}
		return nil
	})
	if err != nil {
		return ingested, err
	}
	t.cursor = cur
	return ingested, nil
}

// decodeRecord parses one wire record of the given kind into the pivot
// set and weight its corpus type would expose. The element must contain
// exactly one record.
func decodeRecord(kind pivots.Kind, raw []byte) ([]sketch.Item, int, error) {
	switch kind {
	case pivots.TreeData:
		tree, rest, err := pivots.DecodeTreeRecord(raw)
		if err != nil {
			return nil, 0, err
		}
		if len(rest) != 0 {
			return nil, 0, fmt.Errorf("replan: %d trailing bytes after tree record", len(rest))
		}
		return tree.Pivots(), tree.NumNodes(), nil
	case pivots.GraphData:
		_, nbrs, rest, err := pivots.DecodeGraphRecord(raw)
		if err != nil {
			return nil, 0, err
		}
		if len(rest) != 0 {
			return nil, 0, fmt.Errorf("replan: %d trailing bytes after graph record", len(rest))
		}
		items := make([]sketch.Item, len(nbrs))
		for i, u := range nbrs {
			items[i] = sketch.Item(u)
		}
		return items, len(nbrs) + 1, nil
	case pivots.TextData:
		doc, rest, err := pivots.DecodeTextRecord(raw)
		if err != nil {
			return nil, 0, err
		}
		if len(rest) != 0 {
			return nil, 0, fmt.Errorf("replan: %d trailing bytes after text record", len(rest))
		}
		items := make([]sketch.Item, len(doc.Terms))
		for i, term := range doc.Terms {
			items[i] = sketch.Item(term)
		}
		return items, len(doc.Terms), nil
	default:
		return nil, 0, fmt.Errorf("replan: unknown corpus kind %v", kind)
	}
}
