package replan

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"pareto/internal/faultnet"
	"pareto/internal/kvstore"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// killSwitch is a dialer whose host can be killed (live connections
// severed, re-dials refused) and revived — a worker lost mid-migration.
type killSwitch struct {
	mu    sync.Mutex
	down  bool
	conns []net.Conn
}

func (k *killSwitch) dialer(addr string, timeout time.Duration) (net.Conn, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.down {
		return nil, &net.OpError{Op: "dial", Err: &net.DNSError{Err: "host down", Name: addr}}
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	k.conns = append(k.conns, conn)
	return conn, nil
}

func (k *killSwitch) kill() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.down = true
	for _, c := range k.conns {
		c.Close()
	}
	k.conns = nil
}

func (k *killSwitch) revive() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.down = false
}

func faultClientOptions(seed int64) kvstore.Options {
	return kvstore.Options{
		OpTimeout:    time.Second,
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   10 * time.Millisecond,
		Seed:         seed,
	}
}

// faultServer starts one kvstore server, optionally chaos-wrapped, and
// dials it with hardened options.
func faultServer(t *testing.T, opts kvstore.Options, wrap func(net.Conn) net.Conn) *kvstore.Client {
	t.Helper()
	srv := kvstore.NewServer(nil)
	if wrap != nil {
		srv.SetConnWrapper(wrap)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := kvstore.DialOptions(addr, time.Second, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestMigrationAbortMidCycleKeepsPreviousEpoch kills a worker mid-cycle
// and asserts the commit-or-abort invariant: the failed cycle changes
// nothing — the previous assignment stays fully readable partition for
// partition — and after the worker returns the next cycle completes the
// same migration.
func TestMigrationAbortMidCycleKeepsPreviousEpoch(t *testing.T) {
	docs, vocab := replanDocs(t)
	full, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	split := len(docs) * 3 / 4
	base, err := pivots.NewTextCorpus(docs[:split], vocab)
	if err != nil {
		t.Fatal(err)
	}
	ks := &killSwitch{}
	clients := []*kvstore.Client{
		faultServer(t, faultClientOptions(1), nil),
		faultServer(t, faultClientOptions(2), nil),
		func() *kvstore.Client {
			opts := faultClientOptions(3)
			opts.Dialer = ks.dialer
			return faultServer(t, opts, nil)
		}(),
	}
	kv, err := partitioner.NewKVStore(clients, 32, "replan-fault")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cl := paperCluster(t, 4)
	l, err := New(base, cl, weightProfile(full), Config{
		Core:      loopCoreConfig(2),
		Drift:     strata.DriftConfig{Threshold: 0},
		Store:     kv,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot the committed state before the doomed cycle.
	p := l.Store().P()
	before := make([][][]byte, p)
	for j := 0; j < p; j++ {
		recs, err := l.Store().ReadPartition(j)
		if err != nil {
			t.Fatalf("pre-cycle read %d: %v", j, err)
		}
		before[j] = recs
	}
	actualBefore := make([][]int, p)
	for j, part := range l.Actual().Parts {
		actualBefore[j] = append([]int(nil), part...)
	}

	ks.kill()
	ingestDocs(t, l, full, split)
	pending := l.Pending()
	if _, err := l.Cycle(); err == nil {
		t.Fatal("cycle succeeded with a dead worker")
	}
	if n := reg.Counter("replan_migration_aborts_total").Value(); n != 1 {
		t.Errorf("abort counter = %d, want 1", n)
	}
	// The live placement and the pending queue are untouched.
	if !reflect.DeepEqual(l.Actual().Parts, actualBefore) {
		t.Error("failed cycle mutated the live placement")
	}
	if l.Pending() != pending {
		t.Errorf("failed cycle drained pending %d → %d", pending, l.Pending())
	}

	// The worker comes back: every partition still serves the pre-cycle
	// epoch byte-for-byte (staged writes were never pointed at).
	ks.revive()
	for j := 0; j < p; j++ {
		recs, err := l.Store().ReadPartition(j)
		if err != nil {
			t.Fatalf("post-abort read %d: %v", j, err)
		}
		if !reflect.DeepEqual(recs, before[j]) {
			t.Fatalf("partition %d changed across the aborted cycle", j)
		}
	}

	// The next cycle resumes the migration and completes it.
	rep, err := l.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || l.Pending() != 0 {
		t.Fatalf("recovery cycle did not converge: %+v pending %d", rep, l.Pending())
	}
	if err := l.Actual().Validate(full.Len()); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < p; j++ {
		recs, err := l.Store().ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		want := l.Actual().Parts[j]
		if len(recs) != len(want) {
			t.Fatalf("partition %d holds %d records, want %d", j, len(recs), len(want))
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec, full.AppendRecord(nil, want[i])) {
				t.Fatalf("partition %d record %d bytes differ", j, i)
			}
		}
	}
}

// TestMigrationSurvivesDropChaos runs drift-driven migrations through a
// transient outage: connections drop randomly for an outage window
// (faultnet FaultConns), then the store heals. Staging writes ride
// RPUSH, which the kvstore client refuses to blindly retry, so a drop
// mid-stage surfaces as an aborted cycle — the invariant under test is
// that aborted cycles change nothing and repeated cycles still drive
// the migration to convergence with an intact store.
func TestMigrationSurvivesDropChaos(t *testing.T) {
	docs, vocab := replanDocs(t)
	full, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	split := len(docs) * 3 / 4
	base, err := pivots.NewTextCorpus(docs[:split], vocab)
	if err != nil {
		t.Fatal(err)
	}
	opts := faultClientOptions(7)
	// MaxRetries must exceed FaultConns: every retry redials, so even if
	// each chaotic connection drops, the retry budget reaches the clean
	// connections past the outage window.
	opts.MaxRetries = 20
	client := faultServer(t, opts, faultnet.Plan{Seed: 42, DropRate: 0.05, FaultConns: 12}.Wrapper())
	kv, err := partitioner.NewKVStore([]*kvstore.Client{client}, 32, "replan-chaos")
	if err != nil {
		t.Fatal(err)
	}
	cl := paperCluster(t, 4)
	cfg := Config{
		Core:             loopCoreConfig(2),
		Drift:            strata.DriftConfig{Threshold: 0},
		MaxMovesPerCycle: 50,
		Store:            kv,
	}
	// The initial placement stages through the same chaotic store, so
	// even construction may abort; a retry is a fresh epoch-0 stage.
	var l *Loop
	for attempt := 0; ; attempt++ {
		if l, err = New(base, cl, weightProfile(full), cfg); err == nil {
			break
		}
		if attempt == 50 {
			t.Fatalf("initial placement never committed: %v", err)
		}
	}
	ingestDocs(t, l, full, split)
	aborts, converged := 0, false
	for i := 0; i < 200 && !converged; i++ {
		rep, err := l.Cycle()
		if err != nil {
			aborts++
			continue
		}
		converged = rep.Converged && l.Pending() == 0
	}
	t.Logf("aborted cycles under chaos: %d", aborts)
	if !converged {
		t.Fatal("migration never converged under connection drops")
	}
	if err := l.Actual().Validate(full.Len()); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < l.Store().P(); j++ {
		recs, err := l.Store().ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		want := l.Actual().Parts[j]
		if len(recs) != len(want) {
			t.Fatalf("partition %d holds %d records, want %d", j, len(recs), len(want))
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec, full.AppendRecord(nil, want[i])) {
				t.Fatalf("partition %d record %d bytes differ", j, i)
			}
		}
	}
}
