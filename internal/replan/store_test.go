package replan

import (
	"bytes"
	"fmt"
	"testing"

	"pareto/internal/partitioner"
)

func recs(vals ...byte) [][]byte {
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = []byte{v}
	}
	return out
}

func assertPartition(t *testing.T, s *EpochStore, j int, want [][]byte) {
	t.Helper()
	got, err := s.ReadPartition(j)
	if err != nil {
		t.Fatalf("read partition %d: %v", j, err)
	}
	if len(got) != len(want) {
		t.Fatalf("partition %d has %d records, want %d", j, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("partition %d record %d = %v, want %v", j, i, got[i], want[i])
		}
	}
}

func TestEpochStoreCommitFlipsReads(t *testing.T) {
	st, err := NewEpochStore(partitioner.NewMemoryStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadPartition(0); err == nil {
		t.Error("unplaced partition readable")
	}
	txn := st.Begin()
	for j := 0; j < 3; j++ {
		if err := txn.Write(j, recs(byte(j))); err != nil {
			t.Fatal(err)
		}
	}
	// Staged but uncommitted: still unreadable.
	if _, err := st.ReadPartition(1); err == nil {
		t.Error("staged partition readable before commit")
	}
	txn.Commit()
	for j := 0; j < 3; j++ {
		assertPartition(t, st, j, recs(byte(j)))
		if st.Epoch(j) != 0 {
			t.Errorf("partition %d at epoch %d, want 0", j, st.Epoch(j))
		}
	}
	// A second committed transaction over a subset advances only that
	// subset's epochs.
	txn = st.Begin()
	if err := txn.Write(1, recs(42)); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	assertPartition(t, st, 0, recs(0))
	assertPartition(t, st, 1, recs(42))
	if st.Epoch(0) != 0 || st.Epoch(1) != 1 {
		t.Errorf("epochs %d/%d, want 0/1", st.Epoch(0), st.Epoch(1))
	}
}

func TestEpochStoreAbandonedTxnAborts(t *testing.T) {
	st, err := NewEpochStore(partitioner.NewMemoryStore(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WritePartition(0, recs(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.WritePartition(1, recs(2)); err != nil {
		t.Fatal(err)
	}
	// Stage new contents for both partitions, then walk away: reads must
	// keep serving the committed epoch, and a later transaction reuses
	// the staging slots safely.
	dead := st.Begin()
	if err := dead.Write(0, recs(9)); err != nil {
		t.Fatal(err)
	}
	if err := dead.Write(1, recs(9)); err != nil {
		t.Fatal(err)
	}
	assertPartition(t, st, 0, recs(1))
	assertPartition(t, st, 1, recs(2))
	txn := st.Begin()
	if err := txn.Write(0, recs(7)); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	assertPartition(t, st, 0, recs(7))
	assertPartition(t, st, 1, recs(2))
}

// groupedBase exposes a WriteGroup so the epoch store's delegation is
// observable.
type groupedBase struct {
	*partitioner.MemoryStore
}

func (g groupedBase) WriteGroup(id int) int { return id % 2 }

func TestEpochStoreWriteGroupDelegation(t *testing.T) {
	st, err := NewEpochStore(groupedBase{partitioner.NewMemoryStore()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Next write for partition j lands at base id 0·4+j = j, so groups
	// follow the base's id parity.
	for j := 0; j < 4; j++ {
		if got, want := st.WriteGroup(j), j%2; got != want {
			t.Errorf("WriteGroup(%d) = %d, want %d", j, got, want)
		}
	}
	// A base without grouping isolates every partition.
	flat, err := NewEpochStore(partitioner.NewMemoryStore(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if flat.WriteGroup(2) != 2 {
		t.Errorf("ungrouped base: WriteGroup(2) = %d", flat.WriteGroup(2))
	}
}

func TestEpochStoreValidation(t *testing.T) {
	if _, err := NewEpochStore(nil, 2); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewEpochStore(partitioner.NewMemoryStore(), 0); err == nil {
		t.Error("p = 0 accepted")
	}
	st, _ := NewEpochStore(partitioner.NewMemoryStore(), 2)
	for _, j := range []int{-1, 2} {
		if _, err := st.ReadPartition(j); err == nil {
			t.Errorf("read of partition %d accepted", j)
		}
		if err := st.WritePartition(j, recs(1)); err == nil {
			t.Errorf("write of partition %d accepted", j)
		}
	}
}

func TestEpochStoreConcurrentTxnWrites(t *testing.T) {
	p := 8
	st, err := NewEpochStore(partitioner.NewMemoryStore(), p)
	if err != nil {
		t.Fatal(err)
	}
	txn := st.Begin()
	errs := make(chan error, p)
	for j := 0; j < p; j++ {
		go func(j int) { errs <- txn.Write(j, recs(byte(j), byte(j+1))) }(j)
	}
	for j := 0; j < p; j++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	txn.Commit()
	for j := 0; j < p; j++ {
		assertPartition(t, st, j, recs(byte(j), byte(j+1)))
	}
}

func TestEpochStoreManyEpochs(t *testing.T) {
	st, err := NewEpochStore(partitioner.NewMemoryStore(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		txn := st.Begin()
		for j := 0; j < 2; j++ {
			if err := txn.Write(j, [][]byte{[]byte(fmt.Sprintf("e%d-p%d", e, j))}); err != nil {
				t.Fatal(err)
			}
		}
		txn.Commit()
	}
	for j := 0; j < 2; j++ {
		assertPartition(t, st, j, [][]byte{[]byte(fmt.Sprintf("e9-p%d", j))})
		if st.Epoch(j) != 9 {
			t.Errorf("partition %d at epoch %d, want 9", j, st.Epoch(j))
		}
	}
}
