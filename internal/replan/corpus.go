// Package replan closes the loop between a live record stream and the
// partitioning plan: it watches per-stratum drift through the
// incremental frequency counters the stratifier maintains, re-runs only
// the pipeline stages the drift invalidated (dirty strata re-cluster,
// stale samples re-profile, the sizing LP re-solves warm from its
// retained basis), and migrates data toward the new plan under a
// bounded per-cycle move budget with commit-or-abort cutover. The paper
// amortizes planning cost "over multiple runs on the full dataset"
// (§III); replan extends the amortization to datasets that keep
// growing between runs.
package replan

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

// DynamicCorpus is a pivots.Corpus that grows: a frozen base corpus
// plus records appended by the ingest path. Record indices are stable —
// base records keep their indices, appended records extend the index
// space — so stratum membership lists, assignments and partition
// contents stay valid as the corpus grows.
type DynamicCorpus struct {
	base    pivots.Corpus
	items   [][]sketch.Item
	weights []int
	raws    [][]byte
}

// NewDynamicCorpus wraps a base corpus. The base must not change while
// the dynamic corpus is alive.
func NewDynamicCorpus(base pivots.Corpus) (*DynamicCorpus, error) {
	if base == nil || base.Len() == 0 {
		return nil, errors.New("replan: empty base corpus")
	}
	return &DynamicCorpus{base: base}, nil
}

// Append adds one record and returns its index. items is the record's
// pivot set (owned by the corpus afterwards); weight is its size proxy;
// raw, when non-nil, is the record's length-prefixed wire form used
// verbatim by AppendRecord (the Tailer supplies the bytes it read off
// the ingest list). With raw nil, AppendRecord synthesizes an opaque
// item record — self-delimiting for any Store, but not decodable by the
// pivots codecs.
func (c *DynamicCorpus) Append(items []sketch.Item, weight int, raw []byte) (int, error) {
	if len(items) == 0 {
		return 0, errors.New("replan: record with empty pivot set")
	}
	if weight < 0 {
		return 0, fmt.Errorf("replan: negative record weight %d", weight)
	}
	c.items = append(c.items, items)
	c.weights = append(c.weights, weight)
	c.raws = append(c.raws, raw)
	return c.base.Len() + len(c.items) - 1, nil
}

// Appended returns how many records have been appended past the base.
func (c *DynamicCorpus) Appended() int { return len(c.items) }

// Kind implements pivots.Corpus.
func (c *DynamicCorpus) Kind() pivots.Kind { return c.base.Kind() }

// Len implements pivots.Corpus.
func (c *DynamicCorpus) Len() int { return c.base.Len() + len(c.items) }

// ItemSet implements pivots.Corpus.
func (c *DynamicCorpus) ItemSet(i int) []sketch.Item {
	if b := c.base.Len(); i >= b {
		return c.items[i-b]
	}
	return c.base.ItemSet(i)
}

// Weight implements pivots.Corpus.
func (c *DynamicCorpus) Weight(i int) int {
	if b := c.base.Len(); i >= b {
		return c.weights[i-b]
	}
	return c.base.Weight(i)
}

// AppendRecord implements pivots.Corpus.
func (c *DynamicCorpus) AppendRecord(dst []byte, i int) []byte {
	b := c.base.Len()
	if i < b {
		return c.base.AppendRecord(dst, i)
	}
	if raw := c.raws[i-b]; raw != nil {
		return append(dst, raw...)
	}
	// Opaque fallback: uint32 payloadLen | nItems × uint64 item. Keeps
	// the partition format self-delimiting when a producer appended
	// pivot sets directly instead of wire records.
	items := c.items[i-b]
	dst = binary.LittleEndian.AppendUint32(dst, uint32(8*len(items)))
	for _, it := range items {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(it))
	}
	return dst
}
