package replan

import (
	"testing"
	"time"

	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/strata"
)

// TestTailerFeedsLoopFromKVStream round-trips the live ingest path: a
// producer RPUSHes wire records onto a kvstore list, the Tailer polls
// them out and ingests each into the loop with the exact raw bytes.
func TestTailerFeedsLoopFromKVStream(t *testing.T) {
	docs, vocab := replanDocs(t)
	full, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	split := len(docs) * 3 / 4
	base, err := pivots.NewTextCorpus(docs[:split], vocab)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(base, paperCluster(t, 4), weightProfile(full), Config{
		Core:  loopCoreConfig(2),
		Drift: strata.DriftConfig{Threshold: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := kvstore.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const key = "replan:stream"
	for i := split; i < full.Len(); i++ {
		if _, err := client.RPush(key, full.AppendRecord(nil, i)); err != nil {
			t.Fatal(err)
		}
	}

	tl := &Tailer{Client: client, Key: key, Kind: pivots.TextData, Window: 7}
	n, err := tl.Poll(l)
	if err != nil {
		t.Fatal(err)
	}
	want := full.Len() - split
	if n != want {
		t.Fatalf("Poll ingested %d records, want %d", n, want)
	}
	if tl.Cursor() != int64(want) {
		t.Fatalf("cursor = %d, want %d", tl.Cursor(), want)
	}
	if l.Len() != full.Len() {
		t.Fatalf("loop corpus has %d records, want %d", l.Len(), full.Len())
	}
	if l.Pending() != want {
		t.Fatalf("pending = %d, want %d", l.Pending(), want)
	}

	// Ingested records carry the producer's exact wire bytes.
	for i := split; i < full.Len(); i++ {
		got := l.corpus.AppendRecord(nil, i)
		if string(got) != string(full.AppendRecord(nil, i)) {
			t.Fatalf("record %d bytes differ from wire form", i)
		}
	}

	// An idle poll is a no-op.
	if n, err = tl.Poll(l); err != nil || n != 0 {
		t.Fatalf("idle poll = (%d, %v), want (0, nil)", n, err)
	}

	// A corrupt element stops the cursor in front of itself so a
	// repaired stream can be re-polled.
	if _, err := client.RPush(key, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	before := tl.Cursor()
	if _, err := tl.Poll(l); err == nil {
		t.Fatal("Poll decoded a corrupt record")
	}
	if tl.Cursor() != before {
		t.Fatalf("cursor advanced past corrupt record: %d → %d", before, tl.Cursor())
	}

	// Kind mismatch is rejected up front.
	bad := &Tailer{Client: client, Key: key, Kind: pivots.GraphData}
	if _, err := bad.Poll(l); err == nil {
		t.Fatal("kind-mismatched tailer polled successfully")
	}
}
