package replan

import (
	"reflect"
	"runtime"
	"sort"
	"testing"

	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/sketch"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// replanDocs generates the planted-topic text dataset every loop test
// runs on (~800 docs at frac 0.001).
func replanDocs(t testing.TB) ([]pivots.Doc, int) {
	t.Helper()
	cfg := datasets.RCV1Like(0.001)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return docs, cfg.VocabSize
}

func paperCluster(t testing.TB, p int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.PaperCluster(p, energy.DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// weightProfile prices a sample at 2000× its record-weight sum — the
// linear regime where the sizing LP is exact. Closing over the full
// corpus works for both the cold and the live path because records are
// ingested in index order.
func weightProfile(c pivots.Corpus) core.ProfileFunc {
	return func(indices []int) (float64, error) {
		var cost float64
		for _, i := range indices {
			cost += 2000 * float64(c.Weight(i))
		}
		return cost, nil
	}
}

func loopCoreConfig(workers int) core.Config {
	return core.Config{
		Strategy: core.HetEnergyAware,
		Alpha:    0.999,
		Scheme:   partitioner.Representative,
		Stratifier: strata.StratifierConfig{
			SketchWidth: 24,
			Cluster:     strata.Config{K: 8, L: 3, Seed: 7},
			Seed:        5,
		},
		SampleSeed: 3,
		Workers:    workers,
	}
}

// ingestDocs feeds docs[from:] into the loop as wire records, exactly
// as the Tailer would.
func ingestDocs(t testing.TB, l *Loop, full *pivots.TextCorpus, from int) {
	t.Helper()
	for i := from; i < full.Len(); i++ {
		terms := full.Docs[i].Terms
		items := make([]sketch.Item, len(terms))
		for k, term := range terms {
			items[k] = sketch.Item(term)
		}
		if _, err := l.Ingest(items, len(terms), full.AppendRecord(nil, i)); err != nil {
			t.Fatal(err)
		}
	}
}

// affineProfile prices a sample as a fixed overhead plus a per-record
// cost — exactly affine in the sample size. The fit recovers it with
// zero residual, so the intercept stays solidly positive across
// re-profiles (a noisy near-zero intercept can clamp to 0 and flip the
// time rows' RHS sign, which would force the LP re-solve cold).
func affineProfile() core.ProfileFunc {
	return func(indices []int) (float64, error) {
		return 50_000 + 2_000*float64(len(indices)), nil
	}
}

// alienItems builds a pivot set far from any planted topic, used to
// drift exactly one stratum (identical sets always land on the same
// nearest frozen center).
func alienItems(gen, n int) []sketch.Item {
	items := make([]sketch.Item, n)
	for i := range items {
		items[i] = sketch.Item(uint64(1)<<40 + uint64(gen)<<20 + uint64(i))
	}
	return items
}

// TestAllDirtyCycleBitIdenticalToCold is the acceptance criterion: when
// every stratum is dirty, the incremental loop's cycle must equal a
// cold full core.BuildPlan over the union corpus — deep-equal sizes,
// placement, strata, models and LP solution — at several worker counts.
func TestAllDirtyCycleBitIdenticalToCold(t *testing.T) {
	docs, vocab := replanDocs(t)
	full, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	split := len(docs) * 3 / 4
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		base, err := pivots.NewTextCorpus(docs[:split], vocab)
		if err != nil {
			t.Fatal(err)
		}
		cl := paperCluster(t, 4)
		l, err := New(base, cl, weightProfile(full), Config{
			Core:  loopCoreConfig(workers),
			Drift: strata.DriftConfig{Threshold: 0}, // every stratum always dirty
		})
		if err != nil {
			t.Fatal(err)
		}
		ingestDocs(t, l, full, split)
		rep, err := l.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kind != CycleFull {
			t.Fatalf("workers %d: all-dirty cycle took the %v path", workers, rep.Kind)
		}
		cold, err := core.BuildPlan(full, cl, weightProfile(full), loopCoreConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		live := l.Plan()
		if !reflect.DeepEqual(live.Sizes, cold.Sizes) {
			t.Errorf("workers %d: sizes %v, cold %v", workers, live.Sizes, cold.Sizes)
		}
		if !reflect.DeepEqual(live.Assign.Parts, cold.Assign.Parts) {
			t.Errorf("workers %d: placement differs from cold plan", workers)
		}
		if !reflect.DeepEqual(live.Strat.Members, cold.Strat.Members) {
			t.Errorf("workers %d: strata differ from cold plan", workers)
		}
		if !reflect.DeepEqual(live.Models, cold.Models) {
			t.Errorf("workers %d: models differ from cold plan", workers)
		}
		if !reflect.DeepEqual(live.Optimized.X, cold.Optimized.X) {
			t.Errorf("workers %d: LP solution differs from cold plan", workers)
		}
		// The loop also migrated to the cold placement.
		if err := l.Actual().Validate(full.Len()); err != nil {
			t.Fatal(err)
		}
		assertSameSets(t, l.Actual(), cold.Assign)
	}
}

// assertSameSets checks two assignments hold identical record sets per
// partition (migration preserves membership, not intra-partition order).
func assertSameSets(t *testing.T, got, want *partitioner.Assignment) {
	t.Helper()
	if got.P() != want.P() {
		t.Fatalf("partition counts %d vs %d", got.P(), want.P())
	}
	for j := range got.Parts {
		g := append([]int(nil), got.Parts[j]...)
		w := append([]int(nil), want.Parts[j]...)
		sort.Ints(g)
		sort.Ints(w)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("partition %d membership differs", j)
		}
	}
}

func TestIncrementalCycleWarmLP(t *testing.T) {
	docs, vocab := replanDocs(t)
	base, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cl := paperCluster(t, 4)
	l, err := New(base, cl, affineProfile(), Config{
		Core:      loopCoreConfig(2),
		Drift:     strata.DriftConfig{Threshold: 1e-9},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First drifting batch: cold LP (no retained basis yet).
	for i := 0; i < 12; i++ {
		if _, err := l.Ingest(alienItems(1, 6), 6, nil); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := l.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != CycleIncremental {
		t.Fatalf("first drifting cycle took the %v path (dirty %v)", rep.Kind, rep.Dirty)
	}
	if len(rep.Dirty) == 0 || len(rep.Dirty) == l.Tracker().K() {
		t.Fatalf("dirty strata %v — want a strict subset", rep.Dirty)
	}
	if !rep.LPSolved || rep.LPWarm {
		t.Errorf("first incremental LP: solved %v warm %v, want cold solve", rep.LPSolved, rep.LPWarm)
	}
	// Second drifting batch: the retained basis re-solves warm.
	for i := 0; i < 12; i++ {
		if _, err := l.Ingest(alienItems(2, 6), 6, nil); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = l.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != CycleIncremental {
		t.Fatalf("second drifting cycle took the %v path", rep.Kind)
	}
	if !rep.LPSolved || !rep.LPWarm {
		t.Errorf("second incremental LP: solved %v warm %v, want warm re-solve", rep.LPSolved, rep.LPWarm)
	}
	if reg.Counter("replan_lp_cold_total").Value() != 1 || reg.Counter("replan_lp_warm_total").Value() != 1 {
		t.Errorf("lp counters cold=%d warm=%d, want 1/1",
			reg.Counter("replan_lp_cold_total").Value(), reg.Counter("replan_lp_warm_total").Value())
	}
	if l.Pending() != 0 {
		t.Errorf("%d records still pending after cycles", l.Pending())
	}
	if err := l.Actual().Validate(l.Len()); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("replan_cycles_incremental_total").Value() != 2 {
		t.Errorf("incremental cycle counter = %d, want 2", reg.Counter("replan_cycles_incremental_total").Value())
	}
}

// TestMoveBudgetAndDeferredDrain asserts MaxMovesPerCycle is never
// exceeded and that deferred moves drain to convergence across cycles,
// with the store following every committed step.
func TestMoveBudgetAndDeferredDrain(t *testing.T) {
	docs, vocab := replanDocs(t)
	full, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	split := len(docs) * 3 / 4
	base, err := pivots.NewTextCorpus(docs[:split], vocab)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cl := paperCluster(t, 4)
	const budget = 7
	l, err := New(base, cl, weightProfile(full), Config{
		Core:             loopCoreConfig(2),
		Drift:            strata.DriftConfig{Threshold: 0},
		MaxMovesPerCycle: budget,
		Store:            partitioner.NewMemoryStore(),
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, l, full, split)
	n := full.Len()
	prevDeferred := -1
	converged := false
	for i := 0; i < 200; i++ {
		rep, err := l.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.MovesApplied > budget {
			t.Fatalf("cycle %d applied %d moves past the budget %d", i, rep.MovesApplied, budget)
		}
		if prevDeferred >= 0 && rep.MovesDeferred > prevDeferred {
			t.Fatalf("cycle %d deferred %d moves after %d — not draining", i, rep.MovesDeferred, prevDeferred)
		}
		prevDeferred = rep.MovesDeferred
		if err := l.Actual().Validate(n); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if rep.Converged {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("deferred moves never drained")
	}
	assertSameSets(t, l.Actual(), l.Target())
	if reg.Counter("replan_moves_deferred_total").Value() == 0 {
		t.Error("budget never deferred anything — test exercised nothing")
	}
	// The committed store mirrors the live placement record-for-record.
	st := l.Store()
	for j := 0; j < st.P(); j++ {
		records, err := st.ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		want := l.Actual().Parts[j]
		if len(records) != len(want) {
			t.Fatalf("partition %d holds %d records, want %d", j, len(records), len(want))
		}
		for i, rec := range records {
			if got := full.AppendRecord(nil, want[i]); !reflect.DeepEqual(rec, got) {
				t.Fatalf("partition %d record %d bytes differ", j, i)
			}
		}
	}
}

func TestCleanCyclePlacesPendingWithoutReplanning(t *testing.T) {
	docs, vocab := replanDocs(t)
	full, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	split := len(docs) - 5
	base, err := pivots.NewTextCorpus(docs[:split], vocab)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cl := paperCluster(t, 4)
	l, err := New(base, cl, weightProfile(full), Config{
		Core:      loopCoreConfig(2),
		Drift:     strata.DriftConfig{Threshold: 0.9}, // nothing ever drifts this far
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := l.Plan().Optimized
	ingestDocs(t, l, full, split)
	rep, err := l.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != CycleClean {
		t.Fatalf("cycle took the %v path (dirty %v)", rep.Kind, rep.Dirty)
	}
	if rep.Placements != 5 {
		t.Errorf("placed %d records, want 5", rep.Placements)
	}
	if rep.LPSolved {
		t.Error("clean cycle ran the LP")
	}
	if l.Plan().Optimized != before {
		t.Error("clean cycle reinstalled the plan")
	}
	if l.Pending() != 0 || l.Len() != full.Len() {
		t.Errorf("pending %d len %d after clean cycle", l.Pending(), l.Len())
	}
	if err := l.Actual().Validate(full.Len()); err != nil {
		t.Fatal(err)
	}
	// A second cycle with no traffic is a no-op.
	rep, err = l.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != CycleClean || rep.Placements != 0 || rep.MovesApplied != 0 {
		t.Errorf("idle cycle: %+v", rep)
	}
	if reg.Counter("replan_cycles_clean_total").Value() != 2 {
		t.Errorf("clean counter = %d, want 2", reg.Counter("replan_cycles_clean_total").Value())
	}
}

func TestNewValidation(t *testing.T) {
	docs, vocab := replanDocs(t)
	base, err := pivots.NewTextCorpus(docs[:100], vocab)
	if err != nil {
		t.Fatal(err)
	}
	cl := paperCluster(t, 4)
	cfg := loopCoreConfig(1)
	bad := cfg
	bad.Normalized = true
	if _, err := New(base, cl, weightProfile(base), Config{Core: bad}); err == nil {
		t.Error("Normalized accepted")
	}
	bad = cfg
	bad.Alpha = 1.5
	if _, err := New(base, cl, weightProfile(base), Config{Core: bad}); err == nil {
		t.Error("alpha out of range accepted")
	}
	if _, err := New(base, cl, weightProfile(base), Config{Core: cfg, MaxMovesPerCycle: -1}); err == nil {
		t.Error("negative move budget accepted")
	}
	if _, err := New(base, nil, weightProfile(base), Config{Core: cfg}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := New(base, cl, weightProfile(base), Config{Core: cfg, Drift: strata.DriftConfig{Threshold: -1}}); err == nil {
		t.Error("negative threshold accepted")
	}
}
