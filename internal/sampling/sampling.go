// Package sampling implements the task-specific heterogeneity
// estimator's learning machinery (paper §III-A): progressive sampling
// schedules and least-squares regression of execution time on input
// size.
//
// The framework runs the *actual* analytics algorithm on a ladder of
// small representative samples (0.05%–2% of the data by default) on
// every node, records (sample size, execution time) pairs, and fits a
// per-node linear model f_i(x) = m_i·x + c_i. The paper argues (§III-D)
// that higher-order polynomial fits are statistically unaffordable at
// these sample counts; PolyFit exists to reproduce that ablation.
package sampling

import (
	"errors"
	"fmt"
	"math"
)

// DefaultSchedule bounds from the paper: samples from 0.05% to 2% of
// the input, in DefaultSteps geometric steps.
const (
	DefaultMinFrac = 0.0005
	DefaultMaxFrac = 0.02
	DefaultSteps   = 6
)

// Schedule returns a strictly increasing ladder of sample sizes for a
// dataset of n records, spanning [minFrac, maxFrac] geometrically in
// the given number of steps. Every size is at least 1 and at most n;
// consecutive duplicates (tiny n) are collapsed.
func Schedule(n int, minFrac, maxFrac float64, steps int) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("sampling: schedule needs n ≥ 1")
	}
	if steps < 2 {
		return nil, errors.New("sampling: schedule needs ≥ 2 steps")
	}
	if minFrac <= 0 || maxFrac > 1 || minFrac >= maxFrac {
		return nil, fmt.Errorf("sampling: bad fraction range [%v, %v]", minFrac, maxFrac)
	}
	ratio := math.Pow(maxFrac/minFrac, 1/float64(steps-1))
	sizes := make([]int, 0, steps)
	f := minFrac
	for i := 0; i < steps; i++ {
		s := int(math.Round(f * float64(n)))
		if s < 1 {
			s = 1
		}
		if s > n {
			s = n
		}
		if len(sizes) == 0 || s > sizes[len(sizes)-1] {
			sizes = append(sizes, s)
		}
		f *= ratio
	}
	if len(sizes) < 2 {
		// Degenerate tiny datasets: force a two-point ladder.
		if n >= 2 {
			sizes = []int{1, n}
		} else {
			return nil, fmt.Errorf("sampling: dataset of %d records cannot support a schedule", n)
		}
	}
	return sizes, nil
}

// DefaultScheduleFor applies the paper's default ladder to n records.
func DefaultScheduleFor(n int) ([]int, error) {
	return Schedule(n, DefaultMinFrac, DefaultMaxFrac, DefaultSteps)
}

// DefaultMinRecords is the sample-size floor applied by
// ScheduleWithFloor when minRecords is 0.
const DefaultMinRecords = 64

// ScheduleWithFloor is Schedule with an absolute lower bound on sample
// sizes. The paper's 0.05%–2% fractions assume datasets large enough
// that even the smallest sample is statistically meaningful; on
// scaled-down corpora a fractional sample of a handful of records puts
// support-scaled mining into a degenerate regime (local minsup ≈ 1)
// whose cost says nothing about full-partition behaviour. The floor
// keeps every profiling run out of that regime; the ceiling is raised
// to at least 4× the floor so the ladder still spans a fittable range.
func ScheduleWithFloor(n int, minFrac, maxFrac float64, steps, minRecords int) ([]int, error) {
	if minRecords <= 0 {
		minRecords = DefaultMinRecords
	}
	if n <= 0 {
		return nil, errors.New("sampling: schedule needs n ≥ 1")
	}
	if steps < 2 {
		return nil, errors.New("sampling: schedule needs ≥ 2 steps")
	}
	if minFrac <= 0 || maxFrac > 1 || minFrac >= maxFrac {
		return nil, fmt.Errorf("sampling: bad fraction range [%v, %v]", minFrac, maxFrac)
	}
	lo := int(math.Round(minFrac * float64(n)))
	if lo < minRecords {
		lo = minRecords
	}
	hi := int(math.Round(maxFrac * float64(n)))
	if hi < 4*minRecords {
		hi = 4 * minRecords
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if hi <= lo {
		// Tiny corpus: fall back to a two-point ladder.
		if n >= 2 {
			return []int{(n + 1) / 2, n}, nil
		}
		return nil, fmt.Errorf("sampling: dataset of %d records cannot support a schedule", n)
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(steps-1))
	sizes := make([]int, 0, steps)
	f := float64(lo)
	for i := 0; i < steps; i++ {
		s := int(math.Round(f))
		if s > n {
			s = n
		}
		if len(sizes) == 0 || s > sizes[len(sizes)-1] {
			sizes = append(sizes, s)
		}
		f *= ratio
	}
	if len(sizes) < 2 {
		return []int{lo, hi}, nil
	}
	return sizes, nil
}

// Point is one profiling observation: the algorithm ran over X data
// units in Y seconds.
type Point struct {
	X float64
	Y float64
}

// LinearFit is the learned per-node utility function for time:
// f(x) = Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Predict evaluates the model at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// ClampNonNegative returns a copy with a nonnegative intercept:
// execution time extrapolated to zero input cannot be negative, and
// the Pareto LP requires c_i ≥ 0 for v ≥ 0 to hold.
func (f LinearFit) ClampNonNegative() LinearFit {
	if f.Intercept < 0 {
		f.Intercept = 0
	}
	if f.Slope < 0 {
		f.Slope = 0
	}
	return f
}

// FitLinear computes the ordinary-least-squares line through the
// points. At least two points with distinct X are required.
func FitLinear(pts []Point) (LinearFit, error) {
	if len(pts) < 2 {
		return LinearFit{}, fmt.Errorf("sampling: need ≥ 2 points, got %d", len(pts))
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for _, p := range pts {
		dx := p.X - mx
		sxx += dx * dx
		sxy += dx * (p.Y - my)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("sampling: all sample sizes identical; cannot fit")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R².
	var ssTot, ssRes float64
	for _, p := range pts {
		ssTot += (p.Y - my) * (p.Y - my)
		r := p.Y - (slope*p.X + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// PolyFit is a polynomial regression model y = Σ Coeffs[k]·x^k, kept
// for the paper's §III-D ablation comparing linear vs higher-order
// utility functions.
type PolyFit struct {
	Coeffs []float64
	R2     float64
}

// Predict evaluates the polynomial at x (Horner).
func (f PolyFit) Predict(x float64) float64 {
	y := 0.0
	for k := len(f.Coeffs) - 1; k >= 0; k-- {
		y = y*x + f.Coeffs[k]
	}
	return y
}

// FitPoly fits a degree-d polynomial by solving the normal equations
// with partial-pivot Gaussian elimination. Needs at least d+1 points.
// X values are rescaled internally for conditioning.
func FitPoly(pts []Point, degree int) (PolyFit, error) {
	if degree < 1 {
		return PolyFit{}, errors.New("sampling: degree must be ≥ 1")
	}
	if len(pts) < degree+1 {
		return PolyFit{}, fmt.Errorf("sampling: degree %d needs ≥ %d points, got %d", degree, degree+1, len(pts))
	}
	// Rescale X to [0, 1] for numerical stability, then undo.
	maxX := 0.0
	for _, p := range pts {
		if math.Abs(p.X) > maxX {
			maxX = math.Abs(p.X)
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	m := degree + 1
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	for _, p := range pts {
		x := p.X / maxX
		pow := make([]float64, 2*m-1)
		pow[0] = 1
		for k := 1; k < len(pow); k++ {
			pow[k] = pow[k-1] * x
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				a[i][j] += pow[i+j]
			}
			b[i] += pow[i] * p.Y
		}
	}
	coef, ok := solveDense(a, b)
	if !ok {
		return PolyFit{}, errors.New("sampling: singular normal equations (degenerate sample sizes)")
	}
	// Undo the X rescale: coefficient k divides by maxX^k.
	scale := 1.0
	for k := range coef {
		coef[k] /= scale
		scale *= maxX
	}
	fit := PolyFit{Coeffs: coef}
	var my float64
	for _, p := range pts {
		my += p.Y
	}
	my /= float64(len(pts))
	var ssTot, ssRes float64
	for _, p := range pts {
		ssTot += (p.Y - my) * (p.Y - my)
		r := p.Y - fit.Predict(p.X)
		ssRes += r * r
	}
	fit.R2 = 1.0
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// solveDense solves a·x = b with partial pivoting; returns ok=false on
// a (near-)singular system. a and b are clobbered.
func solveDense(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		piv, best := -1, 1e-12
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for j := col; j < n; j++ {
			a[col][j] *= inv
		}
		b[col] *= inv
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	return b, true
}

// ProfileFunc measures the target algorithm once: it runs the workload
// on a representative sample of the given size and returns the
// (simulated or wall-clock) execution time in seconds.
type ProfileFunc func(sampleSize int) (float64, error)

// ProfileNode executes the progressive-sampling loop for one node:
// for each scheduled size it invokes run and collects (size, time),
// then fits the linear utility function. The returned fit is clamped
// nonnegative, as required by the Pareto modeler.
func ProfileNode(sizes []int, run ProfileFunc) (LinearFit, []Point, error) {
	if len(sizes) < 2 {
		return LinearFit{}, nil, errors.New("sampling: need ≥ 2 scheduled sizes")
	}
	pts := make([]Point, 0, len(sizes))
	for _, s := range sizes {
		y, err := run(s)
		if err != nil {
			return LinearFit{}, nil, fmt.Errorf("sampling: profiling at size %d: %w", s, err)
		}
		pts = append(pts, Point{X: float64(s), Y: y})
	}
	fit, err := FitLinear(pts)
	if err != nil {
		return LinearFit{}, pts, err
	}
	return fit.ClampNonNegative(), pts, nil
}
