package sampling

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestScheduleDefaults(t *testing.T) {
	sizes, err := DefaultScheduleFor(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != DefaultSteps {
		t.Fatalf("got %d steps, want %d", len(sizes), DefaultSteps)
	}
	if sizes[0] != 500 {
		t.Errorf("first size %d, want 0.05%% = 500", sizes[0])
	}
	if sizes[len(sizes)-1] != 20000 {
		t.Errorf("last size %d, want 2%% = 20000", sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("schedule not strictly increasing at %d: %v", i, sizes)
		}
	}
}

func TestScheduleTinyDataset(t *testing.T) {
	sizes, err := DefaultScheduleFor(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) < 2 {
		t.Fatalf("tiny dataset schedule %v too short", sizes)
	}
	for _, s := range sizes {
		if s < 1 || s > 10 {
			t.Errorf("size %d out of [1,10]", s)
		}
	}
	if _, err := DefaultScheduleFor(1); err == nil {
		t.Error("n=1 cannot support a 2-point schedule")
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := Schedule(0, 0.01, 0.1, 3); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Schedule(100, 0.01, 0.1, 1); err == nil {
		t.Error("1 step accepted")
	}
	if _, err := Schedule(100, 0.1, 0.01, 3); err == nil {
		t.Error("inverted fractions accepted")
	}
	if _, err := Schedule(100, 0, 0.1, 3); err == nil {
		t.Error("zero min fraction accepted")
	}
	if _, err := Schedule(100, 0.01, 1.5, 3); err == nil {
		t.Error("maxFrac > 1 accepted")
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 3x + 7 must be recovered exactly.
	pts := []Point{{1, 10}, {2, 13}, {5, 22}, {10, 37}}
	fit, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-12 || math.Abs(fit.Intercept-7) > 1e-12 {
		t.Errorf("fit = %+v, want slope 3 intercept 7", fit)
	}
	if fit.R2 < 1-1e-12 {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
	if p := fit.Predict(100); math.Abs(p-307) > 1e-9 {
		t.Errorf("Predict(100) = %v", p)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []Point
	for i := 0; i < 200; i++ {
		x := float64(i + 1)
		pts = append(pts, Point{x, 2*x + 5 + rng.NormFloat64()*0.5})
	}
	fit, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.01 || math.Abs(fit.Intercept-5) > 1 {
		t.Errorf("noisy fit %+v far from y=2x+5", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]Point{{1, 1}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]Point{{2, 1}, {2, 5}}); err == nil {
		t.Error("vertical data accepted")
	}
}

func TestClampNonNegative(t *testing.T) {
	f := LinearFit{Slope: -1, Intercept: -2}.ClampNonNegative()
	if f.Slope != 0 || f.Intercept != 0 {
		t.Errorf("clamp gave %+v", f)
	}
	g := LinearFit{Slope: 2, Intercept: 3}.ClampNonNegative()
	if g.Slope != 2 || g.Intercept != 3 {
		t.Errorf("clamp changed valid fit: %+v", g)
	}
}

func TestFitPolyRecoversQuadratic(t *testing.T) {
	// y = 0.5x² − 2x + 3.
	var pts []Point
	for _, x := range []float64{1, 2, 3, 5, 8, 13, 21} {
		pts = append(pts, Point{x, 0.5*x*x - 2*x + 3})
	}
	fit, err := FitPoly(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for k, c := range want {
		if math.Abs(fit.Coeffs[k]-c) > 1e-6 {
			t.Errorf("coeff %d = %v, want %v", k, fit.Coeffs[k], c)
		}
	}
	if math.Abs(fit.Predict(10)-(0.5*100-20+3)) > 1e-6 {
		t.Errorf("Predict(10) = %v", fit.Predict(10))
	}
}

func TestFitPolyDegree1MatchesLinear(t *testing.T) {
	pts := []Point{{1, 4}, {2, 6}, {3, 8}, {7, 16}}
	lin, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := FitPoly(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pol.Coeffs[1]-lin.Slope) > 1e-9 || math.Abs(pol.Coeffs[0]-lin.Intercept) > 1e-9 {
		t.Errorf("poly deg-1 %+v disagrees with linear %+v", pol, lin)
	}
}

func TestFitPolyErrors(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}}
	if _, err := FitPoly(pts, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := FitPoly(pts, 3); err == nil {
		t.Error("too few points accepted")
	}
	same := []Point{{2, 1}, {2, 2}, {2, 3}}
	if _, err := FitPoly(same, 2); err == nil {
		t.Error("degenerate X accepted")
	}
}

func TestPolyOverfitsWithFewSamples(t *testing.T) {
	// The §III-D argument: with the few samples progressive sampling
	// affords, a high-degree fit interpolates noise and extrapolates
	// badly, while the linear fit stays sane. Generate noisy linear
	// data at 6 sample points, fit both, compare extrapolation error
	// at 50× the largest sample.
	rng := rand.New(rand.NewSource(8))
	truth := func(x float64) float64 { return 0.004*x + 2 }
	var pts []Point
	for _, x := range []float64{500, 1000, 2000, 4000, 8000, 20000} {
		pts = append(pts, Point{x, truth(x) * (1 + rng.NormFloat64()*0.05)})
	}
	lin, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := FitPoly(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := 1e6
	linErr := math.Abs(lin.Predict(x) - truth(x))
	polErr := math.Abs(pol.Predict(x) - truth(x))
	if polErr < linErr {
		t.Skipf("degree-4 extrapolated better on this seed (lin %v, poly %v)", linErr, polErr)
	}
	if linErr/truth(x) > 0.25 {
		t.Errorf("linear extrapolation off by %.0f%%", 100*linErr/truth(x))
	}
}

func TestProfileNode(t *testing.T) {
	// Simulated node: time = 0.002·x + 1 with deterministic jitter.
	calls := 0
	run := func(size int) (float64, error) {
		calls++
		return 0.002*float64(size) + 1, nil
	}
	sizes := []int{100, 500, 1000, 5000}
	fit, pts, err := ProfileNode(sizes, run)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(sizes) || len(pts) != len(sizes) {
		t.Errorf("run called %d times, %d points", calls, len(pts))
	}
	if math.Abs(fit.Slope-0.002) > 1e-9 || math.Abs(fit.Intercept-1) > 1e-9 {
		t.Errorf("fit %+v", fit)
	}
}

func TestProfileNodePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := ProfileNode([]int{1, 2}, func(int) (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
	if _, _, err := ProfileNode([]int{5}, func(int) (float64, error) { return 1, nil }); err == nil {
		t.Error("single-size schedule accepted")
	}
}

func TestScheduleWithFloor(t *testing.T) {
	// Large corpus: floor inactive, behaves like the paper's ladder.
	sizes, err := ScheduleWithFloor(1_000_000, DefaultMinFrac, DefaultMaxFrac, DefaultSteps, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0] != 500 || sizes[len(sizes)-1] != 20000 {
		t.Errorf("large-corpus ladder %v", sizes)
	}
	// Small corpus: floor engages, ceiling stretches to 4× floor.
	sizes, err = ScheduleWithFloor(800, DefaultMinFrac, DefaultMaxFrac, DefaultSteps, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0] < 64 {
		t.Errorf("floor broken: %v", sizes)
	}
	if last := sizes[len(sizes)-1]; last < 256 {
		t.Errorf("ceiling %d below 4x floor", last)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("not increasing: %v", sizes)
		}
	}
	// Tiny corpus: two-point fallback, capped at n.
	sizes, err = ScheduleWithFloor(100, DefaultMinFrac, DefaultMaxFrac, DefaultSteps, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) < 2 || sizes[len(sizes)-1] > 100 {
		t.Errorf("tiny-corpus ladder %v", sizes)
	}
	// Validation still applies.
	if _, err := ScheduleWithFloor(0, 0.001, 0.02, 4, 64); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ScheduleWithFloor(100, 0.02, 0.001, 4, 64); err == nil {
		t.Error("inverted fractions accepted")
	}
	if _, err := ScheduleWithFloor(1, 0.001, 0.02, 4, 64); err == nil {
		t.Error("n=1 accepted")
	}
	// Zero minRecords uses the default.
	sizes, err = ScheduleWithFloor(800, DefaultMinFrac, DefaultMaxFrac, DefaultSteps, 0)
	if err != nil || sizes[0] < DefaultMinRecords {
		t.Errorf("default floor not applied: %v (%v)", sizes, err)
	}
}
