package distrib

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pareto/internal/faultnet"
	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/strata"
)

// faultOpts is the hardened client configuration the fault tests use:
// tight deadlines, fast retries.
func faultOpts(seed int64) kvstore.Options {
	return kvstore.Options{
		OpTimeout:    time.Second,
		MaxRetries:   6,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		Seed:         seed,
	}
}

// fastFaultOptions returns distrib Options with waits sized for tests.
func fastFaultOptions() Options {
	return Options{
		SketchWidth:  24,
		Cluster:      strata.Config{K: 6, L: 3, Seed: 11},
		Seed:         5,
		SketchWait:   800 * time.Millisecond,
		AssignWait:   2 * time.Second,
		PollInterval: time.Millisecond,
	}
}

// crashingDialer dials normally once, wrapping the connection so it
// dies after ops operations; every later dial fails — a worker host
// that crashes mid-protocol and never comes back.
func crashingDialer(ops int) func(addr string, timeout time.Duration) (net.Conn, error) {
	var mu sync.Mutex
	dialed := false
	plan := faultnet.Plan{DropAfterOps: ops}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		if dialed {
			return nil, errors.New("worker host down")
		}
		dialed = true
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return plan.Wrap(conn, 0), nil
	}
}

// centralReference computes the in-process stratification the
// distributed runs must match bit-for-bit.
func centralReference(t *testing.T, corpus pivots.Corpus) *strata.Stratification {
	t.Helper()
	st, err := strata.Stratify(corpus, strata.StratifierConfig{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func assertBitIdentical(t *testing.T, dist, central *strata.Stratification) {
	t.Helper()
	if !reflect.DeepEqual(dist.Assign, central.Assign) {
		t.Fatal("distributed assignment differs from centralized")
	}
	if !reflect.DeepEqual(dist.WeightTotals, central.WeightTotals) {
		t.Fatal("weight totals differ")
	}
	for s := range central.Members {
		if !reflect.DeepEqual(dist.Members[s], central.Members[s]) {
			t.Fatalf("stratum %d members differ", s)
		}
	}
}

// TestRecoveryFromDeadWorker kills worker 1 mid-sketch (its connection
// dies after a few operations and its host never answers again) and
// asserts the coordinator detects the missing shard at the bounded
// sketch barrier, re-sketches it locally, and the run completes with a
// stratification bit-identical to the in-process one.
func TestRecoveryFromDeadWorker(t *testing.T) {
	corpus := testCorpus(t, 0.0006)
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	master, err := kvstore.DialOptions(addr, time.Second, faultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	workers := make([]*kvstore.Client, 4)
	for i := range workers {
		opts := faultOpts(int64(i) + 2)
		if i == 1 {
			opts.Dialer = crashingDialer(4)
		}
		if workers[i], err = kvstore.DialOptions(addr, time.Second, opts); err != nil {
			t.Fatal(err)
		}
		defer workers[i].Close()
	}

	dist, report, err := StratifyDetailed(master, workers, corpus, fastFaultOptions())
	if err != nil {
		t.Fatalf("StratifyDetailed with dead worker: %v", err)
	}
	if !report.Aborted {
		t.Error("coordinator never aborted the sketch barrier")
	}
	found := false
	for _, s := range report.RecoveredShards {
		if s == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("shard 1 not recovered (recovered: %v)", report.RecoveredShards)
	}
	if report.WorkerErrs[1] == nil {
		t.Error("dead worker reported no error")
	}
	if report.Failures() == 0 {
		t.Error("report counts no failures")
	}
	assertBitIdentical(t, dist, centralReference(t, corpus))
}

// TestRecoveryUnderCrashAndDrops is the acceptance scenario: a seeded
// fault plan injecting one worker crash AND ≥5% connection drops on
// every server-side connection. The run must still complete and return
// the bit-identical stratification.
func TestRecoveryUnderCrashAndDrops(t *testing.T) {
	corpus := testCorpus(t, 0.0006)
	srv := kvstore.NewServer(nil)
	srv.SetConnWrapper(faultnet.Plan{Seed: 42, DropRate: 0.05}.Wrapper())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	master, err := kvstore.DialOptions(addr, time.Second, faultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	workers := make([]*kvstore.Client, 4)
	for i := range workers {
		opts := faultOpts(int64(i) + 2)
		if i == 2 {
			opts.Dialer = crashingDialer(3)
		}
		if workers[i], err = kvstore.DialOptions(addr, time.Second, opts); err != nil {
			t.Fatal(err)
		}
		defer workers[i].Close()
	}

	o := fastFaultOptions()
	o.AssignWait = 4 * time.Second // drops slow the live workers down
	dist, report, err := StratifyDetailed(master, workers, corpus, o)
	if err != nil {
		t.Fatalf("StratifyDetailed under crash+drops: %v", err)
	}
	if report.WorkerErrs[2] == nil {
		t.Error("crashed worker reported no error")
	}
	assertBitIdentical(t, dist, centralReference(t, corpus))
}

// TestDisableRecoveryFailsFast: with recovery off, a dead worker must
// surface an error (bounded by the coordinator's sketch wait), not a
// bit-rotted result or a hang.
func TestDisableRecoveryFailsFast(t *testing.T) {
	corpus := testCorpus(t, 0.0003)
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	master, err := kvstore.DialOptions(addr, time.Second, faultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	workers := make([]*kvstore.Client, 2)
	for i := range workers {
		opts := faultOpts(int64(i) + 2)
		if i == 0 {
			opts.Dialer = crashingDialer(2)
		}
		if workers[i], err = kvstore.DialOptions(addr, time.Second, opts); err != nil {
			t.Fatal(err)
		}
		defer workers[i].Close()
	}
	o := fastFaultOptions()
	o.Cluster = strata.Config{K: 4, L: 2, Seed: 3}
	o.SketchWait = 400 * time.Millisecond
	o.AssignWait = time.Second
	o.DisableRecovery = true
	start := time.Now()
	_, _, err = StratifyDetailed(master, workers, corpus, o)
	if err == nil {
		t.Fatal("dead worker with recovery disabled succeeded")
	}
	if !strings.Contains(err.Error(), "barrier") {
		t.Errorf("unexpected error: %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Errorf("fail-fast took %v", time.Since(start))
	}
}

// TestCleanRunReportsNoRecovery: the fault machinery must stay cold on
// a healthy cluster.
func TestCleanRunReportsNoRecovery(t *testing.T) {
	corpus := testCorpus(t, 0.0006)
	master, workers := startStore(t, 4)
	dist, report, err := StratifyDetailed(master, workers, corpus, fastFaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.Aborted || len(report.RecoveredShards) != 0 || report.RecoveredRecords != 0 {
		t.Errorf("clean run engaged recovery: %+v", report)
	}
	if report.Failures() != 0 {
		t.Errorf("clean run reports failures: %v", report.WorkerErrs)
	}
	assertBitIdentical(t, dist, centralReference(t, corpus))
}
