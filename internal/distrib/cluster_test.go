package distrib

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pareto/internal/kvstore"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// startSlotCluster stands up n slot-partitioned kvstore servers (an
// even SplitSlots map) and returns cluster clients: one master plus
// `clients` workers, each its own ClusterClient with its own
// connection pool, exactly how separate worker processes would dial in.
func startSlotCluster(t *testing.T, n, clients int) (*kvstore.ClusterClient, []*kvstore.ClusterClient) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*kvstore.Server, n)
	for i := range servers {
		srv := kvstore.NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = addr
	}
	ranges := kvstore.SplitSlots(addrs)
	for i, srv := range servers {
		if err := srv.SetClusterSlots(addrs[i], ranges); err != nil {
			t.Fatal(err)
		}
	}
	dial := func() *kvstore.ClusterClient {
		cc, err := kvstore.DialCluster(addrs[:1], time.Second, kvstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cc.Close() })
		return cc
	}
	master := dial()
	ws := make([]*kvstore.ClusterClient, clients)
	for i := range ws {
		ws[i] = dial()
	}
	return master, ws
}

// The distributed stratifier must run unchanged against a 3-process
// slot-partitioned cluster: every shipped shard, assignment record,
// and barrier counter routes to its slot's owner, and the result is
// still bit-identical to the centralized run.
func TestDistributedOverSlotCluster(t *testing.T) {
	corpus := testCorpus(t, 0.0006)
	master, workers := startSlotCluster(t, 3, 4)
	opts := Options{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	}
	dist, err := Stratify(master, workers, corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	central, err := strata.Stratify(corpus, strata.StratifierConfig{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Assign, central.Assign) {
		t.Fatal("cluster-distributed assignment differs from centralized")
	}
	if !reflect.DeepEqual(dist.WeightTotals, central.WeightTotals) {
		t.Fatal("weight totals differ")
	}
	for s := range central.Members {
		if !reflect.DeepEqual(dist.Members[s], central.Members[s]) {
			t.Fatalf("stratum %d members differ", s)
		}
	}
}

// The distributed stratifier must also be indifferent to *which*
// process serves a slot range: after a primary is crashed and a replica
// auto-promoted in its place, a run over the reshaped cluster must
// still be bit-identical to the centralized stratification — failover
// changes topology, never data or routing semantics.
func TestDistributedAfterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover test")
	}
	corpus := testCorpus(t, 0.0006)
	const n = 3
	addrs := make([]string, n)
	servers := make([]*kvstore.Server, n)
	for i := range servers {
		srv := kvstore.NewServer(nil)
		if i == 0 {
			// Node 0 will be crashed; only it needs the record log a
			// replica can stream from.
			if err := srv.EnableAOF(filepath.Join(t.TempDir(), "p0.aof"), time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = addr
	}
	ranges := kvstore.SplitSlots(addrs)
	for i, srv := range servers {
		if err := srv.SetClusterSlots(addrs[i], ranges); err != nil {
			t.Fatal(err)
		}
	}
	replica := kvstore.NewServer(nil)
	raddr, err := replica.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	if err := replica.SetClusterSlots(raddr, ranges); err != nil {
		t.Fatal(err)
	}
	if err := replica.StartReplicaOf(addrs[0], kvstore.ReplicaOptions{
		SelfAddr: raddr, StreamTimeout: 500 * time.Millisecond,
		RetryBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	// Wait until node 0 advertises its replica, so the watchdog client
	// dialed next learns the failover candidate from its first refresh.
	pc, err := kvstore.Dial(addrs[0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	attached := func() bool {
		rep, err := pc.Do("REPLINFO")
		if err != nil || rep.Err() != nil {
			return false
		}
		var info struct {
			Replicas []struct {
				Addr string `json:"addr"`
			} `json:"replicas"`
		}
		if json.Unmarshal(rep.Bulk, &info) != nil {
			return false
		}
		return len(info.Replicas) == 1 && info.Replicas[0].Addr == raddr
	}
	for deadline := time.Now().Add(5 * time.Second); !attached(); {
		if time.Now().After(deadline) {
			t.Fatal("replica never attached to node 0")
		}
		time.Sleep(5 * time.Millisecond)
	}

	reg := telemetry.NewRegistry()
	watchdog, err := kvstore.DialClusterOptions(addrs, time.Second, kvstore.ClusterOptions{
		Client:         kvstore.Options{OpTimeout: 500 * time.Millisecond, Telemetry: reg},
		HeartbeatEvery: 20 * time.Millisecond,
		FailAfter:      80 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		AutoFailover:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { watchdog.Close() })

	servers[0].Kill()
	for deadline := time.Now().Add(10 * time.Second); ; {
		if reg.Snapshot().Counters["kv_cluster_client_failovers_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("automatic failover never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}

	seeds := []string{addrs[1], addrs[2], raddr}
	dial := func() *kvstore.ClusterClient {
		cc, err := kvstore.DialClusterOptions(seeds, time.Second, kvstore.ClusterOptions{
			Client:        faultOpts(3),
			RouteDeadline: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cc.Close() })
		return cc
	}
	master := dial()
	workers := make([]*kvstore.ClusterClient, 4)
	for i := range workers {
		workers[i] = dial()
	}
	opts := Options{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	}
	dist, err := Stratify(master, workers, corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	central, err := strata.Stratify(corpus, strata.StratifierConfig{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Assign, central.Assign) {
		t.Fatal("post-failover distributed assignment differs from centralized")
	}
	if !reflect.DeepEqual(dist.WeightTotals, central.WeightTotals) {
		t.Fatal("weight totals differ")
	}
}

// A typed-nil ClusterClient must be caught by the same validation that
// rejects a nil *Client master.
func TestDistributedClusterValidation(t *testing.T) {
	corpus := testCorpus(t, 0.0003)
	_, workers := startSlotCluster(t, 2, 2)
	var nilMaster *kvstore.ClusterClient
	if _, err := Stratify(nilMaster, workers, corpus, Options{Cluster: strata.Config{K: 2, L: 1}}); err == nil {
		t.Error("typed-nil cluster master accepted")
	}
}
