package distrib

import (
	"reflect"
	"testing"
	"time"

	"pareto/internal/kvstore"
	"pareto/internal/strata"
)

// startSlotCluster stands up n slot-partitioned kvstore servers (an
// even SplitSlots map) and returns cluster clients: one master plus
// `clients` workers, each its own ClusterClient with its own
// connection pool, exactly how separate worker processes would dial in.
func startSlotCluster(t *testing.T, n, clients int) (*kvstore.ClusterClient, []*kvstore.ClusterClient) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*kvstore.Server, n)
	for i := range servers {
		srv := kvstore.NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = addr
	}
	ranges := kvstore.SplitSlots(addrs)
	for i, srv := range servers {
		if err := srv.SetClusterSlots(addrs[i], ranges); err != nil {
			t.Fatal(err)
		}
	}
	dial := func() *kvstore.ClusterClient {
		cc, err := kvstore.DialCluster(addrs[:1], time.Second, kvstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cc.Close() })
		return cc
	}
	master := dial()
	ws := make([]*kvstore.ClusterClient, clients)
	for i := range ws {
		ws[i] = dial()
	}
	return master, ws
}

// The distributed stratifier must run unchanged against a 3-process
// slot-partitioned cluster: every shipped shard, assignment record,
// and barrier counter routes to its slot's owner, and the result is
// still bit-identical to the centralized run.
func TestDistributedOverSlotCluster(t *testing.T) {
	corpus := testCorpus(t, 0.0006)
	master, workers := startSlotCluster(t, 3, 4)
	opts := Options{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	}
	dist, err := Stratify(master, workers, corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	central, err := strata.Stratify(corpus, strata.StratifierConfig{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Assign, central.Assign) {
		t.Fatal("cluster-distributed assignment differs from centralized")
	}
	if !reflect.DeepEqual(dist.WeightTotals, central.WeightTotals) {
		t.Fatal("weight totals differ")
	}
	for s := range central.Members {
		if !reflect.DeepEqual(dist.Members[s], central.Members[s]) {
			t.Fatalf("stratum %d members differ", s)
		}
	}
}

// A typed-nil ClusterClient must be caught by the same validation that
// rejects a nil *Client master.
func TestDistributedClusterValidation(t *testing.T) {
	corpus := testCorpus(t, 0.0003)
	_, workers := startSlotCluster(t, 2, 2)
	var nilMaster *kvstore.ClusterClient
	if _, err := Stratify(nilMaster, workers, corpus, Options{Cluster: strata.Config{K: 2, L: 1}}); err == nil {
		t.Error("typed-nil cluster master accepted")
	}
}
