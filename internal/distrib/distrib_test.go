package distrib

import (
	"reflect"
	"testing"
	"time"

	"pareto/internal/datasets"
	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/sketch"
	"pareto/internal/strata"
)

func testCorpus(t *testing.T, scale float64) *pivots.TextCorpus {
	t.Helper()
	cfg := datasets.RCV1Like(scale)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func startStore(t *testing.T, clients int) (*kvstore.Client, []*kvstore.Client) {
	t.Helper()
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	dial := func() *kvstore.Client {
		c, err := kvstore.Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	master := dial()
	ws := make([]*kvstore.Client, clients)
	for i := range ws {
		ws[i] = dial()
	}
	return master, ws
}

func TestDistributedMatchesCentralized(t *testing.T) {
	corpus := testCorpus(t, 0.0006)
	master, workers := startStore(t, 4)
	opts := Options{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	}
	dist, err := Stratify(master, workers, corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	central, err := strata.Stratify(corpus, strata.StratifierConfig{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Assign, central.Assign) {
		t.Fatal("distributed assignment differs from centralized")
	}
	if !reflect.DeepEqual(dist.WeightTotals, central.WeightTotals) {
		t.Fatal("weight totals differ")
	}
	for s := range central.Members {
		if !reflect.DeepEqual(dist.Members[s], central.Members[s]) {
			t.Fatalf("stratum %d members differ", s)
		}
	}
}

func TestDistributedSingleWorker(t *testing.T) {
	corpus := testCorpus(t, 0.0003)
	master, workers := startStore(t, 1)
	dist, err := Stratify(master, workers, corpus, Options{
		Cluster: strata.Config{K: 4, L: 2, Seed: 3},
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Assign) != corpus.Len() {
		t.Errorf("assignment covers %d of %d", len(dist.Assign), corpus.Len())
	}
}

func TestDistributedValidation(t *testing.T) {
	corpus := testCorpus(t, 0.0003)
	master, workers := startStore(t, 2)
	if _, err := Stratify(nil, workers, corpus, Options{Cluster: strata.Config{K: 2, L: 1}}); err == nil {
		t.Error("nil master accepted")
	}
	if _, err := Stratify(master, nil, corpus, Options{Cluster: strata.Config{K: 2, L: 1}}); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := Stratify(master, workers, nil, Options{Cluster: strata.Config{K: 2, L: 1}}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := Stratify(master, workers, corpus, Options{Cluster: strata.Config{K: 0, L: 1}}); err == nil {
		t.Error("K=0 accepted (cluster config must validate)")
	}
}

func TestDistributedMoreWorkersThanRecords(t *testing.T) {
	docs := []pivots.Doc{{Terms: []uint32{0, 1}}, {Terms: []uint32{2, 3}}}
	corpus, err := pivots.NewTextCorpus(docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	master, workers := startStore(t, 5) // some shards empty
	dist, err := Stratify(master, workers, corpus, Options{
		Cluster: strata.Config{K: 2, L: 1, Seed: 1},
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Assign) != 2 {
		t.Errorf("assignment %v", dist.Assign)
	}
}

func TestSketchRecordRoundtrip(t *testing.T) {
	s := sketch.Sketch{1, 2, 1 << 60}
	enc, err := encodeSketchRecord(42, s)
	if err != nil {
		t.Fatal(err)
	}
	idx, back, err := decodeSketchRecord(enc, 3)
	if err != nil || idx != 42 {
		t.Fatalf("idx %d err %v", idx, err)
	}
	for i := range s {
		if back[i] != s[i] {
			t.Fatal("sketch mangled")
		}
	}
	if _, _, err := decodeSketchRecord([]byte{1, 2}, 3); err == nil {
		t.Error("short record accepted")
	}
}

func TestSketchRecordRejectsWireOverflow(t *testing.T) {
	s := sketch.Sketch{1}
	if _, err := encodeSketchRecord(-1, s); err == nil {
		t.Error("negative index accepted")
	}
	if big := int(int64(1) << 32); big > 0 { // skip on 32-bit int
		if _, err := encodeSketchRecord(big, s); err == nil {
			t.Error("index past uint32 accepted")
		}
	}
}

func TestAssignmentRoundtrip(t *testing.T) {
	in := []int{0, 5, 2, 7, 1}
	enc, err := encodeAssignment(in)
	if err != nil {
		t.Fatal(err)
	}
	out := decodeAssignment(enc)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip %v", out)
	}
}

func TestAssignmentRejectsWireOverflow(t *testing.T) {
	if _, err := encodeAssignment([]int{0, -3}); err == nil {
		t.Error("negative stratum accepted")
	}
	if big := int(int64(1) << 32); big > 0 { // skip on 32-bit int
		if _, err := encodeAssignment([]int{big}); err == nil {
			t.Error("stratum past uint32 accepted")
		}
	}
}
