// Package distrib runs the stratification pipeline the way paper §IV
// actually deploys it: distributed across workers that communicate
// only through the key-value store.
//
//   - Each worker extracts pivots and computes minhash sketches for its
//     shard of the corpus (the embarrassingly parallel, data-heavy
//     step), and ships the sketches to the master store with pipelined
//     writes — sketches are orders of magnitude smaller than records,
//     which is exactly why the paper centralizes the next step.
//   - A global barrier (fetch-and-increment) separates the phases.
//   - The master clusters the gathered sketches with compositeKModes
//     ("we chose to do the clustering in a centralized manner as the
//     compositeKmodes algorithm is run on the sketches rather than the
//     actual data") and publishes the record→stratum assignment.
//   - Workers fetch the assignment for their shard and return.
//
// The result is bit-identical to the in-process strata.Stratify (same
// seeds, same order), which the tests assert.
package distrib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/sketch"
	"pareto/internal/strata"
)

// Options configures the distributed stratification.
type Options struct {
	// SketchWidth is the minhash width (0 = strata.DefaultSketchWidth).
	SketchWidth int
	// Cluster configures compositeKModes (K required).
	Cluster strata.Config
	// Seed drives the shared hash family; all workers must agree.
	Seed int64
	// PipelineWidth batches sketch shipping (0 = 128).
	PipelineWidth int
	// KeyPrefix namespaces this run's keys on the store (0 = "strat").
	KeyPrefix string
}

func (o *Options) normalize() {
	if o.SketchWidth <= 0 {
		o.SketchWidth = strata.DefaultSketchWidth
	}
	if o.PipelineWidth <= 0 {
		o.PipelineWidth = 128
	}
	if o.KeyPrefix == "" {
		o.KeyPrefix = "strat"
	}
}

// encodeSketchRecord serializes (record index, sketch) for the wire.
func encodeSketchRecord(idx int, s sketch.Sketch) []byte {
	buf := make([]byte, 4+8*len(s))
	binary.LittleEndian.PutUint32(buf, uint32(idx))
	for i, v := range s {
		binary.LittleEndian.PutUint64(buf[4+8*i:], v)
	}
	return buf
}

// decodeSketchRecord reverses encodeSketchRecord.
func decodeSketchRecord(buf []byte, width int) (int, sketch.Sketch, error) {
	if len(buf) != 4+8*width {
		return 0, nil, fmt.Errorf("distrib: sketch record of %d bytes, want %d", len(buf), 4+8*width)
	}
	idx := int(binary.LittleEndian.Uint32(buf))
	s := make(sketch.Sketch, width)
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(buf[4+8*i:])
	}
	return idx, s, nil
}

// encodeAssignment serializes the record→stratum table.
func encodeAssignment(assign []int) []byte {
	buf := make([]byte, 4*len(assign))
	for i, a := range assign {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(a))
	}
	return buf
}

// decodeAssignment reverses encodeAssignment.
func decodeAssignment(buf []byte) []int {
	out := make([]int, len(buf)/4)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

// Stratify runs the §IV distributed stratification. workers[i] is the
// store connection worker i uses (they may point at the same server or
// different ones — every key this package writes lives on the master's
// server, reachable through any client handed in). master is the
// coordinator's own connection. Worker i sketches the contiguous shard
// i of the corpus; shards are computed internally.
func Stratify(master *kvstore.Client, workers []*kvstore.Client, corpus pivots.Corpus, o Options) (*strata.Stratification, error) {
	if master == nil || len(workers) == 0 {
		return nil, errors.New("distrib: need a master client and at least one worker")
	}
	if corpus == nil || corpus.Len() == 0 {
		return nil, errors.New("distrib: empty corpus")
	}
	o.normalize()
	// Fail fast on clustering misconfiguration: the protocol must not
	// start if the coordinator is guaranteed to abort mid-phase.
	if o.Cluster.K < 1 || o.Cluster.L < 1 {
		return nil, fmt.Errorf("distrib: invalid cluster config K=%d L=%d", o.Cluster.K, o.Cluster.L)
	}
	n := corpus.Len()
	w := len(workers)
	hasher, err := sketch.NewHasher(o.SketchWidth, o.Seed)
	if err != nil {
		return nil, err
	}
	parties := w + 1 // workers + coordinator

	sketchKey := func(i int) string { return o.KeyPrefix + ":sketches:" + strconv.Itoa(i) }
	assignKey := o.KeyPrefix + ":assign"

	var wg sync.WaitGroup
	errs := make([]error, w)
	shardAssigns := make([][]int, w)
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runWorker(workers[i], corpus, hasher, i, w, parties, sketchKey(i), assignKey, o, &shardAssigns[i])
		}(i)
	}

	// Coordinator: wait for all sketches, cluster, publish. If the
	// coordinator fails mid-protocol it still arrives at its remaining
	// barriers so workers are released rather than timing out.
	coordErr := func() (err error) {
		b, berr := kvstore.NewBarrier(master, o.KeyPrefix+":sketched", parties)
		if berr != nil {
			return berr
		}
		pbEarly, berr := kvstore.NewBarrier(master, o.KeyPrefix+":published", parties)
		if berr != nil {
			return berr
		}
		arrived := false
		defer func() {
			if err != nil && !arrived {
				_ = pbEarly.Arrive()
			}
		}()
		if err := b.Await(); err != nil {
			return fmt.Errorf("distrib: coordinator sketch barrier: %w", err)
		}
		sketches := make([]sketch.Sketch, n)
		for i := 0; i < w; i++ {
			records, err := master.LRange(sketchKey(i), 0, -1)
			if err != nil {
				return fmt.Errorf("distrib: gathering worker %d sketches: %w", i, err)
			}
			for _, rec := range records {
				idx, s, err := decodeSketchRecord(rec, o.SketchWidth)
				if err != nil {
					return err
				}
				if idx < 0 || idx >= n {
					return fmt.Errorf("distrib: sketch for out-of-range record %d", idx)
				}
				sketches[idx] = s
			}
		}
		for i, s := range sketches {
			if s == nil {
				return fmt.Errorf("distrib: record %d never sketched", i)
			}
		}
		res, err := strata.Cluster(sketches, o.Cluster)
		if err != nil {
			return err
		}
		if err := master.Set(assignKey, encodeAssignment(res.Assign)); err != nil {
			return fmt.Errorf("distrib: publishing assignment: %w", err)
		}
		arrived = true
		if err := pbEarly.Await(); err != nil {
			return fmt.Errorf("distrib: coordinator publish barrier: %w", err)
		}
		return nil
	}()
	wg.Wait()
	if coordErr != nil {
		return nil, coordErr
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("distrib: worker %d: %w", i, err)
		}
	}

	// Reassemble the full stratification from the published assignment
	// (the coordinator could keep it in memory; reading it back through
	// the store exercises the same path the workers used).
	raw, err := master.Get(assignKey)
	if err != nil {
		return nil, err
	}
	assign := decodeAssignment(raw)
	if len(assign) != n {
		return nil, fmt.Errorf("distrib: assignment covers %d of %d records", len(assign), n)
	}
	// Every worker saw the same published assignment for its shard.
	for i := range workers {
		lo := i * n / w
		for off, a := range shardAssigns[i] {
			if assign[lo+off] != a {
				return nil, fmt.Errorf("distrib: worker %d shard assignment diverges at record %d", i, lo+off)
			}
		}
	}
	k := o.Cluster.K
	if k > n {
		k = n
	}
	members := make([][]int, k)
	for i, a := range assign {
		if a < 0 || a >= k {
			return nil, fmt.Errorf("distrib: record %d assigned to stratum %d of %d", i, a, k)
		}
		members[a] = append(members[a], i)
	}
	wt := make([]int, k)
	for i, a := range assign {
		wt[a] += corpus.Weight(i)
	}
	// Rebuild sketches locally for the Stratification value (cheap
	// relative to shipping them back).
	sketches := strata.SketchCorpus(corpus, hasher, 0)
	return &strata.Stratification{
		Result: &strata.Result{
			Assign:  assign,
			Members: members,
		},
		Sketches:     sketches,
		WeightTotals: wt,
	}, nil
}

// runWorker executes one worker's phases: sketch shard → ship →
// barrier → fetch assignment → barrier.
func runWorker(c *kvstore.Client, corpus pivots.Corpus, hasher *sketch.Hasher, i, w, parties int, sketchKey, assignKey string, o Options, shardAssign *[]int) error {
	n := corpus.Len()
	lo := i * n / w
	hi := (i + 1) * n / w
	if _, err := c.Del(sketchKey); err != nil {
		return err
	}
	p, err := c.NewPipeline(o.PipelineWidth)
	if err != nil {
		return err
	}
	for r := lo; r < hi; r++ {
		s := hasher.Sketch(corpus.ItemSet(r))
		if err := p.Send("RPUSH", []byte(sketchKey), encodeSketchRecord(r, s)); err != nil {
			return err
		}
	}
	reps, err := p.Finish()
	if err != nil {
		return err
	}
	for _, rep := range reps {
		if err := rep.Err(); err != nil {
			return err
		}
	}
	b, err := kvstore.NewBarrier(c, o.KeyPrefix+":sketched", parties)
	if err != nil {
		return err
	}
	if err := b.Await(); err != nil {
		return err
	}
	pb, err := kvstore.NewBarrier(c, o.KeyPrefix+":published", parties)
	if err != nil {
		return err
	}
	if err := pb.Await(); err != nil {
		return err
	}
	raw, err := c.Get(assignKey)
	if err != nil {
		return err
	}
	assign := decodeAssignment(raw)
	if len(assign) != n {
		return fmt.Errorf("assignment covers %d of %d records", len(assign), n)
	}
	*shardAssign = assign[lo:hi]
	return nil
}
