// Package distrib runs the stratification pipeline the way paper §IV
// actually deploys it: distributed across workers that communicate
// only through the key-value store.
//
//   - Each worker extracts pivots and computes minhash sketches for its
//     shard of the corpus (the embarrassingly parallel, data-heavy
//     step), and ships the sketches to the master store with pipelined
//     writes — sketches are orders of magnitude smaller than records,
//     which is exactly why the paper centralizes the next step.
//   - A global barrier (fetch-and-increment) separates the phases.
//   - The master clusters the gathered sketches with compositeKModes
//     ("we chose to do the clustering in a centralized manner as the
//     compositeKmodes algorithm is run on the sketches rather than the
//     actual data") and publishes the record→stratum assignment.
//   - Workers fetch the assignment for their shard and return.
//
// The result is bit-identical to the in-process strata.Stratify (same
// seeds, same order), which the tests assert.
//
// # Fault tolerance
//
// Real heterogeneous clusters flap, so the protocol survives worker
// death and connection faults:
//
//   - Each worker writes a per-shard completion marker after shipping
//     its sketches, and re-ships the whole shard (DEL + re-push, which
//     is idempotent as a unit) when a pipeline fails mid-flight.
//   - The coordinator bounds its wait at the sketch barrier
//     (Options.SketchWait). Past the bound it aborts the barrier —
//     releasing live workers immediately instead of letting them burn
//     their timeouts — reads the completion markers, and re-sketches
//     the missing shards locally. Sketching is a pure function of
//     (corpus, hasher), so recovery is bit-identical to what the dead
//     worker would have produced, and a run with up to f dead workers
//     still returns the exact in-process stratification.
//   - Workers treat the sketch barrier as advisory: released by abort,
//     timeout, or even a failed fetch-and-increment, they fall through
//     to polling for the published assignment, which is the
//     authoritative phase-two signal. A run-level abort key stops
//     pollers promptly when the coordinator fails terminally.
package distrib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"sync"
	"time"

	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/sketch"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// Options configures the distributed stratification.
type Options struct {
	// SketchWidth is the minhash width (0 = strata.DefaultSketchWidth).
	SketchWidth int
	// Cluster configures compositeKModes (K required).
	Cluster strata.Config
	// Seed drives the shared hash family; all workers must agree.
	Seed int64
	// PipelineWidth batches sketch shipping: how many RPUSH commands
	// may be in flight before the pipeline flushes (0 = 128). Since
	// records travel many-per-command (MaxShipBytes), the width bounds
	// commands, not records, exactly as before the batching overhaul.
	PipelineWidth int
	// MaxShipBytes caps the record payload packed into one variadic
	// RPUSH command, so a single command can never blow up the server's
	// read arena (0 = 1 MiB).
	MaxShipBytes int
	// KeyPrefix namespaces this run's keys on the store (0 = "strat").
	KeyPrefix string

	// SketchWait bounds the coordinator's wait for workers at the
	// sketch barrier; past it the coordinator aborts the barrier and
	// recovers missing shards locally (0 = 30s). Workers wait up to
	// 2×SketchWait so the coordinator's recovery fires first.
	SketchWait time.Duration
	// AssignWait bounds each worker's poll for the published
	// assignment (0 = 30s).
	AssignWait time.Duration
	// PollInterval is the initial store poll interval for barrier and
	// assignment waits; polls back off exponentially (0 = 1ms).
	PollInterval time.Duration
	// ShipRetries is how many extra times a worker re-ships its whole
	// shard after a failed pipeline — RPUSHes are not individually
	// retryable (kvstore.ErrNotRetryable), but DEL + re-push of the
	// shard is idempotent as a unit (0 = 2, negative = none).
	ShipRetries int
	// DisableRecovery makes any worker failure terminal for the whole
	// run (the pre-fault-tolerance behavior).
	DisableRecovery bool

	// Telemetry, when non-nil, records protocol metrics: shipped
	// payload bytes, whole-shard ship retries, recovery events, barrier
	// aborts, and barrier wait time. nil disables instrumentation.
	Telemetry *telemetry.Registry
}

// distribMetrics bundles the run's pre-resolved metrics. With a nil
// registry every field is a nil metric whose methods no-op, so call
// sites stay unconditional (clock reads are still guarded).
type distribMetrics struct {
	shipBytes   *telemetry.Counter
	shipRetries *telemetry.Counter
	recShards   *telemetry.Counter
	recRecords  *telemetry.Counter
	aborts      *telemetry.Counter
	barrierWait *telemetry.Histogram
}

func newDistribMetrics(reg *telemetry.Registry) distribMetrics {
	return distribMetrics{
		shipBytes:   reg.Counter("distrib_ship_bytes_total"),
		shipRetries: reg.Counter("distrib_ship_retries_total"),
		recShards:   reg.Counter("distrib_recovered_shards_total"),
		recRecords:  reg.Counter("distrib_recovered_records_total"),
		aborts:      reg.Counter("distrib_barrier_aborts_total"),
		barrierWait: reg.Histogram("distrib_barrier_wait_ns", telemetry.LatencyBuckets()),
	}
}

func (o *Options) normalize() {
	if o.SketchWidth <= 0 {
		o.SketchWidth = strata.DefaultSketchWidth
	}
	if o.PipelineWidth <= 0 {
		o.PipelineWidth = 128
	}
	if o.MaxShipBytes <= 0 {
		o.MaxShipBytes = 1 << 20
	}
	if o.KeyPrefix == "" {
		o.KeyPrefix = "strat"
	}
	if o.SketchWait <= 0 {
		o.SketchWait = 30 * time.Second
	}
	if o.AssignWait <= 0 {
		o.AssignWait = 30 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Millisecond
	}
	if o.ShipRetries == 0 {
		o.ShipRetries = 2
	} else if o.ShipRetries < 0 {
		o.ShipRetries = 0
	}
}

// Run keys, all under o.KeyPrefix.
func (o *Options) sketchKey(i int) string { return o.KeyPrefix + ":sketches:" + strconv.Itoa(i) }
func (o *Options) doneKey(i int) string   { return o.KeyPrefix + ":done:" + strconv.Itoa(i) }
func (o *Options) assignKey() string      { return o.KeyPrefix + ":assign" }
func (o *Options) abortKey() string       { return o.KeyPrefix + ":abort" }
func (o *Options) barrierName() string    { return o.KeyPrefix + ":sketched" }

// Report describes how a distributed run actually went — which fault
// paths fired. A non-nil Report accompanies both success and failure.
type Report struct {
	// Aborted reports that the coordinator aborted the sketch barrier
	// to engage recovery.
	Aborted bool
	// RecoveredShards lists shards the coordinator re-sketched locally
	// because their completion marker was missing at the bounded wait.
	RecoveredShards []int
	// RecoveredRecords counts records recovered by the defensive
	// per-record sweep (shards whose worker arrived at the barrier but
	// shipped incompletely).
	RecoveredRecords int
	// WorkerErrs[i] is worker i's terminal error; nil for a clean
	// worker. Non-nil entries are tolerated whenever the coordinator
	// produced the full assignment (unless Options.DisableRecovery).
	WorkerErrs []error
}

// Failures counts workers that ended with an error.
func (r *Report) Failures() int {
	n := 0
	for _, err := range r.WorkerErrs {
		if err != nil {
			n++
		}
	}
	return n
}

// isNilKV reports whether a generically typed client is nil — either
// the interface itself or a typed-nil pointer inside it, which a plain
// == nil against the type parameter cannot see.
func isNilKV(v kvstore.KV) bool {
	if v == nil {
		return true
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface, reflect.Map, reflect.Chan, reflect.Func, reflect.Slice:
		return rv.IsNil()
	}
	return false
}

// appendSketchRecord serializes (record index, sketch) for the wire,
// appending onto buf — batch encoding packs a whole chunk of records
// into one flat arena. The index travels as uint32; larger corpora
// must be rejected rather than silently wrapped.
func appendSketchRecord(buf []byte, idx int, s sketch.Sketch) ([]byte, error) {
	if idx < 0 || int64(idx) > math.MaxUint32 {
		return buf, fmt.Errorf("distrib: record index %d outside uint32 wire range", idx)
	}
	need := 4 + 8*len(s)
	start := len(buf)
	if cap(buf)-start >= need {
		buf = buf[:start+need]
	} else {
		buf = append(buf, make([]byte, need)...)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(idx))
	for i, v := range s {
		binary.LittleEndian.PutUint64(buf[start+4+8*i:], v)
	}
	return buf, nil
}

// encodeSketchRecord is appendSketchRecord into fresh memory.
func encodeSketchRecord(idx int, s sketch.Sketch) ([]byte, error) {
	return appendSketchRecord(nil, idx, s)
}

// decodeSketchRecord reverses encodeSketchRecord.
func decodeSketchRecord(buf []byte, width int) (int, sketch.Sketch, error) {
	if len(buf) != 4+8*width {
		return 0, nil, fmt.Errorf("distrib: sketch record of %d bytes, want %d", len(buf), 4+8*width)
	}
	idx := int(binary.LittleEndian.Uint32(buf))
	s := make(sketch.Sketch, width)
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(buf[4+8*i:])
	}
	return idx, s, nil
}

// encodeAssignment serializes the record→stratum table. Strata travel
// as uint32; negative or oversized values are corruption, not data.
func encodeAssignment(assign []int) ([]byte, error) {
	buf := make([]byte, 4*len(assign))
	for i, a := range assign {
		if a < 0 || int64(a) > math.MaxUint32 {
			return nil, fmt.Errorf("distrib: stratum %d for record %d outside uint32 wire range", a, i)
		}
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(a))
	}
	return buf, nil
}

// decodeAssignment reverses encodeAssignment.
func decodeAssignment(buf []byte) []int {
	out := make([]int, len(buf)/4)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

// Stratify runs the §IV distributed stratification. workers[i] is the
// store connection worker i uses (they may point at the same server or
// different ones — every key this package writes lives on the master's
// server, reachable through any client handed in). master is the
// coordinator's own connection. Worker i sketches the contiguous shard
// i of the corpus; shards are computed internally.
//
// The client type is generic over kvstore.KV, so existing
// []*kvstore.Client call sites compile unchanged while a slot-routed
// []*kvstore.ClusterClient points the identical protocol at a
// partitioned cluster — the run's keys spread across slot owners, and
// no shipping or barrier code changes.
func Stratify[C kvstore.KV](master C, workers []C, corpus pivots.Corpus, o Options) (*strata.Stratification, error) {
	st, _, err := StratifyDetailed(master, workers, corpus, o)
	return st, err
}

// StratifyDetailed is Stratify plus a Report of which fault-recovery
// paths fired (shard recoveries, worker failures, barrier aborts).
func StratifyDetailed[C kvstore.KV](master C, workers []C, corpus pivots.Corpus, o Options) (*strata.Stratification, *Report, error) {
	if isNilKV(master) || len(workers) == 0 {
		return nil, nil, errors.New("distrib: need a master client and at least one worker")
	}
	if corpus == nil || corpus.Len() == 0 {
		return nil, nil, errors.New("distrib: empty corpus")
	}
	o.normalize()
	// Fail fast on clustering misconfiguration: the protocol must not
	// start if the coordinator is guaranteed to abort mid-phase.
	if o.Cluster.K < 1 || o.Cluster.L < 1 {
		return nil, nil, fmt.Errorf("distrib: invalid cluster config K=%d L=%d", o.Cluster.K, o.Cluster.L)
	}
	n := corpus.Len()
	if uint64(n) > math.MaxUint32 {
		return nil, nil, fmt.Errorf("distrib: corpus of %d records exceeds the uint32 wire format", n)
	}
	w := len(workers)
	hasher, err := sketch.NewHasher(o.SketchWidth, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	parties := w + 1 // workers + coordinator
	report := &Report{WorkerErrs: make([]error, w)}
	dm := newDistribMetrics(o.Telemetry)
	var stats strata.StratifyStats

	// Clear this run's control keys before any worker can poll them, so
	// a stale assignment or abort from an earlier run under the same
	// prefix cannot leak in.
	stale := []string{o.assignKey(), o.abortKey()}
	for i := 0; i < w; i++ {
		stale = append(stale, o.doneKey(i))
	}
	if _, err := master.Del(stale...); err != nil {
		return nil, nil, fmt.Errorf("distrib: clearing run keys: %w", err)
	}

	var wg sync.WaitGroup
	shardAssigns := make([][]int, w)
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			report.WorkerErrs[i] = runWorker(workers[i], corpus, hasher, i, w, parties, o, dm, &shardAssigns[i])
		}(i)
	}

	coordErr := runCoordinator(master, corpus, hasher, n, w, parties, o, dm, &stats, report)
	wg.Wait()
	if coordErr != nil {
		return nil, report, coordErr
	}
	if o.DisableRecovery {
		for i, err := range report.WorkerErrs {
			if err != nil {
				return nil, report, fmt.Errorf("distrib: worker %d: %w", i, err)
			}
		}
	}

	// Reassemble the full stratification from the published assignment
	// (the coordinator could keep it in memory; reading it back through
	// the store exercises the same path the workers used).
	raw, err := master.Get(o.assignKey())
	if err != nil {
		return nil, report, err
	}
	assign := decodeAssignment(raw)
	if len(assign) != n {
		return nil, report, fmt.Errorf("distrib: assignment covers %d of %d records", len(assign), n)
	}
	// Every worker that completed saw the same published assignment for
	// its shard (dead workers have no shard view to compare).
	for i := range workers {
		lo := i * n / w
		for off, a := range shardAssigns[i] {
			if assign[lo+off] != a {
				return nil, report, fmt.Errorf("distrib: worker %d shard assignment diverges at record %d", i, lo+off)
			}
		}
	}
	k := o.Cluster.K
	if k > n {
		k = n
	}
	members := make([][]int, k)
	for i, a := range assign {
		if a < 0 || a >= k {
			return nil, report, fmt.Errorf("distrib: record %d assigned to stratum %d of %d", i, a, k)
		}
		members[a] = append(members[a], i)
	}
	wt := make([]int, k)
	for i, a := range assign {
		wt[a] += corpus.Weight(i)
	}
	// Rebuild sketches locally for the Stratification value (cheap
	// relative to shipping them back).
	sketches := strata.SketchCorpus(corpus, hasher, 0)
	return &strata.Stratification{
		Result: &strata.Result{
			Assign:  assign,
			Members: members,
		},
		Sketches:     sketches,
		WeightTotals: wt,
		Stats:        stats,
	}, report, nil
}

// runCoordinator waits (boundedly) for the workers' sketches, recovers
// missing shards locally, clusters, and publishes the assignment. On a
// terminal error it aborts both the barrier and the run so every
// blocked or polling worker is released promptly. stats receives the
// distributed run's stratification profile: the sketch phase (barrier
// wait + gather + recovery) and the centralized clustering.
func runCoordinator(master kvstore.KV, corpus pivots.Corpus, hasher *sketch.Hasher, n, w, parties int, o Options, dm distribMetrics, stats *strata.StratifyStats, report *Report) (err error) {
	b, berr := kvstore.NewBarrier(master, o.barrierName(), parties)
	if berr != nil {
		return berr
	}
	b.Timeout = o.SketchWait
	b.PollInterval = o.PollInterval
	defer func() {
		if err != nil {
			_ = master.Set(o.abortKey(), []byte("coordinator: "+err.Error()))
			_ = b.Abort("coordinator failed: " + err.Error())
		}
	}()
	phaseStart := time.Now()
	var missing []int
	if berr := func() error {
		if dm.barrierWait != nil {
			waitStart := time.Now()
			defer func() { dm.barrierWait.Observe(time.Since(waitStart).Nanoseconds()) }()
		}
		return b.Await()
	}(); berr != nil {
		if o.DisableRecovery {
			return fmt.Errorf("distrib: coordinator sketch barrier: %w", berr)
		}
		// Bounded wait expired (or the barrier itself misbehaved):
		// release live workers now and take over the missing shards.
		report.Aborted = true
		dm.aborts.Inc()
		if aerr := b.Abort("coordinator recovering missing shards"); aerr != nil {
			return fmt.Errorf("distrib: aborting sketch barrier: %w (after %v)", aerr, berr)
		}
		for i := 0; i < w; i++ {
			if _, gerr := master.Get(o.doneKey(i)); gerr != nil {
				if errors.Is(gerr, kvstore.ErrNil) {
					missing = append(missing, i)
					continue
				}
				return fmt.Errorf("distrib: reading completion marker %d: %w", i, gerr)
			}
		}
	}
	recovering := make(map[int]bool, len(missing))
	for _, i := range missing {
		recovering[i] = true
	}
	sketches := make([]sketch.Sketch, n)
	// Gather in bounded LRANGE windows: each batch is decoded into its
	// slot and the raw wire bytes are dropped before the next window,
	// so the coordinator never materializes a whole shard's encoding.
	const gatherWindow = 4096
	for i := 0; i < w; i++ {
		if recovering[i] {
			continue
		}
		err := master.LRangeChunked(o.sketchKey(i), gatherWindow, func(batch [][]byte) error {
			for _, rec := range batch {
				idx, s, err := decodeSketchRecord(rec, o.SketchWidth)
				if err != nil {
					return err
				}
				if idx < 0 || idx >= n {
					return fmt.Errorf("distrib: sketch for out-of-range record %d", idx)
				}
				sketches[idx] = s
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("distrib: gathering worker %d sketches: %w", i, err)
		}
	}
	// Re-sketch missing shards locally: sketching is a pure function of
	// (corpus, hasher), so the recovered values are bit-identical to
	// what the dead workers would have shipped.
	for _, i := range missing {
		lo, hi := i*n/w, (i+1)*n/w
		for r := lo; r < hi; r++ {
			sketches[r] = hasher.Sketch(corpus.ItemSet(r))
		}
	}
	report.RecoveredShards = missing
	dm.recShards.Add(int64(len(missing)))
	// Defensive sweep: a worker that arrived at the barrier after a
	// failed ship leaves holes no marker accounts for.
	for r, s := range sketches {
		if s != nil {
			continue
		}
		if o.DisableRecovery {
			return fmt.Errorf("distrib: record %d never sketched", r)
		}
		sketches[r] = hasher.Sketch(corpus.ItemSet(r))
		report.RecoveredRecords++
	}
	dm.recRecords.Add(int64(report.RecoveredRecords))
	stats.SketchTime = time.Since(phaseStart)
	clusterStart := time.Now()
	res, err := strata.Cluster(sketches, o.Cluster)
	if err != nil {
		return err
	}
	stats.ClusterTime = time.Since(clusterStart)
	stats.Iterations = res.Iterations
	stats.Converged = res.Converged
	stats.Iters = res.IterStats
	for _, it := range res.IterStats {
		stats.MovedTotal += it.Moved
	}
	enc, err := encodeAssignment(res.Assign)
	if err != nil {
		return err
	}
	if err := master.Set(o.assignKey(), enc); err != nil {
		return fmt.Errorf("distrib: publishing assignment: %w", err)
	}
	return nil
}

// runWorker executes one worker's phases: sketch shard → ship (with
// whole-shard retry) → completion marker → barrier (advisory) → poll
// assignment.
func runWorker(c kvstore.KV, corpus pivots.Corpus, hasher *sketch.Hasher, i, w, parties int, o Options, dm distribMetrics, shardAssign *[]int) error {
	n := corpus.Len()
	lo := i * n / w
	hi := (i + 1) * n / w

	var shipErr error
	for attempt := 0; attempt <= o.ShipRetries; attempt++ {
		if attempt > 0 {
			dm.shipRetries.Inc()
		}
		if shipErr = shipShard(c, corpus, hasher, lo, hi, o.sketchKey(i), o.PipelineWidth, o.MaxShipBytes, dm.shipBytes); shipErr == nil {
			break
		}
	}
	if shipErr == nil {
		// Completion marker: the coordinator's ground truth for which
		// shards need recovery. A failed SET is tolerable — worst case
		// the coordinator re-sketches a shard it already has.
		_ = c.Set(o.doneKey(i), []byte(strconv.Itoa(hi-lo)))
	}

	// The sketch barrier is advisory for workers: aborts (coordinator
	// recovering), timeouts, and even a failed fetch-and-increment all
	// fall through to the authoritative signal — the published
	// assignment appearing under the run's key.
	if b, err := kvstore.NewBarrier(c, o.barrierName(), parties); err == nil {
		b.Timeout = 2 * o.SketchWait
		b.PollInterval = o.PollInterval
		_ = b.Await()
	}

	raw, pollErr := pollAssignment(c, o)
	if pollErr != nil {
		if shipErr != nil {
			return errors.Join(shipErr, pollErr)
		}
		return pollErr
	}
	assign := decodeAssignment(raw)
	if len(assign) != n {
		return fmt.Errorf("assignment covers %d of %d records", len(assign), n)
	}
	*shardAssign = assign[lo:hi]
	if shipErr != nil {
		return fmt.Errorf("shard ship failed (coordinator recovery required): %w", shipErr)
	}
	return nil
}

// shipShard pushes one shard's sketches as a fresh list: DEL + a
// pipeline of chunked variadic RPUSHes + length check. Records are
// packed into one flat arena per command and shipped many-per-RPUSH —
// bounded by maxShip payload bytes per command — so a shard costs
// O(records/chunk) commands, replies, and engine dispatches instead of
// O(records). The list contents are element-for-element identical to
// the per-record path (variadic RPUSH appends values in order), and
// each attempt starts from scratch, which is what makes the
// non-idempotent RPUSHes safely retryable as a unit.
func shipShard(c kvstore.KV, corpus pivots.Corpus, hasher *sketch.Hasher, lo, hi int, key string, width, maxShip int, shipBytes *telemetry.Counter) error {
	if _, err := c.Del(key); err != nil {
		return err
	}
	p, err := c.Pipe(width)
	if err != nil {
		return err
	}
	recSize := 4 + 8*hasher.K()
	perCmd := maxShip / recSize
	if perCmd < 1 {
		perCmd = 1
	}
	total := hi - lo
	p.Expect((total + perCmd - 1) / perCmd)
	// One arena and one scratch sketch for the whole ship: Send frames
	// the arguments into the client's write buffer before returning, so
	// both are safely recycled per batch.
	keyArg := []byte(key)
	arena := make([]byte, 0, perCmd*recSize)
	args := make([][]byte, 0, perCmd+1)
	scratch := make(sketch.Sketch, hasher.K())
	for r := lo; r < hi; {
		n := perCmd
		if hi-r < n {
			n = hi - r
		}
		arena = arena[:0]
		args = append(args[:0], keyArg)
		for j := 0; j < n; j++ {
			hasher.SketchInto(corpus.ItemSet(r+j), scratch)
			start := len(arena)
			if arena, err = appendSketchRecord(arena, r+j, scratch); err != nil {
				return err
			}
			args = append(args, arena[start:len(arena):len(arena)])
		}
		if err := p.Send("RPUSH", args...); err != nil {
			return err
		}
		shipBytes.Add(int64(len(arena)))
		r += n
	}
	reps, err := p.Finish()
	if err != nil {
		return err
	}
	for _, rep := range reps {
		if err := rep.Err(); err != nil {
			return err
		}
	}
	cnt, err := c.LLen(key)
	if err != nil {
		return err
	}
	if cnt != int64(total) {
		return fmt.Errorf("distrib: shard list holds %d of %d records", cnt, total)
	}
	return nil
}

// pollAssignment waits for the coordinator's published assignment with
// exponential backoff, bounded by Options.AssignWait, bailing out
// promptly if the run's abort key appears.
func pollAssignment(c kvstore.KV, o Options) ([]byte, error) {
	deadline := time.Now().Add(o.AssignWait)
	poll := o.PollInterval
	maxPoll := 64 * o.PollInterval
	var lastErr error
	for {
		raw, err := c.Get(o.assignKey())
		if err == nil {
			return raw, nil
		}
		if !errors.Is(err, kvstore.ErrNil) {
			lastErr = err // transient store trouble: keep polling
		}
		if reason, aerr := c.Get(o.abortKey()); aerr == nil {
			return nil, fmt.Errorf("distrib: run aborted: %s", reason)
		}
		if time.Now().After(deadline) {
			if lastErr != nil {
				return nil, fmt.Errorf("distrib: assignment wait timed out after %v: %w", o.AssignWait, lastErr)
			}
			return nil, fmt.Errorf("distrib: assignment wait timed out after %v", o.AssignWait)
		}
		time.Sleep(poll)
		poll *= 2
		if poll > maxPoll {
			poll = maxPoll
		}
	}
}
