package distrib

import (
	"testing"

	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// TestDistributedStatsAndTelemetry: a successful distributed run must
// populate Stratification.Stats (so the plan-summary audit fields are
// consistent with the local path) and record protocol metrics.
func TestDistributedStatsAndTelemetry(t *testing.T) {
	corpus := testCorpus(t, 0.0006)
	master, workers := startStore(t, 3)
	reg := telemetry.NewRegistry()
	dist, report, err := StratifyDetailed(master, workers, corpus, Options{
		SketchWidth: 24,
		Cluster:     strata.Config{K: 6, L: 3, Seed: 11},
		Seed:        5,
		Telemetry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failures() != 0 {
		t.Fatalf("worker failures: %v", report.WorkerErrs)
	}
	if dist.Stats.SketchTime <= 0 {
		t.Errorf("sketch time = %v, want > 0", dist.Stats.SketchTime)
	}
	if dist.Stats.ClusterTime <= 0 {
		t.Errorf("cluster time = %v, want > 0", dist.Stats.ClusterTime)
	}
	if dist.Stats.Iterations == 0 {
		t.Error("iterations = 0 on the distributed path")
	}
	snap := reg.Snapshot()
	// Ship bytes: the whole corpus's sketch records crossed the wire.
	wantBytes := int64(corpus.Len()) * (4 + 8*24)
	if got := snap.Counters["distrib_ship_bytes_total"]; got != wantBytes {
		t.Errorf("ship bytes = %d, want %d", got, wantBytes)
	}
	if got := snap.Counters["distrib_barrier_aborts_total"]; got != 0 {
		t.Errorf("aborts = %d on a clean run", got)
	}
	if got := snap.Histograms["distrib_barrier_wait_ns"].Count; got != 1 {
		t.Errorf("barrier wait observations = %d, want 1", got)
	}
	if got := snap.Counters["distrib_ship_retries_total"]; got != 0 {
		t.Errorf("ship retries = %d on a clean run", got)
	}
}
