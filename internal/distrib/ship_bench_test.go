package distrib

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pareto/internal/kvstore"
	"pareto/internal/pivots"
	"pareto/internal/sketch"
)

// benchCorpus builds n synthetic documents (8 distinct sorted terms
// each) — large enough that shipping cost, not corpus construction,
// dominates.
func benchCorpus(b *testing.B, n int) *pivots.TextCorpus {
	b.Helper()
	const vocab = 5000
	rng := rand.New(rand.NewSource(7))
	docs := make([]pivots.Doc, n)
	for i := range docs {
		seen := make(map[uint32]bool, 8)
		terms := make([]uint32, 0, 8)
		for len(terms) < 8 {
			t := uint32(rng.Intn(vocab))
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
		for a := 1; a < len(terms); a++ {
			for k := a; k > 0 && terms[k-1] > terms[k]; k-- {
				terms[k-1], terms[k] = terms[k], terms[k-1]
			}
		}
		docs[i] = pivots.Doc{Terms: terms}
	}
	c, err := pivots.NewTextCorpus(docs, vocab)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchStoreClient(b *testing.B) *kvstore.Client {
	b.Helper()
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := kvstore.Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// shipShardPerRecord reimplements the pre-overhaul shipping path as
// the benchmark baseline: one freshly-allocated sketch and encoding
// per record, one RPUSH command per record, pipelined at width.
func shipShardPerRecord(c *kvstore.Client, corpus pivots.Corpus, hasher *sketch.Hasher, lo, hi int, key string, width int) error {
	if _, err := c.Del(key); err != nil {
		return err
	}
	p, err := c.NewPipeline(width)
	if err != nil {
		return err
	}
	for r := lo; r < hi; r++ {
		enc, err := encodeSketchRecord(r, hasher.Sketch(corpus.ItemSet(r)))
		if err != nil {
			return err
		}
		if err := p.Send("RPUSH", []byte(key), enc); err != nil {
			return err
		}
	}
	reps, err := p.Finish()
	if err != nil {
		return err
	}
	for _, rep := range reps {
		if err := rep.Err(); err != nil {
			return err
		}
	}
	cnt, err := c.LLen(key)
	if err != nil {
		return err
	}
	if cnt != int64(hi-lo) {
		return fmt.Errorf("distrib: shard list holds %d of %d records", cnt, hi-lo)
	}
	return nil
}

// BenchmarkShipShard ships a 50k-record shard end to end (sketch +
// encode + wire + engine), comparing the seed per-record path against
// the batched variadic path. One benchmark op = one whole shard.
func BenchmarkShipShard(b *testing.B) {
	const records = 50_000
	const width = 128
	corpus := benchCorpus(b, records)
	hasher, err := sketch.NewHasher(8, 42)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("per-record", func(b *testing.B) {
		c := benchStoreClient(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := shipShardPerRecord(c, corpus, hasher, 0, records, "bench:shard", width); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("batched", func(b *testing.B) {
		c := benchStoreClient(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := shipShard(c, corpus, hasher, 0, records, "bench:shard", width, 1<<20, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
