// Package telemetry is the framework's always-on observability
// subsystem: atomic counters and gauges, fixed-bucket lock-free
// histograms, lightweight nested stage spans, and a registry that
// renders Prometheus-style text and JSON snapshots (optionally over
// HTTP, see http.go). It is stdlib-only and allocation-conscious —
// nothing in the hot paths allocates, and every metric type is safe
// for concurrent writers.
//
// # Nil fast path
//
// Every method on every type is safe on a nil receiver and does
// nothing: a nil *Registry hands out nil *Counter/*Gauge/*Histogram
// values and nil spans, so instrumented code is written once —
//
//	reg.Counter("kv_server_parse_errors_total").Inc()
//
// — and compiles to a single predictable branch when telemetry is
// disabled. The overhead contract (DESIGN.md §11) is enforced by
// BenchmarkTelemetryOverhead in internal/kvstore: the instrumented
// kvstore command hot path must stay within 3% of the nil-registry
// path.
//
// # Naming conventions
//
// Metric names follow the Prometheus style: subsystem prefix, snake
// case, unit suffix, `_total` for counters. Labels ride inside the
// name string — `kv_server_commands_total{cmd="get"}` — which keeps
// the registry a flat map and label handling out of the hot path
// (callers pre-resolve one metric per label value).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous integer value (active connections,
// queue depth, …).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 value with additive updates — used
// for physical quantities (joules, watt-hours) accumulated off the hot
// path. Add is a CAS loop, so keep it out of per-operation code.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the value. No-op on a nil receiver.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates delta into the gauge.
func (g *FloatGauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry owns a flat namespace of metrics and a log of completed
// root spans. Metric handles are get-or-create and stable: resolve
// them once (registration takes a mutex) and update them lock-free
// forever after. A nil *Registry is the disabled state — it hands out
// nil metrics and nil spans, all of whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram

	spans        []SpanSnapshot
	spansDropped int64
	start        time.Time
}

// maxRootSpans bounds the completed-span log; older roots are dropped
// (and counted) so a long-lived server cannot grow without bound.
const maxRootSpans = 256

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named integer gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls under the same name reuse
// the existing histogram and ignore bounds (names identify metrics).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// recordSpan appends a completed root span to the bounded span log.
func (r *Registry) recordSpan(s SpanSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxRootSpans {
		copy(r.spans, r.spans[1:])
		r.spans = r.spans[:maxRootSpans-1]
		r.spansDropped++
	}
	r.spans = append(r.spans, s)
}

// Snapshot captures a consistent point-in-time view of every metric
// and the completed-span log. The snapshot is independent of the live
// registry (safe to serialize, merge, or retain). A nil registry
// yields an empty, non-nil snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.UptimeSec = time.Since(r.start).Seconds()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = float64(g.Value())
	}
	for name, g := range r.fgauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	s.Spans = append([]SpanSnapshot(nil), r.spans...)
	s.SpansDropped = r.spansDropped
	return s
}

// sortedKeys returns map keys in deterministic order for rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
