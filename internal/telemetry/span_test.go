package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("plan")
	for _, stage := range []string{"scan", "stratify", "profile"} {
		c := root.Child(stage)
		time.Sleep(time.Millisecond)
		c.End()
	}
	root.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("root spans = %d, want 1", len(snap.Spans))
	}
	got := snap.Spans[0]
	if got.Name != "plan" || len(got.Children) != 3 {
		t.Fatalf("root span: %+v", got)
	}
	var prevOffset float64 = -1
	for i, want := range []string{"scan", "stratify", "profile"} {
		c := got.Children[i]
		if c.Name != want {
			t.Errorf("child %d = %q, want %q", i, c.Name, want)
		}
		if c.DurationMs <= 0 {
			t.Errorf("child %q duration = %v, want > 0", c.Name, c.DurationMs)
		}
		if c.StartOffsetMs <= prevOffset {
			t.Errorf("child %q offset %v not after previous %v", c.Name, c.StartOffsetMs, prevOffset)
		}
		prevOffset = c.StartOffsetMs
	}
	if got.DurationMs < got.Children[2].StartOffsetMs+got.Children[2].DurationMs {
		t.Errorf("root duration %v shorter than its children", got.DurationMs)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("x")
	s.End()
	s.End()
	if n := len(r.Snapshot().Spans); n != 1 {
		t.Errorf("double End recorded %d spans", n)
	}
}

// TestSpanOrphanPromotion: a child ended after its parent must surface
// as a root span, not vanish.
func TestSpanOrphanPromotion(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("parent")
	child := root.Child("late")
	root.End()
	child.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (parent + promoted orphan)", len(snap.Spans))
	}
	if snap.FindSpan("late") == nil {
		t.Error("orphan child not found in snapshot")
	}
}

// TestSpanConcurrentChildren: per-node spans end from worker
// goroutines concurrently.
func TestSpanConcurrentChildren(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("run")
	var wg sync.WaitGroup
	const nodes = 16
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.Child(fmt.Sprintf("node%02d", i))
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != nodes {
		t.Fatalf("spans: %d roots, %d children", len(snap.Spans), len(snap.Spans[0].Children))
	}
}

// TestSpanLogBound: the root-span log must stay bounded and count
// what it dropped.
func TestSpanLogBound(t *testing.T) {
	r := NewRegistry()
	total := maxRootSpans + 10
	for i := 0; i < total; i++ {
		r.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	snap := r.Snapshot()
	if len(snap.Spans) != maxRootSpans {
		t.Errorf("span log = %d, want %d", len(snap.Spans), maxRootSpans)
	}
	if snap.SpansDropped != 10 {
		t.Errorf("dropped = %d, want 10", snap.SpansDropped)
	}
	// Oldest dropped, newest kept.
	if snap.Spans[len(snap.Spans)-1].Name != fmt.Sprintf("s%d", total-1) {
		t.Errorf("newest span = %q", snap.Spans[len(snap.Spans)-1].Name)
	}
}

func TestFindSpan(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("a")
	b := root.Child("b")
	b.Child("c").End()
	b.End()
	root.End()
	snap := r.Snapshot()
	if snap.FindSpan("c") == nil {
		t.Error("nested span c not found")
	}
	if snap.FindSpan("zzz") != nil {
		t.Error("found a span that does not exist")
	}
}
