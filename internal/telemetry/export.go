package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is a serializable point-in-time view of a registry:
// counters, gauges (integer and float rendered together), histogram
// snapshots, and the completed root spans. Snapshots merge — counters
// and histograms add, gauges take the other side's value, spans append
// — so per-node or per-run snapshots can be rolled up into one.
type Snapshot struct {
	UptimeSec    float64                      `json:"uptime_sec,omitempty"`
	Counters     map[string]int64             `json:"counters"`
	Gauges       map[string]float64           `json:"gauges"`
	Histograms   map[string]HistogramSnapshot `json:"histograms"`
	Spans        []SpanSnapshot               `json:"spans,omitempty"`
	SpansDropped int64                        `json:"spans_dropped,omitempty"`
}

// Merge folds o into s: counters and histograms add, gauges are
// overwritten by o (last writer wins), spans append. Histogram merges
// with mismatched bounds are the only error.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o == nil {
		return nil
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] = v
	}
	for name, h := range o.Histograms {
		cur := s.Histograms[name]
		if err := cur.Merge(h); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		s.Histograms[name] = cur
	}
	s.Spans = append(s.Spans, o.Spans...)
	s.SpansDropped += o.SpansDropped
	return nil
}

// FindSpan returns the first span with the given name across every
// root span tree (depth-first), or nil.
func (s *Snapshot) FindSpan(name string) *SpanSnapshot {
	for i := range s.Spans {
		if found := s.Spans[i].Find(name); found != nil {
			return found
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("telemetry: encoding snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("telemetry: decoding snapshot: %w", err)
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	return &s, nil
}

// splitName separates an embedded label set from a metric name:
// `x_total{cmd="get"}` → (`x_total`, `cmd="get"`). Names without
// labels return an empty label string.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels renders a label set with an extra label appended.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WriteProm writes the snapshot in the Prometheus text exposition
// format (v0.0.4): one TYPE line per metric family, histograms as
// cumulative `_bucket{le=...}` series plus `_sum`/`_count`. Output is
// sorted by name, so it is diffable across scrapes.
func (s *Snapshot) WriteProm(w io.Writer) error {
	typed := map[string]bool{} // families already TYPE-announced
	announce := func(base, kind string) string {
		if typed[base+kind] {
			return ""
		}
		typed[base+kind] = true
		return "# TYPE " + base + " " + kind + "\n"
	}
	var sb strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		base, _ := splitName(name)
		sb.WriteString(announce(base, "counter"))
		sb.WriteString(name)
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatInt(s.Counters[name], 10))
		sb.WriteByte('\n')
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, _ := splitName(name)
		sb.WriteString(announce(base, "gauge"))
		sb.WriteString(name)
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(s.Gauges[name], 'g', -1, 64))
		sb.WriteByte('\n')
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base, labels := splitName(name)
		sb.WriteString(announce(base, "histogram"))
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatInt(h.Bounds[i], 10)
			}
			sb.WriteString(base)
			sb.WriteString("_bucket")
			sb.WriteString(joinLabels(labels, `le="`+le+`"`))
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatInt(cum, 10))
			sb.WriteByte('\n')
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&sb, "%s_sum%s %d\n%s_count%s %d\n", base, suffix, h.Sum, base, suffix, h.Count)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
