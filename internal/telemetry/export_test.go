package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter(`cmds_total{cmd="get"}`).Add(3)
	r.Counter(`cmds_total{cmd="set"}`).Add(2)
	r.Gauge("conns_active").Set(5)
	r.FloatGauge("energy_wh").Set(1.5)
	h := r.Histogram(`lat_ns{cmd="get"}`, []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cmds_total counter",
		`cmds_total{cmd="get"} 3`,
		`cmds_total{cmd="set"} 2`,
		"# TYPE conns_active gauge",
		"conns_active 5",
		"energy_wh 1.5",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{cmd="get",le="10"} 1`,
		`lat_ns_bucket{cmd="get",le="100"} 2`,
		`lat_ns_bucket{cmd="get",le="+Inf"} 3`,
		`lat_ns_sum{cmd="get"} 5055`,
		`lat_ns_count{cmd="get"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two labeled series.
	if strings.Count(out, "# TYPE cmds_total counter") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
	// Deterministic: a second render must be identical.
	var buf2 bytes.Buffer
	if err := r.Snapshot().WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	stripUptime := func(s string) string { return s } // uptime not in prom output
	if stripUptime(buf.String()) != stripUptime(buf2.String()) {
		t.Error("prom output not deterministic")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(-2)
	r.Histogram("h", []int64{10}).Observe(3)
	sp := r.StartSpan("root")
	sp.Child("leaf").End()
	sp.End()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 7 || back.Gauges["g"] != -2 {
		t.Errorf("round trip: %+v", back)
	}
	if back.Histograms["h"].Count != 1 || back.Histograms["h"].Sum != 3 {
		t.Errorf("round trip histogram: %+v", back.Histograms["h"])
	}
	if back.FindSpan("leaf") == nil {
		t.Error("round trip lost the span tree")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("c").Add(1)
	b.Counter("c").Add(2)
	b.Counter("only_b").Add(9)
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(5)
	a.Histogram("h", []int64{10}).Observe(4)
	b.Histogram("h", []int64{10}).Observe(6)
	a.StartSpan("from_a").End()
	b.StartSpan("from_b").End()
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Counters["c"] != 3 || sa.Counters["only_b"] != 9 {
		t.Errorf("merged counters: %v", sa.Counters)
	}
	if sa.Gauges["g"] != 5 {
		t.Errorf("merged gauge = %v, want last-writer 5", sa.Gauges["g"])
	}
	if sa.Histograms["h"].Count != 2 || sa.Histograms["h"].Sum != 10 {
		t.Errorf("merged histogram: %+v", sa.Histograms["h"])
	}
	if sa.FindSpan("from_a") == nil || sa.FindSpan("from_b") == nil {
		t.Error("merge lost spans")
	}
	// Histogram bound mismatch surfaces as an error.
	c := NewRegistry()
	c.Histogram("h", []int64{99}).Observe(1)
	if err := sa.Merge(c.Snapshot()); err == nil {
		t.Error("merge with mismatched histogram bounds succeeded")
	}
	// Merging nil is a no-op.
	if err := sa.Merge(nil); err != nil {
		t.Errorf("merge nil: %v", err)
	}
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct{ in, base, labels string }{
		{"plain", "plain", ""},
		{`x{a="b"}`, "x", `a="b"`},
		{`x{a="b",c="d"}`, "x", `a="b",c="d"`},
	} {
		base, labels := splitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
}
