package telemetry

import (
	"sync"
	"time"
)

// Span measures one stage of a pipeline. Spans nest: a parent span's
// snapshot carries its children in completion order, so a plan run
// renders as plan → {scan, stratify, profile, optimize, place}. Spans
// are cheap (two clock reads and one small allocation each) and are
// meant for stage-granularity timing, not per-operation tracing — use
// histograms for operations.
//
// Concurrency: children may be created and ended from different
// goroutines (e.g. one span per cluster node). End is idempotent. A
// child ended after its parent already ended is promoted to a root
// span rather than silently dropped.
//
// All methods are safe on a nil *Span (the nil-registry fast path):
// Child returns nil and End does nothing.
type Span struct {
	reg    *Registry
	parent *Span
	name   string
	start  time.Time

	mu       sync.Mutex
	children []SpanSnapshot
	ended    bool
}

// SpanSnapshot is a completed span: its duration, its offset from the
// parent's start (0 for roots), and its completed children.
type SpanSnapshot struct {
	Name          string         `json:"name"`
	StartOffsetMs float64        `json:"start_offset_ms"`
	DurationMs    float64        `json:"duration_ms"`
	Children      []SpanSnapshot `json:"children,omitempty"`
}

// StartSpan opens a root span. Returns nil (a valid no-op span) on a
// nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, start: time.Now()}
}

// Child opens a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, parent: s, name: name, start: time.Now()}
}

// End completes the span, attaching its snapshot to the parent (or the
// registry's root-span log). Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	snap := SpanSnapshot{
		Name:       s.name,
		DurationMs: float64(now.Sub(s.start)) / float64(time.Millisecond),
		Children:   s.children,
	}
	s.children = nil
	s.mu.Unlock()
	if s.parent != nil {
		snap.StartOffsetMs = float64(s.start.Sub(s.parent.start)) / float64(time.Millisecond)
		if s.parent.addChild(snap) {
			return
		}
		// Parent already ended: promote, keeping the offset as a hint.
	}
	s.reg.recordSpan(snap)
}

// addChild attaches a completed child; reports false when s has
// already ended (the child is then promoted to a root).
func (s *Span) addChild(snap SpanSnapshot) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return false
	}
	s.children = append(s.children, snap)
	return true
}

// Find returns the first span snapshot with the given name in a
// depth-first walk of the tree rooted at s, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if found := s.Children[i].Find(name); found != nil {
			return found
		}
	}
	return nil
}
