package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram over int64 values (latencies
// in nanoseconds, sizes in bytes, depths in items). The hot path —
// Observe — is lock-free: a binary search over the immutable bounds
// plus two atomic adds. Snapshots are consistent enough for monitoring
// (counts and sum are read without a global lock; a concurrent Observe
// may straddle the read) and mergeable across histograms with
// identical bounds.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending.
	// An implicit overflow bucket catches values above the last bound.
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// LatencyBuckets returns the standard duration bounds in nanoseconds:
// powers of two from 256 ns to ~8.6 s. Sub-microsecond resolution
// matters because the kvstore command hot path itself is sub-µs.
func LatencyBuckets() []int64 {
	out := make([]int64, 26)
	for i := range out {
		out[i] = 256 << i
	}
	return out
}

// WideLatencyBuckets returns latency bounds for control-loop cycles
// rather than RPCs: powers of two from 64 µs to ~34 minutes in
// nanoseconds. Replanning cycles span microseconds (idle tick) to
// minutes (full replan at scale), which LatencyBuckets' 256 ns–16 s
// range would truncate.
func WideLatencyBuckets() []int64 {
	out := make([]int64, 25)
	for i := range out {
		out[i] = 65536 << i
	}
	return out
}

// SizeBuckets returns the standard size bounds in bytes: powers of two
// from 16 B to 16 MiB (the wire layer's max-bulk order of magnitude).
func SizeBuckets() []int64 {
	out := make([]int64, 21)
	for i := range out {
		out[i] = 16 << i
	}
	return out
}

// DepthBuckets returns small-integer bounds for queue/pipeline depths:
// powers of two from 1 to 16384.
func DepthBuckets() []int64 {
	out := make([]int64, 15)
	for i := range out {
		out[i] = 1 << i
	}
	return out
}

// bucketIdx returns the index of the bucket receiving v.
func (h *Histogram) bucketIdx(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIdx(v)].Add(1)
	h.sum.Add(v)
}

// ObserveN records n observations of value v in one shot — the batched
// form used when several equal-cost operations are attributed at once
// (e.g. a pipelined command batch's mean per-command latency).
func (h *Histogram) ObserveN(v int64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.counts[h.bucketIdx(v)].Add(n)
	h.sum.Add(v * n)
}

// Snapshot captures the histogram's current state. Nil-safe: a nil
// histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, safe to share
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: bucket
// counts (one extra overflow bucket past the last bound), total count
// and sum. Snapshots with identical bounds merge by addition.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Merge adds o's counts into s. The bounds must match.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if o.Count == 0 {
		return nil
	}
	if s.Count == 0 && len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]int64(nil), o.Counts...)
		s.Count = o.Count
		s.Sum = o.Sum
		return nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("telemetry: merging histograms with %d vs %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i, b := range s.Bounds {
		if o.Bounds[i] != b {
			return fmt.Errorf("telemetry: merging histograms with different bounds at %d: %d vs %d", i, b, o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Mean returns the mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear
// interpolation within the containing bucket. Values in the overflow
// bucket report the last bound (a lower bound on the true value).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if rank <= next || i == len(s.Counts)-1 {
			if i >= len(s.Bounds) {
				// Overflow bucket: the last bound is all we know.
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[i])
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		seen = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}
