package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(4)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	prom, ctype := get("/metrics")
	if !strings.Contains(prom, "hits_total 4") {
		t.Errorf("/metrics missing counter:\n%s", prom)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	vars, ctype := get("/debug/vars")
	if !strings.Contains(vars, `"hits_total": 4`) {
		t.Errorf("/debug/vars missing counter:\n%s", vars)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/vars content type %q", ctype)
	}
}

func TestListenAndServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up").Inc()
	hs, err := r.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	resp, err := http.Get("http://" + hs.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("served metrics missing counter:\n%s", body)
	}
	if err := hs.Close(); err != nil {
		t.Errorf("close: %v", err)
	}

	var nilReg *Registry
	if _, err := nilReg.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Error("nil registry ListenAndServe succeeded")
	}
}
