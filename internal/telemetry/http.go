package telemetry

import (
	"errors"
	"fmt"
	"net"
	"net/http"
)

// Handler returns the registry's HTTP mux:
//
//	/metrics     Prometheus text exposition format
//	/debug/vars  indented JSON snapshot (expvar-style)
//
// Both render a fresh snapshot per request; a nil registry serves
// empty snapshots, so the endpoints are always safe to mount. The
// concrete *http.ServeMux is returned (it satisfies http.Handler) so
// callers can mount additional endpoints — e.g. the frontier service —
// alongside the metrics routes before serving.
func (r *Registry) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
	return mux
}

// HTTPServer is a running metrics endpoint; Close shuts it down.
type HTTPServer struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string
	srv  *http.Server
}

// ListenAndServe binds addr (e.g. "127.0.0.1:0") and serves the
// registry's HTTP endpoints in a background goroutine, returning the
// bound server. Errors if the registry is nil — an explicit metrics
// address with telemetry disabled is a misconfiguration.
func (r *Registry) ListenAndServe(addr string) (*HTTPServer, error) {
	if r == nil {
		return nil, errors.New("telemetry: ListenAndServe on nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the HTTP server and closes its listener.
func (h *HTTPServer) Close() error {
	if h == nil {
		return nil
	}
	return h.srv.Close()
}
