package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{0, 5, 10} {
		h.Observe(v) // bucket 0 (≤10)
	}
	h.Observe(11)   // bucket 1
	h.Observe(100)  // bucket 1
	h.Observe(999)  // bucket 2
	h.Observe(1001) // overflow
	s := h.Snapshot()
	want := []int64{3, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+5+10+11+100+999+1001 {
		t.Errorf("sum = %d", s.Sum)
	}
}

func TestHistogramObserveN(t *testing.T) {
	h := newHistogram([]int64{10, 100})
	h.ObserveN(7, 5)
	h.ObserveN(50, 0)  // no-op
	h.ObserveN(50, -3) // no-op
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 35 || s.Counts[0] != 5 {
		t.Errorf("after ObserveN: %+v", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 20, 30, 40})
	// 100 uniform values in (0, 40]: quantiles should land near q*40.
	for v := int64(1); v <= 100; v++ {
		h.Observe((v-1)%40 + 1)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 20, 5},
		{0.9, 36, 5},
		{0.99, 40, 5},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	// Out-of-range q clamps.
	if got := s.Quantile(-1); got < 0 {
		t.Errorf("q(-1) = %v", got)
	}
	if got := s.Quantile(2); got > 40 {
		t.Errorf("q(2) = %v", got)
	}
	// Empty histogram.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// Overflow-only histogram reports the last bound.
	h2 := newHistogram([]int64{10})
	h2.Observe(1 << 40)
	if got := h2.Snapshot().Quantile(0.5); got != 10 {
		t.Errorf("overflow quantile = %v, want 10", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram([]int64{10, 100})
	b := newHistogram([]int64{10, 100})
	a.Observe(5)
	b.Observe(50)
	b.Observe(500)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if sa.Count != 3 || sa.Sum != 555 {
		t.Errorf("merged: %+v", sa)
	}
	if sa.Counts[0] != 1 || sa.Counts[1] != 1 || sa.Counts[2] != 1 {
		t.Errorf("merged counts: %v", sa.Counts)
	}
	// Merging into an empty snapshot adopts the other's bounds.
	var empty HistogramSnapshot
	if err := empty.Merge(sb); err != nil {
		t.Fatalf("merge into empty: %v", err)
	}
	if empty.Count != 2 {
		t.Errorf("empty-merge count = %d", empty.Count)
	}
	// Mismatched bounds must error.
	c := newHistogram([]int64{10, 99}).Snapshot()
	cc := c
	if err := cc.Merge(sb); err == nil {
		t.Error("merge with mismatched bounds succeeded")
	}
	d := newHistogram([]int64{10}).Snapshot()
	if err := d.Merge(sb); err == nil {
		t.Error("merge with mismatched bucket count succeeded")
	}
	// A merged-from snapshot must not alias the merged-into counts.
	before := sb.Counts[1]
	sa.Counts[1] += 100
	if sb.Counts[1] != before {
		t.Error("merge aliased counts between snapshots")
	}
}

func TestHistogramConcurrentObservers(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
}

func TestBucketPresetsAscending(t *testing.T) {
	for name, bounds := range map[string][]int64{
		"latency": LatencyBuckets(),
		"size":    SizeBuckets(),
		"depth":   DepthBuckets(),
	} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("%s bounds not ascending at %d: %v", name, i, bounds)
			}
		}
	}
}
