package telemetry

import (
	"sync"
	"testing"
)

// TestNilFastPath: every operation on a nil registry and the nil
// metrics it hands out must be a safe no-op — this is the disabled
// path compiled into the hot loops.
func TestNilFastPath(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(-1)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %d", got)
	}
	r.FloatGauge("f").Set(1.5)
	r.FloatGauge("f").Add(2.5)
	if got := r.FloatGauge("f").Value(); got != 0 {
		t.Errorf("nil float gauge value = %v", got)
	}
	h := r.Histogram("h", LatencyBuckets())
	h.Observe(123)
	h.ObserveN(55, 10)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram count = %d", s.Count)
	}
	sp := r.StartSpan("root")
	sp.Child("child").End()
	sp.End()
	snap := r.Snapshot()
	if snap == nil {
		t.Fatal("nil registry snapshot is nil")
	}
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestGetOrCreateIdentity: the registry must hand out the same metric
// for the same name, and distinct metrics for distinct names.
func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same-name counters differ")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Error("distinct-name counters alias")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same-name gauges differ")
	}
	if r.Histogram("h", SizeBuckets()) != r.Histogram("h", LatencyBuckets()) {
		t.Error("same-name histograms differ (bounds must be ignored after creation)")
	}
}

// TestCounterGaugeValues exercises basic arithmetic.
func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	f := r.FloatGauge("joules")
	f.Add(1.25)
	f.Add(2.5)
	if got := f.Value(); got != 3.75 {
		t.Errorf("float gauge = %v, want 3.75", got)
	}
	f.Set(-1)
	if got := f.Value(); got != -1 {
		t.Errorf("float gauge after Set = %v, want -1", got)
	}
}

// TestConcurrentWriters hammers every metric type from many
// goroutines; run under -race this is the data-race proof, and the
// totals prove no update is lost.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			f := r.FloatGauge("f")
			h := r.Histogram("h", DepthBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				f.Add(0.5)
				h.Observe(int64(i % 64))
				if i%100 == 0 {
					sp := r.StartSpan("loop")
					sp.Child("inner").End()
					sp.End()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := r.FloatGauge("f").Value(); got != workers*perWorker*0.5 {
		t.Errorf("float gauge = %v, want %v", got, workers*perWorker*0.5)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotIsolation: a snapshot must not change when the registry
// moves on.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Histogram("h", DepthBuckets()).Observe(3)
	snap := r.Snapshot()
	r.Counter("c").Add(100)
	r.Histogram("h", nil).Observe(5)
	if snap.Counters["c"] != 1 {
		t.Errorf("snapshot counter mutated: %d", snap.Counters["c"])
	}
	if snap.Histograms["h"].Count != 1 {
		t.Errorf("snapshot histogram mutated: %d", snap.Histograms["h"].Count)
	}
}
