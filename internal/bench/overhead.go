package bench

import (
	"fmt"
	"strings"
	"time"

	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/opt"
	"pareto/internal/sampling"
	"pareto/internal/strata"
)

// Overhead breaks down the framework's one-time planning cost — the
// cost the paper argues is "small and amortized over multiple runs on
// the full dataset" (§III). All durations are wall-clock on the host
// machine (the planning pipeline is real computation, not simulated).
type Overhead struct {
	Stratify time.Duration // sketching + compositeKModes
	Profile  time.Duration // progressive sampling through the workload
	Optimize time.Duration // scalarized LP solve
	Total    time.Duration
	// StratifyStats breaks the stratify phase down further (sketch vs
	// cluster time, iterations, moved-record churn), from the
	// stratifier's own instrumentation.
	StratifyStats strata.StratifyStats
	// JobTimeSec is the simulated single-run makespan of the planned
	// job, for the amortization comparison.
	JobTimeSec float64
}

// String renders the breakdown.
func (o Overhead) String() string {
	var sb strings.Builder
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	fmt.Fprintf(&sb, "stratify %10.2f ms (sketch %.2f ms, cluster %.2f ms, %d iters, %d moves)\n",
		ms(o.Stratify), ms(o.StratifyStats.SketchTime), ms(o.StratifyStats.ClusterTime),
		o.StratifyStats.Iterations, o.StratifyStats.MovedTotal)
	fmt.Fprintf(&sb, "profile  %10.2f ms\n", ms(o.Profile))
	fmt.Fprintf(&sb, "optimize %10.2f ms\n", ms(o.Optimize))
	fmt.Fprintf(&sb, "total    %10.2f ms\n", ms(o.Total))
	return sb.String()
}

// MeasureOverhead times each planning phase separately for the given
// workload and cluster, then executes the planned job once to report
// the run time the overhead amortizes against.
func MeasureOverhead(w Workload, cl *cluster.Cluster, o Options) (*Overhead, error) {
	if w == nil {
		return nil, errNoWorkload
	}
	corpus := w.Corpus()
	out := &Overhead{}

	start := time.Now()
	scfg := o.Stratifier
	if scfg.Cluster.K == 0 {
		scfg.Cluster.K = 4 * cl.P()
		if scfg.Cluster.K > corpus.Len() {
			scfg.Cluster.K = corpus.Len()
		}
	}
	if scfg.Cluster.L == 0 {
		scfg.Cluster.L = 3
	}
	st, err := strata.Stratify(corpus, scfg)
	if err != nil {
		return nil, err
	}
	out.Stratify = time.Since(start)
	out.StratifyStats = st.Stats

	start = time.Now()
	sizes, err := sampling.ScheduleWithFloor(corpus.Len(),
		sampling.DefaultMinFrac, sampling.DefaultMaxFrac, sampling.DefaultSteps, 0)
	if err != nil {
		return nil, err
	}
	costs := make(map[int]float64, len(sizes))
	for _, s := range sizes {
		idx, err := strata.StratifiedSample(st.Members, s, o.Seed+int64(s))
		if err != nil {
			return nil, err
		}
		c, err := w.Profile(idx)
		if err != nil {
			return nil, err
		}
		costs[s] = c
	}
	models, err := cl.ProfileAll(sizes, func(sz int) (float64, error) {
		return costs[sz], nil
	}, o.TraceOffset, 3600)
	if err != nil {
		return nil, err
	}
	out.Profile = time.Since(start)

	start = time.Now()
	cons := opt.Constraints{}
	if o.MinPartitionFrac > 0 {
		cons.MinSize = o.MinPartitionFrac * float64(corpus.Len()) / float64(cl.P())
	}
	if mr := w.MinPartitionRecords(); mr > cons.MinSize {
		cons.MinSize = mr
	}
	if _, err := opt.OptimizeWithConstraints(models, corpus.Len(), 1, cons); err != nil {
		return nil, err
	}
	out.Optimize = time.Since(start)
	out.Total = out.Stratify + out.Profile + out.Optimize

	// One planned run for the amortization comparison.
	cfg := core.Config{
		Strategy: core.HetAware, Scheme: w.Scheme(),
		Stratifier: o.Stratifier, SampleSeed: o.Seed,
		TraceOffset:         o.TraceOffset,
		MinPartitionFrac:    o.MinPartitionFrac,
		MinPartitionRecords: w.MinPartitionRecords(),
	}
	row, err := RunStrategy(w, cl, cfg, o.TraceOffset)
	if err != nil {
		return nil, err
	}
	out.JobTimeSec = row.TimeSec
	return out, nil
}
