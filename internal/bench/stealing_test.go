package bench

import (
	"testing"

	"pareto/internal/core"
	"pareto/internal/datasets"
	"pareto/internal/pivots"
)

func TestStealingScheduleBalancesButInflatesWork(t *testing.T) {
	cfg := datasets.RCV1Like(0.0008)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	w := &TextMining{Docs: corpus, SupportFrac: 0.15, MaxLen: 2}
	cl := tinyCluster(t, 8)
	o := DefaultOptions()

	het, err := RunStrategy(w, cl, core.Config{
		Strategy: core.HetAware, Scheme: w.Scheme(),
		TraceOffset: o.TraceOffset, MinPartitionFrac: o.MinPartitionFrac,
	}, o.TraceOffset)
	if err != nil {
		t.Fatal(err)
	}
	steal, err := RunWorkStealingMining(w, cl, 2, o.TraceOffset)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("het-aware: %.3fs, %d candidates; stealing: %.3fs, %d candidates",
		het.TimeSec, int(het.Quality["candidates"]), steal.TimeSec, steal.Candidates)
	// The paper's §I claim: fragmentation inflates the candidate space.
	if steal.Candidates <= int(het.Quality["candidates"]) {
		t.Errorf("stealing candidates %d not above het-aware's %d — fragmentation effect missing",
			steal.Candidates, int(het.Quality["candidates"]))
	}
	if steal.Chunks != 16 {
		t.Errorf("chunks = %d, want 16", steal.Chunks)
	}
}

func TestStealingScheduleValidation(t *testing.T) {
	cl := tinyCluster(t, 2)
	if _, err := cl.StealingSchedule([]float64{-1}, 0); err == nil {
		t.Error("negative chunk cost accepted")
	}
	cfg := datasets.RCV1Like(0.0003)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	w := &TextMining{Docs: corpus, SupportFrac: 0.2, MaxLen: 2}
	if _, err := RunWorkStealingMining(w, cl, 0, 0); err == nil {
		t.Error("zero chunks accepted")
	}
}

func TestStealingScheduleGreedyProperty(t *testing.T) {
	cl := tinyCluster(t, 4) // speeds 4/3/2/1
	// Many equal unit chunks: greedy scheduling's makespan must be
	// within 2x of the fluid optimum total/(Σspeed), the classic list
	// scheduling bound.
	costs := make([]float64, 100)
	for i := range costs {
		costs[i] = 1e6
	}
	res, err := cl.StealingSchedule(costs, 0)
	if err != nil {
		t.Fatal(err)
	}
	fluid := 100e6 / ((4 + 3 + 2 + 1) * cl.CostRate)
	if res.Makespan < fluid {
		t.Errorf("makespan %.3f below fluid bound %.3f — impossible", res.Makespan, fluid)
	}
	if res.Makespan > 2*fluid {
		t.Errorf("makespan %.3f above 2× fluid bound %.3f", res.Makespan, 2*fluid)
	}
	// Cost conservation.
	var total float64
	for _, c := range res.NodeCosts {
		total += c
	}
	if total != 100e6 {
		t.Errorf("scheduled cost %v, want 1e8", total)
	}
	// Faster nodes process more cost.
	if !(res.NodeCosts[0] > res.NodeCosts[3]) {
		t.Errorf("fast node cost %v not above slow node %v", res.NodeCosts[0], res.NodeCosts[3])
	}
}

func TestMeasureOverhead(t *testing.T) {
	cfg := datasets.RCV1Like(0.0006)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	w := &TextMining{Docs: corpus, SupportFrac: 0.15, MaxLen: 2}
	cl := tinyCluster(t, 4)
	o := DefaultOptions()
	ov, err := MeasureOverhead(w, cl, o)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Stratify <= 0 || ov.Profile <= 0 || ov.Optimize <= 0 {
		t.Errorf("phase durations: %+v", ov)
	}
	if ov.StratifyStats.Iterations == 0 || ov.StratifyStats.SketchTime <= 0 {
		t.Errorf("stratify breakdown missing: %+v", ov.StratifyStats)
	}
	if ov.StratifyStats.SketchTime+ov.StratifyStats.ClusterTime > ov.Stratify {
		t.Errorf("stage breakdown %v+%v exceeds phase total %v",
			ov.StratifyStats.SketchTime, ov.StratifyStats.ClusterTime, ov.Stratify)
	}
	if ov.Total != ov.Stratify+ov.Profile+ov.Optimize {
		t.Error("total does not add up")
	}
	if ov.JobTimeSec <= 0 {
		t.Error("no job time")
	}
	if ov.String() == "" {
		t.Error("empty rendering")
	}
	if _, err := MeasureOverhead(nil, cl, o); err == nil {
		t.Error("nil workload accepted")
	}
}
