package bench

import (
	"testing"

	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
)

func tinyCluster(t *testing.T, p int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.PaperCluster(p, energy.DefaultPanel(), 172, 24)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// evenAssignment splits n records round-robin into p partitions.
func evenAssignment(n, p int) *partitioner.Assignment {
	parts := make([][]int, p)
	for i := 0; i < n; i++ {
		parts[i%p] = append(parts[i%p], i)
	}
	return &partitioner.Assignment{Parts: parts}
}

func TestTextMiningAdapter(t *testing.T) {
	cfg := datasets.RCV1Like(0.0003)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	w := &TextMining{Docs: corpus, SupportFrac: 0.2, MaxLen: 2}
	if w.Name() == "" || w.Corpus() != corpus || w.Scheme() != partitioner.Representative {
		t.Error("adapter metadata wrong")
	}
	cost, err := w.Profile([]int{0, 1, 2, 3, 4})
	if err != nil || cost <= 0 {
		t.Fatalf("profile cost %v, %v", cost, err)
	}
	cl := tinyCluster(t, 2)
	res, quality, err := w.Run(cl, evenAssignment(corpus.Len(), 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if quality["candidates"] < quality["frequent"] {
		t.Error("candidates below final frequent count")
	}
	if quality["false-positives"] != quality["candidates"]-quality["frequent"] {
		t.Error("false-positive bookkeeping wrong")
	}
}

func TestTreeMiningAdapter(t *testing.T) {
	trees, _, err := datasets.GenerateTrees(datasets.SwissProtLike(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTreeCorpus(trees)
	if err != nil {
		t.Fatal(err)
	}
	w := &TreeMining{Trees: corpus, SupportFrac: 0.4, MaxNodes: 3}
	if w.Scheme() != partitioner.Representative {
		t.Error("tree mining must want representative placement")
	}
	cost, err := w.Profile([]int{0, 1, 2})
	if err != nil || cost <= 0 {
		t.Fatalf("profile cost %v, %v", cost, err)
	}
	cl := tinyCluster(t, 2)
	res, quality, err := w.Run(cl, evenAssignment(corpus.Len(), 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || quality["candidates"] <= 0 {
		t.Errorf("degenerate run: %v %v", res.Makespan, quality)
	}
}

func TestGraphCompressionAdapter(t *testing.T) {
	g, _, err := datasets.GenerateGraph(datasets.UKLike(0.0001))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewGraphCorpus(g)
	if err != nil {
		t.Fatal(err)
	}
	w := &GraphCompression{Graph: corpus, Window: 7}
	if w.Scheme() != partitioner.SimilarTogether {
		t.Error("compression must want similar-together placement")
	}
	cl := tinyCluster(t, 2)
	res, quality, err := w.Run(cl, evenAssignment(corpus.Len(), 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if quality["compression-ratio"] <= 1 {
		t.Errorf("ratio %.2f, want > 1 on a web-like graph", quality["compression-ratio"])
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestLZ77Adapter(t *testing.T) {
	g, _, err := datasets.GenerateGraph(datasets.UKLike(0.0001))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewGraphCorpus(g)
	if err != nil {
		t.Fatal(err)
	}
	w := &LZ77Compression{Data: corpus}
	cost, err := w.Profile([]int{0, 1, 2, 3})
	if err != nil || cost <= 0 {
		t.Fatalf("profile cost %v, %v", cost, err)
	}
	cl := tinyCluster(t, 2)
	res, quality, err := w.Run(cl, evenAssignment(corpus.Len(), 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if quality["compression-ratio"] <= 1 {
		t.Errorf("LZ77 ratio %.2f on serialized adjacency records", quality["compression-ratio"])
	}
	if res.TotalEnergy <= 0 {
		t.Error("no energy accounted")
	}
}

func TestRunWithEmptyPartitions(t *testing.T) {
	// A partition may legitimately be empty (α < 1 pile-up); every
	// adapter must tolerate it.
	cfg := datasets.RCV1Like(0.0003)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		t.Fatal(err)
	}
	assign := &partitioner.Assignment{Parts: [][]int{nil, nil, nil}}
	all := make([]int, corpus.Len())
	for i := range all {
		all[i] = i
	}
	assign.Parts[1] = all
	cl := tinyCluster(t, 3)
	w := &TextMining{Docs: corpus, SupportFrac: 0.2, MaxLen: 2}
	res, _, err := w.Run(cl, assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeTimes[0] != 0 || res.NodeTimes[2] != 0 {
		t.Error("empty partitions accrued time")
	}
}

func TestCombineResults(t *testing.T) {
	a := &cluster.Result{
		NodeTimes: []float64{1, 2}, NodeCosts: []float64{10, 20},
		NodeDirty: []float64{5, 6}, Makespan: 2, DirtyEnergy: 11, TotalEnergy: 30,
	}
	b := &cluster.Result{
		NodeTimes: []float64{3, 1}, NodeCosts: []float64{30, 10},
		NodeDirty: []float64{1, 1}, Makespan: 3, DirtyEnergy: 2, TotalEnergy: 10,
	}
	c := combineResults(a, b)
	if c.Makespan != 5 || c.DirtyEnergy != 13 || c.TotalEnergy != 40 {
		t.Errorf("combined %+v", c)
	}
	if c.NodeTimes[0] != 4 || c.NodeCosts[1] != 30 || c.NodeDirty[0] != 6 {
		t.Errorf("per-node combine wrong: %+v", c)
	}
}

func TestRunStrategyNilWorkload(t *testing.T) {
	cl := tinyCluster(t, 2)
	if _, err := RunStrategy(nil, cl, core.Config{}, 0); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := MeasureFrontier(nil, cl, []float64{1}, DefaultOptions()); err == nil {
		t.Error("nil workload accepted by MeasureFrontier")
	}
	if _, err := PredictFrontier(nil, cl, []float64{1}, DefaultOptions()); err == nil {
		t.Error("nil workload accepted by PredictFrontier")
	}
}
