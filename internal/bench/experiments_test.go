package bench

import (
	"testing"

	"pareto/internal/core"
)

// rowsFor filters rows by strategy and partition count.
func rowFor(rows []StrategyRow, s core.Strategy, p int) *StrategyRow {
	for i := range rows {
		if rows[i].Strategy == s && rows[i].Partitions == p {
			return &rows[i]
		}
	}
	return nil
}

func TestTable1(t *testing.T) {
	rep, err := Table1(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" || len(rep.Text) == 0 {
		t.Error("empty report")
	}
	t.Logf("\n%s", rep.Text)
}

func TestFig3TextMiningShape(t *testing.T) {
	rep, err := Fig3(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Text)
	for _, p := range SmallScale().PartitionCounts {
		base := rowFor(rep.Rows, core.Stratified, p)
		het := rowFor(rep.Rows, core.HetAware, p)
		hea := rowFor(rep.Rows, core.HetEnergyAware, p)
		if base == nil || het == nil || hea == nil {
			t.Fatalf("missing rows at p=%d", p)
		}
		// Headline shape: Het-Aware is fastest.
		if het.TimeSec >= base.TimeSec {
			t.Errorf("p=%d: Het-Aware %.2fs not below Stratified %.2fs", p, het.TimeSec, base.TimeSec)
		}
		// The Savasere result quality is identical across strategies at
		// the same partition count — candidates may differ, but final
		// frequent sets must match.
		if base.Quality["frequent"] != het.Quality["frequent"] ||
			base.Quality["frequent"] != hea.Quality["frequent"] {
			t.Errorf("p=%d: frequent counts differ: %v / %v / %v",
				p, base.Quality["frequent"], het.Quality["frequent"], hea.Quality["frequent"])
		}
	}
}

func TestFig2TreeMiningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("tree mining sweep in short mode")
	}
	rep, err := Fig2(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Text)
	// Two datasets × counts × 3 strategies.
	want := 2 * len(SmallScale().PartitionCounts) * 3
	if len(rep.Rows) != want {
		t.Fatalf("%d rows, want %d", len(rep.Rows), want)
	}
	// Het-Aware beats the baseline on makespan in most configurations.
	wins, total := 0, 0
	for i := 0; i+2 < len(rep.Rows); i += 3 {
		base, het := rep.Rows[i], rep.Rows[i+1]
		total++
		if het.TimeSec < base.TimeSec {
			wins++
		}
	}
	if wins*2 < total {
		t.Errorf("Het-Aware won only %d of %d configurations", wins, total)
	}
}

func TestFig4GraphCompressionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("graph sweep in short mode")
	}
	rep, err := Fig4(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Text)
	for i := 0; i+2 < len(rep.Rows); i += 3 {
		base, het, hea := rep.Rows[i], rep.Rows[i+1], rep.Rows[i+2]
		if het.TimeSec >= base.TimeSec {
			t.Errorf("p=%d: Het-Aware %.2fs not below Stratified %.2fs",
				het.Partitions, het.TimeSec, base.TimeSec)
		}
		// Quality must not degrade: ratios within 10% of the baseline
		// (§V-C2: "heterogeneity aware schemes match the compression
		// ratio of the baseline").
		for _, r := range []StrategyRow{het, hea} {
			if r.Quality["compression-ratio"] < 0.9*base.Quality["compression-ratio"] {
				t.Errorf("p=%d %v ratio %.2f degraded vs baseline %.2f",
					r.Partitions, r.Strategy, r.Quality["compression-ratio"],
					base.Quality["compression-ratio"])
			}
		}
	}
}

func TestTables2And3LZ77(t *testing.T) {
	if testing.Short() {
		t.Skip("lz77 tables in short mode")
	}
	for _, gen := range []func(Scale) (*Report, error){Table2, Table3} {
		rep, err := gen(SmallScale())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", rep.Text)
		if len(rep.Rows) != 3 {
			t.Fatalf("%d rows", len(rep.Rows))
		}
		base := rep.Rows[0]
		for _, r := range rep.Rows[1:] {
			if r.Quality["compression-ratio"] < 0.85*base.Quality["compression-ratio"] {
				t.Errorf("%v LZ77 ratio %.2f degraded vs %.2f",
					r.Strategy, r.Quality["compression-ratio"], base.Quality["compression-ratio"])
			}
		}
		// The paper's point: LZ77 is I/O-bound, so heterogeneity-aware
		// sizing moves the needle far less than it does for mining.
		het := rep.Rows[1]
		gain := Improvement(base.TimeSec, het.TimeSec)
		if gain > 0.45 || gain < -0.45 {
			t.Errorf("LZ77 Het-Aware gain %.0f%% not muted", 100*gain)
		}
	}
}

func TestFig5FrontierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep in short mode")
	}
	rep, err := Fig5(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Text)
	// Per workload: 8 α points + 1 baseline.
	per := len(fig5Alphas()) + 1
	if len(rep.Frontier) != 3*per {
		t.Fatalf("%d frontier rows, want %d", len(rep.Frontier), 3*per)
	}
	for w := 0; w < 3; w++ {
		rows := rep.Frontier[w*per : (w+1)*per]
		pareto := rows[:len(rows)-1]
		base := rows[len(rows)-1]
		if !base.Baseline {
			t.Fatal("last row not the baseline")
		}
		// Dirty energy must be non-increasing along the sweep (α from
		// 1 toward 0 shifts weight onto the energy objective). Measured
		// *time* is allowed to be non-monotone at small scale: mining
		// cost is non-linear in partition size (candidate-set effects),
		// which the paper's LP — linear in data size — cannot see.
		for i := 1; i < len(pareto); i++ {
			if pareto[i].DirtyJ > pareto[i-1].DirtyJ*(1+1e-6)+1e-6 {
				t.Errorf("workload %d: dirty energy rose from α=%v (%.4f) to α=%v (%.4f)",
					w, pareto[i-1].Alpha, pareto[i-1].DirtyJ, pareto[i].Alpha, pareto[i].DirtyJ)
			}
		}
		// The sweep must actually trade: the energy-lean end consumes
		// strictly less dirty energy than the α=1 end.
		if !(pareto[len(pareto)-1].DirtyJ < pareto[0].DirtyJ) {
			t.Errorf("workload %d: sweep did not reduce dirty energy (%.4f → %.4f)",
				w, pareto[0].DirtyJ, pareto[len(pareto)-1].DirtyJ)
		}
		// The baseline is not Pareto-efficient (paper Fig 5: it sits
		// off the frontier): it must not dominate any frontier point,
		// and at least one frontier point must be strictly faster.
		faster := false
		for _, r := range pareto {
			if base.TimeSec <= r.TimeSec && base.DirtyJ <= r.DirtyJ &&
				(base.TimeSec < r.TimeSec || base.DirtyJ < r.DirtyJ) &&
				base.TimeSec < r.TimeSec*0.99 && base.DirtyJ < r.DirtyJ*0.99 {
				t.Errorf("workload %d: baseline strictly dominates frontier point α=%v", w, r.Alpha)
			}
			if r.TimeSec < base.TimeSec {
				faster = true
			}
		}
		if !faster {
			t.Errorf("workload %d: no frontier point beats the baseline's time %.3f",
				w, base.TimeSec)
		}
	}
}

func TestFig6SupportSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("support sweep in short mode")
	}
	rep, err := Fig6(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Text)
	per := len(fig5Alphas()) + 1
	if len(rep.Frontier) != 4*per {
		t.Fatalf("%d frontier rows, want %d", len(rep.Frontier), 4*per)
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	if _, err := RunExperiment("nope", SmallScale()); err == nil {
		t.Error("unknown experiment accepted")
	}
	rep, err := RunExperiment("table1", SmallScale())
	if err != nil || rep.ID != "table1" {
		t.Errorf("dispatch failed: %v", err)
	}
	if len(Experiments()) != 9 {
		t.Errorf("%d experiments registered", len(Experiments()))
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(0, 5) != 0 {
		t.Error("zero base")
	}
	if Improvement(10, 5) != 0.5 {
		t.Error("halving is 50%")
	}
}
