package bench

import (
	"fmt"
	"sort"
	"strings"

	"pareto/internal/cluster"
	"pareto/internal/core"
	"pareto/internal/opt"
	"pareto/internal/strata"
	"pareto/internal/telemetry"
)

// StrategyRow is one measured (strategy, partition count) cell of a
// figure: execution time, dirty energy and workload quality metrics.
type StrategyRow struct {
	Strategy   core.Strategy
	Alpha      float64
	Partitions int
	// TimeSec is the measured job makespan (simulated seconds).
	TimeSec float64
	// DirtyJ / TotalJ are measured energies in joules.
	DirtyJ float64
	TotalJ float64
	// Imbalance is makespan over mean busy time (1.0 = perfect).
	Imbalance float64
	// Quality carries workload metrics (candidates, ratios, …).
	Quality map[string]float64
	// PredictedTimeSec is the modeler's makespan prediction (0 for the
	// baseline, which does not model).
	PredictedTimeSec float64
}

// Options configures an experiment run.
type Options struct {
	// Alpha is the Het-Energy-Aware scalarization weight (paper: 0.999
	// for mining, 0.995 for compression).
	Alpha float64
	// TraceOffset is the job start within the solar traces in seconds
	// (noon of day one by default, so green energy is in play).
	TraceOffset float64
	// Stratifier overrides the stratifier defaults when K > 0.
	Stratifier strata.StratifierConfig
	// Seed feeds sampling.
	Seed int64
	// MinPartitionFrac floors optimized partitions at this fraction of
	// the equal share (mining workloads need ~0.25 to stay out of the
	// scaled-support degenerate regime; compression can use 0).
	MinPartitionFrac float64
	// Telemetry, when non-nil, instruments planning (stage spans, corpus
	// gauges) for every strategy run. Cluster-side metrics attach to the
	// cluster itself (see Scale.Telemetry / mkPaperCluster).
	Telemetry *telemetry.Registry
}

// DefaultOptions mirror the paper's FPM settings. The paper sets
// α = 0.999 for mining; because our simulated jobs are shorter, the
// dirty-energy objective's scale relative to time is smaller here, and
// the same point of the tradeoff region sits at α ≈ 0.995 (the scale
// dependence of raw α is exactly the problem §III-D flags and the
// Normalized modeler fixes).
func DefaultOptions() Options {
	return Options{Alpha: 0.995, TraceOffset: 12 * 3600, MinPartitionFrac: 0.25}
}

// strategiesFor returns the paper's three strategies at the given α.
func strategiesFor(w Workload, o Options) []core.Config {
	base := core.Config{
		Scheme:              w.Scheme(),
		Stratifier:          o.Stratifier,
		SampleSeed:          o.Seed,
		TraceOffset:         o.TraceOffset,
		MinPartitionFrac:    o.MinPartitionFrac,
		MinPartitionRecords: w.MinPartitionRecords(),
		Telemetry:           o.Telemetry,
	}
	strat := base
	strat.Strategy = core.Stratified
	het := base
	het.Strategy = core.HetAware
	hea := base
	hea.Strategy = core.HetEnergyAware
	hea.Alpha = o.Alpha
	return []core.Config{strat, het, hea}
}

// RunStrategy builds the plan for one strategy and executes the
// workload, returning the measured row.
func RunStrategy(w Workload, cl *cluster.Cluster, cfg core.Config, offset float64) (*StrategyRow, error) {
	if w == nil {
		return nil, errNoWorkload
	}
	plan, err := core.BuildPlan(w.Corpus(), cl, w.Profile, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: planning %v: %w", cfg.Strategy, err)
	}
	res, quality, err := w.Run(cl, plan.Assign, offset)
	if err != nil {
		return nil, fmt.Errorf("bench: running %v: %w", cfg.Strategy, err)
	}
	row := &StrategyRow{
		Strategy:   cfg.Strategy,
		Alpha:      plan.Alpha,
		Partitions: cl.P(),
		TimeSec:    res.Makespan,
		DirtyJ:     res.DirtyEnergy,
		TotalJ:     res.TotalEnergy,
		Imbalance:  res.Imbalance(),
		Quality:    quality,
	}
	if plan.Optimized != nil {
		row.PredictedTimeSec = plan.Optimized.Makespan
	}
	return row, nil
}

// CompareStrategies runs all three strategies at one partition count.
func CompareStrategies(w Workload, cl *cluster.Cluster, o Options) ([]StrategyRow, error) {
	rows := make([]StrategyRow, 0, 3)
	for _, cfg := range strategiesFor(w, o) {
		row, err := RunStrategy(w, cl, cfg, o.TraceOffset)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// Sweep runs CompareStrategies across partition counts (the x-axis of
// Figures 2–4), building a fresh paper cluster per count.
func Sweep(w Workload, partitionCounts []int, mkCluster func(p int) (*cluster.Cluster, error), o Options) ([]StrategyRow, error) {
	var rows []StrategyRow
	for _, p := range partitionCounts {
		cl, err := mkCluster(p)
		if err != nil {
			return nil, err
		}
		r, err := CompareStrategies(w, cl, o)
		if err != nil {
			return nil, fmt.Errorf("bench: %d partitions: %w", p, err)
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// FrontierRow is one measured point of a Pareto-frontier figure.
type FrontierRow struct {
	Alpha    float64
	TimeSec  float64
	DirtyJ   float64
	Baseline bool // the Stratified reference point
}

// MeasureFrontier sweeps α (Figure 5): for each value it builds a plan
// and *executes* it, so the frontier is measured, not just predicted.
// The Stratified baseline is appended as the reference point.
func MeasureFrontier(w Workload, cl *cluster.Cluster, alphas []float64, o Options) ([]FrontierRow, error) {
	if w == nil {
		return nil, errNoWorkload
	}
	rows := make([]FrontierRow, 0, len(alphas)+1)
	base := core.Config{
		Scheme:              w.Scheme(),
		Stratifier:          o.Stratifier,
		SampleSeed:          o.Seed,
		TraceOffset:         o.TraceOffset,
		MinPartitionFrac:    o.MinPartitionFrac,
		MinPartitionRecords: w.MinPartitionRecords(),
		Telemetry:           o.Telemetry,
	}
	for _, a := range alphas {
		cfg := base
		if a >= 1 {
			cfg.Strategy = core.HetAware
		} else {
			cfg.Strategy = core.HetEnergyAware
			cfg.Alpha = a
			if a <= 0 {
				// α = 0 is outside HetEnergyAware's domain; emulate
				// with a vanishing weight.
				cfg.Alpha = 1e-9
			}
		}
		row, err := RunStrategy(w, cl, cfg, o.TraceOffset)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FrontierRow{Alpha: a, TimeSec: row.TimeSec, DirtyJ: row.DirtyJ})
	}
	cfg := base
	cfg.Strategy = core.Stratified
	row, err := RunStrategy(w, cl, cfg, o.TraceOffset)
	if err != nil {
		return nil, err
	}
	rows = append(rows, FrontierRow{Alpha: -1, TimeSec: row.TimeSec, DirtyJ: row.DirtyJ, Baseline: true})
	return rows, nil
}

// PredictFrontier returns the modeler's predicted frontier without
// executing the workload per α — one profile pass, many LP solves.
// It is the cheap companion to MeasureFrontier.
func PredictFrontier(w Workload, cl *cluster.Cluster, alphas []float64, o Options) ([]opt.FrontierPoint, error) {
	if w == nil {
		return nil, errNoWorkload
	}
	cfg := core.Config{
		Strategy:    core.HetAware,
		Scheme:      w.Scheme(),
		Stratifier:  o.Stratifier,
		SampleSeed:  o.Seed,
		TraceOffset: o.TraceOffset,
		Telemetry:   o.Telemetry,
	}
	plan, err := core.BuildPlan(w.Corpus(), cl, w.Profile, cfg)
	if err != nil {
		return nil, err
	}
	return opt.Frontier(plan.Models, w.Corpus().Len(), alphas)
}

// Improvement returns the relative reduction of b versus a: (a−b)/a.
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// FormatRows renders strategy rows as an aligned text table, one line
// per row, with the quality metrics the workload reported.
func FormatRows(rows []StrategyRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %5s %7s %12s %12s %9s  %s\n",
		"strategy", "p", "alpha", "time(s)", "dirty(kJ)", "imbalance", "quality")
	for _, r := range rows {
		keys := make([]string, 0, len(r.Quality))
		for k := range r.Quality {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var qs []string
		for _, k := range keys {
			qs = append(qs, fmt.Sprintf("%s=%.4g", k, r.Quality[k]))
		}
		fmt.Fprintf(&sb, "%-18s %5d %7.4g %12.3f %12.3f %9.2f  %s\n",
			r.Strategy, r.Partitions, r.Alpha, r.TimeSec, r.DirtyJ/1000, r.Imbalance, strings.Join(qs, " "))
	}
	return sb.String()
}

// FormatFrontier renders frontier rows as an aligned text table.
func FormatFrontier(rows []FrontierRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %12s %12s %s\n", "alpha", "time(s)", "dirty(kJ)", "point")
	for _, r := range rows {
		label := "pareto"
		alpha := fmt.Sprintf("%.6g", r.Alpha)
		if r.Baseline {
			label = "stratified-baseline"
			alpha = "-"
		}
		fmt.Fprintf(&sb, "%10s %12.3f %12.3f %s\n", alpha, r.TimeSec, r.DirtyJ/1000, label)
	}
	return sb.String()
}
