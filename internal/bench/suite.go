package bench

import (
	"fmt"
	"sort"
	"strings"

	"pareto/internal/cluster"
	"pareto/internal/datasets"
	"pareto/internal/energy"
	"pareto/internal/pivots"
	"pareto/internal/telemetry"
	"pareto/internal/workloads/graphcomp"
	"pareto/internal/workloads/lz77"
)

// Scale sizes the experiment suite. The paper's full datasets (Table I)
// are reproduced in shape by the generators; Scale shrinks them so a
// run fits a laptop while preserving who-wins comparisons.
type Scale struct {
	// Tree/Graph/Text are generator scale factors relative to Table I.
	Tree  float64
	Graph float64
	Text  float64
	// PartitionCounts is the x-axis of Figures 2–4.
	PartitionCounts []int
	// TraceHours is the solar-trace length.
	TraceHours int
	// TextSupport / TreeSupport are mining support fractions.
	TextSupport float64
	TreeSupport float64
	// TextMaxLen / TreeMaxNodes bound pattern sizes.
	TextMaxLen   int
	TreeMaxNodes int
	// Telemetry, when non-nil, instruments the whole suite: plan-stage
	// spans and corpus gauges from core, per-node busy time and
	// green/dirty energy gauges from every cluster the suite builds.
	Telemetry *telemetry.Registry
}

// options returns the suite defaults with the scale's registry
// attached.
func (s Scale) options() Options {
	o := DefaultOptions()
	o.Telemetry = s.Telemetry
	return o
}

// SmallScale runs the whole suite in seconds (CI-sized).
func SmallScale() Scale {
	return Scale{
		// Corpora are kept large enough that 8 partitions can be both
		// support-sane (≥ 8/support records each) and 4:1 skewed.
		Tree: 0.01, Graph: 0.0004, Text: 0.0025,
		PartitionCounts: []int{4, 8},
		TraceHours:      48,
		TextSupport:     0.1, TreeSupport: 0.3,
		TextMaxLen: 3, TreeMaxNodes: 4,
	}
}

// PaperScale is the larger configuration used for the recorded
// EXPERIMENTS.md numbers (minutes, not seconds).
func PaperScale() Scale {
	return Scale{
		Tree: 0.02, Graph: 0.002, Text: 0.01,
		PartitionCounts: []int{4, 8, 16},
		TraceHours:      72,
		TextSupport:     0.08, TreeSupport: 0.3,
		TextMaxLen: 3, TreeMaxNodes: 4,
	}
}

// mkPaperCluster returns the cluster factory shared by the suite; the
// scale's telemetry registry rides along onto every cluster built.
func mkPaperCluster(s Scale) func(p int) (*cluster.Cluster, error) {
	return func(p int) (*cluster.Cluster, error) {
		cl, err := cluster.PaperCluster(p, energy.DefaultPanel(), 172, s.TraceHours)
		if err != nil {
			return nil, err
		}
		cl.Telemetry = s.Telemetry
		return cl, nil
	}
}

// Report is one regenerated artifact: an identifier, a rendered text
// table, and the raw rows for programmatic checks.
type Report struct {
	ID    string
	Title string
	Text  string
	Rows  []StrategyRow
	// Frontier is set for Figures 5 and 6.
	Frontier []FrontierRow
}

// Table1 regenerates Table I: the dataset inventory.
func Table1(s Scale) (*Report, error) {
	trees1, _, err := datasets.GenerateTrees(datasets.SwissProtLike(s.Tree))
	if err != nil {
		return nil, err
	}
	trees2, _, err := datasets.GenerateTrees(datasets.TreebankLike(s.Tree))
	if err != nil {
		return nil, err
	}
	g1, _, err := datasets.GenerateGraph(datasets.UKLike(s.Graph))
	if err != nil {
		return nil, err
	}
	g2, _, err := datasets.GenerateGraph(datasets.ArabicLike(s.Graph))
	if err != nil {
		return nil, err
	}
	textCfg := datasets.RCV1Like(s.Text)
	docs, _, err := datasets.GenerateText(textCfg)
	if err != nil {
		return nil, err
	}
	stats := []datasets.Stats{
		datasets.TreeStats("SwissProt-like", trees1),
		datasets.TreeStats("Treebank-like", trees2),
		datasets.GraphStats("UK-like", g1),
		datasets.GraphStats("Arabic-like", g2),
		datasets.TextStats("RCV1-like", docs, textCfg.VocabSize),
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-6s %10s %12s %10s\n", "dataset", "type", "records", "units", "vocab/N")
	for _, st := range stats {
		fmt.Fprintf(&sb, "%-16s %-6s %10d %12d %10d\n", st.Name, st.Kind, st.Records, st.Units, st.VocabOrN)
	}
	return &Report{ID: "table1", Title: "Table I: datasets (scaled)", Text: sb.String()}, nil
}

// treeWorkload builds the Fig 2 workload for one tree dataset.
func treeWorkload(cfg datasets.TreeConfig, support float64, maxNodes int) (*TreeMining, error) {
	trees, _, err := datasets.GenerateTrees(cfg)
	if err != nil {
		return nil, err
	}
	corpus, err := pivots.NewTreeCorpus(trees)
	if err != nil {
		return nil, err
	}
	return &TreeMining{Trees: corpus, SupportFrac: support, MaxNodes: maxNodes}, nil
}

// Fig2 regenerates Figure 2: frequent tree mining time and dirty
// energy on the two tree datasets, three strategies, partition sweep.
func Fig2(s Scale) (*Report, error) {
	var rows []StrategyRow
	var sb strings.Builder
	for _, d := range []struct {
		name string
		cfg  datasets.TreeConfig
	}{
		{"SwissProt-like", datasets.SwissProtLike(s.Tree)},
		{"Treebank-like", datasets.TreebankLike(s.Tree)},
	} {
		w, err := treeWorkload(d.cfg, s.TreeSupport, s.TreeMaxNodes)
		if err != nil {
			return nil, err
		}
		r, err := Sweep(w, s.PartitionCounts, mkPaperCluster(s), s.options())
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", d.name, err)
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", d.name, FormatRows(r))
		rows = append(rows, r...)
	}
	return &Report{ID: "fig2", Title: "Figure 2: frequent tree mining (time & dirty energy)", Text: sb.String(), Rows: rows}, nil
}

// Fig3 regenerates Figure 3: Apriori on the text corpus.
func Fig3(s Scale) (*Report, error) {
	cfg := datasets.RCV1Like(s.Text)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		return nil, err
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		return nil, err
	}
	w := &TextMining{Docs: corpus, SupportFrac: s.TextSupport, MaxLen: s.TextMaxLen}
	rows, err := Sweep(w, s.PartitionCounts, mkPaperCluster(s), s.options())
	if err != nil {
		return nil, err
	}
	return &Report{ID: "fig3", Title: "Figure 3: frequent text mining on RCV1-like",
		Text: FormatRows(rows), Rows: rows}, nil
}

// graphWorkload builds the Fig 4 workload for one webgraph.
func graphWorkload(cfg datasets.GraphConfig) (*GraphCompression, error) {
	g, _, err := datasets.GenerateGraph(cfg)
	if err != nil {
		return nil, err
	}
	corpus, err := pivots.NewGraphCorpus(g)
	if err != nil {
		return nil, err
	}
	return &GraphCompression{Graph: corpus, Window: 7, Residuals: graphcomp.ZetaCode}, nil
}

// Fig4 regenerates Figure 4: webgraph compression time, energy and
// compression ratio on the two webgraphs (α = 0.995 per §V-C2).
func Fig4(s Scale) (*Report, error) {
	o := s.options()
	o.Alpha = 0.99         // one notch below the mining α, as in §V-C2
	o.MinPartitionFrac = 0 // compression tolerates starved partitions
	var rows []StrategyRow
	var sb strings.Builder
	for _, d := range []struct {
		name string
		cfg  datasets.GraphConfig
	}{
		{"UK-like", datasets.UKLike(s.Graph)},
		{"Arabic-like", datasets.ArabicLike(s.Graph)},
	} {
		w, err := graphWorkload(d.cfg)
		if err != nil {
			return nil, err
		}
		r, err := Sweep(w, s.PartitionCounts, mkPaperCluster(s), o)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", d.name, err)
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", d.name, FormatRows(r))
		rows = append(rows, r...)
	}
	return &Report{ID: "fig4", Title: "Figure 4: webgraph compression (time, energy, ratio)", Text: sb.String(), Rows: rows}, nil
}

// lz77Table regenerates Table II (UK) or Table III (Arabic): LZ77 at 8
// partitions.
func lz77Table(id, title string, cfg datasets.GraphConfig, s Scale) (*Report, error) {
	g, _, err := datasets.GenerateGraph(cfg)
	if err != nil {
		return nil, err
	}
	corpus, err := pivots.NewGraphCorpus(g)
	if err != nil {
		return nil, err
	}
	w := &LZ77Compression{Data: corpus, Cfg: lz77.Config{}}
	o := s.options()
	o.Alpha = 0.99
	o.MinPartitionFrac = 0
	cl, err := mkPaperCluster(s)(8)
	if err != nil {
		return nil, err
	}
	rows, err := CompareStrategies(w, cl, o)
	if err != nil {
		return nil, err
	}
	return &Report{ID: id, Title: title, Text: FormatRows(rows), Rows: rows}, nil
}

// Table2 regenerates Table II: LZ77 on the UK-like graph, 8 partitions.
func Table2(s Scale) (*Report, error) {
	return lz77Table("table2", "Table II: LZ77 on UK-like, 8 partitions", datasets.UKLike(s.Graph), s)
}

// Table3 regenerates Table III: LZ77 on the Arabic-like graph.
func Table3(s Scale) (*Report, error) {
	return lz77Table("table3", "Table III: LZ77 on Arabic-like, 8 partitions", datasets.ArabicLike(s.Graph), s)
}

// fig5Alphas is the α ladder of the frontier figures.
func fig5Alphas() []float64 {
	return []float64{1.0, 0.9999, 0.999, 0.995, 0.99, 0.95, 0.9, 0.5}
}

// Fig5 regenerates Figure 5: measured Pareto frontiers for the tree,
// text and graph workloads at 8 partitions, with the Stratified
// baseline shown above the frontier.
func Fig5(s Scale) (*Report, error) {
	var sb strings.Builder
	var frontier []FrontierRow
	cl, err := mkPaperCluster(s)(8)
	if err != nil {
		return nil, err
	}
	tree, err := treeWorkload(datasets.SwissProtLike(s.Tree), s.TreeSupport, s.TreeMaxNodes)
	if err != nil {
		return nil, err
	}
	textCfg := datasets.RCV1Like(s.Text)
	docs, _, err := datasets.GenerateText(textCfg)
	if err != nil {
		return nil, err
	}
	textCorpus, err := pivots.NewTextCorpus(docs, textCfg.VocabSize)
	if err != nil {
		return nil, err
	}
	graph, err := graphWorkload(datasets.UKLike(s.Graph))
	if err != nil {
		return nil, err
	}
	graphOpts := s.options()
	graphOpts.MinPartitionFrac = 0 // reproduce the α≈0.9 pile-on of §V-D
	for _, wc := range []struct {
		w Workload
		o Options
	}{
		{tree, s.options()},
		{&TextMining{Docs: textCorpus, SupportFrac: s.TextSupport, MaxLen: s.TextMaxLen}, s.options()},
		{graph, graphOpts},
	} {
		rows, err := MeasureFrontier(wc.w, cl, fig5Alphas(), wc.o)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", wc.w.Name(), err)
		}
		fmt.Fprintf(&sb, "-- %s --\n%s", wc.w.Name(), FormatFrontier(rows))
		frontier = append(frontier, rows...)
	}
	return &Report{ID: "fig5", Title: "Figure 5: Pareto frontiers (8 partitions)", Text: sb.String(), Frontier: frontier}, nil
}

// Fig6 regenerates Figure 6: frontiers across support thresholds for
// the tree and text workloads.
func Fig6(s Scale) (*Report, error) {
	var sb strings.Builder
	var frontier []FrontierRow
	cl, err := mkPaperCluster(s)(8)
	if err != nil {
		return nil, err
	}
	for _, mult := range []float64{1.0, 1.5} {
		tree, err := treeWorkload(datasets.SwissProtLike(s.Tree), s.TreeSupport*mult, s.TreeMaxNodes)
		if err != nil {
			return nil, err
		}
		rows, err := MeasureFrontier(tree, cl, fig5Alphas(), s.options())
		if err != nil {
			return nil, fmt.Errorf("fig6 tree support ×%.1f: %w", mult, err)
		}
		fmt.Fprintf(&sb, "-- tree, support %.3f --\n%s", s.TreeSupport*mult, FormatFrontier(rows))
		frontier = append(frontier, rows...)
	}
	textCfg := datasets.RCV1Like(s.Text)
	docs, _, err := datasets.GenerateText(textCfg)
	if err != nil {
		return nil, err
	}
	textCorpus, err := pivots.NewTextCorpus(docs, textCfg.VocabSize)
	if err != nil {
		return nil, err
	}
	for _, mult := range []float64{1.0, 1.5} {
		w := &TextMining{Docs: textCorpus, SupportFrac: s.TextSupport * mult, MaxLen: s.TextMaxLen}
		rows, err := MeasureFrontier(w, cl, fig5Alphas(), s.options())
		if err != nil {
			return nil, fmt.Errorf("fig6 text support ×%.1f: %w", mult, err)
		}
		fmt.Fprintf(&sb, "-- text, support %.3f --\n%s", s.TextSupport*mult, FormatFrontier(rows))
		frontier = append(frontier, rows...)
	}
	return &Report{ID: "fig6", Title: "Figure 6: frontiers across support thresholds", Text: sb.String(), Frontier: frontier}, nil
}

// OverheadReport measures the framework's one-time planning cost
// (§III: "a one-time cost (small) ... amortized over multiple runs")
// for the text-mining workload: wall-clock per planning phase, against
// the simulated per-run makespan it amortizes over.
func OverheadReport(s Scale) (*Report, error) {
	cfg := datasets.RCV1Like(s.Text)
	docs, _, err := datasets.GenerateText(cfg)
	if err != nil {
		return nil, err
	}
	corpus, err := pivots.NewTextCorpus(docs, cfg.VocabSize)
	if err != nil {
		return nil, err
	}
	w := &TextMining{Docs: corpus, SupportFrac: s.TextSupport, MaxLen: s.TextMaxLen}
	cl, err := mkPaperCluster(s)(8)
	if err != nil {
		return nil, err
	}
	ov, err := MeasureOverhead(w, cl, s.options())
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(ov.String())
	fmt.Fprintf(&sb, "planned-run makespan (simulated): %.3f s\n", ov.JobTimeSec)
	return &Report{ID: "overhead", Title: "Framework planning overhead (§III amortization claim)", Text: sb.String()}, nil
}

// Experiments lists every regenerable artifact by ID.
func Experiments() []string {
	return []string{"table1", "fig2", "fig3", "fig4", "table2", "table3", "fig5", "fig6", "overhead"}
}

// RunExperiment dispatches an artifact ID to its generator.
func RunExperiment(id string, s Scale) (*Report, error) {
	switch id {
	case "table1":
		return Table1(s)
	case "fig2":
		return Fig2(s)
	case "fig3":
		return Fig3(s)
	case "fig4":
		return Fig4(s)
	case "table2":
		return Table2(s)
	case "table3":
		return Table3(s)
	case "fig5":
		return Fig5(s)
	case "fig6":
		return Fig6(s)
	case "overhead":
		return OverheadReport(s)
	default:
		ids := Experiments()
		sort.Strings(ids)
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
	}
}
