package bench

import (
	"fmt"

	"pareto/internal/cluster"
	"pareto/internal/workloads/apriori"
)

// StealingResult compares the idealized work-stealing strawman against
// the framework on the text-mining workload.
type StealingResult struct {
	// Chunks is the number of work-stealing chunks.
	Chunks int
	// TimeSec is the stealing schedule's makespan (both phases).
	TimeSec float64
	// DirtyJ is its dirty energy.
	DirtyJ float64
	// Candidates is the global candidate count its fragmentation
	// produced (versus the framework's stratified partitions).
	Candidates int
}

// RunWorkStealingMining executes the partitioned text-mining job under
// work stealing: the corpus is pre-split payload-obliviously (round
// robin, as a generic runtime would) into chunksPerNode×P chunks, each
// chunk is mined locally (phase 1), then every chunk runs the global
// candidate count pass (phase 2); both phases are scheduled greedily
// onto the heterogeneous nodes.
//
// Because the Savasere scheme's local support threshold scales with
// chunk size, fragmenting the data into more, smaller,
// payload-oblivious chunks manufactures locally-frequent-but-globally-
// rare patterns — work stealing balances machine load while inflating
// the work itself (paper §I).
func RunWorkStealingMining(w *TextMining, cl *cluster.Cluster, chunksPerNode int, offset float64) (*StealingResult, error) {
	if chunksPerNode < 1 {
		return nil, fmt.Errorf("bench: chunksPerNode %d", chunksPerNode)
	}
	n := w.Docs.Len()
	nChunks := chunksPerNode * cl.P()
	if nChunks > n {
		nChunks = n
	}
	chunks := make([][]apriori.Transaction, nChunks)
	for i := 0; i < n; i++ {
		c := i % nChunks
		chunks[c] = append(chunks[c], w.Docs.Docs[i].Terms)
	}
	// Phase 1: local mining per chunk (real algorithm, real costs).
	costs1 := make([]float64, nChunks)
	locals := make([]*apriori.PartitionResult, nChunks)
	for ci, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		pr, err := apriori.MineLocal(chunk, w.SupportFrac, w.MaxLen)
		if err != nil {
			return nil, err
		}
		locals[ci] = pr
		costs1[ci] = pr.Cost
	}
	res1, err := cl.StealingSchedule(costs1, offset)
	if err != nil {
		return nil, err
	}
	var nonNil []*apriori.PartitionResult
	for _, l := range locals {
		if l != nil {
			nonNil = append(nonNil, l)
		}
	}
	cands := apriori.GlobalCandidates(nonNil)
	// Phase 2: count pass per chunk.
	costs2 := make([]float64, nChunks)
	for ci, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		_, cost := apriori.CountPass(chunk, cands)
		costs2[ci] = cost
	}
	res2, err := cl.StealingSchedule(costs2, offset+res1.Makespan)
	if err != nil {
		return nil, err
	}
	return &StealingResult{
		Chunks:     nChunks,
		TimeSec:    res1.Makespan + res2.Makespan,
		DirtyJ:     res1.DirtyEnergy + res2.DirtyEnergy,
		Candidates: len(cands),
	}, nil
}
