// Package bench is the experiment harness: it binds the corpora to the
// four analytics workloads, runs the paper's three partitioning
// strategies on the simulated heterogeneous cluster, and regenerates
// every table and figure of the evaluation (§V). See DESIGN.md's
// experiment index for the mapping.
package bench

import (
	"errors"

	"pareto/internal/cluster"
	"pareto/internal/partitioner"
	"pareto/internal/pivots"
	"pareto/internal/workloads/apriori"
	"pareto/internal/workloads/graphcomp"
	"pareto/internal/workloads/lz77"
	"pareto/internal/workloads/treemine"
)

// Workload binds a corpus to a distributed analytics algorithm.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Corpus exposes the data to stratify and place.
	Corpus() pivots.Corpus
	// Scheme is the placement scheme this workload wants.
	Scheme() partitioner.Scheme
	// Profile runs the actual algorithm on a representative sample
	// (record indices) and returns its abstract cost — the
	// progressive-sampling measurement.
	Profile(indices []int) (float64, error)
	// Run executes the distributed job with the given placement on the
	// cluster, returning the execution result and workload-specific
	// quality metrics (candidate counts, compression ratios, …).
	Run(cl *cluster.Cluster, assign *partitioner.Assignment, offset float64) (*cluster.Result, map[string]float64, error)
	// MinPartitionRecords states how many records a partition needs
	// before the workload behaves sanely on it (0 = any size). For
	// scaled-support mining this keeps local thresholds meaningful.
	MinPartitionRecords() float64
}

// minMiningSupportCount is the local support count the mining
// workloads insist on at their smallest partition: below ~8 occurrences
// the scaled threshold admits nearly every co-occurrence as locally
// frequent and the candidate space explodes.
const minMiningSupportCount = 8

// ---------------------------------------------------------------------------
// Text mining (Apriori, Savasere-partitioned) — Fig 3
// ---------------------------------------------------------------------------

// TextMining is the frequent-text-mining workload on a document corpus.
type TextMining struct {
	Docs        *pivots.TextCorpus
	SupportFrac float64
	MaxLen      int
}

// Name implements Workload.
func (w *TextMining) Name() string { return "text-mining" }

// Corpus implements Workload.
func (w *TextMining) Corpus() pivots.Corpus { return w.Docs }

// Scheme implements Workload: mining wants representative partitions.
func (w *TextMining) Scheme() partitioner.Scheme { return partitioner.Representative }

// MinPartitionRecords implements Workload: enough documents that the
// scaled local threshold is at least minMiningSupportCount.
func (w *TextMining) MinPartitionRecords() float64 {
	if w.SupportFrac <= 0 {
		return 0
	}
	return minMiningSupportCount / w.SupportFrac
}

func (w *TextMining) txns(indices []int) []apriori.Transaction {
	out := make([]apriori.Transaction, len(indices))
	for k, i := range indices {
		out[k] = w.Docs.Docs[i].Terms
	}
	return out
}

// Profile implements Workload: local mining cost on the sample.
func (w *TextMining) Profile(indices []int) (float64, error) {
	pr, err := apriori.MineLocal(w.txns(indices), w.SupportFrac, w.MaxLen)
	if err != nil {
		return 0, err
	}
	return pr.Cost, nil
}

// Run implements Workload: phase 1 (local mining) and phase 2 (global
// candidate counting) execute per node on the cluster, separated by
// the candidate-union barrier; times and energies add across phases.
func (w *TextMining) Run(cl *cluster.Cluster, assign *partitioner.Assignment, offset float64) (*cluster.Result, map[string]float64, error) {
	p := assign.P()
	parts := make([][]apriori.Transaction, p)
	for j := 0; j < p; j++ {
		parts[j] = w.txns(assign.Parts[j])
	}
	// Phase 1: local mining.
	locals := make([]*apriori.PartitionResult, p)
	phase1 := make([]cluster.Task, p)
	for j := 0; j < p; j++ {
		j := j
		if len(parts[j]) == 0 {
			continue
		}
		phase1[j] = func() (float64, error) {
			pr, err := apriori.MineLocal(parts[j], w.SupportFrac, w.MaxLen)
			if err != nil {
				return 0, err
			}
			locals[j] = pr
			return pr.Cost, nil
		}
	}
	res1, err := cl.Run(offset, phase1)
	if err != nil {
		return nil, nil, err
	}
	// Barrier: union locally frequent itemsets.
	var nonNil []*apriori.PartitionResult
	for _, l := range locals {
		if l != nil {
			nonNil = append(nonNil, l)
		}
	}
	cands := apriori.GlobalCandidates(nonNil)
	// Phase 2: global counting.
	phase2 := make([]cluster.Task, p)
	falsePos := 0
	counts := make([][]int, p)
	for j := 0; j < p; j++ {
		j := j
		if len(parts[j]) == 0 {
			continue
		}
		phase2[j] = func() (float64, error) {
			c, cost := apriori.CountPass(parts[j], cands)
			counts[j] = c
			return cost, nil
		}
	}
	res2, err := cl.Run(offset+res1.Makespan, phase2)
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	final := 0
	for ci := range cands {
		sum := 0
		for j := 0; j < p; j++ {
			if counts[j] != nil {
				sum += counts[j][ci]
			}
		}
		if float64(sum) >= w.SupportFrac*float64(total) {
			final++
		}
	}
	falsePos = len(cands) - final
	combined := combineResults(res1, res2)
	quality := map[string]float64{
		"candidates":      float64(len(cands)),
		"frequent":        float64(final),
		"false-positives": float64(falsePos),
	}
	return combined, quality, nil
}

// ---------------------------------------------------------------------------
// Tree mining (FREQT, Savasere-partitioned) — Fig 2
// ---------------------------------------------------------------------------

// TreeMining is the frequent-subtree-mining workload on a tree corpus.
type TreeMining struct {
	Trees       *pivots.TreeCorpus
	SupportFrac float64
	MaxNodes    int
}

// Name implements Workload.
func (w *TreeMining) Name() string { return "tree-mining" }

// Corpus implements Workload.
func (w *TreeMining) Corpus() pivots.Corpus { return w.Trees }

// Scheme implements Workload.
func (w *TreeMining) Scheme() partitioner.Scheme { return partitioner.Representative }

// MinPartitionRecords implements Workload (see TextMining).
func (w *TreeMining) MinPartitionRecords() float64 {
	if w.SupportFrac <= 0 {
		return 0
	}
	return minMiningSupportCount / w.SupportFrac
}

func (w *TreeMining) subset(indices []int) []pivots.Tree {
	out := make([]pivots.Tree, len(indices))
	for k, i := range indices {
		out[k] = w.Trees.Trees[i]
	}
	return out
}

// Profile implements Workload.
func (w *TreeMining) Profile(indices []int) (float64, error) {
	pr, err := treemine.MineLocal(w.subset(indices), w.SupportFrac, treemine.Config{MaxNodes: w.MaxNodes})
	if err != nil {
		return 0, err
	}
	return pr.Cost, nil
}

// Run implements Workload: the same two-phase structure as text mining.
func (w *TreeMining) Run(cl *cluster.Cluster, assign *partitioner.Assignment, offset float64) (*cluster.Result, map[string]float64, error) {
	p := assign.P()
	parts := make([][]pivots.Tree, p)
	for j := 0; j < p; j++ {
		parts[j] = w.subset(assign.Parts[j])
	}
	locals := make([]*treemine.PartitionResult, p)
	phase1 := make([]cluster.Task, p)
	for j := 0; j < p; j++ {
		j := j
		if len(parts[j]) == 0 {
			continue
		}
		phase1[j] = func() (float64, error) {
			pr, err := treemine.MineLocal(parts[j], w.SupportFrac, treemine.Config{MaxNodes: w.MaxNodes})
			if err != nil {
				return 0, err
			}
			locals[j] = pr
			return pr.Cost, nil
		}
	}
	res1, err := cl.Run(offset, phase1)
	if err != nil {
		return nil, nil, err
	}
	seen := map[string]bool{}
	var cands []treemine.Pattern
	for _, l := range locals {
		if l == nil {
			continue
		}
		for _, fp := range l.Local {
			k := fp.Pattern.Key()
			if !seen[k] {
				seen[k] = true
				cands = append(cands, fp.Pattern)
			}
		}
	}
	counts := make([][]int, p)
	phase2 := make([]cluster.Task, p)
	for j := 0; j < p; j++ {
		j := j
		if len(parts[j]) == 0 {
			continue
		}
		phase2[j] = func() (float64, error) {
			f, err := treemine.NewForest(parts[j])
			if err != nil {
				return 0, err
			}
			c := make([]int, len(cands))
			var cost float64
			for ci, pat := range cands {
				sup, w2, err := treemine.CountSupport(f, pat)
				if err != nil {
					return 0, err
				}
				c[ci] = sup
				cost += w2
			}
			counts[j] = c
			return cost, nil
		}
	}
	res2, err := cl.Run(offset+res1.Makespan, phase2)
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	final := 0
	for ci := range cands {
		sum := 0
		for j := 0; j < p; j++ {
			if counts[j] != nil {
				sum += counts[j][ci]
			}
		}
		if float64(sum) >= w.SupportFrac*float64(total) {
			final++
		}
	}
	combined := combineResults(res1, res2)
	quality := map[string]float64{
		"candidates":      float64(len(cands)),
		"frequent":        float64(final),
		"false-positives": float64(len(cands) - final),
	}
	return combined, quality, nil
}

// ---------------------------------------------------------------------------
// Webgraph compression — Fig 4
// ---------------------------------------------------------------------------

// GraphCompression compresses each partition's adjacency lists with
// the webgraph codec.
type GraphCompression struct {
	Graph  *pivots.GraphCorpus
	Window int
	// Residuals selects the gap code (webgraph defaults to ζ₃; the
	// suite follows).
	Residuals graphcomp.Code
	// ZetaK is the ζ shrinking parameter (0 = codec default).
	ZetaK uint
}

// codecConfig assembles the codec configuration.
func (w *GraphCompression) codecConfig() graphcomp.Config {
	return graphcomp.Config{Window: w.Window, Residuals: w.Residuals, ZetaK: w.ZetaK}
}

// Name implements Workload.
func (w *GraphCompression) Name() string { return "graph-compression" }

// Corpus implements Workload.
func (w *GraphCompression) Corpus() pivots.Corpus { return w.Graph }

// Scheme implements Workload: compression wants low-entropy partitions.
func (w *GraphCompression) Scheme() partitioner.Scheme { return partitioner.SimilarTogether }

// MinPartitionRecords implements Workload: compression accepts any size.
func (w *GraphCompression) MinPartitionRecords() float64 { return 0 }

func (w *GraphCompression) lists(indices []int) ([]uint32, [][]uint32) {
	ids := make([]uint32, len(indices))
	lists := make([][]uint32, len(indices))
	for k, i := range indices {
		ids[k] = uint32(i)
		lists[k] = w.Graph.G.Adj[i]
	}
	return ids, lists
}

// Profile implements Workload.
func (w *GraphCompression) Profile(indices []int) (float64, error) {
	ids, lists := w.lists(indices)
	enc, err := graphcomp.Encode(ids, lists, w.codecConfig())
	if err != nil {
		return 0, err
	}
	return enc.Cost, nil
}

// Run implements Workload: one compression pass per node; quality is
// the aggregate compression ratio.
func (w *GraphCompression) Run(cl *cluster.Cluster, assign *partitioner.Assignment, offset float64) (*cluster.Result, map[string]float64, error) {
	p := assign.P()
	rawBits := make([]int, p)
	compBits := make([]int, p)
	tasks := make([]cluster.Task, p)
	for j := 0; j < p; j++ {
		j := j
		indices := assign.Parts[j]
		if len(indices) == 0 {
			continue
		}
		tasks[j] = func() (float64, error) {
			ids, lists := w.lists(indices)
			enc, err := graphcomp.Encode(ids, lists, w.codecConfig())
			if err != nil {
				return 0, err
			}
			rawBits[j] = graphcomp.RawBits(ids, lists)
			compBits[j] = enc.BitLen
			return enc.Cost, nil
		}
	}
	res, err := cl.Run(offset, tasks)
	if err != nil {
		return nil, nil, err
	}
	var raw, comp float64
	for j := 0; j < p; j++ {
		raw += float64(rawBits[j])
		comp += float64(compBits[j])
	}
	ratio := 0.0
	if comp > 0 {
		ratio = raw / comp
	}
	return res, map[string]float64{"compression-ratio": ratio}, nil
}

// ---------------------------------------------------------------------------
// LZ77 compression — Tables II and III
// ---------------------------------------------------------------------------

// LZ77Compression compresses each partition's serialized byte stream.
//
// The paper observes (Tables II/III) that LZ77 is so fast its runs are
// dominated by speed-independent work — reading the partition off
// storage — so CPU-heterogeneity-aware sizing gains little. The
// adapter reproduces that regime: each node's demand is a CPU cost
// (scaled by CPUScale, since LZ77 retires far more bytes per cycle
// than pattern mining) plus fixed I/O seconds at IOBytesPerSec,
// identical across node types.
type LZ77Compression struct {
	Data pivots.Corpus
	Cfg  lz77.Config
	// IOBytesPerSec is the speed-independent read rate. 0 means
	// DefaultIOBytesPerSec.
	IOBytesPerSec float64
	// CPUScale divides the codec's abstract cost to reflect LZ77's
	// high per-byte throughput. 0 means DefaultLZ77CPUScale.
	CPUScale float64
}

// LZ77 regime defaults: chosen so the fixed I/O share and the CPU
// share of a partition's runtime are comparable, reproducing the
// muted (but not absent) heterogeneity gains of Tables II/III.
const (
	DefaultIOBytesPerSec = 3e6
	DefaultLZ77CPUScale  = 4
)

func (w *LZ77Compression) ioRate() float64 {
	if w.IOBytesPerSec > 0 {
		return w.IOBytesPerSec
	}
	return DefaultIOBytesPerSec
}

func (w *LZ77Compression) cpuScale() float64 {
	if w.CPUScale > 0 {
		return w.CPUScale
	}
	return DefaultLZ77CPUScale
}

// Name implements Workload.
func (w *LZ77Compression) Name() string { return "lz77-compression" }

// Corpus implements Workload.
func (w *LZ77Compression) Corpus() pivots.Corpus { return w.Data }

// Scheme implements Workload.
func (w *LZ77Compression) Scheme() partitioner.Scheme { return partitioner.SimilarTogether }

// MinPartitionRecords implements Workload: compression accepts any size.
func (w *LZ77Compression) MinPartitionRecords() float64 { return 0 }

func (w *LZ77Compression) bytes(indices []int) []byte {
	var buf []byte
	for _, i := range indices {
		buf = w.Data.AppendRecord(buf, i)
	}
	return buf
}

// Profile implements Workload: the CPU-side cost only. The fixed I/O
// component is invisible to the speed-scaled profiler, so the learned
// models overstate heterogeneity — exactly why the measured LZ77 gains
// stay muted, as in the paper.
func (w *LZ77Compression) Profile(indices []int) (float64, error) {
	enc, err := lz77.Compress(w.bytes(indices), w.Cfg)
	if err != nil {
		return 0, err
	}
	return enc.Cost / w.cpuScale(), nil
}

// Run implements Workload.
func (w *LZ77Compression) Run(cl *cluster.Cluster, assign *partitioner.Assignment, offset float64) (*cluster.Result, map[string]float64, error) {
	p := assign.P()
	rawLen := make([]int, p)
	compLen := make([]int, p)
	tasks := make([]cluster.DetailedTask, p)
	for j := 0; j < p; j++ {
		j := j
		indices := assign.Parts[j]
		if len(indices) == 0 {
			continue
		}
		tasks[j] = func() (cluster.TaskReport, error) {
			data := w.bytes(indices)
			enc, err := lz77.Compress(data, w.Cfg)
			if err != nil {
				return cluster.TaskReport{}, err
			}
			rawLen[j] = len(data)
			compLen[j] = len(enc.Data)
			return cluster.TaskReport{
				Cost:         enc.Cost / w.cpuScale(),
				FixedSeconds: float64(len(data)) / w.ioRate(),
			}, nil
		}
	}
	res, err := cl.RunDetailed(offset, tasks)
	if err != nil {
		return nil, nil, err
	}
	var raw, comp float64
	for j := 0; j < p; j++ {
		raw += float64(rawLen[j])
		comp += float64(compLen[j])
	}
	ratio := 0.0
	if comp > 0 {
		ratio = raw / comp
	}
	return res, map[string]float64{"compression-ratio": ratio}, nil
}

// combineResults adds two phase results (phase 2 starts after phase 1's
// barrier, so makespans add).
func combineResults(a, b *cluster.Result) *cluster.Result {
	out := &cluster.Result{
		NodeTimes: make([]float64, len(a.NodeTimes)),
		NodeCosts: make([]float64, len(a.NodeCosts)),
		NodeDirty: make([]float64, len(a.NodeDirty)),
	}
	for i := range a.NodeTimes {
		out.NodeTimes[i] = a.NodeTimes[i] + b.NodeTimes[i]
		out.NodeCosts[i] = a.NodeCosts[i] + b.NodeCosts[i]
		out.NodeDirty[i] = a.NodeDirty[i] + b.NodeDirty[i]
	}
	out.Makespan = a.Makespan + b.Makespan
	out.DirtyEnergy = a.DirtyEnergy + b.DirtyEnergy
	out.TotalEnergy = a.TotalEnergy + b.TotalEnergy
	return out
}

// errNoWorkload guards experiment entry points.
var errNoWorkload = errors.New("bench: nil workload")

// ensure interface conformance.
var (
	_ Workload = (*TextMining)(nil)
	_ Workload = (*TreeMining)(nil)
	_ Workload = (*GraphCompression)(nil)
	_ Workload = (*LZ77Compression)(nil)
)
