package partitioner

import (
	"bytes"
	"fmt"
	"testing"

	"pareto/internal/pivots"
)

// bigTestCorpus builds an n-doc corpus with distinct, position-tagged
// content so any cross-partition mixup is caught byte-for-byte.
func bigTestCorpus(t testing.TB, n int) *pivots.TextCorpus {
	t.Helper()
	docs := make([]pivots.Doc, n)
	for i := range docs {
		docs[i] = pivots.Doc{Terms: []uint32{uint32(i), uint32(i + n), uint32(i + 2*n)}}
	}
	c, err := pivots.NewTextCorpus(docs, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func stripedAssignment(n, p int) *Assignment {
	parts := make([][]int, p)
	for i := 0; i < n; i++ {
		parts[i%p] = append(parts[i%p], i)
	}
	return &Assignment{Parts: parts}
}

// TestPlaceParallelMatchesSequential places the same assignment
// sequentially and at several worker counts and asserts every store
// ends up byte-identical.
func TestPlaceParallelMatchesSequential(t *testing.T) {
	const n, p = 200, 7
	corpus := bigTestCorpus(t, n)
	a := stripedAssignment(n, p)
	ref := NewMemoryStore()
	if err := PlaceParallel(corpus, a, ref, 1); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 4, 16} {
		st := NewMemoryStore()
		if err := PlaceParallel(corpus, a, st, w); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for j := 0; j < p; j++ {
			want, err := ref.ReadPartition(j)
			if err != nil {
				t.Fatal(err)
			}
			got, err := st.ReadPartition(j)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d: partition %d has %d records, want %d", w, j, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("workers=%d: partition %d record %d differs", w, j, i)
				}
			}
		}
	}
}

// seqOnlyStore wraps MemoryStore but hides WriteGroup, modeling a
// third-party Store with an unknown concurrency contract; Place must
// fall back to strictly sequential writes and still succeed.
type seqOnlyStore struct{ inner *MemoryStore }

func (s *seqOnlyStore) WritePartition(id int, records [][]byte) error {
	return s.inner.WritePartition(id, records)
}
func (s *seqOnlyStore) ReadPartition(id int) ([][]byte, error) {
	return s.inner.ReadPartition(id)
}

func TestPlaceParallelSequentialFallback(t *testing.T) {
	const n, p = 60, 4
	corpus := bigTestCorpus(t, n)
	a := stripedAssignment(n, p)
	st := &seqOnlyStore{inner: NewMemoryStore()}
	if err := PlaceParallel(corpus, a, st, 8); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < p; j++ {
		recs, err := st.ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(a.Parts[j]) {
			t.Fatalf("partition %d has %d records, want %d", j, len(recs), len(a.Parts[j]))
		}
	}
}

// failingStore fails writes for chosen partitions; PlaceParallel must
// report the lowest-numbered failing group at any worker count.
type failingStore struct {
	inner *MemoryStore
	fail  map[int]bool
}

func (s *failingStore) WritePartition(id int, records [][]byte) error {
	if s.fail[id] {
		return fmt.Errorf("synthetic failure %d", id)
	}
	return s.inner.WritePartition(id, records)
}
func (s *failingStore) ReadPartition(id int) ([][]byte, error) { return s.inner.ReadPartition(id) }
func (s *failingStore) WriteGroup(id int) int                  { return id }

func TestPlaceParallelDeterministicError(t *testing.T) {
	const n, p = 60, 12
	corpus := bigTestCorpus(t, n)
	a := stripedAssignment(n, p)
	for _, w := range []int{1, 3, 8} {
		st := &failingStore{inner: NewMemoryStore(), fail: map[int]bool{3: true, 9: true}}
		err := PlaceParallel(corpus, a, st, w)
		want := "partitioner: placing partition 3: synthetic failure 3"
		if err == nil || err.Error() != want {
			t.Errorf("workers=%d: err = %v, want %q", w, err, want)
		}
	}
}
