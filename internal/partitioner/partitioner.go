// Package partitioner implements the data partitioner (paper §III-E):
// it turns the stratifier's clusters and the Pareto modeler's partition
// sizes into concrete record placements, and ships them to storage.
//
// Two placement schemes are supported, both driven by stratification:
//
//   - Representative: each partition is a stratified sample without
//     replacement of the whole dataset, so every partition reflects the
//     global payload distribution (what frequent pattern mining wants —
//     it minimizes false-positive candidates from partition skew).
//   - SimilarTogether: records are ordered by stratum and partitions
//     are consecutive chunks of the optimizer's sizes, minimizing
//     per-partition entropy (what compression wants).
package partitioner

import (
	"errors"
	"fmt"

	"pareto/internal/pivots"
)

// Scheme selects the placement strategy.
type Scheme int

// Placement schemes.
const (
	// Representative makes every partition a stratified sample of the
	// full dataset.
	Representative Scheme = iota
	// SimilarTogether groups same-stratum records into the same
	// partition (low-entropy partitions).
	SimilarTogether
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Representative:
		return "representative"
	case SimilarTogether:
		return "similar-together"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Assignment is a complete placement: Parts[j] lists the record
// indices of partition j, in their within-partition order.
type Assignment struct {
	Parts [][]int
}

// P returns the partition count.
func (a *Assignment) P() int { return len(a.Parts) }

// Sizes returns per-partition record counts.
func (a *Assignment) Sizes() []int {
	s := make([]int, len(a.Parts))
	for j, p := range a.Parts {
		s[j] = len(p)
	}
	return s
}

// Validate checks the assignment covers 0..n−1 exactly once.
func (a *Assignment) Validate(n int) error {
	seen := make([]bool, n)
	count := 0
	for j, part := range a.Parts {
		for _, r := range part {
			if r < 0 || r >= n {
				return fmt.Errorf("partitioner: partition %d holds out-of-range record %d", j, r)
			}
			if seen[r] {
				return fmt.Errorf("partitioner: record %d placed twice", r)
			}
			seen[r] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("partitioner: placed %d of %d records", count, n)
	}
	return nil
}

// Partition builds an assignment that places every record of an
// n-record dataset into partitions of exactly the given sizes
// (Σ sizes = n), using the strata membership lists from the
// stratifier. members[s] lists the record indices of stratum s.
func Partition(scheme Scheme, members [][]int, sizes []int) (*Assignment, error) {
	n := 0
	for _, m := range members {
		n += len(m)
	}
	total := 0
	for j, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("partitioner: negative size %d for partition %d", s, j)
		}
		total += s
	}
	if total != n {
		return nil, fmt.Errorf("partitioner: sizes sum %d but %d records exist", total, n)
	}
	if len(sizes) == 0 {
		return nil, errors.New("partitioner: no partitions")
	}
	switch scheme {
	case Representative:
		return representative(members, sizes), nil
	case SimilarTogether:
		return similarTogether(members, sizes), nil
	default:
		return nil, fmt.Errorf("partitioner: unknown scheme %v", scheme)
	}
}

// representative deals each stratum's members across partitions in
// proportion to the partition sizes, so every partition's stratum mix
// approximates the global mix (a stratified sample without
// replacement, per Cochran). Residual capacity imbalances are settled
// with a final rebalancing pass.
func representative(members [][]int, sizes []int) *Assignment {
	p := len(sizes)
	parts := make([][]int, p)
	remaining := make([]int, p)
	var n int
	copy(remaining, sizes)
	for j := range sizes {
		parts[j] = make([]int, 0, sizes[j])
		n += sizes[j]
	}
	for _, stratum := range members {
		if len(stratum) == 0 {
			continue
		}
		// Quota for partition j: |stratum| × sizes[j]/n, apportioned by
		// largest remainder but capped by remaining capacity.
		quota := make([]int, p)
		type rem struct {
			j int
			f float64
		}
		rems := make([]rem, 0, p)
		assigned := 0
		for j := range sizes {
			exact := float64(len(stratum)) * float64(sizes[j]) / float64(n)
			quota[j] = int(exact)
			if quota[j] > remaining[j] {
				quota[j] = remaining[j]
			}
			assigned += quota[j]
			rems = append(rems, rem{j, exact - float64(quota[j])})
		}
		// Distribute the leftover members to partitions with spare
		// capacity, largest fractional part first.
		left := len(stratum) - assigned
		for left > 0 {
			best := -1
			for i := range rems {
				j := rems[i].j
				if quota[j] >= remaining[j] {
					continue
				}
				if best < 0 || rems[i].f > rems[best].f {
					best = i
				}
			}
			if best < 0 {
				break // no capacity anywhere (cannot happen: totals match)
			}
			quota[rems[best].j]++
			rems[best].f = -1
			left--
		}
		// Deal members in order.
		idx := 0
		for j := 0; j < p; j++ {
			for k := 0; k < quota[j]; k++ {
				parts[j] = append(parts[j], stratum[idx])
				idx++
			}
			remaining[j] -= quota[j]
		}
		// Any members left (all remainders capped): spill into spare
		// capacity in partition order.
		for idx < len(stratum) {
			for j := 0; j < p && idx < len(stratum); j++ {
				if remaining[j] > 0 {
					parts[j] = append(parts[j], stratum[idx])
					idx++
					remaining[j]--
				}
			}
		}
	}
	return &Assignment{Parts: parts}
}

// similarTogether concatenates strata in order and cuts consecutive
// chunks of the requested sizes, so each partition holds (parts of)
// as few distinct strata as possible.
func similarTogether(members [][]int, sizes []int) *Assignment {
	ordered := make([]int, 0)
	for _, stratum := range members {
		ordered = append(ordered, stratum...)
	}
	parts := make([][]int, len(sizes))
	off := 0
	for j, s := range sizes {
		parts[j] = append([]int(nil), ordered[off:off+s]...)
		off += s
	}
	return &Assignment{Parts: parts}
}

// EqualSizes splits n records into p near-equal partition sizes (the
// stratified baseline's sizing: payload-aware placement, no hardware
// awareness).
func EqualSizes(n, p int) []int {
	sizes := make([]int, p)
	base := n / p
	extra := n % p
	for j := range sizes {
		sizes[j] = base
		if j < extra {
			sizes[j]++
		}
	}
	return sizes
}

// StratumMix returns, for each partition, the fraction of its records
// drawn from each stratum — the quantity Representative placement
// equalizes across partitions. assign maps record → stratum.
func StratumMix(a *Assignment, assign []int, k int) [][]float64 {
	mix := make([][]float64, len(a.Parts))
	for j, part := range a.Parts {
		counts := make([]float64, k)
		for _, r := range part {
			counts[assign[r]]++
		}
		if len(part) > 0 {
			for s := range counts {
				counts[s] /= float64(len(part))
			}
		}
		mix[j] = counts
	}
	return mix
}

// RecordsOf serializes partition j of the corpus in placement order,
// one length-prefixed record per element (the §IV storage layout).
func RecordsOf(c pivots.Corpus, a *Assignment, j int) [][]byte {
	part := a.Parts[j]
	out := make([][]byte, len(part))
	for i, r := range part {
		out[i] = c.AppendRecord(nil, r)
	}
	return out
}
