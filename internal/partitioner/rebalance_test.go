package partitioner

import (
	"math/rand"
	"testing"
)

func TestRebalanceBasic(t *testing.T) {
	a := &Assignment{Parts: [][]int{{0, 1, 2, 3}, {4, 5}, {6}}}
	out, moves, err := Rebalance(a, []int{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(7); err != nil {
		t.Fatal(err)
	}
	for j, s := range out.Sizes() {
		if s != []int{2, 2, 3}[j] {
			t.Errorf("partition %d size %d", j, s)
		}
	}
	// Exactly the minimum moves: partition 0 sheds 2.
	if len(moves) != MinMoves([]int{4, 2, 1}, []int{2, 2, 3}) {
		t.Errorf("%d moves, want minimum %d", len(moves), 2)
	}
	// The input is untouched.
	if len(a.Parts[0]) != 4 {
		t.Error("input assignment mutated")
	}
	// Moved records come from tails: records 2 and 3.
	for _, m := range moves {
		if m.Record != 2 && m.Record != 3 {
			t.Errorf("moved %d, want tail records 2/3", m.Record)
		}
		if m.From != 0 || m.To != 2 {
			t.Errorf("move %+v, want 0→2", m)
		}
	}
}

func TestRebalanceNoop(t *testing.T) {
	a := &Assignment{Parts: [][]int{{0, 1}, {2}}}
	out, moves, err := Rebalance(a, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("no-op rebalance produced %d moves", len(moves))
	}
	if err := out.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceValidation(t *testing.T) {
	a := &Assignment{Parts: [][]int{{0, 1}, {2}}}
	if _, _, err := Rebalance(nil, []int{1}); err == nil {
		t.Error("nil assignment accepted")
	}
	if _, _, err := Rebalance(a, []int{3}); err == nil {
		t.Error("size-count mismatch accepted")
	}
	if _, _, err := Rebalance(a, []int{4, -1}); err == nil {
		t.Error("negative size accepted")
	}
	if _, _, err := Rebalance(a, []int{2, 2}); err == nil {
		t.Error("sum mismatch accepted")
	}
}

func TestRebalanceRandomizedMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		p := 2 + rng.Intn(6)
		// Random old assignment.
		n := 0
		parts := make([][]int, p)
		for j := range parts {
			c := rng.Intn(40)
			for k := 0; k < c; k++ {
				parts[j] = append(parts[j], n)
				n++
			}
		}
		if n == 0 {
			continue
		}
		a := &Assignment{Parts: parts}
		oldSizes := a.Sizes()
		// Random new sizes summing to n.
		newSizes := make([]int, p)
		left := n
		for j := 0; j < p-1; j++ {
			newSizes[j] = rng.Intn(left + 1)
			left -= newSizes[j]
		}
		newSizes[p-1] = left
		out, moves, err := Rebalance(a, newSizes)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := out.Validate(n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j, s := range out.Sizes() {
			if s != newSizes[j] {
				t.Fatalf("trial %d: partition %d size %d, want %d", trial, j, s, newSizes[j])
			}
		}
		if len(moves) != MinMoves(oldSizes, newSizes) {
			t.Fatalf("trial %d: %d moves, minimum %d", trial, len(moves), MinMoves(oldSizes, newSizes))
		}
		// Unmoved records stayed in place.
		moved := map[int]bool{}
		for _, m := range moves {
			moved[m.Record] = true
		}
		for j, part := range a.Parts {
			pos := map[int]bool{}
			for _, r := range out.Parts[j] {
				pos[r] = true
			}
			for _, r := range part {
				if !moved[r] && !pos[r] {
					t.Fatalf("trial %d: unmoved record %d left partition %d", trial, r, j)
				}
			}
		}
	}
}

// TestGroupMovesByDestinationClient checks GroupMoves partitions a
// Rebalance move list per write group without reordering within a
// group, so migration replays as one sequential pipeline per client.
func TestGroupMovesByDestinationClient(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, p, clients = 300, 8, 3
	a := &Assignment{Parts: make([][]int, p)}
	for r := 0; r < n; r++ {
		j := rng.Intn(p)
		a.Parts[j] = append(a.Parts[j], r)
	}
	newSizes := make([]int, p)
	left := n
	for j := 0; j < p-1; j++ {
		newSizes[j] = rng.Intn(left + 1)
		left -= newSizes[j]
	}
	newSizes[p-1] = left
	_, moves, err := Rebalance(a, newSizes)
	if err != nil {
		t.Fatal(err)
	}
	groupOf := func(part int) int { return part % clients }
	groups := GroupMoves(moves, groupOf)

	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group emitted")
		}
		want := groupOf(g[0].To)
		for _, mv := range g {
			if groupOf(mv.To) != want {
				t.Fatalf("group mixes write groups %d and %d", want, groupOf(mv.To))
			}
		}
		total += len(g)
	}
	if total != len(moves) {
		t.Fatalf("groups hold %d moves, want %d", total, len(moves))
	}
	// Within a group the original order is preserved: Rebalance emits
	// moves with ascending destinations, so each group's destinations
	// are ascending too — one forward pass per client pipeline.
	seen := map[int]int{} // move key → global index
	for i, mv := range moves {
		seen[mv.Record] = i
	}
	for _, g := range groups {
		last := -1
		for _, mv := range g {
			if gi := seen[mv.Record]; gi < last {
				t.Fatalf("group reordered move of record %d", mv.Record)
			} else {
				last = gi
			}
			if last >= 0 && mv.To < g[0].To {
				t.Fatalf("group destinations not ascending: %d before %d", g[0].To, mv.To)
			}
		}
	}
	if GroupMoves(nil, groupOf) != nil {
		t.Fatal("GroupMoves(nil) should be nil")
	}
}
