package partitioner

import (
	"fmt"
)

// Move describes one record's migration between partitions.
type Move struct {
	Record int
	From   int
	To     int
}

// Rebalance transforms an existing assignment into one with the new
// target sizes while moving as few records as possible. The paper
// amortizes its one-time profiling cost "over multiple runs on the
// full dataset" (§III); when conditions change between runs — node
// speeds re-profiled, green-energy forecasts shifted, a different α —
// the optimizer emits new sizes, and shipping whole partitions again
// would dwarf the gains. Only |Σ max(0, old_j − new_j)| records move.
//
// Records are taken from the tail of each overfull partition (for
// similar-together placements the tail is a strata boundary, limiting
// entropy damage) and appended to underfull partitions in order.
// The input assignment is not modified.
func Rebalance(a *Assignment, newSizes []int) (*Assignment, []Move, error) {
	if a == nil {
		return nil, nil, fmt.Errorf("partitioner: nil assignment")
	}
	if len(newSizes) != a.P() {
		return nil, nil, fmt.Errorf("partitioner: %d new sizes for %d partitions", len(newSizes), a.P())
	}
	total := 0
	for j, s := range newSizes {
		if s < 0 {
			return nil, nil, fmt.Errorf("partitioner: negative size %d for partition %d", s, j)
		}
		total += s
	}
	have := 0
	for _, part := range a.Parts {
		have += len(part)
	}
	if total != have {
		return nil, nil, fmt.Errorf("partitioner: new sizes sum %d but assignment holds %d records", total, have)
	}
	out := &Assignment{Parts: make([][]int, a.P())}
	var surplus []int // records available to move, tails first
	var moves []Move
	fromOf := make(map[int]int)
	for j, part := range a.Parts {
		if len(part) > newSizes[j] {
			keep := part[:newSizes[j]]
			out.Parts[j] = append([]int(nil), keep...)
			for _, r := range part[newSizes[j]:] {
				surplus = append(surplus, r)
				fromOf[r] = j
			}
		} else {
			out.Parts[j] = append([]int(nil), part...)
		}
	}
	si := 0
	for j := range out.Parts {
		for len(out.Parts[j]) < newSizes[j] {
			if si >= len(surplus) {
				return nil, nil, fmt.Errorf("partitioner: rebalance ran out of surplus records")
			}
			r := surplus[si]
			si++
			out.Parts[j] = append(out.Parts[j], r)
			moves = append(moves, Move{Record: r, From: fromOf[r], To: j})
		}
	}
	if si != len(surplus) {
		return nil, nil, fmt.Errorf("partitioner: %d surplus records unplaced", len(surplus)-si)
	}
	return out, moves, nil
}

// GroupMoves splits a move list into per-write-group runs, keyed by
// groupOf over each move's destination partition (pass a
// WriteGrouper's WriteGroup). Replaying a migration through a store
// whose partitions share clients (KVStore, KVBlobStore) must not
// interleave two destinations of one client in separate pipelines;
// grouping lets the migrator run groups concurrently while keeping
// each group's writes a single sequential stream. Within each group
// the input order is preserved — Rebalance emits moves sorted by
// destination (underfull partitions fill ascending), so each group's
// run stays destination-clustered. Groups are returned in first-use
// order; the concatenation of all groups is a permutation of moves.
func GroupMoves(moves []Move, groupOf func(partition int) int) [][]Move {
	var groups [][]Move
	index := make(map[int]int)
	for _, mv := range moves {
		g := groupOf(mv.To)
		gi, ok := index[g]
		if !ok {
			gi = len(groups)
			index[g] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], mv)
	}
	return groups
}

// MinMoves returns the information-theoretic minimum number of record
// moves to go from the old sizes to the new: Σ_j max(0, old_j − new_j).
func MinMoves(oldSizes, newSizes []int) int {
	n := 0
	for j := range oldSizes {
		if j < len(newSizes) && oldSizes[j] > newSizes[j] {
			n += oldSizes[j] - newSizes[j]
		}
	}
	return n
}
