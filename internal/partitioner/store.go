package partitioner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"pareto/internal/kvstore"
	"pareto/internal/parallel"
	"pareto/internal/pivots"
)

// Store is where final partitions live (paper §III-E supports disk
// partitions and Redis-list partitions; an in-memory store rounds out
// testing).
type Store interface {
	// WritePartition stores the records of partition id, replacing any
	// previous content.
	WritePartition(id int, records [][]byte) error
	// ReadPartition returns partition id's records in order.
	ReadPartition(id int) ([][]byte, error)
}

// MemoryStore keeps partitions in process memory. It is safe for
// concurrent use; only the map insertion itself is serialized, so
// parallel placement still overlaps the record copying.
type MemoryStore struct {
	mu    sync.Mutex
	parts map[int][][]byte
}

// NewMemoryStore creates an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{parts: make(map[int][][]byte)}
}

// WritePartition implements Store.
func (m *MemoryStore) WritePartition(id int, records [][]byte) error {
	cp := make([][]byte, len(records))
	for i, r := range records {
		c := make([]byte, len(r))
		copy(c, r)
		cp[i] = c
	}
	m.mu.Lock()
	m.parts[id] = cp
	m.mu.Unlock()
	return nil
}

// WriteGroup implements WriteGrouper: every partition is its own
// group — the store is fully concurrent.
func (m *MemoryStore) WriteGroup(id int) int { return id }

// ReadPartition implements Store.
func (m *MemoryStore) ReadPartition(id int) ([][]byte, error) {
	m.mu.Lock()
	p, ok := m.parts[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("partitioner: partition %d not found", id)
	}
	return p, nil
}

// DiskStore writes each partition as one file of concatenated
// length-prefixed records (records already carry their 4-byte length
// headers, so the file is self-delimiting).
type DiskStore struct {
	dir string
}

// NewDiskStore uses dir (created if missing) for partition files.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("partitioner: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

func (d *DiskStore) path(id int) string {
	return filepath.Join(d.dir, fmt.Sprintf("partition-%04d.bin", id))
}

// WritePartition implements Store.
func (d *DiskStore) WritePartition(id int, records [][]byte) error {
	f, err := os.Create(d.path(id))
	if err != nil {
		return fmt.Errorf("partitioner: %w", err)
	}
	for _, r := range records {
		if _, err := f.Write(r); err != nil {
			f.Close()
			return fmt.Errorf("partitioner: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("partitioner: %w", err)
	}
	return nil
}

// WriteGroup implements WriteGrouper: partitions live in independent
// files, so every partition is its own group.
func (d *DiskStore) WriteGroup(id int) int { return id }

// ReadPartition implements Store.
func (d *DiskStore) ReadPartition(id int) ([][]byte, error) {
	buf, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, fmt.Errorf("partitioner: %w", err)
	}
	return splitRecords(buf)
}

// SplitRecords cuts a concatenation of length-prefixed records back
// into individual records (headers retained) — the inverse of writing
// a partition as one blob. Exported for stores layered on top of the
// partition format, e.g. the replanner's epoch-addressed store.
func SplitRecords(buf []byte) ([][]byte, error) { return splitRecords(buf) }

// splitRecords cuts a concatenation of length-prefixed records back
// into individual records (headers retained).
func splitRecords(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, errors.New("partitioner: trailing bytes shorter than record header")
		}
		n := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
		if len(buf) < 4+n {
			return nil, fmt.Errorf("partitioner: record claims %d bytes, %d available", n, len(buf)-4)
		}
		out = append(out, buf[:4+n])
		buf = buf[4+n:]
	}
	return out, nil
}

// maxBatchBytes caps the record payload packed into one variadic
// RPUSH during a partition write, so one command can never blow up the
// server's read arena.
const maxBatchBytes = 1 << 20

// readWindow bounds the LRANGE windows a partition is fetched in.
const readWindow = 4096

// KVStore places partitions as lists in key-value store instances —
// the paper's Redis deployment: one store per node, the framework
// controls which partition lands on which node, and transfers are
// batched through pipelining and chunked variadic RPUSH (many records
// per command, bounded by payload bytes).
type KVStore struct {
	// clients[j] connects to the store instance hosting partition j —
	// single-store *kvstore.Client or slot-routed *kvstore.ClusterClient.
	clients []kvstore.KV
	// width is the pipeline width for bulk writes.
	width int
	// keyPrefix namespaces partition keys.
	keyPrefix string
}

// NewKVStore builds a store over per-partition clients. width is the
// pipeline width (≥1); the paper batches up to a preset width.
func NewKVStore(clients []*kvstore.Client, width int, keyPrefix string) (*KVStore, error) {
	return NewKVStoreKV(asKVs(clients), width, keyPrefix)
}

// NewKVStoreKV is NewKVStore over any KV implementations — the entry
// point for pointing partition placement at a hash-slot cluster.
func NewKVStoreKV(clients []kvstore.KV, width int, keyPrefix string) (*KVStore, error) {
	if len(clients) == 0 {
		return nil, errors.New("partitioner: no kv clients")
	}
	if width < 1 {
		return nil, fmt.Errorf("partitioner: pipeline width %d", width)
	}
	if keyPrefix == "" {
		keyPrefix = "partition"
	}
	return &KVStore{clients: clients, width: width, keyPrefix: keyPrefix}, nil
}

// asKVs lifts concrete clients into the KV interface slice.
func asKVs(clients []*kvstore.Client) []kvstore.KV {
	out := make([]kvstore.KV, len(clients))
	for i, c := range clients {
		out[i] = c
	}
	return out
}

func (k *KVStore) key(id int) string {
	return k.keyPrefix + ":" + strconv.Itoa(id)
}

func (k *KVStore) clientFor(id int) (kvstore.KV, error) {
	if id < 0 {
		return nil, fmt.Errorf("partitioner: partition id %d", id)
	}
	return k.clients[id%len(k.clients)], nil
}

// WritePartition implements Store: DEL, then pipelined chunked
// variadic RPUSHes — records ride many-per-command up to maxBatchBytes
// of payload, so a partition costs O(records/chunk) commands instead
// of O(records). List contents are element-for-element identical to a
// per-record push.
func (k *KVStore) WritePartition(id int, records [][]byte) error {
	c, err := k.clientFor(id)
	if err != nil {
		return err
	}
	if _, err := c.Del(k.key(id)); err != nil {
		return fmt.Errorf("partitioner: clearing partition %d: %w", id, err)
	}
	p, err := c.Pipe(k.width)
	if err != nil {
		return err
	}
	keyArg := []byte(k.key(id))
	args := make([][]byte, 1, 256)
	args[0] = keyArg
	payload := 0
	sendBatch := func() error {
		if len(args) == 1 {
			return nil
		}
		err := p.Send("RPUSH", args...)
		args = args[:1]
		payload = 0
		return err
	}
	for _, r := range records {
		if len(args) > 1 && payload+len(r) > maxBatchBytes {
			if err := sendBatch(); err != nil {
				return fmt.Errorf("partitioner: pushing to partition %d: %w", id, err)
			}
		}
		args = append(args, r)
		payload += len(r)
	}
	if err := sendBatch(); err != nil {
		return fmt.Errorf("partitioner: pushing to partition %d: %w", id, err)
	}
	reps, err := p.Finish()
	if err != nil {
		return fmt.Errorf("partitioner: flushing partition %d: %w", id, err)
	}
	for _, rep := range reps {
		if err := rep.Err(); err != nil {
			return fmt.Errorf("partitioner: partition %d: %w", id, err)
		}
	}
	return nil
}

// WriteGroup implements WriteGrouper: partitions sharing a client
// share a group. WritePartition runs a pipeline, and two pipelines
// interleaving on one connection would steal each other's replies —
// but writes through distinct clients are independent connections.
func (k *KVStore) WriteGroup(id int) int { return id % len(k.clients) }

// ReadPartition implements Store: bounded LRANGE windows stream the
// list without materializing one giant reply.
func (k *KVStore) ReadPartition(id int) ([][]byte, error) {
	c, err := k.clientFor(id)
	if err != nil {
		return nil, err
	}
	var els [][]byte
	err = c.LRangeChunked(k.key(id), readWindow, func(batch [][]byte) error {
		els = append(els, batch...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("partitioner: reading partition %d: %w", id, err)
	}
	return els, nil
}

// KVBlobStore materializes each partition as ONE string value: the
// records concatenated in order. Records carry their own 4-byte length
// prefixes (the §IV storage layout, exactly what DiskStore writes), so
// the blob is self-delimiting and a partition round-trips in O(1)
// commands — and a whole placement in O(stores) commands via MSET.
type KVBlobStore struct {
	clients   []kvstore.KV
	keyPrefix string
}

// NewKVBlobStore builds a blob-mode store over per-partition clients.
func NewKVBlobStore(clients []*kvstore.Client, keyPrefix string) (*KVBlobStore, error) {
	return NewKVBlobStoreKV(asKVs(clients), keyPrefix)
}

// NewKVBlobStoreKV is NewKVBlobStore over any KV implementations.
func NewKVBlobStoreKV(clients []kvstore.KV, keyPrefix string) (*KVBlobStore, error) {
	if len(clients) == 0 {
		return nil, errors.New("partitioner: no kv clients")
	}
	if keyPrefix == "" {
		keyPrefix = "partition"
	}
	return &KVBlobStore{clients: clients, keyPrefix: keyPrefix}, nil
}

func (k *KVBlobStore) key(id int) string {
	return k.keyPrefix + ":" + strconv.Itoa(id)
}

func (k *KVBlobStore) clientFor(id int) (kvstore.KV, error) {
	if id < 0 {
		return nil, fmt.Errorf("partitioner: partition id %d", id)
	}
	return k.clients[id%len(k.clients)], nil
}

func concatRecords(records [][]byte) []byte {
	total := 0
	for _, r := range records {
		total += len(r)
	}
	blob := make([]byte, 0, total)
	for _, r := range records {
		blob = append(blob, r...)
	}
	return blob
}

// WritePartition implements Store: one SET of the concatenated blob.
func (k *KVBlobStore) WritePartition(id int, records [][]byte) error {
	c, err := k.clientFor(id)
	if err != nil {
		return err
	}
	if err := c.Set(k.key(id), concatRecords(records)); err != nil {
		return fmt.Errorf("partitioner: writing partition %d: %w", id, err)
	}
	return nil
}

// ReadPartition implements Store: one GET, then the self-delimiting
// blob splits back into records.
func (k *KVBlobStore) ReadPartition(id int) ([][]byte, error) {
	c, err := k.clientFor(id)
	if err != nil {
		return nil, err
	}
	blob, err := c.Get(k.key(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNil) {
			return nil, fmt.Errorf("partitioner: partition %d not found", id)
		}
		return nil, fmt.Errorf("partitioner: reading partition %d: %w", id, err)
	}
	return splitRecords(blob)
}

// WritePartitions implements BulkStore: partitions are grouped by
// hosting client and each group lands in a single MSET, so a whole
// placement costs one command per store instance. Blob concatenation
// is chunked across workers (index-addressed), and the per-client
// MSETs fan out concurrently — they ride independent connections. On
// failure the error of the lowest-indexed failing client is returned,
// deterministically.
func (k *KVBlobStore) WritePartitions(ids []int, records [][][]byte) error {
	if len(ids) != len(records) {
		return fmt.Errorf("partitioner: %d ids, %d record lists", len(ids), len(records))
	}
	for _, id := range ids {
		if id < 0 {
			return fmt.Errorf("partitioner: partition id %d", id)
		}
	}
	blobs := make([][]byte, len(ids))
	parallel.For(len(ids), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			blobs[i] = concatRecords(records[i])
		}
	})
	// Group in input order per client index, so each client's MSET sees
	// the same key order regardless of worker count.
	keysByClient := make([][]string, len(k.clients))
	valsByClient := make([][][]byte, len(k.clients))
	for i, id := range ids {
		ci := id % len(k.clients)
		keysByClient[ci] = append(keysByClient[ci], k.key(id))
		valsByClient[ci] = append(valsByClient[ci], blobs[i])
	}
	errs := make([]error, len(k.clients))
	var wg sync.WaitGroup
	for ci := range k.clients {
		if len(keysByClient[ci]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs[ci] = k.clients[ci].MSet(keysByClient[ci], valsByClient[ci])
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("partitioner: bulk writing partitions: %w", err)
		}
	}
	return nil
}

// BulkStore is implemented by stores that can place many partitions in
// one batched round trip; Place uses it when available.
type BulkStore interface {
	Store
	// WritePartitions stores records[i] as partition ids[i], replacing
	// any previous content.
	WritePartitions(ids []int, records [][][]byte) error
}

// WriteGrouper is implemented by stores whose WritePartition calls may
// run concurrently across groups: writes to partitions with different
// WriteGroup values are independent, while writes within one group must
// stay sequential (e.g. KVStore pipelines sharing one connection).
// Stores not implementing it get strictly sequential writes from Place.
type WriteGrouper interface {
	Store
	WriteGroup(id int) int
}

// Place serializes every partition of the assignment from the corpus
// and writes it to the store — through the store's bulk path when it
// has one. Equivalent to PlaceParallel with the default worker count.
func Place(c pivots.Corpus, a *Assignment, st Store) error {
	return PlaceParallel(c, a, st, 0)
}

// PlaceParallel is Place with an explicit worker bound (≤ 0 means
// GOMAXPROCS). Record serialization always fans out — it only reads
// the corpus and writes index-addressed slots, so the serialized bytes
// are identical at any worker count. The store writes fan out per
// WriteGroup when the store declares one (bulk stores batch instead);
// otherwise they run sequentially, since an arbitrary Store's
// concurrency contract is unknown. On failure the error of the
// lowest-numbered failing group is returned, deterministically.
func PlaceParallel(c pivots.Corpus, a *Assignment, st Store, workers int) error {
	p := a.P()
	recs := make([][][]byte, p)
	parallel.For(p, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			recs[j] = RecordsOf(c, a, j)
		}
	})
	if bs, ok := st.(BulkStore); ok {
		ids := make([]int, p)
		for j := range ids {
			ids[j] = j
		}
		if err := bs.WritePartitions(ids, recs); err != nil {
			return fmt.Errorf("partitioner: placing partitions: %w", err)
		}
		return nil
	}
	gr, ok := st.(WriteGrouper)
	if !ok {
		for j := 0; j < p; j++ {
			if err := st.WritePartition(j, recs[j]); err != nil {
				return fmt.Errorf("partitioner: placing partition %d: %w", j, err)
			}
		}
		return nil
	}
	// Bucket partitions by write group, preserving ascending id order
	// within each group; groups then fan out.
	groupOf := make(map[int]int)
	var order []int
	buckets := make(map[int][]int)
	for j := 0; j < p; j++ {
		g := gr.WriteGroup(j)
		if _, seen := groupOf[g]; !seen {
			groupOf[g] = len(order)
			order = append(order, g)
		}
		buckets[g] = append(buckets[g], j)
	}
	_, err := parallel.ForErr(len(order), workers, func(lo, hi int) error {
		for gi := lo; gi < hi; gi++ {
			for _, j := range buckets[order[gi]] {
				if err := st.WritePartition(j, recs[j]); err != nil {
					return fmt.Errorf("partitioner: placing partition %d: %w", j, err)
				}
			}
		}
		return nil
	})
	return err
}
