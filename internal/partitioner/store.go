package partitioner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"pareto/internal/kvstore"
	"pareto/internal/pivots"
)

// Store is where final partitions live (paper §III-E supports disk
// partitions and Redis-list partitions; an in-memory store rounds out
// testing).
type Store interface {
	// WritePartition stores the records of partition id, replacing any
	// previous content.
	WritePartition(id int, records [][]byte) error
	// ReadPartition returns partition id's records in order.
	ReadPartition(id int) ([][]byte, error)
}

// MemoryStore keeps partitions in process memory.
type MemoryStore struct {
	parts map[int][][]byte
}

// NewMemoryStore creates an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{parts: make(map[int][][]byte)}
}

// WritePartition implements Store.
func (m *MemoryStore) WritePartition(id int, records [][]byte) error {
	cp := make([][]byte, len(records))
	for i, r := range records {
		c := make([]byte, len(r))
		copy(c, r)
		cp[i] = c
	}
	m.parts[id] = cp
	return nil
}

// ReadPartition implements Store.
func (m *MemoryStore) ReadPartition(id int) ([][]byte, error) {
	p, ok := m.parts[id]
	if !ok {
		return nil, fmt.Errorf("partitioner: partition %d not found", id)
	}
	return p, nil
}

// DiskStore writes each partition as one file of concatenated
// length-prefixed records (records already carry their 4-byte length
// headers, so the file is self-delimiting).
type DiskStore struct {
	dir string
}

// NewDiskStore uses dir (created if missing) for partition files.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("partitioner: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

func (d *DiskStore) path(id int) string {
	return filepath.Join(d.dir, fmt.Sprintf("partition-%04d.bin", id))
}

// WritePartition implements Store.
func (d *DiskStore) WritePartition(id int, records [][]byte) error {
	f, err := os.Create(d.path(id))
	if err != nil {
		return fmt.Errorf("partitioner: %w", err)
	}
	for _, r := range records {
		if _, err := f.Write(r); err != nil {
			f.Close()
			return fmt.Errorf("partitioner: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("partitioner: %w", err)
	}
	return nil
}

// ReadPartition implements Store.
func (d *DiskStore) ReadPartition(id int) ([][]byte, error) {
	buf, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, fmt.Errorf("partitioner: %w", err)
	}
	return splitRecords(buf)
}

// splitRecords cuts a concatenation of length-prefixed records back
// into individual records (headers retained).
func splitRecords(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, errors.New("partitioner: trailing bytes shorter than record header")
		}
		n := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
		if len(buf) < 4+n {
			return nil, fmt.Errorf("partitioner: record claims %d bytes, %d available", n, len(buf)-4)
		}
		out = append(out, buf[:4+n])
		buf = buf[4+n:]
	}
	return out, nil
}

// maxBatchBytes caps the record payload packed into one variadic
// RPUSH during a partition write, so one command can never blow up the
// server's read arena.
const maxBatchBytes = 1 << 20

// readWindow bounds the LRANGE windows a partition is fetched in.
const readWindow = 4096

// KVStore places partitions as lists in key-value store instances —
// the paper's Redis deployment: one store per node, the framework
// controls which partition lands on which node, and transfers are
// batched through pipelining and chunked variadic RPUSH (many records
// per command, bounded by payload bytes).
type KVStore struct {
	// clients[j] connects to the store instance hosting partition j.
	clients []*kvstore.Client
	// width is the pipeline width for bulk writes.
	width int
	// keyPrefix namespaces partition keys.
	keyPrefix string
}

// NewKVStore builds a store over per-partition clients. width is the
// pipeline width (≥1); the paper batches up to a preset width.
func NewKVStore(clients []*kvstore.Client, width int, keyPrefix string) (*KVStore, error) {
	if len(clients) == 0 {
		return nil, errors.New("partitioner: no kv clients")
	}
	if width < 1 {
		return nil, fmt.Errorf("partitioner: pipeline width %d", width)
	}
	if keyPrefix == "" {
		keyPrefix = "partition"
	}
	return &KVStore{clients: clients, width: width, keyPrefix: keyPrefix}, nil
}

func (k *KVStore) key(id int) string {
	return k.keyPrefix + ":" + strconv.Itoa(id)
}

func (k *KVStore) clientFor(id int) (*kvstore.Client, error) {
	if id < 0 {
		return nil, fmt.Errorf("partitioner: partition id %d", id)
	}
	return k.clients[id%len(k.clients)], nil
}

// WritePartition implements Store: DEL, then pipelined chunked
// variadic RPUSHes — records ride many-per-command up to maxBatchBytes
// of payload, so a partition costs O(records/chunk) commands instead
// of O(records). List contents are element-for-element identical to a
// per-record push.
func (k *KVStore) WritePartition(id int, records [][]byte) error {
	c, err := k.clientFor(id)
	if err != nil {
		return err
	}
	if _, err := c.Del(k.key(id)); err != nil {
		return fmt.Errorf("partitioner: clearing partition %d: %w", id, err)
	}
	p, err := c.NewPipeline(k.width)
	if err != nil {
		return err
	}
	keyArg := []byte(k.key(id))
	args := make([][]byte, 1, 256)
	args[0] = keyArg
	payload := 0
	sendBatch := func() error {
		if len(args) == 1 {
			return nil
		}
		err := p.Send("RPUSH", args...)
		args = args[:1]
		payload = 0
		return err
	}
	for _, r := range records {
		if len(args) > 1 && payload+len(r) > maxBatchBytes {
			if err := sendBatch(); err != nil {
				return fmt.Errorf("partitioner: pushing to partition %d: %w", id, err)
			}
		}
		args = append(args, r)
		payload += len(r)
	}
	if err := sendBatch(); err != nil {
		return fmt.Errorf("partitioner: pushing to partition %d: %w", id, err)
	}
	reps, err := p.Finish()
	if err != nil {
		return fmt.Errorf("partitioner: flushing partition %d: %w", id, err)
	}
	for _, rep := range reps {
		if err := rep.Err(); err != nil {
			return fmt.Errorf("partitioner: partition %d: %w", id, err)
		}
	}
	return nil
}

// ReadPartition implements Store: bounded LRANGE windows stream the
// list without materializing one giant reply.
func (k *KVStore) ReadPartition(id int) ([][]byte, error) {
	c, err := k.clientFor(id)
	if err != nil {
		return nil, err
	}
	var els [][]byte
	err = c.LRangeChunked(k.key(id), readWindow, func(batch [][]byte) error {
		els = append(els, batch...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("partitioner: reading partition %d: %w", id, err)
	}
	return els, nil
}

// KVBlobStore materializes each partition as ONE string value: the
// records concatenated in order. Records carry their own 4-byte length
// prefixes (the §IV storage layout, exactly what DiskStore writes), so
// the blob is self-delimiting and a partition round-trips in O(1)
// commands — and a whole placement in O(stores) commands via MSET.
type KVBlobStore struct {
	clients   []*kvstore.Client
	keyPrefix string
}

// NewKVBlobStore builds a blob-mode store over per-partition clients.
func NewKVBlobStore(clients []*kvstore.Client, keyPrefix string) (*KVBlobStore, error) {
	if len(clients) == 0 {
		return nil, errors.New("partitioner: no kv clients")
	}
	if keyPrefix == "" {
		keyPrefix = "partition"
	}
	return &KVBlobStore{clients: clients, keyPrefix: keyPrefix}, nil
}

func (k *KVBlobStore) key(id int) string {
	return k.keyPrefix + ":" + strconv.Itoa(id)
}

func (k *KVBlobStore) clientFor(id int) (*kvstore.Client, error) {
	if id < 0 {
		return nil, fmt.Errorf("partitioner: partition id %d", id)
	}
	return k.clients[id%len(k.clients)], nil
}

func concatRecords(records [][]byte) []byte {
	total := 0
	for _, r := range records {
		total += len(r)
	}
	blob := make([]byte, 0, total)
	for _, r := range records {
		blob = append(blob, r...)
	}
	return blob
}

// WritePartition implements Store: one SET of the concatenated blob.
func (k *KVBlobStore) WritePartition(id int, records [][]byte) error {
	c, err := k.clientFor(id)
	if err != nil {
		return err
	}
	if err := c.Set(k.key(id), concatRecords(records)); err != nil {
		return fmt.Errorf("partitioner: writing partition %d: %w", id, err)
	}
	return nil
}

// ReadPartition implements Store: one GET, then the self-delimiting
// blob splits back into records.
func (k *KVBlobStore) ReadPartition(id int) ([][]byte, error) {
	c, err := k.clientFor(id)
	if err != nil {
		return nil, err
	}
	blob, err := c.Get(k.key(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNil) {
			return nil, fmt.Errorf("partitioner: partition %d not found", id)
		}
		return nil, fmt.Errorf("partitioner: reading partition %d: %w", id, err)
	}
	return splitRecords(blob)
}

// WritePartitions implements BulkStore: partitions are grouped by
// hosting client and each group lands in a single MSET, so a whole
// placement costs one command per store instance.
func (k *KVBlobStore) WritePartitions(ids []int, records [][][]byte) error {
	if len(ids) != len(records) {
		return fmt.Errorf("partitioner: %d ids, %d record lists", len(ids), len(records))
	}
	keysByClient := make(map[*kvstore.Client][]string)
	valsByClient := make(map[*kvstore.Client][][]byte)
	for i, id := range ids {
		c, err := k.clientFor(id)
		if err != nil {
			return err
		}
		keysByClient[c] = append(keysByClient[c], k.key(id))
		valsByClient[c] = append(valsByClient[c], concatRecords(records[i]))
	}
	for c, keys := range keysByClient {
		if err := c.MSet(keys, valsByClient[c]); err != nil {
			return fmt.Errorf("partitioner: bulk writing partitions: %w", err)
		}
	}
	return nil
}

// BulkStore is implemented by stores that can place many partitions in
// one batched round trip; Place uses it when available.
type BulkStore interface {
	Store
	// WritePartitions stores records[i] as partition ids[i], replacing
	// any previous content.
	WritePartitions(ids []int, records [][][]byte) error
}

// Place serializes every partition of the assignment from the corpus
// and writes it to the store — through the store's bulk path when it
// has one.
func Place(c pivots.Corpus, a *Assignment, st Store) error {
	if bs, ok := st.(BulkStore); ok {
		ids := make([]int, a.P())
		recs := make([][][]byte, a.P())
		for j := range a.Parts {
			ids[j] = j
			recs[j] = RecordsOf(c, a, j)
		}
		if err := bs.WritePartitions(ids, recs); err != nil {
			return fmt.Errorf("partitioner: placing partitions: %w", err)
		}
		return nil
	}
	for j := range a.Parts {
		if err := st.WritePartition(j, RecordsOf(c, a, j)); err != nil {
			return fmt.Errorf("partitioner: placing partition %d: %w", j, err)
		}
	}
	return nil
}
