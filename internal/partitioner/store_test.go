package partitioner

import (
	"bytes"
	"testing"
	"time"

	"pareto/internal/kvstore"
	"pareto/internal/pivots"
)

func testCorpus(t *testing.T) *pivots.TextCorpus {
	t.Helper()
	docs := make([]pivots.Doc, 20)
	for i := range docs {
		docs[i] = pivots.Doc{Terms: []uint32{uint32(i), uint32(i + 20), uint32(i + 40)}}
	}
	c, err := pivots.NewTextCorpus(docs, 60)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testAssignment() *Assignment {
	return &Assignment{Parts: [][]int{
		{0, 2, 4, 6, 8, 10, 12, 14, 16, 18},
		{1, 3, 5, 7, 9, 11, 13, 15, 17, 19},
	}}
}

func roundtripStore(t *testing.T, st Store) {
	t.Helper()
	corpus := testCorpus(t)
	a := testAssignment()
	if err := Place(corpus, a, st); err != nil {
		t.Fatal(err)
	}
	for j := range a.Parts {
		records, err := st.ReadPartition(j)
		if err != nil {
			t.Fatalf("read partition %d: %v", j, err)
		}
		if len(records) != len(a.Parts[j]) {
			t.Fatalf("partition %d has %d records, want %d", j, len(records), len(a.Parts[j]))
		}
		// Decode and verify content matches the assigned docs.
		for i, rec := range records {
			doc, rest, err := pivots.DecodeTextRecord(rec)
			if err != nil {
				t.Fatalf("partition %d record %d: %v", j, i, err)
			}
			if len(rest) != 0 {
				t.Fatalf("partition %d record %d has %d trailing bytes", j, i, len(rest))
			}
			want := corpus.Docs[a.Parts[j][i]]
			if len(doc.Terms) != len(want.Terms) || doc.Terms[0] != want.Terms[0] {
				t.Fatalf("partition %d record %d content mismatch", j, i)
			}
		}
	}
}

func TestMemoryStoreRoundtrip(t *testing.T) {
	roundtripStore(t, NewMemoryStore())
}

func TestMemoryStoreMissingPartition(t *testing.T) {
	if _, err := NewMemoryStore().ReadPartition(3); err == nil {
		t.Error("missing partition read succeeded")
	}
}

func TestMemoryStoreIsolation(t *testing.T) {
	m := NewMemoryStore()
	rec := []byte{1, 0, 0, 0, 9}
	if err := m.WritePartition(0, [][]byte{rec}); err != nil {
		t.Fatal(err)
	}
	rec[4] = 7
	got, err := m.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][4] != 9 {
		t.Error("store aliases caller buffer")
	}
}

func TestDiskStoreRoundtrip(t *testing.T) {
	st, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	roundtripStore(t, st)
}

func TestDiskStoreRewrite(t *testing.T) {
	st, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WritePartition(0, [][]byte{{2, 0, 0, 0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := st.WritePartition(0, [][]byte{{1, 0, 0, 0, 7}}); err != nil {
		t.Fatal(err)
	}
	records, err := st.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || !bytes.Equal(records[0], []byte{1, 0, 0, 0, 7}) {
		t.Errorf("rewrite left %v", records)
	}
}

func TestDiskStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WritePartition(0, [][]byte{{200, 0, 0, 0}}); err != nil {
		t.Fatal(err) // header claims 200 bytes, none follow
	}
	if _, err := st.ReadPartition(0); err == nil {
		t.Error("corrupt partition read succeeded")
	}
	if _, err := st.ReadPartition(99); err == nil {
		t.Error("missing file read succeeded")
	}
}

// testClients spins up n store instances and returns a client per
// instance — the paper's one-store-per-node deployment in miniature.
func testClients(t *testing.T, n int) []*kvstore.Client {
	t.Helper()
	clients := make([]*kvstore.Client, n)
	for i := range clients {
		srv := kvstore.NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := kvstore.Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return clients
}

func TestKVStoreRoundtrip(t *testing.T) {
	st, err := NewKVStore(testClients(t, 2), 32, "test")
	if err != nil {
		t.Fatal(err)
	}
	roundtripStore(t, st)
	// Rewriting must replace, not append.
	if err := st.WritePartition(0, [][]byte{{1, 0, 0, 0, 5}}); err != nil {
		t.Fatal(err)
	}
	records, err := st.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Errorf("rewrite left %d records", len(records))
	}
}

func TestNewKVStoreValidation(t *testing.T) {
	if _, err := NewKVStore(nil, 4, "x"); err == nil {
		t.Error("no clients accepted")
	}
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := kvstore.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := NewKVStore([]*kvstore.Client{c}, 0, "x"); err == nil {
		t.Error("zero width accepted")
	}
	st, err := NewKVStore([]*kvstore.Client{c}, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.key(0) != "partition:0" {
		t.Errorf("default prefix key %q", st.key(0))
	}
	if _, err := st.clientFor(-1); err == nil {
		t.Error("negative partition accepted")
	}
}

func TestKVBlobStoreRoundtrip(t *testing.T) {
	// Place on a BulkStore takes the MSET fast path; the result must be
	// indistinguishable from per-partition writes.
	st, err := NewKVBlobStore(testClients(t, 2), "blob")
	if err != nil {
		t.Fatal(err)
	}
	roundtripStore(t, st)
	// Rewriting must replace, not append.
	if err := st.WritePartition(0, [][]byte{{1, 0, 0, 0, 5}}); err != nil {
		t.Fatal(err)
	}
	records, err := st.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || !bytes.Equal(records[0], []byte{1, 0, 0, 0, 5}) {
		t.Errorf("rewrite left %v", records)
	}
}

func TestKVBlobStoreMatchesMemoryStore(t *testing.T) {
	// Blob placement and in-memory placement of the same assignment
	// must yield record-for-record identical partitions.
	corpus := testCorpus(t)
	a := testAssignment()
	mem := NewMemoryStore()
	if err := Place(corpus, a, mem); err != nil {
		t.Fatal(err)
	}
	blob, err := NewKVBlobStore(testClients(t, 2), "blob")
	if err != nil {
		t.Fatal(err)
	}
	if err := Place(corpus, a, blob); err != nil {
		t.Fatal(err)
	}
	for j := range a.Parts {
		want, err := mem.ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		got, err := blob.ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("partition %d: %d records, want %d", j, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("partition %d record %d differs from memory store", j, i)
			}
		}
	}
}

func TestKVBlobStoreErrors(t *testing.T) {
	if _, err := NewKVBlobStore(nil, "x"); err == nil {
		t.Error("no clients accepted")
	}
	st, err := NewKVBlobStore(testClients(t, 1), "")
	if err != nil {
		t.Fatal(err)
	}
	if st.key(0) != "partition:0" {
		t.Errorf("default prefix key %q", st.key(0))
	}
	if _, err := st.ReadPartition(7); err == nil {
		t.Error("missing partition read succeeded")
	}
	if _, err := st.clientFor(-1); err == nil {
		t.Error("negative partition accepted")
	}
	if err := st.WritePartitions([]int{0}, nil); err == nil {
		t.Error("mismatched ids/records accepted")
	}
}

// countingBulkStore wraps MemoryStore to prove Place prefers the bulk
// path when the store offers one.
type countingBulkStore struct {
	*MemoryStore
	bulkCalls   int
	singleCalls int
}

func (c *countingBulkStore) WritePartition(id int, records [][]byte) error {
	c.singleCalls++
	return c.MemoryStore.WritePartition(id, records)
}

func (c *countingBulkStore) WritePartitions(ids []int, records [][][]byte) error {
	c.bulkCalls++
	for i, id := range ids {
		if err := c.MemoryStore.WritePartition(id, records[i]); err != nil {
			return err
		}
	}
	return nil
}

func TestPlaceUsesBulkPath(t *testing.T) {
	st := &countingBulkStore{MemoryStore: NewMemoryStore()}
	if err := Place(testCorpus(t), testAssignment(), st); err != nil {
		t.Fatal(err)
	}
	if st.bulkCalls != 1 || st.singleCalls != 0 {
		t.Errorf("bulk=%d single=%d, want 1/0", st.bulkCalls, st.singleCalls)
	}
	// Content placed via the bulk path must be intact.
	a := testAssignment()
	for j := range a.Parts {
		recs, err := st.ReadPartition(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(a.Parts[j]) {
			t.Errorf("partition %d has %d records, want %d", j, len(recs), len(a.Parts[j]))
		}
	}
}

func TestSplitRecords(t *testing.T) {
	// Two records back to back.
	buf := []byte{2, 0, 0, 0, 10, 11, 1, 0, 0, 0, 99}
	recs, err := splitRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[1], []byte{1, 0, 0, 0, 99}) {
		t.Errorf("split = %v", recs)
	}
	if _, err := splitRecords([]byte{1, 2}); err == nil {
		t.Error("short header accepted")
	}
	if recs, err := splitRecords(nil); err != nil || len(recs) != 0 {
		t.Error("empty buffer must split to nothing")
	}
}
