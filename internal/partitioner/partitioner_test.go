package partitioner

import (
	"math"
	"math/rand"
	"testing"
)

// plantedStrata builds k strata whose sizes follow the given counts;
// record indices are interleaved so placement cannot rely on index
// order accidentally.
func plantedStrata(counts []int) ([][]int, []int, int) {
	n := 0
	for _, c := range counts {
		n += c
	}
	members := make([][]int, len(counts))
	assign := make([]int, n)
	idx := 0
	// Round-robin interleave across strata.
	remaining := append([]int(nil), counts...)
	for idx < n {
		for s := range remaining {
			if remaining[s] > 0 {
				members[s] = append(members[s], idx)
				assign[idx] = s
				remaining[s]--
				idx++
			}
		}
	}
	return members, assign, n
}

func TestPartitionValidation(t *testing.T) {
	members, _, _ := plantedStrata([]int{10, 10})
	if _, err := Partition(Representative, members, []int{5, 5}); err == nil {
		t.Error("size sum mismatch accepted")
	}
	if _, err := Partition(Representative, members, []int{25, -5}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Partition(Representative, members, nil); err == nil {
		t.Error("no partitions accepted")
	}
	if _, err := Partition(Scheme(42), members, []int{20}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRepresentativeExactSizesAndCoverage(t *testing.T) {
	members, _, n := plantedStrata([]int{100, 300, 50, 150})
	sizes := []int{200, 150, 150, 100}
	a, err := Partition(Representative, members, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(n); err != nil {
		t.Fatal(err)
	}
	got := a.Sizes()
	for j := range sizes {
		if got[j] != sizes[j] {
			t.Errorf("partition %d size %d, want %d", j, got[j], sizes[j])
		}
	}
}

func TestRepresentativeMatchesGlobalMix(t *testing.T) {
	counts := []int{400, 200, 100, 300}
	members, assign, n := plantedStrata(counts)
	sizes := []int{400, 300, 200, 100}
	a, err := Partition(Representative, members, sizes)
	if err != nil {
		t.Fatal(err)
	}
	global := make([]float64, len(counts))
	for s, c := range counts {
		global[s] = float64(c) / float64(n)
	}
	mix := StratumMix(a, assign, len(counts))
	for j, m := range mix {
		for s := range m {
			if math.Abs(m[s]-global[s]) > 0.05 {
				t.Errorf("partition %d stratum %d fraction %.3f, global %.3f",
					j, s, m[s], global[s])
			}
		}
	}
}

func TestRepresentativeHandlesManySmallStrata(t *testing.T) {
	// More strata than partition capacity quotas: spill path.
	counts := make([]int, 50)
	for i := range counts {
		counts[i] = 3
	}
	members, _, n := plantedStrata(counts)
	sizes := []int{40, 40, 40, 30}
	a, err := Partition(Representative, members, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(n); err != nil {
		t.Fatal(err)
	}
	for j, s := range a.Sizes() {
		if s != sizes[j] {
			t.Errorf("partition %d size %d, want %d", j, s, sizes[j])
		}
	}
}

func TestRepresentativeZeroSizePartition(t *testing.T) {
	// The optimizer may assign zero records to a node (α < 1 regimes).
	members, _, n := plantedStrata([]int{30, 30})
	sizes := []int{60, 0}
	a, err := Partition(Representative, members, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(n); err != nil {
		t.Fatal(err)
	}
	if len(a.Parts[1]) != 0 {
		t.Errorf("zero partition got %d records", len(a.Parts[1]))
	}
}

func TestSimilarTogetherGroupsStrata(t *testing.T) {
	counts := []int{100, 100, 100, 100}
	members, assign, n := plantedStrata(counts)
	sizes := []int{100, 100, 100, 100}
	a, err := Partition(SimilarTogether, members, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(n); err != nil {
		t.Fatal(err)
	}
	// With aligned sizes, each partition must be pure: exactly one stratum.
	mix := StratumMix(a, assign, len(counts))
	for j, m := range mix {
		pure := false
		for _, f := range m {
			if f == 1 {
				pure = true
			}
		}
		if !pure {
			t.Errorf("partition %d mix %v, want pure", j, m)
		}
	}
}

func TestSimilarTogetherUnevenSizes(t *testing.T) {
	counts := []int{120, 80, 40}
	members, assign, n := plantedStrata(counts)
	sizes := []int{90, 90, 60}
	a, err := Partition(SimilarTogether, members, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(n); err != nil {
		t.Fatal(err)
	}
	// Entropy of similar-together partitions must not exceed that of
	// representative partitions (the whole point of the scheme).
	rep, err := Partition(Representative, members, sizes)
	if err != nil {
		t.Fatal(err)
	}
	hSim := meanEntropy(StratumMix(a, assign, len(counts)))
	hRep := meanEntropy(StratumMix(rep, assign, len(counts)))
	if hSim > hRep {
		t.Errorf("similar-together entropy %.3f exceeds representative %.3f", hSim, hRep)
	}
}

func meanEntropy(mix [][]float64) float64 {
	var total float64
	for _, m := range mix {
		var h float64
		for _, f := range m {
			if f > 0 {
				h -= f * math.Log(f)
			}
		}
		total += h
	}
	return total / float64(len(mix))
}

func TestEqualSizes(t *testing.T) {
	cases := []struct {
		n, p int
		want []int
	}{
		{10, 2, []int{5, 5}},
		{10, 3, []int{4, 3, 3}},
		{2, 4, []int{1, 1, 0, 0}},
		{0, 2, []int{0, 0}},
	}
	for _, c := range cases {
		got := EqualSizes(c.n, c.p)
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("EqualSizes(%d,%d) = %v, want %v", c.n, c.p, got, c.want)
				break
			}
		}
	}
}

func TestAssignmentValidateCatchesCorruption(t *testing.T) {
	a := &Assignment{Parts: [][]int{{0, 1}, {1}}}
	if err := a.Validate(3); err == nil {
		t.Error("duplicate record accepted")
	}
	b := &Assignment{Parts: [][]int{{0, 5}}}
	if err := b.Validate(3); err == nil {
		t.Error("out-of-range record accepted")
	}
	c := &Assignment{Parts: [][]int{{0}}}
	if err := c.Validate(3); err == nil {
		t.Error("missing records accepted")
	}
}

func TestPartitionRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(20)
		counts := make([]int, k)
		n := 0
		for i := range counts {
			counts[i] = rng.Intn(100)
			n += counts[i]
		}
		if n == 0 {
			counts[0] = 1
			n = 1
		}
		members, _, _ := plantedStrata(counts)
		p := 1 + rng.Intn(8)
		// Random sizes summing to n.
		sizes := make([]int, p)
		left := n
		for j := 0; j < p-1; j++ {
			sizes[j] = rng.Intn(left + 1)
			left -= sizes[j]
		}
		sizes[p-1] = left
		for _, scheme := range []Scheme{Representative, SimilarTogether} {
			a, err := Partition(scheme, members, sizes)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, scheme, err)
			}
			if err := a.Validate(n); err != nil {
				t.Fatalf("trial %d %v: %v", trial, scheme, err)
			}
			for j, s := range a.Sizes() {
				if s != sizes[j] {
					t.Fatalf("trial %d %v: partition %d size %d, want %d",
						trial, scheme, j, s, sizes[j])
				}
			}
		}
	}
}

func TestSchemeString(t *testing.T) {
	if Representative.String() != "representative" || SimilarTogether.String() != "similar-together" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme must print")
	}
}
