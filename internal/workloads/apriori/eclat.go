package apriori

import (
	"fmt"
	"sort"
)

// Eclat is the vertical-layout frequent itemset miner (Zaki et al.,
// KDD 1997 — reference [21] of the paper): instead of scanning
// transactions against candidates level by level, it intersects
// per-item transaction-ID lists depth-first. It finds exactly the same
// frequent itemsets as Apriori (tested against it), usually with a
// different cost profile: cheap on long patterns, heavier on dense
// 1-item lists. The experiment harness uses it as an alternative
// mining backend to show the framework is algorithm-agnostic.

// EclatResult mirrors Result for the vertical miner.
type EclatResult struct {
	// Frequent holds the frequent itemsets, sorted by (length, items).
	Frequent []Pattern
	// Cost counts tidlist intersection steps (deterministic).
	Cost float64
}

// MineEclat runs depth-first tidlist-intersection mining.
func MineEclat(txns []Transaction, cfg Config) (*EclatResult, error) {
	if cfg.MinSupport < 1 {
		return nil, fmt.Errorf("apriori: eclat min support %d, need ≥ 1", cfg.MinSupport)
	}
	res := &EclatResult{}
	// Build vertical layout: item → sorted tid list.
	tidlists := make(map[uint32][]int32)
	for tid, t := range txns {
		for _, it := range t {
			tidlists[it] = append(tidlists[it], int32(tid))
		}
		res.Cost += float64(len(t))
	}
	type entry struct {
		item uint32
		tids []int32
	}
	var frontier []entry
	for it, tids := range tidlists {
		if len(tids) >= cfg.MinSupport {
			frontier = append(frontier, entry{it, tids})
			res.Frequent = append(res.Frequent, Pattern{Items: []uint32{it}, Support: len(tids)})
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].item < frontier[j].item })

	// Depth-first: extend prefix P (with tidlist) by each frontier
	// item greater than P's last item.
	var dfs func(prefix []uint32, tids []int32, ext []entry, depth int)
	dfs = func(prefix []uint32, tids []int32, ext []entry, depth int) {
		if cfg.MaxLen > 0 && depth >= cfg.MaxLen {
			return
		}
		var next []entry
		for _, e := range ext {
			inter := intersectTids(tids, e.tids)
			res.Cost += float64(len(tids) + len(e.tids))
			if len(inter) < cfg.MinSupport {
				continue
			}
			items := make([]uint32, len(prefix)+1)
			copy(items, prefix)
			items[len(prefix)] = e.item
			res.Frequent = append(res.Frequent, Pattern{Items: items, Support: len(inter)})
			next = append(next, entry{e.item, inter})
		}
		for i, e := range next {
			items := make([]uint32, len(prefix)+1)
			copy(items, prefix)
			items[len(prefix)] = e.item
			dfs(items, e.tids, next[i+1:], depth+1)
		}
	}
	for i, e := range frontier {
		dfs([]uint32{e.item}, e.tids, frontier[i+1:], 1)
	}
	sortPatterns(res.Frequent)
	return res, nil
}

// intersectTids intersects two ascending tid lists.
func intersectTids(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
