package apriori_test

import (
	"fmt"

	"pareto/internal/workloads/apriori"
)

// Mine the textbook market-basket dataset at absolute support 2.
func ExampleMine() {
	txns := []apriori.Transaction{
		{1, 3, 4},
		{2, 3, 5},
		{1, 2, 3, 5},
		{2, 5},
	}
	res, err := apriori.Mine(txns, apriori.Config{MinSupport: 2})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Frequent {
		if len(p.Items) == 3 {
			fmt.Printf("itemset %v appears in %d transactions\n", p.Items, p.Support)
		}
	}
	// Output:
	// itemset [2 3 5] appears in 2 transactions
}

// The Savasere partitioned algorithm: local mining plus a global
// pruning pass gives exactly the centralized answer.
func ExampleMineDistributed() {
	txns := []apriori.Transaction{
		{1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5},
		{1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5},
	}
	parts := [][]apriori.Transaction{txns[:4], txns[4:]}
	res, err := apriori.MineDistributed(parts, 0.5, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d frequent itemsets, %d candidates pruned\n",
		len(res.Frequent), res.FalsePositives)
	// Output:
	// 9 frequent itemsets, 0 candidates pruned
}
