package apriori

import (
	"math/rand"
	"testing"
)

func TestEclatValidation(t *testing.T) {
	if _, err := MineEclat(nil, Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
}

func TestEclatClassicExample(t *testing.T) {
	res, err := MineEclat(classicDataset(), Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p := findPattern(res.Frequent, 2, 3, 5); p == nil || p.Support != 2 {
		t.Errorf("pattern {2,3,5} = %+v", p)
	}
	if len(res.Frequent) != 9 {
		t.Errorf("%d frequent itemsets, want 9", len(res.Frequent))
	}
}

func TestEclatMatchesApriori(t *testing.T) {
	// The two miners implement the same problem; their outputs must be
	// identical on random data, including supports and MaxLen capping.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		nTx := 20 + rng.Intn(60)
		txns := make([]Transaction, nTx)
		for i := range txns {
			n := 1 + rng.Intn(8)
			seen := map[uint32]bool{}
			var items []uint32
			for len(items) < n {
				v := uint32(rng.Intn(15))
				if !seen[v] {
					seen[v] = true
					items = append(items, v)
				}
			}
			txns[i] = tx(items...)
		}
		cfg := Config{MinSupport: 2 + rng.Intn(4), MaxLen: rng.Intn(4)} // 0..3
		ap, err := Mine(txns, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ec, err := MineEclat(txns, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ap.Frequent) != len(ec.Frequent) {
			t.Fatalf("trial %d (cfg %+v): apriori %d vs eclat %d itemsets",
				trial, cfg, len(ap.Frequent), len(ec.Frequent))
		}
		for i := range ap.Frequent {
			a, e := ap.Frequent[i], ec.Frequent[i]
			if Key(a.Items) != Key(e.Items) || a.Support != e.Support {
				t.Fatalf("trial %d: itemset %d differs: %v:%d vs %v:%d",
					trial, i, a.Items, a.Support, e.Items, e.Support)
			}
		}
	}
}

func TestEclatEmptyAndSingleton(t *testing.T) {
	res, err := MineEclat(nil, Config{MinSupport: 1})
	if err != nil || len(res.Frequent) != 0 {
		t.Errorf("empty mine: %v, %v", res, err)
	}
	res, err = MineEclat([]Transaction{tx(5)}, Config{MinSupport: 1})
	if err != nil || len(res.Frequent) != 1 || res.Frequent[0].Support != 1 {
		t.Errorf("singleton mine: %+v, %v", res, err)
	}
}

func TestIntersectTids(t *testing.T) {
	cases := []struct {
		a, b, want []int32
	}{
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, []int32{2, 3}},
		{[]int32{1}, []int32{2}, []int32{}},
		{nil, []int32{1}, []int32{}},
		{[]int32{5, 9}, []int32{5, 9}, []int32{5, 9}},
	}
	for i, c := range cases {
		got := intersectTids(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("case %d: %v", i, got)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: %v, want %v", i, got, c.want)
			}
		}
	}
}

func BenchmarkEclatVsApriori(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	txns := make([]Transaction, 1000)
	for i := range txns {
		var items []uint32
		for j := 0; j < 10; j++ {
			items = append(items, uint32(rng.Intn(50)))
		}
		txns[i] = tx(dedup(items)...)
	}
	b.Run("apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Mine(txns, Config{MinSupport: 50}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eclat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MineEclat(txns, Config{MinSupport: 50}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
