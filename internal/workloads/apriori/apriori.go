// Package apriori implements frequent itemset mining: the classic
// levelwise Apriori algorithm (Agrawal & Srikant, VLDB 1994) and the
// partition-based distributed scheme of Savasere, Omiecinski & Navathe
// (VLDB 1995) that the paper runs on text data (§V-C1).
//
// The distributed scheme mines each partition locally at the scaled
// support threshold, unions the locally frequent itemsets into a
// global candidate set, and prunes false positives with one global
// counting pass. Its cost — and the experiments' sensitivity to
// partition skew — is driven by the number of candidate patterns: a
// skewed partition manufactures locally-frequent-but-globally-rare
// itemsets that every partition must then count.
//
// All mining work is metered into an abstract, deterministic cost
// (units of candidate-against-transaction work), which the simulated
// cluster converts into node-speed-dependent execution time.
package apriori

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Transaction is a sorted set of item IDs (a document's term set).
type Transaction = []uint32

// Pattern is one frequent itemset with its support count.
type Pattern struct {
	Items   []uint32
	Support int
}

// Key encodes the itemset canonically for map keys.
func Key(items []uint32) string {
	b := make([]byte, 4*len(items))
	for i, it := range items {
		binary.LittleEndian.PutUint32(b[4*i:], it)
	}
	return string(b)
}

// ParseKey decodes a canonical key back into an itemset.
func ParseKey(k string) []uint32 {
	items := make([]uint32, len(k)/4)
	for i := range items {
		items[i] = binary.LittleEndian.Uint32([]byte(k[4*i : 4*i+4]))
	}
	return items
}

// Result summarizes one mining run.
type Result struct {
	// Frequent holds the frequent itemsets, sorted by (length, items).
	Frequent []Pattern
	// Candidates is the total number of candidate itemsets counted
	// across all levels — the search-space size.
	Candidates int
	// Cost is the abstract work metric (deterministic).
	Cost float64
}

// Config bounds a mining run.
type Config struct {
	// MinSupport is the absolute minimum transaction count an itemset
	// must appear in. Required ≥ 1.
	MinSupport int
	// MaxLen caps itemset length; 0 means unbounded.
	MaxLen int
}

// Mine runs levelwise Apriori over the transactions.
func Mine(txns []Transaction, cfg Config) (*Result, error) {
	if cfg.MinSupport < 1 {
		return nil, fmt.Errorf("apriori: min support %d, need ≥ 1", cfg.MinSupport)
	}
	res := &Result{}
	// Level 1: count single items.
	counts := make(map[uint32]int)
	for _, t := range txns {
		for _, it := range t {
			counts[it]++
		}
		res.Cost += float64(len(t))
	}
	var level []Pattern
	for it, c := range counts {
		if c >= cfg.MinSupport {
			level = append(level, Pattern{Items: []uint32{it}, Support: c})
		}
	}
	res.Candidates += len(counts)
	sortPatterns(level)
	res.Frequent = append(res.Frequent, level...)
	k := 2
	for len(level) > 1 && (cfg.MaxLen == 0 || k <= cfg.MaxLen) {
		cands := generateCandidates(level)
		res.Candidates += len(cands)
		if len(cands) == 0 {
			break
		}
		counted, cost := CountCandidates(txns, cands, k)
		res.Cost += cost
		level = level[:0]
		for i, c := range counted {
			if c >= cfg.MinSupport {
				level = append(level, Pattern{Items: cands[i], Support: c})
			}
		}
		sortPatterns(level)
		res.Frequent = append(res.Frequent, level...)
		k++
	}
	return res, nil
}

// sortPatterns orders patterns by length then lexicographic items.
func sortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i].Items, ps[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}

// generateCandidates joins frequent (k−1)-itemsets sharing a (k−2)
// prefix and prunes candidates with an infrequent (k−1)-subset.
func generateCandidates(level []Pattern) [][]uint32 {
	freq := make(map[string]bool, len(level))
	for _, p := range level {
		freq[Key(p.Items)] = true
	}
	var cands [][]uint32
	for i := 0; i < len(level); i++ {
		a := level[i].Items
		for j := i + 1; j < len(level); j++ {
			b := level[j].Items
			if !samePrefix(a, b) {
				break // sorted level: once prefixes diverge, stop
			}
			// Join: a ∪ {b[last]}; a[last] < b[last] by sort order.
			cand := make([]uint32, len(a)+1)
			copy(cand, a)
			cand[len(a)] = b[len(b)-1]
			if allSubsetsFrequent(cand, freq) {
				cands = append(cands, cand)
			}
		}
	}
	return cands
}

func samePrefix(a, b []uint32) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori pruning property.
func allSubsetsFrequent(cand []uint32, freq map[string]bool) bool {
	sub := make([]uint32, len(cand)-1)
	for skip := range cand {
		// The subset dropping the last or second-to-last element was
		// one of the join parents; checking them again is cheap and
		// keeps the code uniform.
		idx := 0
		for i, v := range cand {
			if i == skip {
				continue
			}
			sub[idx] = v
			idx++
		}
		if !freq[Key(sub)] {
			return false
		}
	}
	return true
}

// CountCandidates counts, for every candidate k-itemset, the number of
// transactions containing it. It returns the counts (aligned with
// cands) and the deterministic work cost: one unit per
// candidate-transaction containment test step.
func CountCandidates(txns []Transaction, cands [][]uint32, k int) ([]int, float64) {
	counts := make([]int, len(cands))
	if len(cands) == 0 {
		return counts, 0
	}
	// Index candidates by first item to skip impossible tests.
	byFirst := make(map[uint32][]int)
	for i, c := range cands {
		byFirst[c[0]] = append(byFirst[c[0]], i)
	}
	var cost float64
	for _, t := range txns {
		if len(t) < k {
			cost++
			continue
		}
		inTxn := make(map[uint32]bool, len(t))
		for _, it := range t {
			inTxn[it] = true
		}
		cost += float64(len(t))
		for _, first := range t {
			for _, ci := range byFirst[first] {
				cand := cands[ci]
				cost += float64(len(cand))
				ok := true
				for _, it := range cand[1:] {
					if !inTxn[it] {
						ok = false
						break
					}
				}
				if ok {
					counts[ci]++
				}
			}
		}
	}
	return counts, cost
}

// PartitionResult is one partition's local mining output in the
// Savasere scheme.
type PartitionResult struct {
	// Local holds the locally frequent itemsets.
	Local []Pattern
	// Cost is the partition's local mining cost.
	Cost float64
}

// MineLocal mines one partition with the support threshold scaled to
// the partition's share: an itemset globally frequent at fraction s
// must be locally frequent at fraction s in at least one partition
// (the Savasere completeness property).
func MineLocal(txns []Transaction, supportFrac float64, maxLen int) (*PartitionResult, error) {
	if supportFrac <= 0 || supportFrac > 1 {
		return nil, fmt.Errorf("apriori: support fraction %v out of (0,1]", supportFrac)
	}
	minSup := int(supportFrac * float64(len(txns)))
	if minSup < 1 {
		minSup = 1
	}
	res, err := Mine(txns, Config{MinSupport: minSup, MaxLen: maxLen})
	if err != nil {
		return nil, err
	}
	return &PartitionResult{Local: res.Frequent, Cost: res.Cost}, nil
}

// GlobalCandidates unions the locally frequent itemsets of all
// partitions — the candidate set the global pruning pass must count.
func GlobalCandidates(parts []*PartitionResult) [][]uint32 {
	seen := make(map[string]bool)
	var cands [][]uint32
	for _, p := range parts {
		for _, pat := range p.Local {
			k := Key(pat.Items)
			if !seen[k] {
				seen[k] = true
				cands = append(cands, pat.Items)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return cands
}

// CountPass counts the global candidates against one partition's
// transactions (the second scan of the Savasere scheme), returning
// per-candidate counts and the pass's cost.
func CountPass(txns []Transaction, cands [][]uint32) ([]int, float64) {
	counts := make([]int, len(cands))
	var cost float64
	// Group candidates by length so CountCandidates' k-filter applies.
	byLen := make(map[int][]int)
	for i, c := range cands {
		byLen[len(c)] = append(byLen[len(c)], i)
	}
	for k, idxs := range byLen {
		sub := make([][]uint32, len(idxs))
		for j, i := range idxs {
			sub[j] = cands[i]
		}
		c, w := CountCandidates(txns, sub, k)
		cost += w
		for j, i := range idxs {
			counts[i] = c[j]
		}
	}
	return counts, cost
}

// DistributedResult is the full outcome of the partitioned algorithm.
type DistributedResult struct {
	// Frequent holds the globally frequent itemsets.
	Frequent []Pattern
	// Candidates is the size of the global candidate set (locally
	// frequent union) — the quality metric partition skew inflates.
	Candidates int
	// FalsePositives counts candidates that failed the global check.
	FalsePositives int
	// LocalCosts[i] is partition i's phase-1 cost; CountCosts[i] its
	// phase-2 cost.
	LocalCosts []float64
	CountCosts []float64
}

// MineDistributed runs the complete two-phase partitioned algorithm
// over the given partitions at a global support fraction. It is the
// reference implementation the experiment harness parallelizes across
// simulated nodes; both must agree (tested).
func MineDistributed(partitions [][]Transaction, supportFrac float64, maxLen int) (*DistributedResult, error) {
	if len(partitions) == 0 {
		return nil, errors.New("apriori: no partitions")
	}
	total := 0
	for _, p := range partitions {
		total += len(p)
	}
	if total == 0 {
		return nil, errors.New("apriori: no transactions")
	}
	parts := make([]*PartitionResult, len(partitions))
	for i, p := range partitions {
		if len(p) == 0 {
			parts[i] = &PartitionResult{}
			continue
		}
		pr, err := MineLocal(p, supportFrac, maxLen)
		if err != nil {
			return nil, fmt.Errorf("apriori: partition %d: %w", i, err)
		}
		parts[i] = pr
	}
	cands := GlobalCandidates(parts)
	res := &DistributedResult{
		Candidates: len(cands),
		LocalCosts: make([]float64, len(partitions)),
		CountCosts: make([]float64, len(partitions)),
	}
	for i, p := range parts {
		res.LocalCosts[i] = p.Cost
	}
	globalCounts := make([]int, len(cands))
	for i, p := range partitions {
		counts, cost := CountPass(p, cands)
		res.CountCosts[i] = cost
		for j, c := range counts {
			globalCounts[j] += c
		}
	}
	// Ceiling, so "globally frequent" implies a count of at least
	// supportFrac of the data — the condition under which the union of
	// locally frequent sets (floored local thresholds) is guaranteed
	// to contain every answer (Savasere's completeness argument).
	minSup := int(math.Ceil(supportFrac * float64(total)))
	if minSup < 1 {
		minSup = 1
	}
	for j, c := range globalCounts {
		if c >= minSup {
			res.Frequent = append(res.Frequent, Pattern{Items: cands[j], Support: c})
		} else {
			res.FalsePositives++
		}
	}
	return res, nil
}
