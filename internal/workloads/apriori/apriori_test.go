package apriori

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// tx builds a sorted transaction.
func tx(items ...uint32) Transaction {
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// classicDataset is the textbook market-basket example.
func classicDataset() []Transaction {
	return []Transaction{
		tx(1, 3, 4),
		tx(2, 3, 5),
		tx(1, 2, 3, 5),
		tx(2, 5),
	}
}

func findPattern(ps []Pattern, items ...uint32) *Pattern {
	for i := range ps {
		if reflect.DeepEqual(ps[i].Items, items) {
			return &ps[i]
		}
	}
	return nil
}

func TestMineClassicExample(t *testing.T) {
	// With min support 2: {1}:2 {2}:3 {3}:3 {5}:3, {1,3}:2 {2,3}:2
	// {2,5}:3 {3,5}:2, {2,3,5}:2.
	res, err := Mine(classicDataset(), Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		Key([]uint32{1}):       2,
		Key([]uint32{2}):       3,
		Key([]uint32{3}):       3,
		Key([]uint32{5}):       3,
		Key([]uint32{1, 3}):    2,
		Key([]uint32{2, 3}):    2,
		Key([]uint32{2, 5}):    3,
		Key([]uint32{3, 5}):    2,
		Key([]uint32{2, 3, 5}): 2,
	}
	if len(res.Frequent) != len(want) {
		t.Fatalf("%d frequent itemsets, want %d: %v", len(res.Frequent), len(want), res.Frequent)
	}
	for _, p := range res.Frequent {
		if want[Key(p.Items)] != p.Support {
			t.Errorf("pattern %v support %d, want %d", p.Items, p.Support, want[Key(p.Items)])
		}
	}
	if res.Cost <= 0 || res.Candidates <= 0 {
		t.Error("cost/candidate accounting empty")
	}
}

func TestMineMaxLen(t *testing.T) {
	res, err := Mine(classicDataset(), Config{MinSupport: 2, MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Frequent {
		if len(p.Items) > 1 {
			t.Errorf("MaxLen 1 produced %v", p.Items)
		}
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(nil, Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
}

func TestMineEmptyAndSparse(t *testing.T) {
	res, err := Mine(nil, Config{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != 0 {
		t.Error("empty dataset mined patterns")
	}
	// All-distinct transactions: only singletons at support 1.
	res, err = Mine([]Transaction{tx(1), tx(2), tx(3)}, Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != 0 {
		t.Errorf("sparse data gave %v", res.Frequent)
	}
}

// bruteForce counts every itemset up to maxLen by enumeration.
func bruteForce(txns []Transaction, minSup, maxLen int) map[string]int {
	counts := make(map[string]int)
	var rec func(t Transaction, start int, cur []uint32)
	rec = func(t Transaction, start int, cur []uint32) {
		if len(cur) > 0 {
			counts[Key(cur)]++
		}
		if maxLen > 0 && len(cur) >= maxLen {
			return
		}
		for i := start; i < len(t); i++ {
			rec(t, i+1, append(cur, t[i]))
		}
	}
	for _, t := range txns {
		rec(t, 0, nil)
	}
	for k, c := range counts {
		if c < minSup {
			delete(counts, k)
		}
	}
	return counts
}

func TestMineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		nTx := 10 + rng.Intn(30)
		txns := make([]Transaction, nTx)
		for i := range txns {
			n := 1 + rng.Intn(6)
			seen := map[uint32]bool{}
			var items []uint32
			for len(items) < n {
				v := uint32(rng.Intn(12))
				if !seen[v] {
					seen[v] = true
					items = append(items, v)
				}
			}
			txns[i] = tx(items...)
		}
		minSup := 2 + rng.Intn(3)
		res, err := Mine(txns, Config{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(txns, minSup, 0)
		if len(res.Frequent) != len(want) {
			t.Fatalf("trial %d: %d patterns, brute force %d", trial, len(res.Frequent), len(want))
		}
		for _, p := range res.Frequent {
			if want[Key(p.Items)] != p.Support {
				t.Fatalf("trial %d: %v support %d, want %d", trial, p.Items, p.Support, want[Key(p.Items)])
			}
		}
	}
}

func TestKeyRoundtrip(t *testing.T) {
	items := []uint32{0, 1, 4294967295, 17}
	if got := ParseKey(Key(items)); !reflect.DeepEqual(got, items) {
		t.Errorf("roundtrip %v", got)
	}
	if len(ParseKey(Key(nil))) != 0 {
		t.Error("empty key roundtrip")
	}
}

func TestMineDistributedMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	txns := make([]Transaction, 200)
	for i := range txns {
		n := 2 + rng.Intn(8)
		seen := map[uint32]bool{}
		var items []uint32
		for len(items) < n {
			v := uint32(rng.Intn(30))
			if !seen[v] {
				seen[v] = true
				items = append(items, v)
			}
		}
		txns[i] = tx(items...)
	}
	const frac = 0.1
	minSup := int(frac * float64(len(txns)))
	central, err := Mine(txns, Config{MinSupport: minSup})
	if err != nil {
		t.Fatal(err)
	}
	// Split into 4 partitions round-robin.
	parts := make([][]Transaction, 4)
	for i, x := range txns {
		parts[i%4] = append(parts[i%4], x)
	}
	dist, err := MineDistributed(parts, frac, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The Savasere scheme is exact: same frequent sets and supports.
	if len(dist.Frequent) != len(central.Frequent) {
		t.Fatalf("distributed %d patterns, centralized %d", len(dist.Frequent), len(central.Frequent))
	}
	cm := map[string]int{}
	for _, p := range central.Frequent {
		cm[Key(p.Items)] = p.Support
	}
	for _, p := range dist.Frequent {
		if cm[Key(p.Items)] != p.Support {
			t.Errorf("pattern %v support %d vs centralized %d", p.Items, p.Support, cm[Key(p.Items)])
		}
	}
	if dist.Candidates < len(dist.Frequent) {
		t.Error("candidates fewer than final frequent sets")
	}
	if dist.FalsePositives != dist.Candidates-len(dist.Frequent) {
		t.Error("false positive accounting inconsistent")
	}
}

func TestSkewInflatesCandidates(t *testing.T) {
	// Two content groups. Balanced (representative) partitions see
	// both groups and generate few false positives; skewed partitions
	// (group per partition) make every group-pattern locally frequent,
	// inflating the global candidate set. This is the paper's central
	// claim about payload-aware partitioning.
	rng := rand.New(rand.NewSource(31))
	mkGroup := func(base uint32, n int) []Transaction {
		out := make([]Transaction, n)
		for i := range out {
			var items []uint32
			for j := 0; j < 5; j++ {
				items = append(items, base+uint32(rng.Intn(12)))
			}
			out[i] = tx(dedup(items)...)
		}
		return out
	}
	a := mkGroup(0, 100)
	b := mkGroup(100, 100)
	all := append(append([]Transaction{}, a...), b...)

	skewed := [][]Transaction{a, b}
	balanced := make([][]Transaction, 2)
	for i, x := range all {
		balanced[i%2] = append(balanced[i%2], x)
	}
	const frac = 0.15
	ds, err := MineDistributed(skewed, frac, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := MineDistributed(balanced, frac, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.FalsePositives <= db.FalsePositives {
		t.Errorf("skewed false positives %d not above balanced %d",
			ds.FalsePositives, db.FalsePositives)
	}
	if ds.Candidates <= db.Candidates {
		t.Errorf("skewed candidates %d not above balanced %d", ds.Candidates, db.Candidates)
	}
}

func dedup(items []uint32) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, v := range items {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func TestMineDistributedValidation(t *testing.T) {
	if _, err := MineDistributed(nil, 0.1, 0); err == nil {
		t.Error("no partitions accepted")
	}
	if _, err := MineDistributed([][]Transaction{{}}, 0.1, 0); err == nil {
		t.Error("all-empty partitions accepted")
	}
	if _, err := MineLocal([]Transaction{tx(1)}, 0, 0); err == nil {
		t.Error("zero support fraction accepted")
	}
	if _, err := MineLocal([]Transaction{tx(1)}, 1.5, 0); err == nil {
		t.Error("support fraction > 1 accepted")
	}
}

func TestMineDistributedEmptyPartitionTolerated(t *testing.T) {
	parts := [][]Transaction{classicDataset(), {}}
	res, err := MineDistributed(parts, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) == 0 {
		t.Error("no patterns found")
	}
	if res.LocalCosts[1] != 0 {
		t.Error("empty partition accrued local cost")
	}
}

func TestCostDeterminism(t *testing.T) {
	txns := classicDataset()
	a, err := Mine(txns, Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(txns, Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Candidates != b.Candidates {
		t.Error("cost accounting not deterministic")
	}
}

func BenchmarkMine1000Txns(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	txns := make([]Transaction, 1000)
	for i := range txns {
		var items []uint32
		for j := 0; j < 10; j++ {
			items = append(items, uint32(rng.Intn(50)))
		}
		txns[i] = tx(dedup(items)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(txns, Config{MinSupport: 50}); err != nil {
			b.Fatal(err)
		}
	}
}
