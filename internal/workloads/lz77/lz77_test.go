package lz77

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, data []byte, cfg Config) *Encoded {
	t.Helper()
	enc, err := Compress(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("roundtrip mismatch: %d in, %d out", len(data), len(dec))
	}
	return enc
}

func TestRoundtripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abcabcabcabcabcabc"),
		[]byte(strings.Repeat("x", 10000)),
		[]byte("no repeats here!?"),
		bytes.Repeat([]byte{0, 1, 2, 3}, 5000),
	}
	for i, data := range cases {
		enc := roundtrip(t, data, Config{})
		if len(data) > 1000 && enc.Ratio() < 2 {
			t.Errorf("case %d: ratio %.2f on highly repetitive data", i, enc.Ratio())
		}
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(data []byte) bool {
		enc, err := Compress(data, Config{})
		if err != nil {
			return false
		}
		dec, err := Decompress(enc.Data)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundtripStructuredData(t *testing.T) {
	// Simulated serialized records: repetitive structure, varying payload.
	rng := rand.New(rand.NewSource(3))
	var data []byte
	for i := 0; i < 2000; i++ {
		data = append(data, []byte("record-header-v1|")...)
		data = append(data, byte(rng.Intn(256)), byte(rng.Intn(4)))
	}
	enc := roundtrip(t, data, Config{})
	if enc.Ratio() < 3 {
		t.Errorf("structured data ratio %.2f", enc.Ratio())
	}
	if enc.Matches == 0 {
		t.Error("no matches found in repetitive data")
	}
}

func TestWindowLimitsMatches(t *testing.T) {
	// Repeat beyond a small window: no matches reachable.
	unit := make([]byte, 600)
	rng := rand.New(rand.NewSource(5))
	for i := range unit {
		unit[i] = byte(rng.Intn(256))
	}
	data := append(append([]byte{}, unit...), unit...)
	small, err := Compress(data, Config{WindowSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compress(data, Config{WindowSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if big.Matches <= small.Matches {
		t.Errorf("big window matches %d not above small window %d", big.Matches, small.Matches)
	}
	// Both must still roundtrip.
	for _, e := range []*Encoded{small, big} {
		dec, err := Decompress(e.Data)
		if err != nil || !bytes.Equal(dec, data) {
			t.Fatal("window-limited roundtrip failed")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Compress(nil, Config{WindowSize: 2}); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := Compress(nil, Config{MaxChain: -1}); err == nil {
		t.Error("negative chain accepted")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{0x02},                              // unknown tag
		{0x00},                              // missing run header
		{0x00, 0x05, 'a'},                   // run past end
		{0x00, 0x00},                        // zero-length run
		{0x01, 0x05},                        // missing distance
		{0x01, 0x05, 0x01},                  // distance into empty output
		{0x01, 0x00, 0x01},                  // zero-length match
		{0x00, 0x01, 'a', 0x01, 0x05, 0x09}, // distance beyond output
	}
	for i, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestOverlappingMatch(t *testing.T) {
	// RLE-style overlap: "aaaa..." encodes as literal 'a' + match with
	// distance 1; the decoder must copy byte-by-byte.
	data := bytes.Repeat([]byte("ab"), 4000)
	enc := roundtrip(t, data, Config{})
	if enc.Ratio() < 10 {
		t.Errorf("RLE-like ratio %.2f", enc.Ratio())
	}
}

func TestCostDeterministicAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 20000)
	for i := range data {
		data[i] = byte(rng.Intn(8))
	}
	a, err := Compress(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Error("cost not deterministic")
	}
	// Deeper chains cost more work (and find no fewer matches).
	shallow, err := Compress(data, Config{MaxChain: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Cost >= a.Cost {
		t.Errorf("chain-1 cost %v not below default-chain cost %v", shallow.Cost, a.Cost)
	}
	if len(shallow.Data) < len(a.Data) {
		t.Errorf("chain-1 compressed smaller (%d) than default (%d)", len(shallow.Data), len(a.Data))
	}
}

func TestSimilarContentCompressesBetter(t *testing.T) {
	// The partitioning claim for LZ77: a partition of similar records
	// compresses better than a mixed partition of the same size.
	rng := rand.New(rand.NewSource(11))
	mk := func(vocab []string, n int) []byte {
		var b []byte
		for i := 0; i < n; i++ {
			b = append(b, vocab[rng.Intn(len(vocab))]...)
		}
		return b
	}
	vocabA := []string{"alpha-record ", "alpha-header ", "alpha-payload "}
	vocabB := []string{"ZYX#01|", "WVU#02|", "TSR#03|"}
	pureA := mk(vocabA, 3000)
	pureB := mk(vocabB, 3000)
	mixed1 := mk(append(vocabA, vocabB...), 3000)
	mixed2 := mk(append(vocabA, vocabB...), 3000)
	encPure := func() int {
		a, err := Compress(pureA, Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compress(pureB, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return len(a.Data) + len(b.Data)
	}()
	encMixed := func() int {
		a, err := Compress(mixed1, Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compress(mixed2, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return len(a.Data) + len(b.Data)
	}()
	if encPure >= encMixed {
		t.Skipf("pure %d not below mixed %d on this seed (LZ77 window covers both)", encPure, encMixed)
	}
}

func TestRatioEmpty(t *testing.T) {
	if (&Encoded{}).Ratio() != 0 {
		t.Error("empty ratio must be 0")
	}
}

func BenchmarkCompress64K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(rng.Intn(16))
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress64K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(rng.Intn(16))
	}
	enc, err := Compress(data, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(enc.Data); err != nil {
			b.Fatal(err)
		}
	}
}
