package lz77_test

import (
	"bytes"
	"fmt"
	"strings"

	"pareto/internal/workloads/lz77"
)

// Compress and decompress a repetitive byte stream.
func ExampleCompress() {
	data := []byte(strings.Repeat("analytics partition ", 500))
	enc, err := lz77.Compress(data, lz77.Config{})
	if err != nil {
		panic(err)
	}
	back, err := lz77.Decompress(enc.Data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("roundtrip ok: %v, ratio > 50x: %v\n",
		bytes.Equal(back, data), enc.Ratio() > 50)
	// Output:
	// roundtrip ok: true, ratio > 50x: true
}
