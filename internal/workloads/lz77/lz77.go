// Package lz77 is a from-scratch sliding-window LZ77 codec (Ziv &
// Lempel, 1977/78 family) with hash-chain match finding — the second
// compression workload of paper §V-C2 (Tables II and III). The token
// stream is byte-aligned: literal runs and (length, distance) matches
// framed with uvarints, so the codec is self-contained and
// deterministic, and the decoder validates every reference.
package lz77

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Config controls the compressor.
type Config struct {
	// WindowSize is the back-reference window. 0 means DefaultWindow.
	WindowSize int
	// MaxChain bounds hash-chain probes per position. 0 means
	// DefaultMaxChain. Higher finds better matches, costs more work.
	MaxChain int
}

// Tunables.
const (
	DefaultWindow   = 32 << 10
	DefaultMaxChain = 32
	minMatch        = 4
	maxMatch        = 1 << 16
	hashBits        = 16
)

// Encoded is a compressed buffer plus its deterministic work cost.
type Encoded struct {
	// Data is the token stream.
	Data []byte
	// RawLen is the original length.
	RawLen int
	// Cost is the abstract work metric (bytes scanned + chain probes).
	Cost float64
	// Matches counts emitted back-references.
	Matches int
}

// Ratio returns original size / compressed size.
func (e *Encoded) Ratio() float64 {
	if len(e.Data) == 0 {
		return 0
	}
	return float64(e.RawLen) / float64(len(e.Data))
}

// hash4 mixes 4 bytes into a hashBits-bit table index.
func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - hashBits)
}

// Compress encodes data with LZ77.
func Compress(data []byte, cfg Config) (*Encoded, error) {
	window := cfg.WindowSize
	if window == 0 {
		window = DefaultWindow
	}
	if window < minMatch {
		return nil, fmt.Errorf("lz77: window %d below minimum match %d", window, minMatch)
	}
	maxChain := cfg.MaxChain
	if maxChain == 0 {
		maxChain = DefaultMaxChain
	}
	if maxChain < 1 {
		return nil, fmt.Errorf("lz77: max chain %d", maxChain)
	}
	enc := &Encoded{RawLen: len(data)}
	var out []byte
	var lit []byte // pending literal run
	head := make([]int32, 1<<hashBits)
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(data))
	flushLits := func() {
		if len(lit) == 0 {
			return
		}
		out = append(out, 0x00)
		out = binary.AppendUvarint(out, uint64(len(lit)))
		out = append(out, lit...)
		lit = lit[:0]
	}
	pos := 0
	insert := func(p int) {
		if p+minMatch <= len(data) {
			h := hash4(data[p:])
			prev[p] = head[h]
			head[h] = int32(p)
		}
	}
	for pos < len(data) {
		enc.Cost++
		bestLen, bestDist := 0, 0
		if pos+minMatch <= len(data) {
			h := hash4(data[pos:])
			cand := head[h]
			probes := 0
			for cand >= 0 && probes < maxChain && pos-int(cand) <= window {
				probes++
				enc.Cost++
				l := matchLen(data, int(cand), pos)
				if l > bestLen {
					bestLen = l
					bestDist = pos - int(cand)
				}
				cand = prev[cand]
			}
		}
		if bestLen >= minMatch {
			flushLits()
			out = append(out, 0x01)
			out = binary.AppendUvarint(out, uint64(bestLen))
			out = binary.AppendUvarint(out, uint64(bestDist))
			enc.Matches++
			for k := 0; k < bestLen; k++ {
				insert(pos + k)
			}
			pos += bestLen
			enc.Cost += float64(bestLen)
		} else {
			lit = append(lit, data[pos])
			insert(pos)
			pos++
		}
	}
	flushLits()
	enc.Data = out
	return enc, nil
}

// matchLen counts matching bytes between positions a (earlier) and b.
func matchLen(data []byte, a, b int) int {
	n := 0
	for b+n < len(data) && data[a+n] == data[b+n] && n < maxMatch {
		n++
	}
	return n
}

// ErrCorrupt reports a malformed token stream.
var ErrCorrupt = errors.New("lz77: corrupt stream")

// Decompress decodes a token stream produced by Compress.
func Decompress(data []byte) ([]byte, error) {
	var out []byte
	pos := 0
	for pos < len(data) {
		tag := data[pos]
		pos++
		switch tag {
		case 0x00:
			n, k := binary.Uvarint(data[pos:])
			if k <= 0 || n == 0 {
				return nil, fmt.Errorf("%w: bad literal run header", ErrCorrupt)
			}
			pos += k
			if pos+int(n) > len(data) {
				return nil, fmt.Errorf("%w: literal run past end", ErrCorrupt)
			}
			out = append(out, data[pos:pos+int(n)]...)
			pos += int(n)
		case 0x01:
			l, k := binary.Uvarint(data[pos:])
			if k <= 0 {
				return nil, fmt.Errorf("%w: bad match length", ErrCorrupt)
			}
			pos += k
			d, k2 := binary.Uvarint(data[pos:])
			if k2 <= 0 {
				return nil, fmt.Errorf("%w: bad match distance", ErrCorrupt)
			}
			pos += k2
			if d == 0 || int(d) > len(out) {
				return nil, fmt.Errorf("%w: distance %d with %d bytes output", ErrCorrupt, d, len(out))
			}
			if l == 0 || l > maxMatch {
				return nil, fmt.Errorf("%w: match length %d", ErrCorrupt, l)
			}
			start := len(out) - int(d)
			for i := 0; i < int(l); i++ {
				out = append(out, out[start+i])
			}
		default:
			return nil, fmt.Errorf("%w: unknown tag %#x", ErrCorrupt, tag)
		}
	}
	return out, nil
}
