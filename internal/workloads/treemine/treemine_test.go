package treemine

import (
	"math/rand"
	"testing"

	"pareto/internal/pivots"
)

// mkTree builds a tree from parallel parent/label slices.
func mkTree(parents []int32, labels []uint32) pivots.Tree {
	return pivots.Tree{Parent: parents, Label: labels}
}

// ---------------------------------------------------------------------------
// Independent containment checker (backtracking embedding test) used
// to validate the miner. Completely separate code path from extend().
// ---------------------------------------------------------------------------

// patTree is a pattern converted into explicit tree form.
type patTree struct {
	label    []uint32
	children [][]int
}

func toPatTree(p Pattern) patTree {
	pt := patTree{label: make([]uint32, len(p)), children: make([][]int, len(p))}
	var stack []int // current path, index by depth
	for i, n := range p {
		pt.label[i] = n.Label
		if i > 0 {
			parent := stack[n.Depth-1]
			pt.children[parent] = append(pt.children[parent], i)
		}
		if int(n.Depth) < len(stack) {
			stack = stack[:n.Depth]
		}
		stack = append(stack, i)
	}
	return pt
}

// embeds reports whether pattern node pi can map to tree node v with an
// order-preserving injective mapping of the pattern subtree.
func embeds(t *pivots.Tree, ch [][]int32, pt *patTree, pi int, v int32) bool {
	if pt.label[pi] != t.Label[v] {
		return false
	}
	pk := pt.children[pi]
	if len(pk) == 0 {
		return true
	}
	tk := ch[v]
	// Match pattern children in order to tree children in order.
	var rec func(pcIdx, tcIdx int) bool
	rec = func(pcIdx, tcIdx int) bool {
		if pcIdx == len(pk) {
			return true
		}
		for j := tcIdx; j < len(tk); j++ {
			if embeds(t, ch, pt, pk[pcIdx], tk[j]) && rec(pcIdx+1, j+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// bruteSupport counts trees containing the pattern via backtracking.
func bruteSupport(trees []pivots.Tree, p Pattern) int {
	pt := toPatTree(p)
	sup := 0
	for ti := range trees {
		ch := trees[ti].Children()
		found := false
		for v := 0; v < len(trees[ti].Parent) && !found; v++ {
			found = embeds(&trees[ti], ch, &pt, 0, int32(v))
		}
		if found {
			sup++
		}
	}
	return sup
}

// ---------------------------------------------------------------------------

func TestMineTinyExample(t *testing.T) {
	// Two trees sharing the shape a(b, c); a third tree a(c) only.
	trees := []pivots.Tree{
		mkTree([]int32{-1, 0, 0}, []uint32{1, 2, 3}), // a(b, c)
		mkTree([]int32{-1, 0, 0}, []uint32{1, 2, 3}), // a(b, c)
		mkTree([]int32{-1, 0}, []uint32{1, 3}),       // a(c)
	}
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(f, Config{MinSupport: 2, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantSup := map[string]int{
		Pattern{{0, 1}}.Key():                 3,
		Pattern{{0, 2}}.Key():                 2,
		Pattern{{0, 3}}.Key():                 3,
		Pattern{{0, 1}, {1, 2}}.Key():         2,
		Pattern{{0, 1}, {1, 3}}.Key():         3,
		Pattern{{0, 1}, {1, 2}, {1, 3}}.Key(): 2,
	}
	got := map[string]int{}
	for _, fp := range res.Frequent {
		got[fp.Pattern.Key()] = fp.Support
	}
	if len(got) != len(wantSup) {
		t.Fatalf("%d patterns, want %d: %v", len(got), len(wantSup), res.Frequent)
	}
	for k, sup := range wantSup {
		if got[k] != sup {
			t.Errorf("pattern %v support %d, want %d", ParsePatternKey(k), got[k], sup)
		}
	}
}

func TestSiblingOrderMatters(t *testing.T) {
	// Tree a(b, c): pattern a(c, b) — wrong sibling order — must NOT
	// be found (induced *ordered* subtree semantics).
	trees := []pivots.Tree{mkTree([]int32{-1, 0, 0}, []uint32{1, 2, 3})}
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(f, Config{MinSupport: 1, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := Pattern{{0, 1}, {1, 3}, {1, 2}}.Key()
	for _, fp := range res.Frequent {
		if fp.Pattern.Key() == bad {
			t.Error("order-violating pattern reported")
		}
	}
	// And the correct order must be found.
	good := Pattern{{0, 1}, {1, 2}, {1, 3}}.Key()
	found := false
	for _, fp := range res.Frequent {
		if fp.Pattern.Key() == good {
			found = true
		}
	}
	if !found {
		t.Error("correct-order pattern missing")
	}
}

func TestDeepPattern(t *testing.T) {
	// Chain a-b-c must be mined from chain trees.
	trees := []pivots.Tree{
		mkTree([]int32{-1, 0, 1}, []uint32{1, 2, 3}),
		mkTree([]int32{-1, 0, 1, 2}, []uint32{1, 2, 3, 4}),
	}
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(f, Config{MinSupport: 2, MaxNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	chain := Pattern{{0, 1}, {1, 2}, {2, 3}}.Key()
	found := false
	for _, fp := range res.Frequent {
		if fp.Pattern.Key() == chain && fp.Support == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("chain pattern missing: %v", res.Frequent)
	}
}

// randomForest builds small random labeled trees.
func randomForest(rng *rand.Rand, nTrees, maxNodes int, labels uint32) []pivots.Tree {
	trees := make([]pivots.Tree, nTrees)
	for i := range trees {
		n := 1 + rng.Intn(maxNodes)
		parent := make([]int32, n)
		label := make([]uint32, n)
		parent[0] = -1
		label[0] = uint32(rng.Intn(int(labels)))
		for v := 1; v < n; v++ {
			parent[v] = int32(rng.Intn(v))
			label[v] = uint32(rng.Intn(int(labels)))
		}
		trees[i] = mkTree(parent, label)
	}
	return trees
}

func TestMineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		trees := randomForest(rng, 8+rng.Intn(8), 7, 4)
		f, err := NewForest(trees)
		if err != nil {
			t.Fatal(err)
		}
		minSup := 2 + rng.Intn(2)
		res, err := Mine(f, Config{MinSupport: minSup, MaxNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		// 1) Every reported support must match the brute-force count.
		for _, fp := range res.Frequent {
			if got := bruteSupport(trees, fp.Pattern); got != fp.Support {
				t.Fatalf("trial %d: pattern %v support %d, brute force %d",
					trial, fp.Pattern, fp.Support, got)
			}
		}
		// 2) No frequent pattern may be missed: check every 2-node
		// pattern over the label alphabet.
		for a := uint32(0); a < 4; a++ {
			for b := uint32(0); b < 4; b++ {
				p := Pattern{{0, a}, {1, b}}
				sup := bruteSupport(trees, p)
				reported := false
				for _, fp := range res.Frequent {
					if fp.Pattern.Key() == p.Key() {
						reported = true
						if fp.Support != sup {
							t.Fatalf("trial %d: %v support %d vs %d", trial, p, fp.Support, sup)
						}
					}
				}
				if sup >= minSup && !reported {
					t.Fatalf("trial %d: frequent pattern %v (sup %d) missed", trial, p, sup)
				}
				if sup < minSup && reported {
					t.Fatalf("trial %d: infrequent pattern %v reported", trial, p)
				}
			}
		}
	}
}

func TestCountSupportMatchesMine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trees := randomForest(rng, 20, 8, 5)
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(f, Config{MinSupport: 2, MaxNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range res.Frequent {
		sup, cost, err := CountSupport(f, fp.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		if sup != fp.Support {
			t.Errorf("CountSupport(%v) = %d, Mine says %d", fp.Pattern, sup, fp.Support)
		}
		if cost <= 0 {
			t.Error("zero matching cost")
		}
	}
	// A pattern that cannot occur.
	sup, _, err := CountSupport(f, Pattern{{0, 999}, {1, 999}})
	if err != nil || sup != 0 {
		t.Errorf("impossible pattern support %d, %v", sup, err)
	}
}

func TestPatternValidate(t *testing.T) {
	if err := (Pattern{}).Validate(); err == nil {
		t.Error("empty pattern accepted")
	}
	if err := (Pattern{{1, 5}}).Validate(); err == nil {
		t.Error("nonzero root depth accepted")
	}
	if err := (Pattern{{0, 1}, {2, 2}}).Validate(); err == nil {
		t.Error("depth jump accepted")
	}
	if err := (Pattern{{0, 1}, {1, 2}, {1, 3}, {2, 1}}).Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
}

func TestPatternKeyRoundtrip(t *testing.T) {
	p := Pattern{{0, 7}, {1, 9}, {2, 11}, {1, 7}}
	back := ParsePatternKey(p.Key())
	if len(back) != len(p) {
		t.Fatal("length changed")
	}
	for i := range p {
		if back[i] != p[i] {
			t.Errorf("node %d: %v vs %v", i, back[i], p[i])
		}
	}
}

func TestMineValidation(t *testing.T) {
	f, err := NewForest([]pivots.Tree{mkTree([]int32{-1}, []uint32{1})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(f, Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := NewForest([]pivots.Tree{{}}); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestMaxPatternsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trees := randomForest(rng, 30, 10, 2) // few labels → dense patterns
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(f, Config{MinSupport: 1, MaxNodes: 6, MaxPatterns: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored > 50+64 { // cap plus the final level's expansions
		t.Errorf("explored %d far beyond cap", res.Explored)
	}
}

func TestMineDistributedMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	trees := randomForest(rng, 60, 6, 4)
	const frac = 0.25
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	// Centralized at the same ceiling threshold.
	central, err := Mine(f, Config{MinSupport: 15, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]pivots.Tree, 3)
	for i, tr := range trees {
		parts[i%3] = append(parts[i%3], tr)
	}
	dist, err := MineDistributed(parts, frac, Config{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cm := map[string]int{}
	for _, fp := range central.Frequent {
		cm[fp.Pattern.Key()] = fp.Support
	}
	if len(dist.Frequent) != len(central.Frequent) {
		t.Fatalf("distributed %d, centralized %d", len(dist.Frequent), len(central.Frequent))
	}
	for _, fp := range dist.Frequent {
		if cm[fp.Pattern.Key()] != fp.Support {
			t.Errorf("pattern %v support mismatch", fp.Pattern)
		}
	}
	if dist.FalsePositives != dist.Candidates-len(dist.Frequent) {
		t.Error("false-positive accounting inconsistent")
	}
}

func TestMineDistributedValidation(t *testing.T) {
	if _, err := MineDistributed(nil, 0.5, Config{}); err == nil {
		t.Error("no partitions accepted")
	}
	if _, err := MineDistributed([][]pivots.Tree{{}}, 0.5, Config{}); err == nil {
		t.Error("empty partitions accepted")
	}
	if _, err := MineLocal([]pivots.Tree{mkTree([]int32{-1}, []uint32{1})}, 0, Config{}); err == nil {
		t.Error("zero fraction accepted")
	}
}

func BenchmarkMine200Trees(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	trees := randomForest(rng, 200, 20, 8)
	f, err := NewForest(trees)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(f, Config{MinSupport: 20, MaxNodes: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPatternString(t *testing.T) {
	cases := []struct {
		p    Pattern
		want string
	}{
		{Pattern{}, "()"},
		{Pattern{{0, 1}}, "1"},
		{Pattern{{0, 1}, {1, 2}}, "1(2)"},
		{Pattern{{0, 1}, {1, 2}, {1, 3}}, "1(2, 3)"},
		{Pattern{{0, 1}, {1, 2}, {2, 4}, {1, 3}}, "1(2(4), 3)"},
	}
	for i, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("case %d: %q, want %q", i, got, c.want)
		}
	}
}
