// Package treemine implements frequent ordered-subtree mining in the
// style of FREQT (Asai et al., SDM 2002): labeled, rooted, ordered
// patterns are enumerated by rightmost extension, with occurrences
// tracked as rightmost-occurrence lists. It stands in for the
// hashing-based frequent tree mining workload of paper §V-C1, with the
// same complexity driver — the number of candidate patterns explored,
// which partition skew inflates.
//
// A pattern is an induced ordered subtree: pattern nodes map to
// distinct tree nodes preserving parent-child edges, sibling order and
// labels. Support is the number of trees containing at least one
// embedding. The partition-based distributed scheme (Savasere-style,
// as in the text workload) mines each partition locally and prunes
// false positives with a global counting pass.
package treemine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"pareto/internal/pivots"
)

// PatternNode is one node of a pattern in preorder: its depth and label.
type PatternNode struct {
	Depth int32
	Label uint32
}

// Pattern is an ordered labeled tree in preorder (depth, label) form.
// A valid pattern has Depth[0] = 0 and each subsequent depth at most
// one deeper than its predecessor.
type Pattern []PatternNode

// Key encodes the pattern canonically for map keys.
func (p Pattern) Key() string {
	b := make([]byte, 8*len(p))
	for i, n := range p {
		binary.LittleEndian.PutUint32(b[8*i:], uint32(n.Depth))
		binary.LittleEndian.PutUint32(b[8*i+4:], n.Label)
	}
	return string(b)
}

// ParsePatternKey decodes a canonical pattern key.
func ParsePatternKey(k string) Pattern {
	p := make(Pattern, len(k)/8)
	for i := range p {
		p[i].Depth = int32(binary.LittleEndian.Uint32([]byte(k[8*i : 8*i+4])))
		p[i].Label = binary.LittleEndian.Uint32([]byte(k[8*i+4 : 8*i+8]))
	}
	return p
}

// Validate checks preorder depth consistency.
func (p Pattern) Validate() error {
	if len(p) == 0 {
		return errors.New("treemine: empty pattern")
	}
	if p[0].Depth != 0 {
		return fmt.Errorf("treemine: root depth %d", p[0].Depth)
	}
	for i := 1; i < len(p); i++ {
		if p[i].Depth < 1 || p[i].Depth > p[i-1].Depth+1 {
			return fmt.Errorf("treemine: invalid depth %d after %d", p[i].Depth, p[i-1].Depth)
		}
	}
	return nil
}

// Forest is a preprocessed tree collection: children lists in sibling
// (document) order, per-node depths, and parent pointers.
type Forest struct {
	Trees    []pivots.Tree
	children [][][]int32
	depth    [][]int32
}

// NewForest validates and preprocesses the trees.
func NewForest(trees []pivots.Tree) (*Forest, error) {
	f := &Forest{
		Trees:    trees,
		children: make([][][]int32, len(trees)),
		depth:    make([][]int32, len(trees)),
	}
	for ti := range trees {
		t := &trees[ti]
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("treemine: tree %d: %w", ti, err)
		}
		f.children[ti] = t.Children()
		d := make([]int32, len(t.Parent))
		for v := 1; v < len(t.Parent); v++ {
			d[v] = d[t.Parent[v]] + 1
		}
		f.depth[ti] = d
	}
	return f, nil
}

// Len returns the tree count.
func (f *Forest) Len() int { return len(f.Trees) }

// occurrence is a rightmost occurrence: the tree and the tree node
// matched to the pattern's last preorder node. Because rightmost
// extension only consults the rightmost path — fully determined by
// this node and the pattern depths — occurrences with equal (tree,
// node) are interchangeable and stored once.
type occurrence struct {
	tree int32
	node int32
}

// ancestor walks up k levels from v.
func (f *Forest) ancestor(tree, v, k int32) int32 {
	for ; k > 0; k-- {
		v = f.Trees[tree].Parent[v]
	}
	return v
}

// FreqPattern is one frequent pattern with its support.
type FreqPattern struct {
	Pattern Pattern
	Support int
}

// Result summarizes a mining run.
type Result struct {
	// Frequent holds the frequent patterns in canonical order.
	Frequent []FreqPattern
	// Explored is the number of candidate patterns whose support was
	// evaluated (the search-space size).
	Explored int
	// Cost is the abstract deterministic work metric.
	Cost float64
}

// Config bounds a mining run.
type Config struct {
	// MinSupport is the absolute minimum number of trees a pattern
	// must occur in. Required ≥ 1.
	MinSupport int
	// MaxNodes caps the pattern size. 0 means DefaultMaxNodes.
	MaxNodes int
	// MaxPatterns aborts runaway enumerations. 0 means no cap.
	MaxPatterns int
}

// DefaultMaxNodes bounds pattern size when Config.MaxNodes is 0.
const DefaultMaxNodes = 5

// Mine enumerates all frequent induced ordered subtrees of the forest.
func Mine(f *Forest, cfg Config) (*Result, error) {
	if cfg.MinSupport < 1 {
		return nil, fmt.Errorf("treemine: min support %d", cfg.MinSupport)
	}
	maxNodes := cfg.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	res := &Result{}
	// Level 1: single labels.
	byLabel := make(map[uint32][]occurrence)
	for ti := range f.Trees {
		for v, l := range f.Trees[ti].Label {
			byLabel[l] = append(byLabel[l], occurrence{int32(ti), int32(v)})
			res.Cost++
		}
	}
	type state struct {
		pat Pattern
		occ []occurrence
	}
	var stack []state
	labels := make([]uint32, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, l := range labels {
		occ := byLabel[l]
		res.Explored++
		if sup := distinctTrees(occ); sup >= cfg.MinSupport {
			pat := Pattern{{Depth: 0, Label: l}}
			res.Frequent = append(res.Frequent, FreqPattern{Pattern: pat, Support: sup})
			stack = append(stack, state{pat, occ})
		}
	}
	// DFS rightmost extension.
	for len(stack) > 0 {
		if cfg.MaxPatterns > 0 && res.Explored >= cfg.MaxPatterns {
			break
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(s.pat) >= maxNodes {
			continue
		}
		exts, cost := f.extend(s.pat, s.occ)
		res.Cost += cost
		// Deterministic order over extensions.
		keys := make([]extKey, 0, len(exts))
		for k := range exts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].depth != keys[j].depth {
				return keys[i].depth > keys[j].depth
			}
			return keys[i].label < keys[j].label
		})
		for _, k := range keys {
			occ := exts[k]
			res.Explored++
			sup := distinctTrees(occ)
			if sup < cfg.MinSupport {
				continue
			}
			np := make(Pattern, len(s.pat)+1)
			copy(np, s.pat)
			np[len(s.pat)] = PatternNode{Depth: k.depth, Label: k.label}
			res.Frequent = append(res.Frequent, FreqPattern{Pattern: np, Support: sup})
			stack = append(stack, state{np, occ})
		}
	}
	sortFreq(res.Frequent)
	return res, nil
}

type extKey struct {
	depth int32
	label uint32
}

// extend computes every rightmost extension of the pattern from its
// occurrence list: for each occurrence with last matched node v (at
// pattern depth dlast), the pattern can grow a new node at depth p+1
// for any rightmost-path depth p ≤ dlast; candidates are v's children
// (p = dlast) or the later siblings of v's ancestor chain (p < dlast).
func (f *Forest) extend(pat Pattern, occ []occurrence) (map[extKey][]occurrence, float64) {
	dlast := pat[len(pat)-1].Depth
	exts := make(map[extKey][]occurrence)
	seen := make(map[extKey]map[occurrence]struct{})
	var cost float64
	add := func(k extKey, o occurrence) {
		m, ok := seen[k]
		if !ok {
			m = make(map[occurrence]struct{})
			seen[k] = m
		}
		if _, dup := m[o]; dup {
			return
		}
		m[o] = struct{}{}
		exts[k] = append(exts[k], o)
	}
	for _, o := range occ {
		cost++
		// p == dlast: attach under the last matched node.
		for _, w := range f.children[o.tree][o.node] {
			cost++
			add(extKey{dlast + 1, f.Trees[o.tree].Label[w]}, occurrence{o.tree, w})
		}
		// p < dlast: attach under an ancestor, after the path child.
		c := o.node
		for p := dlast - 1; p >= 0; p-- {
			a := f.Trees[o.tree].Parent[c]
			sibs := f.children[o.tree][a]
			// Children are in increasing node-ID (document) order;
			// candidates are the siblings after c.
			idx := sort.Search(len(sibs), func(i int) bool { return sibs[i] > c })
			for _, w := range sibs[idx:] {
				cost++
				add(extKey{p + 1, f.Trees[o.tree].Label[w]}, occurrence{o.tree, w})
			}
			c = a
		}
	}
	return exts, cost
}

// distinctTrees counts how many distinct trees appear in the list.
func distinctTrees(occ []occurrence) int {
	seen := make(map[int32]struct{}, len(occ))
	for _, o := range occ {
		seen[o.tree] = struct{}{}
	}
	return len(seen)
}

// sortFreq orders patterns by (size, key).
func sortFreq(ps []FreqPattern) {
	sort.Slice(ps, func(i, j int) bool {
		if len(ps[i].Pattern) != len(ps[j].Pattern) {
			return len(ps[i].Pattern) < len(ps[j].Pattern)
		}
		return ps[i].Pattern.Key() < ps[j].Pattern.Key()
	})
}

// CountSupport counts the support of one pattern in the forest by
// replaying its rightmost-extension construction (every pattern's
// preorder prefix sequence is exactly its unique build path), and
// returns the support plus the deterministic matching cost.
func CountSupport(f *Forest, pat Pattern) (int, float64, error) {
	if err := pat.Validate(); err != nil {
		return 0, 0, err
	}
	var occ []occurrence
	var cost float64
	for ti := range f.Trees {
		for v, l := range f.Trees[ti].Label {
			cost++
			if l == pat[0].Label {
				occ = append(occ, occurrence{int32(ti), int32(v)})
			}
		}
	}
	cur := pat[:1]
	for i := 1; i < len(pat); i++ {
		if len(occ) == 0 {
			return 0, cost, nil
		}
		exts, c := f.extend(cur, occ)
		cost += c
		occ = exts[extKey{pat[i].Depth, pat[i].Label}]
		cur = pat[:i+1]
	}
	return distinctTrees(occ), cost, nil
}

// PartitionResult is one partition's local mining output.
type PartitionResult struct {
	Local []FreqPattern
	Cost  float64
}

// MineLocal mines one partition at the scaled support threshold.
func MineLocal(trees []pivots.Tree, supportFrac float64, cfg Config) (*PartitionResult, error) {
	if supportFrac <= 0 || supportFrac > 1 {
		return nil, fmt.Errorf("treemine: support fraction %v", supportFrac)
	}
	f, err := NewForest(trees)
	if err != nil {
		return nil, err
	}
	cfg.MinSupport = int(supportFrac * float64(len(trees)))
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	res, err := Mine(f, cfg)
	if err != nil {
		return nil, err
	}
	return &PartitionResult{Local: res.Frequent, Cost: res.Cost}, nil
}

// DistributedResult is the outcome of the partitioned algorithm.
type DistributedResult struct {
	// Frequent holds the globally frequent patterns.
	Frequent []FreqPattern
	// Candidates is the global candidate count (union of local
	// frequents) — the skew-sensitive quality metric.
	Candidates int
	// FalsePositives counts candidates pruned by the global pass.
	FalsePositives int
	// LocalCosts and CountCosts are the per-partition phase costs.
	LocalCosts []float64
	CountCosts []float64
}

// MineDistributed runs the two-phase partitioned algorithm: local
// FREQT per partition, union, global counting pass, prune.
func MineDistributed(partitions [][]pivots.Tree, supportFrac float64, cfg Config) (*DistributedResult, error) {
	if len(partitions) == 0 {
		return nil, errors.New("treemine: no partitions")
	}
	total := 0
	for _, p := range partitions {
		total += len(p)
	}
	if total == 0 {
		return nil, errors.New("treemine: no trees")
	}
	res := &DistributedResult{
		LocalCosts: make([]float64, len(partitions)),
		CountCosts: make([]float64, len(partitions)),
	}
	seen := make(map[string]bool)
	var cands []Pattern
	for i, p := range partitions {
		if len(p) == 0 {
			continue
		}
		pr, err := MineLocal(p, supportFrac, cfg)
		if err != nil {
			return nil, fmt.Errorf("treemine: partition %d: %w", i, err)
		}
		res.LocalCosts[i] = pr.Cost
		for _, fp := range pr.Local {
			k := fp.Pattern.Key()
			if !seen[k] {
				seen[k] = true
				cands = append(cands, fp.Pattern)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i]) != len(cands[j]) {
			return len(cands[i]) < len(cands[j])
		}
		return cands[i].Key() < cands[j].Key()
	})
	res.Candidates = len(cands)
	globalCounts := make([]int, len(cands))
	for i, p := range partitions {
		if len(p) == 0 {
			continue
		}
		f, err := NewForest(p)
		if err != nil {
			return nil, err
		}
		for j, pat := range cands {
			sup, cost, err := CountSupport(f, pat)
			if err != nil {
				return nil, err
			}
			res.CountCosts[i] += cost
			globalCounts[j] += sup
		}
	}
	// Ceiling for the same completeness reason as the text workload:
	// floored local thresholds over-generate, never miss.
	minSup := int(math.Ceil(supportFrac * float64(total)))
	if minSup < 1 {
		minSup = 1
	}
	for j, c := range globalCounts {
		if c >= minSup {
			res.Frequent = append(res.Frequent, FreqPattern{Pattern: cands[j], Support: c})
		} else {
			res.FalsePositives++
		}
	}
	sortFreq(res.Frequent)
	return res, nil
}

// String renders the pattern as a nested term, e.g. "1(2, 3(4))",
// where numbers are labels — handy in logs and failure messages.
func (p Pattern) String() string {
	if len(p) == 0 {
		return "()"
	}
	var sb strings.Builder
	var write func(i int) int
	write = func(i int) int {
		fmt.Fprintf(&sb, "%d", p[i].Label)
		j := i + 1
		opened := false
		for j < len(p) && p[j].Depth == p[i].Depth+1 {
			if !opened {
				sb.WriteByte('(')
				opened = true
			} else {
				sb.WriteString(", ")
			}
			j = write(j)
		}
		if opened {
			sb.WriteByte(')')
		}
		return j
	}
	write(0)
	return sb.String()
}
