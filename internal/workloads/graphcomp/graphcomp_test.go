package graphcomp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitRoundtripPrimitives(t *testing.T) {
	w := NewBitWriter()
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0b1011, 4)
	w.WriteUnary(5)
	w.WriteGamma(1)
	w.WriteGamma(17)
	w.WriteGamma0(0)
	w.WriteGamma0(99)
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Error("bit 1")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Error("bit 0")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("bits = %b", v)
	}
	if v, _ := r.ReadUnary(); v != 5 {
		t.Errorf("unary = %d", v)
	}
	if v, _ := r.ReadGamma(); v != 1 {
		t.Errorf("gamma = %d", v)
	}
	if v, _ := r.ReadGamma(); v != 17 {
		t.Errorf("gamma = %d", v)
	}
	if v, _ := r.ReadGamma0(); v != 0 {
		t.Errorf("gamma0 = %d", v)
	}
	if v, _ := r.ReadGamma0(); v != 99 {
		t.Errorf("gamma0 = %d", v)
	}
}

func TestGammaQuick(t *testing.T) {
	f := func(v uint32) bool {
		x := uint64(v) + 1
		w := NewBitWriter()
		w.WriteGamma(x)
		r := NewBitReader(w.Bytes())
		got, err := r.ReadGamma()
		return err == nil && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("γ(0) must panic")
		}
	}()
	NewBitWriter().WriteGamma(0)
}

func TestZigZag(t *testing.T) {
	for _, x := range []int64{0, -1, 1, -2, 2, 1 << 40, -(1 << 40)} {
		if UnZigZag(ZigZag(x)) != x {
			t.Errorf("zigzag roundtrip failed for %d", x)
		}
	}
	if ZigZag(0) != 0 || ZigZag(-1) != 1 || ZigZag(1) != 2 {
		t.Error("zigzag mapping wrong")
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err == nil {
		t.Error("reading 9 bits from 1 byte must fail")
	}
	r2 := NewBitReader([]byte{0x00})
	if _, err := r2.ReadUnary(); err == nil {
		t.Error("unterminated unary must fail")
	}
}

func TestBitWriterLen(t *testing.T) {
	w := NewBitWriter()
	if w.Len() != 0 {
		t.Error("empty len")
	}
	for i := 0; i < 13; i++ {
		w.WriteBit(1)
	}
	if w.Len() != 13 {
		t.Errorf("len = %d", w.Len())
	}
}

func TestEncodeDecodeRoundtripSimple(t *testing.T) {
	ids := []uint32{10, 11, 12, 40}
	lists := [][]uint32{
		{1, 5, 9, 200},
		{1, 5, 9, 201},
		{},
		{0},
	}
	enc, err := Encode(ids, lists, Config{Window: DefaultWindow})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, gotLists, err := Decode(enc, Config{Window: DefaultWindow})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotIDs, ids) {
		t.Errorf("ids %v", gotIDs)
	}
	for i := range lists {
		if len(lists[i]) == 0 && len(gotLists[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(gotLists[i], lists[i]) {
			t.Errorf("list %d: %v vs %v", i, gotLists[i], lists[i])
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode([]uint32{1}, nil, Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Encode([]uint32{1}, [][]uint32{{3, 2}}, Config{}); err == nil {
		t.Error("descending list accepted")
	}
	if _, err := Encode([]uint32{1}, [][]uint32{{2, 2}}, Config{}); err == nil {
		t.Error("duplicate neighbor accepted")
	}
	if _, err := Encode(nil, nil, Config{Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
}

// randomLists builds n random ascending lists over [0, universe).
func randomLists(rng *rand.Rand, n, meanDeg, universe int, similarity float64) ([]uint32, [][]uint32) {
	ids := make([]uint32, n)
	lists := make([][]uint32, n)
	for i := range lists {
		ids[i] = uint32(i * 3)
		set := map[uint32]struct{}{}
		if i > 0 && rng.Float64() < similarity {
			for _, u := range lists[i-1] {
				if rng.Float64() < 0.8 {
					set[u] = struct{}{}
				}
			}
		}
		deg := rng.Intn(2*meanDeg + 1)
		for len(set) < deg {
			set[uint32(rng.Intn(universe))] = struct{}{}
		}
		list := make([]uint32, 0, len(set))
		for u := range set {
			list = append(list, u)
		}
		for a := 1; a < len(list); a++ {
			for b := a; b > 0 && list[b-1] > list[b]; b-- {
				list[b-1], list[b] = list[b], list[b-1]
			}
		}
		lists[i] = list
	}
	return ids, lists
}

func TestEncodeDecodeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		ids, lists := randomLists(rng, n, 8, 10000, 0.5)
		for _, window := range []int{0, 3, DefaultWindow} {
			enc, err := Encode(ids, lists, Config{Window: window})
			if err != nil {
				t.Fatalf("trial %d w%d: %v", trial, window, err)
			}
			gotIDs, gotLists, err := Decode(enc, Config{Window: window})
			if err != nil {
				t.Fatalf("trial %d w%d: %v", trial, window, err)
			}
			if !reflect.DeepEqual(gotIDs, ids) {
				t.Fatalf("trial %d w%d: ids differ", trial, window)
			}
			for i := range lists {
				if len(lists[i]) == 0 && len(gotLists[i]) == 0 {
					continue
				}
				if !reflect.DeepEqual(gotLists[i], lists[i]) {
					t.Fatalf("trial %d w%d list %d: %v vs %v", trial, window, i, gotLists[i], lists[i])
				}
			}
		}
	}
}

func TestReferenceCompressionHelpsSimilarLists(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids, similar := randomLists(rng, 300, 20, 1000000, 0.95)
	encRef, err := Encode(ids, similar, Config{Window: DefaultWindow})
	if err != nil {
		t.Fatal(err)
	}
	encNoRef, err := Encode(ids, similar, Config{Window: 0})
	if err != nil {
		t.Fatal(err)
	}
	if encRef.BitLen >= encNoRef.BitLen {
		t.Errorf("window %d bits %d not below window-0 bits %d on similar lists",
			DefaultWindow, encRef.BitLen, encNoRef.BitLen)
	}
}

func TestSimilarOrderingCompressesBetter(t *testing.T) {
	// The paper's §V-C2 claim: placing similar lists consecutively
	// (similar-together partitioning) yields a better ratio than
	// interleaving them.
	rng := rand.New(rand.NewSource(9))
	idsA, groupA := randomLists(rng, 150, 20, 50000, 0.95)
	_, groupB := randomLists(rng, 150, 20, 50000, 0.95)
	// Shift group B into a different universe region.
	for _, l := range groupB {
		for k := range l {
			l[k] += 500000
		}
	}
	idsB := make([]uint32, len(groupB))
	for i := range idsB {
		idsB[i] = uint32(100000 + i*3)
	}
	// Grouped: A then B. Interleaved: alternate.
	gIDs := append(append([]uint32{}, idsA...), idsB...)
	gLists := append(append([][]uint32{}, groupA...), groupB...)
	var iIDs []uint32
	var iLists [][]uint32
	for i := 0; i < len(groupA); i++ {
		iIDs = append(iIDs, idsA[i], idsB[i])
		iLists = append(iLists, groupA[i], groupB[i])
	}
	encG, err := Encode(gIDs, gLists, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	encI, err := Encode(iIDs, iLists, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if encG.BitLen >= encI.BitLen {
		t.Errorf("grouped %d bits not below interleaved %d bits", encG.BitLen, encI.BitLen)
	}
}

func TestRatioAndRawBits(t *testing.T) {
	ids := []uint32{0, 1}
	lists := [][]uint32{{1, 2, 3}, {}}
	raw := RawBits(ids, lists)
	if raw != 32*2+32*4+32 {
		t.Errorf("raw bits %d", raw)
	}
	if Ratio(100, 0) != 0 {
		t.Error("zero compressed ratio must be 0")
	}
	if Ratio(100, 50) != 2 {
		t.Error("ratio wrong")
	}
}

func TestDecodeCorruptStream(t *testing.T) {
	enc := &Encoded{Bits: []byte{0x00}, NumLists: 3, BitLen: 8}
	if _, _, err := Decode(enc, Config{}); err == nil {
		t.Error("corrupt stream decoded")
	}
}

func TestCostDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids, lists := randomLists(rng, 50, 10, 1000, 0.5)
	a, err := Encode(ids, lists, Config{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(ids, lists, Config{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.BitLen != b.BitLen {
		t.Error("encoding not deterministic")
	}
	if a.Cost <= 0 {
		t.Error("zero cost")
	}
}

func BenchmarkEncode300Lists(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ids, lists := randomLists(rng, 300, 25, 100000, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(ids, lists, Config{Window: DefaultWindow}); err != nil {
			b.Fatal(err)
		}
	}
}
