package graphcomp

import (
	"errors"
	"fmt"
)

// Code selects the variable-length code used for residual gaps.
type Code int

// Residual codes.
const (
	// GammaCode is the Elias γ code (good for small gaps).
	GammaCode Code = iota
	// ZetaCode is the ζ_k code of Boldi & Vigna, tuned for the
	// power-law gap distributions of real webgraphs.
	ZetaCode
)

// Config controls the compressor.
type Config struct {
	// Window is the reference window: how many previously encoded
	// lists each list may copy from. 0 disables reference compression.
	Window int
	// Residuals selects the residual gap code (default GammaCode).
	Residuals Code
	// ZetaK is the ζ shrinking parameter (default 3, webgraph's own
	// default); used only with ZetaCode.
	ZetaK uint
}

// DefaultWindow matches webgraph's usual small window.
const DefaultWindow = 7

// DefaultZetaK is webgraph's default ζ shrinking parameter.
const DefaultZetaK = 3

// residualWriter returns the configured natural-number writer.
func (c Config) residualWriter() (func(w *BitWriter, v uint64), error) {
	switch c.Residuals {
	case GammaCode:
		return func(w *BitWriter, v uint64) { w.WriteGamma0(v) }, nil
	case ZetaCode:
		k := c.ZetaK
		if k == 0 {
			k = DefaultZetaK
		}
		return func(w *BitWriter, v uint64) { w.WriteZeta0(k, v) }, nil
	default:
		return nil, fmt.Errorf("graphcomp: unknown residual code %d", int(c.Residuals))
	}
}

// residualReader returns the configured natural-number reader.
func (c Config) residualReader() (func(r *BitReader) (uint64, error), error) {
	switch c.Residuals {
	case GammaCode:
		return func(r *BitReader) (uint64, error) { return r.ReadGamma0() }, nil
	case ZetaCode:
		k := c.ZetaK
		if k == 0 {
			k = DefaultZetaK
		}
		return func(r *BitReader) (uint64, error) { return r.ReadZeta0(k) }, nil
	default:
		return nil, fmt.Errorf("graphcomp: unknown residual code %d", int(c.Residuals))
	}
}

// Encoded is a compressed block of adjacency lists.
type Encoded struct {
	// Bits is the compressed stream.
	Bits []byte
	// NumLists is the number of encoded lists.
	NumLists int
	// BitLen is the exact stream length in bits.
	BitLen int
	// Cost is the deterministic work metric of encoding (units of
	// neighbor-processing steps, including reference-search work).
	Cost float64
}

// CompressedBits returns the compressed size in bits.
func (e *Encoded) CompressedBits() int { return e.BitLen }

// RawBits returns the uncompressed baseline: 32 bits per vertex ID and
// per edge endpoint, the natural array-of-adjacency representation.
func RawBits(ids []uint32, lists [][]uint32) int {
	n := 32 * len(ids)
	for _, l := range lists {
		n += 32 * (len(l) + 1) // degree word + endpoints
	}
	return n
}

// Ratio returns raw/compressed.
func Ratio(raw, compressed int) float64 {
	if compressed == 0 {
		return 0
	}
	return float64(raw) / float64(compressed)
}

// Encode compresses the given adjacency lists (with their vertex IDs)
// in order. Lists must be strictly increasing. The partition's order is
// the reference order: similar consecutive lists compress well.
func Encode(ids []uint32, lists [][]uint32, cfg Config) (*Encoded, error) {
	if len(ids) != len(lists) {
		return nil, fmt.Errorf("graphcomp: %d ids but %d lists", len(ids), len(lists))
	}
	window := cfg.Window
	if window < 0 {
		return nil, errors.New("graphcomp: negative window")
	}
	writeNat, err := cfg.residualWriter()
	if err != nil {
		return nil, err
	}
	w := NewBitWriter()
	var cost float64
	prevID := int64(0)
	for i, list := range lists {
		for k := 1; k < len(list); k++ {
			if list[k-1] >= list[k] {
				return nil, fmt.Errorf("graphcomp: list %d not strictly increasing", i)
			}
		}
		// Vertex ID, delta-coded against the previous record.
		w.WriteGamma0(ZigZag(int64(ids[i]) - prevID))
		prevID = int64(ids[i])
		w.WriteGamma0(uint64(len(list)))
		cost += float64(len(list)) + 1
		if len(list) == 0 {
			continue
		}
		// Choose the best reference in the window by trial encoding.
		bestRef := 0
		var bestBody *BitWriter
		for r := 0; r <= window && r <= i; r++ {
			var refList []uint32
			if r > 0 {
				refList = lists[i-r]
				cost += float64(len(refList))
			}
			body := encodeBody(int64(ids[i]), list, refList, writeNat)
			if bestBody == nil || body.Len() < bestBody.Len() {
				bestBody = body
				bestRef = r
			}
		}
		w.WriteGamma0(uint64(bestRef))
		copyBits(w, bestBody)
	}
	return &Encoded{Bits: w.Bytes(), NumLists: len(lists), BitLen: w.Len(), Cost: cost}, nil
}

// encodeBody encodes one list against an optional reference list:
// copy-block runs over the reference, then γ-coded residual gaps.
func encodeBody(vid int64, list []uint32, ref []uint32, writeNat func(*BitWriter, uint64)) *BitWriter {
	w := NewBitWriter()
	inList := make(map[uint32]bool, len(list))
	for _, u := range list {
		inList[u] = true
	}
	copied := make(map[uint32]bool)
	if len(ref) > 0 {
		// Runs over ref: alternating copy/skip, starting with copy.
		var runs []uint64
		cur := uint64(0)
		copying := true
		for _, u := range ref {
			isCopy := inList[u]
			if isCopy == copying {
				cur++
			} else {
				runs = append(runs, cur)
				copying = !copying
				cur = 1
			}
			if isCopy {
				copied[u] = true
			}
		}
		runs = append(runs, cur)
		w.WriteGamma0(uint64(len(runs)))
		for _, r := range runs {
			w.WriteGamma0(r)
		}
	}
	// Residuals: list minus copied, ascending.
	var resid []uint32
	for _, u := range list {
		if !copied[u] {
			resid = append(resid, u)
		}
	}
	w.WriteGamma0(uint64(len(resid)))
	prev := vid
	for k, u := range resid {
		if k == 0 {
			writeNat(w, ZigZag(int64(u)-prev))
		} else {
			writeNat(w, uint64(int64(u)-prev)-1)
		}
		prev = int64(u)
	}
	return w
}

// copyBits appends src's bits to dst.
func copyBits(dst, src *BitWriter) {
	n := src.Len()
	for i := 0; i < n; i++ {
		b := uint(src.buf[i>>3]>>(7-uint(i&7))) & 1
		dst.WriteBit(b)
	}
}

// Decode reverses Encode, returning vertex IDs and adjacency lists.
func Decode(enc *Encoded, cfg Config) ([]uint32, [][]uint32, error) {
	readNat, err := cfg.residualReader()
	if err != nil {
		return nil, nil, err
	}
	r := NewBitReader(enc.Bits)
	ids := make([]uint32, 0, enc.NumLists)
	lists := make([][]uint32, 0, enc.NumLists)
	prevID := int64(0)
	for i := 0; i < enc.NumLists; i++ {
		dz, err := r.ReadGamma0()
		if err != nil {
			return nil, nil, fmt.Errorf("graphcomp: list %d id: %w", i, err)
		}
		vid := prevID + UnZigZag(dz)
		prevID = vid
		if vid < 0 {
			return nil, nil, fmt.Errorf("graphcomp: list %d negative id", i)
		}
		deg, err := r.ReadGamma0()
		if err != nil {
			return nil, nil, fmt.Errorf("graphcomp: list %d degree: %w", i, err)
		}
		if deg == 0 {
			ids = append(ids, uint32(vid))
			lists = append(lists, nil)
			continue
		}
		ref, err := r.ReadGamma0()
		if err != nil {
			return nil, nil, fmt.Errorf("graphcomp: list %d ref: %w", i, err)
		}
		var copied []uint32
		if ref > 0 {
			if int(ref) > i {
				return nil, nil, fmt.Errorf("graphcomp: list %d references %d back", i, ref)
			}
			refList := lists[i-int(ref)]
			nRuns, err := r.ReadGamma0()
			if err != nil {
				return nil, nil, err
			}
			pos := 0
			copying := true
			for k := uint64(0); k < nRuns; k++ {
				runLen, err := r.ReadGamma0()
				if err != nil {
					return nil, nil, err
				}
				if copying {
					for j := uint64(0); j < runLen; j++ {
						if pos >= len(refList) {
							return nil, nil, errors.New("graphcomp: copy run past reference")
						}
						copied = append(copied, refList[pos])
						pos++
					}
				} else {
					pos += int(runLen)
				}
				copying = !copying
			}
			if pos != len(refList) {
				return nil, nil, errors.New("graphcomp: runs do not cover reference")
			}
		}
		nResid, err := r.ReadGamma0()
		if err != nil {
			return nil, nil, err
		}
		resid := make([]uint32, nResid)
		prev := vid
		for k := range resid {
			g, err := readNat(r)
			if err != nil {
				return nil, nil, err
			}
			var u int64
			if k == 0 {
				u = prev + UnZigZag(g)
			} else {
				u = prev + int64(g) + 1
			}
			if u < 0 {
				return nil, nil, errors.New("graphcomp: negative neighbor")
			}
			resid[k] = uint32(u)
			prev = u
		}
		list := mergeSorted(copied, resid)
		if uint64(len(list)) != deg {
			return nil, nil, fmt.Errorf("graphcomp: list %d decoded %d of %d neighbors", i, len(list), deg)
		}
		ids = append(ids, uint32(vid))
		lists = append(lists, list)
	}
	return ids, lists, nil
}

// mergeSorted merges two ascending disjoint lists.
func mergeSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
