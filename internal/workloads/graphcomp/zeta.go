package graphcomp

import "fmt"

// ζ_k codes (Boldi & Vigna, "Codes for the World-Wide Web", 2004) are
// the codes the webgraph framework actually uses for residual gaps:
// they are optimal for power-law-distributed values with exponent
// near 1+1/k, where γ wastes bits. This file adds ζ coding plus the
// truncated (minimal) binary code it builds on.

// WriteMinimalBinary writes value m ∈ [0, r) using ⌈log₂ r⌉ or
// ⌈log₂ r⌉−1 bits (truncated binary).
func (w *BitWriter) WriteMinimalBinary(m, r uint64) {
	if r <= 1 {
		return // zero information
	}
	b := bitsLen(r - 1) // ⌈log₂ r⌉
	cut := uint64(1)<<b - r
	if m < cut {
		w.WriteBits(m, int(b)-1)
	} else {
		w.WriteBits(m+cut, int(b))
	}
}

// ReadMinimalBinary reads a truncated-binary value in [0, r).
func (r *BitReader) ReadMinimalBinary(rng uint64) (uint64, error) {
	if rng <= 1 {
		return 0, nil
	}
	b := bitsLen(rng - 1)
	cut := uint64(1)<<b - rng
	hi, err := r.ReadBits(int(b) - 1)
	if err != nil {
		return 0, err
	}
	if hi < cut {
		return hi, nil
	}
	low, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	return (hi<<1 | uint64(low)) - cut, nil
}

// bitsLen returns the number of bits needed to represent v (≥1 for v>0).
func bitsLen(v uint64) uint {
	n := uint(0)
	for v > 0 {
		n++
		v >>= 1
	}
	if n == 0 {
		n = 1
	}
	return n
}

// WriteZeta writes the ζ_k code of v ≥ 1.
func (w *BitWriter) WriteZeta(k uint, v uint64) {
	if k == 0 {
		panic("graphcomp: ζ shrinking parameter k must be ≥ 1")
	}
	if v == 0 {
		panic("graphcomp: ζ code domain is v ≥ 1")
	}
	// h = ⌊log₂(v)/k⌋.
	h := (bitsLen(v) - 1) / k
	w.WriteUnary(uint64(h))
	lo := uint64(1) << (h * k)
	hi := uint64(1) << ((h + 1) * k)
	w.WriteMinimalBinary(v-lo, hi-lo)
}

// ReadZeta reads one ζ_k code.
func (r *BitReader) ReadZeta(k uint) (uint64, error) {
	if k == 0 {
		return 0, fmt.Errorf("graphcomp: ζ k must be ≥ 1")
	}
	h, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if h*uint64(k) > 62 {
		return 0, fmt.Errorf("graphcomp: ζ magnitude overflow (h=%d)", h)
	}
	lo := uint64(1) << (uint(h) * k)
	hi := uint64(1) << ((uint(h) + 1) * k)
	m, err := r.ReadMinimalBinary(hi - lo)
	if err != nil {
		return 0, err
	}
	return lo + m, nil
}

// WriteZeta0 extends ζ_k to v ≥ 0.
func (w *BitWriter) WriteZeta0(k uint, v uint64) { w.WriteZeta(k, v+1) }

// ReadZeta0 reads one ζ_k₀ code.
func (r *BitReader) ReadZeta0(k uint) (uint64, error) {
	v, err := r.ReadZeta(k)
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}
