// Package graphcomp implements webgraph-style adjacency-list
// compression after Boldi & Vigna (WWW 2004), the compression workload
// of paper §V-C2: gap encoding with γ codes, reference compression
// against a sliding window of previously encoded lists, and copy-block
// run encoding. Compression quality rises sharply when similar
// adjacency lists (same-host vertices) are stored together — exactly
// what the framework's similar-together partitioning produces.
package graphcomp

import (
	"errors"
	"fmt"
	"math/bits"
)

// BitWriter accumulates a bit stream, most significant bit first.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the last byte (0 means last byte full/absent)
}

// NewBitWriter creates an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// Len returns the number of bits written.
func (w *BitWriter) Len() int {
	if w.nbit == 0 {
		return 8 * len(w.buf)
	}
	return 8*(len(w.buf)-1) + int(w.nbit)
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 0
	}
	if w.nbit == 8 {
		w.buf = append(w.buf, 0)
		w.nbit = 0
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit)
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUnary appends v zeros followed by a one.
func (w *BitWriter) WriteUnary(v uint64) {
	for i := uint64(0); i < v; i++ {
		w.WriteBit(0)
	}
	w.WriteBit(1)
}

// WriteGamma appends the Elias γ code of v ≥ 1: unary length prefix
// followed by the binary digits below the leading one.
func (w *BitWriter) WriteGamma(v uint64) {
	if v == 0 {
		panic("graphcomp: γ code domain is v ≥ 1")
	}
	l := uint64(bits.Len64(v)) - 1
	w.WriteUnary(l)
	w.WriteBits(v, int(l))
}

// WriteGamma0 appends γ(v+1), extending the code to v ≥ 0.
func (w *BitWriter) WriteGamma0(v uint64) { w.WriteGamma(v + 1) }

// Bytes returns the accumulated stream, zero-padded to a byte boundary.
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// BitReader consumes a bit stream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps a byte stream.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ErrOutOfBits reports reading past the end of the stream.
var ErrOutOfBits = errors.New("graphcomp: read past end of bit stream")

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (uint, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	bit := uint(r.buf[byteIdx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

// ReadBits consumes n bits into the low end of the result.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUnary consumes zeros up to a one and returns the zero count.
func (r *BitReader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			return v, nil
		}
		v++
		if v > 64*uint64(len(r.buf))+64 {
			return 0, fmt.Errorf("graphcomp: runaway unary code")
		}
	}
}

// ReadGamma consumes one γ code (v ≥ 1).
func (r *BitReader) ReadGamma() (uint64, error) {
	l, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if l > 63 {
		return 0, fmt.Errorf("graphcomp: γ length %d too large", l)
	}
	rest, err := r.ReadBits(int(l))
	if err != nil {
		return 0, err
	}
	return 1<<l | rest, nil
}

// ReadGamma0 consumes one γ₀ code (v ≥ 0).
func (r *BitReader) ReadGamma0() (uint64, error) {
	v, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}

// BitPos returns the current read position in bits.
func (r *BitReader) BitPos() int { return r.pos }

// ZigZag maps a signed delta to an unsigned code (0,−1,1,−2,2 → 0,1,2,3,4).
func ZigZag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
