package graphcomp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMinimalBinaryRoundtrip(t *testing.T) {
	for _, r := range []uint64{1, 2, 3, 5, 7, 8, 100, 1023, 1025} {
		for m := uint64(0); m < r && m < 200; m++ {
			w := NewBitWriter()
			w.WriteMinimalBinary(m, r)
			br := NewBitReader(w.Bytes())
			got, err := br.ReadMinimalBinary(r)
			if err != nil {
				t.Fatalf("r=%d m=%d: %v", r, m, err)
			}
			if got != m {
				t.Fatalf("r=%d: wrote %d read %d", r, m, got)
			}
		}
	}
}

func TestMinimalBinaryIsMinimal(t *testing.T) {
	// For r a power of two, every value takes exactly log₂ r bits; for
	// other r, small values take one bit less.
	w := NewBitWriter()
	w.WriteMinimalBinary(0, 8)
	if w.Len() != 3 {
		t.Errorf("range 8 took %d bits, want 3", w.Len())
	}
	w2 := NewBitWriter()
	w2.WriteMinimalBinary(0, 5) // cut = 8−5 = 3, so 0,1,2 take 2 bits
	if w2.Len() != 2 {
		t.Errorf("small value in range 5 took %d bits, want 2", w2.Len())
	}
	w3 := NewBitWriter()
	w3.WriteMinimalBinary(4, 5) // large values take 3 bits
	if w3.Len() != 3 {
		t.Errorf("large value in range 5 took %d bits, want 3", w3.Len())
	}
}

func TestZetaRoundtripQuick(t *testing.T) {
	for _, k := range []uint{1, 2, 3, 5} {
		k := k
		f := func(v uint32) bool {
			x := uint64(v) + 1
			w := NewBitWriter()
			w.WriteZeta(k, x)
			r := NewBitReader(w.Bytes())
			got, err := r.ReadZeta(k)
			return err == nil && got == x
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestZetaKnownLengths(t *testing.T) {
	// ζ_1 is exactly γ: compare lengths on a range of values.
	for v := uint64(1); v < 200; v++ {
		wg := NewBitWriter()
		wg.WriteGamma(v)
		wz := NewBitWriter()
		wz.WriteZeta(1, v)
		if wg.Len() != wz.Len() {
			t.Fatalf("v=%d: γ %d bits, ζ₁ %d bits", v, wg.Len(), wz.Len())
		}
	}
}

func TestZetaBeatsGammaOnPowerLaw(t *testing.T) {
	// Draw gaps from a heavy-tailed distribution (the regime webgraph's
	// ζ₃ targets) and compare total coded size.
	rng := rand.New(rand.NewSource(13))
	var gBits, zBits int
	for i := 0; i < 5000; i++ {
		// Discrete Pareto with tail exponent 0.3 (density exponent
		// ≈1.3, the heavy-tailed regime ζ₃ targets): x = ⌊u^{-1/0.3}⌋.
		u := rng.Float64()
		x := uint64(math.Pow(u, -1/0.3))
		if x == 0 {
			x = 1
		}
		if x > 1<<40 {
			x = 1 << 40
		}
		wg := NewBitWriter()
		wg.WriteGamma(x)
		gBits += wg.Len()
		wz := NewBitWriter()
		wz.WriteZeta(3, x)
		zBits += wz.Len()
	}
	if zBits >= gBits {
		t.Errorf("ζ₃ %d bits not below γ %d bits on power-law gaps", zBits, gBits)
	}
}

func TestZetaPanicsAndErrors(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ζ(0 value) must panic")
			}
		}()
		NewBitWriter().WriteZeta(3, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ζ k=0 must panic")
			}
		}()
		NewBitWriter().WriteZeta(0, 5)
	}()
	if _, err := NewBitReader([]byte{0xff}).ReadZeta(0); err == nil {
		t.Error("read with k=0 accepted")
	}
}

func TestEncodeDecodeWithZetaResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ids, lists := randomLists(rng, 150, 12, 100000, 0.6)
	for _, cfg := range []Config{
		{Window: DefaultWindow, Residuals: ZetaCode},
		{Window: 0, Residuals: ZetaCode, ZetaK: 5},
		{Window: 3, Residuals: ZetaCode, ZetaK: 1},
	} {
		enc, err := Encode(ids, lists, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, gotLists, err := Decode(enc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotIDs, ids) {
			t.Fatal("ids differ")
		}
		for i := range lists {
			if len(lists[i]) == 0 && len(gotLists[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(gotLists[i], lists[i]) {
				t.Fatalf("cfg %+v list %d differs", cfg, i)
			}
		}
	}
}

func TestMismatchedCodecFails(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids, lists := randomLists(rng, 40, 10, 100000, 0.3)
	enc, err := Encode(ids, lists, Config{Window: 2, Residuals: ZetaCode})
	if err != nil {
		t.Fatal(err)
	}
	// Decoding ζ-coded residuals as γ must fail or mis-decode — it must
	// not silently return the original lists.
	gotIDs, gotLists, err := Decode(enc, Config{Window: 2, Residuals: GammaCode})
	if err == nil && reflect.DeepEqual(gotIDs, ids) {
		same := true
		for i := range lists {
			if !reflect.DeepEqual(gotLists[i], lists[i]) {
				same = false
				break
			}
		}
		if same {
			t.Error("codec mismatch decoded identically — codes are not actually different")
		}
	}
}

func TestUnknownCodeRejected(t *testing.T) {
	if _, err := Encode(nil, nil, Config{Residuals: Code(9)}); err == nil {
		t.Error("unknown code accepted by Encode")
	}
	if _, _, err := Decode(&Encoded{}, Config{Residuals: Code(9)}); err == nil {
		t.Error("unknown code accepted by Decode")
	}
}

func TestZetaImprovesWebgraphRatio(t *testing.T) {
	// On web-like lists with large ID gaps, ζ₃ residuals should not be
	// worse than γ overall (webgraph's reason for defaulting to ζ).
	rng := rand.New(rand.NewSource(31))
	ids, lists := randomLists(rng, 400, 25, 5_000_000, 0.7)
	encG, err := Encode(ids, lists, Config{Window: DefaultWindow})
	if err != nil {
		t.Fatal(err)
	}
	encZ, err := Encode(ids, lists, Config{Window: DefaultWindow, Residuals: ZetaCode})
	if err != nil {
		t.Fatal(err)
	}
	if float64(encZ.BitLen) > 1.02*float64(encG.BitLen) {
		t.Errorf("ζ stream %d bits much larger than γ %d", encZ.BitLen, encG.BitLen)
	}
	t.Logf("γ %d bits, ζ₃ %d bits", encG.BitLen, encZ.BitLen)
}
