package graphcomp_test

import (
	"fmt"

	"pareto/internal/workloads/graphcomp"
)

// Encode two near-identical adjacency lists: the second copies the
// first through the reference window, so the pair compresses far
// below its raw 32-bit-per-edge size.
func ExampleEncode() {
	ids := []uint32{100, 101}
	lists := [][]uint32{
		{7, 11, 13, 17, 19, 23, 29, 31},
		{7, 11, 13, 17, 19, 23, 29, 37},
	}
	enc, err := graphcomp.Encode(ids, lists, graphcomp.Config{Window: graphcomp.DefaultWindow})
	if err != nil {
		panic(err)
	}
	_, back, err := graphcomp.Decode(enc, graphcomp.Config{Window: graphcomp.DefaultWindow})
	if err != nil {
		panic(err)
	}
	raw := graphcomp.RawBits(ids, lists)
	fmt.Printf("decoded %d lists, compressed %d of %d raw bits\n",
		len(back), enc.CompressedBits(), raw)
	// Output:
	// decoded 2 lists, compressed 118 of 640 raw bits
}
