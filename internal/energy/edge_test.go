package energy

import (
	"math"
	"testing"
)

// nightTrace returns a generated trace whose leading steps carry zero
// power (it starts at local solar midnight, so the sun is down for the
// first hours of day one).
func nightTrace(t *testing.T, hours int) *Trace {
	t.Helper()
	loc := GoogleDatacenterLocations()[0]
	tr, err := GenerateTrace(loc, DefaultPanel(), 172, hours)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Power[0] != 0 || tr.Power[1] != 0 {
		t.Fatalf("trace does not start in darkness: %v", tr.Power[:4])
	}
	return tr
}

// TestZeroIrradianceWindow: across a window where the trace supplies
// no green power, the grid covers the entire draw and the green
// integral is exactly zero.
func TestZeroIrradianceWindow(t *testing.T) {
	tr := nightTrace(t, 48)
	const watts = 300.0
	const dur = 2 * 3600.0
	if got := tr.Energy(0, dur); got != 0 {
		t.Errorf("green energy over dark window = %v, want 0", got)
	}
	if got := tr.MeanPower(0, dur); got != 0 {
		t.Errorf("mean green power over dark window = %v, want 0", got)
	}
	if got, want := DirtyEnergy(watts, tr, 0, dur), watts*dur; got != want {
		t.Errorf("dirty energy over dark window = %v, want %v", got, want)
	}
}

// TestTraceHoldPastEnd: offsets beyond the trace hold the final step's
// power, consistently across PowerAt, Energy and DirtyEnergy.
func TestTraceHoldPastEnd(t *testing.T) {
	// A synthetic trace makes the held value unambiguous.
	tr := &Trace{StepSeconds: 3600, Power: []float64{0, 100, 250}}
	end := tr.Duration()
	last := tr.Power[len(tr.Power)-1]

	if got := tr.PowerAt(end + 5000); got != last {
		t.Errorf("PowerAt past end = %v, want %v", got, last)
	}
	const dur = 1800.0
	if got, want := tr.Energy(end+7200, dur), last*dur; got != want {
		t.Errorf("Energy past end = %v, want %v", got, want)
	}
	// Draw above the held supply: the shortfall is dirty.
	const watts = 400.0
	if got, want := DirtyEnergy(watts, tr, end+7200, dur), (watts-last)*dur; got != want {
		t.Errorf("DirtyEnergy past end = %v, want %v", got, want)
	}
	// A window straddling the end: in-trace part plus held tail.
	from := end - 1800
	wantGreen := last*1800 + last*1800
	if got := tr.Energy(from, 3600); got != wantGreen {
		t.Errorf("Energy straddling end = %v, want %v", got, wantGreen)
	}
}

// TestTraceGenerationWrapsYear: a trace starting late in the year rolls
// the solar geometry and weather process over the day-365 boundary
// without blowing up, and stays deterministic.
func TestTraceGenerationWrapsYear(t *testing.T) {
	loc := GoogleDatacenterLocations()[1]
	tr, err := GenerateTrace(loc, DefaultPanel(), 365, 72)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.Power {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			t.Fatalf("step %d power = %v", i, p)
		}
	}
	// Day two of the trace is day 1 of the next year: the sun still
	// rises — some mid-trace step must carry power.
	if tr.Peak() <= 0 {
		t.Error("no daylight across the year boundary")
	}
	again, err := GenerateTrace(loc, DefaultPanel(), 365, 72)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Power {
		if tr.Power[i] != again.Power[i] {
			t.Fatalf("step %d not deterministic: %v vs %v", i, tr.Power[i], again.Power[i])
		}
	}
}

// greenUsed integrates min(watts, green) over [from, from+dur) against
// the trace directly — an independent reimplementation of the supply
// actually consumed, stepping exactly on trace boundaries.
func greenUsed(watts float64, tr *Trace, from, dur float64) float64 {
	var used float64
	end := from + dur
	cur := from
	if cur < 0 {
		cur = 0
	}
	for cur < end {
		i := int(cur / tr.StepSeconds)
		green := tr.Power[len(tr.Power)-1]
		stepEnd := end
		if i < len(tr.Power) {
			green = tr.Power[i]
			stepEnd = float64(i+1) * tr.StepSeconds
			if stepEnd > end {
				stepEnd = end
			}
		}
		if green > watts {
			green = watts
		}
		used += green * (stepEnd - cur)
		cur = stepEnd
	}
	return used
}

// TestOffsetAlignmentIdentity: for any trace offset — step-aligned,
// mid-step, boundary-straddling, past the end — the dirty accounting in
// power.go and the green trace in solar.go must partition the draw:
// dirty + min(watts, green) integrates to exactly watts·dur.
func TestOffsetAlignmentIdentity(t *testing.T) {
	tr := nightTrace(t, 48)
	const watts = 350.0
	const dur = 6 * 3600.0
	offsets := []float64{
		0,                // trace start, step-aligned
		12 * 3600,        // noon, step-aligned
		12*3600 + 17,     // mid-step
		10*3600 + 1799.5, // fractional, straddles many boundaries
		47 * 3600,        // last step, runs past the end
		60 * 3600,        // entirely past the end
	}
	for _, off := range offsets {
		dirty := DirtyEnergy(watts, tr, off, dur)
		used := greenUsed(watts, tr, off, dur)
		want := watts * dur
		if got := dirty + used; math.Abs(got-want) > want*1e-9 {
			t.Errorf("offset %v: dirty %v + green-used %v = %v, want %v", off, dirty, used, got, want)
		}
	}
}

// TestNegativeOffsets: time before the trace has no green supply —
// Energy credits nothing and DirtyEnergy bills the full draw — so the
// partition identity extends to negative offsets too, including the
// fractional ones int truncation used to misfile into step 0.
func TestNegativeOffsets(t *testing.T) {
	tr := &Trace{StepSeconds: 3600, Power: []float64{200, 200, 200}}
	const watts = 300.0

	if got := tr.PowerAt(-500); got != tr.Power[0] {
		t.Errorf("PowerAt(-500) = %v, want clamp to first step %v", got, tr.Power[0])
	}
	// Window entirely before the trace.
	if got := tr.Energy(-7200, 3600); got != 0 {
		t.Errorf("pre-trace green = %v, want 0", got)
	}
	if got, want := DirtyEnergy(watts, tr, -7200, 3600), watts*3600.0; got != want {
		t.Errorf("pre-trace dirty = %v, want %v", got, want)
	}
	// Fractional negative offset straddling t=0: half the window dark,
	// half supplied at 200 W.
	if got, want := tr.Energy(-1800, 3600), 200*1800.0; got != want {
		t.Errorf("straddling green = %v, want %v", got, want)
	}
	if got, want := DirtyEnergy(watts, tr, -1800, 3600), watts*1800+(watts-200)*1800; got != want {
		t.Errorf("straddling dirty = %v, want %v", got, want)
	}
}
