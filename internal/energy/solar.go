// Package energy models per-node green-energy availability and dirty
// (grid) energy consumption, standing in for the NREL PVWATTS
// simulator the paper drives (§III-B, §V-A).
//
// The paper's pipeline needs, per node, a renewable power trace
// GE(t) = p(w(t))·B(t), where B(t) is production under ideal sunny
// conditions, w(t) is cloud cover and p is an attenuation factor.
// We produce exactly that shape from first principles:
//
//   - B(t): solar-geometry clear-sky irradiance (declination, hour
//     angle, zenith via the Haurwitz model) times the panel spec;
//   - w(t): a seeded seasonal + AR(1) stochastic cloud process per
//     location, mimicking a weather database;
//   - p(w) = 1 − 0.75·w^3.4, the Kasten–Czeplak attenuation.
//
// Everything is deterministic given the location seed, so experiments
// are reproducible anywhere, which is the property that matters for
// the framework (it only ever consumes the trace).
package energy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Location describes a datacenter site hosting solar capacity.
type Location struct {
	// Name identifies the site in reports.
	Name string
	// LatitudeDeg is the geographic latitude in degrees (north positive).
	LatitudeDeg float64
	// MeanCloud is the baseline mean cloud-cover fraction in [0, 1].
	MeanCloud float64
	// CloudSeed drives the synthetic weather process.
	CloudSeed int64
}

// GoogleDatacenterLocations are the four sites used to induce
// green-energy heterogeneity, mirroring §V-A's four Google datacenter
// locations. Coordinates are the real sites; cloudiness baselines are
// climatological ballparks.
func GoogleDatacenterLocations() []Location {
	return []Location{
		{Name: "the-dalles-or", LatitudeDeg: 45.59, MeanCloud: 0.55, CloudSeed: 101},
		{Name: "council-bluffs-ia", LatitudeDeg: 41.26, MeanCloud: 0.45, CloudSeed: 202},
		{Name: "berkeley-county-sc", LatitudeDeg: 33.19, MeanCloud: 0.40, CloudSeed: 303},
		{Name: "mayes-county-ok", LatitudeDeg: 36.30, MeanCloud: 0.35, CloudSeed: 404},
	}
}

// Panel is a PV installation specification, the input PVWATTS takes.
type Panel struct {
	// AreaM2 is the collector area in square meters.
	AreaM2 float64
	// Efficiency is the cell efficiency in (0, 1].
	Efficiency float64
	// Derate folds in inverter and wiring losses, in (0, 1].
	Derate float64
}

// DefaultPanel sizes the installation so a sunny noon roughly covers
// one server's full draw (~450 W peak), matching the paper's regime
// where green supply is material but not unconditionally sufficient.
func DefaultPanel() Panel {
	return Panel{AreaM2: 3.0, Efficiency: 0.20, Derate: 0.85}
}

// Validate checks panel parameters.
func (p Panel) Validate() error {
	if p.AreaM2 <= 0 || p.Efficiency <= 0 || p.Efficiency > 1 || p.Derate <= 0 || p.Derate > 1 {
		return fmt.Errorf("energy: invalid panel %+v", p)
	}
	return nil
}

// SolarDeclinationDeg returns the solar declination in degrees for a
// day of year (1–365), via Cooper's formula.
func SolarDeclinationDeg(dayOfYear int) float64 {
	return 23.45 * math.Sin(2*math.Pi*float64(284+dayOfYear)/365)
}

// CosZenith returns the cosine of the solar zenith angle at the given
// latitude, day of year, and local solar hour (0–24). Negative values
// (sun below horizon) are clamped to 0.
func CosZenith(latDeg float64, dayOfYear int, hour float64) float64 {
	lat := latDeg * math.Pi / 180
	dec := SolarDeclinationDeg(dayOfYear) * math.Pi / 180
	hourAngle := (hour - 12) * 15 * math.Pi / 180
	c := math.Sin(lat)*math.Sin(dec) + math.Cos(lat)*math.Cos(dec)*math.Cos(hourAngle)
	if c < 0 {
		return 0
	}
	return c
}

// ClearSkyIrradiance returns the global horizontal irradiance in W/m²
// under cloudless conditions (Haurwitz model): 1098·cosθz·exp(−0.057/cosθz).
func ClearSkyIrradiance(latDeg float64, dayOfYear int, hour float64) float64 {
	cz := CosZenith(latDeg, dayOfYear, hour)
	if cz <= 0 {
		return 0
	}
	return 1098 * cz * math.Exp(-0.057/cz)
}

// CloudAttenuation is the Kasten–Czeplak factor p(w) = 1 − 0.75·w^3.4
// mapping cloud cover w ∈ [0,1] to the fraction of clear-sky
// irradiance that reaches the ground.
func CloudAttenuation(w float64) float64 {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	return 1 - 0.75*math.Pow(w, 3.4)
}

// CloudModel is the synthetic weather process for a location: an AR(1)
// walk around a seasonal mean. It replaces PVWATTS's weather database.
type CloudModel struct {
	loc Location
	rho float64
	sig float64
}

// NewCloudModel builds the weather process for a location.
func NewCloudModel(loc Location) *CloudModel {
	return &CloudModel{loc: loc, rho: 0.92, sig: 0.08}
}

// SeasonalMean returns the expected cloud cover on a day of year:
// baseline plus a winter-peaking annual cycle.
func (m *CloudModel) SeasonalMean(dayOfYear int) float64 {
	s := m.loc.MeanCloud + 0.15*math.Cos(2*math.Pi*float64(dayOfYear-15)/365)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// HourlySeries generates cloud-cover values for consecutive hours
// starting at (dayOfYear, startHour). Deterministic per location seed.
func (m *CloudModel) HourlySeries(dayOfYear int, startHour, hours int) []float64 {
	rng := rand.New(rand.NewSource(m.loc.CloudSeed))
	// Burn the process in so the series start does not depend on the
	// initial condition.
	w := m.SeasonalMean(dayOfYear)
	for i := 0; i < 48; i++ {
		w = m.step(w, dayOfYear, rng)
	}
	out := make([]float64, hours)
	day, hr := dayOfYear, startHour
	for i := range out {
		w = m.step(w, day, rng)
		out[i] = w
		hr++
		if hr >= 24 {
			hr = 0
			day++
			if day > 365 {
				day = 1
			}
		}
	}
	return out
}

func (m *CloudModel) step(w float64, day int, rng *rand.Rand) float64 {
	mu := m.SeasonalMean(day)
	w = mu + m.rho*(w-mu) + m.sig*rng.NormFloat64()
	if w < 0 {
		return 0
	}
	if w > 1 {
		return 1
	}
	return w
}

// Trace is an hourly green-power trace for one site: Power[i] is the
// average PV output in watts during hour i of the trace. The paper
// notes the per-hour PVWATTS averages can be rescaled to per-second
// precision; Energy and MeanPower below interpolate inside hours.
type Trace struct {
	// StepSeconds is the trace resolution (3600 for hourly).
	StepSeconds float64
	// Power holds average watts per step.
	Power []float64
}

// ErrEmptyTrace is returned when generating or querying an empty trace.
var ErrEmptyTrace = errors.New("energy: empty trace")

// GenerateTrace produces an hours-long hourly trace for the location
// and panel, starting at local solar midnight of dayOfYear.
func GenerateTrace(loc Location, panel Panel, dayOfYear, hours int) (*Trace, error) {
	if err := panel.Validate(); err != nil {
		return nil, err
	}
	if hours <= 0 {
		return nil, ErrEmptyTrace
	}
	clouds := NewCloudModel(loc).HourlySeries(dayOfYear, 0, hours)
	tr := &Trace{StepSeconds: 3600, Power: make([]float64, hours)}
	day, hr := dayOfYear, 0
	for i := 0; i < hours; i++ {
		// Sample mid-hour irradiance as the hourly average.
		ghi := ClearSkyIrradiance(loc.LatitudeDeg, day, float64(hr)+0.5)
		ghi *= CloudAttenuation(clouds[i])
		tr.Power[i] = ghi * panel.AreaM2 * panel.Efficiency * panel.Derate
		hr++
		if hr >= 24 {
			hr = 0
			day++
			if day > 365 {
				day = 1
			}
		}
	}
	return tr, nil
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 {
	return float64(len(t.Power)) * t.StepSeconds
}

// PowerAt returns the green power (W) available at offset seconds from
// the trace start. Offsets beyond the trace clamp to the final step;
// negative offsets clamp to the first.
func (t *Trace) PowerAt(offset float64) float64 {
	if len(t.Power) == 0 {
		return 0
	}
	i := int(offset / t.StepSeconds)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Power) {
		i = len(t.Power) - 1
	}
	return t.Power[i]
}

// Energy integrates green energy (joules) over [from, from+dur)
// seconds, interpolating partial steps.
func (t *Trace) Energy(from, dur float64) float64 {
	if dur <= 0 || len(t.Power) == 0 {
		return 0
	}
	var total float64
	end := from + dur
	cur := from
	// Before the trace there is no green supply: skip straight to t=0
	// (int truncation toward zero would otherwise misfile a fractional
	// negative offset into step 0 and credit green for pre-trace time).
	if cur < 0 {
		if end <= 0 {
			return 0
		}
		cur = 0
	}
	for cur < end {
		i := int(cur / t.StepSeconds)
		if i >= len(t.Power) {
			// Beyond the trace: hold the last value (the framework
			// sizes traces to cover the job window, this is a guard).
			total += t.Power[len(t.Power)-1] * (end - cur)
			break
		}
		stepEnd := float64(i+1) * t.StepSeconds
		if stepEnd > end {
			stepEnd = end
		}
		total += t.Power[i] * (stepEnd - cur)
		cur = stepEnd
	}
	return total
}

// MeanPower returns the average green power (W) over [from, from+dur).
func (t *Trace) MeanPower(from, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	return t.Energy(from, dur) / dur
}

// Peak returns the maximum step power in the trace.
func (t *Trace) Peak() float64 {
	p := 0.0
	for _, v := range t.Power {
		if v > p {
			p = v
		}
	}
	return p
}
