package energy_test

import (
	"fmt"

	"pareto/internal/energy"
)

// Generate a solar trace for a datacenter site and compute a server's
// dirty-energy draw for a one-hour job at noon versus midnight.
func ExampleGenerateTrace() {
	loc := energy.GoogleDatacenterLocations()[3] // mayes-county-ok
	tr, err := energy.GenerateTrace(loc, energy.DefaultPanel(), 172, 24)
	if err != nil {
		panic(err)
	}
	server, err := energy.MachineType(4) // slowest type: 155 W
	if err != nil {
		panic(err)
	}
	noon := energy.DirtyEnergy(server.Watts(), tr, 12*3600, 3600)
	midnight := energy.DirtyEnergy(server.Watts(), tr, 0, 3600)
	fmt.Printf("midnight fully dirty: %v; noon cheaper than midnight: %v\n",
		midnight == server.Watts()*3600, noon < midnight)
	// Output:
	// midnight fully dirty: true; noon cheaper than midnight: true
}
