package energy

import (
	"math"
	"testing"
)

func TestSolarDeclinationRange(t *testing.T) {
	for d := 1; d <= 365; d++ {
		dec := SolarDeclinationDeg(d)
		if dec < -23.46 || dec > 23.46 {
			t.Fatalf("day %d: declination %v out of ±23.45", d, dec)
		}
	}
	// Summer solstice (~day 172) should be near +23.45; winter (~355) near −23.45.
	if SolarDeclinationDeg(172) < 23.3 {
		t.Errorf("solstice declination %v", SolarDeclinationDeg(172))
	}
	if SolarDeclinationDeg(355) > -23.3 {
		t.Errorf("winter declination %v", SolarDeclinationDeg(355))
	}
}

func TestCosZenith(t *testing.T) {
	// Midnight: sun below horizon → 0.
	if cz := CosZenith(40, 100, 0); cz != 0 {
		t.Errorf("midnight cos zenith %v", cz)
	}
	// Noon exceeds morning.
	noon := CosZenith(40, 172, 12)
	morning := CosZenith(40, 172, 8)
	if noon <= morning {
		t.Errorf("noon %v not above morning %v", noon, morning)
	}
	// Equator on equinox at noon: sun almost overhead.
	if cz := CosZenith(0, 81, 12); cz < 0.99 {
		t.Errorf("equinox equator noon cos zenith %v", cz)
	}
	// Bounds.
	for h := 0.0; h <= 24; h += 0.5 {
		if cz := CosZenith(45, 200, h); cz < 0 || cz > 1 {
			t.Fatalf("cos zenith %v out of [0,1]", cz)
		}
	}
}

func TestClearSkyIrradiance(t *testing.T) {
	if g := ClearSkyIrradiance(40, 172, 12); g < 800 || g > 1100 {
		t.Errorf("summer noon GHI = %v, want ~900–1000 W/m²", g)
	}
	if g := ClearSkyIrradiance(40, 172, 2); g != 0 {
		t.Errorf("night GHI = %v, want 0", g)
	}
	// Winter noon < summer noon at mid latitude.
	if ClearSkyIrradiance(45, 355, 12) >= ClearSkyIrradiance(45, 172, 12) {
		t.Error("winter GHI should be below summer GHI")
	}
}

func TestCloudAttenuation(t *testing.T) {
	if a := CloudAttenuation(0); a != 1 {
		t.Errorf("clear sky attenuation %v, want 1", a)
	}
	if a := CloudAttenuation(1); math.Abs(a-0.25) > 1e-12 {
		t.Errorf("overcast attenuation %v, want 0.25", a)
	}
	if CloudAttenuation(0.5) <= CloudAttenuation(0.9) {
		t.Error("attenuation must decrease with cloud cover")
	}
	// Clamping.
	if CloudAttenuation(-1) != 1 || math.Abs(CloudAttenuation(2)-0.25) > 1e-12 {
		t.Error("attenuation must clamp w into [0,1]")
	}
}

func TestCloudModelDeterministicAndBounded(t *testing.T) {
	loc := GoogleDatacenterLocations()[0]
	m := NewCloudModel(loc)
	a := m.HourlySeries(100, 0, 72)
	b := m.HourlySeries(100, 0, 72)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cloud series not deterministic")
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("cloud cover %v out of [0,1]", a[i])
		}
	}
	// Different seeds → different series.
	loc2 := loc
	loc2.CloudSeed++
	c := NewCloudModel(loc2).HourlySeries(100, 0, 72)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical weather")
	}
}

func TestSeasonalMeanBounds(t *testing.T) {
	m := NewCloudModel(Location{MeanCloud: 0.95})
	for d := 1; d <= 365; d += 30 {
		if s := m.SeasonalMean(d); s < 0 || s > 1 {
			t.Fatalf("seasonal mean %v out of bounds", s)
		}
	}
}

func TestGenerateTraceShape(t *testing.T) {
	loc := GoogleDatacenterLocations()[1]
	tr, err := GenerateTrace(loc, DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Power) != 48 {
		t.Fatalf("trace length %d", len(tr.Power))
	}
	if tr.Duration() != 48*3600 {
		t.Errorf("duration %v", tr.Duration())
	}
	// Nights dark, days lit.
	if tr.Power[2] != 0 {
		t.Errorf("2am power %v, want 0", tr.Power[2])
	}
	if tr.Power[12] <= 0 {
		t.Errorf("noon power %v, want > 0", tr.Power[12])
	}
	if tr.Peak() <= 0 || tr.Peak() > 1100*3.0*0.20*0.85 {
		t.Errorf("peak %v implausible", tr.Peak())
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	loc := GoogleDatacenterLocations()[0]
	if _, err := GenerateTrace(loc, Panel{}, 1, 24); err == nil {
		t.Error("invalid panel accepted")
	}
	if _, err := GenerateTrace(loc, DefaultPanel(), 1, 0); err == nil {
		t.Error("zero hours accepted")
	}
}

func TestTraceEnergyIntegration(t *testing.T) {
	tr := &Trace{StepSeconds: 3600, Power: []float64{100, 200, 300}}
	// Full first hour: 100 W × 3600 s.
	if e := tr.Energy(0, 3600); math.Abs(e-360000) > 1e-6 {
		t.Errorf("first hour energy %v", e)
	}
	// Half of hour 0 plus half of hour 1: 50·3600/2... (100·1800 + 200·1800).
	if e := tr.Energy(1800, 3600); math.Abs(e-(100*1800+200*1800)) > 1e-6 {
		t.Errorf("straddling energy %v", e)
	}
	// Beyond the trace holds the last value.
	if e := tr.Energy(3*3600, 100); math.Abs(e-300*100) > 1e-6 {
		t.Errorf("tail energy %v", e)
	}
	// Zero/negative durations.
	if tr.Energy(0, 0) != 0 || tr.Energy(0, -5) != 0 {
		t.Error("non-positive duration must give 0")
	}
	// MeanPower consistency.
	if mp := tr.MeanPower(0, 2*3600); math.Abs(mp-150) > 1e-9 {
		t.Errorf("mean power %v, want 150", mp)
	}
}

func TestTracePowerAt(t *testing.T) {
	tr := &Trace{StepSeconds: 3600, Power: []float64{10, 20}}
	if tr.PowerAt(-5) != 10 || tr.PowerAt(0) != 10 || tr.PowerAt(3600) != 20 || tr.PowerAt(1e9) != 20 {
		t.Error("PowerAt clamping wrong")
	}
	empty := &Trace{StepSeconds: 3600}
	if empty.PowerAt(0) != 0 {
		t.Error("empty trace PowerAt must be 0")
	}
}

func TestMachineTypes(t *testing.T) {
	wantWatts := []float64{440, 345, 250, 155}
	for typ := 1; typ <= 4; typ++ {
		pm, err := MachineType(typ)
		if err != nil {
			t.Fatal(err)
		}
		if err := pm.Validate(); err != nil {
			t.Errorf("type %d invalid: %v", typ, err)
		}
		if w := pm.Watts(); w != wantWatts[typ-1] {
			t.Errorf("type %d watts %v, want %v (paper §V-A)", typ, w, wantWatts[typ-1])
		}
	}
	if _, err := MachineType(0); err == nil {
		t.Error("type 0 accepted")
	}
	if _, err := MachineType(5); err == nil {
		t.Error("type 5 accepted")
	}
	if err := (PowerModel{Cores: 0}).Validate(); err == nil {
		t.Error("0-core model accepted")
	}
}

func TestDirtyEnergy(t *testing.T) {
	tr := &Trace{StepSeconds: 3600, Power: []float64{100, 500}}
	// Hour 0: draw 440, green 100 → 340 dirty W. Hour 1: green 500 > 440 → 0.
	d := DirtyEnergy(440, tr, 0, 2*3600)
	if math.Abs(d-340*3600) > 1e-6 {
		t.Errorf("dirty energy %v, want %v", d, 340.0*3600)
	}
	// Without a trace everything is dirty.
	if d := DirtyEnergy(200, nil, 0, 10); d != 2000 {
		t.Errorf("no-trace dirty %v", d)
	}
	// Never negative.
	if d := DirtyEnergy(50, tr, 3600, 3600); d != 0 {
		t.Errorf("surplus hour dirty %v, want 0", d)
	}
	if DirtyEnergy(100, tr, 0, -1) != 0 {
		t.Error("negative duration must give 0")
	}
}

func TestDirtyRate(t *testing.T) {
	tr := &Trace{StepSeconds: 3600, Power: []float64{100, 100}}
	if k := DirtyRate(440, tr, 0, 7200); math.Abs(k-340) > 1e-9 {
		t.Errorf("k = %v, want 340", k)
	}
	if k := DirtyRate(50, tr, 0, 7200); k != 0 {
		t.Errorf("surplus k = %v, want clamp to 0", k)
	}
	if k := DirtyRate(75, nil, 0, 100); k != 75 {
		t.Errorf("no-trace k = %v, want full draw", k)
	}
}

func TestLocationHeterogeneity(t *testing.T) {
	// The four sites must actually differ in mean availability —
	// otherwise the energy dimension of the experiments is degenerate.
	locs := GoogleDatacenterLocations()
	if len(locs) != 4 {
		t.Fatalf("%d locations, want 4", len(locs))
	}
	means := make([]float64, len(locs))
	for i, loc := range locs {
		tr, err := GenerateTrace(loc, DefaultPanel(), 172, 7*24)
		if err != nil {
			t.Fatal(err)
		}
		means[i] = tr.MeanPower(0, tr.Duration())
	}
	for i := 0; i < len(means); i++ {
		for j := i + 1; j < len(means); j++ {
			if math.Abs(means[i]-means[j]) < 1 {
				t.Errorf("locations %d and %d have near-identical mean power %v vs %v",
					i, j, means[i], means[j])
			}
		}
	}
}

func TestForecastTrace(t *testing.T) {
	loc := GoogleDatacenterLocations()[1]
	tr, err := GenerateTrace(loc, DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	fc := ForecastTrace(tr, 0.15, 9)
	if len(fc.Power) != len(tr.Power) {
		t.Fatal("forecast length differs")
	}
	// Deterministic per seed; different seeds differ.
	fc2 := ForecastTrace(tr, 0.15, 9)
	fc3 := ForecastTrace(tr, 0.15, 10)
	same9, same10 := true, true
	var meanErr, meanPow float64
	for i := range fc.Power {
		if fc.Power[i] < 0 {
			t.Fatal("negative forecast power")
		}
		if fc.Power[i] != fc2.Power[i] {
			same9 = false
		}
		if fc.Power[i] != fc3.Power[i] {
			same10 = false
		}
		meanErr += math.Abs(fc.Power[i] - tr.Power[i])
		meanPow += tr.Power[i]
	}
	if !same9 {
		t.Error("forecast not deterministic per seed")
	}
	if same10 {
		t.Error("different seeds identical")
	}
	// Mean absolute error roughly matches the requested noise level.
	if meanErr/meanPow > 0.3 {
		t.Errorf("forecast error fraction %.2f implausibly large", meanErr/meanPow)
	}
	// Dirty rate estimated from the forecast tracks the true rate.
	trueK := DirtyRate(440, tr, 10*3600, 4*3600)
	fcK := DirtyRate(440, fc, 10*3600, 4*3600)
	if math.Abs(trueK-fcK) > 0.3*440 {
		t.Errorf("forecast dirty rate %v far from true %v", fcK, trueK)
	}
	if ForecastTrace(nil, 0.1, 1) != nil {
		t.Error("nil trace must forecast to nil")
	}
}
