package energy

import (
	"fmt"
	"math/rand"
)

// PowerModel is a server's electrical draw model: a fixed base plus a
// per-active-core term, following the paper's derivation from HP SL
// server specs (1200 W chassis, 12 × 95 W Xeons ⇒ 60 W base).
type PowerModel struct {
	// BaseWatts is the idle chassis draw.
	BaseWatts float64
	// PerCoreWatts is the draw of one active core's processor share.
	PerCoreWatts float64
	// Cores is the number of active cores.
	Cores int
}

// Watts returns the total draw E_i of the server while running.
func (p PowerModel) Watts() float64 {
	return p.BaseWatts + p.PerCoreWatts*float64(p.Cores)
}

// Validate checks the model parameters.
func (p PowerModel) Validate() error {
	if p.BaseWatts < 0 || p.PerCoreWatts < 0 || p.Cores < 1 {
		return fmt.Errorf("energy: invalid power model %+v", p)
	}
	return nil
}

// Paper §V-A constants: Intel Xeon processor power and the HP SL base.
const (
	// XeonWatts is the per-processor power used in §V-A.
	XeonWatts = 95
	// BaseWatts is the non-processor chassis power (1200 − 12·95).
	BaseWatts = 60
)

// MachineType reproduces the paper's four machine classes: type 1 is
// the fastest (relative speed 4x, 4 cores, 440 W) down to type 4
// (speed 1x, 1 core, 155 W).
func MachineType(t int) (PowerModel, error) {
	if t < 1 || t > 4 {
		return PowerModel{}, fmt.Errorf("energy: machine type %d, want 1..4", t)
	}
	cores := 5 - t
	return PowerModel{BaseWatts: BaseWatts, PerCoreWatts: XeonWatts, Cores: cores}, nil
}

// DirtyEnergy returns the joules drawn from the grid by a server with
// draw watts running for dur seconds against the green trace starting
// at offset from. Green supply beyond the draw is surplus, never a
// credit, so the result is nonnegative (integrated per trace step).
func DirtyEnergy(watts float64, tr *Trace, from, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	if tr == nil || len(tr.Power) == 0 {
		return watts * dur
	}
	var dirty float64
	end := from + dur
	cur := from
	// Pre-trace time has no green supply: the whole draw is dirty. This
	// mirrors Trace.Energy's clamp so green + dirty always sums to the
	// total draw, whatever the offset.
	if cur < 0 {
		if end <= 0 {
			return watts * dur
		}
		dirty += watts * -cur
		cur = 0
	}
	for cur < end {
		i := int(cur / tr.StepSeconds)
		var green float64
		var stepEnd float64
		if i >= len(tr.Power) {
			green = tr.Power[len(tr.Power)-1]
			stepEnd = end
		} else {
			green = tr.Power[i]
			stepEnd = float64(i+1) * tr.StepSeconds
			if stepEnd > end {
				stepEnd = end
			}
		}
		net := watts - green
		if net > 0 {
			dirty += net * (stepEnd - cur)
		}
		cur = stepEnd
	}
	return dirty
}

// ForecastTrace returns a forecast of a real trace: each step's power
// is perturbed by multiplicative noise of the given relative standard
// deviation, clamped nonnegative, as a weather forecast would be
// (paper §III-B predicts availability from forecast cloud cover; the
// framework must tolerate the forecast being off). Deterministic per
// seed.
func ForecastTrace(tr *Trace, relStd float64, seed int64) *Trace {
	if tr == nil {
		return nil
	}
	out := &Trace{StepSeconds: tr.StepSeconds, Power: make([]float64, len(tr.Power))}
	rng := rand.New(rand.NewSource(seed))
	for i, p := range tr.Power {
		v := p * (1 + relStd*rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		out.Power[i] = v
	}
	return out
}

// DirtyRate returns k_i, the node-specific mean dirty-power constant
// of §III-D's linearization: the server draw minus the mean green
// availability over the window, floored at zero (surplus green power
// cannot make dirty energy negative).
func DirtyRate(watts float64, tr *Trace, from, window float64) float64 {
	mean := 0.0
	if tr != nil {
		mean = tr.MeanPower(from, window)
	}
	k := watts - mean
	if k < 0 {
		return 0
	}
	return k
}
