package sim

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// resultBytes canonicalizes a Result for byte comparison: WallSec is
// real elapsed time and is the one field allowed to vary.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	res.WallSec = 0
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// Identical seed + workload must produce byte-identical decision
// traces and Results at GOMAXPROCS 1 and NumCPU (the CI race job runs
// this under -race as well): the engine is single-threaded and the
// (time, seq) order leaves nothing to the runtime scheduler.
func TestRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	nodes, rate, err := PaperNodes(8, 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := Generate(GenConfig{Process: Bursty, Rate: 60, Duration: 40, CostMean: 3e5, CostSpread: 0.6, FixedSec: 0.002, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		pol, err := PolicyByName("weighted-scoring")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Nodes: nodes, CostRate: rate, Offset: 6 * 3600, Policy: pol, RecordDecisions: true}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		return resultBytes(t, res)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	single := run()
	again := run()
	runtime.GOMAXPROCS(runtime.NumCPU())
	multi := run()
	if !bytes.Equal(single, again) {
		t.Error("same-procs reruns differ")
	}
	if !bytes.Equal(single, multi) {
		t.Error("GOMAXPROCS=1 and NumCPU runs differ")
	}
}

// The full pipeline — generator → sim → decision trace — must be a
// pure function of the seed for every policy and process.
func TestRunDeterministicPerPolicyAndProcess(t *testing.T) {
	nodes, rate, err := PaperNodes(5, 200, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []string{Poisson, Uniform, Bursty} {
		tasks, err := Generate(GenConfig{Process: proc, Rate: 30, Duration: 25, CostMean: 4e5, CostSpread: 0.3, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range PolicyNames() {
			var prev []byte
			for trial := 0; trial < 3; trial++ {
				pol, err := PolicyByName(name)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: pol, RecordDecisions: true}, tasks)
				if err != nil {
					t.Fatal(err)
				}
				got := resultBytes(t, res)
				if prev != nil && !bytes.Equal(prev, got) {
					t.Errorf("%s/%s: trial %d differs", proc, name, trial)
				}
				prev = got
			}
		}
	}
}

// Tasks handed to Run in shuffled order must still produce the same
// result when arrivals are distinct: Run sorts stably by arrival, so
// the input permutation is irrelevant.
func TestRunInputOrderIrrelevantForDistinctArrivals(t *testing.T) {
	nodes, rate, err := PaperNodes(4, 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := Generate(GenConfig{Process: Poisson, Rate: 50, Duration: 10, CostMean: 2e5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	run := func(ts []Task) []byte {
		res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: &GreedyStealing{}, RecordDecisions: true}, ts)
		if err != nil {
			t.Fatal(err)
		}
		return resultBytes(t, res)
	}
	want := run(tasks)
	reversed := make([]Task, len(tasks))
	for i, task := range tasks {
		reversed[len(tasks)-1-i] = task
	}
	if !bytes.Equal(want, run(reversed)) {
		t.Error("reversed input changed the result")
	}
}
