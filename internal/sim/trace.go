package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// taskRecord is the JSON-lines schema for recorded workload traces,
// one task per line:
//
//	{"arrival": 1.5, "cost": 2e6, "fixed": 0.25, "node": 3}
//
// fixed defaults to 0 and node to unpinned when absent. Blank lines
// and lines starting with '#' are skipped, so traces can carry
// provenance comments.
type taskRecord struct {
	Arrival float64 `json:"arrival"`
	Cost    float64 `json:"cost"`
	Fixed   float64 `json:"fixed,omitempty"`
	Node    *int    `json:"node,omitempty"`
}

// ReadTasks parses a recorded trace from r. Arrivals need not be
// sorted — Run sorts stably by arrival — but each must be finite and
// nonnegative (validated at Run).
func ReadTasks(r io.Reader) ([]Task, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var tasks []Task
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec taskRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("sim: trace line %d: %w", line, err)
		}
		t := Task{Arrival: rec.Arrival, Cost: rec.Cost, Fixed: rec.Fixed, Pin: -1}
		if rec.Node != nil {
			t.Pin = *rec.Node
		}
		tasks = append(tasks, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: reading trace: %w", err)
	}
	return tasks, nil
}

// WriteTasks records a task stream to w in the JSON-lines trace
// format. ReadTasks(WriteTasks(tasks)) round-trips exactly.
func WriteTasks(w io.Writer, tasks []Task) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range tasks {
		rec := taskRecord{Arrival: tasks[i].Arrival, Cost: tasks[i].Cost, Fixed: tasks[i].Fixed}
		if tasks[i].Pin >= 0 {
			pin := tasks[i].Pin
			rec.Node = &pin
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("sim: writing trace: %w", err)
		}
	}
	return bw.Flush()
}

// WriteDecisions records a decision trace to w, one JSON object per
// line, for counterfactual replay and head-to-head policy comparison.
func WriteDecisions(w io.Writer, decisions []Decision) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range decisions {
		if err := enc.Encode(&decisions[i]); err != nil {
			return fmt.Errorf("sim: writing decisions: %w", err)
		}
	}
	return bw.Flush()
}
