package sim

import (
	"pareto/internal/cluster"
	"pareto/internal/energy"
)

// Node is the simulator's model of one cluster node: the subset of
// cluster.NodeSpec the engine needs, with the power model collapsed to
// its constant draw. Speed scales abstract cost into service seconds;
// Trace supplies green-energy availability for the busy-interval
// integration.
type Node struct {
	// ID indexes the node within the simulated cluster.
	ID int
	// Name is a human-readable label carried into reports.
	Name string
	// Speed is the relative processing speed (cluster semantics:
	// service = cost / (Speed × CostRate)).
	Speed float64
	// Watts is the node's electrical draw while busy.
	Watts float64
	// Trace is the node's green-energy availability (nil = all dirty).
	Trace *energy.Trace
}

// FromCluster derives simulator node models and the cost→time
// calibration from an existing cluster, validating it first. This is
// the cluster-backed model source: a PaperCluster at any p can be
// simulated with millions of events in seconds.
func FromCluster(c *cluster.Cluster) ([]Node, float64, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	nodes := make([]Node, len(c.Nodes))
	for i := range c.Nodes {
		n := &c.Nodes[i]
		nodes[i] = Node{
			ID:    i,
			Name:  n.Name,
			Speed: n.Speed,
			Watts: n.Power.Watts(),
			Trace: n.Trace,
		}
	}
	return nodes, c.CostRate, nil
}

// PaperNodes builds a p-node paper-shaped cluster (four machine types
// × four datacenter sites, per-node solar traces of the given length
// starting at dayOfYear) and converts it into simulator models.
func PaperNodes(p, dayOfYear, hours int) ([]Node, float64, error) {
	c, err := cluster.PaperCluster(p, energy.DefaultPanel(), dayOfYear, hours)
	if err != nil {
		return nil, 0, err
	}
	return FromCluster(c)
}

// serviceTime converts a task's demand into seconds on a node:
// speed-scaled cost plus speed-independent fixed seconds. The float
// expression — cost / (speed × rate), then + fixed — mirrors
// cluster.SimTime + RunDetailed exactly so equivalence holds
// bit-for-bit, including the zero-cost and invalid-denominator guards.
func serviceTime(speed, costRate float64, t Task) float64 {
	svc := 0.0
	if t.Cost > 0 {
		denom := speed * costRate
		if denom > 0 {
			svc = t.Cost / denom
		}
	}
	return svc + t.Fixed
}
