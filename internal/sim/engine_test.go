package sim

import (
	"math/rand"
	"testing"
)

// Equal-timestamp events must pop in seq order no matter how they were
// pushed — the (time, seq) total-order invariant the determinism
// guarantee rests on.
func TestEventQueueTieBreakBySeq(t *testing.T) {
	const n = 64
	events := make([]event, n)
	for i := range events {
		events[i] = event{at: 1.5, seq: uint64(i), task: i}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(n)
		var q eventQueue
		for _, i := range perm {
			q.push(events[i])
		}
		for want := 0; want < n; want++ {
			e := q.pop()
			if e.seq != uint64(want) {
				t.Fatalf("trial %d: pop %d returned seq %d (insertion order %v)", trial, want, e.seq, perm)
			}
		}
		if q.len() != 0 {
			t.Fatalf("queue not drained")
		}
	}
}

// Mixed timestamps: time orders first, seq only breaks exact ties.
func TestEventQueueTimeOrder(t *testing.T) {
	var q eventQueue
	// Deliberately adversarial seq assignment: later times carry
	// smaller seqs.
	q.push(event{at: 3, seq: 0})
	q.push(event{at: 1, seq: 9})
	q.push(event{at: 2, seq: 5})
	q.push(event{at: 1, seq: 2})
	q.push(event{at: 2, seq: 4})
	want := []struct {
		at  float64
		seq uint64
	}{{1, 2}, {1, 9}, {2, 4}, {2, 5}, {3, 0}}
	for i, w := range want {
		e := q.pop()
		if e.at != w.at || e.seq != w.seq {
			t.Fatalf("pop %d = (%v, %d), want (%v, %d)", i, e.at, e.seq, w.at, w.seq)
		}
	}
}

// Random soak: pops must come out in strict (at, seq) order.
func TestEventQueueRandomSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	const n = 5000
	for i := 0; i < n; i++ {
		// Coarse timestamps force many ties.
		q.push(event{at: float64(rng.Intn(50)), seq: uint64(i)})
	}
	prev := q.pop()
	for i := 1; i < n; i++ {
		e := q.pop()
		if !prev.before(e) {
			t.Fatalf("pop %d: (%v,%d) not after (%v,%d)", i, e.at, e.seq, prev.at, prev.seq)
		}
		prev = e
	}
}
