package sim

import (
	"fmt"
	"math/rand"
)

// Task is one unit of simulated work.
type Task struct {
	// Arrival is the virtual second the task enters the system.
	Arrival float64
	// Cost is the abstract speed-scaled demand in cluster cost units.
	Cost float64
	// Fixed is the speed-independent service share in seconds (I/O and
	// other rate-limited work, cluster.TaskReport.FixedSeconds).
	Fixed float64
	// Pin ≥ 0 forces the task onto that node, bypassing the policy;
	// -1 (the generator default) routes through the policy.
	Pin int
}

// Arrival-process names accepted by Generate and the -sim-arrivals
// flag.
const (
	// Poisson draws exponential inter-arrivals of mean 1/Rate.
	Poisson = "poisson"
	// Uniform draws inter-arrivals uniform in [0, 2/Rate) (mean 1/Rate).
	Uniform = "uniform"
	// Bursty is a two-state Markov-modulated Poisson process (MMPP-2):
	// it alternates between a burst state at 3×Rate and a lull at
	// Rate/3, with exponentially distributed sojourns of mean 20/Rate —
	// on the order of tens of tasks per burst.
	Bursty = "bursty"
)

// GenConfig parameterizes a synthetic workload. Identical configs
// always generate identical task streams (seeded math/rand, no global
// state).
type GenConfig struct {
	// Process is the arrival process: Poisson, Uniform, or Bursty.
	Process string
	// Rate is the mean arrival rate in tasks per virtual second.
	Rate float64
	// Duration bounds the arrival window: tasks arrive in [0, Duration).
	Duration float64
	// CostMean is the mean abstract cost per task.
	CostMean float64
	// CostSpread draws costs uniform in CostMean·(1±CostSpread); must
	// be in [0, 1). Zero means every task costs exactly CostMean.
	CostSpread float64
	// FixedSec is the per-task speed-independent service time.
	FixedSec float64
	// Seed drives the generator; same seed ⇒ same stream.
	Seed int64
}

// Generate produces a task stream for the config: arrivals ascending
// in [0, Duration), costs drawn around CostMean, every task unpinned.
func Generate(cfg GenConfig) ([]Task, error) {
	if cfg.Process != Poisson && cfg.Process != Uniform && cfg.Process != Bursty {
		return nil, fmt.Errorf("sim: unknown arrival process %q (want %s, %s, or %s)", cfg.Process, Poisson, Uniform, Bursty)
	}
	if !(cfg.Rate > 0) {
		return nil, fmt.Errorf("sim: arrival rate %v, want > 0", cfg.Rate)
	}
	if !(cfg.Duration > 0) {
		return nil, fmt.Errorf("sim: duration %v, want > 0", cfg.Duration)
	}
	if !(cfg.CostMean > 0) {
		return nil, fmt.Errorf("sim: cost mean %v, want > 0", cfg.CostMean)
	}
	if cfg.CostSpread < 0 || cfg.CostSpread >= 1 {
		return nil, fmt.Errorf("sim: cost spread %v, want [0, 1)", cfg.CostSpread)
	}
	if cfg.FixedSec < 0 {
		return nil, fmt.Errorf("sim: fixed seconds %v, want >= 0", cfg.FixedSec)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var tasks []Task
	emit := func(at float64) {
		cost := cfg.CostMean
		if cfg.CostSpread > 0 {
			cost *= 1 + cfg.CostSpread*(2*rng.Float64()-1)
		}
		tasks = append(tasks, Task{Arrival: at, Cost: cost, Fixed: cfg.FixedSec, Pin: -1})
	}
	switch cfg.Process {
	case Poisson:
		for t := rng.ExpFloat64() / cfg.Rate; t < cfg.Duration; t += rng.ExpFloat64() / cfg.Rate {
			emit(t)
		}
	case Uniform:
		for t := rng.Float64() * 2 / cfg.Rate; t < cfg.Duration; t += rng.Float64() * 2 / cfg.Rate {
			emit(t)
		}
	case Bursty:
		sojourn := 20 / cfg.Rate
		burst := false
		t := 0.0
		next := rng.ExpFloat64() * sojourn
		for t < cfg.Duration {
			r := cfg.Rate / 3
			if burst {
				r = 3 * cfg.Rate
			}
			dt := rng.ExpFloat64() / r
			if t+dt >= next {
				// The state flips before the candidate arrival; restart
				// the (memoryless) draw from the switch instant.
				t = next
				burst = !burst
				next += rng.ExpFloat64() * sojourn
				continue
			}
			t += dt
			if t < cfg.Duration {
				emit(t)
			}
		}
	}
	return tasks, nil
}
