package sim

import (
	"fmt"
	"testing"
)

// benchWorkload builds a ~halfMillion-task stream sized so the 16-node
// paper cluster runs at ~90% utilization: capacity is
// Σspeed × rate = 40e6 cost/s, demand is 72 tasks/s × 5e5 cost.
func benchWorkload(b *testing.B) ([]Node, float64, []Task) {
	b.Helper()
	nodes, rate, err := PaperNodes(16, 172, 48)
	if err != nil {
		b.Fatal(err)
	}
	tasks, err := Generate(GenConfig{
		Process:    Poisson,
		Rate:       72,
		Duration:   7000,
		CostMean:   5e5,
		CostSpread: 0.5,
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return nodes, rate, tasks
}

// BenchmarkSimMillionEvents drives ~1M events (half a million tasks,
// one arrival + one completion each) through the engine per iteration
// and reports the sustained event rate as ops/s. The acceptance floor
// is 1M events/sec single-core; CI archives the number in
// BENCH_sim.json via cmd/benchjson.
func BenchmarkSimMillionEvents(b *testing.B) {
	nodes, rate, tasks := benchWorkload(b)
	for _, name := range []string{"least-loaded", "greedy-stealing"} {
		b.Run(name, func(b *testing.B) {
			pol, err := PolicyByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: pol}, tasks)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "ops/s")
				b.ReportMetric(float64(events)/float64(b.N), "events/op")
			}
		})
	}
}

// BenchmarkSimScaleNodes sweeps cluster size at a fixed ~100k-task
// stream, exposing the per-decision O(nodes) policy scan.
func BenchmarkSimScaleNodes(b *testing.B) {
	tasks, err := Generate(GenConfig{Process: Poisson, Rate: 500, Duration: 200, CostMean: 5e5, CostSpread: 0.5, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", p), func(b *testing.B) {
			nodes, rate, err := PaperNodes(p, 172, 48)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: &GreedyStealing{}}, tasks)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "ops/s")
			}
		})
	}
}
