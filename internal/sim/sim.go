package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"pareto/internal/cluster"
	"pareto/internal/energy"
	"pareto/internal/telemetry"
)

// Config parameterizes one simulation run.
type Config struct {
	// Nodes are the simulated cluster's node models (FromCluster,
	// PaperNodes, or hand-built).
	Nodes []Node
	// CostRate is the cluster's cost→time calibration: abstract cost
	// units a speed-1.0 node retires per second.
	CostRate float64
	// Offset is the run's start position (seconds) within the energy
	// traces, as in Cluster.Run.
	Offset float64
	// Policy routes unpinned tasks. It may be nil only when every task
	// is pinned.
	Policy Policy
	// RecordDecisions captures one Decision per policy-routed task on
	// the Result, for counterfactual replay and head-to-head policy
	// comparison. Costs O(tasks × nodes) memory — leave off for
	// million-task sweeps.
	RecordDecisions bool
	// Telemetry, when non-nil, accrues sim_* counters, energy gauges,
	// and the queueing-delay histogram into the registry. nil disables
	// instrumentation (same nil-safe pattern as the rest of the
	// framework).
	Telemetry *telemetry.Registry
}

// Decision is one routing choice: which node got which task, when, and
// what every node's queue looked like at that instant.
type Decision struct {
	// Seq numbers policy decisions from 0 in routing order.
	Seq uint64 `json:"seq"`
	// Time is the virtual arrival time of the routed task.
	Time float64 `json:"time"`
	// Task indexes the arrival-sorted task stream.
	Task int `json:"task"`
	// Node is the chosen destination.
	Node int `json:"node"`
	// QueueDepths[i] is node i's pending-task count just before this
	// assignment.
	QueueDepths []int `json:"queue_depths"`
}

// Result summarizes one simulation run. It is a superset of
// cluster.Result: the embedded fields keep their meanings (NodeTimes
// is per-node busy seconds, Makespan is the virtual completion time of
// the last task, energies integrate the traces over busy intervals),
// and the sim adds workload, queueing-delay, and decision-trace views.
// WallSec and NodeWallSec report real elapsed time: the whole run for
// the former, zero per node (no real per-node execution happens).
type Result struct {
	cluster.Result
	// Policy names the routing policy ("" when every task was pinned).
	Policy string
	// Tasks is the number of tasks simulated.
	Tasks int
	// Events is the number of discrete events processed (2 × Tasks:
	// one arrival, one completion each).
	Events int64
	// NodeTasks[i] is the number of tasks node i served.
	NodeTasks []int
	// Wait is the queueing-delay histogram in virtual microseconds
	// (delay = service start − arrival; power-of-two buckets). Its
	// Mean/Quantile methods give summary statistics.
	Wait telemetry.HistogramSnapshot
	// MeanWaitSec and MaxWaitSec summarize queueing delay in seconds.
	MeanWaitSec float64
	MaxWaitSec  float64
	// Decisions is the per-decision trace (nil unless
	// Config.RecordDecisions).
	Decisions []Decision
}

// waitBounds are the queueing-delay histogram bucket bounds in virtual
// microseconds: powers of two from 1 µs to 2^30 µs (≈ 18 virtual
// minutes), overflow beyond.
var waitBounds = func() []int64 {
	out := make([]int64, 31)
	for i := range out {
		out[i] = 1 << i
	}
	return out
}()

// waitHist is a tiny fixed-bucket histogram over waitBounds, kept
// local so every Result carries a snapshot without requiring a
// telemetry registry.
type waitHist struct {
	counts [32]int64 // len(waitBounds)+1, last is overflow
	sum    int64
}

func (h *waitHist) observe(us int64) {
	idx := 0
	for idx < len(waitBounds) && us > waitBounds[idx] {
		idx++
	}
	h.counts[idx]++
	h.sum += us
}

func (h *waitHist) snapshot() telemetry.HistogramSnapshot {
	s := telemetry.HistogramSnapshot{
		Bounds: waitBounds,
		Counts: append([]int64(nil), h.counts[:]...),
		Sum:    h.sum,
	}
	for _, c := range h.counts {
		s.Count += c
	}
	return s
}

// interval is one contiguous busy stretch on a node's virtual
// timeline, in seconds relative to the run start.
type interval struct {
	start, end float64
}

// Run simulates the task stream over the configured nodes and returns
// the aggregated result. Deterministic: identical configs and
// workloads produce identical Results (modulo WallSec) and identical
// decision traces at any GOMAXPROCS — the engine is single-threaded by
// design, and the (time, seq) event order leaves nothing to scheduling
// chance.
//
// Tasks are sorted stably by arrival (ties keep input order). Each
// arrival is routed — by its Pin if ≥ 0, else by the policy — onto a
// node's FIFO queue; service starts when the node drains its backlog
// and lasts cost/(speed·rate) + fixed virtual seconds. Energy per node
// integrates the green trace over each merged busy interval, so idle
// gaps (night work waiting on bursts, say) are charged nothing.
func Run(cfg Config, tasks []Task) (*Result, error) {
	runStart := time.Now()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("sim: no nodes")
	}
	if !(cfg.CostRate > 0) || math.IsInf(cfg.CostRate, 1) {
		return nil, fmt.Errorf("sim: cost rate %v, want finite > 0", cfg.CostRate)
	}
	if math.IsNaN(cfg.Offset) || math.IsInf(cfg.Offset, 0) {
		return nil, fmt.Errorf("sim: offset %v, want finite", cfg.Offset)
	}
	for i := range cfg.Nodes {
		if s := cfg.Nodes[i].Speed; !(s > 0) || math.IsInf(s, 1) {
			return nil, fmt.Errorf("sim: node %d speed %v, want finite > 0", i, s)
		}
		if w := cfg.Nodes[i].Watts; !(w >= 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("sim: node %d watts %v, want finite >= 0", i, w)
		}
	}
	needPolicy := false
	for i := range tasks {
		t := &tasks[i]
		if !(t.Arrival >= 0) || math.IsInf(t.Arrival, 1) {
			return nil, fmt.Errorf("sim: task %d arrival %v, want finite >= 0", i, t.Arrival)
		}
		if !(t.Cost >= 0) || math.IsInf(t.Cost, 1) {
			return nil, fmt.Errorf("sim: task %d cost %v, want finite >= 0", i, t.Cost)
		}
		if !(t.Fixed >= 0) || math.IsInf(t.Fixed, 1) {
			return nil, fmt.Errorf("sim: task %d fixed %v, want finite >= 0", i, t.Fixed)
		}
		if t.Pin >= len(cfg.Nodes) {
			return nil, fmt.Errorf("sim: task %d pinned to node %d of %d", i, t.Pin, len(cfg.Nodes))
		}
		if t.Pin < 0 {
			needPolicy = true
		}
	}
	if needPolicy && cfg.Policy == nil {
		return nil, errors.New("sim: unpinned tasks but no policy")
	}

	// Stable sort by arrival: equal-arrival tasks keep input order, so
	// the (time, seq) event order — and every decision downstream — is
	// a pure function of the workload.
	sorted := make([]Task, len(tasks))
	copy(sorted, tasks)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Arrival < sorted[b].Arrival })

	states := make([]NodeState, len(cfg.Nodes))
	for i := range states {
		states[i] = NodeState{ID: i, Speed: cfg.Nodes[i].Speed}
	}
	policyName := ""
	if cfg.Policy != nil {
		cfg.Policy.Reset(states, cfg.CostRate)
		policyName = cfg.Policy.Name()
	}

	type nodeRun struct {
		intervals []interval
		cost      float64
		tasks     int
	}
	runs := make([]nodeRun, len(cfg.Nodes))

	var q eventQueue
	var seq uint64
	sched := func(at float64, kind eventKind, task, node int) {
		q.push(event{at: at, seq: seq, kind: kind, task: task, node: node})
		seq++
	}
	// Arrivals enter the heap lazily — each one schedules its successor
	// — so the heap holds one arrival plus outstanding completions, not
	// the whole workload.
	if len(sorted) > 0 {
		sched(sorted[0].Arrival, evArrival, 0, -1)
	}

	waitObs := cfg.Telemetry.Histogram("sim_wait_us", waitBounds)
	var wh waitHist
	var waitSum, waitMax, makespan float64
	var decisions []Decision
	var decSeq uint64
	var events int64
	for q.len() > 0 {
		e := q.pop()
		events++
		now := e.at
		if e.kind == evDone {
			states[e.node].Pending--
			continue
		}
		t := &sorted[e.task]
		if next := e.task + 1; next < len(sorted) {
			sched(sorted[next].Arrival, evArrival, next, -1)
		}
		n := t.Pin
		if n < 0 {
			n = cfg.Policy.Pick(now, *t, states)
			if n < 0 || n >= len(states) {
				return nil, fmt.Errorf("sim: policy %s picked node %d of %d", policyName, n, len(states))
			}
			if cfg.RecordDecisions {
				depths := make([]int, len(states))
				for i := range states {
					depths[i] = states[i].Pending
				}
				decisions = append(decisions, Decision{Seq: decSeq, Time: now, Task: e.task, Node: n, QueueDepths: depths})
			}
			decSeq++
		}
		st := &states[n]
		run := &runs[n]
		svc := serviceTime(st.Speed, cfg.CostRate, *t)
		begin := st.Backlog
		if begin < now {
			begin = now
		}
		fin := begin + svc
		st.Backlog = fin
		st.Pending++
		st.Busy += svc
		run.cost += t.Cost
		run.tasks++
		// Back-to-back tasks share one busy interval: begin equals the
		// previous finish exactly, so contiguous stretches merge and the
		// energy integration sees the same [start, start+busy) window a
		// batch run would.
		if k := len(run.intervals); k > 0 && run.intervals[k-1].end == begin {
			run.intervals[k-1].end = fin
		} else {
			run.intervals = append(run.intervals, interval{start: begin, end: fin})
		}
		if fin > makespan {
			makespan = fin
		}
		w := begin - now
		waitSum += w
		if w > waitMax {
			waitMax = w
		}
		us := int64(w * 1e6)
		wh.observe(us)
		waitObs.Observe(us)
		sched(fin, evDone, e.task, n)
	}

	res := &Result{
		Result: cluster.Result{
			NodeTimes: make([]float64, len(cfg.Nodes)),
			NodeCosts: make([]float64, len(cfg.Nodes)),
			NodeDirty: make([]float64, len(cfg.Nodes)),
			NodeGreen: make([]float64, len(cfg.Nodes)),
			Makespan:  makespan,
		},
		Policy:     policyName,
		Tasks:      len(sorted),
		Events:     events,
		NodeTasks:  make([]int, len(cfg.Nodes)),
		Wait:       wh.snapshot(),
		MaxWaitSec: waitMax,
		Decisions:  decisions,
	}
	for i := range cfg.Nodes {
		busy := states[i].Busy
		res.NodeTimes[i] = busy
		res.NodeCosts[i] = runs[i].cost
		res.NodeTasks[i] = runs[i].tasks
		watts := cfg.Nodes[i].Watts
		res.TotalEnergy += watts * busy
		var d float64
		for _, iv := range runs[i].intervals {
			d += energy.DirtyEnergy(watts, cfg.Nodes[i].Trace, cfg.Offset+iv.start, iv.end-iv.start)
		}
		res.NodeDirty[i] = d
		res.DirtyEnergy += d
		green := watts*busy - d
		if green < 0 {
			green = 0
		}
		res.NodeGreen[i] = green
		res.GreenEnergy += green
	}
	if len(sorted) > 0 {
		res.MeanWaitSec = waitSum / float64(len(sorted))
	}
	res.WallSec = time.Since(runStart).Seconds()
	recordRun(cfg.Telemetry, res, decSeq)
	return res, nil
}

// recordRun folds one simulation into the cumulative telemetry,
// mirroring cluster.recordRun's units (Wh for energy). Nil-safe.
func recordRun(reg *telemetry.Registry, res *Result, decisions uint64) {
	if reg == nil {
		return
	}
	const wh = 1.0 / 3600 // joules → watt-hours
	reg.Counter("sim_runs_total").Inc()
	reg.Counter("sim_tasks_total").Add(int64(res.Tasks))
	reg.Counter("sim_events_total").Add(res.Events)
	reg.Counter("sim_decisions_total").Add(int64(decisions))
	reg.FloatGauge("sim_virtual_sec_total").Add(res.Makespan)
	reg.FloatGauge("sim_green_wh_total").Add(res.GreenEnergy * wh)
	reg.FloatGauge("sim_dirty_wh_total").Add(res.DirtyEnergy * wh)
}
