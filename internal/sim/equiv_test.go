package sim

import (
	"math/rand"
	"testing"

	"pareto/internal/cluster"
	"pareto/internal/energy"
)

// equivCluster builds the shared fixture both sides of the equivalence
// tests run against.
func equivCluster(t *testing.T, p int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.PaperCluster(p, energy.DefaultPanel(), 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// chunkFixtures are shared chunk-cost workloads: uniform chunks, a
// heavy-tailed mix, a payload-skewed ramp, and a seeded random batch —
// plus degenerate shapes (empty, single, zero-cost chunks).
func chunkFixtures() map[string][]float64 {
	rng := rand.New(rand.NewSource(1234))
	random := make([]float64, 500)
	for i := range random {
		random[i] = rng.Float64() * 3e6
	}
	ramp := make([]float64, 200)
	for i := range ramp {
		ramp[i] = float64(i+1) * 1e4
	}
	return map[string][]float64{
		"uniform":   {1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6},
		"heavy":     {8e6, 1e5, 1e5, 1e5, 1e5, 1e5, 1e5, 1e5, 4e6, 2e6, 1e5, 1e5},
		"ramp":      ramp,
		"random":    random,
		"single":    {4e6},
		"zeros":     {0, 1e6, 0, 2e6, 0},
		"empty":     {},
	}
}

// bitEq fails unless a and b are the exact same float64 (no epsilon:
// the equivalence contract is bit-identity).
func bitEq(t *testing.T, what string, a, b float64) {
	t.Helper()
	if a != b {
		t.Errorf("%s: sim %v != cluster %v (diff %g)", what, a, b, a-b)
	}
}

// The sim's greedy-stealing policy must reproduce StealingSchedule —
// makespan, per-node times/costs, and all energy totals — bit for bit
// on shared chunk-cost fixtures, at several cluster sizes and offsets.
func TestGreedyStealingMatchesStealingScheduleBitIdentical(t *testing.T) {
	for _, p := range []int{1, 4, 8, 13} {
		c := equivCluster(t, p)
		nodes, rate, err := FromCluster(c)
		if err != nil {
			t.Fatal(err)
		}
		for name, costs := range chunkFixtures() {
			for _, offset := range []float64{0, 12 * 3600, 30 * 3600} {
				want, err := c.StealingSchedule(costs, offset)
				if err != nil {
					t.Fatal(err)
				}
				tasks := make([]Task, len(costs))
				for i, cost := range costs {
					tasks[i] = Task{Arrival: 0, Cost: cost, Pin: -1}
				}
				got, err := Run(Config{Nodes: nodes, CostRate: rate, Offset: offset, Policy: &GreedyStealing{}}, tasks)
				if err != nil {
					t.Fatal(err)
				}
				label := func(s string) string { return s + " (" + name + ")" }
				bitEq(t, label("makespan"), got.Makespan, want.Makespan)
				bitEq(t, label("dirty"), got.DirtyEnergy, want.DirtyEnergy)
				bitEq(t, label("green"), got.GreenEnergy, want.GreenEnergy)
				bitEq(t, label("total"), got.TotalEnergy, want.TotalEnergy)
				for i := range want.NodeTimes {
					bitEq(t, label("node time"), got.NodeTimes[i], want.NodeTimes[i])
					bitEq(t, label("node cost"), got.NodeCosts[i], want.NodeCosts[i])
					bitEq(t, label("node dirty"), got.NodeDirty[i], want.NodeDirty[i])
					bitEq(t, label("node green"), got.NodeGreen[i], want.NodeGreen[i])
				}
			}
		}
	}
}

// A single-batch sim run — one pinned task per node, all arriving at
// t=0 — must reproduce RunDetailed's deterministic fields bit for bit,
// including the fixed-seconds (speed-independent) component.
func TestSingleBatchMatchesRunDetailedBitIdentical(t *testing.T) {
	for _, p := range []int{1, 4, 8} {
		c := equivCluster(t, p)
		nodes, rate, err := FromCluster(c)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(p)))
		reports := make([]cluster.TaskReport, p)
		for i := range reports {
			reports[i] = cluster.TaskReport{
				Cost:         rng.Float64() * 5e6,
				FixedSeconds: rng.Float64() * 2,
			}
		}
		// Leave one node idle when the cluster is big enough, mirroring
		// a plan that assigned it no data.
		detailed := make([]cluster.DetailedTask, p)
		for i := range detailed {
			if p > 2 && i == 2 {
				continue
			}
			rep := reports[i]
			detailed[i] = func() (cluster.TaskReport, error) { return rep, nil }
		}
		for _, offset := range []float64{0, 12 * 3600} {
			want, err := c.RunDetailed(offset, detailed)
			if err != nil {
				t.Fatal(err)
			}
			var tasks []Task
			for i := range reports {
				if p > 2 && i == 2 {
					continue
				}
				tasks = append(tasks, Task{Arrival: 0, Cost: reports[i].Cost, Fixed: reports[i].FixedSeconds, Pin: i})
			}
			got, err := Run(Config{Nodes: nodes, CostRate: rate, Offset: offset}, tasks)
			if err != nil {
				t.Fatal(err)
			}
			bitEq(t, "makespan", got.Makespan, want.Makespan)
			bitEq(t, "dirty", got.DirtyEnergy, want.DirtyEnergy)
			bitEq(t, "green", got.GreenEnergy, want.GreenEnergy)
			bitEq(t, "total", got.TotalEnergy, want.TotalEnergy)
			for i := 0; i < p; i++ {
				bitEq(t, "node time", got.NodeTimes[i], want.NodeTimes[i])
				bitEq(t, "node cost", got.NodeCosts[i], want.NodeCosts[i])
				bitEq(t, "node dirty", got.NodeDirty[i], want.NodeDirty[i])
				bitEq(t, "node green", got.NodeGreen[i], want.NodeGreen[i])
			}
		}
	}
}
