// Package sim is a deterministic discrete-event cluster simulator: a
// shared virtual clock, a binary-heap event queue ordered by
// (time, seq), node models derived from internal/cluster, seeded
// arrival-process workload generators plus recorded-trace replay, and
// pluggable scheduling policies with optional per-decision traces.
//
// Where internal/cluster executes one real goroutine per node and a
// single batch of tasks, sim advances a virtual clock over millions of
// events in a fraction of a second, so cluster-sizing and green-energy
// what-if studies (thousands of heterogeneous nodes, diurnal solar
// windows, arrival bursts) become cheap. The two share semantics
// exactly: a task's service time is cost/(speed·rate) plus
// speed-independent fixed seconds — the same float expression as
// cluster.SimTime + TaskReport — and green/dirty energy integrates the
// same internal/energy traces over the node's virtual busy intervals.
// Equivalence tests pin both: a single-batch sim run reproduces
// Cluster.RunDetailed bit-for-bit, and the greedy-stealing policy
// reproduces Cluster.StealingSchedule bit-for-bit.
package sim

// eventKind discriminates the two event types in the engine.
type eventKind uint8

const (
	// evArrival: a task enters the system and is routed to a node.
	evArrival eventKind = iota
	// evDone: a task finishes service on its node.
	evDone
)

// event is one scheduled occurrence on the virtual timeline.
type event struct {
	// at is the virtual time in seconds.
	at float64
	// seq is the schedule order, breaking timestamp ties.
	seq uint64
	// kind selects arrival vs completion handling.
	kind eventKind
	// task indexes the sorted task slice.
	task int
	// node is the serving node for evDone (unused for arrivals).
	node int
}

// before reports whether e fires before o: earlier virtual time first,
// equal timestamps resolved by schedule order. (at, seq) is a strict
// total order — no two distinct events compare equal — which is the
// invariant that makes runs reproducible: heap insertion order cannot
// leak into pop order, so the same workload always replays the same
// event sequence regardless of how the heap happened to be built.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a binary min-heap of events ordered by before. It is a
// hand-rolled slice heap rather than container/heap: the interface
// dispatch and boxing of the stdlib heap cost real throughput on a
// loop that must sustain over a million events per second.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts an event, sifting it up to its heap position.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.ev[i].before(q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The queue must be
// non-empty.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		child := l
		if r := l + 1; r < last && q.ev[r].before(q.ev[l]) {
			child = r
		}
		if !q.ev[child].before(q.ev[i]) {
			break
		}
		q.ev[i], q.ev[child] = q.ev[child], q.ev[i]
		i = child
	}
	return top
}
