package sim

import (
	"math"
	"testing"

	"pareto/internal/telemetry"
)

// fourNodes returns the paper-shaped 4-node testbed (speeds 4/3/2/1)
// with 48h traces from the summer solstice.
func fourNodes(t *testing.T) ([]Node, float64) {
	t.Helper()
	nodes, rate, err := PaperNodes(4, 172, 48)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, rate
}

func TestRunSingleBatchBasics(t *testing.T) {
	nodes, rate := fourNodes(t)
	// One task per node, pinned: 4e6 on speed 4 → 1 s, 2e6 on speed 1 → 2 s.
	tasks := []Task{
		{Cost: 4e6, Pin: 0},
		{Cost: 3e6, Pin: 1},
		{Cost: 2e6, Pin: 3},
	}
	res, err := Run(Config{Nodes: nodes, CostRate: rate, Offset: 12 * 3600}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NodeTimes[0]-1) > 1e-9 || math.Abs(res.NodeTimes[3]-2) > 1e-9 {
		t.Errorf("node times %v", res.NodeTimes)
	}
	if res.NodeTimes[2] != 0 || res.NodeDirty[2] != 0 || res.NodeTasks[2] != 0 {
		t.Error("idle node accrued work")
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Errorf("makespan %v, want 2", res.Makespan)
	}
	if res.Tasks != 3 || res.Events != 6 {
		t.Errorf("tasks %d events %d, want 3 and 6", res.Tasks, res.Events)
	}
	if res.MeanWaitSec != 0 || res.MaxWaitSec != 0 {
		t.Errorf("pinned batch queued: mean %v max %v", res.MeanWaitSec, res.MaxWaitSec)
	}
	if res.Policy != "" || res.Decisions != nil {
		t.Errorf("pinned batch produced policy artifacts: %q %v", res.Policy, res.Decisions)
	}
	if res.DirtyEnergy <= 0 || res.TotalEnergy <= 0 || res.DirtyEnergy > res.TotalEnergy+1e-9 {
		t.Errorf("dirty %v total %v", res.DirtyEnergy, res.TotalEnergy)
	}
	if math.Abs(res.GreenEnergy+res.DirtyEnergy-res.TotalEnergy) > 1e-6 {
		t.Errorf("green %v + dirty %v != total %v", res.GreenEnergy, res.DirtyEnergy, res.TotalEnergy)
	}
}

// A saturated single node must serialize tasks: completions stack,
// queueing delay grows linearly, and the busy interval is contiguous.
func TestRunQueueingOnOneNode(t *testing.T) {
	nodes, rate := fourNodes(t)
	one := []Node{nodes[3]} // speed 1: 1e6 cost = 1 s
	var tasks []Task
	for i := 0; i < 5; i++ {
		tasks = append(tasks, Task{Arrival: 0, Cost: 1e6, Pin: 0})
	}
	res, err := Run(Config{Nodes: one, CostRate: rate}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-5) > 1e-9 {
		t.Errorf("makespan %v, want 5", res.Makespan)
	}
	// Waits are 0,1,2,3,4 s → mean 2, max 4.
	if math.Abs(res.MeanWaitSec-2) > 1e-9 || math.Abs(res.MaxWaitSec-4) > 1e-9 {
		t.Errorf("wait mean %v max %v, want 2 and 4", res.MeanWaitSec, res.MaxWaitSec)
	}
	if res.Wait.Count != 5 {
		t.Errorf("wait histogram count %d, want 5", res.Wait.Count)
	}
	// Quantile sanity on the histogram: p99 within a bucket of 4 s.
	if p99 := res.Wait.Quantile(0.99) / 1e6; p99 < 2 || p99 > 8.4 {
		t.Errorf("p99 wait %v s", p99)
	}
}

// Idle gaps must split busy intervals: a task at night and a task at
// noon, with the night one fully dirty and the noon one mostly green,
// must not be billed as one contiguous stretch.
func TestRunIdleGapSplitsEnergyIntervals(t *testing.T) {
	nodes, rate := fourNodes(t)
	one := []Node{nodes[0]} // speed 4: 4e6 = 1 s
	tasks := []Task{
		{Arrival: 0, Cost: 4e6, Pin: 0},             // midnight: all dirty
		{Arrival: 12 * 3600, Cost: 4e6, Pin: 0},     // noon: some green
	}
	res, err := Run(Config{Nodes: one, CostRate: rate}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NodeTimes[0]-2) > 1e-9 {
		t.Errorf("busy %v, want 2 (gap must not count)", res.NodeTimes[0])
	}
	// If the gap were billed, dirty would be ~12h × 440 W ≈ 1.9e7 J;
	// two 1-second tasks draw ≤ 880 J.
	if res.TotalEnergy > 1000 {
		t.Errorf("total energy %v J: idle gap was billed", res.TotalEnergy)
	}
	// Noon task on this trace sees green power, so dirty < total.
	if !(res.DirtyEnergy < res.TotalEnergy) {
		t.Errorf("dirty %v not below total %v: noon green missing", res.DirtyEnergy, res.TotalEnergy)
	}
	if math.Abs(res.Makespan-(12*3600+1)) > 1e-9 {
		t.Errorf("makespan %v", res.Makespan)
	}
}

func TestRunPoliciesRouteSanely(t *testing.T) {
	nodes, rate := fourNodes(t)
	tasks, err := Generate(GenConfig{Process: Poisson, Rate: 40, Duration: 30, CostMean: 2e5, CostSpread: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PolicyNames() {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: pol}, tasks)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Policy != name {
			t.Errorf("policy name %q, want %q", res.Policy, name)
		}
		total := 0
		for _, n := range res.NodeTasks {
			total += n
		}
		if total != len(tasks) || res.Tasks != len(tasks) {
			t.Errorf("%s: routed %d of %d tasks", name, total, len(tasks))
		}
		if res.Events != int64(2*len(tasks)) {
			t.Errorf("%s: %d events for %d tasks", name, res.Events, len(tasks))
		}
		var sumCost float64
		for _, c := range res.NodeCosts {
			sumCost += c
		}
		var want float64
		for _, task := range tasks {
			want += task.Cost
		}
		if math.Abs(sumCost-want) > 1e-6*want {
			t.Errorf("%s: cost conservation broke: %v vs %v", name, sumCost, want)
		}
		// The heterogeneity-aware policies must beat round-robin's
		// makespan on a heterogeneous cluster... not asserted per-pair,
		// but every makespan must at least cover the fluid bound.
		var totalSvc float64
		for i := range res.NodeTimes {
			totalSvc += res.NodeTimes[i]
		}
		if res.Makespan <= 0 || totalSvc <= 0 {
			t.Errorf("%s: degenerate result", name)
		}
	}
}

// Weighted-scoring and greedy-stealing must exploit the fast nodes:
// on a 4/3/2/1 cluster under sustained load they should hand the
// speed-4 node more work than the speed-1 node.
func TestRunHeterogeneityAwarePoliciesLoadFastNodes(t *testing.T) {
	nodes, rate := fourNodes(t)
	tasks, err := Generate(GenConfig{Process: Uniform, Rate: 30, Duration: 60, CostMean: 2e5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"weighted-scoring", "greedy-stealing"} {
		pol, _ := PolicyByName(name)
		res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: pol}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if res.NodeTasks[0] <= res.NodeTasks[3] {
			t.Errorf("%s: fast node served %d, slow node %d", name, res.NodeTasks[0], res.NodeTasks[3])
		}
	}
}

func TestRunDecisionTrace(t *testing.T) {
	nodes, rate := fourNodes(t)
	tasks := []Task{
		{Arrival: 0, Cost: 1e6, Pin: -1},
		{Arrival: 0, Cost: 1e6, Pin: 2}, // pinned: no decision recorded
		{Arrival: 0.5, Cost: 1e6, Pin: -1},
	}
	res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: &RoundRobin{}, RecordDecisions: true}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("decisions %v, want 2 entries", res.Decisions)
	}
	d0, d1 := res.Decisions[0], res.Decisions[1]
	if d0.Seq != 0 || d0.Time != 0 || d0.Task != 0 || d0.Node != 0 {
		t.Errorf("decision 0 = %+v", d0)
	}
	if d1.Seq != 1 || d1.Time != 0.5 || d1.Task != 2 || d1.Node != 1 {
		t.Errorf("decision 1 = %+v", d1)
	}
	if len(d1.QueueDepths) != 4 {
		t.Errorf("queue depths %v", d1.QueueDepths)
	}
	// At t=0.5, the pinned task on node 2 (0.5 s service) is still in
	// flight... depth snapshots are taken before assignment.
	if d0.QueueDepths[0] != 0 {
		t.Errorf("decision 0 depths %v", d0.QueueDepths)
	}
}

func TestRunTelemetry(t *testing.T) {
	nodes, rate := fourNodes(t)
	reg := telemetry.NewRegistry()
	tasks := []Task{{Cost: 4e6, Pin: -1}, {Cost: 4e6, Pin: -1}}
	if _, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: LeastLoaded{}, Telemetry: reg}, tasks); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["sim_runs_total"] != 1 ||
		snap.Counters["sim_tasks_total"] != 2 ||
		snap.Counters["sim_events_total"] != 4 ||
		snap.Counters["sim_decisions_total"] != 2 {
		t.Errorf("counters %v", snap.Counters)
	}
	if snap.Gauges["sim_virtual_sec_total"] <= 0 || snap.Gauges["sim_dirty_wh_total"] <= 0 {
		t.Errorf("gauges %v", snap.Gauges)
	}
	if h, ok := snap.Histograms["sim_wait_us"]; !ok || h.Count != 2 {
		t.Errorf("wait histogram %v", snap.Histograms)
	}
	// Nil registry: same run must work untouched.
	if _, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: LeastLoaded{}}, tasks); err != nil {
		t.Fatalf("nil-telemetry run: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	nodes, rate := fourNodes(t)
	ok := []Task{{Cost: 1, Pin: 0}}
	cases := map[string]struct {
		cfg   Config
		tasks []Task
	}{
		"no nodes":        {Config{CostRate: rate}, ok},
		"zero rate":       {Config{Nodes: nodes}, ok},
		"nan rate":        {Config{Nodes: nodes, CostRate: math.NaN()}, ok},
		"inf offset":      {Config{Nodes: nodes, CostRate: rate, Offset: math.Inf(1)}, ok},
		"bad speed":       {Config{Nodes: []Node{{Speed: 0, Watts: 1}}, CostRate: rate}, ok},
		"bad watts":       {Config{Nodes: []Node{{Speed: 1, Watts: -1}}, CostRate: rate}, ok},
		"neg arrival":     {Config{Nodes: nodes, CostRate: rate}, []Task{{Arrival: -1, Pin: 0}}},
		"nan arrival":     {Config{Nodes: nodes, CostRate: rate}, []Task{{Arrival: math.NaN(), Pin: 0}}},
		"neg cost":        {Config{Nodes: nodes, CostRate: rate}, []Task{{Cost: -1, Pin: 0}}},
		"neg fixed":       {Config{Nodes: nodes, CostRate: rate}, []Task{{Fixed: -1, Pin: 0}}},
		"pin overflow":    {Config{Nodes: nodes, CostRate: rate}, []Task{{Pin: 4}}},
		"unpinned no pol": {Config{Nodes: nodes, CostRate: rate}, []Task{{Pin: -1}}},
	}
	for name, c := range cases {
		if _, err := Run(c.cfg, c.tasks); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Empty workload is fine: a zero result, not an error.
	res, err := Run(Config{Nodes: nodes, CostRate: rate, Policy: &RoundRobin{}}, nil)
	if err != nil || res.Makespan != 0 || res.Events != 0 {
		t.Errorf("empty workload: %+v, %v", res, err)
	}
}

func TestPolicyByNameUnknown(t *testing.T) {
	if _, err := PolicyByName("lottery"); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
}
