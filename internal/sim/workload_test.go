package sim

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministicPerSeed(t *testing.T) {
	for _, proc := range []string{Poisson, Uniform, Bursty} {
		cfg := GenConfig{Process: proc, Rate: 50, Duration: 20, CostMean: 1e5, CostSpread: 0.4, Seed: 11}
		a, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different streams", proc)
		}
		cfg.Seed = 12
		c, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical streams", proc)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	for _, proc := range []string{Poisson, Uniform, Bursty} {
		cfg := GenConfig{Process: proc, Rate: 100, Duration: 50, CostMean: 2e5, CostSpread: 0.5, FixedSec: 0.01, Seed: 3}
		tasks, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		if len(tasks) == 0 {
			t.Fatalf("%s: empty stream", proc)
		}
		// Mean arrival rate within a loose factor of the target. Bursty
		// alternates 3r and r/3 with equal mean sojourn, so its
		// long-run rate is (3r + r/3)/2 ≈ 1.67r.
		lo, hi := 0.5, 2.5
		got := float64(len(tasks)) / cfg.Duration
		if got < lo*cfg.Rate || got > hi*cfg.Rate {
			t.Errorf("%s: rate %v outside [%v, %v]", proc, got, lo*cfg.Rate, hi*cfg.Rate)
		}
		prev := -1.0
		for i, task := range tasks {
			if task.Arrival < prev {
				t.Fatalf("%s: arrival %d goes backwards (%v after %v)", proc, i, task.Arrival, prev)
			}
			prev = task.Arrival
			if task.Arrival < 0 || task.Arrival >= cfg.Duration {
				t.Fatalf("%s: arrival %v outside [0, %v)", proc, task.Arrival, cfg.Duration)
			}
			if math.Abs(task.Cost-cfg.CostMean) > cfg.CostSpread*cfg.CostMean+1e-9 {
				t.Fatalf("%s: cost %v outside spread", proc, task.Cost)
			}
			if task.Fixed != cfg.FixedSec || task.Pin != -1 {
				t.Fatalf("%s: task %+v", proc, task)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	good := GenConfig{Process: Poisson, Rate: 10, Duration: 1, CostMean: 1}
	for name, mutate := range map[string]func(*GenConfig){
		"process":    func(c *GenConfig) { c.Process = "zipf" },
		"rate":       func(c *GenConfig) { c.Rate = 0 },
		"rate-nan":   func(c *GenConfig) { c.Rate = math.NaN() },
		"duration":   func(c *GenConfig) { c.Duration = -1 },
		"cost":       func(c *GenConfig) { c.CostMean = 0 },
		"spread":     func(c *GenConfig) { c.CostSpread = 1 },
		"spread-neg": func(c *GenConfig) { c.CostSpread = -0.1 },
		"fixed":      func(c *GenConfig) { c.FixedSec = -1 },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: bad config accepted: %+v", name, cfg)
		}
	}
	if _, err := Generate(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tasks := []Task{
		{Arrival: 0, Cost: 1e6, Pin: -1},
		{Arrival: 1.25, Cost: 2e6, Fixed: 0.5, Pin: 3},
		{Arrival: 2.5, Cost: 0, Pin: 0},
	}
	var buf bytes.Buffer
	if err := WriteTasks(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTasks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tasks) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, tasks)
	}
}

func TestReadTasksCommentsAndErrors(t *testing.T) {
	in := strings.NewReader(`# recorded 2026-08-07
{"arrival": 0.5, "cost": 100}

{"arrival": 1, "cost": 200, "fixed": 0.1, "node": 2}
`)
	tasks, err := ReadTasks(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Task{
		{Arrival: 0.5, Cost: 100, Pin: -1},
		{Arrival: 1, Cost: 200, Fixed: 0.1, Pin: 2},
	}
	if !reflect.DeepEqual(tasks, want) {
		t.Errorf("got %+v, want %+v", tasks, want)
	}
	if _, err := ReadTasks(strings.NewReader("{broken")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadTasks(strings.NewReader("")); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}
