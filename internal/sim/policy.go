package sim

import (
	"fmt"
	"sort"
)

// NodeState is the live view of one node that policies read at each
// routing decision. The engine owns the slice and mutates it as events
// fire; policies must treat it as read-only.
type NodeState struct {
	// ID indexes the node.
	ID int
	// Speed is the node's relative processing speed.
	Speed float64
	// Pending is the number of tasks assigned but not yet completed
	// (queued + in service).
	Pending int
	// Backlog is the absolute virtual time at which the node will have
	// drained everything currently assigned to it. A node with
	// Backlog ≤ now is idle.
	Backlog float64
	// Busy is the node's accumulated service seconds so far.
	Busy float64
}

// Policy routes each arriving task to a node. Implementations must be
// deterministic functions of (now, task, nodes) and their own state —
// no randomness, no wall clock — so identical workloads replay
// identical decision traces. Pick must not mutate nodes.
type Policy interface {
	// Name identifies the policy in results and traces.
	Name() string
	// Reset prepares the policy for a fresh run over the given nodes;
	// costRate is the cluster's cost→time calibration.
	Reset(nodes []NodeState, costRate float64)
	// Pick returns the destination node index for task t arriving now.
	Pick(now float64, t Task, nodes []NodeState) int
}

// RoundRobin cycles through nodes in ID order, oblivious to load and
// speed — the baseline every other policy is measured against.
type RoundRobin struct {
	next int
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Reset implements Policy.
func (p *RoundRobin) Reset([]NodeState, float64) { p.next = 0 }

// Pick implements Policy.
func (p *RoundRobin) Pick(_ float64, _ Task, nodes []NodeState) int {
	i := p.next % len(nodes)
	p.next++
	return i
}

// LeastLoaded routes to the node with the fewest pending tasks, ties
// to the lowest ID. Speed-oblivious: a slow node with a short queue
// beats a fast node with a long one, which is exactly the failure mode
// the weighted policies fix.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Reset implements Policy.
func (LeastLoaded) Reset([]NodeState, float64) {}

// Pick implements Policy.
func (LeastLoaded) Pick(_ float64, _ Task, nodes []NodeState) int {
	best := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Pending < nodes[best].Pending {
			best = i
		}
	}
	return best
}

// WeightedScoring scores each node as a weighted sum of the time the
// task would wait behind the node's backlog and the task's service
// time on that node, and routes to the minimum — with unit weights,
// earliest-completion-time routing that accounts for heterogeneity.
// Ties go to the lowest ID.
type WeightedScoring struct {
	// WaitWeight scales the queue-wait term (backlog − now).
	WaitWeight float64
	// ServiceWeight scales the service-time term.
	ServiceWeight float64

	rate float64
}

// NewWeightedScoring builds the policy; zero-valued weights default
// to 1 so the zero config is earliest-completion-time.
func NewWeightedScoring(waitWeight, serviceWeight float64) *WeightedScoring {
	return &WeightedScoring{WaitWeight: waitWeight, ServiceWeight: serviceWeight}
}

// Name implements Policy.
func (p *WeightedScoring) Name() string { return "weighted-scoring" }

// Reset implements Policy.
func (p *WeightedScoring) Reset(_ []NodeState, costRate float64) {
	p.rate = costRate
	if p.WaitWeight == 0 && p.ServiceWeight == 0 {
		p.WaitWeight, p.ServiceWeight = 1, 1
	}
}

// Pick implements Policy.
func (p *WeightedScoring) Pick(now float64, t Task, nodes []NodeState) int {
	best := 0
	bestScore := p.score(now, t, &nodes[0])
	for i := 1; i < len(nodes); i++ {
		if s := p.score(now, t, &nodes[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func (p *WeightedScoring) score(now float64, t Task, n *NodeState) float64 {
	wait := n.Backlog - now
	if wait < 0 {
		wait = 0
	}
	return p.WaitWeight*wait + p.ServiceWeight*serviceTime(n.Speed, p.rate, t)
}

// GreedyStealing is the event-driven port of Cluster.StealingSchedule:
// each task goes to the node that will be free of its assigned work
// soonest, ties to the fastest node (who wins the race for the queue
// in a real stealing runtime). On a single batch of chunk costs it
// reproduces StealingSchedule bit-for-bit — same comparisons in the
// same order — which the equivalence tests pin.
type GreedyStealing struct {
	// order visits nodes fastest-first (stable by speed), mirroring
	// StealingSchedule's tie-break.
	order []int
}

// Name implements Policy.
func (p *GreedyStealing) Name() string { return "greedy-stealing" }

// Reset implements Policy.
func (p *GreedyStealing) Reset(nodes []NodeState, _ float64) {
	p.order = make([]int, len(nodes))
	for i := range p.order {
		p.order[i] = i
	}
	sort.SliceStable(p.order, func(a, b int) bool {
		return nodes[p.order[a]].Speed > nodes[p.order[b]].Speed
	})
}

// Pick implements Policy.
func (p *GreedyStealing) Pick(_ float64, _ Task, nodes []NodeState) int {
	best := p.order[0]
	for _, i := range p.order {
		if nodes[i].Backlog < nodes[best].Backlog {
			best = i
		}
	}
	return best
}

// PolicyNames lists the built-in policy names accepted by
// PolicyByName, in presentation order.
func PolicyNames() []string {
	return []string{"round-robin", "least-loaded", "weighted-scoring", "greedy-stealing"}
}

// PolicyByName builds a fresh built-in policy from its name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "round-robin":
		return &RoundRobin{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "weighted-scoring":
		return NewWeightedScoring(1, 1), nil
	case "greedy-stealing":
		return &GreedyStealing{}, nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q (want one of %v)", name, PolicyNames())
}
