package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func encodeReply(t *testing.T, r Reply) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteReply(w, r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeReply(t *testing.T, b []byte) Reply {
	t.Helper()
	r, err := ReadReply(bufio.NewReader(bytes.NewReader(b)))
	if err != nil {
		t.Fatalf("decode %q: %v", b, err)
	}
	return r
}

func TestReplyWireFormats(t *testing.T) {
	cases := []struct {
		r    Reply
		wire string
	}{
		{Reply{Type: SimpleString, Str: "OK"}, "+OK\r\n"},
		{Reply{Type: ErrorReply, Str: "ERR boom"}, "-ERR boom\r\n"},
		{Reply{Type: Integer, Int: -42}, ":-42\r\n"},
		{Reply{Type: BulkString, Bulk: []byte("hello")}, "$5\r\nhello\r\n"},
		{Reply{Type: BulkString, Bulk: []byte{}}, "$0\r\n\r\n"},
		{Reply{Type: NullBulk}, "$-1\r\n"},
		{Reply{Type: NullArray}, "*-1\r\n"},
		{Reply{Type: Array, Array: []Reply{{Type: Integer, Int: 1}, {Type: BulkString, Bulk: []byte("x")}}},
			"*2\r\n:1\r\n$1\r\nx\r\n"},
		{Reply{Type: Array, Array: []Reply{}}, "*0\r\n"},
	}
	for i, c := range cases {
		got := encodeReply(t, c.r)
		if string(got) != c.wire {
			t.Errorf("case %d: wire %q, want %q", i, got, c.wire)
		}
		back := decodeReply(t, got)
		// Normalize empty vs nil slices for comparison.
		if back.String() != c.r.String() || back.Type != c.r.Type {
			t.Errorf("case %d: roundtrip %+v vs %+v", i, back, c.r)
		}
	}
}

func TestReplyRoundtripQuick(t *testing.T) {
	f := func(payload []byte, n int64) bool {
		rs := []Reply{
			{Type: BulkString, Bulk: payload},
			{Type: Integer, Int: n},
			{Type: Array, Array: []Reply{
				{Type: BulkString, Bulk: payload},
				{Type: Integer, Int: n},
				{Type: NullBulk},
			}},
		}
		for _, r := range rs {
			var buf bytes.Buffer
			w := bufio.NewWriter(&buf)
			if err := WriteReply(w, r); err != nil {
				return false
			}
			w.Flush()
			back, err := ReadReply(bufio.NewReader(&buf))
			if err != nil {
				return false
			}
			if !replyEqual(back, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func replyEqual(a, b Reply) bool {
	if a.Type != b.Type || a.Str != b.Str || a.Int != b.Int {
		return false
	}
	if !bytes.Equal(a.Bulk, b.Bulk) {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !replyEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}

func TestCommandRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteCommand(w, "SET", []byte("key"), []byte("value with\r\nbinary\x00bytes")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	cmd, args, err := ReadCommand(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "SET" || len(args) != 2 || string(args[0]) != "key" {
		t.Errorf("cmd %q args %q", cmd, args)
	}
	if !bytes.Equal(args[1], []byte("value with\r\nbinary\x00bytes")) {
		t.Error("binary-unsafe argument transport")
	}
}

func TestReadReplyMalformed(t *testing.T) {
	cases := []string{
		"",                // EOF
		"\r\n",            // empty line
		"!bogus\r\n",      // unknown type byte
		":notanumber\r\n", // bad integer
		"$abc\r\n",        // bad bulk length
		"$5\r\nhi\r\n",    // truncated bulk
		"$2\r\nhixx",      // missing CRLF
		"*2\r\n:1\r\n",    // truncated array
		"+no terminator",  // missing CRLF at EOF
		"*xyz\r\n",        // bad array length
	}
	for i, c := range cases {
		_, err := ReadReply(bufio.NewReader(strings.NewReader(c)))
		if err == nil {
			t.Errorf("case %d (%q): accepted", i, c)
		}
	}
}

func TestReadCommandErrors(t *testing.T) {
	// A non-array is not a command.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader(":5\r\n"))); err == nil {
		t.Error("integer accepted as command")
	}
	// Empty array.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader("*0\r\n"))); err == nil {
		t.Error("empty array accepted as command")
	}
	// Array of non-bulk elements.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader("*1\r\n:1\r\n"))); err == nil {
		t.Error("integer element accepted in command")
	}
	// Clean EOF must surface as io.EOF for connection teardown.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader(""))); !errors.Is(err, io.EOF) {
		t.Errorf("EOF surfaced as %v", err)
	}
}

func TestLongLineAcrossBufferBoundary(t *testing.T) {
	// A simple string longer than the bufio buffer must still parse.
	long := strings.Repeat("x", 5000)
	r := bufio.NewReaderSize(strings.NewReader("+"+long+"\r\n"), 16)
	rep, err := ReadReply(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Str != long {
		t.Error("long line mangled")
	}
}

func TestReplyStringRendering(t *testing.T) {
	if got := (Reply{Type: NullBulk}).String(); got != "(nil)" {
		t.Errorf("nil renders %q", got)
	}
	if got := (Reply{Type: ErrorReply, Str: "x"}).Err(); got == nil {
		t.Error("error reply must convert to error")
	}
	if got := (Reply{Type: Integer, Int: 5}).Err(); got != nil {
		t.Error("integer reply is not an error")
	}
	if !reflect.DeepEqual(Reply{Type: ReplyType(99)}.String(), "reply(99)") {
		t.Error("unknown type must render")
	}
}
