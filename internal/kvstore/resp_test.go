package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func encodeReply(t *testing.T, r Reply) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteReply(w, r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeReply(t *testing.T, b []byte) Reply {
	t.Helper()
	r, err := ReadReply(bufio.NewReader(bytes.NewReader(b)))
	if err != nil {
		t.Fatalf("decode %q: %v", b, err)
	}
	return r
}

func TestReplyWireFormats(t *testing.T) {
	cases := []struct {
		r    Reply
		wire string
	}{
		{Reply{Type: SimpleString, Str: "OK"}, "+OK\r\n"},
		{Reply{Type: ErrorReply, Str: "ERR boom"}, "-ERR boom\r\n"},
		{Reply{Type: Integer, Int: -42}, ":-42\r\n"},
		{Reply{Type: BulkString, Bulk: []byte("hello")}, "$5\r\nhello\r\n"},
		{Reply{Type: BulkString, Bulk: []byte{}}, "$0\r\n\r\n"},
		{Reply{Type: NullBulk}, "$-1\r\n"},
		{Reply{Type: NullArray}, "*-1\r\n"},
		{Reply{Type: Array, Array: []Reply{{Type: Integer, Int: 1}, {Type: BulkString, Bulk: []byte("x")}}},
			"*2\r\n:1\r\n$1\r\nx\r\n"},
		{Reply{Type: Array, Array: []Reply{}}, "*0\r\n"},
	}
	for i, c := range cases {
		got := encodeReply(t, c.r)
		if string(got) != c.wire {
			t.Errorf("case %d: wire %q, want %q", i, got, c.wire)
		}
		back := decodeReply(t, got)
		// Normalize empty vs nil slices for comparison.
		if back.String() != c.r.String() || back.Type != c.r.Type {
			t.Errorf("case %d: roundtrip %+v vs %+v", i, back, c.r)
		}
	}
}

func TestReplyRoundtripQuick(t *testing.T) {
	f := func(payload []byte, n int64) bool {
		rs := []Reply{
			{Type: BulkString, Bulk: payload},
			{Type: Integer, Int: n},
			{Type: Array, Array: []Reply{
				{Type: BulkString, Bulk: payload},
				{Type: Integer, Int: n},
				{Type: NullBulk},
			}},
		}
		for _, r := range rs {
			var buf bytes.Buffer
			w := bufio.NewWriter(&buf)
			if err := WriteReply(w, r); err != nil {
				return false
			}
			w.Flush()
			back, err := ReadReply(bufio.NewReader(&buf))
			if err != nil {
				return false
			}
			if !replyEqual(back, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func replyEqual(a, b Reply) bool {
	if a.Type != b.Type || a.Str != b.Str || a.Int != b.Int {
		return false
	}
	if !bytes.Equal(a.Bulk, b.Bulk) {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !replyEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}

func TestCommandRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteCommand(w, "SET", []byte("key"), []byte("value with\r\nbinary\x00bytes")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	cmd, args, err := ReadCommand(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "SET" || len(args) != 2 || string(args[0]) != "key" {
		t.Errorf("cmd %q args %q", cmd, args)
	}
	if !bytes.Equal(args[1], []byte("value with\r\nbinary\x00bytes")) {
		t.Error("binary-unsafe argument transport")
	}
}

func TestReadReplyMalformed(t *testing.T) {
	cases := []string{
		"",                // EOF
		"\r\n",            // empty line
		"!bogus\r\n",      // unknown type byte
		":notanumber\r\n", // bad integer
		"$abc\r\n",        // bad bulk length
		"$5\r\nhi\r\n",    // truncated bulk
		"$2\r\nhixx",      // missing CRLF
		"*2\r\n:1\r\n",    // truncated array
		"+no terminator",  // missing CRLF at EOF
		"*xyz\r\n",        // bad array length
	}
	for i, c := range cases {
		_, err := ReadReply(bufio.NewReader(strings.NewReader(c)))
		if err == nil {
			t.Errorf("case %d (%q): accepted", i, c)
		}
	}
}

// TestMalformedLengthHeaders drives every hostile length-header shape
// through both the reply parser and the command parser: negative
// (other than the -1 null), oversized, overflowing, and garbage
// lengths must all fail with a protocol error before any allocation
// can happen.
func TestMalformedLengthHeaders(t *testing.T) {
	cases := []struct {
		name string
		wire string
	}{
		{"negative bulk", "$-5\r\nhello\r\n"},
		{"negative bulk -2", "$-2\r\n"},
		{"oversized bulk", "$1073741825\r\n"},                  // maxBulkLen+1
		{"hugely oversized bulk", "$99999999999999999999\r\n"}, // would overflow int64
		{"bulk length with sign", "$+5\r\nhello\r\n"},
		{"bulk length with spaces", "$ 5\r\nhello\r\n"},
		{"empty bulk length", "$\r\n"},
		{"negative array", "*-3\r\n"},
		{"oversized array", "*1048577\r\n"}, // maxArrayLen+1
		{"hugely oversized array", "*99999999999999999999\r\n"},
		{"array length with sign", "*+2\r\n"},
		{"empty array length", "*\r\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadReply(bufio.NewReader(strings.NewReader(c.wire))); !errors.Is(err, ErrProtocol) {
				t.Errorf("ReadReply(%q): err=%v, want ErrProtocol", c.wire, err)
			}
			cmdWire := c.wire
			if c.wire[0] == '$' {
				cmdWire = "*2\r\n$4\r\nPING\r\n" + c.wire
			}
			var cb CommandBuffer
			if _, _, err := ReadCommandInto(bufio.NewReader(strings.NewReader(cmdWire)), &cb, MaxBulkLen); !errors.Is(err, ErrProtocol) {
				t.Errorf("ReadCommandInto(%q): err=%v, want ErrProtocol", cmdWire, err)
			}
		})
	}
	// Null markers remain valid where RESP allows them.
	if rep, err := ReadReply(bufio.NewReader(strings.NewReader("$-1\r\n"))); err != nil || rep.Type != NullBulk {
		t.Errorf("null bulk: %v %v", rep, err)
	}
	if rep, err := ReadReply(bufio.NewReader(strings.NewReader("*-1\r\n"))); err != nil || rep.Type != NullArray {
		t.Errorf("null array: %v %v", rep, err)
	}
}

// TestReadReplyIntoMaxBulkGuard proves the explicit per-call guard: a
// header within the protocol-wide limit but above the caller's bound
// errors instead of allocating.
func TestReadReplyIntoMaxBulkGuard(t *testing.T) {
	wire := "$1024\r\n" + strings.Repeat("x", 1024) + "\r\n"
	var rep Reply
	if err := ReadReplyInto(bufio.NewReader(strings.NewReader(wire)), &rep, 512); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversize for caller bound: err=%v, want ErrProtocol", err)
	}
	if err := ReadReplyInto(bufio.NewReader(strings.NewReader(wire)), &rep, 1024); err != nil {
		t.Errorf("within caller bound: %v", err)
	}
	var cb CommandBuffer
	cmdWire := "*2\r\n$4\r\nECHO\r\n" + wire
	if _, _, err := ReadCommandInto(bufio.NewReader(strings.NewReader(cmdWire)), &cb, 512); !errors.Is(err, ErrProtocol) {
		t.Errorf("command oversize for caller bound: err=%v, want ErrProtocol", err)
	}
}

// TestHeaderLineLengthBounded: a "line" that never terminates must
// error once past the line bound instead of accumulating forever.
func TestHeaderLineLengthBounded(t *testing.T) {
	endless := "+" + strings.Repeat("x", maxLineLen+4096)
	r := bufio.NewReaderSize(strings.NewReader(endless), 4096)
	if _, err := ReadReply(r); !errors.Is(err, ErrProtocol) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("unterminated giant line: err=%v", err)
	}
}

// TestCommandArenaReuse exercises ReadCommandInto's pooled path: the
// same CommandBuffer parses back-to-back commands, arguments stay
// correct per generation, and arguments from a previous generation are
// recycled (the documented contract consumers copy against).
func TestCommandArenaReuse(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteCommand(w, "SET", []byte("key-one"), []byte("value-one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteCommand(w, "SET", []byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	var cb CommandBuffer
	_, args, err := ReadCommandInto(r, &cb, MaxBulkLen)
	if err != nil {
		t.Fatal(err)
	}
	if string(args[0]) != "key-one" || string(args[1]) != "value-one" {
		t.Fatalf("first generation args %q", args)
	}
	held := args[0] // retained WITHOUT copying, against the contract
	copied := append([]byte(nil), args[0]...)
	if _, args, err = ReadCommandInto(r, &cb, MaxBulkLen); err != nil {
		t.Fatal(err)
	}
	if string(args[0]) != "k2" || string(args[1]) != "v2" {
		t.Fatalf("second generation args %q", args)
	}
	if string(held) == "key-one" {
		t.Log("held slice happens to survive (arena not yet overwritten) — permitted but not guaranteed")
	}
	if string(copied) != "key-one" {
		t.Error("copied argument corrupted by arena reuse")
	}
}

func TestReadCommandErrors(t *testing.T) {
	// A non-array is not a command.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader(":5\r\n"))); err == nil {
		t.Error("integer accepted as command")
	}
	// Empty array.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader("*0\r\n"))); err == nil {
		t.Error("empty array accepted as command")
	}
	// Array of non-bulk elements.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader("*1\r\n:1\r\n"))); err == nil {
		t.Error("integer element accepted in command")
	}
	// Clean EOF must surface as io.EOF for connection teardown.
	if _, _, err := ReadCommand(bufio.NewReader(strings.NewReader(""))); !errors.Is(err, io.EOF) {
		t.Errorf("EOF surfaced as %v", err)
	}
}

func TestLongLineAcrossBufferBoundary(t *testing.T) {
	// A simple string longer than the bufio buffer must still parse.
	long := strings.Repeat("x", 5000)
	r := bufio.NewReaderSize(strings.NewReader("+"+long+"\r\n"), 16)
	rep, err := ReadReply(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Str != long {
		t.Error("long line mangled")
	}
}

func TestReplyStringRendering(t *testing.T) {
	if got := (Reply{Type: NullBulk}).String(); got != "(nil)" {
		t.Errorf("nil renders %q", got)
	}
	if got := (Reply{Type: ErrorReply, Str: "x"}).Err(); got == nil {
		t.Error("error reply must convert to error")
	}
	if got := (Reply{Type: Integer, Int: 5}).Err(); got != nil {
		t.Error("integer reply is not an error")
	}
	if !reflect.DeepEqual(Reply{Type: ReplyType(99)}.String(), "reply(99)") {
		t.Error("unknown type must render")
	}
}
