package kvstore

import (
	"errors"
	"fmt"
	"time"
)

// Barrier is the global synchronization primitive of paper §IV, built
// on the store's atomic fetch-and-increment: the framework separates
// its phases (pivot extraction, sketch generation, sketch clustering,
// final data partitioning) with barrier waits across all workers.
//
// Each Await round increments a generation-scoped counter and polls
// until all parties have arrived. Reusing the Barrier value advances
// the generation automatically, so one Barrier synchronizes any number
// of consecutive phases.
//
// A barrier can be aborted: any party writing the abort key
// (__barrier:<name>:abort) releases every waiter promptly with
// ErrBarrierAborted instead of letting them burn through their full
// timeout — the escape hatch a coordinator uses when it detects dead
// workers and takes over their shards.
type Barrier struct {
	client  KV
	name    string
	parties int
	gen     int

	// PollInterval is the initial wait between checks; defaults to
	// 1ms. Polls back off exponentially (doubling per round) up to
	// MaxPollInterval so a long wait does not hammer the store.
	PollInterval time.Duration
	// MaxPollInterval caps the poll backoff; defaults to
	// max(PollInterval, 50ms).
	MaxPollInterval time.Duration
	// Timeout bounds one Await; defaults to 30s.
	Timeout time.Duration
}

// NewBarrier creates a barrier for the given party count coordinated
// through the store behind client — a single *Client or a
// *ClusterClient (INCR routes to the counter key's slot owner, so all
// parties naturally meet at one store). All parties must use the same
// name and count.
func NewBarrier(client KV, name string, parties int) (*Barrier, error) {
	if parties < 1 {
		return nil, fmt.Errorf("kvstore: barrier parties %d, need ≥ 1", parties)
	}
	if name == "" {
		return nil, errors.New("kvstore: barrier needs a name")
	}
	return &Barrier{
		client:       client,
		name:         name,
		parties:      parties,
		PollInterval: time.Millisecond,
		Timeout:      30 * time.Second,
	}, nil
}

// ErrBarrierTimeout reports that not all parties arrived in time.
var ErrBarrierTimeout = errors.New("kvstore: barrier timeout")

// ErrBarrierAborted reports that a party aborted the barrier,
// releasing all waiters.
var ErrBarrierAborted = errors.New("kvstore: barrier aborted")

func (b *Barrier) abortKey() string {
	return "__barrier:" + b.name + ":abort"
}

// Abort marks the barrier aborted with a reason: every current and
// future Await on this name returns ErrBarrierAborted promptly. The
// abort is sticky for the barrier's whole lifetime (all generations) —
// an aborted protocol round must not be resumed through the same name.
func (b *Barrier) Abort(reason string) error {
	if reason == "" {
		reason = "aborted"
	}
	if err := b.client.Set(b.abortKey(), []byte(reason)); err != nil {
		return fmt.Errorf("kvstore: barrier abort: %w", err)
	}
	return nil
}

// aborted checks the abort key; reason is empty when not aborted.
func (b *Barrier) aborted() (string, error) {
	raw, err := b.client.Get(b.abortKey())
	if errors.Is(err, ErrNil) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	if len(raw) == 0 {
		return "aborted", nil
	}
	return string(raw), nil
}

// Arrive registers this party at the current generation WITHOUT
// waiting for the others, and advances to the next generation. A party
// that must abandon the protocol after an error calls Arrive on its
// remaining barriers so peers blocked in Await are released instead of
// timing out.
func (b *Barrier) Arrive() error {
	key := fmt.Sprintf("__barrier:%s:%d", b.name, b.gen)
	b.gen++
	if _, err := b.client.Incr(key); err != nil {
		return fmt.Errorf("kvstore: barrier arrive: %w", err)
	}
	return nil
}

// Await registers this party's arrival at the current generation and
// blocks until all parties arrive, the barrier is aborted, or the
// timeout passes.
func (b *Barrier) Await() error {
	key := fmt.Sprintf("__barrier:%s:%d", b.name, b.gen)
	b.gen++
	n, err := b.client.Incr(key)
	if err != nil {
		return fmt.Errorf("kvstore: barrier enter: %w", err)
	}
	if n >= int64(b.parties) {
		return nil
	}
	poll := b.PollInterval
	if poll <= 0 {
		poll = time.Millisecond
	}
	maxPoll := b.MaxPollInterval
	if maxPoll <= 0 {
		maxPoll = 50 * time.Millisecond
		if poll > maxPoll {
			maxPoll = poll
		}
	}
	timeout := b.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		raw, err := b.client.Get(key)
		if err != nil && !errors.Is(err, ErrNil) {
			return fmt.Errorf("kvstore: barrier poll: %w", err)
		}
		if err == nil {
			var cur int64
			for _, ch := range raw {
				if ch < '0' || ch > '9' {
					cur = -1
					break
				}
				cur = cur*10 + int64(ch-'0')
			}
			if cur >= int64(b.parties) {
				return nil
			}
		}
		if reason, aerr := b.aborted(); aerr != nil {
			return fmt.Errorf("kvstore: barrier abort poll: %w", aerr)
		} else if reason != "" {
			return fmt.Errorf("%w: %s generation %d: %s", ErrBarrierAborted, b.name, b.gen-1, reason)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %s generation %d", ErrBarrierTimeout, b.name, b.gen-1)
		}
		time.Sleep(poll)
		poll *= 2
		if poll > maxPoll {
			poll = maxPoll
		}
	}
}
