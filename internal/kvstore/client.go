package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"
)

// Client is a connection to one store instance. It supports immediate
// request/reply calls and explicit pipelining (paper §IV batches
// requests up to a preset pipeline width before sending, which
// "substantially improves response times"). A Client is safe for
// concurrent use; commands are serialized over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// pending counts commands written but not yet read (pipelining).
	pending int
}

// Dial connects to a store at addr with the given timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// Do sends one command and waits for its reply (flushing any pipelined
// commands first so ordering is preserved).
func (c *Client) Do(cmd string, args ...[]byte) (Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteCommand(c.w, cmd, args...); err != nil {
		return Reply{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Reply{}, err
	}
	// Drain earlier pipelined replies; the last one is ours.
	for c.pending > 0 {
		if _, err := ReadReply(c.r); err != nil {
			return Reply{}, err
		}
		c.pending--
	}
	return ReadReply(c.r)
}

// Send enqueues a command without reading its reply; Flush collects
// all outstanding replies in order. This is the pipelining primitive.
func (c *Client) Send(cmd string, args ...[]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteCommand(c.w, cmd, args...); err != nil {
		return err
	}
	c.pending++
	return nil
}

// Flush pushes buffered commands to the server and reads every
// outstanding reply, in command order.
func (c *Client) Flush() ([]Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]Reply, 0, c.pending)
	for c.pending > 0 {
		rep, err := ReadReply(c.r)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
		c.pending--
	}
	return out, nil
}

// ErrNil is returned by typed helpers when the key does not exist.
var ErrNil = errors.New("kvstore: nil reply")

// Get fetches a string key; ErrNil if absent.
func (c *Client) Get(key string) ([]byte, error) {
	rep, err := c.Do("GET", []byte(key))
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	if rep.Type == NullBulk {
		return nil, ErrNil
	}
	return rep.Bulk, nil
}

// Set stores a string key.
func (c *Client) Set(key string, val []byte) error {
	rep, err := c.Do("SET", []byte(key), val)
	if err != nil {
		return err
	}
	return rep.Err()
}

// Incr atomically increments a counter key and returns the new value.
func (c *Client) Incr(key string) (int64, error) {
	rep, err := c.Do("INCR", []byte(key))
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// RPush appends values to a list and returns the new length.
func (c *Client) RPush(key string, vals ...[]byte) (int64, error) {
	args := make([][]byte, 0, len(vals)+1)
	args = append(args, []byte(key))
	args = append(args, vals...)
	rep, err := c.Do("RPUSH", args...)
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// LRange fetches list elements in [start, stop] (inclusive, negative
// indices count from the end, as in Redis).
func (c *Client) LRange(key string, start, stop int64) ([][]byte, error) {
	rep, err := c.Do("LRANGE", []byte(key),
		[]byte(strconv.FormatInt(start, 10)), []byte(strconv.FormatInt(stop, 10)))
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(rep.Array))
	for i, el := range rep.Array {
		out[i] = el.Bulk
	}
	return out, nil
}

// LLen returns a list's length.
func (c *Client) LLen(key string) (int64, error) {
	rep, err := c.Do("LLEN", []byte(key))
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int64, error) {
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	rep, err := c.Do("DEL", args...)
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// Ping round-trips the connection.
func (c *Client) Ping() error {
	rep, err := c.Do("PING")
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}
	if rep.Str != "PONG" {
		return fmt.Errorf("kvstore: unexpected ping reply %q", rep.Str)
	}
	return nil
}

// Pipeline is a convenience wrapper enforcing a maximum width: Send
// auto-flushes once width commands are queued, mirroring the preset
// pipeline width of paper §IV.
type Pipeline struct {
	c       *Client
	width   int
	queued  int
	replies []Reply
}

// NewPipeline creates a pipeline of the given width (≥ 1).
func (c *Client) NewPipeline(width int) (*Pipeline, error) {
	if width < 1 {
		return nil, fmt.Errorf("kvstore: pipeline width %d, need ≥ 1", width)
	}
	return &Pipeline{c: c, width: width}, nil
}

// Send enqueues a command, flushing automatically at the width bound.
func (p *Pipeline) Send(cmd string, args ...[]byte) error {
	if err := p.c.Send(cmd, args...); err != nil {
		return err
	}
	p.queued++
	if p.queued >= p.width {
		return p.flushInto()
	}
	return nil
}

func (p *Pipeline) flushInto() error {
	reps, err := p.c.Flush()
	p.replies = append(p.replies, reps...)
	p.queued = 0
	return err
}

// Finish flushes any remainder and returns every reply in send order.
func (p *Pipeline) Finish() ([]Reply, error) {
	if p.queued > 0 {
		if err := p.flushInto(); err != nil {
			return p.replies, err
		}
	}
	out := p.replies
	p.replies = nil
	return out, nil
}
