package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"pareto/internal/telemetry"
)

// Client is a connection to one store instance. It supports immediate
// request/reply calls and explicit pipelining (paper §IV batches
// requests up to a preset pipeline width before sending, which
// "substantially improves response times"). A Client is safe for
// concurrent use; commands are serialized over the single connection.
//
// A Client built with DialOptions is additionally hardened against a
// misbehaving network: every I/O carries a per-operation deadline
// (Options.OpTimeout), a dead connection is re-dialed with capped
// exponential backoff plus jitter, and idempotent commands are retried
// transparently. Non-idempotent commands (INCR, RPUSH, …) are never
// retried — a failure after the request may have been written is
// ambiguous — and surface ErrNotRetryable so the caller decides.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	addr        string
	dialTimeout time.Duration
	opts        Options
	rng         *rand.Rand
	metrics     *clientMetrics

	// pending counts commands written but not yet read (pipelining).
	pending int
	// buffered holds pipelined replies drained early by Do; Flush
	// returns them ahead of freshly read ones so no reply is lost.
	buffered []Reply
	// broken marks the connection dead; the next immediate command
	// re-dials before writing.
	broken bool
}

// Options tunes a Client's fault-tolerance behavior. The zero value
// reproduces the original client: no deadlines, no reconnects, no
// retries.
type Options struct {
	// OpTimeout is the deadline applied to each network operation
	// (one write flush, one reply read). A command's wall-clock bound
	// is therefore 2×OpTimeout: one write + one read. 0 = no deadline.
	OpTimeout time.Duration
	// MaxRetries is how many times an idempotent command is retried
	// (re-dialing first) after an I/O failure. 0 = no retries.
	MaxRetries int
	// RetryBackoff is the initial backoff before the first retry; it
	// doubles per attempt (0 = 5ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = 500ms).
	MaxBackoff time.Duration
	// Seed drives the backoff jitter (0 = 1); fixed per the repo's
	// determinism convention.
	Seed int64
	// Dialer overrides how (re)connections are established — the
	// fault-injection hook. nil = net.DialTimeout("tcp", …).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Telemetry, when non-nil, records op latency, errors, retries,
	// reconnects, and pipeline depth into the registry. nil keeps the
	// client uninstrumented with a single-branch fast path.
	Telemetry *telemetry.Registry
}

func (o *Options) normalize() {
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ErrNotRetryable marks a non-idempotent command that failed after it
// may have reached the server: the client cannot safely re-send it, so
// the caller must decide (re-derive state, abort, or retry a larger
// idempotent unit, e.g. DEL + re-push a whole list).
var ErrNotRetryable = errors.New("kvstore: command not retryable")

// KV is the store-client surface shared by *Client (one store) and
// *ClusterClient (a slot-routed pool over many stores). Everything
// above the wire — distrib's shipping paths, the partitioner's stores,
// the barrier — is written against it, so a single-store deployment
// and a hash-slot cluster interchange without call-site changes.
type KV interface {
	Get(key string) ([]byte, error)
	Set(key string, val []byte) error
	MSet(keys []string, vals [][]byte) error
	MGet(keys ...string) ([][]byte, error)
	Del(keys ...string) (int64, error)
	Incr(key string) (int64, error)
	RPush(key string, vals ...[]byte) (int64, error)
	LRange(key string, start, stop int64) ([][]byte, error)
	LRangeChunked(key string, window int64, fn func(batch [][]byte) error) error
	LLen(key string) (int64, error)
	Ping() error
	Do(cmd string, args ...[]byte) (Reply, error)
	Pipe(width int) (Pipe, error)
	Close() error
}

// Pipe is the pipelining surface behind KV: a width-bounded command
// batcher whose Finish returns every reply in send order. *Pipeline
// implements it over one connection; *ClusterPipeline fans the same
// ordering guarantee out across slot owners.
type Pipe interface {
	Expect(total int)
	Send(cmd string, args ...[]byte) error
	Finish() ([]Reply, error)
	FinishInto(dst []Reply) ([]Reply, error)
	Reuse(dst []Reply)
}

// idempotent lists the commands safe to blindly re-send: re-executing
// them converges to the same store state and reply semantics.
var idempotent = map[string]bool{
	"GET": true, "SET": true, "MGET": true, "MSET": true,
	"DEL": true, "EXISTS": true,
	"LLEN": true, "LRANGE": true, "LINDEX": true, "STRLEN": true,
	"PING": true, "ECHO": true, "DBSIZE": true,
}

// Dial connects to a store at addr with the given timeout, with no
// fault tolerance (zero Options).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, timeout, Options{})
}

// DialOptions connects to a store at addr with per-operation deadlines
// and retry behavior from opts.
func DialOptions(addr string, timeout time.Duration, opts Options) (*Client, error) {
	opts.normalize()
	c := &Client{
		addr:        addr,
		dialTimeout: timeout,
		opts:        opts,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		metrics:     newClientMetrics(opts.Telemetry),
	}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	c.attach(conn)
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.opts.Dialer != nil {
		return c.opts.Dialer(c.addr, c.dialTimeout)
	}
	return net.DialTimeout("tcp", c.addr, c.dialTimeout)
}

// attach installs conn as the client's live connection.
func (c *Client) attach(conn net.Conn) {
	c.conn = conn
	if c.r == nil {
		c.r = bufio.NewReaderSize(conn, 64<<10)
		c.w = bufio.NewWriterSize(conn, 64<<10)
	} else {
		c.r.Reset(conn)
		c.w.Reset(conn)
	}
	c.broken = false
}

// markBroken declares the connection dead: pending pipelined replies
// are unrecoverable, so pipeline state is discarded and the next
// immediate command re-dials.
func (c *Client) markBroken() {
	c.broken = true
	c.pending = 0
	c.buffered = nil
	if c.conn != nil {
		c.conn.Close()
	}
}

// reconnect re-dials and swaps in the fresh connection. The caller
// holds c.mu.
func (c *Client) reconnect() error {
	if c.conn != nil {
		c.conn.Close()
	}
	conn, err := c.dial()
	if err != nil {
		return fmt.Errorf("kvstore: reconnect %s: %w", c.addr, err)
	}
	c.attach(conn)
	if c.metrics != nil {
		c.metrics.reconnects.Inc()
	}
	return nil
}

// armDeadline sets the per-operation deadline on the live connection.
func (c *Client) armDeadline() {
	if c.opts.OpTimeout > 0 && c.conn != nil {
		c.conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
	}
}

// backoff sleeps before retry attempt (1-based), exponential with
// jitter in [d/2, d].
func (c *Client) backoff(attempt int) {
	d := c.opts.RetryBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// exchange writes one command, drains any pipelined replies into the
// pipeline buffer, and reads the command's own reply. The caller holds
// c.mu. On error the connection is marked broken.
func (c *Client) exchange(cmd string, args [][]byte) (Reply, error) {
	if c.broken {
		if err := c.reconnect(); err != nil {
			return Reply{}, err
		}
	}
	c.armDeadline()
	if err := WriteCommand(c.w, cmd, args...); err != nil {
		c.markBroken()
		return Reply{}, err
	}
	if err := c.w.Flush(); err != nil {
		c.markBroken()
		return Reply{}, err
	}
	// Drain earlier pipelined replies; they belong to the active
	// pipeline, so keep them for its Flush instead of discarding.
	for c.pending > 0 {
		c.armDeadline()
		rep, err := ReadReply(c.r)
		if err != nil {
			c.markBroken()
			return Reply{}, err
		}
		c.buffered = append(c.buffered, rep)
		c.pending--
	}
	c.armDeadline()
	rep, err := ReadReply(c.r)
	if err != nil {
		c.markBroken()
		return Reply{}, err
	}
	return rep, nil
}

// Do sends one command and waits for its reply (flushing any pipelined
// commands first so ordering is preserved; their replies are buffered
// for the pipeline's Flush, not discarded). Idempotent commands are
// retried per Options when the connection fails — unless pipelined
// commands are in flight, whose replies a re-sent command could never
// recover.
func (c *Client) Do(cmd string, args ...[]byte) (Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.metrics; m != nil {
		start := time.Now()
		rep, err := c.doLocked(cmd, args)
		m.ops.Inc()
		m.opLatency.Observe(time.Since(start).Nanoseconds())
		if err != nil {
			m.opErrors.Inc()
		}
		return rep, err
	}
	return c.doLocked(cmd, args)
}

// doLocked is Do's body; the caller holds c.mu.
func (c *Client) doLocked(cmd string, args [][]byte) (Reply, error) {
	if c.pending > 0 {
		return c.exchange(cmd, args)
	}
	rep, err := c.exchange(cmd, args)
	if err == nil || c.opts.MaxRetries <= 0 {
		return rep, err
	}
	if !idempotent[strings.ToUpper(cmd)] {
		return Reply{}, fmt.Errorf("kvstore: %s failed (%v): %w", cmd, err, ErrNotRetryable)
	}
	for attempt := 1; attempt <= c.opts.MaxRetries; attempt++ {
		if c.metrics != nil {
			c.metrics.retries.Inc()
		}
		c.backoff(attempt)
		rep, err = c.exchange(cmd, args)
		if err == nil {
			return rep, nil
		}
	}
	return Reply{}, fmt.Errorf("kvstore: %s failed after %d retries: %w", cmd, c.opts.MaxRetries, err)
}

// Send enqueues a command without reading its reply; Flush collects
// all outstanding replies in order. This is the pipelining primitive.
func (c *Client) Send(cmd string, args ...[]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		if err := c.reconnect(); err != nil {
			return err
		}
	}
	if err := WriteCommand(c.w, cmd, args...); err != nil {
		c.markBroken()
		return err
	}
	c.pending++
	return nil
}

// Flush pushes buffered commands to the server and reads every
// outstanding reply, in command order (including replies a concurrent
// Do already drained). Pipelined commands are not retried: on a
// connection failure the pipeline's replies are lost, the error is
// returned, and the caller re-issues the batch (idempotent as a unit,
// e.g. DEL + re-push). The returned replies are freshly allocated and
// owned by the caller.
func (c *Client) Flush() ([]Reply, error) {
	return c.FlushInto(nil)
}

// FlushInto is Flush appending into dst, reusing its capacity — both
// the slice and, when slots are recycled from a previous batch, each
// Reply's Bulk/Array buffers.
//
// Ownership: replies appended by FlushInto (and any bulk payloads
// reachable through recycled slots) are valid until dst is passed to
// another FlushInto/FinishInto call; copy anything retained longer.
func (c *Client) FlushInto(dst []Reply) ([]Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.metrics != nil && c.pending > 0 {
		c.metrics.pipelineDepth.Observe(int64(c.pending))
	}
	c.armDeadline()
	if err := c.w.Flush(); err != nil {
		c.markBroken()
		return dst, err
	}
	dst = append(dst, c.buffered...)
	c.buffered = nil
	for c.pending > 0 {
		c.armDeadline()
		i := len(dst)
		if cap(dst) > i {
			dst = dst[:i+1] // expose the recycled slot, buffers intact
		} else {
			dst = append(dst, Reply{})
		}
		if err := ReadReplyInto(c.r, &dst[i], MaxBulkLen); err != nil {
			c.markBroken()
			return dst[:i], err
		}
		c.pending--
	}
	return dst, nil
}

// ErrNil is returned by typed helpers when the key does not exist.
var ErrNil = errors.New("kvstore: nil reply")

// Get fetches a string key; ErrNil if absent.
func (c *Client) Get(key string) ([]byte, error) {
	rep, err := c.Do("GET", []byte(key))
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	if rep.Type == NullBulk {
		return nil, ErrNil
	}
	return rep.Bulk, nil
}

// Set stores a string key.
func (c *Client) Set(key string, val []byte) error {
	rep, err := c.Do("SET", []byte(key), val)
	if err != nil {
		return err
	}
	return rep.Err()
}

// MSet stores keys[i] ← vals[i] in one round trip (the bulk
// materialization primitive: a whole placement's partitions land in
// O(stores) commands instead of O(records)).
func (c *Client) MSet(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: mset with %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	args := make([][]byte, 0, 2*len(keys))
	for i, k := range keys {
		args = append(args, []byte(k), vals[i])
	}
	rep, err := c.Do("MSET", args...)
	if err != nil {
		return err
	}
	return rep.Err()
}

// MGet fetches many string keys in one round trip; a missing (or
// non-string) key yields a nil entry.
func (c *Client) MGet(keys ...string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	rep, err := c.Do("MGET", args...)
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	if len(rep.Array) != len(keys) {
		return nil, fmt.Errorf("kvstore: mget returned %d of %d values", len(rep.Array), len(keys))
	}
	out := make([][]byte, len(keys))
	for i, el := range rep.Array {
		if el.Type == BulkString {
			out[i] = el.Bulk
		}
	}
	return out, nil
}

// Incr atomically increments a counter key and returns the new value.
func (c *Client) Incr(key string) (int64, error) {
	rep, err := c.Do("INCR", []byte(key))
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// RPush appends values to a list and returns the new length.
func (c *Client) RPush(key string, vals ...[]byte) (int64, error) {
	args := make([][]byte, 0, len(vals)+1)
	args = append(args, []byte(key))
	args = append(args, vals...)
	rep, err := c.Do("RPUSH", args...)
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// LRange fetches list elements in [start, stop] (inclusive, negative
// indices count from the end, as in Redis).
func (c *Client) LRange(key string, start, stop int64) ([][]byte, error) {
	rep, err := c.Do("LRANGE", []byte(key),
		[]byte(strconv.FormatInt(start, 10)), []byte(strconv.FormatInt(stop, 10)))
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(rep.Array))
	for i, el := range rep.Array {
		out[i] = el.Bulk
	}
	return out, nil
}

// LRangeChunked streams a list through fn in bounded LRANGE windows of
// at most window elements, so a huge list (a recovery re-read of a
// whole shard) never materializes in memory at once. fn's batch is
// owned by fn for the duration of the call only as far as the slice
// header goes — the element payloads are freshly allocated and may be
// retained. A non-nil error from fn stops the scan and is returned.
func (c *Client) LRangeChunked(key string, window int64, fn func(batch [][]byte) error) error {
	if window < 1 {
		return fmt.Errorf("kvstore: lrange window %d, need ≥ 1", window)
	}
	for start := int64(0); ; start += window {
		batch, err := c.LRange(key, start, start+window-1)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			return nil
		}
		if err := fn(batch); err != nil {
			return err
		}
		if int64(len(batch)) < window {
			return nil
		}
	}
}

// LRangeFrom reads a list from the given start index in fixed-size
// windows, calling fn with each non-empty batch, and returns the index
// one past the last element read. Unlike LRangeChunked it does not
// restart at the head, so a stream consumer can tail a list producers
// keep RPUSHing to: persist the returned cursor and pass it back as
// start on the next poll.
func (c *Client) LRangeFrom(key string, start, window int64, fn func(batch [][]byte) error) (int64, error) {
	if window < 1 {
		return start, fmt.Errorf("kvstore: lrange window %d, need ≥ 1", window)
	}
	if start < 0 {
		start = 0
	}
	for {
		batch, err := c.LRange(key, start, start+window-1)
		if err != nil {
			return start, err
		}
		if len(batch) == 0 {
			return start, nil
		}
		if err := fn(batch); err != nil {
			return start, err
		}
		start += int64(len(batch))
		if int64(len(batch)) < window {
			return start, nil
		}
	}
}

// LLen returns a list's length.
func (c *Client) LLen(key string) (int64, error) {
	rep, err := c.Do("LLEN", []byte(key))
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int64, error) {
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	rep, err := c.Do("DEL", args...)
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// Ping round-trips the connection.
func (c *Client) Ping() error {
	rep, err := c.Do("PING")
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}
	if rep.Str != "PONG" {
		return fmt.Errorf("kvstore: unexpected ping reply %q", rep.Str)
	}
	return nil
}

// Pipeline is a convenience wrapper enforcing a maximum width: Send
// auto-flushes once width commands are queued, mirroring the preset
// pipeline width of paper §IV.
//
// Reply accumulation is bounded by preallocation: call Expect with the
// batch's total command count (known to every shipping path) and the
// accumulator is sized once instead of regrowing across a long ship.
type Pipeline struct {
	c       *Client
	width   int
	queued  int
	sent    int
	replies []Reply
}

// NewPipeline creates a pipeline of the given width (≥ 1).
func (c *Client) NewPipeline(width int) (*Pipeline, error) {
	if width < 1 {
		return nil, fmt.Errorf("kvstore: pipeline width %d, need ≥ 1", width)
	}
	return &Pipeline{c: c, width: width}, nil
}

// Pipe is NewPipeline behind the KV interface. The explicit nil-error
// guard keeps a typed-nil *Pipeline out of the interface value.
func (c *Client) Pipe(width int) (Pipe, error) {
	p, err := c.NewPipeline(width)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Expect hints the total number of commands this pipeline will carry,
// preallocating the reply accumulator in one shot. Calling it is never
// required and a low hint only costs the regrowth it failed to avoid.
func (p *Pipeline) Expect(total int) {
	if total > cap(p.replies) {
		grown := make([]Reply, len(p.replies), total)
		copy(grown, p.replies)
		p.replies = grown
	}
}

// Send enqueues a command, flushing automatically at the width bound.
func (p *Pipeline) Send(cmd string, args ...[]byte) error {
	if err := p.c.Send(cmd, args...); err != nil {
		return err
	}
	p.queued++
	p.sent++
	if p.queued >= p.width {
		return p.flushInto()
	}
	return nil
}

func (p *Pipeline) flushInto() error {
	// First flush with no Expect hint: preallocate from the send count
	// so far, the best lower bound available.
	if p.replies == nil && p.sent > 0 {
		p.replies = make([]Reply, 0, p.sent)
	}
	reps, err := p.c.FlushInto(p.replies)
	p.replies = reps
	p.queued = 0
	return err
}

// Finish flushes any remainder and returns every reply in send order.
//
// Ownership: the returned slice and everything reachable through it
// belong to the caller; the pipeline forgets it and a subsequent batch
// on the same pipeline starts a fresh accumulation.
func (p *Pipeline) Finish() ([]Reply, error) {
	if p.queued > 0 {
		if err := p.flushInto(); err != nil {
			out := p.replies
			p.replies = nil
			p.sent = 0
			return out, err
		}
	}
	out := p.replies
	p.replies = nil
	p.sent = 0
	return out, nil
}

// FinishInto is Finish appending into dst (reusing its capacity): a
// retry loop that ships batch after batch can recycle one reply slice
// — and, through FlushInto's slot reuse, the bulk buffers inside it —
// instead of allocating a fresh accumulation per attempt.
//
// Ownership: the returned slice is valid until it is recycled into
// another FinishInto/FlushInto call. For zero-copy reuse across
// batches, seed the pipeline with it *before* the first Send via
// p.Reuse(dst); FinishInto alone reuses dst for replies accumulated
// after auto-flushed ones are copied over (cheap: Reply headers only).
func (p *Pipeline) FinishInto(dst []Reply) ([]Reply, error) {
	out := append(dst[:0], p.replies...)
	p.replies = out
	reps, err := p.Finish()
	return reps, err
}

// Reuse seeds the pipeline's reply accumulator with dst[:0], recycling
// the slice and the Reply buffers inside it for the next batch. Call
// between batches, never with commands in flight.
func (p *Pipeline) Reuse(dst []Reply) {
	p.replies = dst[:0]
	p.sent = 0
}
