package kvstore

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"testing"
)

func TestEngineSetGetDel(t *testing.T) {
	e := NewEngine()
	if rep := e.Do("GET", []byte("missing")); rep.Type != NullBulk {
		t.Errorf("GET missing = %v", rep)
	}
	if rep := e.Do("SET", []byte("k"), []byte("v")); rep.Str != "OK" {
		t.Errorf("SET = %v", rep)
	}
	if rep := e.Do("GET", []byte("k")); string(rep.Bulk) != "v" {
		t.Errorf("GET = %v", rep)
	}
	if rep := e.Do("EXISTS", []byte("k"), []byte("nope")); rep.Int != 1 {
		t.Errorf("EXISTS = %v", rep)
	}
	if rep := e.Do("DEL", []byte("k"), []byte("nope")); rep.Int != 1 {
		t.Errorf("DEL = %v", rep)
	}
	if rep := e.Do("GET", []byte("k")); rep.Type != NullBulk {
		t.Errorf("GET after DEL = %v", rep)
	}
}

func TestEngineIncr(t *testing.T) {
	e := NewEngine()
	if rep := e.Do("INCR", []byte("c")); rep.Int != 1 {
		t.Errorf("first INCR = %v", rep)
	}
	if rep := e.Do("INCRBY", []byte("c"), []byte("41")); rep.Int != 42 {
		t.Errorf("INCRBY = %v", rep)
	}
	if rep := e.Do("INCRBY", []byte("c"), []byte("-2")); rep.Int != 40 {
		t.Errorf("negative INCRBY = %v", rep)
	}
	e.Do("SET", []byte("s"), []byte("notanumber"))
	if rep := e.Do("INCR", []byte("s")); rep.Type != ErrorReply {
		t.Errorf("INCR on text = %v", rep)
	}
	if rep := e.Do("INCRBY", []byte("c"), []byte("xx")); rep.Type != ErrorReply {
		t.Errorf("INCRBY bad delta = %v", rep)
	}
}

func TestEngineIncrAtomicity(t *testing.T) {
	e := NewEngine()
	var wg sync.WaitGroup
	const workers, per = 16, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if rep := e.Do("INCR", []byte("n")); rep.Type == ErrorReply {
					t.Error(rep.Str)
					return
				}
			}
		}()
	}
	wg.Wait()
	rep := e.Do("GET", []byte("n"))
	n, err := strconv.Atoi(string(rep.Bulk))
	if err != nil || n != workers*per {
		t.Errorf("counter = %q, want %d", rep.Bulk, workers*per)
	}
}

func TestEngineLists(t *testing.T) {
	e := NewEngine()
	if rep := e.Do("RPUSH", []byte("l"), []byte("a"), []byte("b")); rep.Int != 2 {
		t.Errorf("RPUSH = %v", rep)
	}
	if rep := e.Do("LPUSH", []byte("l"), []byte("z")); rep.Int != 3 {
		t.Errorf("LPUSH = %v", rep)
	}
	if rep := e.Do("LLEN", []byte("l")); rep.Int != 3 {
		t.Errorf("LLEN = %v", rep)
	}
	rep := e.Do("LRANGE", []byte("l"), []byte("0"), []byte("-1"))
	if len(rep.Array) != 3 || string(rep.Array[0].Bulk) != "z" || string(rep.Array[2].Bulk) != "b" {
		t.Errorf("LRANGE = %v", rep)
	}
	if rep := e.Do("LINDEX", []byte("l"), []byte("-1")); string(rep.Bulk) != "b" {
		t.Errorf("LINDEX -1 = %v", rep)
	}
	if rep := e.Do("LINDEX", []byte("l"), []byte("99")); rep.Type != NullBulk {
		t.Errorf("LINDEX out of range = %v", rep)
	}
	// Range semantics.
	if rep := e.Do("LRANGE", []byte("l"), []byte("5"), []byte("9")); len(rep.Array) != 0 {
		t.Errorf("empty LRANGE = %v", rep)
	}
	if rep := e.Do("LRANGE", []byte("l"), []byte("-2"), []byte("-1")); len(rep.Array) != 2 {
		t.Errorf("negative LRANGE = %v", rep)
	}
	if rep := e.Do("LLEN", []byte("missing")); rep.Int != 0 {
		t.Errorf("LLEN missing = %v", rep)
	}
}

func TestEngineWrongType(t *testing.T) {
	e := NewEngine()
	e.Do("SET", []byte("s"), []byte("v"))
	e.Do("RPUSH", []byte("l"), []byte("v"))
	if rep := e.Do("RPUSH", []byte("s"), []byte("x")); rep.Type != ErrorReply {
		t.Errorf("RPUSH on string = %v", rep)
	}
	if rep := e.Do("GET", []byte("l")); rep.Type != ErrorReply {
		t.Errorf("GET on list = %v", rep)
	}
	if rep := e.Do("INCR", []byte("l")); rep.Type != ErrorReply {
		t.Errorf("INCR on list = %v", rep)
	}
	if rep := e.Do("LLEN", []byte("s")); rep.Type != ErrorReply {
		t.Errorf("LLEN on string = %v", rep)
	}
	// SET over a list replaces it (Redis semantics).
	if rep := e.Do("SET", []byte("l"), []byte("now-string")); rep.Str != "OK" {
		t.Errorf("SET over list = %v", rep)
	}
	if rep := e.Do("GET", []byte("l")); string(rep.Bulk) != "now-string" {
		t.Errorf("GET after overwrite = %v", rep)
	}
}

func TestEngineAppendStrlen(t *testing.T) {
	e := NewEngine()
	if rep := e.Do("APPEND", []byte("a"), []byte("foo")); rep.Int != 3 {
		t.Errorf("APPEND = %v", rep)
	}
	if rep := e.Do("APPEND", []byte("a"), []byte("bar")); rep.Int != 6 {
		t.Errorf("second APPEND = %v", rep)
	}
	if rep := e.Do("STRLEN", []byte("a")); rep.Int != 6 {
		t.Errorf("STRLEN = %v", rep)
	}
	if rep := e.Do("GET", []byte("a")); string(rep.Bulk) != "foobar" {
		t.Errorf("GET = %v", rep)
	}
}

func TestEngineFlushAndSize(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 20; i++ {
		e.Do("SET", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	e.Do("RPUSH", []byte("list"), []byte("x"))
	if rep := e.Do("DBSIZE"); rep.Int != 21 {
		t.Errorf("DBSIZE = %v", rep)
	}
	if rep := e.Do("FLUSHDB"); rep.Str != "OK" {
		t.Errorf("FLUSHDB = %v", rep)
	}
	if rep := e.Do("DBSIZE"); rep.Int != 0 {
		t.Errorf("DBSIZE after flush = %v", rep)
	}
}

func TestEngineArgValidation(t *testing.T) {
	e := NewEngine()
	bad := [][]string{
		{"GET"}, {"SET", "k"}, {"DEL"}, {"INCR"}, {"INCRBY", "k"},
		{"RPUSH", "k"}, {"LRANGE", "k", "0"}, {"LINDEX", "k"},
		{"ECHO"}, {"EXISTS"}, {"APPEND", "k"}, {"STRLEN"}, {"LLEN"},
	}
	for _, c := range bad {
		args := make([][]byte, len(c)-1)
		for i := range args {
			args[i] = []byte(c[i+1])
		}
		if rep := e.Do(c[0], args...); rep.Type != ErrorReply {
			t.Errorf("%v accepted: %v", c, rep)
		}
	}
	if rep := e.Do("NOSUCHCMD"); rep.Type != ErrorReply {
		t.Errorf("unknown command accepted: %v", rep)
	}
	if rep := e.Do("LINDEX", []byte("k"), []byte("abc")); rep.Type != ErrorReply {
		t.Errorf("non-integer index accepted: %v", rep)
	}
	if rep := e.Do("LRANGE", []byte("k"), []byte("a"), []byte("b")); rep.Type != ErrorReply {
		t.Errorf("non-integer range accepted: %v", rep)
	}
}

func TestEngineCaseInsensitive(t *testing.T) {
	e := NewEngine()
	if rep := e.Do("set", []byte("k"), []byte("v")); rep.Str != "OK" {
		t.Errorf("lowercase set = %v", rep)
	}
	if rep := e.Do("gEt", []byte("k")); string(rep.Bulk) != "v" {
		t.Errorf("mixed-case get = %v", rep)
	}
}

func TestEngineValueIsolation(t *testing.T) {
	// Values must be copied in and out: mutating caller buffers after
	// SET, or returned buffers after GET, cannot corrupt the store.
	e := NewEngine()
	buf := []byte("original")
	e.Do("SET", []byte("k"), buf)
	buf[0] = 'X'
	rep := e.Do("GET", []byte("k"))
	if string(rep.Bulk) != "original" {
		t.Error("store aliases caller's SET buffer")
	}
	rep.Bulk[0] = 'Y'
	rep2 := e.Do("GET", []byte("k"))
	if string(rep2.Bulk) != "original" {
		t.Error("store aliases returned GET buffer")
	}
	// Same for lists.
	lv := []byte("item")
	e.Do("RPUSH", []byte("l"), lv)
	lv[0] = 'Z'
	rep3 := e.Do("LINDEX", []byte("l"), []byte("0"))
	if !bytes.Equal(rep3.Bulk, []byte("item")) {
		t.Error("list aliases pushed buffer")
	}
}

func TestEnginePingEcho(t *testing.T) {
	e := NewEngine()
	if rep := e.Do("PING"); rep.Str != "PONG" {
		t.Errorf("PING = %v", rep)
	}
	if rep := e.Do("PING", []byte("hi")); string(rep.Bulk) != "hi" {
		t.Errorf("PING msg = %v", rep)
	}
	if rep := e.Do("ECHO", []byte("x")); string(rep.Bulk) != "x" {
		t.Errorf("ECHO = %v", rep)
	}
}

func TestEngineConcurrentMixedOps(t *testing.T) {
	e := NewEngine()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("worker%d", w))
			for i := 0; i < 200; i++ {
				e.Do("RPUSH", key, []byte{byte(i)})
				e.Do("LLEN", key)
				e.Do("SET", []byte(fmt.Sprintf("s%d-%d", w, i%10)), []byte("v"))
				e.Do("GET", []byte(fmt.Sprintf("s%d-%d", (w+1)%8, i%10)))
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		rep := e.Do("LLEN", []byte(fmt.Sprintf("worker%d", w)))
		if rep.Int != 200 {
			t.Errorf("worker %d list len %d", w, rep.Int)
		}
	}
}

func BenchmarkEngineSet(b *testing.B) {
	e := NewEngine()
	key := []byte("bench")
	val := bytes.Repeat([]byte("v"), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Do("SET", key, val)
	}
}

func BenchmarkEngineRPush(b *testing.B) {
	e := NewEngine()
	val := bytes.Repeat([]byte("v"), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			e.Flush()
		}
		e.Do("RPUSH", []byte("l"), val)
	}
}

// TestEngineCopiesArguments guards the zero-copy boundary forever: the
// server parses commands into a pooled arena and recycles it after
// every Do, so the engine must copy anything it stores. Mutating the
// caller's buffers after the call must never reach stored state.
func TestEngineCopiesArguments(t *testing.T) {
	e := NewEngine()
	key := []byte("k")
	val := []byte("value")
	e.Do("SET", key, val)
	key[0], val[0] = 'X', 'X'
	if rep := e.Do("GET", []byte("k")); string(rep.Bulk) != "value" {
		t.Errorf("SET aliased caller memory: stored %q", rep.Bulk)
	}

	lkey := []byte("l")
	el1, el2 := []byte("aa"), []byte("bb")
	e.Do("RPUSH", lkey, el1, el2)
	el1[0], el2[0], lkey[0] = 'X', 'X', 'X'
	el3 := []byte("front")
	e.Do("LPUSH", []byte("l"), el3)
	el3[0] = 'X'
	rep := e.Do("LRANGE", []byte("l"), []byte("0"), []byte("-1"))
	if len(rep.Array) != 3 || string(rep.Array[0].Bulk) != "front" ||
		string(rep.Array[1].Bulk) != "aa" || string(rep.Array[2].Bulk) != "bb" {
		t.Errorf("RPUSH/LPUSH aliased caller memory: %v", rep.Array)
	}

	akey, aval := []byte("app"), []byte("tail")
	e.Do("APPEND", akey, aval)
	aval[0] = 'X'
	e.Do("APPEND", []byte("app"), []byte("!"))
	if rep := e.Do("GET", []byte("app")); string(rep.Bulk) != "tail!" {
		t.Errorf("APPEND aliased caller memory: %q", rep.Bulk)
	}

	mk, mv := []byte("mk"), []byte("mv")
	e.Do("MSET", mk, mv)
	mk[0], mv[0] = 'X', 'X'
	if rep := e.Do("GET", []byte("mk")); string(rep.Bulk) != "mv" {
		t.Errorf("MSET aliased caller memory: %q", rep.Bulk)
	}

	// And the read direction: replies must not alias engine storage.
	out := e.Do("GET", []byte("k"))
	out.Bulk[0] = 'Z'
	if rep := e.Do("GET", []byte("k")); string(rep.Bulk) != "value" {
		t.Errorf("GET reply aliases engine storage: %q", rep.Bulk)
	}
}

func TestEngineMSetMGet(t *testing.T) {
	e := NewEngine()
	if rep := e.Do("MSET", []byte("a")); rep.Type != ErrorReply {
		t.Error("odd MSET arity accepted")
	}
	if rep := e.Do("MSET"); rep.Type != ErrorReply {
		t.Error("empty MSET accepted")
	}
	if rep := e.Do("MGET"); rep.Type != ErrorReply {
		t.Error("empty MGET accepted")
	}
	if rep := e.Do("MSET", []byte("a"), []byte("1"), []byte("b"), []byte("2")); rep.Str != "OK" {
		t.Fatalf("MSET: %v", rep)
	}
	e.Do("RPUSH", []byte("lst"), []byte("x"))
	rep := e.Do("MGET", []byte("a"), []byte("missing"), []byte("b"), []byte("lst"))
	if rep.Type != Array || len(rep.Array) != 4 {
		t.Fatalf("MGET shape: %v", rep)
	}
	if string(rep.Array[0].Bulk) != "1" || string(rep.Array[2].Bulk) != "2" {
		t.Errorf("MGET values: %v", rep.Array)
	}
	if rep.Array[1].Type != NullBulk {
		t.Error("missing key must be null bulk")
	}
	if rep.Array[3].Type != NullBulk {
		t.Error("wrong-type key must be null bulk (Redis MGET semantics)")
	}
	// MSET overwrites a list key, like SET.
	if rep := e.Do("MSET", []byte("lst"), []byte("s")); rep.Str != "OK" {
		t.Fatalf("MSET over list: %v", rep)
	}
	if rep := e.Do("GET", []byte("lst")); string(rep.Bulk) != "s" {
		t.Errorf("MSET over list: %q", rep.Bulk)
	}
}
