//go:build linux

package kvstore

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT on Linux; the syscall package predates
// the option and never grew the constant.
const soReusePort = 0xf

// listenN binds n TCP listeners to one address with SO_REUSEPORT, so
// the kernel hashes incoming connections across n independent accept
// queues — the multi-core accept path. A ":0" address is resolved by
// the first bind and reused for the rest. If the reuseport bind fails
// outright the caller falls back to a single ordinary listener shared
// by n accept goroutines.
func listenN(addr string, n int) ([]net.Listener, error) {
	if n <= 1 {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	lns := make([]net.Listener, 0, n)
	bind := addr
	for i := 0; i < n; i++ {
		ln, err := lc.Listen(context.Background(), "tcp", bind)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			if i > 0 {
				// Reuseport worked once then failed (port raced away,
				// exotic netns): degrade to the shared-listener shape.
				ln, err = net.Listen("tcp", addr)
				if err == nil {
					return []net.Listener{ln}, nil
				}
			}
			return nil, err
		}
		lns = append(lns, ln)
		if i == 0 {
			bind = ln.Addr().String()
		}
	}
	return lns, nil
}
