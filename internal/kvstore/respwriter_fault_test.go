package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"pareto/internal/faultnet"
	"pareto/internal/telemetry"
)

// TestRespWriterPartialWriteMidBatch proves fault injection reaches the
// reply writer's gather-write path. Replies holding bulks at or above
// respZeroCopyMin leave flush() as a net.Buffers writev; on a wrapped
// (non-*net.TCPConn) connection that degrades to one Write per buffer,
// so a scripted Partial tears the batch between buffers — the classic
// torn writev. The client on the torn connection must see a clean
// error, and the server must keep serving fresh connections intact.
func TestRespWriterPartialWriteMidBatch(t *testing.T) {
	freg := telemetry.NewRegistry()
	srv := NewServer(nil)
	// Op 0 is the read of the pipelined request batch; ops 1+ are the
	// per-buffer writes of the reply flush. Partial on op 2 lands inside
	// the gather batch: after the first buffer, mid-way through the next.
	srv.SetConnWrapper(faultnet.Plan{
		Script:     []faultnet.Action{faultnet.Pass, faultnet.Pass, faultnet.Partial},
		FaultConns: 1,
		Telemetry:  freg,
	}.Wrapper())
	const nKeys = 4
	val := bytes.Repeat([]byte("z"), respZeroCopyMin+64)
	for i := 0; i < nKeys; i++ {
		if rep := srv.Engine().Do("SET", []byte(fmt.Sprintf("big%d", i)), val); rep.Err() != nil {
			t.Fatal(rep.Err())
		}
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Raw pipelined batch: nKeys GETs in one flush, so the server
	// answers with one multi-buffer gather-write.
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	bw := bufio.NewWriter(conn)
	for i := 0; i < nKeys; i++ {
		if err := WriteCommand(bw, "GET", []byte(fmt.Sprintf("big%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var readErr error
	complete := 0
	for i := 0; i < nKeys; i++ {
		rep, err := ReadReply(br)
		if err != nil {
			readErr = err
			break
		}
		if !bytes.Equal(rep.Bulk, val) {
			t.Fatalf("reply %d corrupt: %d bytes", i, len(rep.Bulk))
		}
		complete++
	}
	if readErr == nil {
		t.Fatal("read all replies through a torn writev batch")
	}
	if complete >= nKeys {
		t.Fatalf("complete replies = %d, want < %d", complete, nKeys)
	}
	// The injection really happened on the write side — the writev path
	// went through the wrapper, not around it.
	if n := freg.Snapshot().Counters[`faultnet_injected_total{action="partial"}`]; n != 1 {
		t.Fatalf("partial injections = %d, want 1 (reply path bypassed the conn wrapper?)", n)
	}

	// The torn batch was one connection's problem: a fresh connection
	// (past FaultConns) gets every reply whole.
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < nKeys; i++ {
		got, err := c.Get(fmt.Sprintf("big%d", i))
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("clean conn Get(big%d): %d bytes, %v", i, len(got), err)
		}
	}
}
