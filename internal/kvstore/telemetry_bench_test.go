package kvstore

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"pareto/internal/telemetry"
)

// benchInstrumented is benchServerClient with telemetry attached to
// both ends (a nil registry exercises the disabled fast path).
func benchInstrumented(b *testing.B, reg *telemetry.Registry) *Client {
	b.Helper()
	srv := NewServer(nil)
	srv.SetTelemetry(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := DialOptions(addr, 5*time.Second, Options{Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func runTelemetrySET(b *testing.B, reg *telemetry.Registry) {
	c := benchInstrumented(b, reg)
	key := []byte("bench:set")
	val := bytes.Repeat([]byte("v"), 64)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	runPipelined(b, c, func(p *Pipeline, _ int) error {
		return p.Send("SET", key, val)
	})
}

// BenchmarkTelemetryOverhead contrasts the pipelined SET hot path with
// telemetry off (nil registry) and on. The batched per-connection
// counters must keep "on" within a few percent of "off".
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { runTelemetrySET(b, nil) })
	b.Run("on", func(b *testing.B) { runTelemetrySET(b, telemetry.NewRegistry()) })
}

// TestTelemetryOverheadBudget enforces the ≤3% overhead budget. It is
// a timing assertion, so it only runs when explicitly requested via
// PARETO_TELEMETRY_OVERHEAD_CHECK=1 (the CI bench-smoke job sets it);
// plain `go test ./...` must never flake on scheduler noise. The
// budget percentage can be overridden with PARETO_TELEMETRY_OVERHEAD_PCT.
func TestTelemetryOverheadBudget(t *testing.T) {
	if os.Getenv("PARETO_TELEMETRY_OVERHEAD_CHECK") == "" {
		t.Skip("set PARETO_TELEMETRY_OVERHEAD_CHECK=1 to enforce the overhead budget")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	budget := 3.0
	if s := os.Getenv("PARETO_TELEMETRY_OVERHEAD_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("PARETO_TELEMETRY_OVERHEAD_PCT=%q: %v", s, err)
		}
		budget = v
	}
	// Interleave the two modes and keep each mode's best run, so a
	// transient noisy-neighbor episode cannot penalize one side only.
	const rounds = 3
	best := map[string]float64{"off": math.MaxFloat64, "on": math.MaxFloat64}
	for i := 0; i < rounds; i++ {
		for _, mode := range []string{"off", "on"} {
			var reg *telemetry.Registry
			if mode == "on" {
				reg = telemetry.NewRegistry()
			}
			r := testing.Benchmark(func(b *testing.B) { runTelemetrySET(b, reg) })
			if ns := float64(r.NsPerOp()); ns < best[mode] {
				best[mode] = ns
			}
		}
	}
	overhead := (best["on"] - best["off"]) / best["off"] * 100
	msg := fmt.Sprintf("pipelined SET: off=%.0fns/op on=%.0fns/op overhead=%.2f%% (budget %.1f%%)",
		best["off"], best["on"], overhead, budget)
	t.Log(msg)
	if overhead > budget {
		t.Errorf("telemetry overhead exceeds budget: %s", msg)
	}
}
