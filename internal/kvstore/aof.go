package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"pareto/internal/telemetry"
)

// AOF is an append-only command log with group commit. Every write
// command the server applies is framed into the log in RESP (the same
// encoding the wire uses, so replay is a ReadCommandInto loop), and
// durability is batched: writers append and then wait on Sync, and a
// single fsync covers every record that arrived during the previous
// sync window instead of one fsync per command. Layered on the
// snapshot (snapshot = compaction point, AOF = tail since the last
// snapshot), restart recovery replays LoadSnapshotFile + ReplayFile.
//
// Ordering guarantee: records append in the order each connection
// issues them (a connection's loop is serial), so per-connection
// replay order always matches apply order. Two racing writers on
// *different* connections hitting the same key may log in either
// order — the same ambiguity the live engine exposes to them.
type AOF struct {
	mu   sync.Mutex
	cond *sync.Cond

	f      *os.File
	cw     countingFileWriter
	w      *bufio.Writer
	seq    uint64 // last appended record
	synced uint64 // last record known durable (fsync or snapshot)
	err    error  // sticky I/O error: the log is dead once it fails

	// syncing marks a group-commit leader mid-fsync; followers (and
	// Reset) wait on cond instead of issuing their own fsync.
	syncing bool
	closed  bool

	// window throttles fsyncs: consecutive group commits are at least
	// window apart, so a continuous pipelined load costs at most one
	// fsync per window, with every record that arrived in between
	// riding the same barrier.
	window   time.Duration
	lastSync time.Time

	m aofMetrics
}

type aofMetrics struct {
	fsyncs  *telemetry.Counter
	records *telemetry.Counter
	bytes   *telemetry.Counter
	waits   *telemetry.Counter // group-commit follower waits
	resets  *telemetry.Counter // rewrites (snapshot compactions)
}

// countingFileWriter counts bytes as bufio flushes them to the file;
// the count feeds the kv_aof_bytes_total counter at flush granularity.
type countingFileWriter struct {
	f *os.File
	n *telemetry.Counter
}

func (c countingFileWriter) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// DefaultAOFSyncWindow is the default group-commit window: small
// enough that an acknowledged write is durable within single-digit
// milliseconds, large enough that a deep pipeline's worth of commands
// shares one fsync.
const DefaultAOFSyncWindow = 2 * time.Millisecond

// OpenAOF opens (creating if absent) the log at path for appending.
// window ≤ 0 selects DefaultAOFSyncWindow; reg may be nil.
func OpenAOF(path string, window time.Duration, reg *telemetry.Registry) (*AOF, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: aof open: %w", err)
	}
	if window <= 0 {
		window = DefaultAOFSyncWindow
	}
	a := &AOF{
		f:      f,
		window: window,
		m: aofMetrics{
			fsyncs:  reg.Counter("kv_aof_fsyncs_total"),
			records: reg.Counter("kv_aof_records_total"),
			bytes:   reg.Counter("kv_aof_bytes_total"),
			waits:   reg.Counter("kv_aof_group_commit_waits_total"),
			resets:  reg.Counter("kv_aof_rewrites_total"),
		},
	}
	a.cw = countingFileWriter{f: f, n: a.m.bytes}
	a.w = bufio.NewWriterSize(a.cw, 64<<10)
	a.cond = sync.NewCond(&a.mu)
	return a, nil
}

// Append frames one command into the log's buffer and returns its
// sequence number; the record is durable only once Sync(seq) returns.
// The argument buffers are copied into the log's buffer before Append
// returns, so callers may recycle them immediately.
func (a *AOF) Append(cmd string, args [][]byte) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, errors.New("kvstore: aof closed")
	}
	if a.err != nil {
		return 0, a.err
	}
	if err := WriteCommand(a.w, cmd, args...); err != nil {
		a.err = err
		return 0, err
	}
	a.seq++
	a.m.records.Inc()
	return a.seq, nil
}

// Sync blocks until every record up to and including seq is durable.
// Group commit: the first waiter becomes the leader, sleeps out the
// remainder of the sync window (batching every record that arrives
// meanwhile), flushes, and fsyncs once; later waiters ride the same
// fsync or the next one.
func (a *AOF) Sync(seq uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.synced < seq {
		if a.err != nil {
			return a.err
		}
		if a.closed {
			return errors.New("kvstore: aof closed before sync")
		}
		if a.syncing {
			// Follower: a leader's fsync is in flight (or a Reset is
			// draining one); wait for its broadcast.
			a.m.waits.Inc()
			a.cond.Wait()
			continue
		}
		a.leaderCommitLocked()
	}
	return a.err
}

// leaderCommitLocked performs one group commit as the leader. Called
// with a.mu held; releases and reacquires it around the sleep and the
// fsync so appenders keep running.
func (a *AOF) leaderCommitLocked() {
	a.syncing = true
	if a.window > 0 {
		if d := a.window - time.Since(a.lastSync); d > 0 {
			// Hold the fsync back to the window boundary; commands
			// appended during the sleep join this commit.
			a.mu.Unlock()
			time.Sleep(d)
			a.mu.Lock()
		}
	}
	target := a.seq
	err := a.w.Flush()
	a.mu.Unlock()
	// fsync outside the lock: appenders write into the bufio buffer
	// (or, past its capacity, the file) concurrently; those bytes have
	// seq > target and are covered by the next commit.
	if err == nil {
		err = a.f.Sync()
	}
	a.mu.Lock()
	a.lastSync = time.Now()
	a.syncing = false
	a.m.fsyncs.Inc()
	if err != nil {
		a.err = err
	} else if a.synced < target {
		a.synced = target
	}
	a.cond.Broadcast()
}

// Reset truncates the log after a snapshot has captured everything in
// it — the compaction step of a rewrite. Every appended record is
// marked durable (the snapshot holds it), so pending Sync calls
// return. The caller must guarantee the snapshot ordering (the
// server's persistMu write lock does).
func (a *AOF) Reset() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.syncing {
		a.cond.Wait() // drain an in-flight group commit first
	}
	if a.closed {
		return errors.New("kvstore: aof closed")
	}
	// Discard buffered frames (the snapshot supersedes them) and
	// truncate the file.
	a.w.Reset(a.cw)
	if err := a.f.Truncate(0); err != nil {
		a.err = err
		return fmt.Errorf("kvstore: aof truncate: %w", err)
	}
	if _, err := a.f.Seek(0, io.SeekStart); err != nil {
		a.err = err
		return fmt.Errorf("kvstore: aof seek: %w", err)
	}
	a.synced = a.seq
	a.err = nil
	a.m.resets.Inc()
	a.cond.Broadcast()
	return nil
}

// Close flushes, fsyncs, and closes the log.
func (a *AOF) Close() error {
	a.mu.Lock()
	for a.syncing {
		a.cond.Wait()
	}
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	err := a.w.Flush()
	if err == nil {
		err = a.f.Sync()
	}
	if err == nil {
		a.synced = a.seq
	}
	cerr := a.f.Close()
	a.cond.Broadcast()
	a.mu.Unlock()
	if err != nil {
		return fmt.Errorf("kvstore: aof close: %w", err)
	}
	if cerr != nil {
		return fmt.Errorf("kvstore: aof close: %w", cerr)
	}
	return nil
}

// ReplayAOF applies every complete command in the log at path to the
// engine, in order, stopping cleanly at a truncated tail (a record cut
// off mid-write by a crash loses only itself — it was never
// acknowledged, because acknowledgment waits for fsync). Returns the
// number of commands applied. A missing file replays zero commands
// and returns os.ErrNotExist wrapped for the caller to ignore.
func ReplayAOF(path string, e *Engine) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var cb CommandBuffer
	n := 0
	for {
		cmd, args, err := ReadCommandInto(br, &cb, MaxBulkLen)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// Clean end, or a record truncated mid-payload: every
				// complete record before it has been applied.
				return n, nil
			}
			return n, fmt.Errorf("kvstore: aof replay at record %d: %w", n+1, err)
		}
		if rep := e.Do(cmd, args...); rep.Type == ErrorReply {
			return n, fmt.Errorf("kvstore: aof replay at record %d: %s", n+1, rep.Str)
		}
		n++
	}
}
