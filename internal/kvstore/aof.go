package kvstore

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"pareto/internal/telemetry"
)

// AOF is an append-only command log with group commit. Every write
// command the server applies is framed into the log in RESP (the same
// encoding the wire uses, so replay is a ReadCommandInto loop), and
// durability is batched: writers append and then wait on Sync, and a
// single fsync covers every record that arrived during the previous
// sync window instead of one fsync per command. Layered on the
// snapshot (snapshot = compaction point, AOF = tail since the last
// snapshot), restart recovery replays LoadSnapshotFileMark +
// ReplayAOFSince.
//
// Ordering guarantee: records append in the order each connection
// issues them (a connection's loop is serial), so per-connection
// replay order always matches apply order. Two racing writers on
// *different* connections hitting the same key may log in either
// order — the same ambiguity the live engine exposes to them.
//
// Every log starts with a fixed header carrying a random generation
// id; Reset (the compaction step of a snapshot rewrite) stamps a new
// generation. A snapshot embeds the (generation, offset) AOFMark it
// covers, so restart replay skips exactly the records the snapshot
// already contains — closing the crash window between a rewrite's
// snapshot rename and its log truncate, where a naive replay would
// double-apply non-idempotent commands (INCR, RPUSH, APPEND).
type AOF struct {
	mu   sync.Mutex
	cond *sync.Cond

	f      *os.File
	cw     countingFileWriter
	w      *bufio.Writer
	path   string // log file path (replication feeders open their own read fd)
	gen    uint64 // generation id from the file header
	seq    uint64 // last appended record
	synced uint64 // last record known durable (fsync or snapshot)
	off    int64  // byte offset past the last appended record (file + bufio)
	durOff int64  // byte offset covered by the last durability event
	err    error  // sticky I/O error: the log is dead once it fails

	// syncing marks a group-commit leader mid-fsync; followers (and
	// Reset) wait on cond instead of issuing their own fsync.
	syncing bool
	closed  bool

	// window throttles fsyncs: consecutive group commits are at least
	// window apart, so a continuous pipelined load costs at most one
	// fsync per window, with every record that arrived in between
	// riding the same barrier.
	window   time.Duration
	lastSync time.Time

	m aofMetrics
}

type aofMetrics struct {
	fsyncs  *telemetry.Counter
	records *telemetry.Counter
	bytes   *telemetry.Counter
	waits   *telemetry.Counter // group-commit follower waits
	resets  *telemetry.Counter // rewrites (snapshot compactions)
	errors  *telemetry.Counter // sticky-error trips
	sick    *telemetry.Gauge   // 1 while the log carries a sticky error
}

// countingFileWriter counts bytes as bufio flushes them to the file;
// the count feeds the kv_aof_bytes_total counter at flush granularity.
type countingFileWriter struct {
	f *os.File
	n *telemetry.Counter
}

func (c countingFileWriter) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// DefaultAOFSyncWindow is the default group-commit window: small
// enough that an acknowledged write is durable within single-digit
// milliseconds, large enough that a deep pipeline's worth of commands
// shares one fsync.
const DefaultAOFSyncWindow = 2 * time.Millisecond

// AOF file header: magic, one version byte, then the 8-byte LE
// generation id. Records follow immediately after.
const (
	aofMagic     = "PAOF"
	aofVersion   = 1
	aofHeaderLen = len(aofMagic) + 1 + 8
)

// AOFMark names a durable position in one log generation: the first
// Off bytes of the log whose header carries Gen. A snapshot embeds the
// mark it covers so restart replay resumes exactly past it; the zero
// mark matches no log (generation ids are never zero).
type AOFMark struct {
	Gen uint64
	Off int64
}

// newAOFGen draws a fresh nonzero generation id.
func newAOFGen() (uint64, error) {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("kvstore: aof generation: %w", err)
	}
	g := binary.LittleEndian.Uint64(b[:])
	if g == 0 {
		g = 1
	}
	return g, nil
}

func encodeAOFHeader(gen uint64) [aofHeaderLen]byte {
	var hdr [aofHeaderLen]byte
	copy(hdr[:], aofMagic)
	hdr[len(aofMagic)] = aofVersion
	binary.LittleEndian.PutUint64(hdr[len(aofMagic)+1:], gen)
	return hdr
}

// readAOFHeader validates the header at the start of f and returns the
// generation id. The caller has already ruled out short files.
func readAOFHeader(f *os.File) (uint64, error) {
	var hdr [aofHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("kvstore: aof header: %w", err)
	}
	if string(hdr[:len(aofMagic)]) != aofMagic {
		return 0, errors.New("kvstore: aof header: bad magic")
	}
	if hdr[len(aofMagic)] != aofVersion {
		return 0, fmt.Errorf("kvstore: aof header: unsupported version %d", hdr[len(aofMagic)])
	}
	return binary.LittleEndian.Uint64(hdr[len(aofMagic)+1:]), nil
}

// OpenAOF opens (creating if absent) the log at path for appending. An
// empty file gets a fresh generation header; an existing one must
// start with a valid header (EnableAOF truncates torn bytes away
// before reopening). window ≤ 0 selects DefaultAOFSyncWindow; reg may
// be nil.
func OpenAOF(path string, window time.Duration, reg *telemetry.Registry) (*AOF, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: aof open: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: aof open: %w", err)
	}
	var gen uint64
	if fi.Size() == 0 {
		if gen, err = newAOFGen(); err == nil {
			hdr := encodeAOFHeader(gen)
			_, err = f.Write(hdr[:])
		}
	} else {
		gen, err = readAOFHeader(f)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	if window <= 0 {
		window = DefaultAOFSyncWindow
	}
	fi, err = f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: aof open: %w", err)
	}
	a := &AOF{
		f:      f,
		path:   path,
		gen:    gen,
		off:    fi.Size(),
		durOff: fi.Size(),
		window: window,
		m: aofMetrics{
			fsyncs:  reg.Counter("kv_aof_fsyncs_total"),
			records: reg.Counter("kv_aof_records_total"),
			bytes:   reg.Counter("kv_aof_bytes_total"),
			waits:   reg.Counter("kv_aof_group_commit_waits_total"),
			resets:  reg.Counter("kv_aof_rewrites_total"),
			errors:  reg.Counter("kv_aof_errors_total"),
			sick:    reg.Gauge("kv_aof_error"),
		},
	}
	a.cw = countingFileWriter{f: f, n: a.m.bytes}
	a.w = bufio.NewWriterSize(a.cw, 64<<10)
	a.cond = sync.NewCond(&a.mu)
	return a, nil
}

// setErrLocked records a sticky I/O error and propagates it to the
// kv_aof_error gauge (and error counter), so dashboards see a sick
// disk the moment it fails instead of only the clients whose commands
// happened to hit it. Reset clears the gauge with the error.
func (a *AOF) setErrLocked(err error) {
	if a.err == nil {
		a.m.errors.Inc()
		a.m.sick.Set(1)
	}
	a.err = err
}

// respCmdLen is the exact RESP-encoded size of one command frame — the
// byte-offset bookkeeping behind the replication stream, cheaper than
// measuring the buffered writer around every Append.
func respCmdLen(cmd string, args [][]byte) int64 {
	n := 1 + digits(int64(1+len(args))) + 2 // *<n>\r\n
	n += bulkFrameLen(len(cmd))
	for _, arg := range args {
		n += bulkFrameLen(len(arg))
	}
	return int64(n)
}

// bulkFrameLen is the encoded size of one bulk frame: $<len>\r\n<payload>\r\n.
func bulkFrameLen(payload int) int {
	return 1 + digits(int64(payload)) + 2 + payload + 2
}

// digits counts the base-10 digits of a non-negative integer.
func digits(v int64) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// Append frames one command into the log's buffer and returns its
// sequence number; the record is durable only once Sync(seq) returns.
// The argument buffers are copied into the log's buffer before Append
// returns, so callers may recycle them immediately.
func (a *AOF) Append(cmd string, args [][]byte) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, errors.New("kvstore: aof closed")
	}
	if a.err != nil {
		return 0, a.err
	}
	if err := WriteCommand(a.w, cmd, args...); err != nil {
		a.setErrLocked(err)
		return 0, err
	}
	a.seq++
	a.off += respCmdLen(cmd, args)
	a.m.records.Inc()
	return a.seq, nil
}

// Mark returns the log's generation and the byte offset past the last
// appended (not necessarily durable) record — the watermark a
// replication full sync pairs with a point-in-time engine snapshot.
func (a *AOF) Mark() AOFMark {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AOFMark{Gen: a.gen, Off: a.off}
}

// DurablePos returns the generation and byte offset known durable (the
// last fsync or snapshot compaction). Replication feeders stream file
// bytes only up to this position, so a replica never applies a record
// the primary could still lose.
func (a *AOF) DurablePos() (gen uint64, off int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen, a.durOff
}

// Path returns the log's file path; replication feeders open their own
// read-only descriptors against it.
func (a *AOF) Path() string { return a.path }

// Sync blocks until every record up to and including seq is durable.
// Group commit: the first waiter becomes the leader, sleeps out the
// remainder of the sync window (batching every record that arrives
// meanwhile), flushes, and fsyncs once; later waiters ride the same
// fsync or the next one.
func (a *AOF) Sync(seq uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.synced < seq {
		if a.err != nil {
			return a.err
		}
		if a.closed {
			return errors.New("kvstore: aof closed before sync")
		}
		if a.syncing {
			// Follower: a leader's fsync is in flight (or a Reset is
			// draining one); wait for its broadcast.
			a.m.waits.Inc()
			a.cond.Wait()
			continue
		}
		a.leaderCommitLocked()
	}
	// synced >= seq: every record the caller asked about is durable
	// (an earlier fsync or a snapshot reset covered it), so report
	// success even if the log has failed for *later* records — the
	// sticky error belongs to the syncs that actually lost data.
	return nil
}

// leaderCommitLocked performs one group commit as the leader. Called
// with a.mu held; releases and reacquires it around the sleep and the
// fsync so appenders keep running.
func (a *AOF) leaderCommitLocked() {
	a.syncing = true
	if a.window > 0 {
		if d := a.window - time.Since(a.lastSync); d > 0 {
			// Hold the fsync back to the window boundary; commands
			// appended during the sleep join this commit.
			a.mu.Unlock()
			time.Sleep(d)
			a.mu.Lock()
		}
	}
	target := a.seq
	targetOff := a.off
	err := a.w.Flush()
	a.mu.Unlock()
	// fsync outside the lock: appenders write into the bufio buffer
	// (or, past its capacity, the file) concurrently; those bytes have
	// seq > target and are covered by the next commit.
	if err == nil {
		err = a.f.Sync()
	}
	a.mu.Lock()
	a.lastSync = time.Now()
	a.syncing = false
	a.m.fsyncs.Inc()
	if err != nil {
		a.setErrLocked(err)
	} else {
		if a.synced < target {
			a.synced = target
		}
		if a.durOff < targetOff {
			a.durOff = targetOff
		}
	}
	a.cond.Broadcast()
}

// DurableMark flushes and fsyncs the log and returns the mark covering
// everything appended so far — the watermark a snapshot embeds so that
// restart replay skips records the snapshot already contains. Must be
// called under the server's exclusive persistence lock (no appends can
// be in flight); in-flight Sync waiters are fine — they observe the
// fsync and return.
func (a *AOF) DurableMark() (AOFMark, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.syncing {
		a.cond.Wait() // drain an in-flight group commit first
	}
	if a.closed {
		return AOFMark{}, errors.New("kvstore: aof closed")
	}
	if a.err != nil {
		return AOFMark{}, a.err
	}
	// Holding a.mu across the fsync is acceptable here: the exclusive
	// persistence lock means no appender is running, and rewrites are
	// rare.
	if err := a.w.Flush(); err != nil {
		a.setErrLocked(err)
		return AOFMark{}, err
	}
	if err := a.f.Sync(); err != nil {
		a.setErrLocked(err)
		return AOFMark{}, err
	}
	fi, err := a.f.Stat()
	if err != nil {
		a.setErrLocked(err)
		return AOFMark{}, err
	}
	a.synced = a.seq
	a.off = fi.Size()
	a.durOff = fi.Size()
	a.m.fsyncs.Inc()
	a.cond.Broadcast()
	return AOFMark{Gen: a.gen, Off: fi.Size()}, nil
}

// Reset truncates the log after a snapshot has captured everything in
// it — the compaction step of a rewrite — and stamps a fresh
// generation header, so a snapshot carrying the *old* generation's
// mark can never mis-apply it to the new log. Every appended record is
// marked durable (the snapshot holds it), so pending Sync calls
// return. The caller must guarantee the snapshot ordering (the
// server's persistMu write lock does) and must have made the snapshot
// durable first.
func (a *AOF) Reset() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.syncing {
		a.cond.Wait() // drain an in-flight group commit first
	}
	if a.closed {
		return errors.New("kvstore: aof closed")
	}
	gen, err := newAOFGen()
	if err != nil {
		return err
	}
	// Discard buffered frames (the snapshot supersedes them), truncate
	// the file, and write the new generation header. The header is
	// fsynced immediately so the generation switch is durable before
	// any record of the new generation can be acknowledged (a record's
	// own group-commit fsync would also cover it, but Close may follow
	// with no records at all).
	a.w.Reset(a.cw)
	if err := a.f.Truncate(0); err != nil {
		a.setErrLocked(err)
		return fmt.Errorf("kvstore: aof truncate: %w", err)
	}
	if _, err := a.f.Seek(0, io.SeekStart); err != nil {
		a.setErrLocked(err)
		return fmt.Errorf("kvstore: aof seek: %w", err)
	}
	hdr := encodeAOFHeader(gen)
	if _, err := a.f.Write(hdr[:]); err != nil {
		a.setErrLocked(err)
		return fmt.Errorf("kvstore: aof header: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		a.setErrLocked(err)
		return fmt.Errorf("kvstore: aof header sync: %w", err)
	}
	a.gen = gen
	a.synced = a.seq
	a.off = int64(aofHeaderLen)
	a.durOff = int64(aofHeaderLen)
	a.err = nil
	a.m.sick.Set(0)
	a.m.resets.Inc()
	a.cond.Broadcast()
	return nil
}

// Close flushes, fsyncs, and closes the log.
func (a *AOF) Close() error {
	a.mu.Lock()
	for a.syncing {
		a.cond.Wait()
	}
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	err := a.w.Flush()
	if err == nil {
		err = a.f.Sync()
	}
	if err == nil {
		a.synced = a.seq
	}
	cerr := a.f.Close()
	a.cond.Broadcast()
	a.mu.Unlock()
	if err != nil {
		return fmt.Errorf("kvstore: aof close: %w", err)
	}
	if cerr != nil {
		return fmt.Errorf("kvstore: aof close: %w", cerr)
	}
	return nil
}

// abandon closes the log file without flushing or syncing — the crash
// half of Server.Kill. Records still buffered (never fsynced, so never
// acknowledged) are lost, exactly as a real crash would lose them;
// everything a group commit covered stays on disk.
func (a *AOF) abandon() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.f.Close()
	a.cond.Broadcast()
	a.mu.Unlock()
}

// ReplayAOF applies every complete command in the log at path to the
// engine, in order, stopping cleanly at a truncated tail (a record cut
// off mid-write by a crash loses only itself — it was never
// acknowledged, because acknowledgment waits for fsync). Returns the
// number of commands applied. A missing file replays zero commands
// and returns os.ErrNotExist wrapped for the caller to ignore.
func ReplayAOF(path string, e *Engine) (int, error) {
	n, _, err := ReplayAOFSince(path, e, AOFMark{})
	return n, err
}

// countingReader counts bytes drawn from the underlying reader, so the
// replay loop can locate the end of the last complete record even
// through bufio's read-ahead.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReplayAOFSince is ReplayAOF starting after mark: when mark names the
// log's own generation, replay resumes at mark.Off — the records
// before it are already inside the snapshot that carried the mark — and
// a mark from another generation (or the zero mark) replays the whole
// log. The returned mark holds the log's generation and the byte
// offset just past the last complete record: the truncation point for
// torn-tail recovery (EnableAOF truncates there before reopening for
// append, so new records never land behind unparseable bytes). A file
// shorter than its header replays nothing with end offset zero —
// nothing in it was ever acknowledged, since the first record fsync
// would have made the header durable too.
func ReplayAOFSince(path string, e *Engine, mark AOFMark) (int, AOFMark, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, AOFMark{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, AOFMark{}, err
	}
	if fi.Size() < int64(aofHeaderLen) {
		return 0, AOFMark{}, nil
	}
	gen, err := readAOFHeader(f)
	if err != nil {
		return 0, AOFMark{}, err
	}
	start := int64(aofHeaderLen)
	if mark.Gen == gen && mark.Off > start {
		// A mark past the file's end means the log shrank out from
		// under the snapshot (external tampering); clamping replays
		// nothing rather than double-applying snapshotted records.
		start = min(mark.Off, fi.Size())
	}
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return 0, AOFMark{}, err
	}
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 64<<10)
	var cb CommandBuffer
	n := 0
	end := start
	for {
		cmd, args, err := ReadCommandInto(br, &cb, MaxBulkLen)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// Clean end, or a record truncated mid-payload: every
				// complete record before it has been applied.
				return n, AOFMark{Gen: gen, Off: end}, nil
			}
			return n, AOFMark{Gen: gen, Off: end}, fmt.Errorf("kvstore: aof replay at record %d: %w", n+1, err)
		}
		if rep := e.Do(cmd, args...); rep.Type == ErrorReply {
			return n, AOFMark{Gen: gen, Off: end}, fmt.Errorf("kvstore: aof replay at record %d: %s", n+1, rep.Str)
		}
		n++
		end = start + cr.n - int64(br.Buffered())
	}
}
