package kvstore_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"pareto/internal/faultnet"
	"pareto/internal/kvstore"
)

// startFaultyStore runs a server whose accepted connections carry the
// fault plan, with key "k" pre-seeded to "v" directly in the engine (no
// client connection is spent on setup, so connection ids are the
// client's own).
func startFaultyStore(t *testing.T, plan faultnet.Plan) string {
	t.Helper()
	srv := kvstore.NewServer(nil)
	srv.SetConnWrapper(plan.Wrapper())
	if rep := srv.Engine().Do("SET", []byte("k"), []byte("v")); rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func retryOpts() kvstore.Options {
	return kvstore.Options{
		OpTimeout:    200 * time.Millisecond,
		MaxRetries:   4,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   10 * time.Millisecond,
		Seed:         7,
	}
}

// TestClientSurvivesMisbehavingStore drives idempotent commands
// against servers that close abruptly, truncate replies, or stall;
// with only the first connection faulted, the retry+reconnect path
// must converge to the correct answer.
func TestClientSurvivesMisbehavingStore(t *testing.T) {
	cases := []struct {
		name string
		plan faultnet.Plan
	}{
		{"abrupt close on request", faultnet.Plan{
			Script: []faultnet.Action{faultnet.Drop}, FaultConns: 1}},
		{"abrupt close before reply", faultnet.Plan{
			Script: []faultnet.Action{faultnet.Pass, faultnet.Drop}, FaultConns: 1}},
		{"partial reply", faultnet.Plan{
			Script: []faultnet.Action{faultnet.Pass, faultnet.Partial}, FaultConns: 1}},
		{"stalled server", faultnet.Plan{
			Script: []faultnet.Action{faultnet.Pass, faultnet.Stall},
			Stall:  time.Second, FaultConns: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := startFaultyStore(t, tc.plan)
			c, err := kvstore.DialOptions(addr, time.Second, retryOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			got, err := c.Get("k")
			if err != nil {
				t.Fatalf("Get through faults: %v", err)
			}
			if string(got) != "v" {
				t.Fatalf("Get = %q, want \"v\"", got)
			}
			// The healed connection keeps working.
			if err := c.Set("k2", []byte("w")); err != nil {
				t.Fatalf("Set after recovery: %v", err)
			}
			if err := c.Ping(); err != nil {
				t.Fatalf("Ping after recovery: %v", err)
			}
		})
	}
}

// TestNonIdempotentNotRetried proves INCR is never silently re-sent:
// a connection failure surfaces ErrNotRetryable so the caller decides.
func TestNonIdempotentNotRetried(t *testing.T) {
	addr := startFaultyStore(t, faultnet.Plan{
		Script: []faultnet.Action{faultnet.Pass, faultnet.Drop}, FaultConns: 1})
	c, err := kvstore.DialOptions(addr, time.Second, retryOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Incr("ctr"); !errors.Is(err, kvstore.ErrNotRetryable) {
		t.Fatalf("Incr on dropped conn: got %v, want ErrNotRetryable", err)
	}
	// The client itself recovers for the next idempotent command.
	if _, err := c.Get("k"); err != nil {
		t.Fatalf("Get after failed Incr: %v", err)
	}
}

// TestHungServerOpsBounded proves every client operation returns
// within 2×OpTimeout (one write deadline + one read deadline) when the
// server accepts but never answers, instead of blocking forever.
func TestHungServerOpsBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never reply
		}
	}()
	const opTimeout = 150 * time.Millisecond
	c, err := kvstore.DialOptions(ln.Addr().String(), time.Second,
		kvstore.Options{OpTimeout: opTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ops := map[string]func() error{
		"GET":    func() error { _, err := c.Get("k"); return err },
		"SET":    func() error { return c.Set("k", []byte("v")) },
		"INCR":   func() error { _, err := c.Incr("k"); return err },
		"RPUSH":  func() error { _, err := c.RPush("l", []byte("v")); return err },
		"LLEN":   func() error { _, err := c.LLen("l"); return err },
		"LRANGE": func() error { _, err := c.LRange("l", 0, -1); return err },
		"DEL":    func() error { _, err := c.Del("k"); return err },
		"PING":   func() error { return c.Ping() },
	}
	for name, op := range ops {
		start := time.Now()
		err := op()
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("%s against hung server succeeded", name)
		}
		if elapsed > 2*opTimeout {
			t.Fatalf("%s took %v, want ≤ 2×OpTimeout = %v", name, elapsed, 2*opTimeout)
		}
	}
}

// TestDoPreservesPipelinedReplies: replies drained by a Do issued
// while a pipeline is in flight must reach the pipeline's Finish
// instead of vanishing.
func TestDoPreservesPipelinedReplies(t *testing.T) {
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if rep := srv.Engine().Do("SET", []byte("other"), []byte("42")); rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	c, err := kvstore.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p, err := c.NewPipeline(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("SET", []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("GET", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// An interleaved immediate command must not corrupt the pipeline.
	got, err := c.Get("other")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "42" {
		t.Fatalf("interleaved Get = %q, want \"42\"", got)
	}
	reps, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("pipeline returned %d replies, want 2", len(reps))
	}
	if reps[0].Err() != nil || reps[0].Str != "OK" {
		t.Errorf("SET reply = %v", reps[0])
	}
	if string(reps[1].Bulk) != "1" {
		t.Errorf("GET reply = %q, want \"1\"", reps[1].Bulk)
	}
}

// TestBarrierAbort: aborting a barrier releases a blocked waiter
// promptly with ErrBarrierAborted, and the abort is sticky.
func TestBarrierAbort(t *testing.T) {
	srv := kvstore.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dial := func() *kvstore.Client {
		c, err := kvstore.Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	waiter, aborter := dial(), dial()
	bw, err := kvstore.NewBarrier(waiter, "ab", 2)
	if err != nil {
		t.Fatal(err)
	}
	bw.Timeout = 10 * time.Second
	ba, err := kvstore.NewBarrier(aborter, "ab", 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- bw.Await() }()
	time.Sleep(20 * time.Millisecond) // let the waiter block
	if err := ba.Abort("node down"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, kvstore.ErrBarrierAborted) {
			t.Fatalf("Await after abort: got %v, want ErrBarrierAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not release the waiter")
	}
	// Sticky: a later Await on the same name aborts immediately.
	if err := bw.Await(); !errors.Is(err, kvstore.ErrBarrierAborted) {
		t.Fatalf("second Await: got %v, want ErrBarrierAborted", err)
	}
}
