package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pareto/internal/telemetry"
)

// startCluster stands up n in-process slot-partitioned servers: each
// Listens first (so its advertised address is its real one), then the
// even SplitSlots map is installed on every node. Returns the node
// addresses in slot order.
func startCluster(t *testing.T, n int) ([]string, []*Server) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		srv := NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = addr
	}
	ranges := SplitSlots(addrs)
	for i, srv := range servers {
		if err := srv.SetClusterSlots(addrs[i], ranges); err != nil {
			t.Fatal(err)
		}
	}
	return addrs, servers
}

func dialClusterTest(t *testing.T, seeds []string, opts Options) *ClusterClient {
	t.Helper()
	cc, err := DialCluster(seeds, time.Second, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

func TestClusterClientRoutesAcrossNodes(t *testing.T) {
	addrs, servers := startCluster(t, 3)
	cc := dialClusterTest(t, addrs[:1], Options{}) // one seed primes the whole map

	if got := cc.Slots(); len(got) != 3 {
		t.Fatalf("Slots() = %+v, want 3 ranges", got)
	}
	// Write enough keys that every node certainly owns some.
	const n = 60
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("route:%d", i)
		if err := cc.Set(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set(%s): %v", key, err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := cc.Get(fmt.Sprintf("route:%d", i))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(route:%d) = %q, %v", i, got, err)
		}
	}
	// Each key must physically live on (only) the engine that owns its
	// slot — the routing really is by slot, not broadcast.
	ranges := SplitSlots(addrs)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("route:%d", i)
		slot := SlotForKey(key)
		for j, srv := range servers {
			rep := srv.Engine().Do("GET", []byte(key))
			owns := slot >= ranges[j].Lo && slot <= ranges[j].Hi
			if owns && rep.Type != BulkString {
				t.Errorf("%s (slot %d) missing from its owner node %d", key, slot, j)
			}
			if !owns && rep.Type != NullBulk {
				t.Errorf("%s (slot %d) leaked onto non-owner node %d", key, slot, j)
			}
		}
	}
	if _, err := cc.Get("route:missing"); !errors.Is(err, ErrNil) {
		t.Errorf("missing key error = %v, want ErrNil", err)
	}
	if err := cc.Ping(); err != nil {
		t.Errorf("cluster Ping: %v", err)
	}
}

func TestClusterClientChasesMoved(t *testing.T) {
	addrs, _ := startCluster(t, 3)
	reg := telemetry.NewRegistry()
	cc := dialClusterTest(t, addrs, Options{Telemetry: reg})

	key := "chase:me"
	if err := cc.Set(key, []byte("before")); err != nil {
		t.Fatal(err)
	}
	slot := SlotForKey(key)
	owner := cc.ownerOf(slot)
	// Poison the table: point the slot at a node that does NOT own it.
	var wrong string
	for _, a := range addrs {
		if a != owner {
			wrong = a
			break
		}
	}
	cc.setOwner(slot, wrong)

	// The Get lands on the wrong node, gets MOVED, chases it, succeeds.
	got, err := cc.Get(key)
	if err != nil || string(got) != "before" {
		t.Fatalf("Get after mispriming = %q, %v", got, err)
	}
	if repaired := cc.ownerOf(slot); repaired != owner {
		t.Errorf("table after chase points %d at %s, want %s", slot, repaired, owner)
	}
	moved := reg.Snapshot().Counters["kv_cluster_client_moved_total"]
	if moved < 1 {
		t.Errorf("kv_cluster_client_moved_total = %d, want ≥ 1", moved)
	}
}

func TestClusterMultiKeySplit(t *testing.T) {
	addrs, _ := startCluster(t, 3)
	cc := dialClusterTest(t, addrs[:1], Options{})

	const n = 40
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("multi:%d", i)
		vals[i] = []byte(fmt.Sprintf("mv%d", i))
	}
	if err := cc.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}
	got, err := cc.MGet(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("MGet returned %d values, want %d", len(got), n)
	}
	for i := range keys {
		if !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("MGet[%d] = %q, want %q (argument-order merge broken)", i, got[i], vals[i])
		}
	}
	// Absent keys interleave as nils in position.
	mixed, err := cc.MGet("multi:0", "multi:nope", "multi:1")
	if err != nil {
		t.Fatal(err)
	}
	if mixed[0] == nil || mixed[1] != nil || mixed[2] == nil {
		t.Fatalf("mixed MGet = %q", mixed)
	}
	deleted, err := cc.Del(keys...)
	if err != nil || deleted != n {
		t.Fatalf("Del = %d, %v; want %d", deleted, err, n)
	}
	got, err = cc.MGet(keys[:5]...)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != nil {
			t.Errorf("key %d survived Del", i)
		}
	}
}

func TestClusterPipelineMergesInSendOrder(t *testing.T) {
	addrs, _ := startCluster(t, 3)
	cc := dialClusterTest(t, addrs[:1], Options{})

	p, err := cc.Pipe(8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	p.Expect(2 * n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("pl:%d", i))
		if err := p.Send("SET", key, []byte(fmt.Sprintf("pv%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := p.Send("GET", key); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2*n {
		t.Fatalf("%d replies, want %d", len(reps), 2*n)
	}
	// Send order interleaves SET/GET per key; the merged replies must
	// line up even though they came back from three different nodes.
	for i := 0; i < n; i++ {
		if reps[2*i].Err() != nil {
			t.Fatalf("SET %d: %v", i, reps[2*i].Err())
		}
		want := fmt.Sprintf("pv%d", i)
		if got := string(reps[2*i+1].Bulk); got != want {
			t.Fatalf("reply %d = %q, want %q (cross-node merge out of order)", 2*i+1, got, want)
		}
	}
	// Keyless commands cannot take a position in the merged order.
	if err := p.Send("PING"); err == nil {
		t.Error("keyless Send on a cluster pipeline must error")
	}
}

func TestClusterPipelineMovedSurfacesError(t *testing.T) {
	addrs, _ := startCluster(t, 2)
	cc := dialClusterTest(t, addrs, Options{})

	key := "plmoved:x"
	slot := SlotForKey(key)
	owner := cc.ownerOf(slot)
	wrong := addrs[0]
	if wrong == owner {
		wrong = addrs[1]
	}
	cc.setOwner(slot, wrong)

	p, err := cc.Pipe(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send("SET", []byte(key), []byte("v")); err != nil {
		t.Fatal(err)
	}
	_, err = p.Finish()
	if err == nil || !strings.Contains(err.Error(), "MOVED") {
		t.Fatalf("Finish after misrouted pipeline = %v, want MOVED error", err)
	}
	// The redirect repaired the table: re-issuing the batch succeeds.
	if repaired := cc.ownerOf(slot); repaired != owner {
		t.Fatalf("table not repaired: %s, want %s", repaired, owner)
	}
	p2, err := cc.Pipe(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Send("SET", []byte(key), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Finish(); err != nil {
		t.Fatalf("re-issued batch: %v", err)
	}
	got, err := cc.Get(key)
	if err != nil || string(got) != "v" {
		t.Fatalf("Get after re-issue = %q, %v", got, err)
	}
}

func TestClusterClientRefreshOnUnknownSlot(t *testing.T) {
	addrs, _ := startCluster(t, 2)
	cc := dialClusterTest(t, addrs[:1], Options{})
	// Blow the whole table away; the next command must re-prime it from
	// the pooled connections instead of failing.
	cc.mu.Lock()
	cc.owner = [NumSlots]string{}
	cc.mu.Unlock()
	if err := cc.Set("refresh:k", []byte("v")); err != nil {
		t.Fatalf("Set after table wipe: %v", err)
	}
	got, err := cc.Get("refresh:k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get after table wipe = %q, %v", got, err)
	}
}

func TestDialClusterNoSeeds(t *testing.T) {
	if _, err := DialCluster(nil, time.Second, Options{}); err == nil {
		t.Error("DialCluster with no seeds must error")
	}
}

// The barrier protocol over a cluster: INCR/GET route to the counter
// key's slot owner, so parties meeting through different ClusterClients
// still rendezvous on one node.
func TestBarrierOverCluster(t *testing.T) {
	addrs, _ := startCluster(t, 3)
	const parties = 3
	done := make(chan error, parties)
	for p := 0; p < parties; p++ {
		go func() {
			cc, err := DialCluster(addrs, time.Second, Options{})
			if err != nil {
				done <- err
				return
			}
			defer cc.Close()
			b, err := NewBarrier(cc, "cluster-rendezvous", parties)
			if err != nil {
				done <- err
				return
			}
			b.Timeout = 5 * time.Second
			done <- b.Await()
		}()
	}
	for p := 0; p < parties; p++ {
		if err := <-done; err != nil {
			t.Fatalf("party %d: %v", p, err)
		}
	}
}
