package kvstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Hash-slot cluster mode. The keyspace is divided into NumSlots hash
// slots; each kvstored process is assigned a slot range and answers
// MOVED redirects for keys it does not own, Redis-Cluster style but
// sized for the paper's deployment (one store per cluster node, a few
// dozen nodes at most): 1024 slots, FNV-1a slot hashing, and hash tags
// ({...}) so related keys can be pinned to one slot.

// NumSlots is the fixed size of the hash-slot space (a power of two,
// so slot selection is a mask).
const NumSlots = 1024

// SlotForKey maps a key to its hash slot. If the key contains a
// nonempty {tag}, only the tag hashes — "user:{42}:a" and
// "user:{42}:b" share a slot, the escape hatch for multi-key commands
// that must land on one node.
func SlotForKey(key string) int {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if j := strings.IndexByte(key[i+1:], '}'); j > 0 {
			key = key[i+1 : i+1+j]
		}
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (NumSlots - 1))
}

// slotForKeyBytes is SlotForKey over the wire's []byte arguments
// without a string conversion.
func slotForKeyBytes(key []byte) int {
	if i := indexByte(key, '{'); i >= 0 {
		if j := indexByte(key[i+1:], '}'); j > 0 {
			key = key[i+1 : i+1+j]
		}
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (NumSlots - 1))
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// SlotRange assigns the inclusive slot range [Lo, Hi] to the store at
// Addr.
type SlotRange struct {
	Lo, Hi int
	Addr   string
}

// SplitSlots divides the full slot space evenly across addrs — the
// standard way to stand up an N-process cluster.
func SplitSlots(addrs []string) []SlotRange {
	n := len(addrs)
	out := make([]SlotRange, 0, n)
	for i, a := range addrs {
		lo := i * NumSlots / n
		hi := (i+1)*NumSlots/n - 1
		out = append(out, SlotRange{Lo: lo, Hi: hi, Addr: a})
	}
	return out
}

// ParseSlotRanges parses the -cluster-slots flag format:
// "0-341@host:p1,342-682@host:p2,683-1023@host:p3". A single slot may
// be written without the dash ("7@host:p").
func ParseSlotRanges(spec string) ([]SlotRange, error) {
	var out []SlotRange
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rangePart, addr, ok := strings.Cut(part, "@")
		if !ok || addr == "" {
			return nil, fmt.Errorf("kvstore: slot range %q: want lo-hi@addr", part)
		}
		loS, hiS, dashed := strings.Cut(rangePart, "-")
		if !dashed {
			hiS = loS
		}
		lo, err1 := strconv.Atoi(loS)
		hi, err2 := strconv.Atoi(hiS)
		if err1 != nil || err2 != nil || lo < 0 || hi >= NumSlots || lo > hi {
			return nil, fmt.Errorf("kvstore: slot range %q: bad bounds (slots are 0..%d)", part, NumSlots-1)
		}
		out = append(out, SlotRange{Lo: lo, Hi: hi, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("kvstore: empty slot assignment %q", spec)
	}
	return out, nil
}

// slotTable is the resolved slot→owner map a server or routing client
// works from.
type slotTable struct {
	owner [NumSlots]string
}

func newSlotTable(ranges []SlotRange) (*slotTable, error) {
	t := &slotTable{}
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi >= NumSlots || r.Lo > r.Hi {
			return nil, fmt.Errorf("kvstore: slot range %d-%d out of bounds", r.Lo, r.Hi)
		}
		if r.Addr == "" {
			return nil, fmt.Errorf("kvstore: slot range %d-%d has no address", r.Lo, r.Hi)
		}
		for s := r.Lo; s <= r.Hi; s++ {
			if prev := t.owner[s]; prev != "" && prev != r.Addr {
				return nil, fmt.Errorf("kvstore: slot %d assigned to both %s and %s", s, prev, r.Addr)
			}
			t.owner[s] = r.Addr
		}
	}
	return t, nil
}

// ranges reconstructs the table as maximal contiguous ranges, sorted
// by Lo — the CLUSTER SLOTS reply shape.
func (t *slotTable) ranges() []SlotRange {
	var out []SlotRange
	for s := 0; s < NumSlots; {
		a := t.owner[s]
		if a == "" {
			s++
			continue
		}
		lo := s
		for s < NumSlots && t.owner[s] == a {
			s++
		}
		out = append(out, SlotRange{Lo: lo, Hi: s - 1, Addr: a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// reassign returns a copy of the table with every slot owned by from
// rewritten to to, plus how many slots moved. The original is never
// mutated — failover swaps whole tables atomically so the hot-path
// ownership check stays lock-free.
func (t *slotTable) reassign(from, to string) (*slotTable, int) {
	nt := &slotTable{owner: t.owner}
	n := 0
	for s := range nt.owner {
		if nt.owner[s] == from {
			nt.owner[s] = to
			n++
		}
	}
	return nt, n
}

// clusterConfig is a server's view of the cluster: the shared slot
// table plus its own advertised address. The table pointer is swapped
// atomically by failover (REPLTAKEOVER, CLUSTER REASSIGN) while
// connection goroutines read it lock-free per command.
type clusterConfig struct {
	self  string
	table atomic.Pointer[slotTable]
}

// checkSlots enforces slot ownership for one command: every key the
// command touches must live in a slot this server owns, else the reply
// is a MOVED redirect (first foreign key wins) pointing at the owner.
// Unassigned slots answer CLUSTERDOWN. ok=false means the command is
// local and should proceed.
func (cc *clusterConfig) checkSlots(id cmdID, args [][]byte) (Reply, bool) {
	first, stride := keyArgStride(id)
	if first < 0 || len(args) == 0 {
		return Reply{}, false // keyless command: always local
	}
	if stride == 0 {
		return cc.checkKey(args[0])
	}
	for i := first; i < len(args); i += stride {
		if rep, moved := cc.checkKey(args[i]); moved {
			return rep, true
		}
	}
	return Reply{}, false
}

func (cc *clusterConfig) checkKey(key []byte) (Reply, bool) {
	slot := slotForKeyBytes(key)
	owner := cc.table.Load().owner[slot]
	if owner == "" {
		return errReply("CLUSTERDOWN Hash slot " + strconv.Itoa(slot) + " not served"), true
	}
	if owner != cc.self {
		return errReply("MOVED " + strconv.Itoa(slot) + " " + owner), true
	}
	return Reply{}, false
}

// slotsReply renders the table as the CLUSTER SLOTS reply: an array of
// [lo, hi, addr, replica...] entries. Replica addresses are appended
// only to the ranges this server itself owns — a node can only vouch
// for the replicas streaming from it — so clients accumulate the full
// replica map by polling each owner (the heartbeat loop does).
func (cc *clusterConfig) slotsReply(selfReplicas []string) Reply {
	rs := cc.table.Load().ranges()
	out := make([]Reply, len(rs))
	for i, r := range rs {
		entry := []Reply{
			intReply(int64(r.Lo)),
			intReply(int64(r.Hi)),
			bulkReply([]byte(r.Addr)),
		}
		if r.Addr == cc.self {
			for _, rep := range selfReplicas {
				entry = append(entry, bulkReply([]byte(rep)))
			}
		}
		out[i] = Reply{Type: Array, Array: entry}
	}
	return Reply{Type: Array, Array: out}
}

// parseMoved extracts (slot, addr) from a "MOVED <slot> <addr>" error
// reply; ok=false for any other reply.
func parseMoved(rep Reply) (slot int, addr string, ok bool) {
	if rep.Type != ErrorReply || !strings.HasPrefix(rep.Str, "MOVED ") {
		return 0, "", false
	}
	rest := rep.Str[len("MOVED "):]
	slotS, addr, found := strings.Cut(rest, " ")
	if !found || addr == "" {
		return 0, "", false
	}
	s, err := strconv.Atoi(slotS)
	if err != nil || s < 0 || s >= NumSlots {
		return 0, "", false
	}
	return s, addr, true
}
