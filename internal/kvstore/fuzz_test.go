package kvstore

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

// TestEngineRandomCommandStorm throws random commands with random
// argument shapes at the engine: whatever comes in, the engine must
// return a well-formed reply and never panic, and counters must stay
// numerically consistent.
func TestEngineRandomCommandStorm(t *testing.T) {
	cmds := []string{
		"PING", "ECHO", "SET", "GET", "DEL", "EXISTS", "INCR", "INCRBY",
		"APPEND", "STRLEN", "RPUSH", "LPUSH", "LLEN", "LINDEX", "LRANGE",
		"FLUSHDB", "DBSIZE", "BOGUS", "",
	}
	rng := rand.New(rand.NewSource(33))
	e := NewEngine()
	keys := []string{"a", "b", "c", "list", "n"}
	for i := 0; i < 20000; i++ {
		cmd := cmds[rng.Intn(len(cmds))]
		nArgs := rng.Intn(4)
		args := make([][]byte, nArgs)
		for j := range args {
			switch rng.Intn(3) {
			case 0:
				args[j] = []byte(keys[rng.Intn(len(keys))])
			case 1:
				args[j] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			default:
				args[j] = []byte("12")
			}
		}
		rep := e.Do(cmd, args...)
		switch rep.Type {
		case SimpleString, ErrorReply, Integer, BulkString, NullBulk, Array, NullArray:
		default:
			t.Fatalf("cmd %q returned malformed reply type %d", cmd, rep.Type)
		}
		// Every reply must survive wire encoding.
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteReply(w, rep); err != nil {
			t.Fatalf("cmd %q reply unencodable: %v", cmd, err)
		}
	}
}

// TestProtocolRandomBytes feeds random garbage to the reply parser: it
// must error or succeed, never hang or panic.
func TestProtocolRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for j := range buf {
			// Bias toward protocol-significant bytes.
			switch rng.Intn(4) {
			case 0:
				buf[j] = "+-:$*\r\n0123456789"[rng.Intn(17)]
			default:
				buf[j] = byte(rng.Intn(256))
			}
		}
		r := bufio.NewReader(bytes.NewReader(buf))
		for {
			if _, err := ReadReply(r); err != nil {
				break
			}
		}
	}
}

// TestCommandRoundTripPooled is a write→read round-trip fuzzer over
// the pooled command path: random commands are framed by WriteCommand
// and parsed back by ReadCommandInto through ONE shared CommandBuffer.
// Each generation must deep-equal what was written, and bytes copied
// out of the arena (the engine-boundary contract) must survive the
// arena being recycled by later generations.
func TestCommandRoundTripPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	names := []string{"SET", "GET", "RPUSH", "MSET", "weird-cmd", "p"}
	var wire bytes.Buffer
	w := bufio.NewWriter(&wire)
	type gen struct {
		name string
		args [][]byte
	}
	const rounds = 2000
	gens := make([]gen, rounds)
	for i := range gens {
		g := gen{name: names[rng.Intn(len(names))]}
		for j := rng.Intn(5); j > 0; j-- {
			arg := make([]byte, rng.Intn(300))
			rng.Read(arg)
			g.args = append(g.args, arg)
		}
		gens[i] = g
		if err := WriteCommand(w, g.name, g.args...); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := bufio.NewReader(&wire)
	var cb CommandBuffer
	// copies holds arena data copied at the consumer boundary; it must
	// stay intact no matter how many times the arena is recycled.
	copies := make(map[int][][]byte)
	for i, g := range gens {
		name, args, err := ReadCommandInto(r, &cb, MaxBulkLen)
		if err != nil {
			t.Fatalf("generation %d: %v", i, err)
		}
		if name != g.name {
			t.Fatalf("generation %d: name %q, want %q", i, name, g.name)
		}
		if len(args) != len(g.args) {
			t.Fatalf("generation %d: %d args, want %d", i, len(args), len(g.args))
		}
		for j, a := range args {
			if !bytes.Equal(a, g.args[j]) {
				t.Fatalf("generation %d arg %d: %q, want %q", i, j, a, g.args[j])
			}
		}
		if rng.Intn(10) == 0 && len(args) > 0 {
			cp := make([][]byte, len(args))
			for j, a := range args {
				cp[j] = append([]byte(nil), a...)
			}
			copies[i] = cp
		}
	}
	for i, cp := range copies {
		for j, c := range cp {
			if !bytes.Equal(c, gens[i].args[j]) {
				t.Fatalf("boundary copy of generation %d arg %d corrupted by arena reuse", i, j)
			}
		}
	}
}

// TestReplyRoundTripPooled fuzzes the pooled reply path: random reply
// trees framed by WriteReply and parsed back by ReadReplyInto into ONE
// reused Reply, which must deep-equal the original every generation.
func TestReplyRoundTripPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	randReply := func(depth int) Reply {
		var mk func(d int) Reply
		mk = func(d int) Reply {
			switch k := rng.Intn(7); {
			case k == 0:
				return Reply{Type: SimpleString, Str: "s"}
			case k == 1:
				return Reply{Type: ErrorReply, Str: "e"}
			case k == 2:
				return Reply{Type: Integer, Int: rng.Int63() - rng.Int63()}
			case k == 3:
				b := make([]byte, rng.Intn(200))
				rng.Read(b)
				return Reply{Type: BulkString, Bulk: b}
			case k == 4:
				return Reply{Type: NullBulk}
			case k == 5 && d > 0:
				els := make([]Reply, rng.Intn(5))
				for i := range els {
					els[i] = mk(d - 1)
				}
				return Reply{Type: Array, Array: els}
			default:
				return Reply{Type: NullArray}
			}
		}
		return mk(depth)
	}
	var dst Reply
	for i := 0; i < 3000; i++ {
		orig := randReply(3)
		var wire bytes.Buffer
		w := bufio.NewWriter(&wire)
		if err := WriteReply(w, orig); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		if err := ReadReplyInto(bufio.NewReader(&wire), &dst, MaxBulkLen); err != nil {
			t.Fatalf("generation %d: %v", i, err)
		}
		if !replyEqualLoose(dst, orig) {
			t.Fatalf("generation %d: parsed %+v, want %+v", i, dst, orig)
		}
	}
}

// replyEqualLoose is replyEqual but treating nil and empty bulk/array
// as equal (the wire cannot distinguish them).
func replyEqualLoose(a, b Reply) bool {
	if a.Type != b.Type || a.Str != b.Str || a.Int != b.Int {
		return false
	}
	if !bytes.Equal(a.Bulk, b.Bulk) {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !replyEqualLoose(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}

// TestSnapshotRandomBytes feeds random garbage to the snapshot loader.
func TestSnapshotRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n+4)
		copy(buf, "PKVS")
		for j := 4; j < len(buf); j++ {
			buf[j] = byte(rng.Intn(256))
		}
		e := NewEngine()
		_ = e.ReadSnapshot(bytes.NewReader(buf)) // must not panic or hang
	}
}
