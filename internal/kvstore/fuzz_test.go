package kvstore

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

// TestEngineRandomCommandStorm throws random commands with random
// argument shapes at the engine: whatever comes in, the engine must
// return a well-formed reply and never panic, and counters must stay
// numerically consistent.
func TestEngineRandomCommandStorm(t *testing.T) {
	cmds := []string{
		"PING", "ECHO", "SET", "GET", "DEL", "EXISTS", "INCR", "INCRBY",
		"APPEND", "STRLEN", "RPUSH", "LPUSH", "LLEN", "LINDEX", "LRANGE",
		"FLUSHDB", "DBSIZE", "BOGUS", "",
	}
	rng := rand.New(rand.NewSource(33))
	e := NewEngine()
	keys := []string{"a", "b", "c", "list", "n"}
	for i := 0; i < 20000; i++ {
		cmd := cmds[rng.Intn(len(cmds))]
		nArgs := rng.Intn(4)
		args := make([][]byte, nArgs)
		for j := range args {
			switch rng.Intn(3) {
			case 0:
				args[j] = []byte(keys[rng.Intn(len(keys))])
			case 1:
				args[j] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			default:
				args[j] = []byte("12")
			}
		}
		rep := e.Do(cmd, args...)
		switch rep.Type {
		case SimpleString, ErrorReply, Integer, BulkString, NullBulk, Array, NullArray:
		default:
			t.Fatalf("cmd %q returned malformed reply type %d", cmd, rep.Type)
		}
		// Every reply must survive wire encoding.
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteReply(w, rep); err != nil {
			t.Fatalf("cmd %q reply unencodable: %v", cmd, err)
		}
	}
}

// TestProtocolRandomBytes feeds random garbage to the reply parser: it
// must error or succeed, never hang or panic.
func TestProtocolRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for j := range buf {
			// Bias toward protocol-significant bytes.
			switch rng.Intn(4) {
			case 0:
				buf[j] = "+-:$*\r\n0123456789"[rng.Intn(17)]
			default:
				buf[j] = byte(rng.Intn(256))
			}
		}
		r := bufio.NewReader(bytes.NewReader(buf))
		for {
			if _, err := ReadReply(r); err != nil {
				break
			}
		}
	}
}

// TestSnapshotRandomBytes feeds random garbage to the snapshot loader.
func TestSnapshotRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n+4)
		copy(buf, "PKVS")
		for j := 4; j < len(buf); j++ {
			buf[j] = byte(rng.Intn(256))
		}
		e := NewEngine()
		_ = e.ReadSnapshot(bytes.NewReader(buf)) // must not panic or hang
	}
}
