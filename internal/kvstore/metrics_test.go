package kvstore

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"pareto/internal/telemetry"
)

func TestCmdClass(t *testing.T) {
	for cmd, want := range map[string]int{
		"GET": clsGet, "SET": clsSet, "INCR": clsIncr, "INCRBY": clsIncr,
		"FLUSHDB": clsFlush, "FLUSHALL": clsFlush, "INFO": clsInfo,
		"SAVE": clsSave, "NOSUCH": clsOther, "get": clsOther,
	} {
		if got := cmdClass(cmd); got != want {
			t.Errorf("cmdClass(%q) = %d, want %d", cmd, got, want)
		}
	}
	if len(cmdClassNames) != numCmdClasses {
		t.Fatalf("cmdClassNames has %d entries, want %d", len(cmdClassNames), numCmdClasses)
	}
	for i, name := range cmdClassNames {
		if name == "" {
			t.Errorf("class %d has no name", i)
		}
	}
}

// TestServerTelemetry drives immediate and pipelined traffic through an
// instrumented server and checks the registry after the connection
// goroutines drain (server Close waits, so all batched per-connection
// counters have been flushed).
func TestServerTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := NewServer(nil)
	srv.SetTelemetry(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	// Unknown command: an error reply, still counted.
	if rep, err := c.Do("NOSUCH"); err != nil {
		t.Fatal(err)
	} else if rep.Type != ErrorReply {
		t.Fatalf("NOSUCH reply: %v", rep)
	}
	// One pipelined batch of 10 SETs.
	p, err := c.NewPipeline(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Send("SET", []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		`kv_server_commands_total{cmd="set"}`:   11,
		`kv_server_commands_total{cmd="get"}`:   2,
		`kv_server_commands_total{cmd="other"}`: 1,
		"kv_server_command_errors_total":        1,
		"kv_server_connections_total":           1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["kv_server_connections_active"]; got != 0 {
		t.Errorf("connections_active = %v after close, want 0", got)
	}
	if snap.Counters["kv_server_bytes_in_total"] <= 0 || snap.Counters["kv_server_bytes_out_total"] <= 0 {
		t.Errorf("byte counters not populated: in=%d out=%d",
			snap.Counters["kv_server_bytes_in_total"], snap.Counters["kv_server_bytes_out_total"])
	}
	if got := snap.Histograms["kv_server_command_latency_ns"].Count; got != 14 {
		t.Errorf("latency observations = %d, want 14", got)
	}
	if got := snap.Histograms["kv_server_batch_commands"].Count; got < 5 {
		t.Errorf("batch histogram observations = %d, want ≥ 5", got)
	}
}

// TestServerParseErrorCounted feeds raw garbage at the wire level.
func TestServerParseErrorCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := NewServer(nil)
	srv.SetTelemetry(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("!!not resp\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server answers with an error and drops the connection.
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	conn.Read(buf)
	conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("kv_server_parse_errors_total").Value(); got != 1 {
		t.Errorf("parse errors = %d, want 1", got)
	}
}

// TestServerInfoCommand: INFO returns the telemetry snapshot as JSON,
// reflecting this connection's already-flushed batches.
func TestServerInfoCommand(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := NewServer(nil)
	srv.SetTelemetry(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != BulkString {
		t.Fatalf("INFO reply type %v", rep.Type)
	}
	snap, err := telemetry.ReadSnapshot(bytes.NewReader(rep.Bulk))
	if err != nil {
		t.Fatalf("INFO payload not a snapshot: %v", err)
	}
	if got := snap.Counters[`kv_server_commands_total{cmd="set"}`]; got != 1 {
		t.Errorf("snapshot set count = %d, want 1", got)
	}
}

// TestServerInfoWithoutTelemetry: INFO on an uninstrumented server
// still answers with a valid (empty) snapshot instead of an error.
func TestServerInfoWithoutTelemetry(t *testing.T) {
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ReadSnapshot(bytes.NewReader(rep.Bulk)); err != nil {
		t.Errorf("INFO without telemetry: %v", err)
	}
}

// TestClientTelemetry checks op counting plus the fault-path counters:
// killing the server mid-session forces a retry with a reconnect to a
// replacement server reachable through the same Dialer.
func TestClientTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv1 := NewServer(nil)
	addr1, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	target := addr1
	dialer := func(_ string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		a := target
		mu.Unlock()
		return net.DialTimeout("tcp", a, timeout)
	}
	c, err := DialOptions(addr1, 5*time.Second, Options{
		Telemetry:    reg,
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		OpTimeout:    2 * time.Second,
		Dialer:       dialer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Kill the server; stand up a replacement and repoint the dialer.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(nil)
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	mu.Lock()
	target = addr2
	mu.Unlock()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after failover: %v", err)
	}
	// Pipeline depth: 5 queued commands flushed at once.
	for i := 0; i < 5; i++ {
		if err := c.Send("PING"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["kv_client_ops_total"]; got < 2 {
		t.Errorf("ops = %d, want ≥ 2", got)
	}
	if got := snap.Histograms["kv_client_op_latency_ns"].Count; got != snap.Counters["kv_client_ops_total"] {
		t.Errorf("latency observations %d != ops %d", got, snap.Counters["kv_client_ops_total"])
	}
	if got := snap.Counters["kv_client_retries_total"]; got < 1 {
		t.Errorf("retries = %d, want ≥ 1", got)
	}
	if got := snap.Counters["kv_client_reconnects_total"]; got < 1 {
		t.Errorf("reconnects = %d, want ≥ 1", got)
	}
	depth := snap.Histograms["kv_client_pipeline_depth"]
	if depth.Count != 1 || depth.Sum != 5 {
		t.Errorf("pipeline depth histogram: count=%d sum=%d, want 1/5", depth.Count, depth.Sum)
	}
}
