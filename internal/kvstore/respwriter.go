package kvstore

import (
	"io"
	"net"
	"strconv"
)

// respWriter batches RESP replies for a pipelined connection into a
// writev-style flush. Small replies are framed contiguously into one
// arena buffer; large bulk payloads are referenced in place instead of
// copied. Flush stitches arena spans and referenced payloads into a
// net.Buffers and hands the whole batch to the kernel in one WriteTo —
// on a *net.TCPConn that is a single writev(2) call for a 64-deep
// pipeline's worth of replies, instead of a buffer copy per payload.
//
// Framing is byte-identical to WriteReply: the client-side golden
// tests cover both paths against the same expected bytes.
type respWriter struct {
	dst io.Writer

	arena    []byte
	segs     []respSeg
	curStart int // arena offset where the open span began
	extBytes int // running total of referenced payload bytes

	// zmin is the smallest bulk payload worth referencing instead of
	// copying: below it, the copy is cheaper than an extra iovec entry.
	zmin int

	bufs net.Buffers // reused scratch for Flush
}

// respSeg is one ordered piece of the pending batch: an arena span
// (ext == nil) or a referenced external payload.
type respSeg struct {
	start, end int
	ext        []byte
}

// respZeroCopyMin is the default zmin: payloads under this are copied
// into the arena (one contiguous write), larger ones ride as their own
// iovec entry.
const respZeroCopyMin = 256

// respFlushHighWater caps how much a connection buffers before the
// server forces an early flush mid-pipeline, bounding memory per
// connection and keeping referenced payloads short-lived.
const respFlushHighWater = 256 << 10

func newRESPWriter(dst io.Writer) *respWriter {
	return &respWriter{dst: dst, zmin: respZeroCopyMin}
}

// writeReply appends one reply to the pending batch. forceCopy demands
// the payload be copied into the arena even when large — required when
// the reply's bulk aliases memory that is recycled before Flush (the
// parse arena behind an ECHO).
func (w *respWriter) writeReply(r Reply, forceCopy bool) {
	switch r.Type {
	case SimpleString:
		w.arena = append(w.arena, '+')
		w.arena = append(w.arena, r.Str...)
		w.arena = append(w.arena, '\r', '\n')
	case ErrorReply:
		w.arena = append(w.arena, '-')
		w.arena = append(w.arena, r.Str...)
		w.arena = append(w.arena, '\r', '\n')
	case Integer:
		w.arena = append(w.arena, ':')
		w.arena = strconv.AppendInt(w.arena, r.Int, 10)
		w.arena = append(w.arena, '\r', '\n')
	case BulkString:
		w.arena = append(w.arena, '$')
		w.arena = strconv.AppendInt(w.arena, int64(len(r.Bulk)), 10)
		w.arena = append(w.arena, '\r', '\n')
		if len(r.Bulk) >= w.zmin && !forceCopy {
			w.extend(r.Bulk)
		} else {
			w.arena = append(w.arena, r.Bulk...)
		}
		w.arena = append(w.arena, '\r', '\n')
	case NullBulk:
		w.arena = append(w.arena, "$-1\r\n"...)
	case Array:
		w.arena = append(w.arena, '*')
		w.arena = strconv.AppendInt(w.arena, int64(len(r.Array)), 10)
		w.arena = append(w.arena, '\r', '\n')
		for _, el := range r.Array {
			w.writeReply(el, forceCopy)
		}
	case NullArray:
		w.arena = append(w.arena, "*-1\r\n"...)
	default:
		// Mirror WriteReply's refusal, as framing corruption: emit an
		// error reply so the client fails loudly rather than desyncing.
		w.arena = append(w.arena, "-ERR unencodable reply\r\n"...)
	}
}

// extend closes the open arena span and appends b as a referenced
// segment. b must stay valid and unmutated until Flush.
func (w *respWriter) extend(b []byte) {
	w.segs = append(w.segs, respSeg{start: w.curStart, end: len(w.arena)})
	w.segs = append(w.segs, respSeg{ext: b})
	w.curStart = len(w.arena)
	w.extBytes += len(b)
}

// pending reports the batched byte count awaiting Flush in O(1) — the
// server consults it after every command, so walking the segment list
// here would make a deep pipeline quadratic. Arena spans partition
// [0, len(arena)), so arena length plus the referenced-payload total
// is the whole batch.
func (w *respWriter) pending() int {
	return len(w.arena) + w.extBytes
}

// Flush writes the whole pending batch and resets. The segment list is
// resolved against the arena only now — appends may have moved the
// backing array, so spans hold offsets, not slices. Returns bytes
// written. A batch with no external segments is a single contiguous
// Write; otherwise net.Buffers gathers every piece (writev on TCP).
func (w *respWriter) flush() (int64, error) {
	if len(w.segs) == 0 {
		// Common case: everything coalesced into one arena span.
		span := w.arena[:len(w.arena)]
		if len(span) == 0 {
			return 0, nil
		}
		n, err := w.dst.Write(span)
		w.reset()
		return int64(n), err
	}
	if w.curStart < len(w.arena) {
		w.segs = append(w.segs, respSeg{start: w.curStart, end: len(w.arena)})
	}
	w.bufs = w.bufs[:0]
	for _, s := range w.segs {
		if s.ext != nil {
			if len(s.ext) > 0 {
				w.bufs = append(w.bufs, s.ext)
			}
		} else if s.end > s.start {
			w.bufs = append(w.bufs, w.arena[s.start:s.end])
		}
	}
	n, err := w.bufs.WriteTo(w.dst)
	w.reset()
	return n, err
}

func (w *respWriter) reset() {
	w.arena = w.arena[:0]
	w.segs = w.segs[:0]
	w.curStart = 0
	w.extBytes = 0
	w.bufs = w.bufs[:0]
}
