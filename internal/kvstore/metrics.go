package kvstore

import (
	"net"
	"time"

	"pareto/internal/telemetry"
)

// Telemetry wiring for the data plane. The hot path is the server's
// per-connection command loop, which runs at a few hundred ns/op when
// pipelined — per-command atomic updates (let alone clock reads) would
// not fit the ≤3% overhead budget. Instead each connection keeps plain
// (goroutine-local) counters and flushes them into the shared registry
// at pipeline-flush boundaries, where a syscall already amortizes the
// cost. Latency is measured once per batch and attributed per command
// as the batch mean via ObserveN; with immediate (unpipelined) clients
// every command is its own batch, so nothing is lost there.

// Command classes: per-command counters are pre-resolved into a flat
// array so the loop does an integer index, not a map lookup or string
// concat. INCR/INCRBY share a class, as do FLUSHDB/FLUSHALL.
const (
	clsGet = iota
	clsSet
	clsMGet
	clsMSet
	clsDel
	clsExists
	clsIncr
	clsAppend
	clsStrlen
	clsRPush
	clsLPush
	clsLLen
	clsLIndex
	clsLRange
	clsPing
	clsEcho
	clsFlush
	clsDBSize
	clsInfo
	clsSave
	clsOther
	numCmdClasses
)

var cmdClassNames = [numCmdClasses]string{
	"get", "set", "mget", "mset", "del", "exists", "incr", "append",
	"strlen", "rpush", "lpush", "llen", "lindex", "lrange", "ping",
	"echo", "flush", "dbsize", "info", "save", "other",
}

// cmdClass maps a wire command name to its class. The switch covers
// the upper-case spellings every client in this repo sends; anything
// else (mixed case, unknown commands) lands in clsOther — the engine
// still EqualFolds, so classification is observability-only.
func cmdClass(cmd string) int {
	switch cmd {
	case "GET":
		return clsGet
	case "SET":
		return clsSet
	case "MGET":
		return clsMGet
	case "MSET":
		return clsMSet
	case "DEL":
		return clsDel
	case "EXISTS":
		return clsExists
	case "INCR", "INCRBY":
		return clsIncr
	case "APPEND":
		return clsAppend
	case "STRLEN":
		return clsStrlen
	case "RPUSH":
		return clsRPush
	case "LPUSH":
		return clsLPush
	case "LLEN":
		return clsLLen
	case "LINDEX":
		return clsLIndex
	case "LRANGE":
		return clsLRange
	case "PING":
		return clsPing
	case "ECHO":
		return clsEcho
	case "FLUSHDB", "FLUSHALL":
		return clsFlush
	case "DBSIZE":
		return clsDBSize
	case "INFO":
		return clsInfo
	case "SAVE":
		return clsSave
	}
	return clsOther
}

// classOfID maps a resolved cmdID to its telemetry class — the server
// loop's classification path, case-insensitive for free because
// lookupCmd already folded the name. BGREWRITEAOF counts with SAVE
// (both are persistence rewrites); CLUSTER lands in "other".
func classOfID(id cmdID) int {
	switch id {
	case cmdGet:
		return clsGet
	case cmdSet:
		return clsSet
	case cmdMGet:
		return clsMGet
	case cmdMSet:
		return clsMSet
	case cmdDel:
		return clsDel
	case cmdExists:
		return clsExists
	case cmdIncr, cmdIncrBy:
		return clsIncr
	case cmdAppend:
		return clsAppend
	case cmdStrlen:
		return clsStrlen
	case cmdRPush:
		return clsRPush
	case cmdLPush:
		return clsLPush
	case cmdLLen:
		return clsLLen
	case cmdLIndex:
		return clsLIndex
	case cmdLRange:
		return clsLRange
	case cmdPing:
		return clsPing
	case cmdEcho:
		return clsEcho
	case cmdFlushDB, cmdFlushAll:
		return clsFlush
	case cmdDBSize:
		return clsDBSize
	case cmdInfo:
		return clsInfo
	case cmdSave, cmdBGRewriteAOF:
		return clsSave
	}
	return clsOther
}

// serverMetrics holds the shared (atomic) ends of the server's
// instrumentation, pre-resolved at SetTelemetry time.
type serverMetrics struct {
	cmds        [numCmdClasses]*telemetry.Counter
	cmdErrors   *telemetry.Counter
	parseErrors *telemetry.Counter
	bytesIn     *telemetry.Counter
	bytesOut    *telemetry.Counter
	connsTotal  *telemetry.Counter
	connsActive *telemetry.Gauge
	latency     *telemetry.Histogram // batch-mean ns per command
	batchSize   *telemetry.Histogram // commands per flush batch
	moved       *telemetry.Counter   // MOVED redirects answered
	clusterDown *telemetry.Counter   // commands refused: slot unassigned
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		cmdErrors:   reg.Counter("kv_server_command_errors_total"),
		parseErrors: reg.Counter("kv_server_parse_errors_total"),
		bytesIn:     reg.Counter("kv_server_bytes_in_total"),
		bytesOut:    reg.Counter("kv_server_bytes_out_total"),
		connsTotal:  reg.Counter("kv_server_connections_total"),
		connsActive: reg.Gauge("kv_server_connections_active"),
		latency:     reg.Histogram("kv_server_command_latency_ns", telemetry.LatencyBuckets()),
		batchSize:   reg.Histogram("kv_server_batch_commands", telemetry.DepthBuckets()),
		moved:       reg.Counter("kv_cluster_moved_total"),
		clusterDown: reg.Counter("kv_cluster_down_total"),
	}
	for i, name := range cmdClassNames {
		m.cmds[i] = reg.Counter(`kv_server_commands_total{cmd="` + name + `"}`)
	}
	return m
}

// connStats is one connection's goroutine-local scratch: plain int64s
// bumped per command, flushed to the shared atomics at batch
// boundaries and on connection close.
type connStats struct {
	m          *serverMetrics
	cmds       [numCmdClasses]int64
	errs       int64
	batchN     int64
	batchStart time.Time
	cc         *countingConn
}

// begin stamps the batch start on the first command after a flush —
// the single clock read on the batch's ingress side. Called after the
// command is parsed, before it is dispatched.
func (cs *connStats) begin() {
	if cs.batchN == 0 {
		cs.batchStart = time.Now()
	}
}

// observe records one handled command in local scratch.
func (cs *connStats) observe(class int, isErr bool) {
	cs.batchN++
	cs.cmds[class]++
	if isErr {
		cs.errs++
	}
}

// flush pushes local scratch into the shared registry. Called at
// pipeline-flush boundaries (where the reply syscall already happens)
// and from the connection's deferred teardown.
func (cs *connStats) flush() {
	if cs.batchN > 0 {
		dur := time.Since(cs.batchStart).Nanoseconds()
		cs.m.latency.ObserveN(dur/cs.batchN, cs.batchN)
		cs.m.batchSize.Observe(cs.batchN)
		cs.batchN = 0
	}
	for i, n := range cs.cmds {
		if n > 0 {
			cs.m.cmds[i].Add(n)
			cs.cmds[i] = 0
		}
	}
	if cs.errs > 0 {
		cs.m.cmdErrors.Add(cs.errs)
		cs.errs = 0
	}
	if cs.cc != nil {
		if cs.cc.in > 0 {
			cs.m.bytesIn.Add(cs.cc.in)
			cs.cc.in = 0
		}
		if cs.cc.out > 0 {
			cs.m.bytesOut.Add(cs.cc.out)
			cs.cc.out = 0
		}
	}
}

// countingConn counts bytes at syscall granularity into plain fields.
// Both Read and Write happen only on the owning connection goroutine,
// so no atomics are needed; connStats.flush publishes the totals.
type countingConn struct {
	net.Conn
	in, out int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out += int64(n)
	return n, err
}

// clientMetrics is the client-side bundle, resolved once at dial time
// from Options.Telemetry. A nil *clientMetrics means telemetry is off
// and the hot path takes a single-branch detour around the clock reads.
type clientMetrics struct {
	ops           *telemetry.Counter
	opErrors      *telemetry.Counter
	retries       *telemetry.Counter
	reconnects    *telemetry.Counter
	opLatency     *telemetry.Histogram
	pipelineDepth *telemetry.Histogram
}

func newClientMetrics(reg *telemetry.Registry) *clientMetrics {
	if reg == nil {
		return nil
	}
	return &clientMetrics{
		ops:           reg.Counter("kv_client_ops_total"),
		opErrors:      reg.Counter("kv_client_op_errors_total"),
		retries:       reg.Counter("kv_client_retries_total"),
		reconnects:    reg.Counter("kv_client_reconnects_total"),
		opLatency:     reg.Histogram("kv_client_op_latency_ns", telemetry.LatencyBuckets()),
		pipelineDepth: reg.Histogram("kv_client_pipeline_depth", telemetry.DepthBuckets()),
	}
}
