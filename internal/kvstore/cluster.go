package kvstore

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"pareto/internal/telemetry"
)

// ClusterClient routes commands across a slot-partitioned set of
// kvstored processes: key → hash slot → owning store, with one pooled
// *Client per store and MOVED redirects chased and cached. It
// implements KV, so everything written against a single store — the
// distrib shipping paths, the partitioner, the barrier — points at a
// cluster unchanged.
//
// The slot table is primed from any reachable seed via CLUSTER SLOTS
// and repaired lazily: a MOVED reply rewrites the one slot it names, a
// missing owner triggers a full refresh. Multi-key commands (MSET,
// MGET, DEL) are split by owner and merged back in argument order.
type ClusterClient struct {
	mu      sync.Mutex
	timeout time.Duration
	opts    Options
	conns   map[string]*Client
	owner   [NumSlots]string
	seeds   []string

	moved *telemetry.Counter // client-side MOVED redirects chased
}

// maxRedirects bounds a doKey MOVED chase; a table more than a few
// hops stale means the cluster map is cyclic garbage.
const maxRedirects = 4

// DialCluster connects to a slot-partitioned cluster through its
// seeds: the first reachable seed's CLUSTER SLOTS primes the slot
// table, and per-store connections are dialed on demand with the same
// timeout and Options a single-store DialOptions would use.
func DialCluster(seeds []string, timeout time.Duration, opts Options) (*ClusterClient, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("kvstore: cluster dial with no seeds")
	}
	cc := &ClusterClient{
		timeout: timeout,
		opts:    opts,
		conns:   make(map[string]*Client),
		seeds:   append([]string(nil), seeds...),
		moved:   opts.Telemetry.Counter("kv_cluster_client_moved_total"),
	}
	if err := cc.refresh(); err != nil {
		cc.Close()
		return nil, err
	}
	return cc, nil
}

// refresh re-primes the slot table from the first reachable node
// (known connections first, then seeds).
func (cc *ClusterClient) refresh() error {
	cc.mu.Lock()
	addrs := make([]string, 0, len(cc.conns)+len(cc.seeds))
	for a := range cc.conns {
		addrs = append(addrs, a)
	}
	addrs = append(addrs, cc.seeds...)
	cc.mu.Unlock()
	var lastErr error
	for _, addr := range addrs {
		c, err := cc.clientFor(addr)
		if err != nil {
			lastErr = err
			continue
		}
		rep, err := c.Do("CLUSTER", []byte("SLOTS"))
		if err != nil {
			lastErr = err
			continue
		}
		if err := rep.Err(); err != nil {
			lastErr = err
			continue
		}
		ranges, err := parseSlotsReply(rep)
		if err != nil {
			lastErr = err
			continue
		}
		cc.mu.Lock()
		cc.owner = [NumSlots]string{}
		for _, r := range ranges {
			for s := r.Lo; s <= r.Hi; s++ {
				cc.owner[s] = r.Addr
			}
		}
		cc.mu.Unlock()
		return nil
	}
	return fmt.Errorf("kvstore: cluster slots unavailable from any node: %w", lastErr)
}

// parseSlotsReply decodes a CLUSTER SLOTS array of [lo, hi, addr]
// triples.
func parseSlotsReply(rep Reply) ([]SlotRange, error) {
	if rep.Type != Array {
		return nil, fmt.Errorf("kvstore: CLUSTER SLOTS reply is %v, want array", rep.Type)
	}
	out := make([]SlotRange, 0, len(rep.Array))
	for _, el := range rep.Array {
		if el.Type != Array || len(el.Array) != 3 ||
			el.Array[0].Type != Integer || el.Array[1].Type != Integer ||
			el.Array[2].Type != BulkString {
			return nil, fmt.Errorf("kvstore: malformed CLUSTER SLOTS entry")
		}
		out = append(out, SlotRange{
			Lo:   int(el.Array[0].Int),
			Hi:   int(el.Array[1].Int),
			Addr: string(el.Array[2].Bulk),
		})
	}
	return out, nil
}

// Slots returns the client's current view of the slot map as maximal
// contiguous ranges.
func (cc *ClusterClient) Slots() []SlotRange {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	t := slotTable{owner: cc.owner}
	return t.ranges()
}

// clientFor returns (dialing on demand) the pooled connection to addr.
func (cc *ClusterClient) clientFor(addr string) (*Client, error) {
	cc.mu.Lock()
	c, ok := cc.conns[addr]
	cc.mu.Unlock()
	if ok {
		return c, nil
	}
	// Dial outside the lock: a dead node's timeout must not stall
	// routing to live ones.
	fresh, err := DialOptions(addr, cc.timeout, cc.opts)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.conns[addr]; ok { // raced: keep the winner
		fresh.Close()
		return c, nil
	}
	cc.conns[addr] = fresh
	return fresh, nil
}

func (cc *ClusterClient) ownerOf(slot int) string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.owner[slot]
}

func (cc *ClusterClient) setOwner(slot int, addr string) {
	cc.mu.Lock()
	cc.owner[slot] = addr
	cc.mu.Unlock()
}

// anyClient returns a connection to any cluster node (for keyless
// commands), preferring the owner of slot 0's neighborhood.
func (cc *ClusterClient) anyClient() (*Client, error) {
	cc.mu.Lock()
	var addr string
	for _, a := range cc.owner {
		if a != "" {
			addr = a
			break
		}
	}
	cc.mu.Unlock()
	if addr == "" {
		if len(cc.seeds) == 0 {
			return nil, fmt.Errorf("kvstore: no cluster nodes known")
		}
		addr = cc.seeds[0]
	}
	return cc.clientFor(addr)
}

// doKey routes one single-slot command to its owner, chasing MOVED
// redirects (each one repairs the table entry it names) up to
// maxRedirects hops.
func (cc *ClusterClient) doKey(key, cmd string, args [][]byte) (Reply, error) {
	slot := SlotForKey(key)
	addr := cc.ownerOf(slot)
	for hop := 0; hop <= maxRedirects; hop++ {
		if addr == "" {
			if err := cc.refresh(); err != nil {
				return Reply{}, err
			}
			if addr = cc.ownerOf(slot); addr == "" {
				return Reply{}, fmt.Errorf("kvstore: hash slot %d unassigned", slot)
			}
		}
		c, err := cc.clientFor(addr)
		if err != nil {
			return Reply{}, err
		}
		rep, err := c.Do(cmd, args...)
		if err != nil {
			return Reply{}, err
		}
		if s, to, ok := parseMoved(rep); ok {
			cc.moved.Inc()
			cc.setOwner(s, to)
			addr = to
			continue
		}
		return rep, nil
	}
	return Reply{}, fmt.Errorf("kvstore: slot %d: more than %d MOVED redirects", slot, maxRedirects)
}

// Do routes by the command's first key; keyless commands go to an
// arbitrary node.
func (cc *ClusterClient) Do(cmd string, args ...[]byte) (Reply, error) {
	id := lookupCmd(cmd)
	if first := firstKeyArg(id); first >= 0 && len(args) > first {
		return cc.doKey(string(args[first]), cmd, args)
	}
	c, err := cc.anyClient()
	if err != nil {
		return Reply{}, err
	}
	return c.Do(cmd, args...)
}

// Get fetches a string key; ErrNil if absent.
func (cc *ClusterClient) Get(key string) ([]byte, error) {
	rep, err := cc.doKey(key, "GET", [][]byte{[]byte(key)})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	if rep.Type == NullBulk {
		return nil, ErrNil
	}
	return rep.Bulk, nil
}

// Set stores a string key.
func (cc *ClusterClient) Set(key string, val []byte) error {
	rep, err := cc.doKey(key, "SET", [][]byte{[]byte(key), val})
	if err != nil {
		return err
	}
	return rep.Err()
}

// Incr atomically increments a counter key on its owning store.
func (cc *ClusterClient) Incr(key string) (int64, error) {
	rep, err := cc.doKey(key, "INCR", [][]byte{[]byte(key)})
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// RPush appends values to a list on its owning store.
func (cc *ClusterClient) RPush(key string, vals ...[]byte) (int64, error) {
	args := make([][]byte, 0, len(vals)+1)
	args = append(args, []byte(key))
	args = append(args, vals...)
	rep, err := cc.doKey(key, "RPUSH", args)
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// LRange fetches list elements in [start, stop] from the key's owner.
func (cc *ClusterClient) LRange(key string, start, stop int64) ([][]byte, error) {
	rep, err := cc.doKey(key, "LRANGE", [][]byte{
		[]byte(key),
		[]byte(strconv.FormatInt(start, 10)),
		[]byte(strconv.FormatInt(stop, 10)),
	})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(rep.Array))
	for i, el := range rep.Array {
		out[i] = el.Bulk
	}
	return out, nil
}

// LRangeChunked streams a list in bounded windows, as Client's.
func (cc *ClusterClient) LRangeChunked(key string, window int64, fn func(batch [][]byte) error) error {
	if window < 1 {
		return fmt.Errorf("kvstore: lrange window %d, need ≥ 1", window)
	}
	for start := int64(0); ; start += window {
		batch, err := cc.LRange(key, start, start+window-1)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			return nil
		}
		if err := fn(batch); err != nil {
			return err
		}
		if int64(len(batch)) < window {
			return nil
		}
	}
}

// LLen returns a list's length from the key's owner.
func (cc *ClusterClient) LLen(key string) (int64, error) {
	rep, err := cc.doKey(key, "LLEN", [][]byte{[]byte(key)})
	if err != nil {
		return 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, err
	}
	return rep.Int, nil
}

// MSet splits the batch by slot owner and issues one MSET per store.
// Atomicity is per store, not cluster-wide — same as issuing the
// groups yourself.
func (cc *ClusterClient) MSet(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: mset with %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	groups, err := cc.groupByOwner(keys)
	if err != nil {
		return err
	}
	for addr, idx := range groups {
		c, err := cc.clientFor(addr)
		if err != nil {
			return err
		}
		gk := make([]string, len(idx))
		gv := make([][]byte, len(idx))
		for i, j := range idx {
			gk[i], gv[i] = keys[j], vals[j]
		}
		if err := c.MSet(gk, gv); err != nil {
			return err
		}
	}
	return nil
}

// MGet splits the fetch by slot owner and merges values back into
// argument order; a missing key yields a nil entry.
func (cc *ClusterClient) MGet(keys ...string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	groups, err := cc.groupByOwner(keys)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(keys))
	for addr, idx := range groups {
		c, err := cc.clientFor(addr)
		if err != nil {
			return nil, err
		}
		gk := make([]string, len(idx))
		for i, j := range idx {
			gk[i] = keys[j]
		}
		vals, err := c.MGet(gk...)
		if err != nil {
			return nil, err
		}
		for i, j := range idx {
			out[j] = vals[i]
		}
	}
	return out, nil
}

// Del removes keys across their owners, returning how many existed.
func (cc *ClusterClient) Del(keys ...string) (int64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	groups, err := cc.groupByOwner(keys)
	if err != nil {
		return 0, err
	}
	var n int64
	for addr, idx := range groups {
		c, err := cc.clientFor(addr)
		if err != nil {
			return n, err
		}
		gk := make([]string, len(idx))
		for i, j := range idx {
			gk[i] = keys[j]
		}
		m, err := c.Del(gk...)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// groupByOwner maps owner address → indices into keys, refreshing the
// table once if any slot is unassigned.
func (cc *ClusterClient) groupByOwner(keys []string) (map[string][]int, error) {
	for attempt := 0; ; attempt++ {
		groups := make(map[string][]int)
		stale := false
		for i, k := range keys {
			addr := cc.ownerOf(SlotForKey(k))
			if addr == "" {
				stale = true
				break
			}
			groups[addr] = append(groups[addr], i)
		}
		if !stale {
			return groups, nil
		}
		if attempt > 0 {
			return nil, fmt.Errorf("kvstore: hash slot unassigned after refresh")
		}
		if err := cc.refresh(); err != nil {
			return nil, err
		}
	}
}

// Ping round-trips every known node.
func (cc *ClusterClient) Ping() error {
	pinged := false
	for _, r := range cc.Slots() {
		c, err := cc.clientFor(r.Addr)
		if err != nil {
			return err
		}
		if err := c.Ping(); err != nil {
			return err
		}
		pinged = true
	}
	if !pinged {
		c, err := cc.anyClient()
		if err != nil {
			return err
		}
		return c.Ping()
	}
	return nil
}

// Close closes every pooled connection.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	conns := cc.conns
	cc.conns = make(map[string]*Client)
	cc.mu.Unlock()
	var err error
	for _, c := range conns {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Pipe returns a cluster pipeline: commands are routed to per-owner
// pipelines as they are sent, and Finish merges every reply back into
// global send order.
func (cc *ClusterClient) Pipe(width int) (Pipe, error) {
	if width < 1 {
		return nil, fmt.Errorf("kvstore: pipeline width %d, need ≥ 1", width)
	}
	return &ClusterPipeline{cc: cc, width: width, pipes: make(map[string]*Pipeline)}, nil
}

// ClusterPipeline fans a pipelined batch out across slot owners while
// preserving reply order: each command is enqueued on its owner's
// pipeline and the owner is recorded in a send-order ledger; Finish
// collects each node's replies (in that node's send order) and merges
// them back by the ledger. A MOVED reply in the results repairs the
// slot table for the next batch; the command itself is not re-executed
// — the caller sees the redirect error and re-issues the batch, the
// same contract as a broken-connection pipeline retry.
type ClusterPipeline struct {
	cc     *ClusterClient
	width  int
	pipes  map[string]*Pipeline
	order  []string // owner addr per command, in send order
	hint   int
	merged []Reply // reusable merge buffer (Reuse)
}

// Expect hints the batch's total command count; each owner pipeline is
// seeded with the full hint (an upper bound — regrowth avoided at the
// cost of over-allocation proportional to node count).
func (cp *ClusterPipeline) Expect(total int) {
	cp.hint = total
	for _, p := range cp.pipes {
		p.Expect(total)
	}
	if total > cap(cp.order) {
		grown := make([]string, len(cp.order), total)
		copy(grown, cp.order)
		cp.order = grown
	}
}

// Send routes one command to its key's owner pipeline. Keyless
// commands are rejected — there is no single node whose reply could
// take a deterministic position in the merged order.
func (cp *ClusterPipeline) Send(cmd string, args ...[]byte) error {
	id := lookupCmd(cmd)
	first := firstKeyArg(id)
	if first < 0 || len(args) <= first {
		return fmt.Errorf("kvstore: cluster pipeline cannot route keyless command %s", cmd)
	}
	slot := slotForKeyBytes(args[first])
	addr := cp.cc.ownerOf(slot)
	if addr == "" {
		if err := cp.cc.refresh(); err != nil {
			return err
		}
		if addr = cp.cc.ownerOf(slot); addr == "" {
			return fmt.Errorf("kvstore: hash slot %d unassigned", slot)
		}
	}
	p, ok := cp.pipes[addr]
	if !ok {
		c, err := cp.cc.clientFor(addr)
		if err != nil {
			return err
		}
		if p, err = c.NewPipeline(cp.width); err != nil {
			return err
		}
		if cp.hint > 0 {
			p.Expect(cp.hint)
		}
		cp.pipes[addr] = p
	}
	if err := p.Send(cmd, args...); err != nil {
		return err
	}
	cp.order = append(cp.order, addr)
	return nil
}

// Finish drains every owner pipeline and merges the replies back into
// global send order, reusing a Reuse-seeded merge buffer if present.
func (cp *ClusterPipeline) Finish() ([]Reply, error) {
	out := cp.merged
	cp.merged = nil
	return cp.FinishInto(out)
}

// FinishInto is Finish appending into dst, reusing its capacity.
func (cp *ClusterPipeline) FinishInto(dst []Reply) ([]Reply, error) {
	results := make(map[string][]Reply, len(cp.pipes))
	var firstErr error
	for addr, p := range cp.pipes {
		reps, err := p.Finish()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[addr] = reps
	}
	out := dst[:0]
	cursor := make(map[string]int, len(results))
	for _, addr := range cp.order {
		reps := results[addr]
		i := cursor[addr]
		if i >= len(reps) {
			// A node's pipeline died mid-batch: its tail is gone.
			if firstErr == nil {
				firstErr = fmt.Errorf("kvstore: cluster pipeline lost replies from %s", addr)
			}
			break
		}
		if s, to, ok := parseMoved(reps[i]); ok {
			cp.cc.moved.Inc()
			cp.cc.setOwner(s, to)
			if firstErr == nil {
				firstErr = fmt.Errorf("kvstore: pipelined command redirected (MOVED %d %s); re-issue the batch", s, to)
			}
		}
		out = append(out, reps[i])
		cursor[addr] = i + 1
	}
	cp.order = cp.order[:0]
	// Ownership matches Pipeline.Finish: the returned slice belongs to
	// the caller; it only comes back to us through an explicit Reuse.
	cp.merged = nil
	return out, firstErr
}

// Reuse seeds the merge buffer with dst[:0] for the next batch.
func (cp *ClusterPipeline) Reuse(dst []Reply) {
	cp.merged = dst[:0]
	cp.order = cp.order[:0]
}
